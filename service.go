package subgraph

import "repro/internal/service"

// The serving layer: a long-running Service amortizes graph loading (a
// reference-counted, LRU-evicted registry), whole estimations (an LRU
// result cache keyed by graph fingerprint + query signature + estimation
// knobs), and concurrency (a bounded priority-scheduled worker pool) over
// Estimate. cmd/sgserve exposes it over HTTP; embed it directly via
// NewService for in-process use.
type (
	Service         = service.Service
	ServiceOptions  = service.Options
	ServiceStats    = service.Stats
	GraphSpec       = service.GraphSpec
	GraphInfo       = service.GraphInfo
	EstimateRequest = service.EstimateRequest
	EstimateResult  = service.EstimateResult
	BatchRequest    = service.BatchRequest
	BatchItem       = service.BatchItem
)

// NewService starts an estimation service. Close it when done; results it
// computes are bit-identical to direct Estimate calls with the same
// algorithm, trials, and seed.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }
