package subgraph

import (
	"repro/internal/cluster"
	"repro/internal/service"
)

// The serving layer: a long-running Service amortizes graph loading (a
// reference-counted, LRU-evicted registry), whole estimations (an LRU
// result cache keyed by graph fingerprint + query signature + estimation
// knobs), and concurrency (a bounded priority-scheduled worker pool) over
// Estimate. The registry and cache are sharded (ServiceOptions.Shards)
// so the hot path — handle acquires and cache lookups — does not
// serialize on one mutex under concurrent load; results are bit-identical
// at every shard count, and per-shard stats plus lock-wait counters make
// residual contention observable. Every estimation runs as a cancellable, observable job:
// Service.Estimate is a submit-and-wait wrapper, and SubmitEstimateJob /
// Job / WaitJob / CancelJob / JobResult expose the async lifecycle
// (states queued → running → done|failed|canceled, per-trial progress,
// TTL'd result retention, singleflight coalescing of identical concurrent
// requests). cmd/sgserve exposes it over HTTP; embed it directly via
// NewService for in-process use.
type (
	Service         = service.Service
	ServiceOptions  = service.Options
	ServiceStats    = service.Stats
	GraphSpec       = service.GraphSpec
	GraphInfo       = service.GraphInfo
	EstimateRequest = service.EstimateRequest
	EstimateResult  = service.EstimateResult
	BatchRequest    = service.BatchRequest
	BatchItem       = service.BatchItem
	JobInfo         = service.JobInfo
	JobState        = service.JobState
	JobProgress     = service.JobProgress
	JobsStats       = service.JobsStats
	// PrecisionSpec is the wire form of a declared (relErr, confidence)
	// accuracy target: EstimateRequest.Precision switches a request from
	// "run Trials colorings" to "reach this precision", with previously
	// cached trials reused and extended instead of recomputed.
	PrecisionSpec = service.PrecisionSpec
	// PrecisionServiceStats reports the adaptive stopping outcomes
	// (requests, earlyStops, trialsSaved) under ServiceStats.Precision.
	PrecisionServiceStats = service.PrecisionStats
	// TraceInfo is one job's recorded phase timeline (GET
	// /v1/jobs/{id}/trace): queue wait, cache lookup/store, and one span
	// per solver superstep, with per-phase aggregates.
	TraceInfo  = service.TraceInfo
	TraceSpan  = service.TraceSpan
	TracePhase = service.TracePhase
	// LatencySummary is a latency histogram rendered as count, mean, and
	// interpolated p50/p95/p99 milliseconds (ServiceStats.HTTP and
	// ServiceStats.TrialLatency).
	LatencySummary = service.LatencySummary
	// DistNodeStats is one distributed worker node's transport counters
	// (ServiceStats.Engine.Dist), populated when the server runs the
	// "dist" backend against real worker processes.
	DistNodeStats = service.DistNodeStats
	// DurabilityOptions configure the persistence layer
	// (ServiceOptions.Durability): with Dir set, trial-cache runs and
	// terminal jobs are appended to a CRC-framed log and replayed on
	// boot, so a restarted service serves warm-cache hits and keeps
	// finished jobs addressable. Use OpenService to surface replay I/O
	// errors.
	DurabilityOptions = service.DurabilityOptions
	// DurableStats is the persistence layer's counter section
	// (ServiceStats.Durable, nil for in-memory services): appends, queue
	// lag, replayed runs/jobs, compactions, fsyncs, file sizes.
	DurableStats = service.DurableStats
	// ClusterView is one replica's view of the multi-replica serving
	// tier (ServiceOptions.Cluster): a deterministic consistent-hash
	// ring over the static membership plus per-peer health and circuit
	// breakers. Build one with NewCluster and inject it; the replica then
	// proxies estimate/job requests whose trial stream hashes to another
	// member, falling back to local execution when the home is down.
	ClusterView = cluster.Cluster
	// ClusterOptions configure a ClusterView: Self (this replica's
	// advertised address), Members (every replica's address — identical
	// on every replica), and the health/breaker knobs.
	ClusterOptions = cluster.Options
	// ClusterServiceStats is the cluster section of ServiceStats
	// (membership, peer health, forwarding and handoff counters); nil in
	// single-replica mode.
	ClusterServiceStats = service.ClusterStats
)

// Job lifecycle states.
const (
	JobQueued   = service.JobQueued
	JobRunning  = service.JobRunning
	JobDone     = service.JobDone
	JobFailed   = service.JobFailed
	JobCanceled = service.JobCanceled
)

// NewService starts an estimation service. Close it when done; results it
// computes are bit-identical to direct Estimate calls with the same
// algorithm, trials, and seed — whether fetched synchronously or through
// the jobs API.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// OpenService starts an estimation service like NewService, but surfaces
// the durable log's replay I/O errors instead of panicking — the right
// constructor whenever ServiceOptions.Durability is configured. Corrupt
// or torn log tails are not errors: they are truncated and replayed
// past, with the dropped bytes counted in ServiceStats.Durable.
func OpenService(opts ServiceOptions) (*Service, error) { return service.Open(opts) }

// NewCluster builds one replica's cluster view for
// ServiceOptions.Cluster. The caller owns it: inject it into the
// service, Close it on shutdown. Every replica must be configured with
// the same member set — key→home assignment is a pure function of it,
// which is what lets replicas agree on ownership with no coordination
// protocol.
func NewCluster(opts ClusterOptions) (*ClusterView, error) { return cluster.New(opts) }
