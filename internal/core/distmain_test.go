package core_test

import (
	"os"
	"testing"

	"repro/internal/dist/disttest"
)

// TestMain makes this suite runnable under SUBGRAPH_BACKEND=dist: when
// the environment selects the dist backend, disttest.Main registers an
// in-process loopback cluster before the tests run. See
// internal/dist/disttest.
func TestMain(m *testing.M) { os.Exit(disttest.Main(m)) }
