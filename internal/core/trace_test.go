package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/query"
)

// TestTracePhaseCoverage runs queries chosen to exercise each solver
// phase and checks the trace records at least one span for every phase
// the decomposition visits — the contract GET /v1/jobs/{id}/trace builds
// on. A path hits only pathJoin; a cycle adds the split join; a query
// with pendant edges adds leaf projection and table regrouping.
func TestTracePhaseCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyi("er", 40, 160, rng)
	cases := []struct {
		q      *query.Graph
		phases []string
	}{
		{query.PathGraph(4), []string{PhasePathJoin}},
		{query.Cycle(5), []string{PhasePathJoin, PhaseCycleJoin}},
		// satellite: a cycle with a pendant tail — its leaf edges project
		// through leafJoin and the child tables regroup through tableMerge.
		{query.MustByName("satellite"), []string{PhasePathJoin, PhaseLeafJoin, PhaseTableMerge}},
	}
	for _, tc := range cases {
		for _, backend := range []string{"sim", "parallel"} {
			tr := obs.NewTrace(tc.q.Name)
			ctx := obs.WithTrace(context.Background(), tr)
			colors := randColors(g.N(), tc.q.K, rng)
			if _, _, err := CountColorfulContext(ctx, g, tc.q, colors, Options{Backend: backend, Workers: 2}); err != nil {
				t.Fatalf("%s/%s: %v", tc.q.Name, backend, err)
			}
			snap := tr.Snapshot()
			for _, phase := range tc.phases {
				if snap.Phases[phase].Count == 0 {
					t.Errorf("%s/%s: phase %s has no spans (got %v)", tc.q.Name, backend, phase, snap.Phases)
				}
			}
			if len(snap.Spans) == 0 {
				t.Errorf("%s/%s: no spans recorded", tc.q.Name, backend)
			}
		}
	}
}

// TestTracePerVertexJoin covers the per-vertex entry point's extra fold
// phase, and that grouped counting is untraced-equal: the same coloring
// with and without a trace attached yields identical counts.
func TestTracePerVertexJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.ErdosRenyi("er", 30, 90, rng)
	q := query.Cycle(4)
	colors := randColors(g.N(), q.K, rng)

	tr := obs.NewTrace("pv")
	ctx := obs.WithTrace(context.Background(), tr)
	traced, anchor, _, err := CountColorfulPerVertexContext(ctx, g, q, colors, 0, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	plain, anchor2, _, err := CountColorfulPerVertex(g, q, colors, 0, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if anchor != anchor2 {
		t.Fatalf("anchors differ: %d vs %d", anchor, anchor2)
	}
	for v := range traced {
		if traced[v] != plain[v] {
			t.Fatalf("tracing changed the per-vertex count at %d: %d vs %d", v, traced[v], plain[v])
		}
	}
	snap := tr.Snapshot()
	if snap.Phases[PhasePerVertexJoin].Count == 0 {
		t.Errorf("perVertexJoin has no spans (got %v)", snap.Phases)
	}
}
