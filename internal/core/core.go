// Package core implements the paper's contribution: colorful subgraph
// counting for treewidth-2 queries over a simulated distributed engine.
// The decomposition tree is traversed bottom-up (§4.2); leaf-edge blocks
// and cycle blocks are solved by join operations over projection tables
// (§4.3, §5), with two interchangeable cycle solvers:
//
//   - PS (Path Splitting, §5.1 Figure 4): the baseline, equivalent to the
//     dynamic program of Alon et al.; splits each cycle at its boundary
//     nodes and extends paths with no pruning.
//   - DB (Degree-Based, §5.1 Figure 6, §5.2 Figure 7): the paper's
//     algorithm; partitions colorful matches by the position of their
//     highest vertex in the degree order and counts only high-starting
//     paths, pruning the search around high-degree vertices.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sig"
)

// Algorithm selects the cycle solver.
type Algorithm int

const (
	// DB is the paper's degree-based algorithm (default).
	DB Algorithm = iota
	// PS is the path-splitting baseline.
	PS
	// PSEven is the modified baseline discussed in §5.1: split every cycle
	// into two equal-length walks (recording boundary mappings that fall
	// inside a walk) but without the degree-ordering constraint. The paper
	// implemented it and found it does not fix wasteful computation or load
	// imbalance; it is kept as an ablation separating DB's two ideas
	// (balanced splits vs. degree ordering).
	PSEven
)

func (a Algorithm) String() string {
	switch a {
	case PS:
		return "PS"
	case PSEven:
		return "PSEven"
	}
	return "DB"
}

// Options configures a counting run.
type Options struct {
	Algorithm Algorithm
	// Backend selects the execution runtime: "sim" (default; the paper's
	// simulated distributed engine, metrics-faithful for Figure 11) or
	// "parallel" (real shared-memory workers with direct table merges).
	// Counts are bit-identical across backends; only Stats differ. An
	// empty name falls back to $SUBGRAPH_BACKEND, then "sim".
	Backend string
	// Workers is the execution width: simulated ranks for the sim
	// backend (≤ 0 means 4), real worker goroutines for parallel (≤ 0
	// means GOMAXPROCS).
	Workers int
	// Plan overrides the decomposition tree; nil uses the calibrated §6
	// planner (PickPlan).
	Plan *decomp.Tree
	// Engine injects a pre-built backend instead of constructing one from
	// Backend/Workers — the dist worker runtime uses it to run this same
	// solver over one rank's partitions (SPMD). Most callers leave it nil.
	Engine engine.Backend
}

// Stats reports the engine-level counters of one run: the paper's load
// metric (projection-function operations, Figure 11), communication volume,
// and table pressure.
type Stats struct {
	Backend      string // canonical backend name ("sim" or "parallel")
	Workers      int
	MaxLoad      int64
	AvgLoad      float64
	TotalLoad    int64
	Messages     int64 // simulated messages; always 0 for parallel
	Steals       int64 // stolen partition tasks; always 0 for sim
	Supersteps   int64 // supersteps executed; identical across backends
	TableEntries int64 // total projection-table entries materialized
	Loads        []int64
}

// Trace phase names. Every span the solver records wraps exactly one
// backend superstep (Step, Deliver, or Run call), named for the phase
// that issued it — so spans never nest, and a trace's per-phase totals
// sum to at most the run's wall time.
const (
	PhasePathJoin      = "pathJoin"      // path builder: init/edge/node joins (§5.2 Figure 7)
	PhaseCycleJoin     = "cycleJoin"     // joining a split's P+ and P− walks (Procedure 2)
	PhaseLeafJoin      = "leafJoin"      // leaf-edge block projection onto the boundary node
	PhaseTableMerge    = "tableMerge"    // regrouping a child table at its "from" owners (§7)
	PhasePerVertexJoin = "perVertexJoin" // folding the root table into per-vertex counts
)

// CountColorful counts the colorful matches of q in g under the given
// coloring (one color in [0, q.K) per data vertex). This is the inner
// kernel of the color-coding estimator (§2).
func CountColorful(g *graph.Graph, q *query.Graph, colors []uint8, opts Options) (uint64, Stats, error) {
	return CountColorfulContext(context.Background(), g, q, colors, opts)
}

// CountColorfulContext is CountColorful bounded by ctx: the solver's
// worker loops poll ctx every cancelInterval operations, so a canceled or
// deadline-expired run stops mid-block instead of finishing the count. A
// stopped run returns ctx's error and no count.
//
// If an obs.Trace rides on ctx, the solver records one span per superstep
// it executes, named for the phase that ran it (pathJoin, cycleJoin,
// leafJoin, tableMerge, perVertexJoin) — counting itself stays
// bit-identical with or without a trace attached.
func CountColorfulContext(ctx context.Context, g *graph.Graph, q *query.Graph, colors []uint8, opts Options) (uint64, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, Stats{}, err
	}
	plan := opts.Plan
	if plan == nil {
		var err error
		plan, err = PickPlan(q)
		if err != nil {
			return 0, Stats{}, err
		}
	}
	if err := validate(g, q, colors, plan); err != nil {
		return 0, Stats{}, err
	}
	be := opts.Engine
	if be == nil {
		var err error
		be, err = engine.New(opts.Backend, opts.Workers, engine.Job{
			N: g.N(), Graph: g, Colors: colors, Query: q, Plan: plan,
			Algorithm: int(opts.Algorithm), Mode: engine.ModeCount, Ctx: ctx,
		})
		if err != nil {
			return 0, Stats{}, err
		}
	}
	s := newSolver(ctx, g, colors, be, opts.Algorithm)
	count := s.run(plan)
	if err := ctx.Err(); err != nil {
		return 0, Stats{}, err
	}
	// On a multi-process backend every rank holds only its partitions'
	// share of the answer; Reduce sums them (and surfaces a lost worker
	// or remote failure). Single-process backends return count unchanged.
	count, err := be.Reduce(count)
	if err != nil {
		return 0, Stats{}, err
	}
	return count, s.stats(), nil
}

// stats snapshots the backend counters of a finished run. A backend that
// distributes the tables themselves (dist) reports its remote ranks'
// entry totals through the optional TableEntriesHint; locally the
// coordinator's shards are empty, so the sum stays the global total.
func (s *solver) stats() Stats {
	entries := s.entries
	if h, ok := s.be.(interface{ TableEntriesHint() int64 }); ok {
		entries += h.TableEntriesHint()
	}
	max, avg, total := s.be.LoadStats()
	return Stats{
		Backend:      s.be.Name(),
		Workers:      s.be.Workers(),
		MaxLoad:      max,
		AvgLoad:      avg,
		TotalLoad:    total,
		Messages:     s.be.Messages(),
		Steals:       s.be.Steals(),
		Supersteps:   s.be.Steps(),
		TableEntries: entries,
		Loads:        s.be.Loads(),
	}
}

func validate(g *graph.Graph, q *query.Graph, colors []uint8, plan *decomp.Tree) error {
	if q.K < 1 {
		return fmt.Errorf("core: empty query")
	}
	if q.K > 16 {
		return fmt.Errorf("core: query %s has %d nodes; max 16", q.Name, q.K)
	}
	if plan.Query != q && (plan.Query.K != q.K || plan.Query.M() != q.M()) {
		return fmt.Errorf("core: plan was built for query %s, not %s", plan.Query.Name, q.Name)
	}
	if len(colors) != g.N() {
		return fmt.Errorf("core: coloring has %d entries for %d vertices", len(colors), g.N())
	}
	for v, c := range colors {
		if int(c) >= q.K {
			return fmt.Errorf("core: vertex %d has color %d ≥ k=%d", v, c, q.K)
		}
	}
	return nil
}

// solver carries the per-run state: the block result tables, the cached
// CSR groupings of child tables used by joins, and one emission batcher
// per partition (a superstep's produce task has exclusive use of its
// partition's batcher, and supersteps never overlap, so the batchers are
// reused for the whole run without synchronization).
type solver struct {
	ctx      context.Context
	tr       *obs.Trace  // nil when the run carries no trace; all methods tolerate nil
	stop     atomic.Bool // latched ctx cancellation, visible to every worker
	g        *graph.Graph
	colors   []uint8
	be       engine.Backend
	alg      Algorithm
	tables   map[*decomp.Block]*engine.Sharded
	grouped  map[groupKey][]*groupedIdx
	unary    map[*decomp.Block][]*nodeIdx
	batchers []*engine.Batcher
	entries  int64
}

// newSolver assembles the per-run solver state over a ready backend.
func newSolver(ctx context.Context, g *graph.Graph, colors []uint8, be engine.Backend, alg Algorithm) *solver {
	s := &solver{
		ctx:      ctx,
		tr:       obs.FromContext(ctx),
		g:        g,
		colors:   colors,
		be:       be,
		alg:      alg,
		tables:   make(map[*decomp.Block]*engine.Sharded),
		grouped:  make(map[groupKey][]*groupedIdx),
		unary:    make(map[*decomp.Block][]*nodeIdx),
		batchers: make([]*engine.Batcher, be.P()),
	}
	for i := range s.batchers {
		s.batchers[i] = &engine.Batcher{}
	}
	return s
}

func (s *solver) colorOf(v uint32) sig.Sig { return sig.Of(s.colors[v]) }

// cancelInterval is how many inner-loop operations a worker performs
// between context polls: frequent enough that a canceled run frees its
// workers within milliseconds, rare enough that the poll (a counter mask
// plus, every interval, an atomic load and a channel select) is invisible
// next to the join work itself. Must be a power of two.
const cancelInterval = 1 << 12

// canceled is the worker-loop cancellation poll. Callers keep a per-loop
// counter n and call canceled(&n) once per operation; every cancelInterval
// operations it checks the latched stop flag and polls ctx, latching a
// cancellation so every other worker's next poll sees it without touching
// the context again.
func (s *solver) canceled(n *int) bool {
	*n++
	if *n&(cancelInterval-1) != 0 {
		return false
	}
	return s.aborted()
}

// aborted polls the run's context immediately (no counter); used between
// blocks, splits, and path-building steps.
func (s *solver) aborted() bool {
	if s.stop.Load() {
		return true
	}
	select {
	case <-s.ctx.Done():
		s.stop.Store(true)
		return true
	default:
		return false
	}
}

// track records a freshly built table's size for the stats.
func (s *solver) track(t *engine.Sharded) *engine.Sharded {
	s.entries += int64(t.Len())
	return t
}

// run traverses the decomposition tree bottom-up (§4.2), solving each block
// from its children's projection tables, and returns the count produced by
// the root block.
func (s *solver) run(plan *decomp.Tree) uint64 {
	var answer uint64
	for _, b := range plan.Blocks {
		if s.aborted() {
			return 0
		}
		isRoot := b == plan.Root
		switch b.Kind {
		case decomp.LeafEdge:
			s.tables[b] = s.solveLeaf(b)
		case decomp.CycleBlock:
			if isRoot {
				answer = s.solveRootCycle(b)
			} else {
				s.tables[b] = s.solveCycle(b)
			}
		case decomp.SingletonRoot:
			if len(b.Children) == 0 {
				// A 1-node query: every vertex is a colorful match. Count
				// only owned vertices so multi-process ranks contribute
				// disjoint shares to the Reduce.
				lo, hi := s.be.Owned()
				answer = uint64(hi - lo)
			} else {
				answer = s.tables[b.Children[0]].Total()
			}
		}
		// Children's tables are dead once their parent is solved.
		for _, c := range b.Children {
			delete(s.tables, c)
			s.dropGroups(c)
		}
	}
	return answer
}
