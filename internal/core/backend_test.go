package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/query"
)

// The tentpole guarantee: the sim and parallel backends are
// interchangeable — bit-identical counts on every query shape, algorithm,
// and worker count, because the runtime only decides where commutative
// accumulations happen, never which ones.

func TestBackendEquivalenceCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.PowerLawGraph("pl", 500, 1.5, rng)
	queries := append(query.Catalog(), query.MustByName("satellite"), query.Cycle(6), query.Star(5))
	for _, q := range queries {
		colors := randColors(g.N(), q.K, rng)
		for _, alg := range []Algorithm{PS, DB} {
			want := count(t, g, q, colors, Options{Algorithm: alg, Backend: "sim", Workers: 4})
			for _, workers := range []int{1, 2, 3, 8} {
				got := count(t, g, q, colors, Options{Algorithm: alg, Backend: "parallel", Workers: workers})
				if got != want {
					t.Errorf("%s %s: parallel w=%d got %d, sim got %d", q.Name, alg, workers, got, want)
				}
			}
		}
	}
}

// Randomized property: random graphs × random treewidth-2 queries ×
// random worker counts, sim vs parallel, all three algorithms.
func TestBackendEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(120)
		g := gen.ErdosRenyi("er", n, int64(2+rng.Intn(5))*int64(n)/2, rng)
		q := randomTW2Query(rng)
		colors := randColors(g.N(), q.K, rng)
		alg := []Algorithm{PS, PSEven, DB}[rng.Intn(3)]
		want := count(t, g, q, colors, Options{Algorithm: alg, Backend: "sim", Workers: 1 + rng.Intn(6)})
		got := count(t, g, q, colors, Options{Algorithm: alg, Backend: "parallel", Workers: 1 + rng.Intn(6)})
		if got != want {
			t.Fatalf("trial %d: %s on %s: parallel %d != sim %d", trial, alg, q.Name, got, want)
		}
	}
}

// Per-vertex counts must agree vertex for vertex across backends.
func TestBackendEquivalencePerVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.PowerLawGraph("pl", 300, 1.6, rng)
	for _, qn := range []string{"glet1", "brain1", "cycle5"} {
		q := query.MustByName(qn)
		colors := randColors(g.N(), q.K, rng)
		simPer, simAnchor, _, err := CountColorfulPerVertex(g, q, colors, -1, Options{Backend: "sim", Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		parPer, parAnchor, _, err := CountColorfulPerVertex(g, q, colors, -1, Options{Backend: "parallel", Workers: 5})
		if err != nil {
			t.Fatal(err)
		}
		if simAnchor != parAnchor {
			t.Fatalf("%s: anchors diverged: %d vs %d", qn, simAnchor, parAnchor)
		}
		if !reflect.DeepEqual(simPer, parPer) {
			t.Errorf("%s: per-vertex counts diverged between backends", qn)
		}
	}
}

// Stats shape: each backend reports its own name and the counters that
// exist for it — messages for sim, none for parallel.
func TestBackendStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.PowerLawGraph("pl", 400, 1.5, rng)
	q := query.MustByName("glet1")
	colors := randColors(g.N(), q.K, rng)

	_, sim, err := CountColorful(g, q, colors, Options{Backend: "sim", Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Backend != "sim" || sim.Workers != 3 || sim.Messages <= 0 || sim.Steals != 0 || len(sim.Loads) != 3 {
		t.Errorf("sim stats malformed: %+v", sim)
	}
	_, par, err := CountColorful(g, q, colors, Options{Backend: "parallel", Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if par.Backend != "parallel" || par.Workers != 3 || par.Messages != 0 || len(par.Loads) != 3 {
		t.Errorf("parallel stats malformed: %+v", par)
	}
	if par.TotalLoad != sim.TotalLoad {
		// Load is charged per scanned operation, which is content-
		// determined — the backends must agree on the work they did.
		t.Errorf("total load diverged: parallel %d, sim %d", par.TotalLoad, sim.TotalLoad)
	}
}

func TestBackendUnknownRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ErdosRenyi("er", 20, 40, rng)
	q := query.Cycle(4)
	colors := randColors(g.N(), q.K, rng)
	if _, _, err := CountColorful(g, q, colors, Options{Backend: "mpi"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, _, _, err := CountColorfulPerVertex(g, q, colors, -1, Options{Backend: "mpi"}); err == nil {
		t.Fatal("unknown backend accepted by per-vertex path")
	}
}

// Cancellation must reach the parallel backend's worker loops exactly as
// it reaches the sim's: a mid-run cancel frees the call promptly.
func TestParallelBackendCancelMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.PowerLawGraph("pl", 30000, 1.5, rng)
	q := query.MustByName("brain1")
	colors := randColors(g.N(), q.K, rand.New(rand.NewSource(3)))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := CountColorfulContext(ctx, g, q, colors, Options{Backend: "parallel", Workers: 4})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if freed := time.Since(start); freed > 2*time.Second {
			t.Errorf("run kept burning %v after cancel", freed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled run never returned")
	}
}

// Guard against a quietly sequential "parallel" backend: worker counts
// above one must actually engage more than one goroutine. Proven through
// the steal counter being well-defined and the run completing with loads
// spread across workers.
func TestParallelBackendSpreadsLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := gen.PowerLawGraph("pl", 2000, 1.5, rng)
	q := query.MustByName("glet1")
	colors := randColors(g.N(), q.K, rng)
	_, st, err := CountColorful(g, q, colors, Options{Backend: "parallel", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, l := range st.Loads {
		if l > 0 {
			nonZero++
		}
	}
	if nonZero < 2 {
		t.Errorf("load on %d of %d workers; partitioning is broken: %+v", nonZero, len(st.Loads), st.Loads)
	}
}
