package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/decomp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

// This file implements plan selection (§6). The paper observes that the
// optimal decomposition tree is "mainly determined by the structure of the
// query" and picks plans without analyzing the large data graph. We follow
// the same enumerate-and-rank design, with a twist that keeps the ranking
// faithful to the real cost structure: every enumerated tree is priced by
// actually running the DB solver on a tiny fixed synthetic graph (a
// 96-vertex skewed Chung-Lu sample), and the cheapest tree wins, with the
// structural §6 score as tie-break. The calibration graph is constant, so
// selection remains independent of the data graph and is cached per query.

var (
	planCache sync.Map // query canonical key → *decomp.Tree
	calOnce   sync.Once
	calGraph  *graph.Graph
	calColors map[int][]uint8
	calMu     sync.Mutex
)

// PickPlan returns the decomposition tree used when Options.Plan is nil:
// the calibrated-cost minimum over all enumerated trees.
func PickPlan(q *query.Graph) (*decomp.Tree, error) {
	key := queryKey(q)
	if v, ok := planCache.Load(key); ok {
		return v.(*decomp.Tree), nil
	}
	trees, err := decomp.Enumerate(q)
	if err != nil {
		return nil, err
	}
	// Tree-heavy queries can have thousands of join-order variants; price
	// only the structurally most promising ones (the §6 score is a good
	// pre-filter, and join-order variants of equal score are near-equal).
	const maxCalibrated = 64
	if len(trees) > maxCalibrated {
		sort.Slice(trees, func(i, j int) bool {
			si, sj := trees[i].Score(), trees[j].Score()
			if si.Less(sj) {
				return true
			}
			if sj.Less(si) {
				return false
			}
			return trees[i].Encode() < trees[j].Encode()
		})
		trees = trees[:maxCalibrated]
	}
	best := trees[0]
	if len(trees) > 1 {
		g, colors := calibration(q.K)
		bestCost := int64(-1)
		for _, tr := range trees {
			_, stats, err := CountColorful(g, q, colors, Options{
				Algorithm: DB,
				Workers:   1,
				Plan:      tr,
			})
			if err != nil {
				return nil, fmt.Errorf("core: calibrating plan for %s: %w", q.Name, err)
			}
			better := bestCost < 0 || stats.TotalLoad < bestCost
			if !better && stats.TotalLoad == bestCost {
				// Structural §6 score breaks exact cost ties.
				better = tr.Score().Less(best.Score())
			}
			if better {
				best, bestCost = tr, stats.TotalLoad
			}
		}
	}
	planCache.Store(key, best)
	return best, nil
}

// queryKey canonically serializes a query's labeled structure.
func queryKey(q *query.Graph) string {
	return fmt.Sprintf("%d|%v", q.K, q.Edges())
}

// calibration returns the shared pricing graph and a deterministic
// k-coloring of it. The graph is skewed (power-law with hubs) so plan
// rankings transfer to the heavy-tailed graphs the paper targets.
func calibration(k int) (*graph.Graph, []uint8) {
	calOnce.Do(func() {
		const n = 96
		rng := rand.New(rand.NewSource(7))
		w := gen.AddHubs(gen.ScaleWeights(gen.PowerLawWeights(n, 1.5), 6), 20, 3)
		calGraph = gen.ChungLu("calibration", w, rng)
		calColors = make(map[int][]uint8)
	})
	calMu.Lock()
	defer calMu.Unlock()
	colors, ok := calColors[k]
	if !ok {
		rng := rand.New(rand.NewSource(int64(100 + k)))
		colors = make([]uint8, calGraph.N())
		for i := range colors {
			colors[i] = uint8(rng.Intn(k))
		}
		calColors[k] = colors
	}
	return calGraph, colors
}
