package core

import (
	"context"
	"fmt"

	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/table"
)

// Per-vertex counting: instead of the single colorful-match total, report
// for every data vertex v the number of colorful matches that map a chosen
// query node (the anchor) to v. This is the per-vertex motif count used by
// the biological applications the paper builds on (Alon et al., FASCIA).
// It falls out of the same machinery: the root block is solved as if the
// anchor were a boundary node, yielding a unary projection table instead of
// a scalar.

// CountColorfulPerVertex counts colorful matches of q in g grouped by the
// data vertex that the anchor query node maps to. anchor must be a node of
// the plan's root block (the natural grouping nodes for the chosen plan);
// pass anchor = -1 to let the solver pick one. It returns the per-vertex
// counts, the anchor actually used, and the engine stats.
func CountColorfulPerVertex(g *graph.Graph, q *query.Graph, colors []uint8, anchor int, opts Options) ([]uint64, int, Stats, error) {
	return CountColorfulPerVertexContext(context.Background(), g, q, colors, anchor, opts)
}

// CountColorfulPerVertexContext is CountColorfulPerVertex bounded by ctx,
// with the same cancellation and tracing semantics as
// CountColorfulContext: the solver polls ctx between (and inside) join
// steps, and records a span per superstep if an obs.Trace rides on ctx.
func CountColorfulPerVertexContext(ctx context.Context, g *graph.Graph, q *query.Graph, colors []uint8, anchor int, opts Options) ([]uint64, int, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, Stats{}, err
	}
	plan := opts.Plan
	if plan == nil {
		var err error
		plan, err = PickPlan(q)
		if err != nil {
			return nil, 0, Stats{}, err
		}
	}
	if err := validate(g, q, colors, plan); err != nil {
		return nil, 0, Stats{}, err
	}
	root := plan.Root
	if anchor < 0 {
		anchor = root.Nodes[0]
	}
	if !contains(root.Nodes, anchor) {
		return nil, 0, Stats{}, fmt.Errorf(
			"core: anchor %d is not in the plan's root block %v; pass a plan whose root contains it", anchor, root.Nodes)
	}
	be := opts.Engine
	if be == nil {
		var err error
		be, err = engine.New(opts.Backend, opts.Workers, engine.Job{
			N: g.N(), Graph: g, Colors: colors, Query: q, Plan: plan,
			Algorithm: int(opts.Algorithm), Mode: engine.ModePerVertex, Anchor: anchor, Ctx: ctx,
		})
		if err != nil {
			return nil, 0, Stats{}, err
		}
	}
	s := newSolver(ctx, g, colors, be, opts.Algorithm)
	per := s.runPerVertex(plan, anchor)
	if err := ctx.Err(); err != nil {
		return nil, 0, Stats{}, err
	}
	// Each rank's slots are nonzero only for its owned vertices (entries
	// are homed at the anchor mapping's owner); ReduceVec assembles the
	// global vector on a multi-process backend, and is the identity
	// locally.
	per, err := be.ReduceVec(per)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	return per, anchor, s.stats(), nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// runPerVertex is solver.run with the root block solved into a unary table
// keyed by the anchor's mapping.
func (s *solver) runPerVertex(plan *decomp.Tree, anchor int) []uint64 {
	per := make([]uint64, s.g.N())
	for _, b := range plan.Blocks {
		if b != plan.Root {
			switch b.Kind {
			case decomp.LeafEdge:
				s.tables[b] = s.solveLeaf(b)
			case decomp.CycleBlock:
				s.tables[b] = s.solveCycle(b)
			}
			for _, c := range b.Children {
				delete(s.tables, c)
				s.dropGroups(c)
			}
			continue
		}
		var unary *engine.Sharded
		switch b.Kind {
		case decomp.SingletonRoot:
			if len(b.Children) == 0 {
				// 1-node query: one match per vertex — owned vertices only,
				// so multi-process ranks fill disjoint slots for ReduceVec.
				lo, hi := s.be.Owned()
				for v := lo; v < hi; v++ {
					per[v] = 1
				}
				return per
			}
			unary = s.tables[b.Children[0]]
		case decomp.CycleBlock:
			// Solve the root cycle as if the anchor were its boundary:
			// identical joins, but mappings of the anchor are carried to
			// the output (§5.2's one-boundary case).
			anchored := &decomp.Block{
				Kind:     b.Kind,
				Nodes:    b.Nodes,
				Boundary: []int{anchor},
				NodeAnn:  b.NodeAnn,
				EdgeAnn:  b.EdgeAnn,
				Children: b.Children,
			}
			unary = s.solveCycle(anchored)
		case decomp.LeafEdge:
			// A root is never a leaf edge (contraction always leaves a
			// singleton after the last leaf).
			panic("core: leaf-edge root block")
		}
		end := s.tr.Start(PhasePerVertexJoin)
		unary.Iter(func(k table.Key, c uint64) bool {
			per[k.U] += c
			return true
		})
		end()
	}
	return per
}
