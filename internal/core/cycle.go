package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/table"
)

// This file implements the cycle-block solvers (§5). A cycle of length L is
// split at two positions into the clockwise walk P+ and the counter-
// clockwise walk P− (both start→end); their tables are built by the path
// machinery and joined on the shared endpoints. PS performs one split at
// the boundary nodes (Figure 4); DB performs L splits — one per candidate
// highest position h, at (h, h⊕⌊L/2⌋) — with the high-starting order
// constraint, and aggregates (Figure 6, Equation 1). Annotation convention
// (§5.2): P+ includes only the end node's annotation, P− only the start's.

// bndLoc says where a boundary node's mapped vertex is found after the
// final join of one split.
type bndLoc int

const (
	locStart  bndLoc = iota // π at the split start: P+ key U
	locEnd                  // π at the split end: P+ key V
	locPlusX                // recorded in P+ key X
	locPlusY                // recorded in P+ key Y
	locMinusX               // recorded in P− key X
	locMinusY               // recorded in P− key Y
)

// split is one (start,end) cycle split with boundary locations resolved.
type split struct {
	plus, minus pathSpec
	locs        []bndLoc // parallel to block.Boundary
}

// solveCycle computes the projection table of a non-root cycle block:
// unary for one boundary node, binary (Boundary[0], Boundary[1]) for two.
func (s *solver) solveCycle(b *decomp.Block) *engine.Sharded {
	out := engine.NewSharded(s.be)
	for _, sp := range s.splits(b) {
		if s.aborted() {
			break
		}
		plus := s.buildPath(sp.plus)
		minus := s.buildPath(sp.minus)
		s.joinSplit(b, sp, plus, minus, out, nil)
	}
	return s.track(out)
}

// solveRootCycle computes the total colorful-match count of a root cycle
// block (no boundary nodes, §5.2 end).
func (s *solver) solveRootCycle(b *decomp.Block) uint64 {
	partial := make([]uint64, s.be.P())
	for _, sp := range s.splits(b) {
		if s.aborted() {
			break
		}
		plus := s.buildPath(sp.plus)
		minus := s.buildPath(sp.minus)
		s.joinSplit(b, sp, plus, minus, nil, partial)
	}
	var total uint64
	for _, p := range partial {
		total += p
	}
	return total
}

// solveLeaf computes the unary projection table of a leaf-edge block
// (a,b): a single-edge walk from the leaf node to the boundary node,
// folding in both node annotations, then projected onto π(a) (§5.2).
func (s *solver) solveLeaf(b *decomp.Block) *engine.Sharded {
	boundary, leaf := b.Nodes[0], b.Nodes[1]
	spec := pathSpec{
		start:    leaf,
		startAnn: b.NodeAnn[1],
		steps: []pathStep{{
			node:    boundary,
			edgeAnn: b.EdgeAnn[0],
			nodeAnn: b.NodeAnn[0],
		}},
	}
	if spec.steps[0].edgeAnn != nil {
		spec.steps[0].edgeFromFirst = spec.steps[0].edgeAnn.Boundary[0] == leaf
	}
	walk := s.buildPath(spec)
	// Project (π(leaf), π(a), α) ↦ (π(a), α): local, entries live at owner(V).
	out := engine.NewSharded(s.be)
	defer s.tr.Start(PhaseLeafJoin)()
	s.be.Run(func(w int) {
		sh := out.Shard(w)
		var load int64
		var poll int
		ents := walk.Shard(w).Ents()
		for i := range ents {
			e := &ents[i]
			load++
			if s.canceled(&poll) {
				break
			}
			sh.Add(table.Unary(e.V(), e.S), e.C)
		}
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

// splits enumerates the algorithm's cycle splits with fully built path
// specs: one for PS, L for DB.
func (s *solver) splits(b *decomp.Block) []split {
	l := b.Len()
	pos := make(map[int]int, l) // query node id → cycle position
	for i, n := range b.Nodes {
		pos[n] = i
	}
	if s.alg == PS || s.alg == PSEven {
		// PS splits at the boundary nodes (§5.1); with fewer than two
		// boundary nodes, at the first boundary (or position 0) and its
		// diagonal. PSEven always splits evenly, letting boundary nodes
		// fall inside the walks (their mappings get recorded), which evens
		// the walk lengths but keeps the unpruned search.
		start := 0
		if len(b.Boundary) > 0 {
			start = pos[b.Boundary[0]]
		}
		end := (start + l/2) % l
		if s.alg == PS && len(b.Boundary) == 2 {
			end = pos[b.Boundary[1]]
		}
		return []split{s.makeSplit(b, start, end, false)}
	}
	// DB: every position is a candidate highest node (Equation 1).
	splits := make([]split, 0, l)
	for h := 0; h < l; h++ {
		splits = append(splits, s.makeSplit(b, h, (h+l/2)%l, true))
	}
	return splits
}

// makeSplit constructs the P+ (clockwise) and P− (counter-clockwise) path
// specs for splitting cycle b at positions (start, end), and resolves where
// each boundary node's mapping will be found. Boundary nodes that fall
// strictly inside a walk are recorded in its X then Y key fields, in walk
// order — this uniformly realizes the six §5.1 configurations.
func (s *solver) makeSplit(b *decomp.Block, start, end int, ordered bool) split {
	l := b.Len()
	isBoundary := make(map[int]bool, len(b.Boundary))
	for _, n := range b.Boundary {
		isBoundary[n] = true
	}
	locs := make([]bndLoc, len(b.Boundary))
	locOf := func(node int, loc bndLoc) {
		for i, n := range b.Boundary {
			if n == node {
				locs[i] = loc
			}
		}
	}
	locOf(b.Nodes[start], locStart)
	locOf(b.Nodes[end], locEnd)

	buildWalk := func(dir int, isPlus bool) pathSpec {
		spec := pathSpec{start: b.Nodes[start], ordered: ordered}
		if !isPlus {
			spec.startAnn = b.NodeAnn[start] // P− owns the start annotation
		}
		nextRecord := 1
		for p := start; p != end; {
			np := ((p+dir)%l + l) % l
			st := pathStep{node: b.Nodes[np]}
			// Cycle edge between positions p and np: EdgeAnn[i] annotates
			// (Nodes[i], Nodes[i+1]); going clockwise that's index p, going
			// counter-clockwise it's index np.
			if dir == 1 {
				st.edgeAnn = b.EdgeAnn[p]
			} else {
				st.edgeAnn = b.EdgeAnn[np]
			}
			if st.edgeAnn != nil {
				st.edgeFromFirst = st.edgeAnn.Boundary[0] == b.Nodes[p]
			}
			if np != end {
				st.nodeAnn = b.NodeAnn[np]
				if isBoundary[b.Nodes[np]] {
					st.record = nextRecord
					nextRecord++
					if isPlus {
						locOf(b.Nodes[np], []bndLoc{locPlusX, locPlusY}[st.record-1])
					} else {
						locOf(b.Nodes[np], []bndLoc{locMinusX, locMinusY}[st.record-1])
					}
				}
			} else if isPlus {
				st.nodeAnn = b.NodeAnn[end] // P+ owns the end annotation
			}
			spec.steps = append(spec.steps, st)
			p = np
		}
		return spec
	}
	return split{
		plus:  buildWalk(+1, true),
		minus: buildWalk(-1, false),
		locs:  locs,
	}
}

// joinSplit joins the P+ and P− tables of one split (Figure 4/6
// Procedure 2): entries agree on (U,V), signatures must intersect exactly
// in {χ(U), χ(V)}, and products are emitted keyed by the block's boundary
// mappings — into out for 1/2-boundary blocks, or summed into partial for
// a root cycle. Both tables are homed at the owner of V, so the join
// itself is local; only the output entries travel.
//
// Both flat shards are sorted by the packed (V,U) word, so the join is a
// sorted merge: advance two cursors to each common (U,V) group and cross
// the groups' contiguous entry runs — no per-split hash index, and the
// signature filter scans adjacent memory on both sides.
func (s *solver) joinSplit(b *decomp.Block, sp split, plus, minus *engine.Sharded, out *engine.Sharded, partial []uint64) {
	produce := func(w int, emit engine.Emit) {
		eb := s.batchers[w].Bind(emit)
		defer eb.Flush()
		pe := plus.Shard(w).Ents()
		me := minus.Shard(w).Ents()
		var load int64
		var poll int
		var sum uint64
		i, j := 0, 0
		for i < len(pe) && j < len(me) {
			uv := pe[i].VU
			if uv < me[j].VU {
				i++
				continue
			}
			if me[j].VU < uv {
				j++
				continue
			}
			i2 := i + 1
			for i2 < len(pe) && pe[i2].VU == uv {
				i2++
			}
			j2 := j + 1
			for j2 < len(me) && me[j2].VU == uv {
				j2++
			}
			need := s.colorOf(uint32(uv)).Union(s.colorOf(uint32(uv >> 32)))
			for a := i; a < i2; a++ {
				kp := &pe[a]
				for m := j; m < j2; m++ {
					load++
					if s.canceled(&poll) {
						goto done
					}
					e := &me[m]
					if kp.S.Inter(e.S) != need {
						continue
					}
					total := kp.C * e.C
					comb := kp.S.Union(e.S)
					switch len(b.Boundary) {
					case 0:
						sum += total
					case 1:
						va := vertexAt(sp.locs[0], kp, e)
						eb.Emit(s.be.Owner(va), engine.Msg{K: table.Unary(va, comb), C: total})
					case 2:
						va := vertexAt(sp.locs[0], kp, e)
						vb := vertexAt(sp.locs[1], kp, e)
						eb.Emit(s.be.Owner(vb), engine.Msg{K: table.Binary(va, vb, comb), C: total})
					}
				}
			}
			i, j = i2, j2
		}
	done:
		s.be.AddLoad(w, load)
		if partial != nil {
			partial[w] += sum
		}
	}
	defer s.tr.Start(PhaseCycleJoin)()
	if out != nil {
		s.be.Step(out, produce)
		return
	}
	// Root cycle (no boundary): every product folds into the local partial
	// sum, so nothing is ever emitted — run the join without a superstep.
	s.be.Run(func(w int) {
		produce(w, func(int, []engine.Msg) {
			panic("core: root-cycle join emitted an entry")
		})
	})
}

// vertexAt extracts a boundary node's mapped vertex from the joined pair of
// flat entries according to its resolved location.
func vertexAt(loc bndLoc, plus, minus *table.Ent) uint32 {
	switch loc {
	case locStart:
		return plus.U()
	case locEnd:
		return plus.V()
	case locPlusX:
		return plus.X()
	case locPlusY:
		return plus.Y()
	case locMinusX:
		return minus.X()
	case locMinusY:
		return minus.Y()
	}
	panic(fmt.Sprintf("core: invalid boundary location %d", loc))
}
