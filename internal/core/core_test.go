package core

import (
	"math/rand"
	"testing"

	"repro/internal/decomp"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

func randColors(n, k int, rng *rand.Rand) []uint8 {
	colors := make([]uint8, n)
	for i := range colors {
		colors[i] = uint8(rng.Intn(k))
	}
	return colors
}

// count runs CountColorful and fails the test on error.
func count(t *testing.T, g *graph.Graph, q *query.Graph, colors []uint8, opts Options) uint64 {
	t.Helper()
	got, _, err := CountColorful(g, q, colors, opts)
	if err != nil {
		t.Fatalf("CountColorful(%s,%s): %v", g.Name, q.Name, err)
	}
	return got
}

// Both algorithms must agree exactly with the brute-force oracle on every
// catalog query over random graphs, for several colorings and worker counts.
func TestMatchesOracleOnCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := append(query.Catalog(), query.MustByName("satellite"),
		query.Cycle(3), query.Cycle(4), query.Cycle(6),
		query.PathGraph(2), query.PathGraph(5), query.Star(5), query.BinaryTree(7))
	g := gen.ErdosRenyi("er", 60, 240, rng)
	for _, q := range queries {
		colors := randColors(g.N(), q.K, rng)
		want := exact.ColorfulMatches(g, q, colors)
		for _, alg := range []Algorithm{PS, PSEven, DB} {
			for _, workers := range []int{1, 4} {
				got := count(t, g, q, colors, Options{Algorithm: alg, Workers: workers})
				if got != want {
					t.Errorf("%s %s w=%d: got %d, want %d", q.Name, alg, workers, got, want)
				}
			}
		}
	}
}

// Randomized cross-validation: random graphs, random treewidth-2 queries
// assembled from cycles and tails, random colorings.
func TestRandomizedCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(40)
		g := gen.ErdosRenyi("er", n, int64(2+rng.Intn(5))*int64(n)/2, rng)
		q := randomTW2Query(rng)
		colors := randColors(g.N(), q.K, rng)
		want := exact.ColorfulMatches(g, q, colors)
		for _, alg := range []Algorithm{PS, PSEven, DB} {
			got := count(t, g, q, colors, Options{Algorithm: alg, Workers: 1 + rng.Intn(5)})
			if got != want {
				t.Fatalf("trial %d: %s on %s: got %d, want %d\nquery: %s",
					trial, alg, q.Name, got, want, q)
			}
		}
	}
}

// randomTW2Query builds a random connected treewidth-2 query: a base cycle
// or edge, plus attached cycles (sharing a vertex or an edge) and pendant
// paths, trimmed to ≤ 9 nodes.
func randomTW2Query(rng *rand.Rand) *query.Graph {
	type edge = [2]int
	var edges []edge
	next := 0
	addCycle := func(attachA, attachB int) (int, int) {
		l := 3 + rng.Intn(4)
		first := -1
		prev := attachA
		if prev < 0 {
			prev = next
			first = next
			next++
		} else {
			first = prev
		}
		for i := 1; i < l; i++ {
			var cur int
			if i == l-1 && attachB >= 0 {
				cur = attachB
			} else {
				cur = next
				next++
			}
			edges = append(edges, edge{prev, cur})
			prev = cur
		}
		if attachB < 0 {
			edges = append(edges, edge{prev, first})
			return first, prev
		}
		return first, attachB
	}
	a, b := addCycle(-1, -1)
	for rng.Intn(2) == 0 && next < 7 {
		switch rng.Intn(3) {
		case 0: // share one vertex
			addCycle(a, -1)
		case 1: // attach between two existing vertices (parallel path)
			addCycle(a, b)
		case 2: // pendant path
			prev := b
			for i := 0; i < 1+rng.Intn(2); i++ {
				edges = append(edges, edge{prev, next})
				prev = next
				next++
			}
		}
	}
	q := query.New("rand", next)
	for _, e := range edges {
		q.AddEdge(e[0], e[1])
	}
	if !q.TreewidthAtMost2() || !q.Connected() {
		// Parallel attachments can create treewidth-3 shapes; fall back.
		return query.Cycle(4)
	}
	return q
}

// The solver must be deterministic and independent of worker count.
func TestWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gen.PowerLawGraph("pl", 300, 1.5, rng)
	q := query.MustByName("brain1")
	colors := randColors(g.N(), q.K, rng)
	base := count(t, g, q, colors, Options{Algorithm: DB, Workers: 1})
	for _, w := range []int{2, 3, 7, 16, 64} {
		for _, alg := range []Algorithm{PS, DB} {
			if got := count(t, g, q, colors, Options{Algorithm: alg, Workers: w}); got != base {
				t.Errorf("%s w=%d: %d != %d", alg, w, got, base)
			}
		}
	}
}

// Every enumerated decomposition tree must yield the same count (plan
// independence, §6).
func TestPlanInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := gen.ErdosRenyi("er", 40, 140, rng)
	for _, qn := range []string{"brain1", "satellite", "ecoli1"} {
		q := query.MustByName(qn)
		colors := randColors(g.N(), q.K, rng)
		trees, err := decomp.Enumerate(q)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.ColorfulMatches(g, q, colors)
		for i, tr := range trees {
			for _, alg := range []Algorithm{PS, DB} {
				got := count(t, g, q, colors, Options{Algorithm: alg, Workers: 3, Plan: tr})
				if got != want {
					t.Errorf("%s plan %d %s: got %d, want %d\n%s", qn, i, alg, got, want, tr)
				}
			}
		}
	}
}

func TestTinyQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi("er", 25, 60, rng)
	// Single node: count = n for any coloring.
	one := query.PathGraph(1)
	if got := count(t, g, one, randColors(g.N(), 1, rng), Options{}); got != uint64(g.N()) {
		t.Errorf("single node: %d, want %d", got, g.N())
	}
	// Single edge: colorful matches = ordered bichromatic adjacent pairs.
	edgeQ := query.PathGraph(2)
	colors := randColors(g.N(), 2, rng)
	want := exact.ColorfulMatches(g, edgeQ, colors)
	if got := count(t, g, edgeQ, colors, Options{Algorithm: DB}); got != want {
		t.Errorf("single edge: %d, want %d", got, want)
	}
}

func TestValidationErrors(t *testing.T) {
	g := gen.ErdosRenyi("er", 10, 20, rand.New(rand.NewSource(1)))
	q := query.Cycle(4)
	if _, _, err := CountColorful(g, q, make([]uint8, 5), Options{}); err == nil {
		t.Error("wrong coloring length accepted")
	}
	bad := make([]uint8, g.N())
	bad[3] = 9
	if _, _, err := CountColorful(g, q, bad, Options{}); err == nil {
		t.Error("out-of-range color accepted")
	}
	k4 := query.FromEdges("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if _, _, err := CountColorful(g, k4, make([]uint8, g.N()), Options{}); err == nil {
		t.Error("treewidth-3 query accepted")
	}
	other, _ := decomp.Decompose(query.Cycle(5))
	if _, _, err := CountColorful(g, q, make([]uint8, g.N()), Options{Plan: other}); err == nil {
		t.Error("mismatched plan accepted")
	}
}

// DB's pruning must reduce total load versus PS on a skewed graph while
// producing identical counts — the paper's core claim in miniature.
func TestDBPrunesLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.ChungLu("skewed", gen.AddHubs(gen.ScaleWeights(gen.PowerLawWeights(400, 1.4), 6), 60, 3), rng)
	q := query.Cycle(5)
	colors := randColors(g.N(), q.K, rng)
	cPS, sPS, err := CountColorful(g, q, colors, Options{Algorithm: PS, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cDB, sDB, err := CountColorful(g, q, colors, Options{Algorithm: DB, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cPS != cDB {
		t.Fatalf("counts differ: PS %d, DB %d", cPS, cDB)
	}
	if sDB.TotalLoad >= sPS.TotalLoad {
		t.Errorf("DB load %d not below PS load %d on a skewed graph", sDB.TotalLoad, sPS.TotalLoad)
	}
	// The backend may not honor the requested width (a dist cluster's rank
	// count is fixed at connect time), so check consistency, not the knob.
	if sDB.MaxLoad <= 0 || sDB.Workers <= 0 || len(sDB.Loads) != sDB.Workers {
		t.Errorf("stats malformed: %+v", sDB)
	}
}
