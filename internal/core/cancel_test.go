package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/query"
)

// TestCountColorfulContextPreCanceled: an already-canceled context must
// return before any counting work happens.
func TestCountColorfulContextPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.ErdosRenyi("er", 100, 400, rng)
	q := query.MustByName("glet1")
	colors := randColors(g.N(), q.K, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := CountColorfulContext(ctx, g, q, colors, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCountColorfulContextCancelMidRun: canceling a long count mid-run
// must return context.Canceled promptly — within a small multiple of the
// solver's cancel-check interval, not after finishing the remaining
// blocks — and must free the workers (the function returning is exactly
// that).
func TestCountColorfulContextCancelMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// brain1 on this graph runs for hundreds of milliseconds; the cancel
	// lands mid-solve.
	g := gen.PowerLawGraph("pl", 30000, 1.5, rng)
	q := query.MustByName("brain1")
	colors := randColors(g.N(), q.K, rand.New(rand.NewSource(3)))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := CountColorfulContext(ctx, g, q, colors, Options{Workers: 4})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		// The full run takes ~800ms serially; a canceled one must abort
		// far faster. The bound is loose for slow CI machines while still
		// proving the run did not finish its remaining work.
		if freed := time.Since(start); freed > 2*time.Second {
			t.Errorf("run kept burning %v after cancel", freed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled run never returned")
	}
}

// TestCountColorfulContextMatchesPlain: threading a live (never-canceled)
// context changes nothing about the count.
func TestCountColorfulContextMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.ErdosRenyi("er", 80, 320, rng)
	for _, name := range []string{"glet1", "brain1", "wiki"} {
		q := query.MustByName(name)
		colors := randColors(g.N(), q.K, rand.New(rand.NewSource(5)))
		for _, alg := range []Algorithm{DB, PS} {
			plain := count(t, g, q, colors, Options{Algorithm: alg})
			got, _, err := CountColorfulContext(context.Background(), g, q, colors, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if got != plain {
				t.Errorf("%s/%v: context count %d != plain %d", name, alg, got, plain)
			}
		}
	}
}
