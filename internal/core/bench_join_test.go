package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/sig"
	"repro/internal/table"
)

// Microbenchmarks for the solver's hot join loops, comparing the flat
// signature-major layout (the shipping path) against the previous
// hash-table-and-map layout, which is re-created inline here so the two
// can be benchstat'd side by side. The workloads mirror a mid-size walk
// extension: a walk table of partial paths joined against the data graph's
// edges (edgeJoin) or a unary child table (nodeJoin).

// benchFixture holds one deterministic join workload in both layouts.
type benchFixture struct {
	s     *solver
	cur   *engine.Sharded // walk table, flat layout
	curT  *table.T        // same walk table, hash layout
	ann   *decomp.Block   // unary child annotation, s.tables[ann] populated
	annT  *table.T        // same child table, hash layout
	nKeys int
}

func newBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	rng := rand.New(rand.NewSource(31))
	const n = 4000
	g := gen.ErdosRenyi("bench", n, 6*n, rng)
	colors := make([]uint8, n)
	for i := range colors {
		colors[i] = uint8(rng.Intn(5))
	}
	be := engine.NewParallel(1, n)
	s := newSolver(context.Background(), g, colors, be, DB)

	cur := engine.NewSharded(be)
	curT := table.New(1 << 12)
	for i := 0; i < 20000; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		k := table.Binary(u, v, sig.Of(colors[u]).Add(colors[v]))
		cur.Add(be.Owner(v), k, 1)
		curT.Add(k, 1)
	}

	ann := &decomp.Block{Kind: decomp.LeafEdge, Nodes: []int{0, 1}, Boundary: []int{0}}
	child := engine.NewSharded(be)
	annT := table.New(1 << 12)
	for i := 0; i < 12000; i++ {
		u := uint32(rng.Intn(n))
		k := table.Unary(u, sig.Of(colors[u]).Add(uint8(rng.Intn(5))))
		child.Add(be.Owner(u), k, 1)
		annT.Add(k, 1)
	}
	s.tables[ann] = child
	return &benchFixture{s: s, cur: cur, curT: curT, ann: ann, annT: annT, nKeys: curT.Len()}
}

// BenchmarkNodeJoinInner compares nodeJoin's inner loop: the old shape
// rebuilds a map[uint32][]sigCount from the child per invocation and
// probes it per walk entry through hash iteration; the flat shape scans
// the dense walk slice against the cached CSR index.
func BenchmarkNodeJoinInner(b *testing.B) {
	fx := newBenchFixture(b)
	s := fx.s
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx := make(map[uint32][]sigCount)
			fx.annT.Iter(func(k table.Key, c uint64) bool {
				idx[k.U] = append(idx[k.U], sigCount{s: k.S, c: c})
				return true
			})
			out := table.New(16)
			fx.curT.Iter(func(k table.Key, c uint64) bool {
				for _, e := range idx[k.V] {
					if k.S.Inter(e.s) != s.colorOf(k.V) {
						continue
					}
					out.Add(table.Key{U: k.U, V: k.V, X: k.X, Y: k.Y, S: k.S.Union(e.s)}, c*e.c)
				}
				return true
			})
		}
	})
	b.Run("flat", func(b *testing.B) {
		// Warm the per-block CSR cache once; steady state reuses it, which
		// is the shipping shape (the DB solver joins the same annotation
		// across all L splits).
		s.groupUnary(fx.ann)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.nodeJoin(fx.cur, fx.ann)
		}
	})
}

// BenchmarkEdgeJoinInner compares edgeJoin's data-edge extension loop:
// hash iteration emitting one message per neighbor via a closure, versus
// the flat scan emitting batched runs.
func BenchmarkEdgeJoinInner(b *testing.B) {
	fx := newBenchFixture(b)
	s := fx.s
	spec := pathSpec{}
	st := pathStep{}
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := table.New(16)
			fx.curT.Iter(func(k table.Key, c uint64) bool {
				for _, nb := range s.g.Neighbors(k.V) {
					cn := s.colorOf(nb)
					if !k.S.Disjoint(cn) {
						continue
					}
					out.Add(table.Key{U: k.U, V: nb, X: k.X, Y: k.Y, S: k.S.Union(cn)}, c)
				}
				return true
			})
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.edgeJoin(fx.cur, spec, st)
		}
	})
}

// The batched emission path must not allocate per message: the solver's
// per-partition Batcher reuses one run buffer, and the parallel backend
// merges runs in place. An allocation creeping into Emit would be paid
// once per walk extension — exactly what batching exists to avoid.
func TestBatcherZeroAllocsPerMessage(t *testing.T) {
	var got int
	sink := func(dst int, run []engine.Msg) { got += len(run) }
	var eb engine.Batcher
	eb.Bind(sink) // first Bind allocates the run buffer
	const n = 8192
	m := engine.Msg{K: table.Unary(7, 1), C: 1}
	allocs := testing.AllocsPerRun(10, func() {
		eb.Bind(sink)
		for i := 0; i < n; i++ {
			eb.Emit(i%3, m)
		}
		eb.Flush()
	})
	if allocs != 0 {
		t.Fatalf("Batcher allocated %.0f times for %d messages; want 0", allocs, n)
	}
	if got == 0 {
		t.Fatal("sink never ran")
	}
}
