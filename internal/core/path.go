package core

import (
	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/sig"
	"repro/internal/table"
)

// This file implements the unified path builder shared by the PS and DB
// cycle solvers and by leaf-edge blocks. A path is a directed walk along
// cycle positions from a start node to an end node; its projection table is
// built by an init step followed by alternating EdgeJoin and NodeJoin
// operations (§5.2 Figure 7). Keys are (U=π(start), V=π(current end)) with
// optional recorded boundary mappings in X/Y (the §5.1 configurations), and
// entries live at the owner of V, as in the paper's engine (§7).
//
// The joins run over the flat signature-major layout (table.Flat): each
// shard's entries are one dense slice grouped by the home vertex V, so an
// inner loop is a linear scan, the child side is probed through a
// CSR-style index (groupedIdx/nodeIdx) instead of a hash map, and
// emissions are coalesced into per-destination runs by an engine.Batcher.

// pathStep extends the walk by one cycle node.
type pathStep struct {
	node          int           // query node id being added
	edgeAnn       *decomp.Block // child block annotating the traversed edge; nil = data-graph edge
	edgeFromFirst bool          // traversal enters the child at Boundary[0]
	nodeAnn       *decomp.Block // unary child annotating the added node; nil = none
	record        int           // 0 = none, 1 = record mapped vertex in X, 2 = in Y
}

// pathSpec describes a whole walk.
type pathSpec struct {
	start    int           // query node id of the walk's first node
	startAnn *decomp.Block // unary child annotating the start node (P− convention)
	steps    []pathStep
	ordered  bool // DB: every added cycle vertex must rank below π(start)
}

// buildPath materializes the walk's projection table. A canceled run
// stops between join steps (each step's own loops also poll mid-step) and
// returns the partial table, which the caller discards.
func (s *solver) buildPath(spec pathSpec) *engine.Sharded {
	var cur *engine.Sharded
	rest := spec.steps
	if spec.startAnn != nil {
		cur = s.lift(s.tables[spec.startAnn])
	} else {
		cur = s.initEdge(spec, spec.steps[0])
		if spec.steps[0].nodeAnn != nil {
			cur = s.nodeJoin(cur, spec.steps[0].nodeAnn)
		}
		rest = spec.steps[1:]
	}
	for _, st := range rest {
		if s.aborted() {
			return cur
		}
		cur = s.edgeJoin(cur, spec, st)
		if st.nodeAnn != nil {
			cur = s.nodeJoin(cur, st.nodeAnn)
		}
	}
	return cur
}

func applyRecord(k *table.Key, record int, v uint32) {
	switch record {
	case 1:
		k.X = v
	case 2:
		k.Y = v
	}
}

// initEdge seeds the walk's table from its first edge: either the data
// graph's edges (count 1 per edge per direction, signature {χ(u),χ(v)},
// Figure 4/6 Procedure 1 line 1) or the annotating child block's table.
func (s *solver) initEdge(spec pathSpec, st pathStep) *engine.Sharded {
	out := engine.NewSharded(s.be)
	defer s.tr.Start(PhasePathJoin)()
	if st.edgeAnn == nil {
		s.be.Step(out, func(w int, emit engine.Emit) {
			eb := s.batchers[w].Bind(emit)
			defer eb.Flush()
			lo, hi := s.be.Range(w)
			var load int64
			var poll int
			// The inner break exits one neighbor scan with the poll counter
			// mid-interval, so the outer loop reads the latched stop flag
			// directly — a shared counter check here would realign only
			// every cancelInterval neighbor ops, once per vertex.
			for u := lo; u < hi && !s.stop.Load(); u++ {
				cu := s.colors[u]
				for _, v := range s.g.Neighbors(u) {
					load++
					if s.canceled(&poll) {
						break
					}
					if spec.ordered && !s.g.Higher(u, v) {
						continue
					}
					if s.colors[v] == cu {
						continue
					}
					k := table.Binary(u, v, sig.Of(cu).Add(s.colors[v]))
					applyRecord(&k, st.record, v)
					eb.Emit(s.be.Owner(v), engine.Msg{K: k, C: 1})
				}
			}
			s.be.AddLoad(w, load)
		})
		return s.track(out)
	}
	child := s.tables[st.edgeAnn]
	s.be.Step(out, func(w int, emit engine.Emit) {
		eb := s.batchers[w].Bind(emit)
		defer eb.Flush()
		var load int64
		var poll int
		ents := child.Shard(w).Ents()
		for i := range ents {
			e := &ents[i]
			load++
			if s.canceled(&poll) {
				break
			}
			from, to := e.U(), e.V()
			if !st.edgeFromFirst {
				from, to = to, from
			}
			if spec.ordered && !s.g.Higher(from, to) {
				continue
			}
			nk := table.Binary(from, to, e.S)
			applyRecord(&nk, st.record, to)
			eb.Emit(s.be.Owner(to), engine.Msg{K: nk, C: e.C})
		}
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

// lift turns a unary child table (u,α) into the degenerate walk table
// (u,u,α), seeding a path that includes the start node's annotation.
func (s *solver) lift(child *engine.Sharded) *engine.Sharded {
	out := engine.NewSharded(s.be)
	defer s.tr.Start(PhasePathJoin)()
	s.be.Run(func(w int) {
		sh := out.Shard(w)
		ents := child.Shard(w).Ents()
		for i := range ents {
			e := &ents[i]
			sh.Add(table.Binary(e.U(), e.U(), e.S), e.C)
		}
	})
	return s.track(out)
}

// edgeJoin extends every walk entry (u,v,…,α) across the step's edge: for a
// data-graph edge, by each neighbor w of v with an unused color (Figure 4/6
// Procedure 1); for an annotated edge, by each child entry incident to v
// whose signature meets α exactly at χ(v) (Figure 7 EdgeJoin). Under the DB
// order constraint, only vertices ranking below u extend the walk.
func (s *solver) edgeJoin(cur *engine.Sharded, spec pathSpec, st pathStep) *engine.Sharded {
	out := engine.NewSharded(s.be)
	if st.edgeAnn == nil {
		defer s.tr.Start(PhasePathJoin)()
		s.be.Step(out, func(w int, emit engine.Emit) {
			eb := s.batchers[w].Bind(emit)
			defer eb.Flush()
			var load int64
			var poll int
			ents := cur.Shard(w).Ents()
		scan:
			for i := range ents {
				k := &ents[i]
				u, v := k.U(), k.V()
				for _, nb := range s.g.Neighbors(v) {
					load++
					if s.canceled(&poll) {
						break scan
					}
					if spec.ordered && !s.g.Higher(u, nb) {
						continue
					}
					cn := s.colorOf(nb)
					if !k.S.Disjoint(cn) {
						continue
					}
					nk := table.Key{U: u, V: nb, X: k.X(), Y: k.Y(), S: k.S.Union(cn)}
					applyRecord(&nk, st.record, nb)
					eb.Emit(s.be.Owner(nb), engine.Msg{K: nk, C: k.C})
				}
			}
			s.be.AddLoad(w, load)
		})
		return s.track(out)
	}
	// groupBinary runs (and traces) its own supersteps; span only ours.
	grouped := s.groupBinary(st.edgeAnn, st.edgeFromFirst)
	defer s.tr.Start(PhasePathJoin)()
	s.be.Step(out, func(w int, emit engine.Emit) {
		eb := s.batchers[w].Bind(emit)
		defer eb.Flush()
		var load int64
		var poll int
		idx := grouped[w]
		ents := cur.Shard(w).Ents()
	scan:
		for i := range ents {
			k := &ents[i]
			u, v := k.U(), k.V()
			cv := s.colorOf(v)
			row := idx.at(v)
			for j := range row {
				load++
				if s.canceled(&poll) {
					break scan
				}
				e := &row[j]
				if spec.ordered && !s.g.Higher(u, e.to) {
					continue
				}
				// The walk and the child share exactly the query node at v.
				if k.S.Inter(e.s) != cv {
					continue
				}
				nk := table.Key{U: u, V: e.to, X: k.X(), Y: k.Y(), S: k.S.Union(e.s)}
				applyRecord(&nk, st.record, e.to)
				eb.Emit(s.be.Owner(e.to), engine.Msg{K: nk, C: k.C * e.c})
			}
		}
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

// nodeJoin folds a unary child table into the walk at its current end node
// (Figure 7 NodeJoin). Both tables are homed at the owner of v, so the join
// is communication-free. The child index is built once per block by
// groupUnary and reused across every split that folds the same annotation.
func (s *solver) nodeJoin(cur *engine.Sharded, ann *decomp.Block) *engine.Sharded {
	out := engine.NewSharded(s.be)
	// groupUnary runs (and traces) its own superstep; span only ours.
	grouped := s.groupUnary(ann)
	defer s.tr.Start(PhasePathJoin)()
	s.be.Run(func(w int) {
		idx := grouped[w]
		var load int64
		var poll int
		sh := out.Shard(w)
		ents := cur.Shard(w).Ents()
	scan:
		for i := range ents {
			k := &ents[i]
			v := k.V()
			cv := s.colorOf(v)
			row := idx.at(v)
			for j := range row {
				load++
				if s.canceled(&poll) {
					break scan
				}
				e := &row[j]
				if k.S.Inter(e.s) != cv {
					continue
				}
				sh.Add(table.Key{U: k.U(), V: v, X: k.X(), Y: k.Y(), S: k.S.Union(e.s)}, k.C*e.c)
			}
		}
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

type sigCount struct {
	s sig.Sig
	c uint64
}

type toEntry struct {
	to uint32
	s  sig.Sig
	c  uint64
}

type groupKey struct {
	block     *decomp.Block
	fromFirst bool
}

// groupedIdx indexes one partition's share of a regrouped binary child
// table by the "from" endpoint, CSR-style: the entries whose from-vertex
// is v occupy ents[rows[v-lo] : rows[v-lo+1]]. Row lookup is two loads —
// no hashing, no map — and a vertex's entries are contiguous.
type groupedIdx struct {
	lo   uint32
	rows []int32 // len = partition size + 1
	ents []toEntry
}

// at returns the entries indexed under vertex v, which must lie in the
// partition's vertex range.
func (ix *groupedIdx) at(v uint32) []toEntry {
	i := v - ix.lo
	return ix.ents[ix.rows[i]:ix.rows[i+1]]
}

// nodeIdx is groupedIdx for a unary child table: entries carry only
// (signature, count), indexed by the single boundary vertex U.
type nodeIdx struct {
	lo   uint32
	rows []int32
	ents []sigCount
}

func (ix *nodeIdx) at(v uint32) []sigCount {
	i := v - ix.lo
	return ix.ents[ix.rows[i]:ix.rows[i+1]]
}

// groupBinary redistributes a child block's binary table so every entry is
// indexed, at the owner of its "from" endpoint, by that endpoint — the
// paper's "communication to bring the two entries to a common processor"
// (§7). Deliver collects each partition's reoriented entries, then a local
// counting sort lays them out as a CSR index (entry order within one
// vertex may vary under the parallel backend, but joins only sum over a
// row, so counts cannot). Results are cached per (block, orientation): the
// DB solver reuses them across its L splits.
func (s *solver) groupBinary(b *decomp.Block, fromFirst bool) []*groupedIdx {
	key := groupKey{block: b, fromFirst: fromFirst}
	if g, ok := s.grouped[key]; ok {
		return g
	}
	child := s.tables[b]
	raw := make([][]toEntry, s.be.P())
	fromOf := make([][]uint32, s.be.P())
	end := s.tr.Start(PhaseTableMerge)
	s.be.Deliver(func(w int, emit engine.Emit) {
		eb := s.batchers[w].Bind(emit)
		defer eb.Flush()
		var poll int
		ents := child.Shard(w).Ents()
		for i := range ents {
			e := &ents[i]
			if s.canceled(&poll) {
				break
			}
			from, to := e.U(), e.V()
			if !fromFirst {
				from, to = to, from
			}
			eb.Emit(s.be.Owner(from), engine.Msg{K: table.Binary(from, to, e.S), C: e.C})
		}
	}, func(w int, run []engine.Msg) {
		for i := range run {
			raw[w] = append(raw[w], toEntry{to: run[i].K.V, s: run[i].K.S, c: run[i].C})
			fromOf[w] = append(fromOf[w], run[i].K.U)
		}
	})
	end()
	g := make([]*groupedIdx, s.be.P())
	defer s.tr.Start(PhaseTableMerge)()
	s.be.Run(func(w int) {
		lo, hi := s.be.Range(w)
		n := int(hi) - int(lo)
		if n < 0 {
			n = 0
		}
		ix := &groupedIdx{lo: lo, rows: make([]int32, n+1), ents: make([]toEntry, len(raw[w]))}
		// Counting sort by from-vertex: histogram, prefix-sum, place.
		for _, f := range fromOf[w] {
			ix.rows[f-lo+1]++
		}
		for i := 1; i <= n; i++ {
			ix.rows[i] += ix.rows[i-1]
		}
		next := make([]int32, n)
		for i, f := range fromOf[w] {
			r := f - lo
			ix.ents[ix.rows[r]+next[r]] = raw[w][i]
			next[r]++
		}
		raw[w], fromOf[w] = nil, nil
		g[w] = ix
	})
	s.grouped[key] = g
	return g
}

// groupUnary builds (and caches) the CSR index of a unary child table used
// by nodeJoin: entries are already homed at the owner of their boundary
// vertex U and the flat shards keep them sorted by U, so the index is a
// single linear walk per partition — no redistribution superstep, no sort.
// The cache is released by dropGroups when the block's parent is solved.
func (s *solver) groupUnary(b *decomp.Block) []*nodeIdx {
	if g, ok := s.unary[b]; ok {
		return g
	}
	child := s.tables[b]
	g := make([]*nodeIdx, s.be.P())
	defer s.tr.Start(PhaseTableMerge)()
	s.be.Run(func(w int) {
		lo, hi := s.be.Range(w)
		n := int(hi) - int(lo)
		if n < 0 {
			n = 0
		}
		ents := child.Shard(w).Ents()
		ix := &nodeIdx{lo: lo, rows: make([]int32, n+1), ents: make([]sigCount, len(ents))}
		j := 0
		for r := 0; r < n; r++ {
			ix.rows[r] = int32(j)
			u := lo + uint32(r)
			for j < len(ents) && ents[j].U() == u {
				ix.ents[j] = sigCount{s: ents[j].S, c: ents[j].C}
				j++
			}
		}
		ix.rows[n] = int32(j)
		g[w] = ix
	})
	s.unary[b] = g
	return g
}

// dropGroups releases cached groupings of a finished block.
func (s *solver) dropGroups(b *decomp.Block) {
	delete(s.grouped, groupKey{block: b, fromFirst: true})
	delete(s.grouped, groupKey{block: b, fromFirst: false})
	delete(s.unary, b)
}
