package core

import (
	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/sig"
	"repro/internal/table"
)

// This file implements the unified path builder shared by the PS and DB
// cycle solvers and by leaf-edge blocks. A path is a directed walk along
// cycle positions from a start node to an end node; its projection table is
// built by an init step followed by alternating EdgeJoin and NodeJoin
// operations (§5.2 Figure 7). Keys are (U=π(start), V=π(current end)) with
// optional recorded boundary mappings in X/Y (the §5.1 configurations), and
// entries live at the owner of V, as in the paper's engine (§7).

// pathStep extends the walk by one cycle node.
type pathStep struct {
	node          int           // query node id being added
	edgeAnn       *decomp.Block // child block annotating the traversed edge; nil = data-graph edge
	edgeFromFirst bool          // traversal enters the child at Boundary[0]
	nodeAnn       *decomp.Block // unary child annotating the added node; nil = none
	record        int           // 0 = none, 1 = record mapped vertex in X, 2 = in Y
}

// pathSpec describes a whole walk.
type pathSpec struct {
	start    int           // query node id of the walk's first node
	startAnn *decomp.Block // unary child annotating the start node (P− convention)
	steps    []pathStep
	ordered  bool // DB: every added cycle vertex must rank below π(start)
}

// buildPath materializes the walk's projection table. A canceled run
// stops between join steps (each step's own loops also poll mid-step) and
// returns the partial table, which the caller discards.
func (s *solver) buildPath(spec pathSpec) *engine.Sharded {
	var cur *engine.Sharded
	rest := spec.steps
	if spec.startAnn != nil {
		cur = s.lift(s.tables[spec.startAnn])
	} else {
		cur = s.initEdge(spec, spec.steps[0])
		if spec.steps[0].nodeAnn != nil {
			cur = s.nodeJoin(cur, spec.steps[0].nodeAnn)
		}
		rest = spec.steps[1:]
	}
	for _, st := range rest {
		if s.aborted() {
			return cur
		}
		cur = s.edgeJoin(cur, spec, st)
		if st.nodeAnn != nil {
			cur = s.nodeJoin(cur, st.nodeAnn)
		}
	}
	return cur
}

func applyRecord(k *table.Key, record int, v uint32) {
	switch record {
	case 1:
		k.X = v
	case 2:
		k.Y = v
	}
}

// initEdge seeds the walk's table from its first edge: either the data
// graph's edges (count 1 per edge per direction, signature {χ(u),χ(v)},
// Figure 4/6 Procedure 1 line 1) or the annotating child block's table.
func (s *solver) initEdge(spec pathSpec, st pathStep) *engine.Sharded {
	out := engine.NewSharded(s.be)
	defer s.tr.Start(PhasePathJoin)()
	if st.edgeAnn == nil {
		s.be.Step(out, func(w int, emit func(int, engine.Msg)) {
			lo, hi := s.be.Range(w)
			var load int64
			var poll int
			// The inner break exits one neighbor scan with the poll counter
			// mid-interval, so the outer loop reads the latched stop flag
			// directly — a shared counter check here would realign only
			// every cancelInterval neighbor ops, once per vertex.
			for u := lo; u < hi && !s.stop.Load(); u++ {
				cu := s.colors[u]
				for _, v := range s.g.Neighbors(u) {
					load++
					if s.canceled(&poll) {
						break
					}
					if spec.ordered && !s.g.Higher(u, v) {
						continue
					}
					if s.colors[v] == cu {
						continue
					}
					k := table.Binary(u, v, sig.Of(cu).Add(s.colors[v]))
					applyRecord(&k, st.record, v)
					emit(s.be.Owner(v), engine.Msg{K: k, C: 1})
				}
			}
			s.be.AddLoad(w, load)
		})
		return s.track(out)
	}
	child := s.tables[st.edgeAnn]
	s.be.Step(out, func(w int, emit func(int, engine.Msg)) {
		var load int64
		var poll int
		child.Shard(w).Iter(func(k table.Key, c uint64) bool {
			load++
			if s.canceled(&poll) {
				return false
			}
			from, to := k.U, k.V
			if !st.edgeFromFirst {
				from, to = to, from
			}
			if spec.ordered && !s.g.Higher(from, to) {
				return true
			}
			nk := table.Binary(from, to, k.S)
			applyRecord(&nk, st.record, to)
			emit(s.be.Owner(to), engine.Msg{K: nk, C: c})
			return true
		})
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

// lift turns a unary child table (u,α) into the degenerate walk table
// (u,u,α), seeding a path that includes the start node's annotation.
func (s *solver) lift(child *engine.Sharded) *engine.Sharded {
	out := engine.NewSharded(s.be)
	defer s.tr.Start(PhasePathJoin)()
	s.be.Run(func(w int) {
		sh := out.Shard(w)
		child.Shard(w).Iter(func(k table.Key, c uint64) bool {
			sh.Add(table.Binary(k.U, k.U, k.S), c)
			return true
		})
	})
	return s.track(out)
}

// edgeJoin extends every walk entry (u,v,…,α) across the step's edge: for a
// data-graph edge, by each neighbor w of v with an unused color (Figure 4/6
// Procedure 1); for an annotated edge, by each child entry incident to v
// whose signature meets α exactly at χ(v) (Figure 7 EdgeJoin). Under the DB
// order constraint, only vertices ranking below u extend the walk.
func (s *solver) edgeJoin(cur *engine.Sharded, spec pathSpec, st pathStep) *engine.Sharded {
	out := engine.NewSharded(s.be)
	if st.edgeAnn == nil {
		defer s.tr.Start(PhasePathJoin)()
		s.be.Step(out, func(w int, emit func(int, engine.Msg)) {
			var load int64
			var poll int
			cur.Shard(w).Iter(func(k table.Key, c uint64) bool {
				for _, nb := range s.g.Neighbors(k.V) {
					load++
					if s.canceled(&poll) {
						return false
					}
					if spec.ordered && !s.g.Higher(k.U, nb) {
						continue
					}
					cn := s.colorOf(nb)
					if !k.S.Disjoint(cn) {
						continue
					}
					nk := table.Key{U: k.U, V: nb, X: k.X, Y: k.Y, S: k.S.Union(cn)}
					applyRecord(&nk, st.record, nb)
					emit(s.be.Owner(nb), engine.Msg{K: nk, C: c})
				}
				return true
			})
			s.be.AddLoad(w, load)
		})
		return s.track(out)
	}
	// groupBinary runs (and traces) its own superstep; span only ours.
	grouped := s.groupBinary(st.edgeAnn, st.edgeFromFirst)
	defer s.tr.Start(PhasePathJoin)()
	s.be.Step(out, func(w int, emit func(int, engine.Msg)) {
		var load int64
		var poll int
		idx := grouped[w]
		cur.Shard(w).Iter(func(k table.Key, c uint64) bool {
			for _, e := range idx[k.V] {
				load++
				if s.canceled(&poll) {
					return false
				}
				if spec.ordered && !s.g.Higher(k.U, e.to) {
					continue
				}
				// The walk and the child share exactly the query node at v.
				if k.S.Inter(e.s) != s.colorOf(k.V) {
					continue
				}
				nk := table.Key{U: k.U, V: e.to, X: k.X, Y: k.Y, S: k.S.Union(e.s)}
				applyRecord(&nk, st.record, e.to)
				emit(s.be.Owner(e.to), engine.Msg{K: nk, C: c * e.c})
			}
			return true
		})
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

// nodeJoin folds a unary child table into the walk at its current end node
// (Figure 7 NodeJoin). Both tables are homed at the owner of v, so the join
// is communication-free.
func (s *solver) nodeJoin(cur *engine.Sharded, ann *decomp.Block) *engine.Sharded {
	out := engine.NewSharded(s.be)
	child := s.tables[ann]
	defer s.tr.Start(PhasePathJoin)()
	s.be.Run(func(w int) {
		idx := make(map[uint32][]sigCount)
		child.Shard(w).Iter(func(k table.Key, c uint64) bool {
			idx[k.U] = append(idx[k.U], sigCount{s: k.S, c: c})
			return true
		})
		var load int64
		var poll int
		sh := out.Shard(w)
		cur.Shard(w).Iter(func(k table.Key, c uint64) bool {
			for _, e := range idx[k.V] {
				load++
				if s.canceled(&poll) {
					return false
				}
				if k.S.Inter(e.s) != s.colorOf(k.V) {
					continue
				}
				sh.Add(table.Key{U: k.U, V: k.V, X: k.X, Y: k.Y, S: k.S.Union(e.s)}, c*e.c)
			}
			return true
		})
		s.be.AddLoad(w, load)
	})
	return s.track(out)
}

type sigCount struct {
	s sig.Sig
	c uint64
}

type toEntry struct {
	to uint32
	s  sig.Sig
	c  uint64
}

type groupKey struct {
	block     *decomp.Block
	fromFirst bool
}

// groupBinary redistributes a child block's binary table so every entry is
// indexed, at the owner of its "from" endpoint, by that endpoint — the
// paper's "communication to bring the two entries to a common processor"
// (§7). Deliver hands each reoriented entry straight to the destination
// partition's index (no intermediate table); index list order may vary
// under the parallel backend, but joins only sum over the lists, so
// counts cannot. Results are cached per (block, orientation): the DB
// solver reuses them across its L splits.
func (s *solver) groupBinary(b *decomp.Block, fromFirst bool) []map[uint32][]toEntry {
	key := groupKey{block: b, fromFirst: fromFirst}
	if g, ok := s.grouped[key]; ok {
		return g
	}
	child := s.tables[b]
	g := make([]map[uint32][]toEntry, s.be.P())
	for i := range g {
		g[i] = make(map[uint32][]toEntry)
	}
	defer s.tr.Start(PhaseTableMerge)()
	s.be.Deliver(func(w int, emit func(int, engine.Msg)) {
		var poll int
		child.Shard(w).Iter(func(k table.Key, c uint64) bool {
			if s.canceled(&poll) {
				return false
			}
			from, to := k.U, k.V
			if !fromFirst {
				from, to = to, from
			}
			emit(s.be.Owner(from), engine.Msg{K: table.Binary(from, to, k.S), C: c})
			return true
		})
	}, func(w int, m engine.Msg) {
		g[w][m.K.U] = append(g[w][m.K.U], toEntry{to: m.K.V, s: m.K.S, c: m.C})
	})
	s.grouped[key] = g
	return g
}

// dropGroups releases cached groupings of a finished block.
func (s *solver) dropGroups(b *decomp.Block) {
	delete(s.grouped, groupKey{block: b, fromFirst: true})
	delete(s.grouped, groupKey{block: b, fromFirst: false})
}
