package core

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/query"
)

// Per-vertex counts must match the brute-force oracle for every root-block
// anchor, and sum to the plain colorful count.
func TestPerVertexMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := gen.ErdosRenyi("er", 50, 200, rng)
	for _, qn := range []string{"glet1", "glet2", "brain1", "wiki", "youtube", "dros"} {
		q := query.MustByName(qn)
		colors := randColors(g.N(), q.K, rng)
		plan, err := PickPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		total := count(t, g, q, colors, Options{Algorithm: DB, Workers: 3})
		for _, anchor := range plan.Root.Nodes {
			for _, alg := range []Algorithm{PS, DB} {
				per, used, _, err := CountColorfulPerVertex(g, q, colors, anchor, Options{Algorithm: alg, Workers: 3})
				if err != nil {
					t.Fatalf("%s anchor %d: %v", qn, anchor, err)
				}
				if used != anchor {
					t.Fatalf("%s: anchor %d not honored (got %d)", qn, anchor, used)
				}
				want := exact.ColorfulMatchesPerVertex(g, q, colors, anchor)
				var sum uint64
				for v := range per {
					sum += per[v]
					if per[v] != want[v] {
						t.Fatalf("%s %s anchor %d: vertex %d got %d, want %d",
							qn, alg, anchor, v, per[v], want[v])
					}
				}
				if sum != total {
					t.Fatalf("%s %s: per-vertex sum %d != total %d", qn, alg, sum, total)
				}
			}
		}
	}
}

func TestPerVertexDefaultAnchorAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi("er", 30, 90, rng)
	q := query.MustByName("glet2")
	colors := randColors(g.N(), q.K, rng)
	per, anchor, stats, err := CountColorfulPerVertex(g, q, colors, -1, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != g.N() || stats.Workers != 2 {
		t.Fatalf("shape wrong: %d %+v", len(per), stats)
	}
	plan, _ := PickPlan(q)
	if !contains(plan.Root.Nodes, anchor) {
		t.Fatalf("default anchor %d not in root block", anchor)
	}
	// A node outside the root block must be rejected.
	outside := -1
	inRoot := map[int]bool{}
	for _, n := range plan.Root.Nodes {
		inRoot[n] = true
	}
	for n := 0; n < q.K; n++ {
		if !inRoot[n] {
			outside = n
			break
		}
	}
	if outside >= 0 {
		if _, _, _, err := CountColorfulPerVertex(g, q, colors, outside, Options{}); err == nil {
			t.Fatal("anchor outside root block accepted")
		}
	}
	// Single-node query: one match per vertex.
	one := query.PathGraph(1)
	per1, _, _, err := CountColorfulPerVertex(g, one, make([]uint8, g.N()), -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range per1 {
		if c != 1 {
			t.Fatalf("vertex %d: %d", v, c)
		}
	}
	// Tree query (singleton root): per-vertex counts for the residual node.
	star := query.Star(4)
	colors4 := randColors(g.N(), 4, rng)
	perS, anchorS, _, err := CountColorfulPerVertex(g, star, colors4, -1, Options{Algorithm: DB})
	if err != nil {
		t.Fatal(err)
	}
	wantS := exact.ColorfulMatchesPerVertex(g, star, colors4, anchorS)
	for v := range perS {
		if perS[v] != wantS[v] {
			t.Fatalf("star: vertex %d got %d want %d", v, perS[v], wantS[v])
		}
	}
}
