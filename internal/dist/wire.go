// Package dist is the distributed execution backend: real multi-process
// supersteps over a length-prefixed wire protocol. The source paper's
// algorithm is distributed-memory (Blue Gene/Q, §7–§9); the sim backend
// simulates that runtime in shared memory, and this package runs it for
// real.
//
// # Architecture
//
// The solver's phases are closures over in-process state, so they cannot
// ship over a wire. Instead the design is SPMD: every worker process runs
// the *same* deterministic solver (internal/core) over the full plan, but
// its backend owns only a contiguous block of the vertex partitions.
// Superstep counts emitted to locally owned partitions merge directly;
// counts addressed to remote partitions are buffered per destination rank
// and exchanged at the superstep barrier as one batch per (source,
// destination) pair. Because the solver's superstep sequence is a pure
// function of the plan — never of the data distribution — all ranks
// execute the identical Step/Deliver sequence, and because every table
// operation is a commutative uint64 accumulation, counts are bit-identical
// to the sim and parallel backends for every query shape, worker count,
// and partition count.
//
// The coordinator (the process calling engine.New) is itself a rank that
// owns zero partitions: it implements engine.Backend as a barrier master
// and message router. Workers connect to it in a star; batches between
// workers are relayed through it. Its Step blocks until the superstep
// completes on every rank, so the trace spans and phase_seconds series it
// records are genuine end-to-end phase timings. The scalar (or
// per-vertex) answer is assembled by Reduce/ReduceVec, which gather every
// rank's JobDone report.
//
// Graphs ship to workers once per structural fingerprint and are cached
// worker-side (LRU), so per-trial jobs exchange only the coloring and
// keyed counts.
package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// protoVersion guards against mixed binaries on the two conn ends.
const protoVersion = 1

// Frame kinds.
const (
	kHello     byte = iota + 1 // both directions: handshake, payload helloMsg
	kJobStart                  // coord → worker: payload jobStartMsg, dst = assigned rank
	kGraphReq                  // worker → coord: pull the job's graph
	kGraphData                 // coord → worker: payload graphDataMsg
	kStepBatch                 // worker → coord → worker: payload batchMsg, src/dst ranks, step set
	kStepDone                  // worker → coord: produce phase of step finished, batches sent
	kJobDone                   // worker → coord: payload jobDoneMsg, src rank
	kJobCancel                 // coord → worker: payload cancelMsg
)

func kindName(k byte) string {
	switch k {
	case kHello:
		return "hello"
	case kJobStart:
		return "jobStart"
	case kGraphReq:
		return "graphReq"
	case kGraphData:
		return "graphData"
	case kStepBatch:
		return "stepBatch"
	case kStepDone:
		return "stepDone"
	case kJobDone:
		return "jobDone"
	case kJobCancel:
		return "jobCancel"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// frame is one wire unit: a fixed header the router can act on without
// touching the payload (StepBatch relays copy Payload verbatim), plus a
// gob payload whose shape depends on Kind.
type frame struct {
	Kind    byte
	Job     uint64
	Step    int64
	Src     int32 // source rank (worker frames); -1 from the coordinator
	Dst     int32 // destination rank (jobStart assignment, stepBatch target)
	Payload []byte
}

// Header layout: 4-byte length of the rest, then kind(1) job(8) step(8)
// src(4) dst(4), then the payload.
const headerLen = 1 + 8 + 8 + 4 + 4

// maxFrame bounds one frame (1 GiB): a corrupt length prefix must not
// drive a huge allocation.
const maxFrame = 1 << 30

// conn wraps a net.Conn with frame I/O and transport counters. Writers
// must serialize through mu (held by callers via writeFrame); the single
// reader goroutine owns Read.
type conn struct {
	c          net.Conn
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	framesSent atomic.Int64
	framesRecv atomic.Int64
}

func (c *conn) writeFrame(f *frame) error {
	total := headerLen + len(f.Payload)
	if total > maxFrame {
		return fmt.Errorf("dist: frame %s exceeds %d bytes", kindName(f.Kind), maxFrame)
	}
	buf := make([]byte, 4+headerLen, 4+total)
	binary.BigEndian.PutUint32(buf[0:4], uint32(total))
	buf[4] = f.Kind
	binary.BigEndian.PutUint64(buf[5:13], f.Job)
	binary.BigEndian.PutUint64(buf[13:21], uint64(f.Step))
	binary.BigEndian.PutUint32(buf[21:25], uint32(f.Src))
	binary.BigEndian.PutUint32(buf[25:29], uint32(f.Dst))
	buf = append(buf, f.Payload...)
	if _, err := c.c.Write(buf); err != nil {
		return err
	}
	c.bytesSent.Add(int64(len(buf)))
	c.framesSent.Add(1)
	return nil
}

func (c *conn) readFrame() (*frame, error) {
	var lb [4]byte
	if _, err := io.ReadFull(c.c, lb[:]); err != nil {
		return nil, err
	}
	total := int(binary.BigEndian.Uint32(lb[:]))
	if total < headerLen || total > maxFrame {
		return nil, fmt.Errorf("dist: bad frame length %d", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(c.c, body); err != nil {
		return nil, err
	}
	c.bytesRecv.Add(int64(4 + total))
	c.framesRecv.Add(1)
	return &frame{
		Kind:    body[0],
		Job:     binary.BigEndian.Uint64(body[1:9]),
		Step:    int64(binary.BigEndian.Uint64(body[9:17])),
		Src:     int32(binary.BigEndian.Uint32(body[17:21])),
		Dst:     int32(binary.BigEndian.Uint32(body[21:25])),
		Payload: body[headerLen:],
	}, nil
}
