package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/table"
)

// Payload shapes. Each frame kind carries at most one of these, gob-encoded
// with a fresh encoder per frame (stateless frames let the router relay
// payloads verbatim and keep byte accounting exact).

type helloMsg struct {
	Version int
}

type jobStartMsg struct {
	Ranks      int32
	Parts      int32
	N          int64
	GraphFP    uint64
	Colors     []uint8
	QueryName  string
	QueryK     int
	QueryEdges [][2]int
	Plan       planWire
	Algorithm  int
	Mode       int32 // engine.JobMode
	Anchor     int32
}

type graphDataMsg struct {
	FP uint64
	G  *graph.Graph
}

// wireMsg is one keyed count addressed to a destination partition.
type wireMsg struct {
	Dst int32
	K   table.Key
	C   uint64
}

type batchMsg struct {
	Msgs []wireMsg
}

type jobDoneMsg struct {
	Err       string
	Count     uint64
	PerVertex []uint64 // owned vertex block, [OwnedLo, OwnedHi)
	OwnedLo   uint32
	OwnedHi   uint32
	Steps     int64
	Load      int64
	Msgs      int64
	Entries   int64
}

type cancelMsg struct {
	Reason string
}

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// Plan wire form. The solver navigates a decomposition tree through
// pointer identity (annotation and child links reference blocks of the
// same tree), which gob would silently break by duplicating shared nodes —
// so blocks are flattened to indices and the tree is rebuilt on arrival,
// preserving the exact split enumeration of the coordinator's plan.

type planBlock struct {
	Kind     int32
	Nodes    []int
	Boundary []int
	NodeAnn  []int32 // index into Blocks, -1 = nil
	EdgeAnn  []int32
	Children []int32
}

type planWire struct {
	Blocks []planBlock
	Root   int32
}

func encodePlan(t *decomp.Tree) (planWire, error) {
	idx := make(map[*decomp.Block]int32, len(t.Blocks))
	for i, b := range t.Blocks {
		idx[b] = int32(i)
	}
	ref := func(b *decomp.Block) (int32, error) {
		if b == nil {
			return -1, nil
		}
		i, ok := idx[b]
		if !ok {
			return 0, fmt.Errorf("dist: plan references a block outside its tree")
		}
		return i, nil
	}
	w := planWire{Blocks: make([]planBlock, len(t.Blocks))}
	root, ok := idx[t.Root]
	if !ok {
		return planWire{}, fmt.Errorf("dist: plan root is not among its blocks")
	}
	w.Root = root
	for i, b := range t.Blocks {
		pb := planBlock{
			Kind:     int32(b.Kind),
			Nodes:    b.Nodes,
			Boundary: b.Boundary,
			NodeAnn:  make([]int32, len(b.NodeAnn)),
			EdgeAnn:  make([]int32, len(b.EdgeAnn)),
			Children: make([]int32, len(b.Children)),
		}
		var err error
		for j, a := range b.NodeAnn {
			if pb.NodeAnn[j], err = ref(a); err != nil {
				return planWire{}, err
			}
		}
		for j, a := range b.EdgeAnn {
			if pb.EdgeAnn[j], err = ref(a); err != nil {
				return planWire{}, err
			}
		}
		for j, c := range b.Children {
			if pb.Children[j], err = ref(c); err != nil {
				return planWire{}, err
			}
		}
		w.Blocks[i] = pb
	}
	return w, nil
}

func decodePlan(w planWire, q *query.Graph) (*decomp.Tree, error) {
	n := int32(len(w.Blocks))
	blocks := make([]*decomp.Block, n)
	for i := range blocks {
		blocks[i] = &decomp.Block{ID: i}
	}
	ref := func(i int32) (*decomp.Block, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= n {
			return nil, fmt.Errorf("dist: plan block reference %d out of range", i)
		}
		return blocks[i], nil
	}
	for i, pb := range w.Blocks {
		b := blocks[i]
		b.Kind = decomp.BlockKind(pb.Kind)
		b.Nodes = pb.Nodes
		b.Boundary = pb.Boundary
		b.NodeAnn = make([]*decomp.Block, len(pb.NodeAnn))
		b.EdgeAnn = make([]*decomp.Block, len(pb.EdgeAnn))
		b.Children = make([]*decomp.Block, len(pb.Children))
		var err error
		for j, a := range pb.NodeAnn {
			if b.NodeAnn[j], err = ref(a); err != nil {
				return nil, err
			}
		}
		for j, a := range pb.EdgeAnn {
			if b.EdgeAnn[j], err = ref(a); err != nil {
				return nil, err
			}
		}
		for j, c := range pb.Children {
			if b.Children[j], err = ref(c); err != nil {
				return nil, err
			}
		}
	}
	if w.Root < 0 || w.Root >= n {
		return nil, fmt.Errorf("dist: plan root %d out of range", w.Root)
	}
	return &decomp.Tree{Query: q, Root: blocks[w.Root], Blocks: blocks}, nil
}

// topo is the partition topology shared verbatim by the coordinator and
// every worker rank: parts contiguous vertex partitions block-assigned to
// ranks. Both sides derive ownership from the same four integers, so no
// assignment table ever travels.
type topo struct {
	ranks int
	parts int
	n     int
	chunk int
}

func newTopo(ranks, parts, n int) topo {
	chunk := (n + parts - 1) / parts
	if chunk < 1 {
		chunk = 1
	}
	return topo{ranks: ranks, parts: parts, n: n, chunk: chunk}
}

// owner returns the partition owning vertex v (same math as the
// single-process backends: 1D block distribution).
func (t topo) owner(v uint32) int {
	w := int(v) / t.chunk
	if w >= t.parts {
		w = t.parts - 1
	}
	return w
}

// partRange returns the half-open vertex interval of partition w.
func (t topo) partRange(w int) (lo, hi uint32) {
	l := w * t.chunk
	h := l + t.chunk
	if w == t.parts-1 || h > t.n {
		h = t.n
	}
	if l > t.n {
		l = t.n
	}
	return uint32(l), uint32(h)
}

// rankOf returns the rank executing partition w (contiguous blocks of
// partitions per rank).
func (t topo) rankOf(w int) int { return w * t.ranks / t.parts }

// rankParts returns the half-open partition interval executed by rank r.
func (t topo) rankParts(r int) (lo, hi int) {
	return (r*t.parts + t.ranks - 1) / t.ranks, ((r+1)*t.parts + t.ranks - 1) / t.ranks
}

// rankOwned returns the half-open vertex interval rank r's partitions
// cover (empty when the rank owns no partitions).
func (t topo) rankOwned(r int) (lo, hi uint32) {
	pLo, pHi := t.rankParts(r)
	if pLo >= pHi {
		return 0, 0
	}
	lo, _ = t.partRange(pLo)
	_, hi = t.partRange(pHi - 1)
	return lo, hi
}

// jobSpec is the validated, wire-ready form of an engine.Job.
func makeJobStart(t topo, job engine.Job) (jobStartMsg, error) {
	if job.Graph == nil || job.Query == nil || job.Plan == nil || job.Colors == nil {
		return jobStartMsg{}, fmt.Errorf("dist: backend needs the full job context (graph, query, plan, colors)")
	}
	if job.Graph.N() != job.N {
		return jobStartMsg{}, fmt.Errorf("dist: job N=%d but graph has %d vertices", job.N, job.Graph.N())
	}
	plan, err := encodePlan(job.Plan)
	if err != nil {
		return jobStartMsg{}, err
	}
	return jobStartMsg{
		Ranks:      int32(t.ranks),
		Parts:      int32(t.parts),
		N:          int64(job.N),
		GraphFP:    job.Graph.Fingerprint(),
		Colors:     job.Colors,
		QueryName:  job.Query.Name,
		QueryK:     job.Query.K,
		QueryEdges: job.Query.Edges(),
		Plan:       plan,
		Algorithm:  job.Algorithm,
		Mode:       int32(job.Mode),
		Anchor:     int32(job.Anchor),
	}, nil
}
