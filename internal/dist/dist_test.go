package dist_test

import (
	"context"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

func randColors(n, k int, rng *rand.Rand) []uint8 {
	colors := make([]uint8, n)
	for i := range colors {
		colors[i] = uint8(rng.Intn(k))
	}
	return colors
}

// loopback builds a fresh loopback cluster registered as this test's
// backend via Options.Engine-free engine.New dispatch: jobs are created
// straight through cluster.NewJob, so tests don't fight over the global
// "dist" registration.
func loopback(t *testing.T, ranks int) *dist.Cluster {
	t.Helper()
	c, err := dist.Loopback(ranks, dist.WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func countVia(t *testing.T, c *dist.Cluster, parts int, g *graph.Graph, q *query.Graph, colors []uint8, alg core.Algorithm) (uint64, core.Stats) {
	t.Helper()
	plan, err := core.PickPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	be, err := c.NewJob(parts, engine.Job{
		N: g.N(), Graph: g, Colors: colors, Query: q, Plan: plan,
		Algorithm: int(alg), Mode: engine.ModeCount,
	})
	if err != nil {
		t.Fatal(err)
	}
	count, stats, err := core.CountColorful(g, q, colors, core.Options{Algorithm: alg, Plan: plan, Engine: be})
	if err != nil {
		t.Fatal(err)
	}
	return count, stats
}

// The PR's correctness bar: the dist backend is bit-identical to sim and
// parallel on every catalog query, for several rank and partition counts.
func TestLoopbackEquivalenceCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.PowerLawGraph("pl", 400, 1.5, rng)
	queries := append(query.Catalog(), query.Cycle(6), query.Star(5))

	clusters := map[int]*dist.Cluster{}
	for _, ranks := range []int{1, 2, 3} {
		clusters[ranks] = loopback(t, ranks)
	}
	for _, q := range queries {
		colors := randColors(g.N(), q.K, rng)
		for _, alg := range []core.Algorithm{core.PS, core.DB} {
			want, wantStats, err := core.CountColorful(g, q, colors, core.Options{Algorithm: alg, Backend: "sim", Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for ranks, c := range clusters {
				for _, parts := range []int{0, 1, 7} {
					got, stats := countVia(t, c, parts, g, q, colors, alg)
					if got != want {
						t.Errorf("%s %s ranks=%d parts=%d: dist %d, sim %d", q.Name, alg, ranks, parts, got, want)
					}
					if stats.Supersteps != wantStats.Supersteps {
						t.Errorf("%s %s ranks=%d parts=%d: dist ran %d supersteps, sim %d",
							q.Name, alg, ranks, parts, stats.Supersteps, wantStats.Supersteps)
					}
				}
			}
		}
	}
}

// Per-vertex mode: the assembled vector must match sim exactly, block by
// block.
func TestLoopbackEquivalencePerVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.PowerLawGraph("pl", 300, 1.6, rng)
	c := loopback(t, 2)
	for _, qn := range []string{"glet1", "brain1", "cycle5"} {
		q := query.MustByName(qn)
		colors := randColors(g.N(), q.K, rng)
		simPer, simAnchor, _, err := core.CountColorfulPerVertex(g, q, colors, -1, core.Options{Backend: "sim", Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := core.PickPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		be, err := c.NewJob(5, engine.Job{
			N: g.N(), Graph: g, Colors: colors, Query: q, Plan: plan,
			Mode: engine.ModePerVertex, Anchor: simAnchor,
		})
		if err != nil {
			t.Fatal(err)
		}
		distPer, distAnchor, _, err := core.CountColorfulPerVertex(g, q, colors, simAnchor, core.Options{Plan: plan, Engine: be})
		if err != nil {
			t.Fatal(err)
		}
		if distAnchor != simAnchor {
			t.Fatalf("%s: anchors diverged: %d vs %d", qn, distAnchor, simAnchor)
		}
		if !reflect.DeepEqual(simPer, distPer) {
			t.Errorf("%s: per-vertex counts diverged between sim and dist", qn)
		}
	}
}

// Randomized property sweep, mirroring the sim-vs-parallel one.
func TestLoopbackEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := loopback(t, 3)
	for trial := 0; trial < 15; trial++ {
		n := 30 + rng.Intn(120)
		g := gen.ErdosRenyi("er", n, int64(2+rng.Intn(5))*int64(n)/2, rng)
		q := query.Catalog()[rng.Intn(len(query.Catalog()))]
		colors := randColors(g.N(), q.K, rng)
		alg := []core.Algorithm{core.PS, core.PSEven, core.DB}[rng.Intn(3)]
		want, _, err := core.CountColorful(g, q, colors, core.Options{Algorithm: alg, Backend: "sim", Workers: 1 + rng.Intn(6)})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := countVia(t, c, 1+rng.Intn(9), g, q, colors, alg)
		if got != want {
			t.Fatalf("trial %d: %s on %s: dist %d != sim %d", trial, alg, q.Name, got, want)
		}
	}
}

// Several jobs multiplexed over one cluster at once must not cross wires.
func TestLoopbackConcurrentJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := gen.PowerLawGraph("pl", 250, 1.5, rng)
	c := loopback(t, 2)
	type job struct {
		q      *query.Graph
		colors []uint8
		want   uint64
	}
	jobs := make([]job, 6)
	for i := range jobs {
		q := query.Catalog()[i%len(query.Catalog())]
		colors := randColors(g.N(), q.K, rng)
		want, _, err := core.CountColorful(g, q, colors, core.Options{Backend: "sim", Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{q: q, colors: colors, want: want}
	}
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _ := countVia(t, c, 4+i, g, jb.q, jb.colors, core.PS)
			if got != jb.want {
				t.Errorf("job %d (%s): dist %d != sim %d", i, jb.q.Name, got, jb.want)
			}
		}()
	}
	wg.Wait()
}

// A worker lost mid-superstep must fail the run cleanly — an error from
// the solver, not a hang.
func TestWorkerCrashMidSuperstep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.PowerLawGraph("pl", 400, 1.5, rng)
	q := query.MustByName("brain1")
	colors := randColors(g.N(), q.K, rng)

	// Rank 1 is a real ServeConn; rank 0's "worker" half is held by the
	// test and slammed shut as soon as the coordinator starts the job.
	coord0, crash := net.Pipe()
	coord1, worker1 := net.Pipe()
	go dist.ServeConn(worker1, dist.WorkerOptions{})
	go func() {
		c := &handshakeConn{t: t, c: crash}
		c.serveHello()
		c.awaitJobStart()
		crash.Close()
	}()

	c, err := dist.NewWithConns([]net.Conn{coord0, coord1}, nil, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	plan, err := core.PickPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	be, err := c.NewJob(0, engine.Job{
		N: g.N(), Graph: g, Colors: colors, Query: q, Plan: plan, Algorithm: int(core.PS),
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := core.CountColorful(g, q, colors, core.Options{Plan: plan, Engine: be})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("count succeeded with a crashed worker")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("count hung after worker crash")
	}
}

// Canceling the caller's context mid-run unwinds both sides.
func TestCancelPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.PowerLawGraph("pl", 500, 1.5, rng)
	q := query.MustByName("brain1")
	colors := randColors(g.N(), q.K, rng)
	c := loopback(t, 2)

	plan, err := core.PickPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run must abort promptly
	be, err := c.NewJob(0, engine.Job{
		N: g.N(), Graph: g, Colors: colors, Query: q, Plan: plan, Ctx: ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := core.CountColorfulContext(ctx, g, q, colors, core.Options{Plan: plan, Engine: be})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled run reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run hung")
	}
}

// handshakeConn drives just enough protocol to impersonate a worker.
type handshakeConn struct {
	t *testing.T
	c net.Conn
}

func (h *handshakeConn) serveHello() {
	// Read the coordinator's hello and echo it back verbatim — same
	// version, so the handshake succeeds.
	raw := h.readFrame()
	if _, err := h.c.Write(raw); err != nil {
		h.t.Error(err)
	}
}

func (h *handshakeConn) awaitJobStart() {
	h.readFrame()
}

func (h *handshakeConn) readFrame() []byte {
	var lb [4]byte
	if _, err := readFull(h.c, lb[:]); err != nil {
		h.t.Error(err)
		return nil
	}
	n := int(lb[0])<<24 | int(lb[1])<<16 | int(lb[2])<<8 | int(lb[3])
	body := make([]byte, n)
	if _, err := readFull(h.c, body); err != nil {
		h.t.Error(err)
		return nil
	}
	return append(lb[:], body...)
}

func readFull(c net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := c.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
