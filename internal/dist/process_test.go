package dist_test

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/query"
)

// All three backends must agree not just on the count but on the exact
// superstep sequence length: the solver's step schedule is a function of
// the plan alone, never of the execution substrate.
func TestThreeBackendStepsDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := gen.PowerLawGraph("pl", 350, 1.5, rng)
	c := loopback(t, 2)

	for _, q := range []*query.Graph{query.MustByName("glet1"), query.MustByName("brain1"), query.Cycle(5)} {
		colors := randColors(g.N(), q.K, rng)
		for _, alg := range []core.Algorithm{core.PS, core.DB} {
			simCount, simStats, err := core.CountColorful(g, q, colors, core.Options{Algorithm: alg, Backend: "sim", Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			parCount, parStats, err := core.CountColorful(g, q, colors, core.Options{Algorithm: alg, Backend: "parallel", Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			distCount, distStats := countVia(t, c, 3, g, q, colors, alg)
			if simCount != parCount || simCount != distCount {
				t.Errorf("%s %s: counts diverge sim=%d parallel=%d dist=%d", q.Name, alg, simCount, parCount, distCount)
			}
			if simStats.Supersteps != parStats.Supersteps || simStats.Supersteps != distStats.Supersteps {
				t.Errorf("%s %s: supersteps diverge sim=%d parallel=%d dist=%d",
					q.Name, alg, simStats.Supersteps, parStats.Supersteps, distStats.Supersteps)
			}
		}
	}
}

// TestTwoProcessWorkers is the real thing: build cmd/sgworker, spawn two
// worker processes on loopback TCP, connect a cluster over actual
// sockets, and demand bit-identical results. Everything else in this
// package runs over net.Pipe; this is the only test whose failure
// implicates process startup, TCP framing, or -addr-file handshaking.
func TestTwoProcessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process spawn in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sgworker")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/sgworker")
	build.Env = append(os.Environ(), "GOFLAGS=") // drop -race etc.: the worker binary doesn't need it
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sgworker: %v\n%s", err, out)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		addrFile := filepath.Join(dir, "addr"+string(rune('0'+i)))
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-log-level", "warn")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting sgworker %d: %v", i, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		addrs = append(addrs, waitForAddr(t, addrFile))
	}

	c, err := dist.Connect(addrs, dist.Options{})
	if err != nil {
		t.Fatalf("connecting to workers: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	rng := rand.New(rand.NewSource(71))
	g := gen.PowerLawGraph("pl", 300, 1.6, rng)
	for _, q := range []*query.Graph{query.MustByName("glet1"), query.Cycle(5)} {
		colors := randColors(g.N(), q.K, rng)
		want, _, err := core.CountColorful(g, q, colors, core.Options{Algorithm: core.PS, Backend: "sim", Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := countVia(t, c, 5, g, q, colors, core.PS)
		if got != want {
			t.Errorf("%s over TCP: dist %d, sim %d", q.Name, got, want)
		}
	}
}

func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				return addr
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker never wrote %s", path)
	return ""
}
