package dist

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Options configures a coordinator cluster.
type Options struct {
	// Parts is the default total partition count when a job does not
	// request one (engine workers ≤ 0); 0 means 4 per worker node.
	Parts int
	// Logger receives node-lifecycle warnings; nil discards them.
	Logger *slog.Logger
}

// Cluster is the coordinator's view of a fixed worker topology: one
// long-lived connection per worker process, shared by every concurrent
// job (frames are multiplexed by job id). Create one per process with
// Connect (real TCP workers) or Loopback (in-process workers), then make
// it the "dist" backend with Enable.
type Cluster struct {
	nodes  []*node
	opts   Options
	logger *slog.Logger

	mu     sync.Mutex
	jobs   map[uint64]*cjob
	closed bool

	nextJob atomic.Uint64
}

// node is one worker process.
type node struct {
	rank int
	addr string
	conn *conn

	wmu sync.Mutex // serializes frame writes

	exchanges atomic.Int64 // StepDone frames received
	load      atomic.Int64 // cumulative per-job load reported in JobDones
	jobs      atomic.Int64 // JobDone frames received
	down      atomic.Bool
}

func (n *node) write(f *frame) error {
	if n.down.Load() {
		return fmt.Errorf("dist: worker %d (%s) is down", n.rank, n.addr)
	}
	n.wmu.Lock()
	defer n.wmu.Unlock()
	return n.conn.writeFrame(f)
}

// Connect dials the given worker addresses and performs the protocol
// handshake with each. The address order defines rank order.
func Connect(addrs []string, opts Options) (*Cluster, error) {
	conns := make([]net.Conn, 0, len(addrs))
	for _, a := range addrs {
		c, err := net.Dial("tcp", a)
		if err != nil {
			for _, p := range conns {
				p.Close()
			}
			return nil, fmt.Errorf("dist: dial worker %s: %w", a, err)
		}
		conns = append(conns, c)
	}
	return NewWithConns(conns, addrs, opts)
}

// NewWithConns builds a cluster over pre-established connections (used by
// Connect and by the in-process Loopback transport). It handshakes each
// connection and starts its reader. addrs is display-only; nil derives
// labels from the connections.
func NewWithConns(conns []net.Conn, addrs []string, opts Options) (*Cluster, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("dist: a cluster needs at least one worker")
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	c := &Cluster{opts: opts, logger: logger, jobs: make(map[uint64]*cjob)}
	for i, nc := range conns {
		addr := ""
		if addrs != nil && i < len(addrs) {
			addr = addrs[i]
		}
		if addr == "" {
			if ra := nc.RemoteAddr(); ra != nil {
				addr = ra.String()
			}
		}
		c.nodes = append(c.nodes, &node{rank: i, addr: addr, conn: &conn{c: nc}})
	}
	hello, err := encodePayload(helloMsg{Version: protoVersion})
	if err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		if err := n.write(&frame{Kind: kHello, Src: -1, Payload: hello}); err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: handshake with worker %d (%s): %w", n.rank, n.addr, err)
		}
		f, err := n.conn.readFrame()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: handshake with worker %d (%s): %w", n.rank, n.addr, err)
		}
		var h helloMsg
		if f.Kind != kHello || decodePayload(f.Payload, &h) != nil || h.Version != protoVersion {
			c.Close()
			return nil, fmt.Errorf("dist: worker %d (%s) spoke protocol %d, want %d", n.rank, n.addr, h.Version, protoVersion)
		}
	}
	for _, n := range c.nodes {
		go c.readLoop(n)
	}
	return c, nil
}

// Ranks returns the worker-process count.
func (c *Cluster) Ranks() int { return len(c.nodes) }

// Close tears the cluster down: every in-flight job fails, and the worker
// connections close.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.failAll(fmt.Errorf("dist: cluster closed"))
	for _, n := range c.nodes {
		n.down.Store(true)
		n.conn.c.Close()
	}
	return nil
}

// job looks a live job up; nil means it already finished or failed (late
// frames for it are dropped).
func (c *Cluster) job(id uint64) *cjob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

func (c *Cluster) removeJob(id uint64) {
	c.mu.Lock()
	j := c.jobs[id]
	delete(c.jobs, id)
	c.mu.Unlock()
	if j != nil {
		j.finishOnce.Do(func() { close(j.finished) })
	}
}

// failAll fails every live job (node loss, Close).
func (c *Cluster) failAll(err error) {
	c.mu.Lock()
	live := make([]*cjob, 0, len(c.jobs))
	for _, j := range c.jobs {
		live = append(live, j)
	}
	c.mu.Unlock()
	for _, j := range live {
		j.fail(err)
	}
}

// nodeDown marks a worker dead and fails everything: with a rank gone no
// superstep barrier can complete, and the fixed topology means the
// cluster cannot re-partition mid-flight.
func (c *Cluster) nodeDown(n *node, err error) {
	if n.down.Swap(true) {
		return
	}
	c.logger.Warn("dist worker down", "rank", n.rank, "addr", n.addr, "err", err)
	n.conn.c.Close()
	c.failAll(fmt.Errorf("dist: worker %d (%s) failed: %w", n.rank, n.addr, err))
}

// readLoop is the per-node reader: it relays StepBatch frames to their
// destination rank and dispatches everything else to the owning job. It
// must never block on job state — only on the destination conn write,
// which a live worker always drains.
func (c *Cluster) readLoop(n *node) {
	for {
		f, err := n.conn.readFrame()
		if err != nil {
			c.nodeDown(n, err)
			return
		}
		switch f.Kind {
		case kStepBatch:
			if f.Dst < 0 || int(f.Dst) >= len(c.nodes) {
				c.nodeDown(n, fmt.Errorf("batch addressed to rank %d of %d", f.Dst, len(c.nodes)))
				return
			}
			// A fast rank can produce its first batches before NewJob has
			// written the start frame to every other node; relaying such a
			// batch would overtake the destination's jobStart and be
			// dropped as unknown. The job queues them until fully started.
			if j := c.job(f.Job); j != nil && j.holdEarly(f) {
				continue
			}
			dst := c.nodes[f.Dst]
			if err := dst.write(f); err != nil {
				c.nodeDown(dst, err)
			}
		case kStepDone:
			n.exchanges.Add(1)
			if j := c.job(f.Job); j != nil {
				j.stepDone(f.Step)
			}
		case kJobDone:
			var m jobDoneMsg
			if err := decodePayload(f.Payload, &m); err != nil {
				c.nodeDown(n, fmt.Errorf("bad jobDone payload: %w", err))
				return
			}
			n.load.Add(m.Load)
			n.jobs.Add(1)
			if j := c.job(f.Job); j != nil {
				j.rankDone(int(f.Src), &m)
			}
		case kGraphReq:
			if j := c.job(f.Job); j != nil {
				// Encoding a graph is heavy; keep the reader free to relay.
				go c.sendGraph(n, j)
			}
		default:
			c.nodeDown(n, fmt.Errorf("unexpected %s frame", kindName(f.Kind)))
			return
		}
	}
}

func (c *Cluster) sendGraph(n *node, j *cjob) {
	payload, err := encodePayload(graphDataMsg{FP: j.graphFP, G: j.graph})
	if err != nil {
		j.fail(fmt.Errorf("dist: encoding graph for worker %d: %w", n.rank, err))
		return
	}
	if err := n.write(&frame{Kind: kGraphData, Job: j.id, Src: -1, Payload: payload}); err != nil {
		c.nodeDown(n, err)
	}
}

// NewJob starts one counting run across the cluster and returns the
// coordinator backend driving it. workers ≤ 0 means the cluster default
// partition count (Options.Parts, else 4 per node); otherwise workers is
// the total partition count, mirroring the sim backend's rank count.
func (c *Cluster) NewJob(workers int, job engine.Job) (engine.Backend, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("dist: cluster is closed")
	}
	parts := workers
	if parts <= 0 {
		parts = c.opts.Parts
	}
	if parts <= 0 {
		parts = 4 * len(c.nodes)
	}
	t := newTopo(len(c.nodes), parts, job.N)
	start, err := makeJobStart(t, job)
	if err != nil {
		return nil, err
	}
	j := &cjob{
		id:        c.nextJob.Add(1),
		c:         c,
		ranks:     len(c.nodes),
		graph:     job.Graph,
		graphFP:   start.GraphFP,
		stepDones: make(map[int64]int),
		rankDones: make(map[int]*jobDoneMsg),
		finished:  make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: cluster is closed")
	}
	c.jobs[j.id] = j
	c.mu.Unlock()

	payload, err := encodePayload(start)
	if err != nil {
		c.removeJob(j.id)
		return nil, err
	}
	for _, n := range c.nodes {
		if err := n.write(&frame{Kind: kJobStart, Job: j.id, Src: -1, Dst: int32(n.rank), Payload: payload}); err != nil {
			c.nodeDown(n, err)
			c.removeJob(j.id)
			return nil, fmt.Errorf("dist: starting job on worker %d: %w", n.rank, err)
		}
	}
	j.release()

	// A canceled run can return from the solver without reaching Reduce;
	// the watchdog tears the remote job down in that case.
	ctx := job.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	go func() {
		select {
		case <-ctx.Done():
			j.fail(ctx.Err())
		case <-j.finished:
		}
	}()

	return &Coord{t: t, job: j}, nil
}

// cjob is the coordinator-side state of one in-flight job.
type cjob struct {
	id      uint64
	c       *Cluster
	ranks   int
	graph   *graph.Graph
	graphFP uint64

	mu         sync.Mutex
	cond       *sync.Cond
	stepDones  map[int64]int       // superstep → ranks that finished producing it
	rankDones  map[int]*jobDoneMsg // rank → final report
	failErr    error
	finished   chan struct{}
	finishOnce sync.Once
	cancelSent bool
	started    bool     // every node has its jobStart frame
	early      []*frame // batches held back until started (see readLoop)
}

// holdEarly queues a batch frame when the job is not fully started yet;
// false means the caller should relay it normally.
func (j *cjob) holdEarly(f *frame) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started {
		return false
	}
	j.early = append(j.early, f)
	return true
}

// release marks the job fully started and relays any batches held back.
// Held frames can only be for the first superstep (no rank can pass a
// barrier while another rank has no jobStart), so relative order within
// the queue is irrelevant.
func (j *cjob) release() {
	j.mu.Lock()
	j.started = true
	early := j.early
	j.early = nil
	j.mu.Unlock()
	for _, f := range early {
		dst := j.c.nodes[f.Dst]
		if err := dst.write(f); err != nil {
			j.c.nodeDown(dst, err)
		}
	}
}

// stepDone records one rank's completion of a superstep's produce phase.
func (j *cjob) stepDone(step int64) {
	j.mu.Lock()
	j.stepDones[step]++
	j.mu.Unlock()
	j.cond.Broadcast()
}

// rankDone records one rank's final report; an error report fails the job.
func (j *cjob) rankDone(rank int, m *jobDoneMsg) {
	if m.Err != "" {
		j.fail(fmt.Errorf("dist: worker %d: %s", rank, m.Err))
		return
	}
	j.mu.Lock()
	j.rankDones[rank] = m
	j.mu.Unlock()
	j.cond.Broadcast()
}

// fail latches the job's failure, wakes every waiter, deregisters the job
// (late frames are dropped), and tells the other workers to abandon it.
func (j *cjob) fail(err error) {
	j.mu.Lock()
	if j.failErr != nil {
		j.mu.Unlock()
		return
	}
	j.failErr = err
	sendCancel := !j.cancelSent
	j.cancelSent = true
	j.mu.Unlock()
	j.cond.Broadcast()
	j.c.removeJob(j.id)
	if sendCancel {
		payload, perr := encodePayload(cancelMsg{Reason: err.Error()})
		if perr != nil {
			payload = nil
		}
		for _, n := range j.c.nodes {
			if werr := n.write(&frame{Kind: kJobCancel, Job: j.id, Src: -1, Payload: payload}); werr != nil {
				j.c.nodeDown(n, werr)
			}
		}
	}
}

// barrier blocks until every rank has finished producing the given
// superstep (their batches, relayed FIFO ahead of the StepDone, have then
// all been forwarded). Returns the latched failure instead of blocking
// forever when the job is dead.
func (j *cjob) barrier(step int64) error {
	j.mu.Lock()
	for {
		if j.failErr != nil {
			err := j.failErr
			j.mu.Unlock()
			return err
		}
		if j.stepDones[step] >= j.ranks {
			delete(j.stepDones, step)
			j.mu.Unlock()
			return nil
		}
		if len(j.rankDones) == j.ranks {
			// Every worker finished the whole job, yet this superstep never
			// completed: the replicated solvers diverged — a protocol bug,
			// not a data condition.
			j.mu.Unlock()
			err := fmt.Errorf("dist: job %d: all ranks finished but superstep %d incomplete (SPMD divergence)", j.id, step)
			j.fail(err)
			return err
		}
		j.cond.Wait()
	}
}

// gather blocks until every rank has reported success, or the job failed.
func (j *cjob) gather() (map[int]*jobDoneMsg, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.failErr != nil {
			return nil, j.failErr
		}
		if len(j.rankDones) == j.ranks {
			return j.rankDones, nil
		}
		j.cond.Wait()
	}
}

// NodeStats is one worker process's transport-level counters, cumulative
// over the cluster's lifetime (all jobs).
type NodeStats struct {
	Rank       int
	Addr       string
	Alive      bool
	BytesSent  int64 // bytes the coordinator sent to this node
	BytesRecv  int64 // bytes received from this node
	FramesSent int64
	FramesRecv int64
	Exchanges  int64 // superstep completions (StepDone frames)
	Load       int64 // cumulative projection-function operations reported
	Jobs       int64 // finished job reports
}

// NodeStats snapshots every worker node's counters.
func (c *Cluster) NodeStats() []NodeStats {
	out := make([]NodeStats, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = NodeStats{
			Rank:       n.rank,
			Addr:       n.addr,
			Alive:      !n.down.Load(),
			BytesSent:  n.conn.bytesSent.Load(),
			BytesRecv:  n.conn.bytesRecv.Load(),
			FramesSent: n.conn.framesSent.Load(),
			FramesRecv: n.conn.framesRecv.Load(),
			Exchanges:  n.exchanges.Load(),
			Load:       n.load.Load(),
			Jobs:       n.jobs.Load(),
		}
	}
	return out
}

// Enable registers c as the process's "dist" execution backend: after
// this, engine.New (and every estimate request naming the backend "dist")
// runs its supersteps across the cluster's worker processes. Calling
// Enable again with a new cluster replaces the previous one for new jobs.
func Enable(c *Cluster) {
	engine.Register(engine.DistName, func(workers int, job engine.Job) (engine.Backend, error) {
		return c.NewJob(workers, job)
	})
}
