package dist

import (
	"fmt"
	"net"
)

// Loopback builds a cluster whose workers are goroutines in this process,
// connected over synchronous in-memory pipes. Every frame still crosses
// the full wire codec — encode, length-prefix, decode — so the loopback
// cluster exercises the identical protocol as real worker processes,
// minus the sockets. It is the dist backend's debug and test transport,
// and a way to run the wire path on one machine without spawning workers.
func Loopback(ranks int, opts WorkerOptions) (*Cluster, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("dist: loopback cluster needs at least one rank, got %d", ranks)
	}
	conns := make([]net.Conn, ranks)
	addrs := make([]string, ranks)
	for i := 0; i < ranks; i++ {
		coordSide, workerSide := net.Pipe()
		conns[i] = coordSide
		addrs[i] = fmt.Sprintf("loopback/%d", i)
		go ServeConn(workerSide, opts)
	}
	return NewWithConns(conns, addrs, Options{})
}
