package dist

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/query"
)

// WorkerOptions configures one worker session (ServeConn).
type WorkerOptions struct {
	// Conc is how many goroutines execute this rank's partitions; ≤ 0
	// means GOMAXPROCS.
	Conc int
	// GraphCache is how many decoded graphs to keep (fingerprint LRU);
	// ≤ 0 means 8. A miss costs one GraphReq round trip, never a failure.
	GraphCache int
	// Cache, when set, is a shared decoded-graph cache (see NewGraphCache):
	// sgworker passes one per process so coordinators that reconnect reuse
	// shipped graphs. Nil gives the session a private cache of GraphCache
	// entries.
	Cache *GraphCache
	// Logger receives per-job debug logs; nil discards them.
	Logger *slog.Logger
}

// GraphCache is a fingerprint-addressed LRU of decoded graphs, shareable
// across worker sessions.
type GraphCache struct {
	inner graphCache
}

// NewGraphCache returns a cache holding up to capacity graphs (≤ 0 means 8).
func NewGraphCache(capacity int) *GraphCache {
	if capacity <= 0 {
		capacity = 8
	}
	return &GraphCache{inner: graphCache{cap: capacity, m: make(map[uint64]*graph.Graph)}}
}

// ServeConn runs one worker session over an established coordinator
// connection until the connection closes. Each session is independent: a
// worker process can serve several coordinators at once, and its rank,
// topology, and jobs are all scoped to the connection. It returns the
// read error that ended the session (io.EOF for a clean coordinator
// shutdown).
func ServeConn(nc net.Conn, opts WorkerOptions) error {
	if opts.Conc <= 0 {
		opts.Conc = runtime.GOMAXPROCS(0)
	}
	if opts.GraphCache <= 0 {
		opts.GraphCache = 8
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	graphs := &graphCache{cap: opts.GraphCache, m: make(map[uint64]*graph.Graph)}
	if opts.Cache != nil {
		graphs = &opts.Cache.inner
	}
	w := &workerConn{
		conn:    &conn{c: nc},
		opts:    opts,
		logger:  logger,
		jobs:    make(map[uint64]*wjob),
		graphs:  graphs,
		waiters: make(map[uint64][]chan *graph.Graph),
	}
	defer nc.Close()

	// Handshake: the coordinator speaks first.
	f, err := w.conn.readFrame()
	if err != nil {
		return err
	}
	var h helloMsg
	if f.Kind != kHello || decodePayload(f.Payload, &h) != nil || h.Version != protoVersion {
		return fmt.Errorf("dist: coordinator spoke protocol %d, want %d", h.Version, protoVersion)
	}
	hello, err := encodePayload(helloMsg{Version: protoVersion})
	if err != nil {
		return err
	}
	if err := w.send(&frame{Kind: kHello, Payload: hello}); err != nil {
		return err
	}

	for {
		f, err := w.conn.readFrame()
		if err != nil {
			w.failAll(fmt.Errorf("dist: coordinator connection lost: %w", err))
			return err
		}
		switch f.Kind {
		case kJobStart:
			var m jobStartMsg
			if err := decodePayload(f.Payload, &m); err != nil {
				w.failAll(fmt.Errorf("dist: bad jobStart payload: %w", err))
				return err
			}
			// Register the job here, not in the run goroutine: the
			// coordinator wrote this frame before any relayed batch for the
			// job, so synchronous registration guarantees no batch ever
			// races the job into the dropped-frame path.
			j := w.registerJob(f.Job, int(m.Ranks))
			go w.runJob(j, int(f.Dst), m)
		case kStepBatch:
			if j := w.job(f.Job); j != nil {
				j.enqueue(f.Step, f.Payload)
			}
		case kGraphData:
			// Decoding a graph rebuilds its rank order — too heavy for the
			// reader, which must keep draining batches for running jobs.
			payload := f.Payload
			go w.deliverGraph(payload)
		case kJobCancel:
			var m cancelMsg
			reason := "canceled by coordinator"
			if decodePayload(f.Payload, &m) == nil && m.Reason != "" {
				reason = m.Reason
			}
			if j := w.job(f.Job); j != nil {
				j.fail(fmt.Errorf("dist: %s", reason))
			}
		default:
			err := fmt.Errorf("dist: unexpected %s frame from coordinator", kindName(f.Kind))
			w.failAll(err)
			return err
		}
	}
}

// workerConn is one worker session's shared state.
type workerConn struct {
	conn   *conn
	wmu    sync.Mutex
	opts   WorkerOptions
	logger *slog.Logger

	mu      sync.Mutex
	jobs    map[uint64]*wjob
	graphs  *graphCache
	waiters map[uint64][]chan *graph.Graph // fingerprint → fetch waiters
}

func (w *workerConn) send(f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.conn.writeFrame(f)
}

func (w *workerConn) job(id uint64) *wjob {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs[id]
}

func (w *workerConn) failAll(err error) {
	w.mu.Lock()
	live := make([]*wjob, 0, len(w.jobs))
	for _, j := range w.jobs {
		live = append(live, j)
	}
	w.mu.Unlock()
	for _, j := range live {
		j.fail(err)
	}
}

func (w *workerConn) deliverGraph(payload []byte) {
	var m graphDataMsg
	if err := decodePayload(payload, &m); err != nil || m.G == nil {
		w.logger.Warn("dist worker: bad graph payload", "err", err)
		return
	}
	w.graphs.put(m.FP, m.G)
	w.mu.Lock()
	chans := w.waiters[m.FP]
	delete(w.waiters, m.FP)
	w.mu.Unlock()
	for _, ch := range chans {
		ch <- m.G // buffered; never blocks
	}
}

// graphFor resolves a job's graph: cache hit, or one GraphReq round trip.
func (w *workerConn) graphFor(ctx context.Context, jobID, fp uint64) (*graph.Graph, error) {
	if g := w.graphs.get(fp); g != nil {
		return g, nil
	}
	ch := make(chan *graph.Graph, 1)
	w.mu.Lock()
	w.waiters[fp] = append(w.waiters[fp], ch)
	w.mu.Unlock()
	// Re-check after registering: the data may have landed in between.
	if g := w.graphs.get(fp); g != nil {
		return g, nil
	}
	if err := w.send(&frame{Kind: kGraphReq, Job: jobID}); err != nil {
		return nil, err
	}
	select {
	case g := <-ch:
		return g, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// registerJob makes a job addressable for incoming frames. It must run on
// the reader goroutine (see the kJobStart case) so batches relayed right
// behind the start frame find it.
func (w *workerConn) registerJob(id uint64, ranks int) *wjob {
	ctx, cancel := context.WithCancel(context.Background())
	j := &wjob{id: id, w: w, ranks: ranks, ctx: ctx, cancel: cancel, batches: make(map[int64][][]byte)}
	j.cond = sync.NewCond(&j.mu)
	w.mu.Lock()
	w.jobs[id] = j
	w.mu.Unlock()
	return j
}

// runJob executes one job as this session's assigned rank: the same
// deterministic solver as every other rank, over a backend owning only
// this rank's partition block.
func (w *workerConn) runJob(j *wjob, rank int, m jobStartMsg) {
	id := j.id
	t := newTopo(int(m.Ranks), int(m.Parts), int(m.N))
	ctx := j.ctx
	defer func() {
		w.mu.Lock()
		delete(w.jobs, id)
		w.mu.Unlock()
		j.cancel()
	}()

	rk := newRank(t, rank, j, w.opts.Conc)
	done := w.execute(ctx, rk, m)
	done.Steps = rk.steps.Load()
	done.Msgs = rk.msgs.Load()
	payload, err := encodePayload(done)
	if err != nil {
		w.logger.Warn("dist worker: encoding jobDone", "job", id, "err", err)
		return
	}
	// Best effort: if the conn died the coordinator has already failed the
	// job.
	if err := w.send(&frame{Kind: kJobDone, Job: id, Src: int32(rank), Payload: payload}); err != nil {
		w.logger.Warn("dist worker: sending jobDone", "job", id, "err", err)
	}
}

// execute runs the solver and shapes the final report. A panic (malformed
// wire input reaching a library that validates by panicking) becomes a
// clean job error instead of killing the whole worker session.
func (w *workerConn) execute(ctx context.Context, rk *rank, m jobStartMsg) (done jobDoneMsg) {
	defer func() {
		if r := recover(); r != nil {
			done.Err = fmt.Sprintf("worker panic: %v", r)
		}
	}()
	g, err := w.graphFor(ctx, rk.j.id, m.GraphFP)
	if err != nil {
		done.Err = err.Error()
		return
	}
	if g.N() != int(m.N) {
		done.Err = fmt.Sprintf("graph %x has %d vertices, job says %d", m.GraphFP, g.N(), m.N)
		return
	}
	q := query.FromEdges(m.QueryName, m.QueryK, m.QueryEdges)
	plan, err := decodePlan(m.Plan, q)
	if err != nil {
		done.Err = err.Error()
		return
	}
	opts := core.Options{Algorithm: core.Algorithm(m.Algorithm), Plan: plan, Engine: rk}
	if engine.JobMode(m.Mode) == engine.ModePerVertex {
		per, _, stats, err := core.CountColorfulPerVertexContext(ctx, g, q, m.Colors, int(m.Anchor), opts)
		if err != nil {
			done.Err = err.Error()
			return
		}
		lo, hi := rk.Owned()
		done.PerVertex = per[lo:hi]
		done.OwnedLo, done.OwnedHi = lo, hi
		done.Load = stats.TotalLoad
		done.Entries = stats.TableEntries
		return
	}
	count, stats, err := core.CountColorfulContext(ctx, g, q, m.Colors, opts)
	if err != nil {
		done.Err = err.Error()
		return
	}
	done.Count = count
	done.Load = stats.TotalLoad
	done.Entries = stats.TableEntries
	return
}

// graphCache is the worker-side fingerprint-addressed graph LRU.
type graphCache struct {
	mu    sync.Mutex
	cap   int
	m     map[uint64]*graph.Graph
	order []uint64 // front = least recently used
}

func (c *graphCache) get(fp uint64) *graph.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.m[fp]
	if g != nil {
		c.touch(fp)
	}
	return g
}

func (c *graphCache) put(fp uint64, g *graph.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fp]; !ok {
		c.order = append(c.order, fp)
	}
	c.m[fp] = g
	c.touch(fp)
	for len(c.m) > c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.m, old)
	}
}

func (c *graphCache) touch(fp uint64) {
	for i, f := range c.order {
		if f == fp {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// wjob is the worker-side state of one job: the incoming batch queue and
// the failure latch.
type wjob struct {
	id     uint64
	w      *workerConn
	ranks  int
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	batches map[int64][][]byte // superstep → raw batch payloads received
	err     error
}

func (j *wjob) enqueue(step int64, payload []byte) {
	j.mu.Lock()
	j.batches[step] = append(j.batches[step], payload)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// fail latches a local failure and cancels the job's context, which
// unwinds the solver at its next cancellation poll.
func (j *wjob) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	j.cancel()
	j.cond.Broadcast()
}

// await blocks until every other rank's batch for the superstep has
// arrived (one per rank, empty batches included — that is the barrier),
// or the job has failed.
func (j *wjob) await(step int64) ([][]byte, error) {
	need := j.ranks - 1
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.err != nil {
			return nil, j.err
		}
		if len(j.batches[step]) >= need {
			b := j.batches[step]
			delete(j.batches, step)
			return b, nil
		}
		j.cond.Wait()
	}
}
