package dist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// Coord is the engine.Backend the coordinator process hands to its local
// solver: a rank that owns zero partitions. The solver's Run calls are
// no-ops here (all partition work happens on the workers), its Step and
// Deliver calls block at the global superstep barrier — so a trace span
// around them measures the real distributed phase — and Reduce gathers
// the per-rank answers into the global one.
type Coord struct {
	t     topo
	job   *cjob
	steps atomic.Int64

	mu  sync.Mutex
	res *gathered // set once by Reduce/ReduceVec
}

// gathered is the digested set of rank reports.
type gathered struct {
	loads   []int64 // per rank
	msgs    int64
	entries int64
}

// Name returns "dist".
func (d *Coord) Name() string { return engine.DistName }

// P returns the global partition count.
func (d *Coord) P() int { return d.t.parts }

// Workers returns the worker-process count.
func (d *Coord) Workers() int { return d.t.ranks }

// N returns the vertex-space size.
func (d *Coord) N() int { return d.t.n }

// Owner returns the partition owning vertex v.
func (d *Coord) Owner(v uint32) int { return d.t.owner(v) }

// Range returns the vertex interval of partition w.
func (d *Coord) Range(w int) (lo, hi uint32) { return d.t.partRange(w) }

// Owned returns the empty interval: the coordinator executes no
// partitions itself.
func (d *Coord) Owned() (lo, hi uint32) { return 0, 0 }

// Run is a no-op: partition tasks run on the workers, whose replicated
// solvers make the same Run call over their own partitions. Local-only
// phases therefore cost the coordinator nothing; their time is observed
// at the next superstep barrier.
func (d *Coord) Run(func(w int)) {}

// Step advances the superstep counter and blocks until every rank has
// finished producing (and therefore sent) this superstep's batches. The
// out table stays untouched — no partition is owned here. A failed job
// returns immediately; the failure surfaces in Reduce.
func (d *Coord) Step(out *engine.Sharded, produce func(w int, emit engine.Emit)) {
	_ = d.job.barrier(d.steps.Add(1))
}

// Deliver is Step with a custom consumer; neither runs locally.
func (d *Coord) Deliver(produce func(w int, emit engine.Emit), consume func(dst int, run []engine.Msg)) {
	_ = d.job.barrier(d.steps.Add(1))
}

// AddLoad is a no-op: the coordinator performs no projection operations.
func (d *Coord) AddLoad(w int, di int64) {}

// Reduce gathers every rank's final report and returns the global count.
// This is where a lost worker, a remote error, or an SPMD divergence
// surfaces as the run's error.
func (d *Coord) Reduce(local uint64) (uint64, error) {
	dones, err := d.gather()
	if err != nil {
		return 0, err
	}
	total := local
	for _, m := range dones {
		total += m.Count
	}
	return total, nil
}

// ReduceVec assembles the global per-vertex vector from each rank's owned
// block.
func (d *Coord) ReduceVec(local []uint64) ([]uint64, error) {
	dones, err := d.gather()
	if err != nil {
		return nil, err
	}
	for rank, m := range dones {
		if int(m.OwnedHi) > len(local) || m.OwnedLo > m.OwnedHi ||
			int(m.OwnedHi-m.OwnedLo) != len(m.PerVertex) {
			return nil, fmt.Errorf("dist: worker %d reported per-vertex block [%d,%d) with %d entries",
				rank, m.OwnedLo, m.OwnedHi, len(m.PerVertex))
		}
		for i, v := range m.PerVertex {
			local[int(m.OwnedLo)+i] += v
		}
	}
	return local, nil
}

// gather waits for all rank reports, validates the SPMD invariant
// (identical superstep counts everywhere), digests the counters, and
// retires the job.
func (d *Coord) gather() (map[int]*jobDoneMsg, error) {
	dones, err := d.job.gather()
	if err != nil {
		return nil, err
	}
	steps := d.steps.Load()
	for rank, m := range dones {
		if m.Steps != steps {
			err := fmt.Errorf("dist: worker %d ran %d supersteps, coordinator ran %d (SPMD divergence)", rank, m.Steps, steps)
			d.job.fail(err)
			return nil, err
		}
	}
	g := &gathered{loads: make([]int64, d.t.ranks)}
	for rank, m := range dones {
		g.loads[rank] = m.Load
		g.msgs += m.Msgs
		g.entries += m.Entries
	}
	d.mu.Lock()
	d.res = g
	d.mu.Unlock()
	d.job.c.removeJob(d.job.id)
	return dones, nil
}

func (d *Coord) snapshot() *gathered {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.res
}

// Loads returns per-worker-node load counters (zero until Reduce has
// gathered the rank reports).
func (d *Coord) Loads() []int64 {
	if g := d.snapshot(); g != nil {
		out := make([]int64, len(g.loads))
		copy(out, g.loads)
		return out
	}
	return make([]int64, d.t.ranks)
}

// LoadStats returns (max, avg, total) over the per-node loads.
func (d *Coord) LoadStats() (max int64, avg float64, total int64) {
	for _, l := range d.Loads() {
		total += l
		if l > max {
			max = l
		}
	}
	return max, float64(total) / float64(d.t.ranks), total
}

// Messages returns the number of real cross-process messages exchanged
// (each keyed count addressed to a remote partition, counted once at its
// sender). Comparable with the sim backend's simulated count for the same
// plan and partition count — the paper's predicted-vs-actual harness.
func (d *Coord) Messages() int64 {
	if g := d.snapshot(); g != nil {
		return g.msgs
	}
	return 0
}

// Steals returns 0: partition ownership is static, as on the paper's
// cluster.
func (d *Coord) Steals() int64 { return 0 }

// Steps returns the superstep count — identical across all three backends
// for a given plan, and verified against every rank's own count at
// gather time.
func (d *Coord) Steps() int64 { return d.steps.Load() }

// TableEntriesHint reports the projection-table entries materialized on
// the workers (the coordinator's own shards stay empty); core adds it to
// its local count when snapshotting Stats.
func (d *Coord) TableEntriesHint() int64 {
	if g := d.snapshot(); g != nil {
		return g.entries
	}
	return 0
}
