package dist

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// rank is the worker-side engine.Backend: the same global partition
// topology as the coordinator's Coord, but executing the contiguous block
// of partitions assigned to this rank. Emits to locally owned partitions
// merge directly under per-partition locks; emits to remote partitions
// are buffered per destination rank and shipped as one batch each at the
// superstep barrier.
type rank struct {
	t    topo
	rank int
	j    *wjob
	conc int

	pLo, pHi int // owned partition interval

	locks []paddedMutex  // per owned partition, guards local merges
	loads []atomic.Int64 // per owned partition
	steps atomic.Int64
	msgs  atomic.Int64 // keyed counts addressed to remote ranks
}

// paddedMutex keeps each partition lock on its own cache line (same
// rationale as the parallel backend's).
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

func newRank(t topo, r int, j *wjob, conc int) *rank {
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	pLo, pHi := t.rankParts(r)
	n := pHi - pLo
	if n < 0 {
		n = 0
	}
	return &rank{
		t: t, rank: r, j: j, conc: conc,
		pLo: pLo, pHi: pHi,
		locks: make([]paddedMutex, n),
		loads: make([]atomic.Int64, n),
	}
}

// Name returns "dist".
func (r *rank) Name() string { return engine.DistName }

// P returns the global partition count.
func (r *rank) P() int { return r.t.parts }

// Workers returns the global rank count.
func (r *rank) Workers() int { return r.t.ranks }

// N returns the vertex-space size.
func (r *rank) N() int { return r.t.n }

// Owner returns the (global) partition owning vertex v.
func (r *rank) Owner(v uint32) int { return r.t.owner(v) }

// Range returns the vertex interval of (global) partition w.
func (r *rank) Range(w int) (lo, hi uint32) { return r.t.partRange(w) }

// Owned returns the vertex interval covered by this rank's partitions.
func (r *rank) Owned() (lo, hi uint32) { return r.t.rankOwned(r.rank) }

// Run executes f over this rank's owned partitions with conc goroutines
// pulling from a shared cursor.
func (r *rank) Run(f func(w int)) {
	n := r.pHi - r.pLo
	if n <= 0 {
		return
	}
	workers := r.conc
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for w := r.pLo; w < r.pHi; w++ {
			f(w)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				w := r.pLo + int(cursor.Add(1)) - 1
				if w >= r.pHi {
					return
				}
				f(w)
			}
		}()
	}
	wg.Wait()
}

// Step runs the produce phase over owned partitions, exchanges remote
// batches at the barrier, and merges incoming counts into out.
func (r *rank) Step(out *engine.Sharded, produce func(w int, emit engine.Emit)) {
	st := r.steps.Add(1)
	merge := func(dst int, run []engine.Msg) {
		sh := out.Shard(dst)
		for i := range run {
			sh.Add(run[i].K, run[i].C)
		}
	}
	bufs := r.produceLocal(st, produce, merge)
	r.exchange(st, bufs, merge)
}

// Deliver is Step with a custom consumer instead of a table merge.
func (r *rank) Deliver(produce func(w int, emit engine.Emit), consume func(dst int, run []engine.Msg)) {
	st := r.steps.Add(1)
	bufs := r.produceLocal(st, produce, consume)
	r.exchange(st, bufs, consume)
}

// produceLocal runs produce over owned partitions. Runs emitted to local
// destinations are applied immediately under the destination partition's
// lock, taken once per run (the consume contract — never concurrent for
// one dst — holds because apply of remote batches is strictly after all
// local production). Runs emitted to remote destinations are buffered
// into the per-destination-rank wire batch under one lock acquisition.
func (r *rank) produceLocal(st int64, produce func(w int, emit engine.Emit), local func(dst int, run []engine.Msg)) [][]wireMsg {
	bufs := make([][]wireMsg, r.t.ranks)
	bufMu := make([]sync.Mutex, r.t.ranks)
	r.Run(func(w int) {
		produce(w, func(dst int, run []engine.Msg) {
			dr := r.t.rankOf(dst)
			if dr == r.rank {
				mu := &r.locks[dst-r.pLo]
				mu.Lock()
				local(dst, run)
				mu.Unlock()
				return
			}
			r.msgs.Add(int64(len(run)))
			bufMu[dr].Lock()
			for i := range run {
				bufs[dr] = append(bufs[dr], wireMsg{Dst: int32(dst), K: run[i].K, C: run[i].C})
			}
			bufMu[dr].Unlock()
		})
	})
	return bufs
}

// exchange sends one batch per other rank (empty included — the batch is
// the barrier token), signals StepDone to the coordinator, then awaits
// the other ranks' batches for this superstep and applies them
// single-threaded, regrouping consecutive same-destination wire messages
// into runs over a reusable scratch buffer so the consumer sees the same
// batched shape local emits have. Any transport failure latches the job
// failure, which cancels the job context; the solver unwinds at its next
// poll and the error surfaces in the coordinator's Reduce.
func (r *rank) exchange(st int64, bufs [][]wireMsg, apply func(dst int, run []engine.Msg)) {
	for dr := 0; dr < r.t.ranks; dr++ {
		if dr == r.rank {
			continue
		}
		payload, err := encodePayload(batchMsg{Msgs: bufs[dr]})
		if err != nil {
			r.j.fail(err)
			return
		}
		f := &frame{Kind: kStepBatch, Job: r.j.id, Step: st, Src: int32(r.rank), Dst: int32(dr), Payload: payload}
		if err := r.j.w.send(f); err != nil {
			r.j.fail(err)
			return
		}
	}
	done := &frame{Kind: kStepDone, Job: r.j.id, Step: st, Src: int32(r.rank)}
	if err := r.j.w.send(done); err != nil {
		r.j.fail(err)
		return
	}
	payloads, err := r.j.await(st)
	if err != nil {
		return // already latched
	}
	var scratch []engine.Msg
	for _, p := range payloads {
		var bm batchMsg
		if err := decodePayload(p, &bm); err != nil {
			r.j.fail(fmt.Errorf("dist: bad step batch: %w", err))
			return
		}
		msgs := bm.Msgs
		for i := 0; i < len(msgs); {
			dst := int(msgs[i].Dst)
			if dst < r.pLo || dst >= r.pHi {
				r.j.fail(fmt.Errorf("dist: received count for partition %d outside owned [%d,%d)", dst, r.pLo, r.pHi))
				return
			}
			scratch = scratch[:0]
			j := i
			for j < len(msgs) && int(msgs[j].Dst) == dst {
				scratch = append(scratch, engine.Msg{K: msgs[j].K, C: msgs[j].C})
				j++
			}
			apply(dst, scratch)
			i = j
		}
	}
}

// AddLoad accumulates load for an owned partition.
func (r *rank) AddLoad(w int, di int64) {
	if w >= r.pLo && w < r.pHi {
		r.loads[w-r.pLo].Add(di)
	}
}

// Reduce is the identity worker-side: the global reduction happens on the
// coordinator, which gathers this rank's JobDone report.
func (r *rank) Reduce(local uint64) (uint64, error) { return local, nil }

// ReduceVec is the identity worker-side; the owned block is extracted
// from the full-length vector when building the JobDone report.
func (r *rank) ReduceVec(local []uint64) ([]uint64, error) { return local, nil }

// Loads returns per-owned-partition loads (local view only).
func (r *rank) Loads() []int64 {
	out := make([]int64, len(r.loads))
	for i := range r.loads {
		out[i] = r.loads[i].Load()
	}
	return out
}

// LoadStats returns (max, avg, total) over this rank's partitions.
func (r *rank) LoadStats() (max int64, avg float64, total int64) {
	loads := r.Loads()
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if len(loads) > 0 {
		avg = float64(total) / float64(len(loads))
	}
	return max, avg, total
}

// Messages returns the keyed counts this rank addressed to remote ranks.
func (r *rank) Messages() int64 { return r.msgs.Load() }

// Steals returns 0: block ownership is static.
func (r *rank) Steals() int64 { return 0 }

// Steps returns this rank's superstep count; the coordinator verifies it
// against its own at gather time (SPMD divergence check).
func (r *rank) Steps() int64 { return r.steps.Load() }
