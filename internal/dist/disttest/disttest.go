// Package disttest backs SUBGRAPH_BACKEND=dist test runs. Any package
// whose tests resolve the execution backend from the environment (even
// indirectly, through plan calibration) gets a TestMain of the form
//
//	func TestMain(m *testing.M) { os.Exit(disttest.Main(m)) }
//
// which, when the environment selects the dist backend, registers an
// in-process loopback cluster (two worker "processes" over net.Pipe,
// full wire protocol) before the suite runs, and tears it down after.
// Under any other backend Main is exactly m.Run().
package disttest

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/dist"
	"repro/internal/engine"
)

// Main wraps m.Run with loopback-cluster setup when SUBGRAPH_BACKEND
// selects the dist backend. It returns the exit code rather than
// calling os.Exit so callers keep the standard TestMain shape.
func Main(m *testing.M) int {
	if os.Getenv(engine.BackendEnv) != engine.DistName {
		return m.Run()
	}
	c, err := dist.Loopback(2, dist.WorkerOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "disttest: enabling dist loopback cluster:", err)
		return 1
	}
	defer c.Close()
	dist.Enable(c)
	return m.Run()
}
