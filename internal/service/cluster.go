package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
)

// forwardHeader marks a request as already forwarded once, carrying the
// origin replica's address. A replica receiving it always executes the
// request locally — even if its own ring view disagrees about the home —
// so a forward can never loop, and transient membership-view skew
// degrades to one extra hop, never a cycle.
const forwardHeader = "X-Subgraph-Forward"

// homeHeader tells the client which replica actually served a forwarded
// request, for debugging and for sgload's per-endpoint accounting.
const homeHeader = "X-Subgraph-Home"

// ClusterStats is the /v1/stats cluster section: the cluster layer's
// membership/health snapshot plus this replica's forwarding and handoff
// counters.
type ClusterStats struct {
	cluster.Stats
	// Forwards counts requests this replica proxied to their home.
	Forwards uint64 `json:"forwards"`
	// ForwardErrors counts transport-level forward failures (the request
	// then ran locally).
	ForwardErrors uint64 `json:"forwardErrors"`
	// LocalFallbacks counts non-owned requests served locally because the
	// home was unreachable, unhealthy, or circuit-broken.
	LocalFallbacks uint64 `json:"localFallbacks"`
	// ForwardedServed counts requests that arrived with a forward header
	// (another replica proxied them here).
	ForwardedServed uint64 `json:"forwardedServed"`
	// HandoffExported / HandoffImported count trial runs shipped to new
	// homes and received from old ones during rebalancing.
	HandoffExported uint64 `json:"handoffExported"`
	HandoffImported uint64 `json:"handoffImported"`
	// HandoffActive reports an import replay in progress (readyz is 503
	// while it runs).
	HandoffActive bool `json:"handoffActive"`
}

// newForwardClient builds the proxy client: dials fail fast (a dead
// home must cost ~1s, not a kernel TCP timeout, before the local
// fallback kicks in) while response reads stay unbounded — a forwarded
// cache miss legitimately runs the solver on the home.
func newForwardClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: time.Second}).DialContext,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		},
	}
}

// routeKey computes a request's trial-stream key for ring routing,
// without submitting anything: the same normalize → algorithm → query →
// fingerprint pipeline submitJob runs, projected to the TrialKey. The
// boolean is false when the request cannot be routed (malformed, or the
// graph is not registered locally) — those requests are served locally,
// where the real path produces the proper error.
func (s *Service) routeKey(req EstimateRequest) (TrialKey, bool) {
	nreq, err := s.normalize(req)
	if err != nil {
		return TrialKey{}, false
	}
	alg, err := ParseAlgorithm(nreq.Algorithm)
	if err != nil {
		return TrialKey{}, false
	}
	q, err := buildQuery(nreq)
	if err != nil {
		return TrialKey{}, false
	}
	h, ok := s.reg.Acquire(nreq.Graph)
	if !ok {
		return TrialKey{}, false
	}
	defer h.Release()
	return s.key(h.Fingerprint(), q, alg, nreq).TrialKey(), true
}

// maybeForward routes one estimate/job request: if the cluster says its
// trial stream belongs to another replica that looks reachable, the
// request is proxied there and the response relayed verbatim (true).
// Everything else — single-node mode, owned keys, already-forwarded
// requests (the loop guard), unroutable requests, and homes that are
// down or circuit-broken — is served locally (false). Local execution
// of a non-owned key is deliberate degradation: the answer is still
// bit-identical (trials are deterministic everywhere), it just costs a
// duplicate computation instead of an error or a hang.
func (s *Service) maybeForward(w http.ResponseWriter, r *http.Request, path string, req EstimateRequest) bool {
	if s.cluster == nil {
		return false
	}
	if r.Header.Get(forwardHeader) != "" {
		s.clForwardedServed.Add(1)
		return false
	}
	tk, ok := s.routeKey(req)
	if !ok {
		return false
	}
	home := s.cluster.Owner(tk.hash())
	if s.cluster.IsSelf(home) {
		return false
	}
	if !s.cluster.Allow(home) {
		s.clLocalFallbacks.Add(1)
		return false
	}
	if s.forward(w, r, home, path, req) {
		return true
	}
	s.clLocalFallbacks.Add(1)
	return false
}

// forward proxies one request to its home replica and relays the
// response. Returns false (nothing written) on transport failure, so
// the caller falls back to local execution; the failure feeds the
// home's circuit breaker. A failure caused by the client's own context
// is not the peer's fault — it is reported to the client directly.
func (s *Service) forward(w http.ResponseWriter, r *http.Request, home, path string, req EstimateRequest) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	freq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "http://"+home+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	freq.Header.Set("Content-Type", "application/json")
	freq.Header.Set(forwardHeader, s.cluster.Self())
	resp, err := s.fwd.Do(freq)
	if err != nil {
		if r.Context().Err() != nil {
			writeError(w, r.Context().Err())
			return true
		}
		s.cluster.ReportFailure(home)
		s.clForwardErrors.Add(1)
		s.logger.Warn("cluster: forward failed; serving locally", "home", home, "path", path, "err", err)
		return false
	}
	defer resp.Body.Close()
	s.cluster.ReportSuccess(home)
	s.clForwards.Add(1)
	for _, h := range []string{"Content-Type", "X-Cache", "X-Elapsed-Ms", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if loc := resp.Header.Get("Location"); loc != "" {
		// The job lives on its home replica; hand the client an absolute
		// URL so polls go straight there instead of 404ing here.
		w.Header().Set("Location", "http://"+home+loc)
	}
	w.Header().Set(homeHeader, home)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone; nothing to do
	return true
}

// handleReadyz is the readiness probe, distinct from /healthz liveness:
// 503 while a handoff replay is importing runs (peers and routers must
// not prefer a replica mid-warm). Boot replay needs no flag here — it
// runs inside Open before the listener binds, so during it a prober
// sees connection refused, which is the same "not ready" answer.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.handoffActive.Load() > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "replaying handoff",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

// wireRun is the JSON handoff form of one trial stream, mirroring
// durable.RunRecord field for field.
type wireRun struct {
	Graph     uint64       `json:"graph"`
	Query     string       `json:"query"`
	Algorithm int          `json:"algorithm"`
	Backend   string       `json:"backend"`
	Seed      int64        `json:"seed"`
	Ranks     int          `json:"ranks"`
	Counts    []uint64     `json:"counts"`
	Stats     []core.Stats `json:"stats"`
}

func toWireRun(tk TrialKey, run TrialRun) wireRun {
	return wireRun{
		Graph:     tk.Graph,
		Query:     tk.Query,
		Algorithm: int(tk.Algorithm),
		Backend:   tk.Backend,
		Seed:      tk.Seed,
		Ranks:     tk.Ranks,
		Counts:    run.Counts,
		Stats:     run.Stats,
	}
}

func (r wireRun) trialKey() TrialKey {
	return TrialKey{
		Graph:     r.Graph,
		Query:     r.Query,
		Algorithm: core.Algorithm(r.Algorithm),
		Backend:   r.Backend,
		Seed:      r.Seed,
		Ranks:     r.Ranks,
	}
}

// maxHandoffBody bounds one handoff import request (64 MiB): run
// batches are peer-to-peer, but the endpoint still must not be a
// memory-exhaustion vector.
const maxHandoffBody = 64 << 20

// handleClusterImport receives trial runs from a peer rebalancing its
// keys toward this replica: each run lands in the cache (longest-wins
// merge, so re-imports are idempotent) and the durable log. The replica
// reports itself unready (/readyz 503) while the replay runs.
func (s *Service) handleClusterImport(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Runs []wireRun `json:"runs"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHandoffBody))
	if err := dec.Decode(&body); err != nil {
		writeError(w, fmt.Errorf("service: bad handoff body: %w", err))
		return
	}
	s.handoffActive.Add(1)
	defer s.handoffActive.Add(-1)
	for _, wr := range body.Runs {
		tk := wr.trialKey()
		run := TrialRun{Counts: wr.Counts, Stats: wr.Stats}
		s.cache.Put(tk, run)
		s.persistRun(tk, run)
	}
	s.clHandoffImported.Add(uint64(len(body.Runs)))
	s.logger.Info("cluster: handoff imported", "runs", len(body.Runs), "from", r.Header.Get(forwardHeader))
	writeJSON(w, http.StatusOK, map[string]any{"imported": len(body.Runs)})
}

// handleClusterRebalance pushes every locally-held trial run whose home
// is another replica to that home — the membership-change hook: after
// replicas are added or removed, POST /v1/cluster/rebalance on each
// survivor ships each key's accumulated (and durably logged) trials to
// its new owner, which then serves them as warm cache hits. The durable
// log, not just the live cache, is the export source when configured:
// it also holds streams the cache has evicted.
func (s *Service) handleClusterRebalance(w http.ResponseWriter, r *http.Request) {
	merged := make(map[TrialKey]TrialRun)
	for _, e := range s.cache.Export() {
		merged[e.Key] = e.Run
	}
	if s.durable != nil {
		// Flush so runs accepted before this call are on disk, then read
		// the files back read-only; the live writer keeps appending.
		s.durable.Flush()
		recs, err := durable.ReadRuns(s.opts.Durability.Dir)
		if err != nil {
			writeError(w, err)
			return
		}
		for _, rec := range recs {
			tk := trialKeyOf(rec)
			if cur, ok := merged[tk]; !ok || len(rec.Counts) > cur.Len() {
				merged[tk] = TrialRun{Counts: rec.Counts, Stats: rec.Stats}
			}
		}
	}
	byHome := make(map[string][]wireRun)
	kept := 0
	for tk, run := range merged {
		home := s.cluster.Owner(tk.hash())
		if s.cluster.IsSelf(home) {
			kept++
			continue
		}
		byHome[home] = append(byHome[home], toWireRun(tk, run))
	}
	exported := 0
	peerResults := make(map[string]string)
	for home, runs := range byHome {
		if !s.cluster.Allow(home) {
			peerResults[home] = fmt.Sprintf("skipped: peer unavailable (%d runs)", len(runs))
			continue
		}
		if err := s.pushRuns(r, home, runs); err != nil {
			s.cluster.ReportFailure(home)
			peerResults[home] = "error: " + err.Error()
			s.logger.Warn("cluster: handoff push failed", "home", home, "runs", len(runs), "err", err)
			continue
		}
		s.cluster.ReportSuccess(home)
		exported += len(runs)
		s.clHandoffExported.Add(uint64(len(runs)))
		peerResults[home] = fmt.Sprintf("exported %d runs", len(runs))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"exported": exported,
		"kept":     kept,
		"peers":    peerResults,
	})
}

// pushRuns ships one batch of runs to a peer's import endpoint.
func (s *Service) pushRuns(r *http.Request, home string, runs []wireRun) error {
	body, err := json.Marshal(map[string]any{"runs": runs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "http://"+home+"/v1/cluster/runs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, s.cluster.Self())
	resp, err := s.fwd.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("peer returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

// clusterStats assembles the /v1/stats cluster section; nil outside
// cluster mode.
func (s *Service) clusterStats() *ClusterStats {
	if s.cluster == nil {
		return nil
	}
	return &ClusterStats{
		Stats:           s.cluster.Stats(),
		Forwards:        s.clForwards.Load(),
		ForwardErrors:   s.clForwardErrors.Load(),
		LocalFallbacks:  s.clLocalFallbacks.Load(),
		ForwardedServed: s.clForwardedServed.Load(),
		HandoffExported: s.clHandoffExported.Load(),
		HandoffImported: s.clHandoffImported.Load(),
		HandoffActive:   s.handoffActive.Load() > 0,
	}
}
