package service_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	subgraph "repro"
)

// openDurable starts a service over dataDir (empty = in-memory) with the
// golden graph registered. Backend comes from the environment default,
// so the CI backend matrix runs this file's restart equivalence against
// sim, parallel, and dist alike.
func openDurable(t *testing.T, dataDir string) *subgraph.Service {
	t.Helper()
	opts := subgraph.ServiceOptions{Workers: 2}
	if dataDir != "" {
		opts.Durability = subgraph.DurabilityOptions{Dir: dataDir, Fsync: "always"}
	}
	svc, err := subgraph.OpenService(opts)
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "g"}); err != nil {
		svc.Close()
		t.Fatalf("AddGraph: %v", err)
	}
	return svc
}

// durableReqs is the request mix the equivalence tests replay: a fixed
// trial count, a precision target that extends those trials, and a
// second stream entirely.
func durableReqs() []subgraph.EstimateRequest {
	return []subgraph.EstimateRequest{
		{Graph: "g", Query: "glet1", Trials: 3, Seed: 7},
		{Graph: "g", Query: "glet1", Seed: 7,
			Precision: &subgraph.PrecisionSpec{RelErr: 0.5, Confidence: 0.9, MaxTrials: 64}},
		{Graph: "g", Query: "cycle5", Trials: 4, Seed: 2},
	}
}

// TestRestartBitIdentity is the replay-equivalence bar: a service that
// computed, died, and restarted over its data dir must answer the same
// requests bit-identically to one that never stopped — and must answer
// them purely from the replayed cache, with zero fresh solver runs.
func TestRestartBitIdentity(t *testing.T) {
	reqs := durableReqs()

	// The never-stopped reference.
	ref := openDurable(t, "")
	want := make([]subgraph.EstimateResult, len(reqs))
	for i, req := range reqs {
		res, err := ref.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("reference request %d: %v", i, err)
		}
		want[i] = res
	}
	ref.Close()

	// First durable life: compute everything, then die.
	dir := t.TempDir()
	svc := openDurable(t, dir)
	for i, req := range reqs {
		res, err := svc.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("durable request %d: %v", i, err)
		}
		if !reflect.DeepEqual(res.Estimate, want[i].Estimate) {
			t.Fatalf("durable service diverged from in-memory before any restart (request %d)", i)
		}
	}
	svc.Close()

	// Second life: same answers, no compute.
	svc2 := openDurable(t, dir)
	defer svc2.Close()
	st := svc2.Stats()
	if st.Durable == nil {
		t.Fatal("restarted service reports no durable stats")
	}
	if st.Durable.ReplayedRuns == 0 {
		t.Fatalf("restart replayed no runs: %+v", *st.Durable)
	}
	for i, req := range reqs {
		res, err := svc2.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("replayed request %d: %v", i, err)
		}
		if !reflect.DeepEqual(res.Estimate, want[i].Estimate) {
			t.Errorf("request %d: restarted estimate diverges from the never-stopped one", i)
		}
		if !res.Cached {
			t.Errorf("request %d not served from the replayed cache", i)
		}
	}
	if got := svc2.Stats().Estimates; got != 0 {
		t.Errorf("restart recomputed %d estimates; warm replay must compute none", got)
	}
}

// TestRestartExtendsReplayedTrials: a tighter precision request after
// restart must extend the replayed trials (computing only the missing
// ones), and the extended stream's prefix stays bit-identical.
func TestRestartExtendsReplayedTrials(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir)
	first, err := svc.Estimate(context.Background(),
		subgraph.EstimateRequest{Graph: "g", Query: "glet1", Trials: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc2 := openDurable(t, dir)
	defer svc2.Close()
	res, err := svc2.Estimate(context.Background(),
		subgraph.EstimateRequest{Graph: "g", Query: "glet1", Trials: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimate.Counts) != 6 {
		t.Fatalf("extended run has %d trials, want 6", len(res.Estimate.Counts))
	}
	if !reflect.DeepEqual(res.Estimate.Counts[:3], first.Estimate.Counts) {
		t.Error("extension does not preserve the replayed trial prefix bit-identically")
	}
	st := svc2.Stats()
	if st.Cache.Extended == 0 {
		t.Errorf("extension not counted: cache.extended = 0 (stats %+v)", st.Cache)
	}
}

// TestJobsSurviveRestart: terminal jobs — done and canceled — stay
// addressable by their original ids across a restart, replay the same
// result bytes, and fresh submissions never collide with replayed ids.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir)
	info, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "g", Query: "glet1", Trials: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := svc.WaitJob(context.Background(), info.ID, 30*time.Second)
	if done.State != subgraph.JobDone {
		t.Fatalf("job ended %s", done.State)
	}
	res1, err := svc.JobResult(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// A pure cache hit is born done without computing a single trial; its
	// estimate is reconstructible from the persisted runs, so the job
	// itself is not persisted (that filter is what keeps durability off
	// the hot serving path).
	hit, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "g", Query: "glet1", Trials: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hinfo, _ := svc.WaitJob(context.Background(), hit.ID, 30*time.Second); !hinfo.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", hinfo)
	}

	// A canceled job is terminal too; it must survive as canceled.
	cinfo, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "g", Query: "brain3", Trials: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if ci, ok := svc.CancelJob(cinfo.ID); !ok || ci.State != subgraph.JobCanceled {
		t.Fatalf("cancel: ok=%v state=%v", ok, ci.State)
	}
	svc.Close()

	svc2 := openDurable(t, dir)
	defer svc2.Close()
	st := svc2.Stats()
	if st.Durable == nil || st.Durable.ReplayedJobs < 2 {
		t.Fatalf("restart replayed too few jobs: %+v", st.Durable)
	}
	got, ok := svc2.Job(info.ID)
	if !ok || got.State != subgraph.JobDone {
		t.Fatalf("done job lost across restart: ok=%v info=%+v", ok, got)
	}
	if !got.Cached && got.Progress.TrialsDone != done.Progress.TrialsDone {
		t.Errorf("replayed job progress diverges: %+v vs %+v", got.Progress, done.Progress)
	}
	res2, err := svc2.JobResult(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Estimate, res2.Estimate) {
		t.Error("replayed job result diverges from the pre-restart one")
	}
	if ci, ok := svc2.Job(cinfo.ID); !ok || ci.State != subgraph.JobCanceled {
		t.Fatalf("canceled job lost across restart: ok=%v info=%+v", ok, ci)
	}
	// Checked before any new submission (fresh jobs may reuse ids that
	// were never persisted): the cache-hit job must not have a record.
	if hi, ok := svc2.Job(hit.ID); ok {
		t.Errorf("pure cache-hit job persisted across restart: %+v", hi)
	}
	if _, err := svc2.JobResult(cinfo.ID); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Errorf("replayed canceled job's result err = %v, want canceled", err)
	}

	// Fresh ids must start past every replayed one.
	fresh, err := svc2.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "g", Query: "glet1", Trials: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == info.ID || fresh.ID == cinfo.ID {
		t.Fatalf("fresh job id %s collides with a replayed id", fresh.ID)
	}
	if _, ok := svc2.Job(fresh.ID); !ok {
		t.Fatal("fresh job not addressable")
	}
}

// TestDurableOpenErrors: a data dir that cannot be created surfaces
// through OpenService (and panics through NewService, preserving New's
// infallible in-memory contract).
func TestDurableOpenErrors(t *testing.T) {
	bad := subgraph.ServiceOptions{Workers: 1,
		Durability: subgraph.DurabilityOptions{Dir: "/dev/null/not-a-dir"}}
	if svc, err := subgraph.OpenService(bad); err == nil {
		svc.Close()
		t.Fatal("OpenService over an uncreatable dir succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewService with a broken data dir did not panic")
		}
	}()
	subgraph.NewService(bad)
}

// TestShutdownSettledJobsNotPersisted: jobs the shutdown sweep settles
// with the retryable closed error are not real outcomes and must not be
// resurrected as failed after a restart.
func TestShutdownSettledJobsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir)
	long, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "g", Query: "brain3", Trials: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	svc.Close() // settles the live job with ErrClosed

	svc2 := openDurable(t, dir)
	defer svc2.Close()
	if info, ok := svc2.Job(long.ID); ok {
		t.Errorf("shutdown-settled job resurrected after restart: %+v", info)
	}
}
