package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
)

// ErrUnknownGraph is returned when a request references a graph id or
// name the registry does not hold (never registered, or evicted).
var ErrUnknownGraph = errors.New("service: unknown graph")

// Options configures a Service.
type Options struct {
	// Workers is the number of scheduler worker goroutines (≤ 0 means
	// runtime.NumCPU()). Each runs one estimation job at a time.
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// rejected with ErrQueueFull (≤ 0 means 1024).
	QueueDepth int
	// CacheCapacity bounds the result cache in entries (≤ 0 means 4096).
	CacheCapacity int
	// Shards is the number of independent stripes the graph registry and
	// result cache are partitioned into; registrations, handle acquires,
	// and cache lookups on different shards never contend on one mutex
	// (≤ 0 means DefaultShards: twice the core count, clamped to [8, 32]).
	// Results are bit-identical at every shard count — sharding changes
	// lock structure, not cache keys or values.
	Shards int
	// GraphBudgetBytes bounds the registry's resident graph memory
	// (≤ 0 means 1 GiB).
	GraphBudgetBytes int64
	// DefaultTrials is used when a request leaves Trials ≤ 0 (≤ 0 means 3,
	// matching subgraph.Estimate).
	DefaultTrials int
	// Backend is the execution backend used when a request leaves Backend
	// empty: "sim" (the paper's simulated distributed engine) or
	// "parallel" (real shared-memory workers). Empty falls back to
	// $SUBGRAPH_BACKEND, then "sim". Estimates are bit-identical across
	// backends; only engine stats differ, so the backend is part of the
	// result-cache key.
	Backend string
	// DefaultRanks is the engine rank/worker count when a request leaves
	// Ranks ≤ 0 (≤ 0 means 4, matching the core sim default).
	DefaultRanks int
	// MaxTrials bounds the per-request trial count; requests beyond it are
	// rejected rather than allowed to allocate trials×n bytes of colorings
	// (≤ 0 means 1024).
	MaxTrials int
	// MaxRanks bounds the per-request simulated rank count; the engine
	// allocates per-rank state, so this must not be request-controlled
	// without limit (≤ 0 means 256).
	MaxRanks int
	// DefaultTimeout bounds each job when the request sets no TimeoutMS;
	// zero means no deadline.
	DefaultTimeout time.Duration
	// GraphDir, when non-empty, allows GraphSpec.Path loading for specs
	// submitted through AddGraph, resolved relative to (and confined to)
	// this directory and bounded by GraphBudgetBytes. When empty — the
	// default — path specs are rejected: requests must not be able to
	// probe the server's filesystem or load unbounded files.
	GraphDir string
	// JobTTL bounds how long a finished job (and its result) stays
	// addressable through the jobs API after it completes (≤ 0 means 10
	// minutes).
	JobTTL time.Duration
	// MaxJobs bounds how many finished jobs are retained; beyond it the
	// oldest finished jobs are dropped even before their TTL (≤ 0 means
	// 4096). Active jobs are never dropped.
	MaxJobs int
	// Logger receives the service's structured logs (per-request access
	// lines at Debug, lifecycle events at Info). Nil means slog.Default(),
	// which drops Debug — so access logging is opt-in via the handler's
	// level, not a separate switch.
	Logger *slog.Logger
	// DistStats, when non-nil, snapshots the distributed backend's
	// per-worker-node counters for /v1/stats and /metrics. The binary that
	// owns the dist cluster (sgserve) injects it; the service itself stays
	// agnostic of the cluster's lifecycle.
	DistStats func() []DistNodeStats
	// Durability, when Dir is set, persists trial-cache runs and terminal
	// jobs to an append-only log replayed on boot: a restarted service
	// serves warm-cache hits and keeps finished jobs addressable. Use
	// Open (not New) to surface replay I/O errors.
	Durability DurabilityOptions
	// Cluster, when non-nil, enables the multi-replica serving tier:
	// estimate and job submissions whose trial stream hashes to another
	// replica on the consistent-hash ring are proxied there (any replica
	// accepts any request), with circuit-broken local fallback when the
	// home is down. The binary that owns the cluster view (sgserve)
	// injects and closes it; the service only consults it.
	Cluster *cluster.Cluster
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 4096
	}
	o.Shards = normShards(o.Shards)
	if o.GraphBudgetBytes <= 0 {
		o.GraphBudgetBytes = 1 << 30
	}
	if o.DefaultTrials <= 0 {
		o.DefaultTrials = 3
	}
	// Resolve the default backend once; an unknown name surfaces on the
	// first request rather than silently running the wrong runtime.
	if b, err := engine.Canonical(o.Backend); err == nil {
		o.Backend = b
	}
	if o.DefaultRanks <= 0 {
		o.DefaultRanks = 4
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 1024
	}
	if o.MaxRanks <= 0 {
		o.MaxRanks = 256
	}
	if o.JobTTL <= 0 {
		o.JobTTL = 10 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	return o
}

// Service is the long-running estimation service: a graph registry, a
// result cache, a job manager, and a scheduled worker pool over the
// color-coding estimator. Every estimation — synchronous or async — is a
// job; the sync entry points are submit-and-wait wrappers over the same
// path, so sync and async results are bit-identical and cache-keyed the
// same way. All methods are safe for concurrent use.
type Service struct {
	opts    Options
	reg     *Registry
	cache   *Cache
	sched   *Scheduler
	jobs    *jobManager
	engine  *engineTracker
	metrics *metricsRecorder
	durable *durable.Log     // nil when Durability.Dir is unset
	cluster *cluster.Cluster // nil outside cluster mode
	fwd     *http.Client     // forwarding client; nil outside cluster mode
	logger  *slog.Logger
	start   time.Time

	reqIDs atomic.Uint64 // X-Request-ID sequence

	estimates       atomic.Uint64 // estimations actually computed
	batches         atomic.Uint64
	coloringsShared atomic.Uint64 // batch jobs that reused another job's colorings

	precisionReqs atomic.Uint64 // precision-targeted requests resolved
	earlyStops    atomic.Uint64 // ...that stopped below their MaxTrials bound
	trialsSaved   atomic.Uint64 // trials the adaptive stops skipped vs MaxTrials

	// Cluster-mode counters (see ClusterStats for semantics).
	clForwards        atomic.Uint64
	clForwardErrors   atomic.Uint64
	clLocalFallbacks  atomic.Uint64
	clForwardedServed atomic.Uint64
	clHandoffExported atomic.Uint64
	clHandoffImported atomic.Uint64
	handoffActive     atomic.Int32 // in-progress handoff imports; /readyz is 503 while > 0
}

// New starts a service. Close releases its workers. With
// Options.Durability set, replay I/O errors panic — use Open to handle
// them; New stays infallible for the in-memory configuration every
// existing caller uses.
func New(opts Options) *Service {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a service, replaying its durable log (when configured)
// before any traffic can arrive. The error is always nil for in-memory
// configurations; with Durability.Dir set it surfaces data-dir I/O
// failures — corrupt log tails are truncated and replayed past, never
// errors.
func Open(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Service{
		opts:    opts,
		reg:     NewRegistry(opts.GraphBudgetBytes, opts.Shards),
		cache:   NewCache(opts.CacheCapacity, opts.Shards),
		sched:   NewScheduler(opts.Workers, opts.QueueDepth),
		jobs:    newJobManager(opts.JobTTL, opts.MaxJobs, opts.Shards),
		engine:  newEngineTracker(),
		metrics: newMetricsRecorder(),
		logger:  logger,
		start:   time.Now(),
	}
	if opts.Cluster != nil {
		s.cluster = opts.Cluster
		s.fwd = newForwardClient()
	}
	if err := s.setupDurable(); err != nil {
		s.sched.Close()
		s.reg.Close()
		s.cache.Close()
		return nil, err
	}
	return s, nil
}

// Close cancels outstanding estimation flights (running solvers stop
// within one cancel-check interval; queued ones are dropped) and then
// stops the worker pool. Without the cancellation, a minutes-long async
// job — whose flight context is detached from any request — would hold
// shutdown hostage until it finished.
func (s *Service) Close() {
	s.jobs.shutdown()
	s.sched.Close()
	s.reg.Close()
	s.cache.Close()
	// The log closes last: the shutdown sweep above may still finalize
	// jobs (filtered from persistence) and Close flushes everything the
	// serving paths enqueued.
	if s.durable != nil {
		s.durable.Close()
	}
}

// Registry exposes the graph registry (for registration and listings).
func (s *Service) Registry() *Registry { return s.reg }

// Cache exposes the result cache (for stats and tests).
func (s *Service) Cache() *Cache { return s.cache }

// AddGraph registers the graph described by spec and returns its listing
// entry. The handle is released immediately: registration pins nothing,
// it only loads (or re-resolves) the graph. Specs arrive from untrusted
// requests, so Path is resolved inside Options.GraphDir (or rejected when
// none is configured) and the file must fit the registry budget — unlike
// Registry.Add, which trusts its caller.
func (s *Service) AddGraph(spec GraphSpec) (GraphInfo, error) {
	if spec.Path != "" {
		p, err := s.resolveGraphPath(spec.Path)
		if err != nil {
			return GraphInfo{}, err
		}
		spec.Path = p
	}
	h, err := s.reg.Add(spec)
	if err != nil {
		return GraphInfo{}, err
	}
	defer h.Release()
	info, _ := s.reg.Info(h.ID())
	return info, nil
}

// resolveGraphPath confines a request-supplied path to Options.GraphDir
// and bounds the file size: parse errors echo file content, so without
// the sandbox a request could read the first line of any server file, and
// the registry budget only applies after a graph is resident.
func (s *Service) resolveGraphPath(p string) (string, error) {
	if s.opts.GraphDir == "" {
		return "", fmt.Errorf("service: path-based graph loading is disabled (no graph dir configured)")
	}
	if filepath.IsAbs(p) {
		return "", fmt.Errorf("service: graph path must be relative to the graph dir")
	}
	clean := filepath.Clean(p)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("service: graph path escapes the graph dir")
	}
	// Resolve symlinks on both sides: a link inside the graph dir pointing
	// elsewhere must not defeat the lexical confinement above.
	root, err := filepath.EvalSymlinks(s.opts.GraphDir)
	if err != nil {
		return "", fmt.Errorf("service: graph dir: %w", err)
	}
	full, err := filepath.EvalSymlinks(filepath.Join(s.opts.GraphDir, clean))
	if err != nil {
		return "", fmt.Errorf("service: graph path: %w", err)
	}
	if full != root && !strings.HasPrefix(full, root+string(filepath.Separator)) {
		return "", fmt.Errorf("service: graph path escapes the graph dir")
	}
	fi, err := os.Stat(full)
	if err != nil {
		return "", fmt.Errorf("service: graph path: %w", err)
	}
	if fi.IsDir() {
		return "", fmt.Errorf("service: graph path %q is a directory", clean)
	}
	if fi.Size() > s.opts.GraphBudgetBytes {
		return "", fmt.Errorf("service: graph file %q (%d bytes) exceeds the registry budget (%d)", clean, fi.Size(), s.opts.GraphBudgetBytes)
	}
	return full, nil
}

// EstimateRequest is one estimation job.
type EstimateRequest struct {
	// Graph is the registry id or name of an already-registered graph.
	Graph string `json:"graph,omitempty"`
	// Query names a catalog or parametric query (see subgraph.QueryByName);
	// alternatively QueryEdges gives an explicit edge list over nodes
	// 0..k-1, with QueryName as optional display name.
	Query      string   `json:"query,omitempty"`
	QueryEdges [][2]int `json:"queryEdges,omitempty"`
	QueryName  string   `json:"queryName,omitempty"`

	// Algorithm is "DB" (default), "PS", or "PSEven".
	Algorithm string `json:"algorithm,omitempty"`
	// Backend is the execution backend: "sim" or "parallel" ("" means the
	// service default). Estimates are bit-identical across backends; the
	// engine stats embedded in the result differ, so the backend is part
	// of the cache key.
	Backend string `json:"backend,omitempty"`
	// Trials is the number of independent colorings (≤ 0 means the service
	// default, itself defaulting to 3).
	Trials int `json:"trials,omitempty"`
	// Seed feeds the coloring RNG; equal seeds give bit-identical results.
	Seed int64 `json:"seed,omitempty"`
	// Ranks is the simulated engine rank count (≤ 0 means the service
	// default, itself defaulting to 4).
	Ranks int `json:"ranks,omitempty"`
	// Parallel runs up to this many trials concurrently inside the job;
	// results are bit-identical to serial (≤ 1 means serial).
	Parallel int `json:"parallel,omitempty"`
	// Priority orders queued jobs; higher runs first.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the job, queue time included; 0 means the service
	// default.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// NoCache skips the result cache lookup (the result is still stored).
	NoCache bool `json:"noCache,omitempty"`
	// Precision switches the request from "run Trials colorings" to
	// "reach this precision": the job runs trials until the observed
	// confidence interval meets the declared target, reusing and
	// extending previously cached trials for the same stream. With
	// Precision set, Trials (if > 0) acts as the MaxTrials default.
	Precision *PrecisionSpec `json:"precision,omitempty"`
}

// PrecisionSpec is the wire form of a declared accuracy target: stop
// adding trials once the estimate's two-sided Confidence-level confidence
// interval has half-width at most RelErr of the mean. The stopping
// decision is a pure function of the per-trial counts, so a
// precision-targeted request is exactly as deterministic and cacheable as
// a fixed-trial one: it resolves to the same estimate a fixed request
// with its stopping trial count would get.
type PrecisionSpec struct {
	// RelErr is the target relative error (0.1 = ±10%); must be > 0.
	RelErr float64 `json:"relErr"`
	// Confidence is the two-sided confidence level in (0,1); 0 means 0.95.
	Confidence float64 `json:"confidence,omitempty"`
	// MinTrials is the earliest trial the rule may fire at (0 means 3).
	MinTrials int `json:"minTrials,omitempty"`
	// MaxTrials caps the adaptive run (0 means the request's trials, else
	// the server's max-trials limit).
	MaxTrials int `json:"maxTrials,omitempty"`
}

// adaptive converts a normalized spec (plus the request's effective
// trial bound) to the coloring layer's stopping rule.
func (p PrecisionSpec) adaptive(maxTrials int) coloring.Adaptive {
	return coloring.Adaptive{
		Precision: coloring.Precision{RelErr: p.RelErr, Confidence: p.Confidence},
		MinTrials: p.MinTrials,
		MaxTrials: maxTrials,
	}
}

// EstimateResult is one finished estimation.
type EstimateResult struct {
	Estimate coloring.Estimate
	Cached   bool
	Elapsed  time.Duration
}

// ParseAlgorithm maps the wire name to a core.Algorithm ("" means DB).
func ParseAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case "", "DB", "db":
		return core.DB, nil
	case "PS", "ps":
		return core.PS, nil
	case "PSEven", "pseven":
		return core.PSEven, nil
	}
	return core.DB, fmt.Errorf("service: unknown algorithm %q (want DB, PS, or PSEven)", name)
}

// maxQueryK mirrors the solver's own query size limit (decomp and core
// reject K > 16). Enforcing it here means oversized queries are rejected
// at request time, before a worker slot is taken and trials×n bytes of
// colorings are drawn for a job that can only fail.
const maxQueryK = 16

// buildQuery resolves the request's query: a catalog/parametric name, or
// an explicit edge list. Both are untrusted: edge lists go through the
// checked constructor with the solver's node bound (so a hostile request
// cannot force a huge k×k adjacency allocation), and resolved queries of
// any provenance are size-checked here rather than deep inside a job.
func buildQuery(req EstimateRequest) (*query.Graph, error) {
	var (
		q   *query.Graph
		err error
	)
	if len(req.QueryEdges) == 0 {
		if req.Query == "" {
			return nil, fmt.Errorf("service: request needs query or queryEdges")
		}
		q, err = query.ByName(req.Query)
	} else {
		name := req.QueryName
		if name == "" {
			name = "custom"
		}
		q, err = query.FromEdgesChecked(name, req.QueryEdges, maxQueryK-1)
	}
	if err != nil {
		return nil, err
	}
	if q.K > maxQueryK {
		return nil, fmt.Errorf("service: query %s has %d nodes; the solver supports at most %d", q.Name, q.K, maxQueryK)
	}
	return q, nil
}

func (s *Service) normalize(req EstimateRequest) (EstimateRequest, error) {
	if req.Backend == "" {
		req.Backend = s.opts.Backend
	}
	// Canonicalize so "" / env-default / explicit "sim" all share one
	// cache key and one inflight-index key.
	backend, err := engine.Canonical(req.Backend)
	if err != nil {
		return req, err
	}
	req.Backend = backend
	if p := req.Precision; p != nil {
		// Normalize into a fresh copy: callers (and batches fanning one
		// spec across queries) must not see their spec mutated.
		np := *p
		if np.RelErr <= 0 {
			return req, fmt.Errorf("service: precision.relErr must be > 0 (got %g)", np.RelErr)
		}
		if np.Confidence == 0 {
			np.Confidence = coloring.DefaultConfidence
		}
		if np.Confidence <= 0 || np.Confidence >= 1 {
			return req, fmt.Errorf("service: precision.confidence %g outside (0,1)", np.Confidence)
		}
		if np.MinTrials <= 0 {
			np.MinTrials = coloring.DefaultMinTrials
		}
		if np.MinTrials < 2 {
			np.MinTrials = 2
		}
		if np.MaxTrials <= 0 {
			if req.Trials > 0 {
				np.MaxTrials = req.Trials
			} else {
				np.MaxTrials = s.opts.MaxTrials
			}
		}
		if np.MinTrials > np.MaxTrials {
			np.MinTrials = np.MaxTrials
		}
		// The adaptive bound rides in Trials from here on: it is the
		// worst-case trial count (sizing, limits, progress totals) and
		// keys the request together with the precision fields.
		req.Trials = np.MaxTrials
		req.Precision = &np
	}
	if req.Trials <= 0 {
		req.Trials = s.opts.DefaultTrials
	}
	if req.Trials > s.opts.MaxTrials {
		return req, fmt.Errorf("service: trials %d exceeds server limit %d", req.Trials, s.opts.MaxTrials)
	}
	if req.Ranks <= 0 {
		req.Ranks = s.opts.DefaultRanks
	}
	if req.Ranks > s.opts.MaxRanks {
		return req, fmt.Errorf("service: ranks %d exceeds server limit %d", req.Ranks, s.opts.MaxRanks)
	}
	// Parallel multiplies per-job memory (one simulated cluster per
	// concurrent trial) without changing results, so clamp rather than
	// reject: the request stays valid, the blast radius stays bounded.
	if req.Parallel > maxParallelPerJob {
		req.Parallel = maxParallelPerJob
	}
	return req, nil
}

// maxParallelPerJob caps intra-job trial concurrency; cross-job
// concurrency is already bounded by the worker pool.
const maxParallelPerJob = 16

// armDeadline starts the job's deadline watchdog from the request's
// timeout (or the service default). The deadline spans queue time and
// run time, as the pre-jobs sync path did.
func (s *Service) armDeadline(j *job, req EstimateRequest) {
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		s.jobs.arm(j, timeout)
	}
}

// key builds the request key for a normalized request. Fixed-trial
// requests leave the precision fields zero, so their keys are unchanged
// from the pre-precision API — the compatibility-shim test pins this
// against silent re-keying.
func (s *Service) key(fp uint64, q *query.Graph, alg core.Algorithm, req EstimateRequest) Key {
	k := Key{
		Graph:     fp,
		Query:     QuerySignature(q),
		Algorithm: alg,
		Backend:   req.Backend,
		Trials:    req.Trials,
		Seed:      req.Seed,
		Ranks:     req.Ranks,
	}
	if p := req.Precision; p != nil {
		k.RelErr = p.RelErr
		k.Confidence = p.Confidence
		k.MinTrials = p.MinTrials
	}
	return k
}

// resolveTrials decides a normalized request's effective trial count from
// the trials accumulated so far: the fixed count, or — for a precision
// request — the adaptive stopping rule walked over the counts. The rule
// is a pure function of the count prefix, so replaying it over cached
// trials stops at exactly the trial a live run stopped at.
func resolveTrials(req EstimateRequest, counts []uint64) (int, bool) {
	if p := req.Precision; p != nil {
		return p.adaptive(req.Trials).StopAt(counts)
	}
	if len(counts) >= req.Trials {
		return req.Trials, true
	}
	return 0, false
}

// tryReplay answers a request purely from cached trials: a fixed-trial
// request whose count is already accumulated is prefix-sliced, a
// precision request whose target is met within the cached trials stops
// where a live run would have. The assembled estimate is bit-identical to
// an uncached run at the same effective trial count (same counts, same
// Assemble). The boolean is false when the cache cannot fully answer —
// the flight then extends the cached trials instead of starting over.
func (s *Service) tryReplay(tk TrialKey, q *query.Graph, req EstimateRequest) (coloring.Estimate, bool) {
	// Peek at the counts alone first: the stopping decision needs nothing
	// else, and a precision request's bound (MaxTrials, up to the server
	// limit) can dwarf the handful of trials it actually uses — the
	// per-trial stats clone below is then sized by the answer, not the
	// bound.
	counts, ok := s.cache.Counts(tk, req.Trials)
	if !ok {
		return coloring.Estimate{}, false
	}
	used, ok := resolveTrials(req, counts)
	if !ok {
		return coloring.Estimate{}, false
	}
	run, ok := s.cache.Get(tk, used)
	if !ok || run.Len() < used {
		// Evicted between the peek and the fetch: a miss like any other.
		return coloring.Estimate{}, false
	}
	run = run.prefix(used)
	est := coloring.Assemble("", q, run.Counts, run.Stats)
	s.notePrecision(req, used)
	return est, true
}

// notePrecision records a precision-targeted request's adaptive outcome:
// stopping below the MaxTrials bound is an early stop, and the trials not
// run are the compute the declarative API saved over the worst case.
func (s *Service) notePrecision(req EstimateRequest, used int) {
	if req.Precision == nil {
		return
	}
	s.precisionReqs.Add(1)
	if used < req.Trials {
		s.earlyStops.Add(1)
		s.trialsSaved.Add(uint64(req.Trials - used))
	}
}

// run executes one estimation as an incremental trial session: cached
// trials for the same stream are preloaded (the extension path — only the
// missing trials run), the session advances to the fixed trial count or
// until the adaptive stopping rule fires, and the accumulated trials go
// back to the cache so the next request starts where this one stopped.
// It is the only place estimates are computed, and every path assembles
// through coloring.Assemble, so cached, extended, and fresh results are
// bit-identical by construction.
func (s *Service) run(ctx context.Context, h *Handle, q *query.Graph, alg core.Algorithm, req EstimateRequest, key Key, colorings [][]uint8, onTrial func(done int, mean, cv float64)) (coloring.Estimate, error) {
	sess, err := coloring.NewSession(h.Graph(), q, coloring.Options{
		Seed: req.Seed,
		Core: core.Options{
			Algorithm: alg,
			Backend:   req.Backend,
			Workers:   req.Ranks,
		},
	})
	if err != nil {
		return coloring.Estimate{}, err
	}
	sess.OnTrial(onTrial)
	if colorings != nil {
		sess.Predraw(colorings)
	}
	tr := obs.FromContext(ctx)
	if !req.NoCache {
		end := tr.Start(spanCacheLookup)
		cached, ok := s.cache.Get(key.TrialKey(), req.Trials)
		end()
		if ok {
			if err := sess.Preload(cached.Counts, cached.Stats); err != nil {
				return coloring.Estimate{}, err
			}
		}
	}
	used := req.Trials
	if p := req.Precision; p != nil {
		used, err = sess.RunUntil(ctx, p.adaptive(req.Trials), req.Parallel, 0)
	} else {
		err = sess.ExtendTo(ctx, req.Trials, req.Parallel)
	}
	if err != nil {
		return coloring.Estimate{}, err
	}
	est := sess.EstimateAt(used)
	s.estimates.Add(1)
	if sess.Computed() > 0 {
		// Only the trials computed here count toward engine telemetry;
		// preloaded trials' work was recorded when it actually ran.
		s.engine.record(sess.ComputedStats())
	}
	counts, stats := sess.Run()
	end := tr.Start(spanCacheStore)
	s.cache.Put(key.TrialKey(), TrialRun{Counts: counts, Stats: stats})
	end()
	// Persist the accumulated stream (async append, off the hot path) so
	// a restart replays it into the cache exactly as stored here.
	s.persistRun(key.TrialKey(), TrialRun{Counts: counts, Stats: stats})
	s.notePrecision(req, used)
	return est, nil
}

// submitJob validates and registers one estimation job, then either
// replays it from the result cache (the job is born done), attaches it to
// an identical in-flight job (singleflight), or schedules a fresh flight
// on the worker pool. colorings, when non-nil, lazily supplies pre-drawn
// colorings for the flight (batch sharing). The job's deadline watchdog
// is armed before returning.
func (s *Service) submitJob(req EstimateRequest, colorings func() [][]uint8) (*job, error) {
	req, err := s.normalize(req)
	if err != nil {
		return nil, err
	}
	alg, err := ParseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, err
	}
	q, err := buildQuery(req)
	if err != nil {
		return nil, err
	}
	h, ok := s.reg.Acquire(req.Graph)
	if !ok {
		return nil, fmt.Errorf("%w %q (register it first)", ErrUnknownGraph, req.Graph)
	}
	key := s.key(h.Fingerprint(), q, alg, req)
	j := &job{
		state:       JobQueued,
		graphName:   h.Graph().Name,
		queryName:   q.Name,
		trialsTotal: req.Trials,
		created:     time.Now(),
		done:        make(chan struct{}),
	}
	// The id is formatted here, before any path takes the jobs mutex, so
	// the allocation stays off the global critical section.
	s.jobs.assignID(j)
	// Every job carries a trace from birth. Its sink feeds the aggregate
	// latency histograms live, so /metrics sees a long job's supersteps
	// while it runs; the timeline itself is served by /v1/jobs/{id}/trace.
	// A job that attaches to an in-flight computation is re-pointed at the
	// flight owner's trace below (one computation, one timeline).
	tr := obs.NewTrace(j.id)
	tr.SetSink(s.metrics.traceSink(req.Backend))
	j.tr = tr
	if !req.NoCache {
		// The replay attempt is the submit path's cache lookup; span it
		// whether or not it answers, so a miss's cost is on the timeline.
		begin := time.Now()
		est, ok := s.tryReplay(key.TrialKey(), q, req)
		tr.Add(spanCacheReplay, begin, time.Now())
		if ok {
			h.Release()
			s.jobs.addCached(j, est)
			return j, nil
		}
	}

	// Singleflight: the key's shard lock (held through flight creation)
	// serializes only submissions and completions of keys on this shard —
	// the jobs mutex is taken briefly inside, never the other way around.
	// NoCache requests bypass the index entirely: they never coalesce and
	// their flights are never findable. Flights are keyed by the full
	// request Key (trial bound and precision target included), not the
	// TrialKey: every waiter on a flight gets the one settled estimate,
	// and different precision tiers may resolve to different trial
	// counts. Two tiers racing over the same trial stream therefore run
	// separate flights and may duplicate trials the cache would have let
	// the later one reuse — sequential tiers share via the cache; a
	// per-TrialKey flight with per-waiter stop resolution is the known
	// next step if tier races show up in real traffic.
	jobs := s.jobs
	var shard *singleflightShard
	if !req.NoCache {
		shard = jobs.inflight.shardFor(key)
		shard.mu.Lock()
		if fl := shard.m[key]; fl != nil {
			// Found under the shard lock ⇒ the flight cannot finish before
			// we attach (finishFlight removes it under this same lock
			// before settling waiters).
			jobs.mu.Lock()
			jobs.attachLocked(fl, j)
			jobs.registerLocked(j)
			jobs.mu.Unlock()
			shard.mu.Unlock()
			h.Release()
			s.armDeadline(j, req)
			return j, nil
		}
		// An identical flight may have finished between the unlocked cache
		// check above and taking the shard lock (its Put lands before it
		// leaves the inflight index); re-check so the just-cached result
		// is replayed instead of recomputed.
		begin := time.Now()
		est, ok := s.tryReplay(key.TrialKey(), q, req)
		tr.Add(spanCacheReplay, begin, time.Now())
		if ok {
			shard.mu.Unlock()
			h.Release()
			s.jobs.addCached(j, est)
			return j, nil
		}
	}
	// New flight. Its context is detached from any request: the flight
	// lives until it finishes or every attached job detaches. The graph
	// lease is the flight's own (released by the scheduler's cleanup hook),
	// so the registry cannot evict the graph out from under a queued or
	// running flight.
	fctx, cancel := context.WithCancel(context.Background())
	fl := &flight{key: key, cancel: cancel, tr: tr}
	submitted := time.Now()
	jobs.mu.Lock()
	jobs.attachLocked(fl, j)
	_, err = s.sched.SubmitJob(fctx, req.Priority, func(ctx context.Context) error {
		s.jobs.flightStarted(fl)
		// Queue wait: submission to worker pickup, the first section of
		// every computed job's timeline.
		tr.Add(spanQueueWait, submitted, time.Now())
		var cs [][]uint8
		if colorings != nil {
			cs = colorings()
		}
		est, err := s.run(obs.WithTrace(ctx, tr), h, q, alg, req, key, cs, func(done int, mean, cv float64) {
			fl.prog.Store(&flightProgress{done: done, mean: mean, cv: cv})
		})
		s.jobs.finishFlight(fl, est, err)
		return err
	}, func() {
		h.Release()
		// Dropped without running (context canceled while queued): settle
		// any job still attached. A no-op when fn already finished it.
		s.jobs.finishFlight(fl, coloring.Estimate{}, context.Canceled)
	})
	if err != nil {
		jobs.mu.Unlock()
		if shard != nil {
			shard.mu.Unlock()
		}
		cancel()
		h.Release()
		return nil, err
	}
	if shard != nil {
		shard.m[key] = fl
	}
	jobs.registerLocked(j)
	jobs.mu.Unlock()
	if shard != nil {
		shard.mu.Unlock()
	}
	s.armDeadline(j, req)
	return j, nil
}

// waitJob blocks until j reaches a terminal state or ctx fires; a fired
// ctx detaches the caller's job (canceling the shared flight when it was
// the last waiter) and surfaces ctx's error — unless the job finished
// first, in which case completion wins.
func (s *Service) waitJob(ctx context.Context, j *job) (EstimateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		s.jobs.detach(j, ctx.Err())
		<-j.done // closed by detach, or already closed if completion won
		// The caller's own context ended the wait: report its error
		// (client cancel / deadline), not the gone-result condition a
		// third party would see — unless completion won the race, in
		// which case the real result stands.
		res, err := s.jobs.outcome(j)
		if err != nil {
			return EstimateResult{}, ctx.Err()
		}
		return res, nil
	}
	return s.jobs.outcome(j)
}

// Estimate runs (or replays from cache) one estimation. It blocks until
// the scheduled job finishes or ctx / the request timeout fires. It is a
// submit-and-wait wrapper over the same job path as SubmitEstimateJob, so
// sync and async results are bit-identical.
func (s *Service) Estimate(ctx context.Context, req EstimateRequest) (EstimateResult, error) {
	start := time.Now()
	j, err := s.submitJob(req, nil)
	if err != nil {
		return EstimateResult{}, err
	}
	res, err := s.waitJob(ctx, j)
	if err != nil {
		return EstimateResult{}, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// SubmitEstimateJob registers req as an async job and returns immediately
// with its listing entry; poll Job / WaitJob for completion and fetch the
// result with JobResult. An identical concurrent job (same graph
// fingerprint, query signature, and knobs) is coalesced onto one
// computation unless NoCache is set.
func (s *Service) SubmitEstimateJob(req EstimateRequest) (JobInfo, error) {
	j, err := s.submitJob(req, nil)
	if err != nil {
		return JobInfo{}, err
	}
	return s.jobs.snapshot(j), nil
}

// Job returns one job's current state by id.
func (s *Service) Job(id string) (JobInfo, bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		return JobInfo{}, false
	}
	return s.jobs.snapshot(j), true
}

// Jobs lists every retained job, newest first.
func (s *Service) Jobs() []JobInfo { return s.jobs.list() }

// WaitJob blocks until the job reaches a terminal state, wait elapses
// (wait ≤ 0 means no blocking), or ctx fires, and returns the job's state
// at that moment. The second return is false for unknown ids.
func (s *Service) WaitJob(ctx context.Context, id string, wait time.Duration) (JobInfo, bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		return JobInfo{}, false
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return s.jobs.snapshot(j), true
}

// CancelJob cancels a queued or running job. Canceling a job that
// already reached a terminal state leaves it untouched (the returned info
// shows the unchanged state); canceling the last job attached to a
// computation stops the computation mid-trial. The second return is false
// for unknown ids.
func (s *Service) CancelJob(id string) (JobInfo, bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		return JobInfo{}, false
	}
	s.jobs.detach(j, context.Canceled)
	return s.jobs.snapshot(j), true
}

// JobResult returns a finished job's estimate. It fails with
// ErrUnknownJob for unknown (or expired) ids, ErrJobNotDone while the job
// is queued or running, and the job's own error for failed or canceled
// jobs.
func (s *Service) JobResult(id string) (EstimateResult, error) {
	j, ok := s.jobs.get(id)
	if !ok {
		return EstimateResult{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return s.jobs.outcome(j)
}

// BatchRequest fans one graph and many queries out across the worker
// pool. Per-query fields left zero inherit the batch-level defaults —
// which means a zero per-query value (seed 0, priority 0) cannot
// override a non-zero batch default; leave the batch field unset, or
// send that query as a standalone estimate, to run at the zero value.
type BatchRequest struct {
	Graph     string            `json:"graph"`
	Algorithm string            `json:"algorithm,omitempty"`
	Backend   string            `json:"backend,omitempty"`
	Trials    int               `json:"trials,omitempty"`
	Seed      int64             `json:"seed,omitempty"`
	Ranks     int               `json:"ranks,omitempty"`
	Priority  int               `json:"priority,omitempty"`
	TimeoutMS int64             `json:"timeoutMs,omitempty"`
	NoCache   bool              `json:"noCache,omitempty"`
	Precision *PrecisionSpec    `json:"precision,omitempty"`
	Queries   []EstimateRequest `json:"queries"`
}

// BatchItem is one query's outcome within a batch.
type BatchItem struct {
	Query  string
	Result EstimateResult
	Err    error
}

// label names a batch item for error attribution even when the request
// failed before a query graph existed: catalog name, else the explicit
// queryName, else the item's position.
func label(req EstimateRequest, i int) string {
	switch {
	case req.Query != "":
		return req.Query
	case req.QueryName != "":
		return req.QueryName
	default:
		return fmt.Sprintf("#%d", i)
	}
}

// relabel stamps the requester's own display names onto a cache-hit
// estimate: the cache key deliberately ignores names (same topology, same
// knobs → one entry), so without this a hit would replay whatever names
// the first requester used.
func relabel(est *coloring.Estimate, queryName, graphName string) {
	est.Query = queryName
	est.Graph = graphName
}

// colorGroup lazily draws one set of colorings shared by every batch job
// with the same (k, trials, seed): the colorings subgraph.Estimate would
// draw depend only on those values (and the graph's vertex count), so jobs
// whose seeds align reuse one draw instead of redrawing per query. uses
// counts actual fetches, so sharing is metered on jobs that really ran —
// not on items that were replayed from cache or coalesced away.
type colorGroup struct {
	once sync.Once
	cs   [][]uint8
	uses atomic.Int64
}

func (cg *colorGroup) colorings(n, k, trials int, seed int64) [][]uint8 {
	cg.once.Do(func() { cg.cs = coloring.Draw(n, k, trials, seed) })
	return cg.cs
}

// EstimateBatch resolves the batch's graph once and submits every query
// as its own job, so a batch of N queries occupies up to N workers
// concurrently; queries whose (k, trials, seed) align share one pre-drawn
// set of colorings, and identical queries coalesce onto one flight.
// Results keep the request order; per-item errors do not fail the batch
// (a batch-level error means nothing ran).
func (s *Service) EstimateBatch(ctx context.Context, breq BatchRequest) ([]BatchItem, error) {
	if len(breq.Queries) == 0 {
		return nil, fmt.Errorf("service: batch has no queries")
	}
	// Hold a lease across submission so the graph cannot be evicted
	// between items; each flight takes its own lease on top.
	h, ok := s.reg.Acquire(breq.Graph)
	if !ok {
		return nil, fmt.Errorf("%w %q (register it first)", ErrUnknownGraph, breq.Graph)
	}
	defer h.Release()
	n := h.Graph().N()
	s.batches.Add(1)

	items := make([]BatchItem, len(breq.Queries))
	type pendingJob struct {
		i     int
		j     *job
		start time.Time
	}
	var pending []pendingJob
	type batchGroupKey struct {
		k, trials int
		seed      int64
	}
	groups := make(map[batchGroupKey]*colorGroup)
	for i, qreq := range breq.Queries {
		start := time.Now()
		if qreq.Graph != "" && qreq.Graph != breq.Graph {
			// Honoring a per-query graph would need its own registry
			// lookup; silently computing against the batch graph instead
			// would be a wrong answer without an error.
			items[i] = BatchItem{Query: label(qreq, i),
				Err: fmt.Errorf("service: batch query %d names graph %q; batches run against one graph (%q)", i, qreq.Graph, breq.Graph)}
			continue
		}
		qreq.Graph = breq.Graph
		if qreq.Algorithm == "" {
			qreq.Algorithm = breq.Algorithm
		}
		if qreq.Backend == "" {
			qreq.Backend = breq.Backend
		}
		if qreq.Trials <= 0 {
			qreq.Trials = breq.Trials
		}
		if qreq.Seed == 0 {
			qreq.Seed = breq.Seed
		}
		if qreq.Ranks <= 0 {
			qreq.Ranks = breq.Ranks
		}
		if qreq.Priority == 0 {
			qreq.Priority = breq.Priority
		}
		if qreq.TimeoutMS <= 0 {
			qreq.TimeoutMS = breq.TimeoutMS
		}
		if qreq.Precision == nil {
			qreq.Precision = breq.Precision
		}
		qreq.NoCache = qreq.NoCache || breq.NoCache
		// Resolve the query here (submitJob will again, cheaply) to name
		// the item and to group colorings by (k, trials, seed) before
		// submission.
		nreq, err := s.normalize(qreq)
		if err != nil {
			items[i] = BatchItem{Query: label(qreq, i), Err: err}
			continue
		}
		q, err := buildQuery(nreq)
		if err != nil {
			items[i] = BatchItem{Query: label(qreq, i), Err: err}
			continue
		}
		items[i].Query = q.Name
		// Precision-targeted queries skip coloring sharing: their trial
		// bound is the adaptive worst case, and predrawing MaxTrials
		// colorings up front would cost more than the redraw it saves —
		// the session draws lazily from its stream instead.
		var colorings func() [][]uint8
		if nreq.Precision == nil {
			gk := batchGroupKey{k: q.K, trials: nreq.Trials, seed: nreq.Seed}
			grp, seen := groups[gk]
			if !seen {
				grp = &colorGroup{}
				groups[gk] = grp
			}
			k, trials, seed := q.K, nreq.Trials, nreq.Seed
			colorings = func() [][]uint8 {
				if grp.uses.Add(1) > 1 {
					s.coloringsShared.Add(1)
				}
				return grp.colorings(n, k, trials, seed)
			}
		}
		j, err := s.submitJob(qreq, colorings)
		if err != nil {
			items[i] = BatchItem{Query: q.Name, Err: err}
			continue
		}
		pending = append(pending, pendingJob{i: i, j: j, start: start})
	}
	for _, p := range pending {
		res, err := s.waitJob(ctx, p.j)
		if err != nil {
			items[p.i].Err = err
			continue
		}
		res.Elapsed = time.Since(p.start)
		items[p.i].Result = res
	}
	return items, nil
}

// ShardsStats is the per-shard breakdown of the registry and cache: one
// entry per stripe, in shard order. Aggregate counters live in the
// Registry/Cache rollups; this section exists to make skew and contention
// visible — a hot shard shows up as an outlier row, and nonzero lock-wait
// on many shards says the shard count is too low. Count is the registry's
// stripe count (the resolved Options.Shards); the cache may run fewer
// stripes when its capacity is smaller than the shard count (len(Cache)
// and the cache rollup's own shards field are authoritative for it).
type ShardsStats struct {
	Count    int                  `json:"count"`
	Registry []RegistryShardStats `json:"registry"`
	Cache    []CacheShardStats    `json:"cache"`
}

// PrecisionStats describe the adaptive stopping decisions: how many
// precision-targeted requests the service resolved, how many stopped
// below their MaxTrials bound, and how many trials those early stops
// skipped — the compute the declarative API saved over fixed worst-case
// trial counts. Trials reused from the cache are counted separately, as
// cache.extended.
type PrecisionStats struct {
	Requests    uint64 `json:"requests"`
	EarlyStops  uint64 `json:"earlyStops"`
	TrialsSaved uint64 `json:"trialsSaved"`
}

// Stats is the service-wide observability snapshot.
type Stats struct {
	UptimeSeconds   float64        `json:"uptimeSeconds"`
	Estimates       uint64         `json:"estimates"`
	Batches         uint64         `json:"batches"`
	ColoringsShared uint64         `json:"coloringsShared"`
	Precision       PrecisionStats `json:"precision"`
	Registry        RegistryStats  `json:"registry"`
	Cache           CacheStats     `json:"cache"`
	Scheduler       SchedulerStats `json:"scheduler"`
	Jobs            JobsStats      `json:"jobs"`
	Engine          EngineStats    `json:"engine"`
	Shards          ShardsStats    `json:"shards"`
	// Durable is the persistence layer's counters; nil (omitted) when the
	// service runs in-memory.
	Durable *DurableStats `json:"durable,omitempty"`
	// Cluster is the multi-replica serving tier's section (membership,
	// peer health, forwarding and handoff counters); nil (omitted) in
	// single-replica mode.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// HTTP is per-endpoint request latency (count, mean, p50/p95/p99),
	// summarized from the same histograms /metrics exposes in full.
	HTTP map[string]LatencySummary `json:"http,omitempty"`
	// TrialLatency is per-backend solve time of individual trials.
	TrialLatency map[string]LatencySummary `json:"trialLatency,omitempty"`
}

// Stats returns the current counters of every layer.
func (s *Service) Stats() Stats {
	var dur *DurableStats
	if s.durable != nil {
		d := s.durable.Stats()
		dur = &d
	}
	return Stats{
		Durable:         dur,
		Cluster:         s.clusterStats(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Estimates:       s.estimates.Load(),
		Batches:         s.batches.Load(),
		ColoringsShared: s.coloringsShared.Load(),
		Precision: PrecisionStats{
			Requests:    s.precisionReqs.Load(),
			EarlyStops:  s.earlyStops.Load(),
			TrialsSaved: s.trialsSaved.Load(),
		},
		Registry:  s.reg.Stats(),
		Cache:     s.cache.Stats(),
		Scheduler: s.sched.Stats(),
		Jobs:      s.jobs.stats(),
		Engine: EngineStats{
			Backend:  s.opts.Backend,
			Workers:  s.opts.DefaultRanks,
			Backends: s.engine.snapshot(),
			Dist:     s.distStats(),
		},
		Shards: ShardsStats{
			Count:    len(s.reg.shards),
			Registry: s.reg.ShardStats(),
			Cache:    s.cache.ShardStats(),
		},
		HTTP:         s.metrics.httpSummary(),
		TrialLatency: s.metrics.trialSummary(),
	}
}

// distStats snapshots the dist cluster's per-node counters when the
// process has one wired in.
func (s *Service) distStats() []DistNodeStats {
	if s.opts.DistStats == nil {
		return nil
	}
	return s.opts.DistStats()
}
