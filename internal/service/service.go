package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/query"
)

// ErrUnknownGraph is returned when a request references a graph id or
// name the registry does not hold (never registered, or evicted).
var ErrUnknownGraph = errors.New("service: unknown graph")

// Options configures a Service.
type Options struct {
	// Workers is the number of scheduler worker goroutines (≤ 0 means
	// runtime.NumCPU()). Each runs one estimation job at a time.
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// rejected with ErrQueueFull (≤ 0 means 1024).
	QueueDepth int
	// CacheCapacity bounds the result cache in entries (≤ 0 means 4096).
	CacheCapacity int
	// GraphBudgetBytes bounds the registry's resident graph memory
	// (≤ 0 means 1 GiB).
	GraphBudgetBytes int64
	// DefaultTrials is used when a request leaves Trials ≤ 0 (≤ 0 means 3,
	// matching subgraph.Estimate).
	DefaultTrials int
	// DefaultRanks is the simulated engine rank count when a request leaves
	// Ranks ≤ 0 (≤ 0 means 4, matching the core default).
	DefaultRanks int
	// MaxTrials bounds the per-request trial count; requests beyond it are
	// rejected rather than allowed to allocate trials×n bytes of colorings
	// (≤ 0 means 1024).
	MaxTrials int
	// MaxRanks bounds the per-request simulated rank count; the engine
	// allocates per-rank state, so this must not be request-controlled
	// without limit (≤ 0 means 256).
	MaxRanks int
	// DefaultTimeout bounds each job when the request sets no TimeoutMS;
	// zero means no deadline.
	DefaultTimeout time.Duration
	// GraphDir, when non-empty, allows GraphSpec.Path loading for specs
	// submitted through AddGraph, resolved relative to (and confined to)
	// this directory and bounded by GraphBudgetBytes. When empty — the
	// default — path specs are rejected: requests must not be able to
	// probe the server's filesystem or load unbounded files.
	GraphDir string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 4096
	}
	if o.GraphBudgetBytes <= 0 {
		o.GraphBudgetBytes = 1 << 30
	}
	if o.DefaultTrials <= 0 {
		o.DefaultTrials = 3
	}
	if o.DefaultRanks <= 0 {
		o.DefaultRanks = 4
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 1024
	}
	if o.MaxRanks <= 0 {
		o.MaxRanks = 256
	}
	return o
}

// Service is the long-running estimation service: a graph registry, a
// result cache, and a scheduled worker pool over the color-coding
// estimator. All methods are safe for concurrent use.
type Service struct {
	opts  Options
	reg   *Registry
	cache *Cache
	sched *Scheduler
	start time.Time

	estimates       atomic.Uint64 // estimations actually computed
	batches         atomic.Uint64
	coloringsShared atomic.Uint64 // batch jobs that reused another job's colorings
}

// New starts a service. Close releases its workers.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	return &Service{
		opts:  opts,
		reg:   NewRegistry(opts.GraphBudgetBytes),
		cache: NewCache(opts.CacheCapacity),
		sched: NewScheduler(opts.Workers, opts.QueueDepth),
		start: time.Now(),
	}
}

// Close stops the worker pool after draining queued jobs.
func (s *Service) Close() { s.sched.Close() }

// Registry exposes the graph registry (for registration and listings).
func (s *Service) Registry() *Registry { return s.reg }

// Cache exposes the result cache (for stats and tests).
func (s *Service) Cache() *Cache { return s.cache }

// AddGraph registers the graph described by spec and returns its listing
// entry. The handle is released immediately: registration pins nothing,
// it only loads (or re-resolves) the graph. Specs arrive from untrusted
// requests, so Path is resolved inside Options.GraphDir (or rejected when
// none is configured) and the file must fit the registry budget — unlike
// Registry.Add, which trusts its caller.
func (s *Service) AddGraph(spec GraphSpec) (GraphInfo, error) {
	if spec.Path != "" {
		p, err := s.resolveGraphPath(spec.Path)
		if err != nil {
			return GraphInfo{}, err
		}
		spec.Path = p
	}
	h, err := s.reg.Add(spec)
	if err != nil {
		return GraphInfo{}, err
	}
	defer h.Release()
	info, _ := s.reg.Info(h.ID())
	return info, nil
}

// resolveGraphPath confines a request-supplied path to Options.GraphDir
// and bounds the file size: parse errors echo file content, so without
// the sandbox a request could read the first line of any server file, and
// the registry budget only applies after a graph is resident.
func (s *Service) resolveGraphPath(p string) (string, error) {
	if s.opts.GraphDir == "" {
		return "", fmt.Errorf("service: path-based graph loading is disabled (no graph dir configured)")
	}
	if filepath.IsAbs(p) {
		return "", fmt.Errorf("service: graph path must be relative to the graph dir")
	}
	clean := filepath.Clean(p)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("service: graph path escapes the graph dir")
	}
	// Resolve symlinks on both sides: a link inside the graph dir pointing
	// elsewhere must not defeat the lexical confinement above.
	root, err := filepath.EvalSymlinks(s.opts.GraphDir)
	if err != nil {
		return "", fmt.Errorf("service: graph dir: %w", err)
	}
	full, err := filepath.EvalSymlinks(filepath.Join(s.opts.GraphDir, clean))
	if err != nil {
		return "", fmt.Errorf("service: graph path: %w", err)
	}
	if full != root && !strings.HasPrefix(full, root+string(filepath.Separator)) {
		return "", fmt.Errorf("service: graph path escapes the graph dir")
	}
	fi, err := os.Stat(full)
	if err != nil {
		return "", fmt.Errorf("service: graph path: %w", err)
	}
	if fi.IsDir() {
		return "", fmt.Errorf("service: graph path %q is a directory", clean)
	}
	if fi.Size() > s.opts.GraphBudgetBytes {
		return "", fmt.Errorf("service: graph file %q (%d bytes) exceeds the registry budget (%d)", clean, fi.Size(), s.opts.GraphBudgetBytes)
	}
	return full, nil
}

// EstimateRequest is one estimation job.
type EstimateRequest struct {
	// Graph is the registry id or name of an already-registered graph.
	Graph string `json:"graph,omitempty"`
	// Query names a catalog or parametric query (see subgraph.QueryByName);
	// alternatively QueryEdges gives an explicit edge list over nodes
	// 0..k-1, with QueryName as optional display name.
	Query      string   `json:"query,omitempty"`
	QueryEdges [][2]int `json:"queryEdges,omitempty"`
	QueryName  string   `json:"queryName,omitempty"`

	// Algorithm is "DB" (default), "PS", or "PSEven".
	Algorithm string `json:"algorithm,omitempty"`
	// Trials is the number of independent colorings (≤ 0 means the service
	// default, itself defaulting to 3).
	Trials int `json:"trials,omitempty"`
	// Seed feeds the coloring RNG; equal seeds give bit-identical results.
	Seed int64 `json:"seed,omitempty"`
	// Ranks is the simulated engine rank count (≤ 0 means the service
	// default, itself defaulting to 4).
	Ranks int `json:"ranks,omitempty"`
	// Parallel runs up to this many trials concurrently inside the job;
	// results are bit-identical to serial (≤ 1 means serial).
	Parallel int `json:"parallel,omitempty"`
	// Priority orders queued jobs; higher runs first.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the job, queue time included; 0 means the service
	// default.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// NoCache skips the result cache lookup (the result is still stored).
	NoCache bool `json:"noCache,omitempty"`
}

// EstimateResult is one finished estimation.
type EstimateResult struct {
	Estimate coloring.Estimate
	Cached   bool
	Elapsed  time.Duration
}

// ParseAlgorithm maps the wire name to a core.Algorithm ("" means DB).
func ParseAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case "", "DB", "db":
		return core.DB, nil
	case "PS", "ps":
		return core.PS, nil
	case "PSEven", "pseven":
		return core.PSEven, nil
	}
	return core.DB, fmt.Errorf("service: unknown algorithm %q (want DB, PS, or PSEven)", name)
}

// maxQueryK mirrors the solver's own query size limit (decomp and core
// reject K > 16). Enforcing it here means oversized queries are rejected
// at request time, before a worker slot is taken and trials×n bytes of
// colorings are drawn for a job that can only fail.
const maxQueryK = 16

// buildQuery resolves the request's query: a catalog/parametric name, or
// an explicit edge list. Both are untrusted: edge lists go through the
// checked constructor with the solver's node bound (so a hostile request
// cannot force a huge k×k adjacency allocation), and resolved queries of
// any provenance are size-checked here rather than deep inside a job.
func buildQuery(req EstimateRequest) (*query.Graph, error) {
	var (
		q   *query.Graph
		err error
	)
	if len(req.QueryEdges) == 0 {
		if req.Query == "" {
			return nil, fmt.Errorf("service: request needs query or queryEdges")
		}
		q, err = query.ByName(req.Query)
	} else {
		name := req.QueryName
		if name == "" {
			name = "custom"
		}
		q, err = query.FromEdgesChecked(name, req.QueryEdges, maxQueryK-1)
	}
	if err != nil {
		return nil, err
	}
	if q.K > maxQueryK {
		return nil, fmt.Errorf("service: query %s has %d nodes; the solver supports at most %d", q.Name, q.K, maxQueryK)
	}
	return q, nil
}

func (s *Service) normalize(req EstimateRequest) (EstimateRequest, error) {
	if req.Trials <= 0 {
		req.Trials = s.opts.DefaultTrials
	}
	if req.Trials > s.opts.MaxTrials {
		return req, fmt.Errorf("service: trials %d exceeds server limit %d", req.Trials, s.opts.MaxTrials)
	}
	if req.Ranks <= 0 {
		req.Ranks = s.opts.DefaultRanks
	}
	if req.Ranks > s.opts.MaxRanks {
		return req, fmt.Errorf("service: ranks %d exceeds server limit %d", req.Ranks, s.opts.MaxRanks)
	}
	// Parallel multiplies per-job memory (one simulated cluster per
	// concurrent trial) without changing results, so clamp rather than
	// reject: the request stays valid, the blast radius stays bounded.
	if req.Parallel > maxParallelPerJob {
		req.Parallel = maxParallelPerJob
	}
	return req, nil
}

// maxParallelPerJob caps intra-job trial concurrency; cross-job
// concurrency is already bounded by the worker pool.
const maxParallelPerJob = 16

func (s *Service) jobContext(ctx context.Context, req EstimateRequest) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// key builds the cache key for a normalized request.
func (s *Service) key(fp uint64, q *query.Graph, alg core.Algorithm, req EstimateRequest) Key {
	return Key{
		Graph:     fp,
		Query:     QuerySignature(q),
		Algorithm: alg,
		Trials:    req.Trials,
		Seed:      req.Seed,
		Ranks:     req.Ranks,
	}
}

// run executes one estimation with the given (possibly shared) colorings
// and stores the result in the cache. It is the only place estimates are
// computed, so cached and fresh results are bit-identical by construction:
// the path below — Draw + RunWith — is exactly coloring.Run, which is
// exactly subgraph.Estimate.
func (s *Service) run(h *Handle, q *query.Graph, alg core.Algorithm, req EstimateRequest, key Key, colorings [][]uint8) (coloring.Estimate, error) {
	if colorings == nil {
		colorings = coloring.Draw(h.Graph().N(), q.K, req.Trials, req.Seed)
	}
	est, err := coloring.RunWith(h.Graph(), q, colorings, coloring.Options{
		Parallel: req.Parallel,
		Core: core.Options{
			Algorithm: alg,
			Workers:   req.Ranks,
		},
	})
	if err != nil {
		return coloring.Estimate{}, err
	}
	s.estimates.Add(1)
	s.cache.Put(key, est)
	return est, nil
}

// Estimate runs (or replays from cache) one estimation. It blocks until
// the scheduled job finishes or ctx / the request timeout fires.
func (s *Service) Estimate(ctx context.Context, req EstimateRequest) (EstimateResult, error) {
	start := time.Now()
	req, err := s.normalize(req)
	if err != nil {
		return EstimateResult{}, err
	}
	alg, err := ParseAlgorithm(req.Algorithm)
	if err != nil {
		return EstimateResult{}, err
	}
	q, err := buildQuery(req)
	if err != nil {
		return EstimateResult{}, err
	}
	h, ok := s.reg.Acquire(req.Graph)
	if !ok {
		return EstimateResult{}, fmt.Errorf("%w %q (register it first)", ErrUnknownGraph, req.Graph)
	}
	defer h.Release()

	key := s.key(h.Fingerprint(), q, alg, req)
	if !req.NoCache {
		if est, ok := s.cache.Get(key); ok {
			relabel(&est, q.Name, h.Graph().Name)
			return EstimateResult{Estimate: est, Cached: true, Elapsed: time.Since(start)}, nil
		}
	}

	jctx, cancel := s.jobContext(ctx, req)
	defer cancel()
	// The job holds its own lease: if our wait is cut short by ctx, the
	// job may still be queued or running, and its graph must not be
	// evicted out from under it.
	jh := s.reg.dup(h)
	var est coloring.Estimate
	job, err := s.sched.SubmitJob(jctx, req.Priority, func(context.Context) error {
		var err error
		est, err = s.run(jh, q, alg, req, key, nil)
		return err
	}, jh.Release)
	if err != nil {
		jh.Release()
		return EstimateResult{}, err
	}
	if err := job.Wait(); err != nil {
		return EstimateResult{}, err
	}
	return EstimateResult{Estimate: est, Elapsed: time.Since(start)}, nil
}

// BatchRequest fans one graph and many queries out across the worker
// pool. Per-query fields left zero inherit the batch-level defaults —
// which means a zero per-query value (seed 0, priority 0) cannot
// override a non-zero batch default; leave the batch field unset, or
// send that query as a standalone estimate, to run at the zero value.
type BatchRequest struct {
	Graph     string            `json:"graph"`
	Algorithm string            `json:"algorithm,omitempty"`
	Trials    int               `json:"trials,omitempty"`
	Seed      int64             `json:"seed,omitempty"`
	Ranks     int               `json:"ranks,omitempty"`
	Priority  int               `json:"priority,omitempty"`
	TimeoutMS int64             `json:"timeoutMs,omitempty"`
	NoCache   bool              `json:"noCache,omitempty"`
	Queries   []EstimateRequest `json:"queries"`
}

// BatchItem is one query's outcome within a batch.
type BatchItem struct {
	Query  string
	Result EstimateResult
	Err    error
}

// label names a batch item for error attribution even when the request
// failed before a query graph existed: catalog name, else the explicit
// queryName, else the item's position.
func label(req EstimateRequest, i int) string {
	switch {
	case req.Query != "":
		return req.Query
	case req.QueryName != "":
		return req.QueryName
	default:
		return fmt.Sprintf("#%d", i)
	}
}

// relabel stamps the requester's own display names onto a cache-hit
// estimate: the cache key deliberately ignores names (same topology, same
// knobs → one entry), so without this a hit would replay whatever names
// the first requester used.
func relabel(est *coloring.Estimate, queryName, graphName string) {
	est.Query = queryName
	est.Graph = graphName
}

// colorGroup lazily draws one set of colorings shared by every batch job
// with the same (k, trials, seed): the colorings subgraph.Estimate would
// draw depend only on those values (and the graph's vertex count), so jobs
// whose seeds align reuse one draw instead of redrawing per query.
type colorGroup struct {
	once sync.Once
	cs   [][]uint8
}

func (cg *colorGroup) colorings(n, k, trials int, seed int64) [][]uint8 {
	cg.once.Do(func() { cg.cs = coloring.Draw(n, k, trials, seed) })
	return cg.cs
}

// EstimateBatch resolves the batch's graph once and schedules every
// non-cached query as its own job, so a batch of N queries occupies up to
// N workers concurrently. Results keep the request order; per-item errors
// do not fail the batch (a batch-level error means nothing ran).
func (s *Service) EstimateBatch(ctx context.Context, breq BatchRequest) ([]BatchItem, error) {
	if len(breq.Queries) == 0 {
		return nil, fmt.Errorf("service: batch has no queries")
	}
	h, ok := s.reg.Acquire(breq.Graph)
	if !ok {
		return nil, fmt.Errorf("%w %q (register it first)", ErrUnknownGraph, breq.Graph)
	}
	defer h.Release()
	s.batches.Add(1)

	items := make([]BatchItem, len(breq.Queries))
	type pendingJob struct {
		i     int
		job   *Job
		est   *coloring.Estimate
		start time.Time
	}
	var pending []pendingJob
	type groupKey struct {
		k, trials int
		seed      int64
	}
	groups := make(map[groupKey]*colorGroup)
	for i, qreq := range breq.Queries {
		start := time.Now()
		if qreq.Graph != "" && qreq.Graph != breq.Graph {
			// Honoring a per-query graph would need its own registry
			// lookup; silently computing against the batch graph instead
			// would be a wrong answer without an error.
			items[i] = BatchItem{Query: label(qreq, i),
				Err: fmt.Errorf("service: batch query %d names graph %q; batches run against one graph (%q)", i, qreq.Graph, breq.Graph)}
			continue
		}
		qreq.Graph = breq.Graph
		if qreq.Algorithm == "" {
			qreq.Algorithm = breq.Algorithm
		}
		if qreq.Trials <= 0 {
			qreq.Trials = breq.Trials
		}
		if qreq.Seed == 0 {
			qreq.Seed = breq.Seed
		}
		if qreq.Ranks <= 0 {
			qreq.Ranks = breq.Ranks
		}
		if qreq.Priority == 0 {
			qreq.Priority = breq.Priority
		}
		if qreq.TimeoutMS <= 0 {
			qreq.TimeoutMS = breq.TimeoutMS
		}
		qreq.NoCache = qreq.NoCache || breq.NoCache
		qreq, err := s.normalize(qreq)
		if err != nil {
			items[i] = BatchItem{Query: label(qreq, i), Err: err}
			continue
		}
		alg, err := ParseAlgorithm(qreq.Algorithm)
		if err != nil {
			items[i] = BatchItem{Query: label(qreq, i), Err: err}
			continue
		}
		q, err := buildQuery(qreq)
		if err != nil {
			items[i] = BatchItem{Query: label(qreq, i), Err: err}
			continue
		}
		items[i].Query = q.Name
		key := s.key(h.Fingerprint(), q, alg, qreq)
		if !qreq.NoCache {
			if est, ok := s.cache.Get(key); ok {
				relabel(&est, q.Name, h.Graph().Name)
				items[i].Result = EstimateResult{Estimate: est, Cached: true, Elapsed: time.Since(start)}
				continue
			}
		}
		grp, seen := groups[groupKey{k: q.K, trials: qreq.Trials, seed: qreq.Seed}]
		if !seen {
			grp = &colorGroup{}
			groups[groupKey{k: q.K, trials: qreq.Trials, seed: qreq.Seed}] = grp
		} else {
			s.coloringsShared.Add(1)
		}

		jctx, cancel := s.jobContext(ctx, qreq)
		defer cancel()
		jh := s.reg.dup(h)
		est := new(coloring.Estimate)
		job, err := s.sched.SubmitJob(jctx, qreq.Priority, func(context.Context) error {
			cs := grp.colorings(jh.Graph().N(), q.K, qreq.Trials, qreq.Seed)
			e, err := s.run(jh, q, alg, qreq, key, cs)
			if err != nil {
				return err
			}
			*est = e
			return nil
		}, jh.Release)
		if err != nil {
			jh.Release()
			items[i] = BatchItem{Query: q.Name, Err: err}
			continue
		}
		pending = append(pending, pendingJob{i: i, job: job, est: est, start: start})
	}
	for _, p := range pending {
		if err := p.job.Wait(); err != nil {
			items[p.i].Err = err
			continue
		}
		items[p.i].Result = EstimateResult{Estimate: *p.est, Elapsed: time.Since(p.start)}
	}
	return items, nil
}

// Stats is the service-wide observability snapshot.
type Stats struct {
	UptimeSeconds   float64        `json:"uptimeSeconds"`
	Estimates       uint64         `json:"estimates"`
	Batches         uint64         `json:"batches"`
	ColoringsShared uint64         `json:"coloringsShared"`
	Registry        RegistryStats  `json:"registry"`
	Cache           CacheStats     `json:"cache"`
	Scheduler       SchedulerStats `json:"scheduler"`
}

// Stats returns the current counters of every layer.
func (s *Service) Stats() Stats {
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Estimates:       s.estimates.Load(),
		Batches:         s.batches.Load(),
		ColoringsShared: s.coloringsShared.Load(),
		Registry:        s.reg.Stats(),
		Cache:           s.cache.Stats(),
		Scheduler:       s.sched.Stats(),
	}
}
