package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sseInterval is the polling cadence of the events stream: progress is
// sampled from the job's flight counters at this rate and pushed only
// when it changed, so an idle or queued job costs no bytes between
// heartbeats. A var so tests can tighten it.
var sseInterval = 100 * time.Millisecond

// sseHeartbeatEvery bounds the silence on an open stream: a comment line
// keeps intermediaries from timing the connection out while a job sits
// queued behind a deep backlog.
const sseHeartbeatEvery = 15 * time.Second

// handleJobEvents streams one job's lifecycle as server-sent events,
// replacing the poll loop: a "progress" event (JobProgress JSON — trial
// counts, running mean, running CV) whenever the per-trial progress
// advances, then exactly one terminal event named after the final state
// ("done", "failed", "canceled") carrying the full JobInfo, after which
// the stream closes. A client that disconnects mid-stream just ends the
// handler — the job itself keeps running (cancellation stays an explicit
// DELETE), so a dropped subscriber never dooms another client's
// computation.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, fmt.Errorf("%w %q", ErrUnknownJob, id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "service: streaming unsupported by this connection"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		// Time the write+flush pair: this is the per-event cost of the SSE
		// fan-out, recorded straight into subgraph_sse_flush_seconds (not
		// onto the job's trace — the stream can outlive the job, and its
		// cost must not count against the job's wall time).
		begin := time.Now()
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false // client gone; the deferred cleanup is the whole fallback
		}
		flusher.Flush()
		s.metrics.sseFlush.Observe(time.Since(begin).Seconds())
		return true
	}
	final := func() {
		info := s.jobs.snapshot(j)
		emit("progress", info.Progress)
		emit(string(info.State), info)
	}

	// Initial snapshot so subscribers see the current position immediately
	// (and a subscriber to an already-finished job gets its terminal event
	// without waiting a tick).
	info := s.jobs.snapshot(j)
	if !emit("progress", info.Progress) {
		return
	}
	if info.State.Terminal() {
		emit(string(info.State), info)
		return
	}
	last := info.Progress

	tick := time.NewTicker(sseInterval)
	defer tick.Stop()
	heartbeat := time.NewTicker(sseHeartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			// Client disconnected: stop streaming, touch nothing else.
			return
		case <-j.done:
			final()
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-tick.C:
			info := s.jobs.snapshot(j)
			if info.State.Terminal() {
				final()
				return
			}
			if info.Progress != last {
				last = info.Progress
				if !emit("progress", info.Progress) {
					return
				}
			}
		}
	}
}
