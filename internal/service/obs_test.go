package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	subgraph "repro"
)

// fetchMetrics GETs /metrics and returns the raw exposition text.
func fetchMetrics(t *testing.T, tsURL string) string {
	t.Helper()
	resp, err := http.Get(tsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// lintExposition walks the Prometheus text format line by line: comments
// are well-formed HELP/TYPE lines, every sample line parses as
// name{labels} value, and every sample's family was announced by a TYPE
// line first. It returns the set of family names seen.
func lintExposition(t *testing.T, text string) map[string]bool {
	t.Helper()
	families := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("bad comment line: %q", line)
				continue
			}
			if fields[1] == "TYPE" {
				families[fields[2]] = true
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			end := strings.IndexByte(line, '}')
			if end < i {
				t.Errorf("unterminated label block: %q", line)
				continue
			}
			rest = strings.TrimSpace(line[end+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
			rest = strings.TrimSpace(line[i+1:])
		}
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			t.Errorf("bad sample value in %q: %v", line, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && families[base] {
				family = base
				break
			}
		}
		if !families[family] {
			t.Errorf("sample %q has no preceding TYPE line", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

// TestMetricsExposition drives one computed estimate and one cache hit
// through the server, then checks /metrics is valid exposition text
// carrying the request/trial/phase latency histograms the acceptance
// criteria name, labeled by endpoint and backend.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newServer(t)
	// Backend pinned so the label assertions hold under any
	// $SUBGRAPH_BACKEND default.
	req := `{"graph":"bench","query":"cycle4","trials":2,"seed":3,"backend":"sim"}`
	post(t, ts, "/v1/estimate", req, http.StatusOK)
	post(t, ts, "/v1/estimate", req, http.StatusOK) // cache hit: same endpoint label

	text := fetchMetrics(t, ts.URL)
	families := lintExposition(t, text)

	for _, want := range []string{
		"subgraph_requests_total",
		"subgraph_request_seconds",
		"subgraph_trial_seconds",
		"subgraph_phase_seconds",
		"subgraph_queue_wait_seconds",
		"subgraph_estimates_total",
		"subgraph_cache_hits_total",
		"subgraph_lock_waits_total",
		"subgraph_engine_runs_total",
		"subgraph_uptime_seconds",
	} {
		if !families[want] {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	for _, want := range []string{
		`subgraph_requests_total{code="200",endpoint="/v1/estimate"} 2`,
		`subgraph_request_seconds_count{endpoint="/v1/estimate"} 2`,
		`subgraph_trial_seconds_count{backend="sim"} 2`,
		`phase="pathJoin"`,
		`phase="cycleJoin"`,
		`phase="cacheStore"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Scraping must not perturb the counters it reports beyond its own
	// request: the /metrics request itself lands in the middleware totals.
	text2 := fetchMetrics(t, ts.URL)
	if !strings.Contains(text2, `subgraph_requests_total{code="200",endpoint="/metrics"} 1`) {
		t.Error("the first /metrics scrape did not count itself")
	}
}

// TestJobTracePhases submits a job on each backend and checks its trace:
// one span per solver superstep with the expected phase names, queue wait
// and cache bookkeeping spans, aggregates consistent with the spans, and
// per-phase totals that sum to within the job's wall time (the job runs
// its trials serially, so spans never overlap).
func TestJobTracePhases(t *testing.T) {
	for _, backend := range []string{"sim", "parallel"} {
		t.Run(backend, func(t *testing.T) {
			ts, _ := newServer(t)
			req := fmt.Sprintf(`{"graph":"bench","query":"cycle4","trials":2,"seed":7,"backend":%q}`, backend)
			raw, _ := post(t, ts, "/v1/jobs", req, http.StatusAccepted)
			var job subgraph.JobInfo
			if err := json.Unmarshal(raw, &job); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for !job.State.Terminal() {
				if time.Now().After(deadline) {
					t.Fatalf("job stuck: %+v", job)
				}
				status, raw, _ := do(t, ts, "GET", "/v1/jobs/"+job.ID+"?wait=1s")
				if status != http.StatusOK {
					t.Fatalf("poll status %d: %s", status, raw)
				}
				if err := json.Unmarshal(raw, &job); err != nil {
					t.Fatal(err)
				}
			}
			if job.State != subgraph.JobDone {
				t.Fatalf("job finished %s", job.State)
			}

			var trace subgraph.TraceInfo
			get(t, ts, "/v1/jobs/"+job.ID+"/trace", &trace)
			if trace.ID != job.ID {
				t.Errorf("trace.ID = %q, want %q", trace.ID, job.ID)
			}
			if len(trace.Spans) == 0 {
				t.Fatal("trace has no spans")
			}

			// cycle4 decomposes into path walks joined at a split — both
			// solver phases must have recorded at least one superstep span —
			// and the service layer contributes the queue-wait and cache
			// bookkeeping spans.
			for _, phase := range []string{"pathJoin", "cycleJoin", "queueWait", "cacheStore"} {
				if trace.Phases[phase].Count == 0 {
					t.Errorf("phase %q absent from trace (phases: %v)", phase, trace.Phases)
				}
			}

			// The spans and the aggregates are two views of one recording.
			counts := map[string]uint64{}
			totals := map[string]float64{}
			for _, sp := range trace.Spans {
				if sp.DurMs < 0 || sp.StartMs < 0 {
					t.Errorf("negative span %+v", sp)
				}
				counts[sp.Name]++
				totals[sp.Name] += sp.DurMs
			}
			if trace.DroppedSpans == 0 {
				for name, ph := range trace.Phases {
					if ph.Count != counts[name] {
						t.Errorf("phase %s count %d != %d spans", name, ph.Count, counts[name])
					}
					if diff := ph.TotalMs - totals[name]; diff > 0.01 || diff < -0.01 {
						t.Errorf("phase %s total %.3fms != span sum %.3fms", name, ph.TotalMs, totals[name])
					}
				}
			}

			// Serial job: spans never overlap, so phase totals are disjoint
			// slices of the wall clock. Allow a millisecond of float slack.
			var sum float64
			for _, ph := range trace.Phases {
				sum += ph.TotalMs
			}
			if sum > trace.WallMs+1 {
				t.Errorf("phase totals %.3fms exceed wall %.3fms", sum, trace.WallMs)
			}

			if status, _, _ := do(t, ts, "GET", "/v1/jobs/nope/trace"); status != http.StatusNotFound {
				t.Errorf("unknown job trace status %d, want 404", status)
			}
		})
	}
}

// TestTraceSharedAcrossCoalescedJobs checks the singleflight contract:
// jobs attached to the same flight report the same computation's trace.
func TestTraceSharedAcrossCoalescedJobs(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1})
	t.Cleanup(svc.Close)

	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "bench"}); err != nil {
		t.Fatal(err)
	}
	// A decoy occupies the single worker so the two identical submissions
	// below coalesce while queued.
	decoy, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "bench", Query: "brain2", Trials: 3, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	req := subgraph.EstimateRequest{Graph: "bench", Query: "cycle5", Trials: 2, Seed: 42}
	a, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{decoy.ID, a.ID, b.ID} {
		info, ok := svc.WaitJob(nil, id, 30*time.Second)
		if !ok || !info.State.Terminal() {
			t.Fatalf("job %s: ok=%v state=%s", id, ok, info.State)
		}
	}
	ta, err := svc.JobTrace(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := svc.JobTrace(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Spans) == 0 {
		t.Fatal("coalesced jobs have no spans")
	}
	if len(ta.Spans) != len(tb.Spans) || ta.Phases["pathJoin"] != tb.Phases["pathJoin"] {
		t.Errorf("coalesced jobs disagree on the shared trace: %d vs %d spans", len(ta.Spans), len(tb.Spans))
	}
}

// TestStatsLatencySections checks /v1/stats grew the http and
// trialLatency quantile summaries, sourced from the same histograms
// /metrics exposes.
func TestStatsLatencySections(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"path3","trials":2,"seed":1,"backend":"sim"}`, http.StatusOK)

	var st struct {
		HTTP         map[string]subgraph.LatencySummary `json:"http"`
		TrialLatency map[string]subgraph.LatencySummary `json:"trialLatency"`
	}
	get(t, ts, "/v1/stats", &st)
	est, ok := st.HTTP["/v1/estimate"]
	if !ok || est.Count != 1 {
		t.Fatalf("http summary = %+v, want /v1/estimate count 1", st.HTTP)
	}
	if est.P50Ms <= 0 || est.P99Ms < est.P50Ms {
		t.Errorf("implausible quantiles: %+v", est)
	}
	tl, ok := st.TrialLatency["sim"]
	if !ok || tl.Count != 2 {
		t.Fatalf("trialLatency = %+v, want sim count 2", st.TrialLatency)
	}
}

// TestEstimateBitIdenticalWithTracing pins the load-bearing invariant:
// recording a trace must not perturb the estimate. The served numbers
// (tracing always on) equal the direct library call (no service, no
// tracing) at equal seed and trials.
func TestEstimateBitIdenticalWithTracing(t *testing.T) {
	ts, g := newServer(t)
	raw, _ := post(t, ts, "/v1/estimate",
		`{"graph":"bench","query":"cycle5","trials":3,"seed":17}`, http.StatusOK)
	var served subgraph.Estimation
	if err := json.Unmarshal(raw, &served); err != nil {
		t.Fatal(err)
	}
	q, err := subgraph.QueryByName("cycle5")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 3, Seed: 17, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEstimate(served, direct) {
		t.Errorf("tracing perturbed the estimate:\nserved: %+v\ndirect: %+v", served, direct)
	}
}

// TestRequestIDHeader checks every response carries the X-Request-ID the
// access log lines key on.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := newServer(t)
	status, _, header := do(t, ts, "GET", "/healthz")
	if status != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
}
