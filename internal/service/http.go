package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	GET    /healthz             liveness probe
//	GET    /readyz              readiness probe: 503 (with Retry-After) while a
//	                            handoff replay is importing runs; boot replay
//	                            happens before the listener binds, so a cold
//	                            replica reads as connection-refused instead
//	GET    /metrics             Prometheus text-format exposition: request/trial/
//	                            phase latency histograms recorded live, plus every
//	                            /v1/stats counter bridged at scrape time
//	GET    /v1/stats            counters of every layer (registry, cache, scheduler, jobs),
//	                            plus a per-shard breakdown with lock-wait counters
//	                            under "shards", per-execution-backend engine
//	                            counters under "engine", and per-endpoint /
//	                            per-backend latency quantiles under "http" and
//	                            "trialLatency"
//	POST   /v1/graphs           register a graph (GraphSpec JSON) → GraphInfo
//	GET    /v1/graphs           list registered graphs
//	GET    /v1/graphs/X         one graph by id or name
//	POST   /v1/estimate         run one estimation synchronously (EstimateRequest JSON)
//	POST   /v1/batch            fan a BatchRequest's queries across the worker pool
//	POST   /v1/jobs             submit an estimation job (EstimateRequest JSON) → 202 JobInfo
//	GET    /v1/jobs             list retained jobs, newest first
//	GET    /v1/jobs/{id}        one job's state; ?wait=2s long-polls for completion
//	GET    /v1/jobs/{id}/events server-sent events: per-trial progress (trial
//	                            index, running mean, CV) pushed as the job runs,
//	                            ending with one event named after the terminal
//	                            state — no poll loop needed
//	GET    /v1/jobs/{id}/trace  the job's recorded phase timeline: queue wait,
//	                            cache lookup/store, and one span per solver
//	                            superstep, with per-phase aggregates
//	GET    /v1/jobs/{id}/result a finished job's estimate (?wait= supported)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//
// In cluster mode (Options.Cluster set) two peer endpoints appear:
// POST /v1/cluster/runs receives trial runs handed off by a peer, and
// POST /v1/cluster/rebalance pushes every locally-held run whose ring
// home is another replica to that home. Estimate and job submissions
// whose trial stream belongs to another replica are transparently
// proxied there (response relayed verbatim, plus an X-Subgraph-Home
// header); a request carrying the X-Subgraph-Forward loop-guard header
// is always executed locally.
//
// Estimate and job requests accept a "precision" object alongside
// "trials" (see PrecisionSpec): instead of a fixed trial count the job
// runs until the declared (relErr, confidence) target is met, reusing and
// extending previously cached trials for the same stream; the adaptive
// outcome is visible in /v1/stats under "precision" (earlyStops,
// trialsSaved) and "cache" (extended).
//
// Estimate responses carry X-Cache: HIT|MISS and X-Elapsed-Ms headers; the
// body is exactly the estimate, so a cache hit replays the original body
// byte for byte, and a job's result body is byte-identical to the
// synchronous /v1/estimate body for the same request — both are served
// from the same job path.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("GET /v1/graphs/{ref}", s.handleGetGraph)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	if s.cluster != nil {
		mux.HandleFunc("POST /v1/cluster/runs", s.handleClusterImport)
		mux.HandleFunc("POST /v1/cluster/rebalance", s.handleClusterRebalance)
	}
	return s.instrument(mux)
}

// statusRecorder captures the response status for the instrumentation
// middleware. It forwards Flush (the SSE stream needs the underlying
// flusher) and exposes the wrapped writer via Unwrap for
// http.ResponseController users.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the API mux with per-request observability: a
// monotonically increasing X-Request-ID response header, per-endpoint
// request counters and latency histograms, and a structured access log
// line at Debug level. The endpoint label is the mux's matched route
// pattern (the Go 1.22 ServeMux writes it back onto the request during
// ServeHTTP), never the raw URL — labels stay low-cardinality no matter
// what paths clients probe.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		id := "r" + strconv.FormatUint(s.reqIDs.Add(1), 10)
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		endpoint := r.Pattern
		if i := strings.IndexByte(endpoint, ' '); i >= 0 {
			endpoint = endpoint[i+1:] // drop the method: one label per route
		}
		if endpoint == "" {
			endpoint = "unmatched"
		}
		code := rec.status
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(begin)
		s.metrics.observeRequest(endpoint, code, elapsed.Seconds())
		s.logger.Debug("http request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"endpoint", endpoint,
			"status", code,
			"elapsedMs", ms(elapsed),
		)
	})
}

// handleMetrics serves the Prometheus text-format exposition. The
// live-recorded histograms are always current; the layers' cumulative
// counters are bridged from the same snapshot /v1/stats would serve,
// immediately before rendering.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.bridge(s.Stats())
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	s.metrics.reg.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
}

func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.JobTrace(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

type errorBody struct {
	Error string `json:"error"`
}

// StatusClientClosedRequest is nginx's 499: the client canceled the
// request before the server finished it. Client disconnects get their own
// status so load-shedding metrics (real 503s) aren't polluted by clients
// giving up.
const StatusClientClosedRequest = 499

// retryAfterSeconds is the Retry-After value every 503 carries: shed
// load and readiness blips clear in about a second, and the header is
// what lets a well-behaved client (or a cluster peer) back off instead
// of hammering a replica that is already saturated.
const retryAfterSeconds = "1"

// writeError maps service errors to HTTP statuses: full queue → 503 (shed
// load, with a Retry-After header), deadline → 504, canceled client →
// 499, a canceled job's result → 410 (the fetcher completed its request;
// the result is just gone), unknown graph or job → 404, not-yet-finished
// job result → 409, anything else (malformed specs, bad queries) → 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds)
	case errors.Is(err, ErrJobCanceled):
		status = http.StatusGone
	case errors.Is(err, context.Canceled):
		status = StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrUnknownGraph), errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrJobNotDone):
		status = http.StatusConflict
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	return true
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	info, err := s.AddGraph(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	infos := s.reg.List()
	if infos == nil {
		infos = []GraphInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Service) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	info, ok := s.reg.Info(ref)
	if !ok {
		writeError(w, fmt.Errorf("%w %q", ErrUnknownGraph, ref))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.maybeForward(w, r, "/v1/estimate", req) {
		return
	}
	res, err := s.Estimate(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	if res.Cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Header().Set("X-Elapsed-Ms", fmt.Sprintf("%.3f", float64(res.Elapsed.Microseconds())/1000))
	writeJSON(w, http.StatusOK, res.Estimate)
}

// batchItemBody is the wire form of one batch outcome.
type batchItemBody struct {
	Query     string          `json:"query"`
	Cached    bool            `json:"cached"`
	ElapsedMS float64         `json:"elapsedMs"`
	Estimate  json.RawMessage `json:"estimate,omitempty"`
	Error     string          `json:"error,omitempty"`
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq BatchRequest
	if !decodeBody(w, r, &breq) {
		return
	}
	items, err := s.EstimateBatch(r.Context(), breq)
	if err != nil {
		writeError(w, err)
		return
	}
	body := make([]batchItemBody, len(items))
	for i, it := range items {
		body[i] = batchItemBody{Query: it.Query}
		if it.Err != nil {
			body[i].Error = it.Err.Error()
			continue
		}
		body[i].Cached = it.Result.Cached
		body[i].ElapsedMS = float64(it.Result.Elapsed.Microseconds()) / 1000
		raw, err := json.Marshal(it.Result.Estimate)
		if err != nil {
			body[i].Error = err.Error()
			continue
		}
		body[i].Estimate = raw
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":   breq.Graph,
		"results": body,
	})
}

// maxLongPoll caps the ?wait= long-poll duration so a client cannot pin
// a connection open indefinitely.
const maxLongPoll = time.Minute

// parseWait reads the optional ?wait= long-poll duration ("2s", "500ms").
func parseWait(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("service: bad wait %q: %w", raw, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("service: bad wait %q: negative", raw)
	}
	if d > maxLongPoll {
		d = maxLongPoll
	}
	return d, nil
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.maybeForward(w, r, "/v1/jobs", req) {
		return
	}
	info, err := s.SubmitEstimateJob(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+info.ID)
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Service) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait, err := parseWait(r)
	if err != nil {
		writeError(w, err)
		return
	}
	info, ok := s.WaitJob(r.Context(), id, wait)
	if !ok {
		writeError(w, fmt.Errorf("%w %q", ErrUnknownJob, id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleJobResult serves a finished job's estimate with the exact body
// and headers of the synchronous /v1/estimate path.
func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait, err := parseWait(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if wait > 0 {
		if _, ok := s.WaitJob(r.Context(), id, wait); !ok {
			writeError(w, fmt.Errorf("%w %q", ErrUnknownJob, id))
			return
		}
	}
	res, err := s.JobResult(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if res.Cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Header().Set("X-Elapsed-Ms", fmt.Sprintf("%.3f", float64(res.Elapsed.Microseconds())/1000))
	writeJSON(w, http.StatusOK, res.Estimate)
}

func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.CancelJob(id)
	if !ok {
		writeError(w, fmt.Errorf("%w %q", ErrUnknownJob, id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// ListenAndServe runs the API on addr until ctx is canceled, then shuts
// down gracefully: in-flight requests get grace to finish, the worker
// pool drains, and the listener closes. Used by cmd/sgserve; tests use
// Handler with httptest instead.
func (s *Service) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close() // don't leak the worker pool on a bind failure
		return err
	}
	return s.Serve(ctx, ln, grace)
}

// Serve is ListenAndServe on a caller-provided listener, for callers that
// bind the port themselves — e.g. cmd/sgserve on ":0", where the bound
// address must be known (and written to an -addr-file) before serving.
// Serve owns ln and the service: both are closed before it returns.
func (s *Service) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close() // listener failure: don't leak the worker pool
		return err
	case <-ctx.Done():
	}
	if grace <= 0 {
		grace = 10 * time.Second
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(sctx)
	s.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
