package service_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	subgraph "repro"
)

// TestPathLoadingSandbox covers the GraphDir confinement: disabled by
// default, traversal and absolute paths rejected, legitimate files under
// the configured directory loadable.
func TestPathLoadingSandbox(t *testing.T) {
	// Disabled by default.
	closed := subgraph.NewService(subgraph.ServiceOptions{Workers: 1})
	t.Cleanup(closed.Close)
	if _, err := closed.AddGraph(subgraph.GraphSpec{Path: "x.edges"}); err == nil ||
		!strings.Contains(err.Error(), "disabled") {
		t.Fatalf("path loading without GraphDir: err = %v, want disabled error", err)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tri.edges"), []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	secret := filepath.Join(t.TempDir(), "secret.txt")
	if err := os.WriteFile(secret, []byte("top secret\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1, GraphDir: dir})
	t.Cleanup(svc.Close)

	info, err := svc.AddGraph(subgraph.GraphSpec{Path: "tri.edges", Name: "tri"})
	if err != nil {
		t.Fatalf("loading a file inside GraphDir: %v", err)
	}
	if info.Nodes != 3 || info.Edges != 3 {
		t.Errorf("loaded graph = %+v, want 3 nodes / 3 edges", info)
	}

	for _, p := range []string{
		secret,                        // absolute
		"../" + filepath.Base(secret), // traversal
		"..",
	} {
		if _, err := svc.AddGraph(subgraph.GraphSpec{Path: p}); err == nil {
			t.Errorf("path %q escaped the sandbox", p)
		} else if strings.Contains(err.Error(), "top secret") {
			t.Errorf("path %q error leaks file content: %v", p, err)
		}
	}

	if _, err := svc.AddGraph(subgraph.GraphSpec{Path: "missing.edges"}); err == nil {
		t.Error("missing file accepted")
	}

	// A symlink inside GraphDir pointing outside must not defeat the
	// confinement.
	if err := os.Symlink(filepath.Dir(secret), filepath.Join(dir, "out")); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddGraph(subgraph.GraphSpec{Path: "out/secret.txt"}); err == nil {
		t.Error("symlink escaped the sandbox")
	} else if strings.Contains(err.Error(), "top secret") {
		t.Errorf("symlink escape error leaks file content: %v", err)
	}
}

// TestPathLoadingSizeBound rejects files larger than the registry budget
// before reading them.
func TestPathLoadingSizeBound(t *testing.T) {
	dir := t.TempDir()
	big := strings.Repeat("0 1\n", 1024)
	if err := os.WriteFile(filepath.Join(dir, "big.edges"), []byte(big), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := subgraph.NewService(subgraph.ServiceOptions{
		Workers: 1, GraphDir: dir, GraphBudgetBytes: 1024,
	})
	t.Cleanup(svc.Close)
	if _, err := svc.AddGraph(subgraph.GraphSpec{Path: "big.edges"}); err == nil ||
		!strings.Contains(err.Error(), "exceeds the registry budget") {
		t.Fatalf("oversized file: err = %v, want budget error", err)
	}
}
