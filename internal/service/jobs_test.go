package service_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	subgraph "repro"
)

// slowService returns a 1-worker service with a graph big enough that a
// many-trial estimate runs for many seconds — long enough that cancels
// reliably land mid-run — plus a small graph for quick follow-up jobs.
func slowService(t *testing.T) *subgraph.Service {
	t.Helper()
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1})
	t.Cleanup(svc.Close)
	if _, err := svc.AddGraph(subgraph.GraphSpec{PowerLawN: 8000, Alpha: 1.5, Seed: 2, Name: "slowg"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "quickg"}); err != nil {
		t.Fatal(err)
	}
	return svc
}

// slowReq runs for minutes if nothing cancels it.
func slowReq() subgraph.EstimateRequest {
	return subgraph.EstimateRequest{Graph: "slowg", Query: "brain3", Trials: 500, Seed: 1}
}

// waitJobState polls until the job reports the wanted state.
func waitJobState(t *testing.T, svc *subgraph.Service, id string, want subgraph.JobState) subgraph.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if info.State == want {
			return info
		}
		if info.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, info.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobResultBitIdenticalToDirect: an async job's result equals the
// direct library call field for field — the job path is the same compute
// path as subgraph.Estimate.
func TestJobResultBitIdenticalToDirect(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 2})
	t.Cleanup(svc.Close)
	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "bench"}); err != nil {
		t.Fatal(err)
	}
	job, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "bench", Query: "glet1", Trials: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := svc.WaitJob(context.Background(), job.ID, 30*time.Second)
	if !ok || info.State != subgraph.JobDone {
		t.Fatalf("job = %+v, want done", info)
	}
	if info.Progress.TrialsDone != 4 || info.Progress.TrialsTotal != 4 {
		t.Errorf("progress = %+v, want 4/4", info.Progress)
	}
	res, err := svc.JobResult(job.ID)
	if err != nil {
		t.Fatal(err)
	}

	g, _ := subgraph.Standin("enron", 512, 1)
	q, err := subgraph.QueryByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 4, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEstimate(res.Estimate, direct) {
		t.Errorf("job result differs from direct call:\njob:    %+v\ndirect: %+v", res.Estimate, direct)
	}
}

// TestCancelRunningJobFreesWorker is the acceptance criterion: canceling
// a job running a large estimate frees its worker within a bounded
// wall-clock interval (one outer-loop check interval plus scheduling
// noise), instead of the worker finishing the remaining trials.
func TestCancelRunningJobFreesWorker(t *testing.T) {
	svc := slowService(t)
	job, err := svc.SubmitEstimateJob(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, svc, job.ID, subgraph.JobRunning)

	start := time.Now()
	info, ok := svc.CancelJob(job.ID)
	if !ok || info.State != subgraph.JobCanceled {
		t.Fatalf("cancel = %+v (ok=%v), want canceled", info, ok)
	}
	// The job is terminal immediately; the worker itself must come free
	// promptly. 10s is orders of magnitude below the uncanceled runtime
	// (500 trials × ~100ms) while absorbing race-detector slowdowns.
	for svc.Stats().Scheduler.Running > 0 {
		if time.Since(start) > 10*time.Second {
			t.Fatalf("worker still busy %v after cancel", time.Since(start))
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("worker freed %v after cancel", time.Since(start))

	// The freed worker runs new jobs: a quick estimate completes.
	res, err := svc.Estimate(context.Background(), subgraph.EstimateRequest{Graph: "quickg", Query: "wiki", Trials: 2, Seed: 3})
	if err != nil {
		t.Fatalf("estimate after cancel: %v", err)
	}
	if res.Estimate.Trials != 2 {
		t.Errorf("post-cancel estimate = %+v", res.Estimate)
	}

	// The canceled job's result reports the cancellation.
	if _, err := svc.JobResult(job.ID); !errors.Is(err, context.Canceled) {
		t.Errorf("JobResult = %v, want context.Canceled", err)
	}
}

// TestCancelQueuedJob: a job canceled while still queued never starts.
func TestCancelQueuedJob(t *testing.T) {
	svc := slowService(t)
	running, err := svc.SubmitEstimateJob(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, svc, running.ID, subgraph.JobRunning)

	queued, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "quickg", Query: "glet2", Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := svc.Job(queued.ID); got.State != subgraph.JobQueued {
		t.Fatalf("second job on a 1-worker pool is %s, want queued", got.State)
	}
	info, ok := svc.CancelJob(queued.ID)
	if !ok || info.State != subgraph.JobCanceled {
		t.Fatalf("cancel queued = %+v (ok=%v), want canceled", info, ok)
	}
	if info.StartedAt != nil {
		t.Errorf("canceled queued job has StartedAt %v, want never started", info.StartedAt)
	}
	svc.CancelJob(running.ID) // free the worker before Close drains
}

// TestCancelFinishedJobIsNoOp: canceling a done job leaves its state and
// result untouched.
func TestCancelFinishedJobIsNoOp(t *testing.T) {
	svc := slowService(t)
	job, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "quickg", Query: "wiki", Trials: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := svc.WaitJob(context.Background(), job.ID, 30*time.Second); info.State != subgraph.JobDone {
		t.Fatalf("job = %+v, want done", info)
	}
	info, ok := svc.CancelJob(job.ID)
	if !ok || info.State != subgraph.JobDone {
		t.Fatalf("cancel done job = %+v (ok=%v), want state unchanged (done)", info, ok)
	}
	if _, err := svc.JobResult(job.ID); err != nil {
		t.Errorf("result gone after no-op cancel: %v", err)
	}
}

// TestSingleflightCoalescing: identical concurrent requests attach to one
// in-flight computation; one follower canceling does not hurt the other;
// only one estimate is computed; the coalesced counter reports it.
func TestSingleflightCoalescing(t *testing.T) {
	svc := slowService(t)
	blocker, err := svc.SubmitEstimateJob(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, svc, blocker.ID, subgraph.JobRunning)

	// Three identical submissions while the worker is busy: one flight,
	// two followers.
	req := subgraph.EstimateRequest{Graph: "quickg", Query: "brain1", Trials: 3, Seed: 8}
	owner, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	fol1, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	fol2, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	if owner.Coalesced || !fol1.Coalesced || !fol2.Coalesced {
		t.Fatalf("coalesced flags = %v/%v/%v, want false/true/true",
			owner.Coalesced, fol1.Coalesced, fol2.Coalesced)
	}
	if got := svc.Stats().Jobs.Coalesced; got != 2 {
		t.Errorf("stats coalesced = %d, want 2", got)
	}

	// Canceling one follower must not cancel the shared computation.
	if info, _ := svc.CancelJob(fol2.ID); info.State != subgraph.JobCanceled {
		t.Fatalf("follower cancel = %+v", info)
	}
	svc.CancelJob(blocker.ID) // unblock the worker

	oinfo, _ := svc.WaitJob(context.Background(), owner.ID, 30*time.Second)
	finfo, _ := svc.WaitJob(context.Background(), fol1.ID, 30*time.Second)
	if oinfo.State != subgraph.JobDone || finfo.State != subgraph.JobDone {
		t.Fatalf("owner %s / follower %s, want done/done", oinfo.State, finfo.State)
	}
	ores, err := svc.JobResult(owner.ID)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := svc.JobResult(fol1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ores.Estimate, fres.Estimate) {
		t.Errorf("coalesced results differ:\n%+v\n%+v", ores.Estimate, fres.Estimate)
	}
	// One computation for the three submissions (the canceled blocker
	// computed nothing).
	if got := svc.Stats().Estimates; got != 1 {
		t.Errorf("estimates computed = %d, want 1", got)
	}
}

// TestSyncEstimateHonorsCallerContext: the sync wrapper detaches and
// surfaces context.Canceled when the caller gives up mid-run.
func TestSyncEstimateHonorsCallerContext(t *testing.T) {
	svc := slowService(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := svc.Estimate(ctx, slowReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("canceled sync estimate took %v", elapsed)
	}
}

// TestJobDeadlineFails: a per-job timeout fails the job with
// DeadlineExceeded (distinct from client cancellation).
func TestJobDeadlineFails(t *testing.T) {
	svc := slowService(t)
	req := slowReq()
	req.TimeoutMS = 100
	job, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := svc.WaitJob(context.Background(), job.ID, 30*time.Second)
	if info.State != subgraph.JobFailed {
		t.Fatalf("job = %+v, want failed", info)
	}
	if _, err := svc.JobResult(job.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("JobResult = %v, want context.DeadlineExceeded", err)
	}
}

// TestJobRetentionTTL: finished jobs fall out of retention after JobTTL.
func TestJobRetentionTTL(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1, JobTTL: 50 * time.Millisecond})
	t.Cleanup(svc.Close)
	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "g"}); err != nil {
		t.Fatal(err)
	}
	job, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "g", Query: "wiki", Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := svc.WaitJob(context.Background(), job.ID, 30*time.Second); info.State != subgraph.JobDone {
		t.Fatalf("job = %+v, want done", info)
	}
	time.Sleep(120 * time.Millisecond)
	if _, ok := svc.Job(job.ID); ok {
		t.Error("job still addressable after TTL")
	}
	if _, err := svc.JobResult(job.ID); err == nil {
		t.Error("result still addressable after TTL")
	}
	if got := svc.Stats().Jobs.Expired; got == 0 {
		t.Error("expired counter never incremented")
	}
}

// TestCachedSubmitIsBornDone: a submission whose key is already cached
// completes instantly without occupying the (busy) worker.
func TestCachedSubmitIsBornDone(t *testing.T) {
	svc := slowService(t)
	req := subgraph.EstimateRequest{Graph: "quickg", Query: "glet1", Trials: 2, Seed: 6}
	if _, err := svc.Estimate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	blocker, err := svc.SubmitEstimateJob(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, svc, blocker.ID, subgraph.JobRunning)

	job, err := svc.SubmitEstimateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != subgraph.JobDone || !job.Cached {
		t.Fatalf("cached submit = %+v, want done+cached despite busy worker", job)
	}
	svc.CancelJob(blocker.ID)
}

// TestCloseCancelsRunningFlights: Close must not wait for a minutes-long
// detached async job — it cancels outstanding flights and returns within
// a check interval.
func TestCloseCancelsRunningFlights(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1})
	if _, err := svc.AddGraph(subgraph.GraphSpec{PowerLawN: 8000, Alpha: 1.5, Seed: 2, Name: "slowg"}); err != nil {
		t.Fatal(err)
	}
	job, err := svc.SubmitEstimateJob(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, svc, job.ID, subgraph.JobRunning)
	start := time.Now()
	svc.Close()
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("Close blocked %v behind a running flight", elapsed)
	}
	// Shutdown kills are server-initiated: the job fails with the
	// retryable ErrClosed (503 on the wire), not a client cancel (499).
	if info, _ := svc.Job(job.ID); info.State != subgraph.JobFailed {
		t.Errorf("job after Close = %s, want failed (server shutdown)", info.State)
	}
	if _, err := svc.JobResult(job.ID); !strings.Contains(fmt.Sprint(err), "closed") {
		t.Errorf("JobResult after Close = %v, want scheduler-closed error", err)
	}
}
