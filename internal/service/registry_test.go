package service_test

import (
	"sync"
	"testing"

	"repro/internal/service"
)

func plSpec(seed int64) service.GraphSpec {
	return service.GraphSpec{PowerLawN: 500, Alpha: 1.6, Seed: seed}
}

// graphBytes measures the resident size the registry charges for one
// plSpec graph, so eviction tests can pick budgets without hard-coding
// size estimates.
func graphBytes(t *testing.T, seed int64) int64 {
	t.Helper()
	r := service.NewRegistry(0, 1)
	h, err := r.Add(plSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	return r.Stats().Bytes
}

func TestRegistryDedupesBySource(t *testing.T) {
	r := service.NewRegistry(0, 1)
	h1, err := r.Add(plSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	h2, err := r.Add(plSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h1.ID() != h2.ID() {
		t.Errorf("same spec produced two entries: %s vs %s", h1.ID(), h2.ID())
	}
	if h1.Graph() != h2.Graph() {
		t.Error("same spec produced two graph instances")
	}
	st := r.Stats()
	if st.Loads != 1 {
		t.Errorf("loads = %d, want 1", st.Loads)
	}
	if st.Graphs != 1 {
		t.Errorf("graphs = %d, want 1", st.Graphs)
	}
}

func TestRegistryAcquireByIDAndName(t *testing.T) {
	r := service.NewRegistry(0, 1)
	spec := plSpec(1)
	spec.Name = "mygraph"
	h, err := r.Add(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	byID, ok := r.Acquire(h.ID())
	if !ok {
		t.Fatalf("acquire by id %s failed", h.ID())
	}
	byID.Release()
	byName, ok := r.Acquire("mygraph")
	if !ok {
		t.Fatal("acquire by name failed")
	}
	byName.Release()
	if _, ok := r.Acquire("nonesuch"); ok {
		t.Error("acquire of unknown ref succeeded")
	}
}

func TestRegistryNameCollision(t *testing.T) {
	r := service.NewRegistry(0, 1)
	a := plSpec(1)
	a.Name = "taken"
	h, err := r.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	b := plSpec(2) // different source, same name
	b.Name = "taken"
	if _, err := r.Add(b); err == nil {
		t.Error("conflicting name registration succeeded")
	}
}

func TestRegistryRejectsAmbiguousSpec(t *testing.T) {
	r := service.NewRegistry(0, 1)
	if _, err := r.Add(service.GraphSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := r.Add(service.GraphSpec{Standin: "enron", PowerLawN: 100}); err == nil {
		t.Error("double-source spec accepted")
	}
}

func TestRegistryLRUEvictionRespectsRefsAndRecency(t *testing.T) {
	one := graphBytes(t, 1)
	// Budget fits two graphs but not three.
	r := service.NewRegistry(2*one+one/2, 1)

	h1, err := r.Add(plSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Add(plSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	id1, id2 := h1.ID(), h2.ID()

	// All entries referenced: adding a third must evict nothing.
	h3, err := r.Add(plSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Evictions != 0 || st.Graphs != 3 {
		t.Fatalf("eviction while all graphs referenced: %+v", st)
	}

	// Release 2 then 1: 2 is now least recently used and the only idle
	// entries are over budget, so releasing must evict 2 first.
	h2.Release()
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("releasing over budget should evict the idle entry: %+v", st)
	}
	if _, ok := r.Acquire(id2); ok {
		t.Error("evicted graph still resolvable")
	}
	h1.Release()
	h3.Release()
	// Now within budget (two graphs resident): no further eviction.
	st := r.Stats()
	if st.Graphs != 2 || st.Evictions != 1 {
		t.Fatalf("want 2 resident graphs, 1 eviction: %+v", st)
	}
	if _, ok := r.Acquire(id1); !ok {
		t.Error("recently used graph was evicted")
	}
}

// TestRegistryEvictionClearsAliases re-registers one source under an
// extra name and checks that eviction removes every alias: resolving a
// stale alias to an evicted entry would hand out a handle whose graph is
// nil.
func TestRegistryEvictionClearsAliases(t *testing.T) {
	one := graphBytes(t, 1)
	r := service.NewRegistry(one+one/2, 1) // fits one graph only

	h, err := r.Add(plSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	aliased := plSpec(1)
	aliased.Name = "alias"
	ha, err := r.Add(aliased)
	if err != nil {
		t.Fatal(err)
	}
	ha.Release()
	h.Release()

	// Force the first graph out by adding a second.
	h2, err := r.Add(plSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("want 1 eviction, got %+v", st)
	}
	if _, ok := r.Acquire("alias"); ok {
		t.Fatal("alias of evicted graph still resolvable")
	}
	if _, ok := r.Info("alias"); ok {
		t.Fatal("Info on alias of evicted graph still succeeds")
	}
}

// TestRegistryAutoIDSkipsSquattedNames registers a graph under the name
// an auto id would later take ("g2") and checks the auto id does not
// hijack the byRef entry.
func TestRegistryAutoIDSkipsSquattedNames(t *testing.T) {
	r := service.NewRegistry(0, 1)
	squat := plSpec(1)
	squat.Name = "g2"
	h1, err := r.Add(squat) // gets id g1, name g2
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	h2, err := r.Add(plSpec(2)) // would be id g2; must skip to g3
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h2.ID() == "g2" {
		t.Fatal("auto id reused a user-squatted name")
	}
	got, ok := r.Acquire("g2")
	if !ok {
		t.Fatal("squatted name no longer resolves")
	}
	defer got.Release()
	if got.Fingerprint() != h1.Fingerprint() {
		t.Error("name g2 resolves to the wrong graph")
	}
}

func TestRegistryConcurrentAdd(t *testing.T) {
	r := service.NewRegistry(0, 1)
	const workers = 8
	ids := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := r.Add(plSpec(7))
			if err != nil {
				t.Error(err)
				return
			}
			ids[w] = h.ID()
			h.Release()
		}(w)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("concurrent adds of one spec produced entries %v", ids)
		}
	}
	if st := r.Stats(); st.Graphs != 1 {
		t.Errorf("graphs = %d, want 1", st.Graphs)
	}
}

func TestFingerprintDistinguishesTopology(t *testing.T) {
	r := service.NewRegistry(0, 1)
	h1, err := r.Add(plSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	h2, err := r.Add(plSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h1.Fingerprint() == h2.Fingerprint() {
		t.Error("different graphs share a fingerprint")
	}
	if h1.Fingerprint() != service.Fingerprint(h1.Graph()) {
		t.Error("handle fingerprint differs from recomputation")
	}
}
