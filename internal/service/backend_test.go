package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	subgraph "repro"
	"repro/internal/engine"
)

// sameEstimate compares two estimates for result equality: every
// result-bearing field (counts, matches, CV, trials, names) and the
// deterministic engine counters must match bit for bit. Scheduling
// telemetry (Stats.Steals) is excluded: on the parallel backend it
// depends on which worker happened to steal which partition, so two
// fresh computations of the same request legitimately differ there —
// and nowhere else.
func sameEstimate(a, b subgraph.Estimation) bool {
	a.Stats.Steals, b.Stats.Steals = 0, 0
	return reflect.DeepEqual(a, b)
}

// TestBackendsBitIdenticalThroughService: the same request served under
// the sim and the parallel backend must produce identical counts; the two
// backends must occupy distinct cache entries (their embedded stats
// differ), so a hit on one is not replayed for the other.
func TestBackendsBitIdenticalThroughService(t *testing.T) {
	ts, _ := newServer(t)

	estimate := func(backend string) (subgraph.Estimation, string) {
		t.Helper()
		body, header := post(t, ts, "/v1/estimate",
			`{"graph":"bench","query":"glet1","trials":3,"seed":11,"backend":"`+backend+`"}`, http.StatusOK)
		var est subgraph.Estimation
		if err := json.Unmarshal(body, &est); err != nil {
			t.Fatal(err)
		}
		return est, header.Get("X-Cache")
	}

	sim, c1 := estimate("sim")
	par, c2 := estimate("parallel")
	if c1 != "MISS" || c2 != "MISS" {
		t.Fatalf("X-Cache = %q/%q, want MISS/MISS: backends must not share cache entries", c1, c2)
	}
	if !reflect.DeepEqual(sim.Counts, par.Counts) || sim.Matches != par.Matches {
		t.Errorf("backends disagree:\nsim:      %v %.3f\nparallel: %v %.3f",
			sim.Counts, sim.Matches, par.Counts, par.Matches)
	}
	if sim.Stats.Backend != "sim" || par.Stats.Backend != "parallel" {
		t.Errorf("stats backends = %q/%q, want sim/parallel", sim.Stats.Backend, par.Stats.Backend)
	}
	if par.Stats.Messages != 0 {
		t.Errorf("parallel backend reported %d simulated messages, want 0", par.Stats.Messages)
	}
	if sim.Stats.Messages == 0 {
		t.Error("sim backend reported 0 messages; its metrics simulation is broken")
	}

	// Replays hit their own backend's entry.
	if _, c := estimate("parallel"); c != "HIT" {
		t.Errorf("parallel replay X-Cache = %q, want HIT", c)
	}
	if _, c := estimate("sim"); c != "HIT" {
		t.Errorf("sim replay X-Cache = %q, want HIT", c)
	}
}

// TestStatsEngineSection: /v1/stats must describe the default backend and
// report per-backend counters for every backend that has actually run.
func TestStatsEngineSection(t *testing.T) {
	ts, _ := newServer(t)

	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"path3","trials":2,"seed":3,"backend":"parallel","ranks":3}`, http.StatusOK)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"path3","trials":2,"seed":3,"backend":"sim"}`, http.StatusOK)

	var st subgraph.ServiceStats
	get(t, ts, "/v1/stats", &st)
	// The service default tracks $SUBGRAPH_BACKEND (that's how CI runs the
	// suite under both backends), so compare against the resolved name.
	wantDefault, err := engine.Canonical("")
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Backend != wantDefault {
		t.Errorf("engine.backend = %q, want the default %q", st.Engine.Backend, wantDefault)
	}
	par, ok := st.Engine.Backends["parallel"]
	if !ok {
		t.Fatalf("engine.backends missing %q: %+v", "parallel", st.Engine.Backends)
	}
	if par.Runs != 1 || par.Workers != 3 || par.TotalLoad <= 0 || par.Messages != 0 {
		t.Errorf("parallel backend counters malformed: %+v", par)
	}
	sim, ok := st.Engine.Backends["sim"]
	if !ok {
		t.Fatalf("engine.backends missing %q: %+v", "sim", st.Engine.Backends)
	}
	if sim.Runs != 1 || sim.Messages <= 0 {
		t.Errorf("sim backend counters malformed: %+v", sim)
	}
}

// TestBackendValidation: an unknown backend must be rejected at request
// time with a 400, not deep inside a job.
func TestBackendValidation(t *testing.T) {
	ts, _ := newServer(t)

	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"path3","backend":"mpi"}`, http.StatusBadRequest)
}

// TestBatchBackendInheritance: a batch-level backend must reach every
// query, and the per-query knob must override it — proven through the
// stats counters, which only the engine that really ran can bump.
func TestBatchBackendInheritance(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 2, Shards: 2})
	defer svc.Close()
	if _, err := svc.AddGraph(subgraph.GraphSpec{PowerLawN: 300, Alpha: 1.6, Seed: 4, Name: "bb"}); err != nil {
		t.Fatal(err)
	}
	items, err := svc.EstimateBatch(context.Background(), subgraph.BatchRequest{
		Graph:   "bb",
		Backend: "parallel",
		Trials:  2,
		Seed:    5,
		Queries: []subgraph.EstimateRequest{
			{Query: "path3"},
			{Query: "cycle4", Backend: "sim"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("%s: %v", it.Query, it.Err)
		}
	}
	if b := items[0].Result.Estimate.Stats.Backend; b != "parallel" {
		t.Errorf("inherited backend = %q, want parallel", b)
	}
	if b := items[1].Result.Estimate.Stats.Backend; b != "sim" {
		t.Errorf("overridden backend = %q, want sim", b)
	}
}
