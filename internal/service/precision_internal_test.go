package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
)

// TestKeyCompatibilityShim pins the compatibility contract of the
// precision redesign: a request carrying only `trials` — every existing
// client — must produce exactly the cache/singleflight key the
// pre-precision service produced, field for field, with every new
// precision field zero. If normalization ever starts defaulting precision
// onto legacy requests (silently re-keying the cache and splitting
// singleflight), this fails.
func TestKeyCompatibilityShim(t *testing.T) {
	svc := New(Options{Workers: 1})
	defer svc.Close()
	req, err := svc.normalize(EstimateRequest{Graph: "g", Query: "glet1", Trials: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.ByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	got := svc.key(0xfeed, q, core.DB, req)
	// The default backend resolves through $SUBGRAPH_BACKEND exactly as it
	// did pre-redesign (CI runs this under both values).
	backend, err := engine.Canonical("")
	if err != nil {
		t.Fatal(err)
	}
	want := Key{
		// The exact key the PR4 service built for this request: the five
		// identity fields plus the three knobs, nothing else.
		Graph:     0xfeed,
		Query:     QuerySignature(q),
		Algorithm: core.DB,
		Backend:   backend,
		Trials:    3,
		Seed:      7,
		Ranks:     4,
	}
	if got != want {
		t.Fatalf("legacy request re-keyed:\ngot  %+v\nwant %+v", got, want)
	}

	// A precision request keys differently (it may stop at a different
	// trial count) but projects onto the same trial stream.
	preq, err := svc.normalize(EstimateRequest{Graph: "g", Query: "glet1", Seed: 7,
		Precision: &PrecisionSpec{RelErr: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	pkey := svc.key(0xfeed, q, core.DB, preq)
	if pkey == got {
		t.Error("precision request must not collide with the legacy key")
	}
	if pkey.TrialKey() != got.TrialKey() {
		t.Error("precision and legacy requests over one seed must share a TrialKey")
	}
	if pkey.RelErr != 0.1 || pkey.Confidence != 0.95 || pkey.MinTrials != 3 {
		t.Errorf("normalized precision fields wrong in key: %+v", pkey)
	}
	if preq.Trials != svc.opts.MaxTrials {
		t.Errorf("precision request trials bound = %d, want server max %d", preq.Trials, svc.opts.MaxTrials)
	}
}

// TestPrecisionNormalization covers the spec's defaulting and validation
// matrix.
func TestPrecisionNormalization(t *testing.T) {
	svc := New(Options{Workers: 1, MaxTrials: 100, DefaultTrials: 5})
	defer svc.Close()

	// trials acts as the MaxTrials default when the spec leaves it zero.
	req, err := svc.normalize(EstimateRequest{Trials: 40, Precision: &PrecisionSpec{RelErr: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Precision.MaxTrials != 40 || req.Trials != 40 {
		t.Errorf("maxTrials default from trials: %+v", req.Precision)
	}
	// An explicit MaxTrials wins, and the server limit still applies.
	if _, err := svc.normalize(EstimateRequest{Precision: &PrecisionSpec{RelErr: 0.2, MaxTrials: 101}}); err == nil {
		t.Error("maxTrials beyond the server limit accepted")
	}
	// minTrials clamps to ≥ 2 and ≤ maxTrials.
	req, err = svc.normalize(EstimateRequest{Precision: &PrecisionSpec{RelErr: 0.2, MinTrials: 1, MaxTrials: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if req.Precision.MinTrials != 2 {
		t.Errorf("minTrials = %d, want clamped to 2", req.Precision.MinTrials)
	}
	// Normalization must not mutate the caller's spec (batches share one).
	shared := &PrecisionSpec{RelErr: 0.2}
	if _, err := svc.normalize(EstimateRequest{Precision: shared}); err != nil {
		t.Fatal(err)
	}
	if shared.Confidence != 0 || shared.MaxTrials != 0 {
		t.Errorf("caller's spec mutated by normalize: %+v", shared)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes events from an event stream until limit events or a
// terminal-state event arrives.
func readSSE(t *testing.T, r *bufio.Reader, limit int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for len(events) < limit {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			if JobState(cur.name).Terminal() {
				return events
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestJobEventsSSE drives the events stream end to end: progress events
// while a long job runs, a terminal event named after the final state,
// and clean 404s for unknown ids. Cancellation mid-stream must surface as
// a "canceled" event rather than hanging the subscriber.
func TestJobEventsSSE(t *testing.T) {
	old := sseInterval
	sseInterval = 5 * time.Millisecond
	defer func() { sseInterval = old }()

	svc := New(Options{Workers: 2})
	defer svc.Close()
	if _, err := svc.AddGraph(GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "bench"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: status %d, want 404", resp.StatusCode)
	}

	// A job long enough to stream progress from.
	info, err := svc.SubmitEstimateJob(EstimateRequest{Graph: "bench", Query: "brain3", Trials: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	go func() {
		// Give the stream time to observe some trials, then cancel.
		time.Sleep(300 * time.Millisecond)
		svc.CancelJob(info.ID)
	}()
	events := readSSE(t, bufio.NewReader(resp.Body), 10000)
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least an initial progress and a terminal one", len(events))
	}
	last := events[len(events)-1]
	if last.name != string(JobCanceled) {
		t.Errorf("terminal event %q, want canceled", last.name)
	}
	progress := 0
	for _, e := range events[:len(events)-1] {
		if e.name != "progress" {
			t.Errorf("unexpected mid-stream event %q", e.name)
		}
		progress++
	}
	if progress == 0 {
		t.Error("no progress events before the terminal event")
	}

	// A finished job's stream replays its terminal event immediately.
	quick, err := svc.SubmitEstimateJob(EstimateRequest{Graph: "bench", Query: "glet1", Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.WaitJob(nil, quick.ID, 10*time.Second); !ok {
		t.Fatal("quick job vanished")
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + quick.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events = readSSE(t, bufio.NewReader(resp.Body), 10)
	if len(events) == 0 || events[len(events)-1].name != string(JobDone) {
		t.Fatalf("finished job stream = %+v, want immediate done event", events)
	}
	if !strings.Contains(events[len(events)-1].data, quick.ID) {
		t.Errorf("terminal event data lacks the job info: %s", events[len(events)-1].data)
	}
}
