package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	"repro/internal/obs"
)

// ErrUnknownJob is returned when a request references a job id the
// manager does not hold (never submitted, or expired out of retention).
var ErrUnknownJob = errors.New("service: unknown job")

// clone deep-copies an estimate's slices: retained job results and their
// callers must not share backing arrays, or a caller mutating
// result.Counts would corrupt the value replayed to every later fetch.
func clone(e coloring.Estimate) coloring.Estimate {
	e.Counts = append([]uint64(nil), e.Counts...)
	if e.Stats.Loads != nil {
		e.Stats.Loads = append([]int64(nil), e.Stats.Loads...)
	}
	return e
}

// ErrJobNotDone is returned when a job's result is requested before the
// job reached a terminal state.
var ErrJobNotDone = errors.New("service: job not finished")

// ErrJobCanceled is returned when a canceled job's result is requested:
// the result is gone (410), which is distinct from the requester itself
// disconnecting (499) — a client fetching another party's canceled job
// completed its own request just fine.
var ErrJobCanceled = errors.New("service: job canceled")

// JobState is one job's lifecycle position.
type JobState string

const (
	// JobQueued: submitted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is computing the estimate.
	JobRunning JobState = "running"
	// JobDone: finished with a result (possibly replayed from the cache).
	JobDone JobState = "done"
	// JobFailed: finished with an error (bad run, or deadline expired).
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client before finishing.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == JobDone || st == JobFailed || st == JobCanceled
}

// JobProgress reports per-trial progress of a running estimation.
// TrialsTotal is the job's trial bound: the fixed trial count, or — for
// precision-targeted jobs — the adaptive MaxTrials worst case, which an
// early stop leaves unreached (TrialsDone < TrialsTotal on a done job
// means the precision target was met early). Mean and CV are the running
// statistics over the landed trials: the observed coefficient of
// variation is what the adaptive stopping rule drives below the declared
// target.
type JobProgress struct {
	TrialsDone  int     `json:"trialsDone"`
	TrialsTotal int     `json:"trialsTotal"`
	Mean        float64 `json:"mean,omitempty"`
	CV          float64 `json:"cv,omitempty"`
}

// JobInfo is the wire description of one job. The result itself is not
// embedded: fetch it once the state is terminal, so the result body stays
// byte-identical to the synchronous estimate body.
type JobInfo struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Graph string   `json:"graph"`
	Query string   `json:"query"`
	// Cached: the job was answered from the result cache at submit time.
	Cached bool `json:"cached"`
	// Coalesced: the job attached to an identical in-flight job instead of
	// computing independently (singleflight).
	Coalesced bool        `json:"coalesced"`
	Progress  JobProgress `json:"progress"`
	Error     string      `json:"error,omitempty"`
	CreatedAt time.Time   `json:"createdAt"`
	StartedAt *time.Time  `json:"startedAt,omitempty"`
	// FinishedAt and ElapsedMS are set once the state is terminal;
	// ExpiresAt is when the finished job falls out of retention.
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
	ElapsedMS  float64    `json:"elapsedMs,omitempty"`
	ExpiresAt  *time.Time `json:"expiresAt,omitempty"`
}

// flight is one scheduled computation, shared by every job whose cache
// key matches (singleflight): the first cache-missing submission creates
// the flight, identical concurrent submissions attach to it, and the
// flight's context is canceled once every attached job has detached — so
// one client giving up never kills another client's computation, and a
// computation nobody waits for stops burning its worker.
type flight struct {
	key      Key
	cancel   context.CancelFunc
	jobs     []*job // attached waiters (guarded by jobManager.mu)
	running  bool
	finished bool
	// tr is the flight's span timeline, shared by every attached job: one
	// computation, one trace. Written once at flight creation.
	tr *obs.Trace
	// prog is the single source of per-trial progress: one snapshot per
	// landed trial, published atomically so a reader never pairs trial
	// N's count with trial N-1's statistics.
	prog atomic.Pointer[flightProgress]
}

// flightProgress is the running-statistics snapshot a flight publishes
// after every landed trial, for job polling and the SSE stream.
type flightProgress struct {
	done     int
	mean, cv float64
}

// progress returns the flight's latest snapshot (zero before any trial).
func (fl *flight) progress() flightProgress {
	if p := fl.prog.Load(); p != nil {
		return *p
	}
	return flightProgress{}
}

// job is one submitted estimation with its own id and lifecycle. Several
// jobs may share one flight; canceling a job only cancels the flight when
// no other job remains attached.
type job struct {
	id          string
	state       JobState
	graphName   string
	queryName   string
	cached      bool
	coalesced   bool
	trialsTotal int
	trialsDone  int // frozen at finalize; live jobs read the flight counter
	created     time.Time
	started     time.Time // zero until a worker picks the flight up
	finished    time.Time // zero until terminal
	expires     time.Time // terminal + TTL: when the job leaves retention
	est         coloring.Estimate
	err         error
	fl          *flight       // nil for cache-replayed jobs
	done        chan struct{} // closed exactly once, at the terminal transition
	timer       *time.Timer   // per-job deadline watchdog
	// tr is the job's span timeline (the flight's shared trace for
	// computed jobs, a minimal replay trace for cache hits). Written once
	// before the job is published under the manager mutex; every Trace
	// method is nil-safe, so pre-observability constructors need no guard.
	tr *obs.Trace
}

// JobsStats are the job manager's observability counters. LockWait
// measures contention on the manager's own mutex (job ids and lifecycle
// are still global); the singleflight index has been split onto its own
// keyed-hash shards, reported separately, so index lookups on distinct
// keys no longer queue behind job bookkeeping.
type JobsStats struct {
	Submitted uint64 `json:"submitted"`
	Coalesced uint64 `json:"coalesced"`
	Canceled  uint64 `json:"canceled"`
	Expired   uint64 `json:"expired"`
	Active    int    `json:"active"`   // queued or running
	Retained  int    `json:"retained"` // all jobs still addressable by id
	LockWait
	Singleflight SingleflightStats `json:"singleflight"`
}

// SingleflightStats describe the sharded in-flight index: how many keys
// are currently flying and how contended the shard locks are.
type SingleflightStats struct {
	Keys   int `json:"keys"`
	Shards int `json:"shards"`
	LockWait
}

// singleflightIndex is the in-flight key → flight map, split off the job
// manager's global mutex into keyed-hash shards with their own locks: a
// submission only serializes with submissions (and completions) whose
// keys land on the same shard, so the manager mutex stops being the last
// global lock crossed by every cache-missing request. The locking
// protocol is strictly shard-before-manager: any path that needs both
// takes the key's shard lock first, then jobManager.mu — a flight found
// in the index under its shard lock therefore cannot finish (finishFlight
// removes it under the same shard lock before settling waiters), which is
// what makes attach-on-lookup race-free.
type singleflightIndex struct {
	shards []singleflightShard
}

type singleflightShard struct {
	mu waitMutex
	m  map[Key]*flight
}

func newSingleflightIndex(shards int) *singleflightIndex {
	if shards < 1 {
		shards = 1
	}
	ix := &singleflightIndex{shards: make([]singleflightShard, shards)}
	for i := range ix.shards {
		ix.shards[i].m = make(map[Key]*flight)
	}
	return ix
}

func (ix *singleflightIndex) shardFor(k Key) *singleflightShard {
	return &ix.shards[k.hash()%uint64(len(ix.shards))]
}

func (ix *singleflightIndex) stats() SingleflightStats {
	st := SingleflightStats{Shards: len(ix.shards)}
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		st.Keys += len(sh.m)
		sh.mu.Unlock()
		st.LockWait.add(sh.mu.wait())
	}
	return st
}

// jobManager tracks every job by id, the in-flight singleflight index,
// and TTL'd retention of finished jobs. Its mutex is the serving path's
// one global lock, so the per-request critical sections (submission,
// cache-hit registration, result fetch) allocate nothing: ids come from
// an atomic counter and estimates are cloned outside — an allocation
// that hits a GC assist while holding a hot global mutex convoys every
// concurrent request behind it. Flight completion (finishFlight) does
// still clone per attached job under the lock; it runs once per
// computed estimate, so its rate is bounded by the worker pool, not by
// request throughput.
type jobManager struct {
	mu        waitMutex
	byID      map[string]*job
	order     []*job // submission order: oldest first, for sweeps and listings
	inflight  *singleflightIndex
	nextID    atomic.Uint64
	ttl       time.Duration
	maxJobs   int
	terminal  int       // finished jobs currently retained
	nextSweep time.Time // earliest time the next time-based sweep runs
	sweepGap  time.Duration

	submitted uint64
	coalesced uint64
	canceled  uint64
	expired   uint64

	// onTerminal, when set, observes every terminal transition under the
	// manager mutex — the durability layer's append hook. It must not
	// block (the durable append path only enqueues). Installed once,
	// before the service accepts traffic.
	onTerminal func(*job)
}

func newJobManager(ttl time.Duration, maxJobs, sfShards int) *jobManager {
	gap := ttl / 4
	if gap > time.Minute {
		gap = time.Minute
	}
	if gap <= 0 {
		gap = time.Minute
	}
	return &jobManager{
		byID:     make(map[string]*job),
		inflight: newSingleflightIndex(sfShards),
		ttl:      ttl,
		maxJobs:  maxJobs,
		sweepGap: gap,
	}
}

// assignID gives the job its id; ids are drawn outside the mutex so the
// formatting (an allocation) stays off the critical section.
func (m *jobManager) assignID(j *job) {
	j.id = fmt.Sprintf("j%d", m.nextID.Add(1))
}

// registerLocked adds a job (already carrying its id) to the index.
func (m *jobManager) registerLocked(j *job) {
	if j.id == "" {
		m.assignID(j)
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	m.submitted++
	m.maybeSweepLocked(time.Now())
}

// maybeSweepLocked bounds sweep cost on the submission path: the full
// O(retained) pass runs only when the retention cap is exceeded or the
// time-based cadence (a fraction of the TTL) comes due — not on every
// submission under the global mutex.
func (m *jobManager) maybeSweepLocked(now time.Time) {
	if m.terminal <= m.maxJobs && now.Before(m.nextSweep) {
		return
	}
	m.sweepLocked(now)
	m.nextSweep = now.Add(m.sweepGap)
}

// attachLocked wires a job onto a flight as one more waiter. The flight's
// trace replaces the job's own: a coalesced job reports the timeline of
// the computation that actually serves it.
func (m *jobManager) attachLocked(fl *flight, j *job) {
	if len(fl.jobs) > 0 {
		j.coalesced = true
		m.coalesced++
	}
	if fl.tr != nil {
		j.tr = fl.tr
	}
	j.fl = fl
	fl.jobs = append(fl.jobs, j)
	if fl.running {
		j.state = JobRunning
		j.started = time.Now()
	}
}

// addCached registers a job that was answered from the result cache: it
// is born done. est must be the caller's own copy (the cache Get already
// cloned it); ownership passes to the job, so the hot cache-hit path
// pays no allocation under the manager's mutex.
func (m *jobManager) addCached(j *job, est coloring.Estimate) {
	if j.id == "" {
		m.assignID(j)
	}
	relabel(&est, j.queryName, j.graphName)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(j)
	j.cached = true
	m.finalizeOwnedLocked(j, est, nil, time.Now())
}

// flightStarted marks the flight (and every job still queued on it)
// running; called by the worker as it picks the flight up.
func (m *jobManager) flightStarted(fl *flight) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fl.finished {
		return
	}
	fl.running = true
	now := time.Now()
	for _, j := range fl.jobs {
		if j.state == JobQueued {
			j.state = JobRunning
			j.started = now
		}
	}
}

// finishFlight settles a flight exactly once: the first caller (the
// worker's fn with the real outcome, or the scheduler's drop path with a
// cancellation) wins, every still-attached job is finalized with it, and
// the flight leaves the singleflight index. The key's shard lock is taken
// before the manager mutex (the index's locking protocol), so the removal
// and the settling are atomic with respect to attach-on-lookup.
func (m *jobManager) finishFlight(fl *flight, est coloring.Estimate, err error) {
	sh := m.inflight.shardFor(fl.key)
	sh.mu.Lock()
	m.mu.Lock()
	if fl.finished {
		m.mu.Unlock()
		sh.mu.Unlock()
		return
	}
	fl.finished = true
	if sh.m[fl.key] == fl {
		delete(sh.m, fl.key)
	}
	now := time.Now()
	for _, j := range fl.jobs {
		if !j.state.Terminal() {
			m.finalizeLocked(j, est, err, now)
		}
	}
	fl.jobs = nil
	m.mu.Unlock()
	sh.mu.Unlock()
	fl.cancel() // release the flight context's resources
}

// finalizeLocked moves a job to its terminal state and wakes waiters.
// Each successful job gets its own deep copy stamped with its own display
// names: coalesced jobs share one flight but not backing arrays, and a
// follower must not replay the owner's request names.
func (m *jobManager) finalizeLocked(j *job, est coloring.Estimate, err error, now time.Time) {
	if err == nil {
		est = clone(est)
		relabel(&est, j.queryName, j.graphName)
	}
	m.finalizeOwnedLocked(j, est, err, now)
}

// finalizeOwnedLocked is finalizeLocked for an estimate the job already
// owns outright (cloned and relabeled by the caller, outside the mutex).
func (m *jobManager) finalizeOwnedLocked(j *job, est coloring.Estimate, err error, now time.Time) {
	m.terminal++
	j.finished = now
	j.expires = now.Add(m.ttl)
	// Freeze progress: a canceled follower's snapshot must not keep
	// advancing with the shared flight it detached from.
	if j.fl != nil {
		j.trialsDone = j.fl.progress().done
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	switch {
	case err == nil:
		j.state = JobDone
		// The estimate's own trial count is the effective one: a
		// precision job that stopped early finishes with trialsDone below
		// the trialsTotal bound — that gap is the saved compute.
		if est.Trials > 0 {
			j.trialsDone = est.Trials
		} else {
			j.trialsDone = j.trialsTotal
		}
		j.est = est
	case errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.err = err
	default:
		j.state = JobFailed
		j.err = err
	}
	close(j.done)
	// The single terminal-transition point: every path — computed,
	// cache-replayed, canceled, failed, swept at shutdown — lands here
	// exactly once, so the persistence hook observes each job once.
	if m.onTerminal != nil {
		m.onTerminal(j)
	}
}

// detach finalizes one job early — client cancel (cause Canceled) or
// per-job deadline (cause DeadlineExceeded) — without touching its
// flight's other waiters. When the detaching job was the flight's last
// waiter, the flight's context is canceled so the computation stops
// mid-trial, and the flight leaves the singleflight index immediately so
// new arrivals start fresh instead of attaching to a dying run. Reports
// whether the job was still live.
func (m *jobManager) detach(j *job, cause error) bool {
	// j.fl is written once, before the job is published under m.mu, and
	// every caller reached j through an acquisition of m.mu — safe to read
	// here to pick the shard lock, which must come before the manager
	// mutex.
	fl := j.fl
	var sh *singleflightShard
	if fl != nil {
		sh = m.inflight.shardFor(fl.key)
		sh.mu.Lock()
	}
	m.mu.Lock()
	if j.state.Terminal() {
		m.mu.Unlock()
		if sh != nil {
			sh.mu.Unlock()
		}
		return false
	}
	m.finalizeLocked(j, coloring.Estimate{}, cause, time.Now())
	if errors.Is(cause, context.Canceled) {
		m.canceled++
	}
	var cancelFlight bool
	if fl != nil && !fl.finished {
		live := fl.jobs[:0]
		for _, w := range fl.jobs {
			if w != j {
				live = append(live, w)
			}
		}
		fl.jobs = live
		if len(live) == 0 {
			cancelFlight = true
			if sh.m[fl.key] == fl {
				delete(sh.m, fl.key)
			}
		}
	}
	m.mu.Unlock()
	if sh != nil {
		sh.mu.Unlock()
	}
	if cancelFlight {
		fl.cancel()
	}
	return true
}

// sweepLocked drops finished jobs past their TTL, then evicts the oldest
// finished jobs beyond the retention low-water mark. Active jobs are
// never dropped. Sweeping down to lowWater rather than exactly to the cap
// is what keeps the cap amortized: evicting to the cap itself would put a
// saturated manager one submission below the trigger again, degenerating
// into a full O(retained) scan under the global mutex on every request.
func (m *jobManager) sweepLocked(now time.Time) {
	// Only a sweep that found the cap exceeded drains to the low-water
	// mark; purely time-based (TTL) sweeps leave retention at the cap.
	low := m.maxJobs
	if m.terminal > m.maxJobs {
		low = m.lowWaterLocked()
	}
	keep := m.order[:0]
	for _, j := range m.order {
		if j.state.Terminal() && (!j.expires.After(now) || m.terminal > low) {
			m.terminal--
			delete(m.byID, j.id)
			m.expired++
			continue
		}
		keep = append(keep, j)
	}
	for i := len(keep); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = keep
}

// lowWaterLocked is the retention level a cap-triggered sweep drains to:
// 1/8 below MaxJobs, so successive sweeps are at least maxJobs/8
// submissions apart.
func (m *jobManager) lowWaterLocked() int {
	low := m.maxJobs - m.maxJobs/8
	if low < 1 {
		low = 1
	}
	return low
}

// get resolves a job by id. Only the looked-up job's own TTL is checked
// (an expired one is dropped and reported unknown); the full sweep runs
// on register and list, so poll-heavy traffic doesn't rescan the whole
// retention list under the lock on every lookup.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	if j.state.Terminal() && !j.expires.After(time.Now()) {
		m.terminal--
		delete(m.byID, id)
		for i, o := range m.order {
			if o == j {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.expired++
		return nil, false
	}
	return j, true
}

// infoLocked snapshots one job for the wire.
func (m *jobManager) infoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:        j.id,
		State:     j.state,
		Graph:     j.graphName,
		Query:     j.queryName,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		CreatedAt: j.created,
		Progress:  JobProgress{TrialsTotal: j.trialsTotal},
	}
	if j.state.Terminal() {
		info.Progress.TrialsDone = j.trialsDone
		if j.state == JobDone {
			info.Progress.Mean = j.est.MeanColorful
			info.Progress.CV = j.est.CV
		}
	} else if j.fl != nil {
		p := j.fl.progress()
		info.Progress.TrialsDone = p.done
		info.Progress.Mean = p.mean
		info.Progress.CV = p.cv
	}
	if !j.started.IsZero() {
		t := j.started
		info.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.FinishedAt = &t
		info.ElapsedMS = float64(j.finished.Sub(j.created).Microseconds()) / 1000
		e := j.expires
		info.ExpiresAt = &e
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

func (m *jobManager) snapshot(j *job) JobInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.infoLocked(j)
}

// list snapshots every retained job, newest first.
func (m *jobManager) list() []JobInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	out := make([]JobInfo, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		out = append(out, m.infoLocked(m.order[i]))
	}
	return out
}

// outcome converts a terminal job into the sync-path result. The estimate
// is cloned so callers can mutate their copy without corrupting the
// retained one; the clone happens after unlocking — a terminal job's
// estimate is never rewritten, so only the struct read needs the mutex.
func (m *jobManager) outcome(j *job) (EstimateResult, error) {
	m.mu.Lock()
	if !j.state.Terminal() {
		m.mu.Unlock()
		return EstimateResult{}, fmt.Errorf("%w (%s is %s)", ErrJobNotDone, j.id, j.state)
	}
	if j.state == JobCanceled {
		m.mu.Unlock()
		// Both sentinels are wrapped: errors.Is sees the cancellation
		// cause and the gone-result condition.
		return EstimateResult{}, fmt.Errorf("%w (%w)", ErrJobCanceled, j.err)
	}
	if j.err != nil {
		err := j.err
		m.mu.Unlock()
		return EstimateResult{}, err
	}
	res := EstimateResult{
		Estimate: j.est,
		Cached:   j.cached,
		Elapsed:  j.finished.Sub(j.created),
	}
	m.mu.Unlock()
	res.Estimate = clone(res.Estimate)
	return res, nil
}

// arm starts the job's deadline watchdog: when it fires before the job
// finishes, the job fails with DeadlineExceeded and detaches from its
// flight.
func (m *jobManager) arm(j *job, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.timer = time.AfterFunc(d, func() { m.detach(j, context.DeadlineExceeded) })
}

// shutdown settles every live job with ErrClosed — a retryable 503 on
// the wire, not the 499 reserved for genuine client cancels — and then
// cancels their flights so a closing service doesn't wait minutes for
// detached long runs: the canceled solvers exit within one check
// interval, and the scheduler's drain finishes promptly.
func (m *jobManager) shutdown() {
	m.mu.Lock()
	now := time.Now()
	seen := make(map[*flight]bool)
	var cancels []context.CancelFunc
	for _, j := range m.order {
		if j.state.Terminal() {
			continue
		}
		if fl := j.fl; fl != nil && !fl.finished && !seen[fl] {
			seen[fl] = true
			cancels = append(cancels, fl.cancel)
		}
		m.finalizeLocked(j, coloring.Estimate{}, ErrClosed, now)
	}
	m.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

func (m *jobManager) stats() JobsStats {
	// The index rollup takes shard locks; the protocol is shard before
	// manager, so collect it before acquiring m.mu.
	sf := m.inflight.stats()
	m.mu.Lock()
	defer m.mu.Unlock()
	return JobsStats{
		Singleflight: sf,
		Submitted:    m.submitted,
		Coalesced:    m.coalesced,
		Canceled:     m.canceled,
		Expired:      m.expired,
		Active:       len(m.order) - m.terminal,
		Retained:     len(m.order),
		LockWait:     m.mu.wait(),
	}
}
