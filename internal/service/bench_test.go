package service

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// Parallel microbenchmarks of the serving hot path's shared structures.
// These isolate lock structure from HTTP and solver cost: on multicore
// hardware the sharded variants scale with cores while the 1-shard
// variants serialize, which is the effect `sgload` measures end to end.
//
//	go test -bench 'Shards' -cpu 1,4,8 ./internal/service/
//
// On a single-core machine the variants converge — waiting on a lock
// costs no throughput when only one goroutine can run anyway.

func benchmarkCacheGet(b *testing.B, shards int) {
	c := NewCache(4096, shards)
	defer c.Close()
	const keys = 512
	for i := 0; i < keys; i++ {
		c.Put(TrialKey{Graph: uint64(i), Query: "k3:6:5:3", Seed: 1, Ranks: 4},
			TrialRun{Counts: []uint64{1, 2, 3}, Stats: make([]core.Stats, 3)})
	}
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := seq.Add(1) * 7919
		for pb.Next() {
			i++
			k := TrialKey{Graph: i % keys, Query: "k3:6:5:3", Seed: 1, Ranks: 4}
			if _, ok := c.Get(k, 3); !ok {
				b.Error("warm key missing")
				return
			}
		}
	})
}

func BenchmarkCacheGetShards1(b *testing.B)  { benchmarkCacheGet(b, 1) }
func BenchmarkCacheGetShards8(b *testing.B)  { benchmarkCacheGet(b, 8) }
func BenchmarkCacheGetShards32(b *testing.B) { benchmarkCacheGet(b, 32) }

func benchmarkRegistryAcquire(b *testing.B, shards int) {
	r := NewRegistry(0, shards)
	defer r.Close()
	const graphs = 8
	refs := make([]string, graphs)
	for i := 0; i < graphs; i++ {
		h, err := r.Add(GraphSpec{PowerLawN: 200, Alpha: 1.6, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = h.ID()
		h.Release()
	}
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := seq.Add(1) * 7919
		for pb.Next() {
			i++
			h, ok := r.Acquire(refs[i%graphs])
			if !ok {
				b.Error("registered graph missing")
				return
			}
			h.Release()
		}
	})
}

func BenchmarkRegistryAcquireShards1(b *testing.B)  { benchmarkRegistryAcquire(b, 1) }
func BenchmarkRegistryAcquireShards8(b *testing.B)  { benchmarkRegistryAcquire(b, 8) }
func BenchmarkRegistryAcquireShards32(b *testing.B) { benchmarkRegistryAcquire(b, 32) }
