package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	subgraph "repro"
)

// replica is one cluster member under test: a real service behind a real
// listener (forwards dial actual TCP addresses, so httptest's shared
// in-process server is not enough here).
type replica struct {
	addr string
	svc  *subgraph.Service
	srv  *http.Server
	ln   net.Listener
}

// startReplicas binds n listeners first (so the full membership is known
// before any ring is built), then starts one service per address with a
// cluster view over that membership. Health checking is disabled: peers
// stay optimistic and only the forward-path breaker reacts to failures,
// which keeps the tests deterministic and sleep-free.
func startReplicas(t *testing.T, n int) []*replica {
	t.Helper()
	reps := make([]*replica, n)
	addrs := make([]string, n)
	for i := range reps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &replica{ln: ln, addr: ln.Addr().String()}
		addrs[i] = reps[i].addr
	}
	for _, rep := range reps {
		cl, err := subgraph.NewCluster(subgraph.ClusterOptions{
			Self:        rep.addr,
			Members:     addrs,
			HealthEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.svc = subgraph.NewService(subgraph.ServiceOptions{Workers: 2, Cluster: cl})
		rep.srv = &http.Server{Handler: rep.svc.Handler()}
		go rep.srv.Serve(rep.ln) //nolint:errcheck // closed on cleanup
		t.Cleanup(func() {
			rep.srv.Close()
			rep.svc.Close()
			cl.Close()
		})
	}
	for _, rep := range reps {
		clusterPost(t, rep.addr, "/v1/graphs",
			`{"standin":"enron","scale":256,"seed":1,"name":"g"}`, http.StatusOK, nil)
	}
	return reps
}

// clusterPost issues one POST against a replica by address, with an
// overall timeout so a routing bug shows up as a test failure, not a
// hang. extra headers are applied to the request when non-nil.
func clusterPost(t *testing.T, addr, path, body string, wantStatus int, extra http.Header) ([]byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s%s: status %d, want %d; body: %s", addr, path, resp.StatusCode, wantStatus, raw)
	}
	return raw, resp.Header
}

func estimateBody(seed int) string {
	return fmt.Sprintf(`{"graph":"g","query":"glet1","trials":2,"seed":%d}`, seed)
}

// TestClusterBitIdenticalThroughAnyEntry is the tentpole contract: the
// same request through every entry replica returns byte-identical
// estimate bodies, and the trial stream is computed exactly once
// cluster-wide — the two non-home entries forward to the home and serve
// its cached result.
func TestClusterBitIdenticalThroughAnyEntry(t *testing.T) {
	reps := startReplicas(t, 3)

	var bodies [][]byte
	homes := make(map[string]int)
	for _, rep := range reps {
		raw, hdr := clusterPost(t, rep.addr, "/v1/estimate", estimateBody(11), http.StatusOK, nil)
		bodies = append(bodies, raw)
		if home := hdr.Get("X-Subgraph-Home"); home != "" {
			homes[home]++
			if home == rep.addr {
				t.Errorf("entry %s reports itself as forward home", rep.addr)
			}
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("entry %d body differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}

	// Exactly one home, credited with the two forwarded requests.
	if len(homes) != 1 {
		t.Fatalf("forwarded responses named %d homes %v, want exactly 1", len(homes), homes)
	}
	var misses, hits, forwards, forwardedServed uint64
	for _, rep := range reps {
		st := rep.svc.Stats()
		misses += st.Cache.Misses
		hits += st.Cache.Hits
		if st.Cluster == nil {
			t.Fatal("stats missing cluster section")
		}
		forwards += st.Cluster.Forwards
		forwardedServed += st.Cluster.ForwardedServed
	}
	if misses != 1 {
		t.Errorf("cluster-wide cache misses = %d, want 1 (one computation)", misses)
	}
	if hits != 2 {
		t.Errorf("cluster-wide cache hits = %d, want 2", hits)
	}
	if forwards != 2 || forwardedServed != 2 {
		t.Errorf("forwards = %d, forwardedServed = %d, want 2 and 2", forwards, forwardedServed)
	}
}

// TestClusterForwardedJobLocationIsAbsolute submits a job through a
// non-home entry and follows the rewritten absolute Location to the home
// replica, where the job must be addressable and finish with the same
// body a direct estimate returns.
func TestClusterForwardedJobLocationIsAbsolute(t *testing.T) {
	reps := startReplicas(t, 3)

	// Find a seed whose home is not the entry replica (two in three seeds
	// qualify; the scan is deterministic given the fixed membership order
	// is not — so just scan).
	entry := reps[0]
	var loc string
	for seed := 20; seed < 60; seed++ {
		raw, hdr := clusterPost(t, entry.addr, "/v1/jobs", estimateBody(seed), http.StatusAccepted, nil)
		if home := hdr.Get("X-Subgraph-Home"); home != "" {
			loc = hdr.Get("Location")
			if loc == "" {
				t.Fatalf("forwarded job accepted with no Location; body: %s", raw)
			}
			if want := "http://" + home + "/v1/jobs/"; len(loc) <= len(want) || loc[:len(want)] != want {
				t.Fatalf("Location = %q, want absolute URL prefixed %q", loc, want)
			}
			break
		}
	}
	if loc == "" {
		t.Fatal("no seed in [20,60) hashed to a remote home; ring is suspiciously degenerate")
	}

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(loc + "?wait=20s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.State != "done" {
		t.Fatalf("job at %s state = %q, want done", loc, job.State)
	}
}

// TestClusterHomeDownFallsBackLocally kills one replica and checks the
// degraded-but-available contract: requests homed on the dead member
// still answer through a survivor — identically to before the kill —
// and after enough failures the breaker opens so later requests skip
// the dead host without dialing it.
func TestClusterHomeDownFallsBackLocally(t *testing.T) {
	reps := startReplicas(t, 3)
	entry := reps[0]

	// Find a request homed on another replica, and remember its answer.
	var victim *replica
	var seed int
	var want []byte
	for s := 100; s < 140; s++ {
		raw, hdr := clusterPost(t, entry.addr, "/v1/estimate", estimateBody(s), http.StatusOK, nil)
		if home := hdr.Get("X-Subgraph-Home"); home != "" {
			for _, rep := range reps {
				if rep.addr == home {
					victim = rep
				}
			}
			seed, want = s, raw
			break
		}
	}
	if victim == nil {
		t.Fatal("no seed in [100,140) hashed to a remote home")
	}

	victim.srv.Close()

	// The home is gone; the entry must serve the key locally, fast, with
	// the identical body (trials are deterministic everywhere).
	for i := 0; i < 4; i++ {
		start := time.Now()
		raw, hdr := clusterPost(t, entry.addr, "/v1/estimate", estimateBody(seed), http.StatusOK, nil)
		if !bytes.Equal(raw, want) {
			t.Fatalf("fallback body differs from pre-kill body:\n%s\nvs\n%s", raw, want)
		}
		if home := hdr.Get("X-Subgraph-Home"); home != "" {
			t.Fatalf("request after kill reports forward home %s", home)
		}
		if d := time.Since(start); d > 10*time.Second {
			t.Fatalf("fallback request took %s — dead home is not failing fast", d)
		}
	}

	st := entry.svc.Stats()
	if st.Cluster.LocalFallbacks == 0 {
		t.Error("no local fallbacks counted after home died")
	}
	if st.Cluster.ForwardErrors == 0 {
		t.Error("no forward errors counted after home died")
	}
	var tripped bool
	for _, p := range st.Cluster.Peers {
		if p.Addr == victim.addr && p.Trips > 0 {
			tripped = true
		}
	}
	if !tripped {
		t.Errorf("breaker for dead peer %s never tripped; peers: %+v", victim.addr, st.Cluster.Peers)
	}
}

// TestClusterLoopGuard: a request carrying the forward header is always
// served locally, whatever the ring says — the property that makes
// forwarding loop-free under membership-view skew.
func TestClusterLoopGuard(t *testing.T) {
	reps := startReplicas(t, 3)
	entry := reps[0]

	hdrs := http.Header{}
	hdrs.Set("X-Subgraph-Forward", "10.9.9.9:1")
	for seed := 200; seed < 206; seed++ {
		_, hdr := clusterPost(t, entry.addr, "/v1/estimate", estimateBody(seed), http.StatusOK, hdrs)
		if home := hdr.Get("X-Subgraph-Home"); home != "" {
			t.Fatalf("forwarded request was re-forwarded to %s", home)
		}
	}
	st := entry.svc.Stats()
	if st.Cluster.ForwardedServed != 6 {
		t.Errorf("forwardedServed = %d, want 6", st.Cluster.ForwardedServed)
	}
	if st.Cluster.Forwards != 0 {
		t.Errorf("forwards = %d, want 0 — loop guard must not re-forward", st.Cluster.Forwards)
	}
	if st.Cache.Misses != 6 {
		t.Errorf("entry computed %d misses, want 6 (all served locally)", st.Cache.Misses)
	}
}

// TestClusterRebalanceHandsOffRuns computes keys on the "wrong" replica
// (via the loop-guard header), rebalances, and checks every key then
// serves as a warm cache hit through any entry — the runs moved to
// their homes.
func TestClusterRebalanceHandsOffRuns(t *testing.T) {
	reps := startReplicas(t, 3)
	entry := reps[0]

	const n = 8
	hdrs := http.Header{}
	hdrs.Set("X-Subgraph-Forward", "10.9.9.9:1")
	for seed := 300; seed < 300+n; seed++ {
		clusterPost(t, entry.addr, "/v1/estimate", estimateBody(seed), http.StatusOK, hdrs)
	}

	raw, _ := clusterPost(t, entry.addr, "/v1/cluster/rebalance", "", http.StatusOK, nil)
	var reb struct {
		Exported int `json:"exported"`
		Kept     int `json:"kept"`
	}
	if err := json.Unmarshal(raw, &reb); err != nil {
		t.Fatal(err)
	}
	if reb.Exported == 0 {
		t.Fatalf("rebalance exported 0 runs (kept %d) — all %d keys homed here is implausible", reb.Kept, n)
	}
	if reb.Exported+reb.Kept != n {
		t.Errorf("exported %d + kept %d != %d runs", reb.Exported, reb.Kept, n)
	}

	// Every key is now warm at its home: requests through another entry
	// must all be cache hits — zero new computation anywhere.
	for seed := 300; seed < 300+n; seed++ {
		_, hdr := clusterPost(t, reps[1].addr, "/v1/estimate", estimateBody(seed), http.StatusOK, nil)
		if hdr.Get("X-Cache") != "HIT" {
			t.Errorf("seed %d after rebalance: X-Cache = %q, want HIT", seed, hdr.Get("X-Cache"))
		}
	}
	var imported uint64
	for _, rep := range reps[1:] {
		imported += rep.svc.Stats().Cluster.HandoffImported
	}
	if imported != uint64(reb.Exported) {
		t.Errorf("peers imported %d runs, exporter shipped %d", imported, reb.Exported)
	}
	if got := entry.svc.Stats().Cluster.HandoffExported; got != uint64(reb.Exported) {
		t.Errorf("exporter counter = %d, response said %d", got, reb.Exported)
	}
}

// TestClusterReadyz: ready replicas answer 200 with uptime; /healthz
// stays the liveness probe.
func TestClusterReadyz(t *testing.T) {
	reps := startReplicas(t, 3)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, rep := range reps {
		resp, err := client.Get("http://" + rep.addr + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || body.Status != "ready" {
			t.Errorf("%s /readyz = %d %q, want 200 ready", rep.addr, resp.StatusCode, body.Status)
		}
	}
}
