package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// blockWorker occupies the scheduler's single worker until release is
// closed, so subsequent submissions pile up in the priority queue.
func blockWorker(t *testing.T, s *service.Scheduler) (release chan struct{}) {
	t.Helper()
	started := make(chan struct{})
	release = make(chan struct{})
	if _, err := s.Submit(context.Background(), 1<<30, func(context.Context) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	return release
}

func TestSchedulerPriorityOrder(t *testing.T) {
	s := service.NewScheduler(1, 0)
	defer s.Close()
	release := blockWorker(t, s)

	var mu sync.Mutex
	var order []int
	var jobs []*service.Job
	for _, pri := range []int{1, 3, 2, 3} {
		pri := pri
		j, err := s.Submit(context.Background(), pri, func(context.Context) error {
			mu.Lock()
			order = append(order, pri)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{3, 3, 2, 1} // priority desc, FIFO within a level
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestSchedulerDropsCanceledJobs(t *testing.T) {
	s := service.NewScheduler(1, 0)
	defer s.Close()
	release := blockWorker(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	cleaned := make(chan struct{})
	j, err := s.SubmitJob(ctx, 0, func(context.Context) error {
		ran = true
		return nil
	}, func() { close(cleaned) })
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	select {
	case <-cleaned:
	case <-time.After(5 * time.Second):
		t.Fatal("cleanup hook never ran for dropped job")
	}
	if ran {
		t.Error("canceled job's fn ran anyway")
	}
	// The counter updates after the drop; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never incremented: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerDeadline(t *testing.T) {
	s := service.NewScheduler(1, 0)
	defer s.Close()
	release := blockWorker(t, s)
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	j, err := s.Submit(ctx, 0, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// The worker is blocked, so the deadline fires while queued.
	if err := j.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := service.NewScheduler(1, 1)
	defer s.Close()
	release := blockWorker(t, s)
	defer close(release)

	if _, err := s.Submit(context.Background(), 0, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("first queued job rejected: %v", err)
	}
	_, err := s.Submit(context.Background(), 0, func(context.Context) error { return nil })
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

func TestSchedulerCloseDrainsQueue(t *testing.T) {
	s := service.NewScheduler(2, 0)
	var mu sync.Mutex
	done := 0
	var jobs []*service.Job
	for i := 0; i < 16; i++ {
		j, err := s.Submit(context.Background(), 0, func(context.Context) error {
			mu.Lock()
			done++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Close() // must drain, not abandon
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if done != 16 {
		t.Errorf("done = %d, want 16", done)
	}
	if _, err := s.Submit(context.Background(), 0, func(context.Context) error { return nil }); !errors.Is(err, service.ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}
