package service

import (
	"sync"

	"repro/internal/core"
)

// EngineBackendStats are one execution backend's counters accumulated
// across every estimate the service actually computed on it (cache
// replays don't re-run the engine and so don't count). Load is the
// paper's projection-function-operations metric; Messages is simulated
// communication volume (always 0 for parallel); Steals is stolen
// partition tasks (always 0 for sim).
type EngineBackendStats struct {
	Runs      uint64 `json:"runs"`
	Workers   int    `json:"workers"` // worker/rank count of the latest run
	TotalLoad int64  `json:"totalLoad"`
	MaxLoad   int64  `json:"maxLoad"`
	Messages  int64  `json:"messages"`
	Steals    int64  `json:"steals"`
	// Supersteps counts executed engine supersteps — deterministic for a
	// given plan and identical across backends, so it is the natural unit
	// for the planned cost model (work per superstep, not per wall-second).
	Supersteps int64 `json:"supersteps"`
}

// DistNodeStats is one distributed worker node's transport counters,
// cumulative since the process connected to it. Populated only when the
// server runs with a dist cluster (Options.DistStats).
type DistNodeStats struct {
	Rank       int    `json:"rank"`
	Addr       string `json:"addr"`
	Alive      bool   `json:"alive"`
	BytesSent  int64  `json:"bytesSent"` // coordinator → node
	BytesRecv  int64  `json:"bytesRecv"` // node → coordinator
	FramesSent int64  `json:"framesSent"`
	FramesRecv int64  `json:"framesRecv"`
	Exchanges  int64  `json:"exchanges"` // superstep completions reported
	Load       int64  `json:"load"`      // projection operations executed on the node
	Jobs       int64  `json:"jobs"`      // finished rank reports
}

// EngineStats is the /v1/stats "engine" section: which backend the
// service runs by default, at what width, and what every backend that has
// actually run has done so far.
type EngineStats struct {
	Backend  string                        `json:"backend"` // service default
	Workers  int                           `json:"workers"` // default ranks/workers per request
	Backends map[string]EngineBackendStats `json:"backends"`
	// Dist lists the distributed backend's worker nodes, present only
	// when the process is wired to a dist cluster.
	Dist []DistNodeStats `json:"dist,omitempty"`
}

// engineTracker accumulates per-backend engine counters. It is touched
// once per computed estimate — a rate bounded by the worker pool, not by
// request throughput — so a single mutex is plenty.
type engineTracker struct {
	mu     sync.Mutex
	byName map[string]*EngineBackendStats
}

func newEngineTracker() *engineTracker {
	return &engineTracker{byName: make(map[string]*EngineBackendStats)}
}

// record folds one finished run's accumulated trial stats into the
// backend's counters.
func (t *engineTracker) record(st core.Stats) {
	t.mu.Lock()
	b := t.byName[st.Backend]
	if b == nil {
		b = &EngineBackendStats{}
		t.byName[st.Backend] = b
	}
	b.Runs++
	b.Workers = st.Workers
	b.TotalLoad += st.TotalLoad
	if st.MaxLoad > b.MaxLoad {
		b.MaxLoad = st.MaxLoad
	}
	b.Messages += st.Messages
	b.Steals += st.Steals
	b.Supersteps += st.Supersteps
	t.mu.Unlock()
}

// snapshot copies the per-backend counters for the stats endpoint.
func (t *engineTracker) snapshot() map[string]EngineBackendStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]EngineBackendStats, len(t.byName))
	for name, b := range t.byName {
		out[name] = *b
	}
	return out
}
