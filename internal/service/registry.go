// Package service is the serving layer on top of the color-coding
// estimator: a graph registry that amortizes graph loading across queries,
// a result cache that amortizes whole estimations, and a bounded
// priority-scheduled worker pool that runs them concurrently. cmd/sgserve
// exposes it over HTTP.
package service

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// GraphSpec describes how to obtain a data graph: exactly one of Path,
// Standin, PowerLawN, or RMATScale must be set. Two specs that normalize
// to the same source yield the same registry entry, so repeated
// registrations are free.
type GraphSpec struct {
	// Name optionally overrides the registry name of the graph; it defaults
	// to the name the loader or generator assigns.
	Name string `json:"name,omitempty"`

	// Path loads a SNAP-style whitespace edge list from disk.
	Path string `json:"path,omitempty"`

	// Standin builds the named Table 1 stand-in graph at 1/Scale of the
	// original size (Scale ≤ 0 means 512).
	Standin string `json:"standin,omitempty"`
	Scale   int    `json:"scale,omitempty"`

	// PowerLawN samples a Chung-Lu power-law graph with this many vertices
	// and exponent Alpha (≤ 0 means 1.5).
	PowerLawN int     `json:"powerlaw,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`

	// RMATScale samples an R-MAT graph with 2^RMATScale vertices and
	// EdgeFactor edges per vertex (≤ 0 means 16).
	RMATScale  int `json:"rmat,omitempty"`
	EdgeFactor int `json:"edgeFactor,omitempty"`

	// Seed feeds the generators; ignored for Path.
	Seed int64 `json:"seed,omitempty"`
}

// Generator size limits: the registry's memory budget only evicts graphs
// after they are resident, so the request-controlled generator parameters
// must be bounded up front or one registration OOMs the process before
// the budget applies.
const (
	// MaxPowerLawN caps generated power-law graph sizes (~16.7M vertices).
	MaxPowerLawN = 1 << 24
	// MaxRMATScale caps R-MAT at 2^24 vertices.
	MaxRMATScale = 24
	// MaxEdgeFactor caps R-MAT edges per vertex.
	MaxEdgeFactor = 64
)

// normalize fills defaults and validates that exactly one source is set.
func (sp GraphSpec) normalize() (GraphSpec, error) {
	set := 0
	if sp.Path != "" {
		set++
	}
	if sp.Standin != "" {
		set++
		if sp.Scale <= 0 {
			sp.Scale = 512
		}
	} else {
		sp.Scale = 0
	}
	if sp.PowerLawN > 0 {
		set++
		if sp.PowerLawN > MaxPowerLawN {
			return sp, fmt.Errorf("service: powerlaw size %d exceeds limit %d", sp.PowerLawN, MaxPowerLawN)
		}
		if sp.Alpha <= 0 {
			sp.Alpha = 1.5
		}
	} else {
		sp.PowerLawN = 0
		sp.Alpha = 0
	}
	if sp.RMATScale > 0 {
		set++
		if sp.RMATScale > MaxRMATScale {
			return sp, fmt.Errorf("service: rmat scale %d exceeds limit %d", sp.RMATScale, MaxRMATScale)
		}
		if sp.EdgeFactor <= 0 {
			sp.EdgeFactor = 16
		}
		if sp.EdgeFactor > MaxEdgeFactor {
			return sp, fmt.Errorf("service: rmat edge factor %d exceeds limit %d", sp.EdgeFactor, MaxEdgeFactor)
		}
	} else {
		sp.RMATScale = 0
		sp.EdgeFactor = 0
	}
	if set != 1 {
		return sp, fmt.Errorf("service: graph spec must set exactly one of path, standin, powerlaw, rmat (got %d)", set)
	}
	return sp, nil
}

// sourceKey identifies the graph source irrespective of the registry name,
// so the same edge list registered under two names is loaded once.
func (sp GraphSpec) sourceKey() string {
	switch {
	case sp.Path != "":
		return "path:" + sp.Path
	case sp.Standin != "":
		return fmt.Sprintf("standin:%s/%d@%d", sp.Standin, sp.Scale, sp.Seed)
	case sp.PowerLawN > 0:
		return fmt.Sprintf("powerlaw:%d/%g@%d", sp.PowerLawN, sp.Alpha, sp.Seed)
	default:
		return fmt.Sprintf("rmat:%d/%d@%d", sp.RMATScale, sp.EdgeFactor, sp.Seed)
	}
}

func (sp GraphSpec) build() (*graph.Graph, error) {
	switch {
	case sp.Path != "":
		return graph.LoadEdgeList(sp.Path)
	case sp.Standin != "":
		g, ok := gen.StandinByName(sp.Standin, sp.Scale, sp.Seed)
		if !ok {
			return nil, fmt.Errorf("service: unknown stand-in graph %q (known: %s)",
				sp.Standin, strings.Join(StandinNames(), ", "))
		}
		return g, nil
	case sp.PowerLawN > 0:
		rng := rand.New(rand.NewSource(sp.Seed))
		return gen.PowerLawGraph(fmt.Sprintf("powerlaw%d", sp.PowerLawN), sp.PowerLawN, sp.Alpha, rng), nil
	default:
		rng := rand.New(rand.NewSource(sp.Seed))
		return gen.RMAT(fmt.Sprintf("rmat%d", sp.RMATScale), sp.RMATScale, sp.EdgeFactor, gen.Graph500, rng), nil
	}
}

// Fingerprint hashes the full CSR structure of g (vertex count plus every
// adjacency list) with FNV-1a. It identifies the graph's exact topology in
// result-cache keys, so renaming or re-registering a graph cannot alias
// cached estimates of a different graph.
func Fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	h.Write(buf[:])
	var b4 [4]byte
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(uint32(v))
		binary.LittleEndian.PutUint32(b4[:], uint32(len(ns)))
		h.Write(b4[:])
		for _, w := range ns {
			binary.LittleEndian.PutUint32(b4[:], w)
			h.Write(b4[:])
		}
	}
	return h.Sum64()
}

// approxBytes estimates the resident size of one registry entry: the
// graph's CSR arrays (8-byte offsets per vertex, two 4-byte neighbor
// entries per edge, a 4-byte rank per vertex) plus a flat floor for the
// entry bookkeeping (gentry, map entries, key strings). Without the
// floor, a flood of near-empty graphs would be accounted at ~20 bytes
// each and blow past the byte budget by orders of magnitude.
func approxBytes(g *graph.Graph) int64 {
	const entryOverhead = 512
	return entryOverhead + 8*int64(g.N()+1) + 8*g.M() + 4*int64(g.N())
}

// shardDefaults bounds the shard counts a caller can pick. Sharding by
// hash only pays while shards outnumber cores by a small factor; past
// maxShards the per-shard maps are so sparse the extra indirection is
// pure overhead.
const maxShards = 256

// DefaultShards is the shard count used when a caller leaves it ≤ 0:
// twice the core count, clamped to [8, 32]. Twice the cores keeps the
// collision probability of concurrent hot-path acquisitions low; the
// floor of 8 keeps small machines observably sharded (CI runners included)
// and costs only a few empty maps.
func DefaultShards() int {
	n := 2 * runtime.NumCPU()
	if n < 8 {
		n = 8
	}
	if n > 32 {
		n = 32
	}
	return n
}

func normShards(n int) int {
	if n <= 0 {
		n = DefaultShards()
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// stringShard picks a shard for a string key by FNV-1a.
func stringShard(s string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return int(h.Sum64() % uint64(n))
}

// gentry is one registered graph. refs counts outstanding Handles; an
// entry is evictable only at refs == 0. All mutable fields are guarded by
// the owning shard's mutex; the name index may hold pointers to an entry
// whose shard has since evicted it, so readers must re-check evicted under
// the shard lock.
type gentry struct {
	id          string
	name        string
	names       []string // every name-index key pointing here (id, name, aliases)
	sourceKey   string
	spec        GraphSpec
	g           *graph.Graph
	fingerprint uint64
	bytes       int64
	refs        int
	seq         uint64 // global registration order, for List
	shard       *regShard
	// LRU position: younger entries have larger ticks (per shard).
	lruTick uint64
	// evicted is atomic because it is the one field read across locks:
	// claimName (holding only a name-shard mutex) must recognize an entry
	// that its shard is mid-way through evicting — marked dead but its
	// names not yet dropped — or a registration racing that eviction
	// would fail with a spurious name conflict. All writes happen under
	// the owning shard's mutex; eviction is permanent.
	evicted atomic.Bool
}

// Handle is a reference-counted lease on a registered graph. The graph is
// immutable and safe for concurrent readers; Release must be called when
// done so the registry may evict the entry under memory pressure.
type Handle struct {
	r        *Registry
	e        *gentry
	released bool
	mu       sync.Mutex
}

// Graph returns the held graph.
func (h *Handle) Graph() *graph.Graph { return h.e.g }

// Fingerprint returns the topology fingerprint computed at load time.
func (h *Handle) Fingerprint() uint64 { return h.e.fingerprint }

// ID returns the registry id ("g1", "g2", ...).
func (h *Handle) ID() string { return h.e.id }

// Release returns the lease. Releasing twice is a no-op.
func (h *Handle) Release() {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return
	}
	h.released = true
	h.mu.Unlock()
	h.r.release(h.e)
}

// RegistryStats are the registry's observability counters, rolled up
// across shards.
type RegistryStats struct {
	Graphs      int    `json:"graphs"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budgetBytes"`
	Loads       uint64 `json:"loads"`
	Hits        uint64 `json:"hits"`
	Evictions   uint64 `json:"evictions"`
	Shards      int    `json:"shards"`
	Rebalances  uint64 `json:"rebalances"`
	LockWait
}

// RegistryShardStats is one shard's slice of the registry counters, for
// the /v1/stats shards section: skew across entries reveals hot shards,
// and LockWait reveals whether the shard count is high enough.
type RegistryShardStats struct {
	Graphs      int    `json:"graphs"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budgetBytes"`
	Loads       uint64 `json:"loads"`
	Hits        uint64 `json:"hits"`
	Evictions   uint64 `json:"evictions"`
	LockWait
}

// GraphInfo describes one registered graph for listings and HTTP replies.
type GraphInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Edges       int64   `json:"edges"`
	AvgDeg      float64 `json:"avgDeg"`
	MaxDeg      int     `json:"maxDeg"`
	Bytes       int64   `json:"bytes"`
	Fingerprint string  `json:"fingerprint"`
	Refs        int     `json:"refs"`
}

// regShard owns the entries whose source key hashes to it: their bySrc
// index, their LRU ordering, their byte accounting, and a local budget
// (settled by the rebalancer) that decides where eviction happens.
type regShard struct {
	mu      waitMutex
	budget  int64
	bytes   int64
	tick    uint64
	bySrc   map[string]*gentry
	entries []*gentry // registration order within the shard

	// activity accumulates the bytes of entries acquired since the last
	// rebalance — the demand signal. Resident bytes would be circular:
	// eviction shrinks them, which shrinks the next allotment, which
	// evicts more, converging every shard back to the even split under
	// sustained pressure. Acquisition activity is driven by the workload
	// alone, so a hot shard's allotment tracks its traffic.
	activity int64
	// pinned is the resident bytes of entries with outstanding handles,
	// maintained incrementally on the refs 0↔1 transitions so the
	// rebalancer reads it in O(1) instead of walking the shard's entries
	// under the mutex the hot path contends on.
	pinned int64

	loads     uint64
	hits      uint64
	evictions uint64
}

// nameShard is one stripe of the ref index (id and name both resolve
// here). It is sharded independently of the entry shards because a ref
// string gives no clue which entry shard owns the graph.
type nameShard struct {
	mu waitMutex
	m  map[string]*gentry
}

// Registry loads each graph once and keeps it behind reference-counted
// handles, partitioned across shards by source-key hash so registration,
// lookup, and eviction on different graphs do not contend on one mutex.
// The memory budget is global: each shard evicts its own least-recently-
// used idle entries only while the registry as a whole is over budget and
// the shard is over its local allotment, and a background rebalancer
// re-settles the per-shard allotments proportional to demand so a skewed
// workload is not evicted against an even split. Graphs held by running
// jobs are never evicted out from under them.
//
// Lock ordering: a shard mutex may be taken while holding nothing, and a
// name-shard mutex may be taken while holding a shard mutex — never the
// reverse. Readers resolving a ref therefore release the name shard
// before locking the entry's shard, and must treat an entry that became
// evicted in between as a miss.
type Registry struct {
	budget int64
	bytes  atomic.Int64 // resident bytes across all shards
	nextID atomic.Uint64
	seq    atomic.Uint64
	shards []*regShard
	names  []*nameShard

	rebalances atomic.Uint64
	stop       chan struct{}
	stopOnce   sync.Once
}

// regRebalanceEvery is the cadence of the background budget rebalancer.
const regRebalanceEvery = 500 * time.Millisecond

// NewRegistry returns a registry with the given memory budget in bytes
// (≤ 0 means 1 GiB) split across shards (≤ 0 means DefaultShards). A
// single graph larger than the budget is still admitted; the budget
// bounds what is kept around. Close the registry when done: with more
// than one shard it runs a background budget rebalancer.
func NewRegistry(budgetBytes int64, shards int) *Registry {
	if budgetBytes <= 0 {
		budgetBytes = 1 << 30
	}
	n := normShards(shards)
	r := &Registry{
		budget: budgetBytes,
		shards: make([]*regShard, n),
		names:  make([]*nameShard, n),
		stop:   make(chan struct{}),
	}
	for i := range r.shards {
		r.shards[i] = &regShard{budget: budgetBytes / int64(n), bySrc: make(map[string]*gentry)}
		r.names[i] = &nameShard{m: make(map[string]*gentry)}
	}
	r.shards[0].budget += budgetBytes % int64(n)
	if n > 1 {
		go r.rebalanceLoop()
	}
	return r
}

// Close stops the background rebalancer. The registry stays usable (its
// per-shard budgets simply stop adapting), so a forgotten Close degrades
// gracefully.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
}

func (r *Registry) shardFor(src string) *regShard {
	return r.shards[stringShard(src, len(r.shards))]
}

func (r *Registry) nameShardFor(name string) *nameShard {
	return r.names[stringShard(name, len(r.names))]
}

// claim outcomes for name-index insertion.
type claimResult int

const (
	claimedNew   claimResult = iota // name inserted, now points at e
	claimOurs                       // name already pointed at e
	claimTakenBy                    // name held by a different live entry
)

// claimName atomically points name at e in the ref index unless another
// live entry holds it. An evicted holder is overwritten: its shard is
// between marking it dead and dropping its names, and dropNamesOf only
// deletes keys still pointing at the victim, so the overwrite sticks.
func (r *Registry) claimName(name string, e *gentry) claimResult {
	ns := r.nameShardFor(name)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if cur, ok := ns.m[name]; ok {
		if cur == e {
			return claimOurs
		}
		if !cur.evicted.Load() {
			return claimTakenBy
		}
	}
	ns.m[name] = e
	return claimedNew
}

// dropNamesOf removes every ref-index key of e that still points at e.
// Callers hold e's shard mutex (never a name-shard mutex), matching the
// registry's lock order.
func (r *Registry) dropNamesOf(e *gentry) {
	for _, n := range e.names {
		ns := r.nameShardFor(n)
		ns.mu.Lock()
		if ns.m[n] == e {
			delete(ns.m, n)
		}
		ns.mu.Unlock()
	}
}

// lookupRef reads the ref index. The returned entry may have been evicted
// (or be mid-eviction) — callers must re-check under its shard lock.
func (r *Registry) lookupRef(ref string) (*gentry, bool) {
	ns := r.nameShardFor(ref)
	ns.mu.Lock()
	e, ok := ns.m[ref]
	ns.mu.Unlock()
	return e, ok
}

// Add registers (or re-resolves) the graph described by spec and returns a
// handle to it. The same source is loaded once: a second Add with an
// equivalent spec is a registry hit and returns the existing entry.
func (r *Registry) Add(spec GraphSpec) (*Handle, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	src := spec.sourceKey()
	sh := r.shardFor(src)

	sh.mu.Lock()
	if e, ok := sh.bySrc[src]; ok {
		h, err := r.aliasAcquireLocked(sh, e, spec.Name)
		sh.mu.Unlock()
		return h, err
	}
	sh.mu.Unlock()

	// Load outside the lock: generators and disk reads can take seconds and
	// must not block unrelated lookups.
	g, err := spec.build()
	if err != nil {
		return nil, err
	}
	fp := Fingerprint(g)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.bySrc[src]; ok {
		// Lost a race with a concurrent Add of the same source; the
		// requested name must still become an alias of the winner.
		return r.aliasAcquireLocked(sh, e, spec.Name)
	}
	name := spec.Name
	if name == "" {
		name = g.Name
	}
	e := &gentry{
		sourceKey:   src,
		spec:        spec,
		g:           g,
		fingerprint: fp,
		bytes:       approxBytes(g),
		seq:         r.seq.Add(1),
		shard:       sh,
	}
	// An explicitly requested name that is already taken by a live entry
	// fails the whole registration (checked again at claim time — this
	// early check just avoids burning an id on the common, unraced
	// conflict). A mid-eviction holder is not a conflict: claimName will
	// overwrite it.
	if spec.Name != "" {
		if cur, taken := r.lookupRef(spec.Name); taken && !cur.evicted.Load() {
			return nil, fmt.Errorf("service: graph name %q already in use", name)
		}
	}
	// Claim an auto id, skipping any a user has squatted on with an
	// explicit name ("g3"): the atomic claim makes the skip race-free.
	for {
		e.id = fmt.Sprintf("g%d", r.nextID.Add(1))
		if r.claimName(e.id, e) == claimedNew {
			break
		}
	}
	e.names = append(e.names, e.id)
	if name == "" {
		name = e.id
	}
	if name != e.id {
		switch r.claimName(name, e) {
		case claimedNew:
			e.names = append(e.names, name)
		case claimTakenBy:
			if spec.Name != "" {
				// Lost a naming race after the early check: roll the id
				// claim back and report the conflict. The entry is marked
				// evicted first so a concurrent Acquire that read the id
				// from the ref index treats it as the miss it is.
				e.evicted.Store(true)
				r.dropNamesOf(e)
				return nil, fmt.Errorf("service: graph name %q already in use", name)
			}
			// Auto-derived names (generators reuse display names like
			// "powerlaw500") must not conflict: fall back to the unique id.
			name = e.id
		}
	}
	e.name = name
	sh.bySrc[src] = e
	sh.entries = append(sh.entries, e)
	sh.bytes += e.bytes
	r.bytes.Add(e.bytes)
	sh.loads++
	h := r.acquireLocked(sh, e)
	r.evictShardLocked(sh)
	return h, nil
}

// aliasAcquireLocked resolves a registration that hit an existing entry:
// the requested name (if any) becomes one more alias, and the entry is
// acquired. Callers hold sh.mu.
func (r *Registry) aliasAcquireLocked(sh *regShard, e *gentry, name string) (*Handle, error) {
	if name != "" && name != e.name {
		switch r.claimName(name, e) {
		case claimedNew:
			e.names = append(e.names, name)
		case claimTakenBy:
			return nil, fmt.Errorf("service: graph name %q already in use", name)
		}
	}
	sh.hits++
	return r.acquireLocked(sh, e), nil
}

// Acquire resolves a registered graph by id or name. A lookup that races
// an eviction retries once: the name may resolve to a freshly re-
// registered entry.
func (r *Registry) Acquire(ref string) (*Handle, bool) {
	for attempt := 0; attempt < 2; attempt++ {
		e, ok := r.lookupRef(ref)
		if !ok {
			return nil, false
		}
		sh := e.shard
		sh.mu.Lock()
		if e.evicted.Load() {
			sh.mu.Unlock()
			continue
		}
		sh.hits++
		h := r.acquireLocked(sh, e)
		sh.mu.Unlock()
		return h, true
	}
	return nil, false
}

func (r *Registry) acquireLocked(sh *regShard, e *gentry) *Handle {
	e.refs++
	if e.refs == 1 {
		sh.pinned += e.bytes
	}
	sh.tick++
	e.lruTick = sh.tick
	sh.activity += e.bytes
	return &Handle{r: r, e: e}
}

func (r *Registry) release(e *gentry) {
	sh := e.shard
	sh.mu.Lock()
	e.refs--
	if e.refs == 0 {
		sh.pinned -= e.bytes
	}
	r.evictShardLocked(sh)
	sh.mu.Unlock()
}

// evictShardLocked drops this shard's least-recently-used idle entries
// while the registry as a whole is over its global budget and the shard is
// over its local allotment (or until nothing here is evictable). The
// global condition means a shard with free budget headroom never evicts
// just because its neighbors are full; the local condition means pressure
// on one shard cannot evict another shard's graphs — each shard only ever
// evicts its own. Every ref-index alias of a victim is removed, so an
// evicted entry (its graph released for GC) can never be resolved again,
// and dead entries are compacted out of the registration list so
// long-lived registries don't scan tombstones.
func (r *Registry) evictShardLocked(sh *regShard) {
	evicted := false
	for r.bytes.Load() > r.budget && sh.bytes > sh.budget {
		var victim *gentry
		for _, e := range sh.entries {
			if e.evicted.Load() || e.refs > 0 {
				continue
			}
			if victim == nil || e.lruTick < victim.lruTick {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		victim.evicted.Store(true)
		victim.g = nil
		sh.bytes -= victim.bytes
		r.bytes.Add(-victim.bytes)
		delete(sh.bySrc, victim.sourceKey)
		r.dropNamesOf(victim)
		sh.evictions++
		evicted = true
	}
	if evicted {
		live := sh.entries[:0]
		for _, e := range sh.entries {
			if !e.evicted.Load() {
				live = append(live, e)
			}
		}
		for i := len(live); i < len(sh.entries); i++ {
			sh.entries[i] = nil
		}
		sh.entries = live
	}
}

// rebalanceLoop periodically re-settles the per-shard budget allotments.
func (r *Registry) rebalanceLoop() {
	t := time.NewTicker(regRebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.rebalance()
		}
	}
}

// rebalance redistributes the global budget across shards: each shard is
// allotted its pinned bytes (entries with outstanding handles, which it
// could not evict anyway) plus a share of the remaining budget
// proportional to its acquisition activity since the last pass (falling
// back to resident bytes on an idle interval, so a quiet system keeps
// allotments matching what is loaded), with a floor of 1/(4·shards) so a
// cold shard can always admit new graphs without immediately evicting
// them. Covering pinned bytes first is what preserves the global budget
// contract: when one shard's residents are all referenced, the
// unevictable overhang shrinks every other shard's allotment, so their
// idle entries are evicted instead of the registry sitting over budget
// until the pins release — which is what the unsharded registry's global
// LRU did. After the new allotments land, shards over theirs evict (only
// while the registry is globally over budget) — so under a skewed
// workload the busy shard inherits the idle shards' headroom instead of
// thrashing against an even split.
func (r *Registry) rebalance() {
	n := len(r.shards)
	demand := make([]int64, n)
	resident := make([]int64, n)
	pinned := make([]int64, n)
	var total, totalResident, totalPinned int64
	for i, sh := range r.shards {
		sh.mu.Lock()
		demand[i] = sh.activity
		sh.activity = 0
		resident[i] = sh.bytes
		pinned[i] = sh.pinned
		sh.mu.Unlock()
		total += demand[i]
		totalResident += resident[i]
		totalPinned += pinned[i]
	}
	if total == 0 {
		demand, total = resident, totalResident
	}
	floor := r.budget / int64(4*n)
	if floor < 1 {
		floor = 1
	}
	avail := r.budget - totalPinned - int64(n)*floor
	if avail < 0 {
		avail = 0
	}
	for i, sh := range r.shards {
		b := pinned[i] + floor
		if total > 0 {
			b += int64(float64(avail) * float64(demand[i]) / float64(total))
		} else {
			b += avail / int64(n)
		}
		sh.mu.Lock()
		sh.budget = b
		r.evictShardLocked(sh)
		sh.mu.Unlock()
	}
	r.rebalances.Add(1)
}

// List returns the live entries in registration order.
func (r *Registry) List() []GraphInfo {
	type seqInfo struct {
		seq  uint64
		info GraphInfo
	}
	var all []seqInfo
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.evicted.Load() {
				continue
			}
			all = append(all, seqInfo{seq: e.seq, info: infoLocked(e)})
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	var out []GraphInfo
	for _, si := range all {
		out = append(out, si.info)
	}
	return out
}

// Info returns the listing entry for one graph by id or name.
func (r *Registry) Info(ref string) (GraphInfo, bool) {
	e, ok := r.lookupRef(ref)
	if !ok {
		return GraphInfo{}, false
	}
	sh := e.shard
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.evicted.Load() {
		return GraphInfo{}, false
	}
	return infoLocked(e), true
}

func infoLocked(e *gentry) GraphInfo {
	st := e.g.Stats()
	return GraphInfo{
		ID:          e.id,
		Name:        e.name,
		Nodes:       st.Nodes,
		Edges:       st.Edges,
		AvgDeg:      st.AvgDeg,
		MaxDeg:      st.MaxDeg,
		Bytes:       e.bytes,
		Fingerprint: fmt.Sprintf("%016x", e.fingerprint),
		Refs:        e.refs,
	}
}

// Stats returns the registry counters rolled up across shards.
func (r *Registry) Stats() RegistryStats {
	st := RegistryStats{
		BudgetBytes: r.budget,
		Shards:      len(r.shards),
		Rebalances:  r.rebalances.Load(),
	}
	for _, ss := range r.ShardStats() {
		st.Graphs += ss.Graphs
		st.Bytes += ss.Bytes
		st.Loads += ss.Loads
		st.Hits += ss.Hits
		st.Evictions += ss.Evictions
		st.LockWait.add(ss.LockWait)
	}
	for _, ns := range r.names {
		st.LockWait.add(ns.mu.wait())
	}
	return st
}

// ShardStats returns each shard's slice of the counters, in shard order.
func (r *Registry) ShardStats() []RegistryShardStats {
	out := make([]RegistryShardStats, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.Lock()
		ss := RegistryShardStats{
			Bytes:       sh.bytes,
			BudgetBytes: sh.budget,
			Loads:       sh.loads,
			Hits:        sh.hits,
			Evictions:   sh.evictions,
		}
		for _, e := range sh.entries {
			if !e.evicted.Load() {
				ss.Graphs++
			}
		}
		sh.mu.Unlock()
		ss.LockWait = sh.mu.wait()
		out[i] = ss
	}
	return out
}

// StandinNames returns the known stand-in graph names, for error messages.
func StandinNames() []string {
	specs := gen.StandinSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
