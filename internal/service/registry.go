// Package service is the serving layer on top of the color-coding
// estimator: a graph registry that amortizes graph loading across queries,
// a result cache that amortizes whole estimations, and a bounded
// priority-scheduled worker pool that runs them concurrently. cmd/sgserve
// exposes it over HTTP.
package service

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// GraphSpec describes how to obtain a data graph: exactly one of Path,
// Standin, PowerLawN, or RMATScale must be set. Two specs that normalize
// to the same source yield the same registry entry, so repeated
// registrations are free.
type GraphSpec struct {
	// Name optionally overrides the registry name of the graph; it defaults
	// to the name the loader or generator assigns.
	Name string `json:"name,omitempty"`

	// Path loads a SNAP-style whitespace edge list from disk.
	Path string `json:"path,omitempty"`

	// Standin builds the named Table 1 stand-in graph at 1/Scale of the
	// original size (Scale ≤ 0 means 512).
	Standin string `json:"standin,omitempty"`
	Scale   int    `json:"scale,omitempty"`

	// PowerLawN samples a Chung-Lu power-law graph with this many vertices
	// and exponent Alpha (≤ 0 means 1.5).
	PowerLawN int     `json:"powerlaw,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`

	// RMATScale samples an R-MAT graph with 2^RMATScale vertices and
	// EdgeFactor edges per vertex (≤ 0 means 16).
	RMATScale  int `json:"rmat,omitempty"`
	EdgeFactor int `json:"edgeFactor,omitempty"`

	// Seed feeds the generators; ignored for Path.
	Seed int64 `json:"seed,omitempty"`
}

// Generator size limits: the registry's memory budget only evicts graphs
// after they are resident, so the request-controlled generator parameters
// must be bounded up front or one registration OOMs the process before
// the budget applies.
const (
	// MaxPowerLawN caps generated power-law graph sizes (~16.7M vertices).
	MaxPowerLawN = 1 << 24
	// MaxRMATScale caps R-MAT at 2^24 vertices.
	MaxRMATScale = 24
	// MaxEdgeFactor caps R-MAT edges per vertex.
	MaxEdgeFactor = 64
)

// normalize fills defaults and validates that exactly one source is set.
func (sp GraphSpec) normalize() (GraphSpec, error) {
	set := 0
	if sp.Path != "" {
		set++
	}
	if sp.Standin != "" {
		set++
		if sp.Scale <= 0 {
			sp.Scale = 512
		}
	} else {
		sp.Scale = 0
	}
	if sp.PowerLawN > 0 {
		set++
		if sp.PowerLawN > MaxPowerLawN {
			return sp, fmt.Errorf("service: powerlaw size %d exceeds limit %d", sp.PowerLawN, MaxPowerLawN)
		}
		if sp.Alpha <= 0 {
			sp.Alpha = 1.5
		}
	} else {
		sp.PowerLawN = 0
		sp.Alpha = 0
	}
	if sp.RMATScale > 0 {
		set++
		if sp.RMATScale > MaxRMATScale {
			return sp, fmt.Errorf("service: rmat scale %d exceeds limit %d", sp.RMATScale, MaxRMATScale)
		}
		if sp.EdgeFactor <= 0 {
			sp.EdgeFactor = 16
		}
		if sp.EdgeFactor > MaxEdgeFactor {
			return sp, fmt.Errorf("service: rmat edge factor %d exceeds limit %d", sp.EdgeFactor, MaxEdgeFactor)
		}
	} else {
		sp.RMATScale = 0
		sp.EdgeFactor = 0
	}
	if set != 1 {
		return sp, fmt.Errorf("service: graph spec must set exactly one of path, standin, powerlaw, rmat (got %d)", set)
	}
	return sp, nil
}

// sourceKey identifies the graph source irrespective of the registry name,
// so the same edge list registered under two names is loaded once.
func (sp GraphSpec) sourceKey() string {
	switch {
	case sp.Path != "":
		return "path:" + sp.Path
	case sp.Standin != "":
		return fmt.Sprintf("standin:%s/%d@%d", sp.Standin, sp.Scale, sp.Seed)
	case sp.PowerLawN > 0:
		return fmt.Sprintf("powerlaw:%d/%g@%d", sp.PowerLawN, sp.Alpha, sp.Seed)
	default:
		return fmt.Sprintf("rmat:%d/%d@%d", sp.RMATScale, sp.EdgeFactor, sp.Seed)
	}
}

func (sp GraphSpec) build() (*graph.Graph, error) {
	switch {
	case sp.Path != "":
		return graph.LoadEdgeList(sp.Path)
	case sp.Standin != "":
		g, ok := gen.StandinByName(sp.Standin, sp.Scale, sp.Seed)
		if !ok {
			return nil, fmt.Errorf("service: unknown stand-in graph %q (known: %s)",
				sp.Standin, strings.Join(StandinNames(), ", "))
		}
		return g, nil
	case sp.PowerLawN > 0:
		rng := rand.New(rand.NewSource(sp.Seed))
		return gen.PowerLawGraph(fmt.Sprintf("powerlaw%d", sp.PowerLawN), sp.PowerLawN, sp.Alpha, rng), nil
	default:
		rng := rand.New(rand.NewSource(sp.Seed))
		return gen.RMAT(fmt.Sprintf("rmat%d", sp.RMATScale), sp.RMATScale, sp.EdgeFactor, gen.Graph500, rng), nil
	}
}

// Fingerprint hashes the full CSR structure of g (vertex count plus every
// adjacency list) with FNV-1a. It identifies the graph's exact topology in
// result-cache keys, so renaming or re-registering a graph cannot alias
// cached estimates of a different graph.
func Fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	h.Write(buf[:])
	var b4 [4]byte
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(uint32(v))
		binary.LittleEndian.PutUint32(b4[:], uint32(len(ns)))
		h.Write(b4[:])
		for _, w := range ns {
			binary.LittleEndian.PutUint32(b4[:], w)
			h.Write(b4[:])
		}
	}
	return h.Sum64()
}

// approxBytes estimates the resident size of one registry entry: the
// graph's CSR arrays (8-byte offsets per vertex, two 4-byte neighbor
// entries per edge, a 4-byte rank per vertex) plus a flat floor for the
// entry bookkeeping (gentry, map entries, key strings). Without the
// floor, a flood of near-empty graphs would be accounted at ~20 bytes
// each and blow past the byte budget by orders of magnitude.
func approxBytes(g *graph.Graph) int64 {
	const entryOverhead = 512
	return entryOverhead + 8*int64(g.N()+1) + 8*g.M() + 4*int64(g.N())
}

// gentry is one registered graph. refs counts outstanding Handles; an
// entry is evictable only at refs == 0.
type gentry struct {
	id          string
	name        string
	names       []string // every byRef key pointing here (id, name, aliases)
	sourceKey   string
	spec        GraphSpec
	g           *graph.Graph
	fingerprint uint64
	bytes       int64
	refs        int
	// LRU position: younger entries are later in Registry.lru.
	lruTick uint64
	evicted bool
}

// Handle is a reference-counted lease on a registered graph. The graph is
// immutable and safe for concurrent readers; Release must be called when
// done so the registry may evict the entry under memory pressure.
type Handle struct {
	r        *Registry
	e        *gentry
	released bool
	mu       sync.Mutex
}

// Graph returns the held graph.
func (h *Handle) Graph() *graph.Graph { return h.e.g }

// Fingerprint returns the topology fingerprint computed at load time.
func (h *Handle) Fingerprint() uint64 { return h.e.fingerprint }

// ID returns the registry id ("g1", "g2", ...).
func (h *Handle) ID() string { return h.e.id }

// Release returns the lease. Releasing twice is a no-op.
func (h *Handle) Release() {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return
	}
	h.released = true
	h.mu.Unlock()
	h.r.release(h.e)
}

// RegistryStats are the registry's observability counters.
type RegistryStats struct {
	Graphs      int    `json:"graphs"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budgetBytes"`
	Loads       uint64 `json:"loads"`
	Hits        uint64 `json:"hits"`
	Evictions   uint64 `json:"evictions"`
}

// GraphInfo describes one registered graph for listings and HTTP replies.
type GraphInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Edges       int64   `json:"edges"`
	AvgDeg      float64 `json:"avgDeg"`
	MaxDeg      int     `json:"maxDeg"`
	Bytes       int64   `json:"bytes"`
	Fingerprint string  `json:"fingerprint"`
	Refs        int     `json:"refs"`
}

// Registry loads each graph once and keeps it behind reference-counted
// handles. When the resident bytes exceed the budget, least-recently-used
// entries with no outstanding handles are evicted; graphs held by running
// jobs are never evicted out from under them.
type Registry struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	nextID  int
	tick    uint64
	bySrc   map[string]*gentry
	byRef   map[string]*gentry // id and name both resolve here
	entries []*gentry          // registration order, for List

	loads     uint64
	hits      uint64
	evictions uint64
}

// NewRegistry returns a registry with the given memory budget in bytes
// (≤ 0 means 1 GiB). A single graph larger than the budget is still
// admitted; the budget bounds what is kept around.
func NewRegistry(budgetBytes int64) *Registry {
	if budgetBytes <= 0 {
		budgetBytes = 1 << 30
	}
	return &Registry{
		budget: budgetBytes,
		bySrc:  make(map[string]*gentry),
		byRef:  make(map[string]*gentry),
	}
}

// Add registers (or re-resolves) the graph described by spec and returns a
// handle to it. The same source is loaded once: a second Add with an
// equivalent spec is a registry hit and returns the existing entry.
func (r *Registry) Add(spec GraphSpec) (*Handle, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	src := spec.sourceKey()

	r.mu.Lock()
	if e, ok := r.bySrc[src]; ok {
		defer r.mu.Unlock()
		if err := r.aliasLocked(e, spec.Name); err != nil {
			return nil, err
		}
		r.hits++
		return r.acquireLocked(e), nil
	}
	r.mu.Unlock()

	// Load outside the lock: generators and disk reads can take seconds and
	// must not block unrelated lookups.
	g, err := spec.build()
	if err != nil {
		return nil, err
	}
	fp := Fingerprint(g)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.bySrc[src]; ok {
		// Lost a race with a concurrent Add of the same source; the
		// requested name must still become an alias of the winner.
		if err := r.aliasLocked(e, spec.Name); err != nil {
			return nil, err
		}
		r.hits++
		return r.acquireLocked(e), nil
	}
	name := spec.Name
	if name == "" {
		name = g.Name
	}
	if other, taken := r.byRef[name]; taken && other.sourceKey != src {
		if spec.Name != "" {
			return nil, fmt.Errorf("service: graph name %q already in use", name)
		}
		// Auto-derived names (generators reuse display names like
		// "powerlaw500") must not conflict: fall back to the unique id.
		name = ""
	}
	// Skip auto ids a user has squatted on with an explicit name ("g3"):
	// overwriting byRef would silently re-point their name at this graph.
	r.nextID++
	id := fmt.Sprintf("g%d", r.nextID)
	for _, taken := r.byRef[id]; taken; _, taken = r.byRef[id] {
		r.nextID++
		id = fmt.Sprintf("g%d", r.nextID)
	}
	if name == "" {
		name = id
	}
	e := &gentry{
		id:          id,
		name:        name,
		names:       []string{id, name},
		sourceKey:   src,
		spec:        spec,
		g:           g,
		fingerprint: fp,
		bytes:       approxBytes(g),
	}
	r.bySrc[src] = e
	r.byRef[e.id] = e
	r.byRef[name] = e
	r.entries = append(r.entries, e)
	r.bytes += e.bytes
	r.loads++
	h := r.acquireLocked(e)
	r.evictLocked()
	return h, nil
}

// Acquire resolves a registered graph by id or name.
func (r *Registry) Acquire(ref string) (*Handle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byRef[ref]
	if !ok {
		return nil, false
	}
	r.hits++
	return r.acquireLocked(e), true
}

// aliasLocked makes name an additional byRef alias of e. Idempotent when
// the alias already points here; an alias held by a different entry is a
// conflict. An empty name is a no-op.
func (r *Registry) aliasLocked(e *gentry, name string) error {
	if name == "" || name == e.name {
		return nil
	}
	if other, taken := r.byRef[name]; taken {
		if other != e {
			return fmt.Errorf("service: graph name %q already in use", name)
		}
		return nil
	}
	r.byRef[name] = e
	e.names = append(e.names, name)
	return nil
}

func (r *Registry) acquireLocked(e *gentry) *Handle {
	e.refs++
	r.tick++
	e.lruTick = r.tick
	return &Handle{r: r, e: e}
}

func (r *Registry) release(e *gentry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.refs--
	r.evictLocked()
}

// evictLocked drops least-recently-used idle entries until resident bytes
// fit the budget (or nothing more is evictable). Every byRef alias of a
// victim is removed, so an evicted entry (its graph released for GC) can
// never be resolved again, and dead entries are compacted out of the
// registration list so long-lived registries don't scan tombstones.
func (r *Registry) evictLocked() {
	evicted := false
	for r.bytes > r.budget {
		var victim *gentry
		for _, e := range r.entries {
			if e.evicted || e.refs > 0 {
				continue
			}
			if victim == nil || e.lruTick < victim.lruTick {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		victim.evicted = true
		victim.g = nil
		r.bytes -= victim.bytes
		delete(r.bySrc, victim.sourceKey)
		for _, n := range victim.names {
			if r.byRef[n] == victim {
				delete(r.byRef, n)
			}
		}
		r.evictions++
		evicted = true
	}
	if evicted {
		live := r.entries[:0]
		for _, e := range r.entries {
			if !e.evicted {
				live = append(live, e)
			}
		}
		for i := len(live); i < len(r.entries); i++ {
			r.entries[i] = nil
		}
		r.entries = live
	}
}

// List returns the live entries in registration order.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []GraphInfo
	for _, e := range r.entries {
		if e.evicted {
			continue
		}
		out = append(out, r.infoLocked(e))
	}
	return out
}

// Info returns the listing entry for one graph by id or name.
func (r *Registry) Info(ref string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byRef[ref]
	if !ok {
		return GraphInfo{}, false
	}
	return r.infoLocked(e), true
}

func (r *Registry) infoLocked(e *gentry) GraphInfo {
	st := e.g.Stats()
	return GraphInfo{
		ID:          e.id,
		Name:        e.name,
		Nodes:       st.Nodes,
		Edges:       st.Edges,
		AvgDeg:      st.AvgDeg,
		MaxDeg:      st.MaxDeg,
		Bytes:       e.bytes,
		Fingerprint: fmt.Sprintf("%016x", e.fingerprint),
		Refs:        e.refs,
	}
}

// Stats returns the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.entries {
		if !e.evicted {
			n++
		}
	}
	return RegistryStats{
		Graphs:      n,
		Bytes:       r.bytes,
		BudgetBytes: r.budget,
		Loads:       r.loads,
		Hits:        r.hits,
		Evictions:   r.evictions,
	}
}

// StandinNames returns the known stand-in graph names, for error messages.
func StandinNames() []string {
	specs := gen.StandinSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
