package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestReadyzReportsHandoffReplay: /readyz flips to 503 (with Retry-After)
// exactly while a handoff import replay is in flight, and back to 200
// when it drains — the signal peers and routers use to stop preferring a
// replica mid-warm. Driven via the counter directly: the HTTP import path
// is exercised end to end by the external cluster tests.
func TestReadyzReportsHandoffReplay(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	rec := httptest.NewRecorder()
	s.handleReadyz(rec, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("idle /readyz = %d, want 200", rec.Code)
	}

	s.handoffActive.Add(1)
	rec = httptest.NewRecorder()
	s.handleReadyz(rec, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during handoff = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("Retry-After = %q, want %q", got, retryAfterSeconds)
	}

	s.handoffActive.Add(-1)
	rec = httptest.NewRecorder()
	s.handleReadyz(rec, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz after handoff = %d, want 200", rec.Code)
	}
}

// TestShedLoad503CarriesRetryAfter: the load-shedding errors are the
// other 503 source; both must tell clients when to come back.
func TestShedLoad503CarriesRetryAfter(t *testing.T) {
	for _, err := range []error{ErrQueueFull, ErrClosed} {
		rec := httptest.NewRecorder()
		writeError(rec, err)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%v → %d, want 503", err, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != retryAfterSeconds {
			t.Errorf("%v: Retry-After = %q, want %q", err, got, retryAfterSeconds)
		}
	}
}
