package service_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/service"
)

func key(i int) service.TrialKey {
	return service.TrialKey{Graph: uint64(i), Query: "k3:6:5:3", Seed: 1, Ranks: 4}
}

// run builds a deterministic trial run for key i holding n trials: trial
// t's count is i*1000+t, so prefixes are checkable.
func run(i, n int) service.TrialRun {
	r := service.TrialRun{Counts: make([]uint64, n), Stats: make([]core.Stats, n)}
	for t := range r.Counts {
		r.Counts[t] = uint64(i*1000 + t)
	}
	return r
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := service.NewCache(2, 1)
	c.Put(key(1), run(1, 3))
	c.Put(key(2), run(2, 3))
	if _, ok := c.Get(key(1), 0); !ok { // refresh 1: now 2 is the LRU entry
		t.Fatal("key 1 missing")
	}
	c.Put(key(3), run(3, 3)) // evicts 2, not 1
	if _, ok := c.Get(key(2), 0); ok {
		t.Error("key 2 should have been evicted as least recently used")
	}
	if v, ok := c.Get(key(1), 0); !ok || v.Counts[0] != 1000 {
		t.Errorf("key 1 should survive; got %+v ok=%v", v, ok)
	}
	if v, ok := c.Get(key(3), 0); !ok || v.Counts[0] != 3000 {
		t.Errorf("key 3 should be present; got %+v ok=%v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Trials != 6 {
		t.Errorf("trials = %d, want 6 across 2 entries", st.Trials)
	}
}

// TestCacheMergeKeepsLongestRun is the trial-granular contract: a longer
// run extends the entry (counted as an extension), an equal or shorter
// one only refreshes recency — the resident prefix is already identical
// by determinism, so nothing is overwritten or truncated.
func TestCacheMergeKeepsLongestRun(t *testing.T) {
	c := service.NewCache(4, 1)
	c.Put(key(1), run(1, 3))
	c.Put(key(1), run(1, 8)) // extension: 3 → 8 trials
	if v, _ := c.Get(key(1), 0); v.Len() != 8 {
		t.Fatalf("entry holds %d trials, want 8 after extension", v.Len())
	}
	c.Put(key(1), run(1, 5)) // shorter re-put must not shrink the entry
	v, _ := c.Get(key(1), 0)
	if v.Len() != 8 {
		t.Fatalf("entry holds %d trials, want 8 after shorter re-put", v.Len())
	}
	for t2, want := range v.Counts {
		if v.Counts[t2] != uint64(1000+t2) {
			t.Fatalf("trial %d count %d, want %d", t2, v.Counts[t2], want)
		}
	}
	st := c.Stats()
	if st.Extended != 1 {
		t.Errorf("extended = %d, want exactly 1 (the 3→8 grow)", st.Extended)
	}
	if st.Entries != 1 || st.Trials != 8 {
		t.Errorf("entries/trials = %d/%d, want 1/8", st.Entries, st.Trials)
	}
}

// TestCacheGetPrefixLimit: a bounded Get copies only the requested
// prefix — a request never pays for trials past its own bound.
func TestCacheGetPrefixLimit(t *testing.T) {
	c := service.NewCache(4, 1)
	c.Put(key(1), run(1, 10))
	v, ok := c.Get(key(1), 4)
	if !ok || v.Len() != 4 || len(v.Stats) != 4 {
		t.Fatalf("limited Get returned %d trials, want 4", v.Len())
	}
	if v.Counts[3] != 1003 {
		t.Errorf("prefix content wrong: %v", v.Counts)
	}
	if v, _ := c.Get(key(1), 99); v.Len() != 10 {
		t.Errorf("over-limit Get returned %d trials, want all 10", v.Len())
	}
}

// TestCacheConcurrent hammers one cache from many goroutines with mixed
// lengths; run under -race. It checks the counters stay consistent, the
// capacity bound holds, and entries only ever grow.
func TestCacheConcurrent(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
		keys    = 24 // working set fits the cache, so hits occur
		cap     = 32
	)
	c := service.NewCache(cap, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := key((w*31 + i*7) % keys)
				n := 1 + (w+i)%4
				if v, ok := c.Get(k, 0); ok {
					if v.Counts[0] != uint64(int(k.Graph)*1000) {
						t.Errorf("cache returned wrong value for key %d: %v", k.Graph, v.Counts)
						return
					}
				} else {
					c.Put(k, run(int(k.Graph), n))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > cap {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, cap)
	}
	if st.Hits+st.Misses != workers*ops {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, workers*ops)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
}

// TestCacheIsolatesSlices checks callers and the cache never share
// backing arrays in either direction — counts and per-trial stats both.
func TestCacheIsolatesSlices(t *testing.T) {
	c := service.NewCache(4, 1)
	orig := service.TrialRun{
		Counts: []uint64{1, 2, 3},
		Stats:  []core.Stats{{Loads: []int64{7}}, {}, {}},
	}
	c.Put(key(1), orig)
	orig.Counts[0] = 99 // caller mutates after Put
	orig.Stats[0].Loads[0] = 99
	got, ok := c.Get(key(1), 0)
	if !ok || got.Counts[0] != 1 || got.Stats[0].Loads[0] != 7 {
		t.Errorf("Put did not copy run: got %+v", got)
	}
	got.Counts[1] = 77 // caller mutates a hit
	again, _ := c.Get(key(1), 0)
	if again.Counts[1] != 2 {
		t.Errorf("Get did not copy Counts: got %v", again.Counts)
	}
}

func TestQuerySignature(t *testing.T) {
	// Insertion order must not matter; topology and labels must.
	a := query.FromEdges("a", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	b := query.FromEdges("b", 4, [][2]int{{3, 0}, {2, 3}, {0, 1}, {2, 1}})
	if service.QuerySignature(a) != service.QuerySignature(b) {
		t.Errorf("same labeled graph, different signatures:\n%s\n%s",
			service.QuerySignature(a), service.QuerySignature(b))
	}
	c := query.FromEdges("c", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 3}})
	if service.QuerySignature(a) == service.QuerySignature(c) {
		t.Error("different topologies share a signature")
	}
	d := query.FromEdges("d", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if service.QuerySignature(a) == service.QuerySignature(d) {
		t.Error("different node counts share a signature")
	}
}
