package service_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/coloring"
	"repro/internal/query"
	"repro/internal/service"
)

func key(i int) service.Key {
	return service.Key{Graph: uint64(i), Query: "k3:6:5:3", Trials: 3, Seed: 1, Ranks: 4}
}

func est(i int) coloring.Estimate {
	return coloring.Estimate{Query: fmt.Sprintf("q%d", i), Matches: float64(i)}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := service.NewCache(2, 1)
	c.Put(key(1), est(1))
	c.Put(key(2), est(2))
	if _, ok := c.Get(key(1)); !ok { // refresh 1: now 2 is the LRU entry
		t.Fatal("key 1 missing")
	}
	c.Put(key(3), est(3)) // evicts 2, not 1
	if _, ok := c.Get(key(2)); ok {
		t.Error("key 2 should have been evicted as least recently used")
	}
	if v, ok := c.Get(key(1)); !ok || v.Query != "q1" {
		t.Errorf("key 1 should survive; got %+v ok=%v", v, ok)
	}
	if v, ok := c.Get(key(3)); !ok || v.Query != "q3" {
		t.Errorf("key 3 should be present; got %+v ok=%v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := service.NewCache(2, 1)
	c.Put(key(1), est(1))
	c.Put(key(1), est(9))
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 after double put", st.Entries)
	}
	if v, _ := c.Get(key(1)); v.Query != "q9" {
		t.Errorf("re-put did not refresh value: got %q", v.Query)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run under
// -race. It checks the counters stay consistent and the capacity bound
// holds.
func TestCacheConcurrent(t *testing.T) {
	const (
		workers = 8
		ops     = 2000
		keys    = 24 // working set fits the cache, so hits occur
		cap     = 32
	)
	c := service.NewCache(cap, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := key((w*31 + i*7) % keys)
				if v, ok := c.Get(k); ok {
					if v.Matches != float64(int(k.Graph)) {
						t.Errorf("cache returned wrong value for key %d: %v", k.Graph, v.Matches)
						return
					}
				} else {
					c.Put(k, est(int(k.Graph)))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > cap {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, cap)
	}
	if st.Hits+st.Misses != workers*ops {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, workers*ops)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
}

// TestCacheIsolatesSlices checks callers and the cache never share
// Counts backing arrays in either direction.
func TestCacheIsolatesSlices(t *testing.T) {
	c := service.NewCache(4, 1)
	orig := coloring.Estimate{Query: "q", Counts: []uint64{1, 2, 3}}
	c.Put(key(1), orig)
	orig.Counts[0] = 99 // caller mutates after Put
	got, ok := c.Get(key(1))
	if !ok || got.Counts[0] != 1 {
		t.Errorf("Put did not copy Counts: got %v", got.Counts)
	}
	got.Counts[1] = 77 // caller mutates a hit
	again, _ := c.Get(key(1))
	if again.Counts[1] != 2 {
		t.Errorf("Get did not copy Counts: got %v", again.Counts)
	}
}

func TestQuerySignature(t *testing.T) {
	// Insertion order must not matter; topology and labels must.
	a := query.FromEdges("a", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	b := query.FromEdges("b", 4, [][2]int{{3, 0}, {2, 3}, {0, 1}, {2, 1}})
	if service.QuerySignature(a) != service.QuerySignature(b) {
		t.Errorf("same labeled graph, different signatures:\n%s\n%s",
			service.QuerySignature(a), service.QuerySignature(b))
	}
	c := query.FromEdges("c", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 3}})
	if service.QuerySignature(a) == service.QuerySignature(c) {
		t.Error("different topologies share a signature")
	}
	d := query.FromEdges("d", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if service.QuerySignature(a) == service.QuerySignature(d) {
		t.Error("different node counts share a signature")
	}
}
