package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	subgraph "repro"
	"repro/internal/service"
)

// TestShardedCacheEquivalence runs the same operation sequence against a
// 1-shard and an 8-shard cache whose working set fits the capacity, and
// checks hits, misses, and returned values agree: sharding changes lock
// structure, not semantics.
func TestShardedCacheEquivalence(t *testing.T) {
	c1 := service.NewCache(64, 1)
	defer c1.Close()
	c8 := service.NewCache(64, 8)
	defer c8.Close()

	for i := 0; i < 48; i++ {
		c1.Put(key(i), run(i, 1+i%4))
		c8.Put(key(i), run(i, 1+i%4))
	}
	for i := 0; i < 48; i++ {
		v1, ok1 := c1.Get(key(i), 0)
		v8, ok8 := c8.Get(key(i), 0)
		if ok1 != ok8 {
			t.Fatalf("key %d: presence differs: 1-shard %v, 8-shard %v", i, ok1, ok8)
		}
		if !reflect.DeepEqual(v1, v8) {
			t.Fatalf("key %d: values differ:\n1-shard %+v\n8-shard %+v", i, v1, v8)
		}
	}
	st1, st8 := c1.Stats(), c8.Stats()
	if st1.Hits != st8.Hits || st1.Misses != st8.Misses || st1.Entries != st8.Entries {
		t.Errorf("counters diverged: 1-shard %+v, 8-shard %+v", st1, st8)
	}
}

// TestShardedRegistryEquivalence registers the same graphs sequentially in
// a 1-shard and an 8-shard registry and checks ids, names, fingerprints,
// and listing order all match.
func TestShardedRegistryEquivalence(t *testing.T) {
	r1 := service.NewRegistry(0, 1)
	defer r1.Close()
	r8 := service.NewRegistry(0, 8)
	defer r8.Close()

	for seed := int64(1); seed <= 6; seed++ {
		sp := plSpec(seed)
		if seed == 3 {
			sp.Name = "named"
		}
		h1, err1 := r1.Add(sp)
		h8, err8 := r8.Add(sp)
		if err1 != nil || err8 != nil {
			t.Fatalf("seed %d: errs %v / %v", seed, err1, err8)
		}
		if h1.ID() != h8.ID() || h1.Fingerprint() != h8.Fingerprint() {
			t.Fatalf("seed %d: 1-shard (%s, %x) vs 8-shard (%s, %x)",
				seed, h1.ID(), h1.Fingerprint(), h8.ID(), h8.Fingerprint())
		}
		h1.Release()
		h8.Release()
	}
	l1, l8 := r1.List(), r8.List()
	if !reflect.DeepEqual(l1, l8) {
		t.Errorf("listings diverged:\n1-shard %+v\n8-shard %+v", l1, l8)
	}
	for _, ref := range []string{"g1", "named", "g6"} {
		a, ok1 := r1.Acquire(ref)
		b, ok8 := r8.Acquire(ref)
		if !ok1 || !ok8 {
			t.Fatalf("ref %q: resolvable 1-shard=%v 8-shard=%v", ref, ok1, ok8)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("ref %q resolves to different graphs", ref)
		}
		a.Release()
		b.Release()
	}
}

// TestServiceShardedBitIdentical is the tentpole acceptance check at the
// service level: the same estimates and batches against a 1-shard and a
// multi-shard service return bit-identical results, cold and cached.
func TestServiceShardedBitIdentical(t *testing.T) {
	newSvc := func(shards int) *subgraph.Service {
		svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 2, Shards: shards})
		t.Cleanup(svc.Close)
		if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "g"}); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	s1, s8 := newSvc(1), newSvc(8)

	reqs := []subgraph.EstimateRequest{
		{Graph: "g", Query: "glet1", Trials: 3, Seed: 7},
		{Graph: "g", Query: "cycle5", Trials: 2, Seed: 1},
		{Graph: "g", Query: "path4", Trials: 2, Seed: 1, Algorithm: "PS"},
		{Graph: "g", Query: "glet1", Trials: 3, Seed: 7}, // repeat: cache-hit path
	}
	for i, req := range reqs {
		a, errA := s1.Estimate(context.Background(), req)
		b, errB := s8.Estimate(context.Background(), req)
		if errA != nil || errB != nil {
			t.Fatalf("req %d: errs %v / %v", i, errA, errB)
		}
		if !sameEstimate(a.Estimate, b.Estimate) {
			t.Fatalf("req %d: estimates diverged:\n1-shard %+v\n8-shard %+v", i, a.Estimate, b.Estimate)
		}
		if a.Cached != b.Cached {
			t.Errorf("req %d: cached flag diverged: %v vs %v", i, a.Cached, b.Cached)
		}
	}

	breq := subgraph.BatchRequest{
		Graph: "g", Seed: 5, Trials: 2,
		Queries: []subgraph.EstimateRequest{{Query: "glet1"}, {Query: "star4"}, {Query: "cycle4"}},
	}
	ia, errA := s1.EstimateBatch(context.Background(), breq)
	ib, errB := s8.EstimateBatch(context.Background(), breq)
	if errA != nil || errB != nil {
		t.Fatalf("batch errs: %v / %v", errA, errB)
	}
	for i := range ia {
		if ia[i].Err != nil || ib[i].Err != nil {
			t.Fatalf("batch item %d: errs %v / %v", i, ia[i].Err, ib[i].Err)
		}
		if !sameEstimate(ia[i].Result.Estimate, ib[i].Result.Estimate) {
			t.Fatalf("batch item %d diverged:\n1-shard %+v\n8-shard %+v", i, ia[i].Result.Estimate, ib[i].Result.Estimate)
		}
	}
}

// TestStatsShardsSection checks /v1/stats exposes the per-shard breakdown:
// a count matching the configured shards and one rollup row per shard with
// the lock-wait counters present.
func TestStatsShardsSection(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1, Shards: 4, CacheCapacity: 64})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	post(t, ts, "/v1/graphs", `{"powerlaw":300,"seed":1,"name":"s"}`, http.StatusOK)
	post(t, ts, "/v1/estimate", `{"graph":"s","query":"path3","trials":1,"seed":1}`, http.StatusOK)

	var st struct {
		Registry struct {
			Shards    int     `json:"shards"`
			LockWaits *uint64 `json:"lockWaits"`
		} `json:"registry"`
		Shards struct {
			Count    int               `json:"count"`
			Registry []json.RawMessage `json:"registry"`
			Cache    []json.RawMessage `json:"cache"`
		} `json:"shards"`
	}
	get(t, ts, "/v1/stats", &st)
	if st.Shards.Count != 4 {
		t.Errorf("shards.count = %d, want 4", st.Shards.Count)
	}
	if len(st.Shards.Registry) != 4 || len(st.Shards.Cache) != 4 {
		t.Errorf("per-shard rows: registry %d, cache %d, want 4 each",
			len(st.Shards.Registry), len(st.Shards.Cache))
	}
	if st.Registry.Shards != 4 {
		t.Errorf("registry.shards = %d, want 4", st.Registry.Shards)
	}
	if st.Registry.LockWaits == nil {
		t.Error("registry rollup is missing the lockWaits counter")
	}
	var row struct {
		Graphs     *int     `json:"graphs"`
		LockWaitMS *float64 `json:"lockWaitMs"`
	}
	if err := json.Unmarshal(st.Shards.Registry[0], &row); err != nil {
		t.Fatal(err)
	}
	if row.Graphs == nil || row.LockWaitMS == nil {
		t.Errorf("shard row missing graphs/lockWaitMs: %s", st.Shards.Registry[0])
	}
}

// TestShardedConcurrentServiceChurn hammers one multi-shard service with
// concurrent estimates over several graphs under -race, then verifies a
// golden request still returns the bit-exact library result.
func TestShardedConcurrentServiceChurn(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 4, Shards: 8})
	t.Cleanup(svc.Close)
	for i := int64(1); i <= 4; i++ {
		if _, err := svc.AddGraph(subgraph.GraphSpec{PowerLawN: 400, Alpha: 1.6, Seed: i}); err != nil {
			t.Fatal(err)
		}
	}
	graphs := svc.Registry().List()
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 8 && err == nil; i++ {
				req := subgraph.EstimateRequest{
					Graph:  graphs[(w+i)%len(graphs)].ID,
					Query:  []string{"path3", "cycle4", "star4"}[(w+i)%3],
					Trials: 1, Seed: int64(i % 3),
				}
				_, err = svc.Estimate(context.Background(), req)
			}
			done <- err
		}(w)
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// Golden check after the churn: served result == direct library call.
	g, ok := subgraph.Standin("enron", 512, 1)
	if !ok {
		t.Fatal("unknown stand-in")
	}
	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "gold"}); err != nil {
		t.Fatal(err)
	}
	q, err := subgraph.QueryByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 3, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Estimate(context.Background(), subgraph.EstimateRequest{
		Graph: "gold", Query: "glet1", Trials: 3, Seed: 7, Ranks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Estimate
	got.Graph = want.Graph // served display name differs by registration
	if !reflect.DeepEqual(want, got) {
		t.Errorf("served estimate diverged from library:\nwant %+v\ngot  %+v", want, got)
	}
}
