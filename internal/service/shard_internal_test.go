package service

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// specOnShard searches seeds for a powerlaw spec whose source key lands on
// the wanted shard of an n-shard registry, so tests can place graphs
// deliberately. Seeds also steer topology, so every returned spec is a
// distinct graph.
func specOnShard(t *testing.T, n, want int, avoid map[int64]bool) GraphSpec {
	t.Helper()
	for seed := int64(1); seed < 10000; seed++ {
		if avoid[seed] {
			continue
		}
		sp := GraphSpec{PowerLawN: 500, Alpha: 1.6, Seed: seed}
		nsp, err := sp.normalize()
		if err != nil {
			t.Fatal(err)
		}
		if stringShard(nsp.sourceKey(), n) == want {
			avoid[seed] = true
			return sp
		}
	}
	t.Fatalf("no powerlaw seed in [1,10000) lands on shard %d/%d", want, n)
	return GraphSpec{}
}

// oneGraphBytes measures the resident size the registry charges for one
// 500-vertex powerlaw graph.
func oneGraphBytes(t *testing.T) int64 {
	t.Helper()
	r := NewRegistry(0, 1)
	defer r.Close()
	h, err := r.Add(GraphSpec{PowerLawN: 500, Alpha: 1.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	return r.Stats().Bytes
}

// TestCrossShardEvictionIsolation is the sharding safety contract: a
// refcounted handle on shard A must never be evicted by pressure on shard
// B — each shard only ever evicts its own idle entries. The test pins one
// graph, floods every shard (the pinned one included) far past the global
// budget from concurrent goroutines, interleaves rebalances, and checks
// the pinned graph survives with its identity intact. Run under -race.
func TestCrossShardEvictionIsolation(t *testing.T) {
	const shards = 4
	one := oneGraphBytes(t)
	r := NewRegistry(3*one+one/2, shards) // fits ~3 graphs; the flood is 24
	defer r.Close()

	taken := make(map[int64]bool)
	pinSpec := specOnShard(t, shards, 0, taken)
	pinned, err := r.Add(pinSpec)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := pinned.Fingerprint()
	wantID := pinned.ID()

	// Flood every shard concurrently: 6 graphs per shard, each acquired,
	// re-acquired, and released, while the pinned handle stays held.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		specs := make([]GraphSpec, 6)
		for i := range specs {
			specs[i] = specOnShard(t, shards, s, taken)
		}
		wg.Add(1)
		go func(specs []GraphSpec) {
			defer wg.Done()
			for _, sp := range specs {
				h, err := r.Add(sp)
				if err != nil {
					t.Error(err)
					return
				}
				if h.Graph() == nil {
					t.Error("held handle has nil graph")
				}
				again, ok := r.Acquire(h.ID())
				if ok {
					if again.Graph() == nil {
						t.Error("re-acquired handle has nil graph")
					}
					again.Release()
				}
				h.Release()
			}
		}(specs)
	}
	// Rebalance concurrently with the flood: budget reshuffling must not
	// touch referenced entries either.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.rebalance()
		}
	}()
	wg.Wait()

	if st := r.Stats(); st.Evictions == 0 {
		t.Fatalf("flood caused no evictions; budget too high for the test: %+v", st)
	}
	if pinned.Graph() == nil {
		t.Fatal("pinned handle's graph was evicted out from under it")
	}
	if pinned.Fingerprint() != wantFP {
		t.Fatal("pinned handle changed identity")
	}
	got, ok := r.Acquire(wantID)
	if !ok {
		t.Fatal("pinned graph no longer resolvable by id")
	}
	if got.Fingerprint() != wantFP {
		t.Error("pinned id resolves to a different graph")
	}
	got.Release()
	pinned.Release()
}

// TestRegistryRebalanceShiftsBudget loads one shard far beyond the even
// split while the others stay empty, and checks the rebalancer hands the
// loaded shard the idle shards' headroom: everything fits the global
// budget, so nothing may be evicted — under static even allotments it
// would be.
func TestRegistryRebalanceShiftsBudget(t *testing.T) {
	const shards = 4
	one := oneGraphBytes(t)
	// Global budget fits 3 graphs, but an even split per shard fits ~0.75.
	r := NewRegistry(3*one+one/2, shards)
	defer r.Close()

	taken := make(map[int64]bool)
	var handles []*Handle
	for i := 0; i < 3; i++ {
		h, err := r.Add(specOnShard(t, shards, 1, taken))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Release()
	}
	r.rebalance()
	st := r.Stats()
	if st.Evictions != 0 {
		t.Errorf("evictions under global budget: %+v", st)
	}
	if st.Graphs != 3 {
		t.Errorf("graphs = %d, want 3 resident", st.Graphs)
	}
	ss := r.ShardStats()
	if ss[1].BudgetBytes <= r.budget/shards {
		t.Errorf("loaded shard budget %d not grown past even split %d", ss[1].BudgetBytes, r.budget/shards)
	}
}

// TestRebalanceRestoresGlobalBudgetAroundPins: when one shard's
// residents are all pinned past its fair share, the unevictable overhang
// must shrink the other shards' allotments so their idle entries get
// evicted — the global budget contract of the unsharded registry, which
// would have evicted the idle graphs no matter which shard held them.
func TestRebalanceRestoresGlobalBudgetAroundPins(t *testing.T) {
	const shards = 4
	one := oneGraphBytes(t)
	budget := 3*one + one/2
	r := NewRegistry(budget, shards)
	defer r.Close()

	taken := make(map[int64]bool)
	// Pin two graphs on shard 1 (held handles — unevictable).
	var pins []*Handle
	for i := 0; i < 2; i++ {
		h, err := r.Add(specOnShard(t, shards, 1, taken))
		if err != nil {
			t.Fatal(err)
		}
		pins = append(pins, h)
	}
	// Two idle graphs on shard 0: global is now ~4×one > budget, but
	// shard 0 may sit under its own allotment until the rebalancer
	// accounts for shard 1's pinned overhang.
	for i := 0; i < 2; i++ {
		h, err := r.Add(specOnShard(t, shards, 0, taken))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	for i := 0; i < 3; i++ {
		r.rebalance()
	}
	if got := r.bytes.Load(); got > budget {
		t.Errorf("resident bytes %d still over global budget %d after rebalancing around pins", got, budget)
	}
	for _, h := range pins {
		if h.Graph() == nil {
			t.Fatal("pinned graph evicted")
		}
		h.Release()
	}
}

// TestCacheRebalanceFollowsDemand drives all traffic at keys on one shard
// and checks the rebalancer moves capacity there from the idle shards.
func TestCacheRebalanceFollowsDemand(t *testing.T) {
	const shards = 4
	c := NewCache(64, shards)
	defer c.Close()

	// Find keys all hashing to shard 2.
	var keys []TrialKey
	for i := 0; len(keys) < 40; i++ {
		k := TrialKey{Graph: uint64(i), Query: "k3:6:5:3", Seed: 1, Ranks: 4}
		if int(k.hash()%uint64(shards)) == 2 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		c.Put(k, TrialRun{Counts: []uint64{k.Graph}, Stats: make([]core.Stats, 1)})
	}
	for _, k := range keys {
		if _, ok := c.Get(k, 0); !ok && c.shards[2].cap >= len(keys) {
			t.Errorf("key %d missing despite capacity", k.Graph)
		}
	}
	c.rebalance()
	ss := c.ShardStats()
	even := 64 / shards
	if ss[2].Capacity <= even {
		t.Errorf("hot shard capacity %d not grown past even split %d", ss[2].Capacity, even)
	}
	total := 0
	for _, s := range ss {
		total += s.Capacity
		if s.Entries > s.Capacity {
			t.Errorf("shard holds %d entries over capacity %d", s.Entries, s.Capacity)
		}
	}
	if total > 64 {
		t.Errorf("allotments sum to %d, global capacity is 64", total)
	}
	// The hot working set should now (after another fill) fit better than
	// an even split would ever allow.
	for _, k := range keys {
		c.Put(k, TrialRun{Counts: []uint64{k.Graph}, Stats: make([]core.Stats, 1)})
	}
	if got := c.ShardStats()[2].Entries; got <= even {
		t.Errorf("hot shard holds %d entries, want more than the even split %d", got, even)
	}
}

// TestCacheRebalanceProtectsUnderCapacity: while the cache as a whole is
// under its global capacity, a demand shift must not evict another
// shard's resident entries — the unsharded cache only ever evicted when
// full, and sharding must not invent eviction pressure.
func TestCacheRebalanceProtectsUnderCapacity(t *testing.T) {
	const shards = 4
	c := NewCache(256, shards) // far more capacity than the test populates
	defer c.Close()

	keysOn := func(shard, n int) []TrialKey {
		var ks []TrialKey
		for i := 0; len(ks) < n; i++ {
			k := TrialKey{Graph: uint64(i), Query: "k3:6:5:3", Seed: 1, Ranks: 4}
			if int(k.hash()%uint64(shards)) == shard {
				ks = append(ks, k)
			}
		}
		return ks
	}
	resident := keysOn(0, 50)
	for _, k := range resident {
		c.Put(k, TrialRun{Counts: []uint64{k.Graph}, Stats: make([]core.Stats, 1)})
	}
	// A full demand window on a different shard, then several rebalances:
	// shard 0 shows zero demand every pass.
	hot := keysOn(3, 10)
	for round := 0; round < 5; round++ {
		for _, k := range hot {
			c.Put(k, TrialRun{Counts: []uint64{k.Graph}, Stats: make([]core.Stats, 1)})
			c.Get(k, 0)
		}
		c.rebalance()
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("rebalance evicted %d entries while cache at %d/%d capacity",
			st.Evictions, st.Entries, st.Capacity)
	}
	for _, k := range resident {
		if _, ok := c.Get(k, 0); !ok {
			t.Fatalf("resident key %d lost from quiet shard under global headroom", k.Graph)
		}
	}
}

// TestCacheRebalanceNeverZerosACap reproduces the review scenario: one
// shard's allotment grows and fills, then demand shifts entirely to
// another shard while the cache is under global capacity. Quiet empty
// shards must keep a cap of at least 1 — a zero cap would make the next
// Put on them spin forever against an empty LRU — and Puts on every
// shard must still complete.
func TestCacheRebalanceNeverZerosACap(t *testing.T) {
	const shards = 4
	c := NewCache(64, shards)
	defer c.Close()

	keysOn := func(shard, n int) []TrialKey {
		var ks []TrialKey
		for i := 0; len(ks) < n; i++ {
			k := TrialKey{Graph: uint64(i), Query: "k3:6:5:3", Seed: 1, Ranks: 4}
			if int(k.hash()%uint64(shards)) == shard {
				ks = append(ks, k)
			}
		}
		return ks
	}
	// Grow shard 0's allotment and fill it.
	for _, k := range keysOn(0, 52) {
		c.Put(k, TrialRun{Counts: []uint64{k.Graph}, Stats: make([]core.Stats, 1)})
		c.Get(k, 0)
	}
	c.rebalance()
	// Shift all demand to shard 1; shards 2 and 3 are quiet and empty.
	for round := 0; round < 3; round++ {
		for _, k := range keysOn(1, 8) {
			c.Put(k, TrialRun{Counts: []uint64{k.Graph}, Stats: make([]core.Stats, 1)})
			c.Get(k, 0)
		}
		c.rebalance()
	}
	total := 0
	for i, ss := range c.ShardStats() {
		if ss.Capacity < 1 {
			t.Fatalf("shard %d allotted capacity %d; a zero cap hangs the next Put", i, ss.Capacity)
		}
		total += ss.Capacity
	}
	if total > 64 {
		t.Errorf("allotments sum to %d, global capacity is 64", total)
	}
	// Every shard must still accept a Put (completes, does not hang).
	for s := 0; s < shards; s++ {
		k := keysOn(s, 60)[59] // a fresh key for this shard
		c.Put(k, TrialRun{Counts: []uint64{1}, Stats: make([]core.Stats, 1)})
	}
}

// TestClaimNameOverwritesEvictedHolder covers the eviction/registration
// race distilled: a name whose index entry points at a mid-eviction
// entry (marked dead, names not yet dropped) must be claimable by a new
// registration, not reported as a conflict.
func TestClaimNameOverwritesEvictedHolder(t *testing.T) {
	r := NewRegistry(0, 2)
	defer r.Close()
	taken := make(map[int64]bool)
	sp := specOnShard(t, 2, 0, taken)
	sp.Name = "flip"
	h, err := r.Add(sp)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// Freeze the entry mid-eviction: dead, but "flip" still in the index.
	e, ok := r.lookupRef("flip")
	if !ok {
		t.Fatal("flip not registered")
	}
	e.shard.mu.Lock()
	e.evicted.Store(true)
	e.shard.mu.Unlock()

	reclaim := specOnShard(t, 2, 1, taken) // different source, other shard
	reclaim.Name = "flip"
	h2, err := r.Add(reclaim)
	if err != nil {
		t.Fatalf("re-registering a mid-eviction name failed: %v", err)
	}
	defer h2.Release()
	got, ok := r.Acquire("flip")
	if !ok {
		t.Fatal("reclaimed name does not resolve")
	}
	if got.Fingerprint() != h2.Fingerprint() {
		t.Error("reclaimed name resolves to the dead entry")
	}
	got.Release()
}

// TestWaitMutexCountsContention holds the lock while another goroutine
// blocks on it, and checks the wait is recorded. Whether a particular
// attempt contends is up to the scheduler, so the experiment retries
// until one does.
func TestWaitMutexCountsContention(t *testing.T) {
	var m waitMutex
	for attempt := 0; attempt < 100 && m.wait().Waits == 0; attempt++ {
		m.Lock()
		done := make(chan struct{})
		go func() {
			m.Lock()
			m.Unlock()
			close(done)
		}()
		time.Sleep(2 * time.Millisecond) // let the goroutine reach the blocked Lock
		m.Unlock()
		<-done
	}
	if w := m.wait(); w.Waits == 0 {
		t.Error("contended Lock never recorded a wait")
	}
}
