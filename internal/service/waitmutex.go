package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// waitMutex is a sync.Mutex that measures its own contention: every Lock
// that could not be satisfied immediately counts as one wait and adds the
// time spent blocked. The shard structures use it so /v1/stats can report
// how much of the serving hot path is lost to lock handoff — the number
// that justifies (or refutes) a shard count. The uncontended fast path is
// a single TryLock, so instrumenting costs nothing when there is no
// contention to observe.
type waitMutex struct {
	mu     sync.Mutex
	waits  atomic.Uint64
	waitNS atomic.Int64
}

func (m *waitMutex) Lock() {
	if m.mu.TryLock() {
		return
	}
	start := time.Now()
	m.mu.Lock()
	m.waits.Add(1)
	m.waitNS.Add(int64(time.Since(start)))
}

func (m *waitMutex) Unlock() { m.mu.Unlock() }

// LockWait is a lock-contention rollup: how many acquisitions blocked,
// and for how long in total.
type LockWait struct {
	Waits  uint64  `json:"lockWaits"`
	WaitMS float64 `json:"lockWaitMs"`
}

func (m *waitMutex) wait() LockWait {
	return LockWait{
		Waits:  m.waits.Load(),
		WaitMS: float64(m.waitNS.Load()) / 1e6,
	}
}

func (w *LockWait) add(o LockWait) {
	w.Waits += o.Waits
	w.WaitMS += o.WaitMS
}
