package service

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sig"
)

// Key identifies one estimation exactly: the data graph by topology
// fingerprint, the query by canonical labeled signature, and every knob
// that changes the estimate's bits. Two requests with equal keys get
// byte-identical results, so the cached value can be replayed verbatim.
type Key struct {
	Graph     uint64 // Fingerprint of the data graph
	Query     string // QuerySignature of the query
	Algorithm core.Algorithm
	Trials    int
	Seed      int64
	Ranks     int // simulated engine ranks; changes Stats, not counts
}

// QuerySignature canonicalizes a labeled query graph as its node count
// followed by one sig.Sig adjacency bitmap per node. Edge insertion order
// and the query's display name do not affect it; queries too large for a
// bitmap row (K > sig.MaxColors, rejected by the solver anyway) fall back
// to an explicit edge list.
func QuerySignature(q *query.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d", q.K)
	if q.K > sig.MaxColors {
		for _, e := range q.Edges() {
			fmt.Fprintf(&b, ":%d-%d", e[0], e[1])
		}
		return b.String()
	}
	for v := 0; v < q.K; v++ {
		var row sig.Sig
		for _, w := range q.Neighbors(v) {
			row = row.Add(uint8(w))
		}
		fmt.Fprintf(&b, ":%x", uint32(row))
	}
	return b.String()
}

// CacheStats are the cache's observability counters.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

type centry struct {
	key Key
	val coloring.Estimate
}

// Cache is a bounded LRU map from estimation keys to finished estimates.
// It is safe for concurrent use; hits refresh recency.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[Key]*list.Element
	lru *list.List // front = most recently used

	hits      uint64
	misses    uint64
	evictions uint64
}

// NewCache returns a cache holding up to capacity estimates (≤ 0 means
// 4096).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Cache{cap: capacity, m: make(map[Key]*list.Element), lru: list.New()}
}

// clone deep-copies an estimate's slices: the cache and its callers must
// not share backing arrays, or a caller mutating result.Counts would
// corrupt the value replayed to every later hit.
func clone(e coloring.Estimate) coloring.Estimate {
	e.Counts = append([]uint64(nil), e.Counts...)
	if e.Stats.Loads != nil {
		e.Stats.Loads = append([]int64(nil), e.Stats.Loads...)
	}
	return e
}

// Get returns the cached estimate for k, if present. The result is the
// caller's to mutate.
func (c *Cache) Get(k Key) (coloring.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return coloring.Estimate{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return clone(el.Value.(*centry).val), true
}

// Put stores a copy of v under k, evicting the least-recently-used entry
// if full. Re-putting an existing key refreshes its value and recency.
func (c *Cache) Put(k Key, v coloring.Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*centry).val = clone(v)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*centry).key)
		c.evictions++
	}
	c.m[k] = c.lru.PushFront(&centry{key: k, val: clone(v)})
}

// Stats returns the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.lru.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
