package service

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sig"
)

// Key identifies one estimation request exactly: the data graph by
// topology fingerprint, the query by canonical labeled signature, and
// every knob that changes the estimate's bits — including, for
// precision-targeted requests, the declared target (two requests with
// different targets over the same trial stream may stop at different
// trial counts). Two requests with equal keys get byte-identical results,
// which is what makes singleflight coalescing sound. Fixed-trial requests
// leave the precision fields zero, so their keys are identical to the
// pre-precision API's (the compatibility-shim test pins this).
type Key struct {
	Graph     uint64 // Fingerprint of the data graph
	Query     string // QuerySignature of the query
	Algorithm core.Algorithm
	Backend   string // canonical execution backend; changes Stats, not counts
	Trials    int    // fixed trial count, or the adaptive MaxTrials bound
	Seed      int64
	Ranks     int // engine ranks/workers; changes Stats, not counts
	// Precision-targeted requests: the declared target. Zero for
	// fixed-trial requests.
	RelErr     float64
	Confidence float64
	MinTrials  int
}

// hash folds every key field into one FNV-1a value for shard selection.
// It must cover all fields Key equality covers, or two distinct keys on
// one shard could look balanced while a real workload pins one stripe.
func (k Key) hash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k.Graph)
	h.Write(b[:])
	io.WriteString(h, k.Query) //nolint:errcheck // fnv never fails
	binary.LittleEndian.PutUint64(b[:], uint64(k.Algorithm))
	h.Write(b[:])
	io.WriteString(h, k.Backend) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})           // terminator: Backend and the next field must not blur
	binary.LittleEndian.PutUint64(b[:], uint64(k.Trials))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(k.Seed))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(k.Ranks))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(k.RelErr))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(k.Confidence))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(k.MinTrials))
	h.Write(b[:])
	return h.Sum64()
}

// TrialKey identifies one seeded trial stream: every field that changes
// the per-trial colorful counts or their engine stats — and nothing that
// only changes how many of those trials a request consumes. Trial i's
// count is a pure function of a TrialKey, which is what makes the cache
// trial-granular: a request needing T trials is a pure hit against any
// entry holding ≥ T of them, a tighter request extends the entry instead
// of starting over, and a looser one prefix-slices it — every answer
// bit-identical to an uncached run at the same effective trial count.
type TrialKey struct {
	Graph     uint64
	Query     string
	Algorithm core.Algorithm
	Backend   string
	Seed      int64
	Ranks     int
}

// TrialKey projects the request key onto its trial stream: requests that
// differ only in trial count or precision target share trials.
func (k Key) TrialKey() TrialKey {
	return TrialKey{
		Graph:     k.Graph,
		Query:     k.Query,
		Algorithm: k.Algorithm,
		Backend:   k.Backend,
		Seed:      k.Seed,
		Ranks:     k.Ranks,
	}
}

// hash folds every TrialKey field into one FNV-1a value for shard
// selection; same coverage rule as Key.hash.
func (k TrialKey) hash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k.Graph)
	h.Write(b[:])
	io.WriteString(h, k.Query) //nolint:errcheck // fnv never fails
	binary.LittleEndian.PutUint64(b[:], uint64(k.Algorithm))
	h.Write(b[:])
	io.WriteString(h, k.Backend) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(b[:], uint64(k.Seed))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(k.Ranks))
	h.Write(b[:])
	return h.Sum64()
}

// TrialRun is the accumulated state of one seeded trial stream:
// Counts[i] and Stats[i] are trial i's colorful count and engine
// counters. A longer run strictly extends a shorter one over the same
// TrialKey (trials are deterministic), so runs merge by keeping the
// longest.
type TrialRun struct {
	Counts []uint64
	Stats  []core.Stats
}

// Len returns the number of accumulated trials.
func (r TrialRun) Len() int { return len(r.Counts) }

// clone deep-copies a run: the cache and its callers must not share
// backing arrays, or a caller mutating its result would corrupt the value
// replayed to every later hit.
func (r TrialRun) clone() TrialRun {
	out := TrialRun{
		Counts: append([]uint64(nil), r.Counts...),
		Stats:  append([]core.Stats(nil), r.Stats...),
	}
	for i := range out.Stats {
		if out.Stats[i].Loads != nil {
			out.Stats[i].Loads = append([]int64(nil), out.Stats[i].Loads...)
		}
	}
	return out
}

// prefix returns a view of the first n trials (or the whole run when it
// is shorter). Views share backing arrays; clone before handing out.
func (r TrialRun) prefix(n int) TrialRun {
	if n <= 0 || n >= len(r.Counts) {
		return r
	}
	return TrialRun{Counts: r.Counts[:n], Stats: r.Stats[:n]}
}

// QuerySignature canonicalizes a labeled query graph as its node count
// followed by one sig.Sig adjacency bitmap per node. Edge insertion order
// and the query's display name do not affect it; queries too large for a
// bitmap row (K > sig.MaxColors, rejected by the solver anyway) fall back
// to an explicit edge list.
func QuerySignature(q *query.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d", q.K)
	if q.K > sig.MaxColors {
		for _, e := range q.Edges() {
			fmt.Fprintf(&b, ":%d-%d", e[0], e[1])
		}
		return b.String()
	}
	for v := 0; v < q.K; v++ {
		var row sig.Sig
		for _, w := range q.Neighbors(v) {
			row = row.Add(uint8(w))
		}
		fmt.Fprintf(&b, ":%x", uint32(row))
	}
	return b.String()
}

// CacheStats are the cache's observability counters, rolled up across
// shards. Hits count lookups that found an entry (of any length — the
// caller may still extend it); Extended counts entries grown in place by
// a later run reusing the cached prefix.
type CacheStats struct {
	Entries    int    `json:"entries"`
	Trials     int    `json:"trials"` // accumulated trials across entries
	Capacity   int    `json:"capacity"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Extended   uint64 `json:"extended"`
	Evictions  uint64 `json:"evictions"`
	Shards     int    `json:"shards"`
	Rebalances uint64 `json:"rebalances"`
	LockWait
}

// CacheShardStats is one shard's slice of the cache counters, for the
// /v1/stats shards section.
type CacheShardStats struct {
	Entries   int    `json:"entries"`
	Trials    int    `json:"trials"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Extended  uint64 `json:"extended"`
	Evictions uint64 `json:"evictions"`
	LockWait
}

type centry struct {
	key TrialKey
	val TrialRun
}

// cacheShard is one stripe of the cache: its own LRU list, index, and
// capacity allotment (settled by the rebalancer).
type cacheShard struct {
	mu  waitMutex
	cap int
	m   map[TrialKey]*list.Element
	lru *list.List // front = most recently used

	hits      uint64
	misses    uint64
	extended  uint64
	evictions uint64
	trials    int // accumulated trials across resident entries
	// demand is hits+inserts observed since the last rebalance; the
	// rebalancer reads and resets it to apportion capacity by recent use.
	demand uint64
}

// Cache is a bounded LRU map from trial-stream keys to accumulated
// per-trial runs, partitioned across shards by key hash so concurrent
// hits on different keys do not contend on one mutex. Entries are
// trial-granular: Put merges by keeping the longest run (per-trial counts
// over one TrialKey are deterministic, so a longer run strictly extends a
// shorter one), and Get serves any prefix. The capacity is global: shards
// start with an even split, and with more than one shard a background
// rebalancer re-settles the per-shard allotments toward recent demand, so
// a skewed key distribution doesn't waste the quiet shards' capacity. It
// is safe for concurrent use; hits refresh recency within a shard.
type Cache struct {
	totalCap int
	shards   []*cacheShard

	rebalances atomic.Uint64
	stop       chan struct{}
	stopOnce   sync.Once
}

// cacheRebalanceEvery is the cadence of the background capacity
// rebalancer.
const cacheRebalanceEvery = time.Second

// NewCache returns a cache holding up to capacity trial runs (≤ 0 means
// 4096) across shards stripes (≤ 0 means DefaultShards; clamped so every
// shard holds at least one entry). Close the cache when done: with more
// than one shard it runs a background capacity rebalancer.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	n := normShards(shards)
	if n > capacity {
		n = capacity
	}
	c := &Cache{
		totalCap: capacity,
		shards:   make([]*cacheShard, n),
		stop:     make(chan struct{}),
	}
	for i := range c.shards {
		cp := capacity / n
		if i < capacity%n {
			cp++
		}
		c.shards[i] = &cacheShard{cap: cp, m: make(map[TrialKey]*list.Element), lru: list.New()}
	}
	if n > 1 {
		go c.rebalanceLoop()
	}
	return c
}

// Close stops the background rebalancer. The cache stays usable; its
// per-shard allotments simply stop adapting.
func (c *Cache) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

func (c *Cache) shardFor(k TrialKey) *cacheShard {
	return c.shards[k.hash()%uint64(len(c.shards))]
}

// Get returns the cached trial run for k, if present — limited to the
// first limit trials when limit > 0 (a request never needs trials past
// its own bound, so the copy stays proportional to the request). The
// result is the caller's to mutate: the deep copy happens after the shard
// unlocks — safe because a stored run's backing arrays are only ever
// replaced (Put installs a fresh clone), never mutated in place — so the
// shard's critical section allocates nothing.
func (c *Cache) Get(k TrialKey, limit int) (TrialRun, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.m[k]
	if !ok {
		sh.misses++
		sh.mu.Unlock()
		return TrialRun{}, false
	}
	sh.hits++
	sh.demand++
	sh.lru.MoveToFront(el)
	v := el.Value.(*centry).val
	sh.mu.Unlock()
	return v.prefix(limit).clone(), true
}

// Counts returns a copy of just the cached per-trial counts for k (up to
// limit when limit > 0), without cloning the per-trial engine stats. The
// adaptive stopping rule only needs the counts, so precision replays peek
// here first and then fetch exactly the stopping prefix with Get — the
// stats clone stays proportional to the trials actually used, not the
// request's worst-case bound. A peek, not a lookup: it refreshes recency
// but leaves the hit/miss counters to the Get (or the flight's Get) that
// follows, so each request still counts exactly once.
func (c *Cache) Counts(k TrialKey, limit int) ([]uint64, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.m[k]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	v := el.Value.(*centry).val
	sh.mu.Unlock()
	counts := v.Counts
	if limit > 0 && limit < len(counts) {
		counts = counts[:limit]
	}
	return append([]uint64(nil), counts...), true
}

// Put stores a copy of the run under k, evicting the shard's
// least-recently-used entries if full. Runs merge by length: a run no
// longer than the resident one only refreshes recency (the resident
// prefix is bit-identical by determinism), a longer one replaces it —
// counted as an extension when it grew a nonempty entry, the trial-reuse
// event the redesign exists for.
func (c *Cache) Put(k TrialKey, v TrialRun) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[k]; ok {
		// A refresh is demand too: NoCache recomputes re-Put the same
		// keys without a Get, and their shard must not read as idle to
		// the rebalancer while its working set is the hottest one.
		sh.demand++
		ce := el.Value.(*centry)
		if cur := ce.val.Len(); cur < v.Len() {
			if cur > 0 {
				sh.extended++
			}
			sh.trials += v.Len() - cur
			ce.val = v.clone()
		}
		sh.lru.MoveToFront(el)
		return
	}
	sh.demand++
	// The emptiness guard is defense in depth: the rebalancer never
	// allots below 1, but a zero cap here would otherwise spin forever
	// against an empty LRU while holding the shard mutex.
	for sh.lru.Len() >= sh.cap && sh.lru.Len() > 0 {
		sh.evictOldestLocked()
	}
	sh.m[k] = sh.lru.PushFront(&centry{key: k, val: v.clone()})
	sh.trials += v.Len()
}

func (sh *cacheShard) evictOldestLocked() {
	oldest := sh.lru.Back()
	if oldest == nil {
		return
	}
	sh.lru.Remove(oldest)
	ce := oldest.Value.(*centry)
	sh.trials -= ce.val.Len()
	delete(sh.m, ce.key)
	sh.evictions++
}

// ExportedRun pairs a trial stream's key with its accumulated run, for
// the durability layer's compaction snapshot.
type ExportedRun struct {
	Key TrialKey
	Run TrialRun
}

// Export snapshots every resident entry, by reference: the returned runs
// share the cache's backing arrays. Safe to read concurrently with
// serving traffic because stored runs are only ever replaced whole (Put
// installs a fresh clone), never mutated in place — but callers must not
// write through them. Entries come out oldest-first per shard, matching
// eviction order.
func (c *Cache) Export() []ExportedRun {
	var out []ExportedRun
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			ce := el.Value.(*centry)
			out = append(out, ExportedRun{Key: ce.key, Run: ce.val})
		}
		sh.mu.Unlock()
	}
	return out
}

// rebalanceLoop periodically re-settles the per-shard capacity allotments.
func (c *Cache) rebalanceLoop() {
	t := time.NewTicker(cacheRebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.rebalance()
		}
	}
}

// rebalance redistributes the global capacity proportional to each
// shard's demand (hits + inserts) since the last pass, with a floor of
// 1/(4·shards) so a cold shard keeps admitting. Two invariants hold at
// all times: the allotments sum to at most the configured capacity (so
// shard-local Put eviction preserves the global bound), and — matching
// the unsharded cache, which only ever evicted when full — no entry is
// evicted while the cache as a whole is under capacity: while there is
// global headroom, a shard whose demand went quiet keeps at least its
// population, funded by reclaiming other shards' unused headroom. Only
// a globally full cache shrinks quiet shards below their population,
// which is what lets a hot shard grow at stale entries' expense
// (approximating global LRU).
func (c *Cache) rebalance() {
	n := len(c.shards)
	demand := make([]uint64, n)
	lens := make([]int, n)
	var totalDemand uint64
	totalLen := 0
	for i, sh := range c.shards {
		sh.mu.Lock()
		demand[i] = sh.demand
		sh.demand = 0
		lens[i] = sh.lru.Len()
		sh.mu.Unlock()
		totalDemand += demand[i]
		totalLen += lens[i]
	}
	floor := c.totalCap / (4 * n)
	if floor < 1 {
		floor = 1
	}
	avail := c.totalCap - n*floor
	if avail < 0 {
		avail = 0
	}
	caps := make([]int, n)
	for i := range caps {
		caps[i] = floor
		if totalDemand > 0 {
			caps[i] += int(float64(avail) * float64(demand[i]) / float64(totalDemand))
		} else {
			caps[i] += avail / n
		}
	}
	if totalLen < c.totalCap {
		// Global headroom: protect populations. Every shard keeps at
		// least max(population, 1) — never 1 entry less, and never a zero
		// cap, which would make the next Put spin forever on an empty
		// LRU. The raise is paid back by shaving shards still above their
		// own minimum, one entry per pass, until the caps sum back to the
		// global capacity.
		excess := -c.totalCap
		for i := range caps {
			if min := max(lens[i], 1); caps[i] < min {
				caps[i] = min
			}
			excess += caps[i]
		}
		for excess > 0 {
			shaved := false
			for i := range caps {
				if excess == 0 {
					break
				}
				if caps[i] > max(lens[i], 1) {
					caps[i]--
					excess--
					shaved = true
				}
			}
			if !shaved {
				break
			}
		}
		// Degenerate near-full case: the 1-entry floors alone exceed the
		// capacity's remainder. Shave above the floor — a few evictions,
		// exactly when the cache is effectively full anyway.
		for excess > 0 {
			shaved := false
			for i := range caps {
				if excess == 0 {
					break
				}
				if caps[i] > 1 {
					caps[i]--
					excess--
					shaved = true
				}
			}
			if !shaved {
				break
			}
		}
	}
	for i, sh := range c.shards {
		sh.mu.Lock()
		sh.cap = caps[i]
		for sh.lru.Len() > sh.cap {
			sh.evictOldestLocked()
		}
		sh.mu.Unlock()
	}
	c.rebalances.Add(1)
}

// Stats returns the cache counters rolled up across shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Capacity:   c.totalCap,
		Shards:     len(c.shards),
		Rebalances: c.rebalances.Load(),
	}
	for _, ss := range c.ShardStats() {
		st.Entries += ss.Entries
		st.Trials += ss.Trials
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Extended += ss.Extended
		st.Evictions += ss.Evictions
		st.LockWait.add(ss.LockWait)
	}
	return st
}

// ShardStats returns each shard's slice of the counters, in shard order.
func (c *Cache) ShardStats() []CacheShardStats {
	out := make([]CacheShardStats, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = CacheShardStats{
			Entries:   sh.lru.Len(),
			Trials:    sh.trials,
			Capacity:  sh.cap,
			Hits:      sh.hits,
			Misses:    sh.misses,
			Extended:  sh.extended,
			Evictions: sh.evictions,
		}
		sh.mu.Unlock()
		out[i].LockWait = sh.mu.wait()
	}
	return out
}
