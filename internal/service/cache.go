package service

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sig"
)

// Key identifies one estimation exactly: the data graph by topology
// fingerprint, the query by canonical labeled signature, and every knob
// that changes the estimate's bits. Two requests with equal keys get
// byte-identical results, so the cached value can be replayed verbatim.
type Key struct {
	Graph     uint64 // Fingerprint of the data graph
	Query     string // QuerySignature of the query
	Algorithm core.Algorithm
	Backend   string // canonical execution backend; changes Stats, not counts
	Trials    int
	Seed      int64
	Ranks     int // engine ranks/workers; changes Stats, not counts
}

// hash folds every key field into one FNV-1a value for shard selection.
// It must cover all fields Key equality covers, or two distinct keys on
// one shard could look balanced while a real workload pins one stripe.
func (k Key) hash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k.Graph)
	h.Write(b[:])
	io.WriteString(h, k.Query) //nolint:errcheck // fnv never fails
	binary.LittleEndian.PutUint64(b[:], uint64(k.Algorithm))
	h.Write(b[:])
	io.WriteString(h, k.Backend) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})           // terminator: Backend and the next field must not blur
	binary.LittleEndian.PutUint64(b[:], uint64(k.Trials))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(k.Seed))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(k.Ranks))
	h.Write(b[:])
	return h.Sum64()
}

// QuerySignature canonicalizes a labeled query graph as its node count
// followed by one sig.Sig adjacency bitmap per node. Edge insertion order
// and the query's display name do not affect it; queries too large for a
// bitmap row (K > sig.MaxColors, rejected by the solver anyway) fall back
// to an explicit edge list.
func QuerySignature(q *query.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d", q.K)
	if q.K > sig.MaxColors {
		for _, e := range q.Edges() {
			fmt.Fprintf(&b, ":%d-%d", e[0], e[1])
		}
		return b.String()
	}
	for v := 0; v < q.K; v++ {
		var row sig.Sig
		for _, w := range q.Neighbors(v) {
			row = row.Add(uint8(w))
		}
		fmt.Fprintf(&b, ":%x", uint32(row))
	}
	return b.String()
}

// CacheStats are the cache's observability counters, rolled up across
// shards.
type CacheStats struct {
	Entries    int    `json:"entries"`
	Capacity   int    `json:"capacity"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Shards     int    `json:"shards"`
	Rebalances uint64 `json:"rebalances"`
	LockWait
}

// CacheShardStats is one shard's slice of the cache counters, for the
// /v1/stats shards section.
type CacheShardStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	LockWait
}

type centry struct {
	key Key
	val coloring.Estimate
}

// cacheShard is one stripe of the cache: its own LRU list, index, and
// capacity allotment (settled by the rebalancer).
type cacheShard struct {
	mu  waitMutex
	cap int
	m   map[Key]*list.Element
	lru *list.List // front = most recently used

	hits      uint64
	misses    uint64
	evictions uint64
	// demand is hits+inserts observed since the last rebalance; the
	// rebalancer reads and resets it to apportion capacity by recent use.
	demand uint64
}

// Cache is a bounded LRU map from estimation keys to finished estimates,
// partitioned across shards by key hash so concurrent hits on different
// keys do not contend on one mutex. The capacity is global: shards start
// with an even split, and with more than one shard a background rebalancer
// re-settles the per-shard allotments toward recent demand, so a skewed
// key distribution doesn't waste the quiet shards' capacity. It is safe
// for concurrent use; hits refresh recency within a shard.
type Cache struct {
	totalCap int
	shards   []*cacheShard

	rebalances atomic.Uint64
	stop       chan struct{}
	stopOnce   sync.Once
}

// cacheRebalanceEvery is the cadence of the background capacity
// rebalancer.
const cacheRebalanceEvery = time.Second

// NewCache returns a cache holding up to capacity estimates (≤ 0 means
// 4096) across shards stripes (≤ 0 means DefaultShards; clamped so every
// shard holds at least one entry). Close the cache when done: with more
// than one shard it runs a background capacity rebalancer.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	n := normShards(shards)
	if n > capacity {
		n = capacity
	}
	c := &Cache{
		totalCap: capacity,
		shards:   make([]*cacheShard, n),
		stop:     make(chan struct{}),
	}
	for i := range c.shards {
		cp := capacity / n
		if i < capacity%n {
			cp++
		}
		c.shards[i] = &cacheShard{cap: cp, m: make(map[Key]*list.Element), lru: list.New()}
	}
	if n > 1 {
		go c.rebalanceLoop()
	}
	return c
}

// Close stops the background rebalancer. The cache stays usable; its
// per-shard allotments simply stop adapting.
func (c *Cache) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

func (c *Cache) shardFor(k Key) *cacheShard {
	return c.shards[k.hash()%uint64(len(c.shards))]
}

// clone deep-copies an estimate's slices: the cache and its callers must
// not share backing arrays, or a caller mutating result.Counts would
// corrupt the value replayed to every later hit.
func clone(e coloring.Estimate) coloring.Estimate {
	e.Counts = append([]uint64(nil), e.Counts...)
	if e.Stats.Loads != nil {
		e.Stats.Loads = append([]int64(nil), e.Stats.Loads...)
	}
	return e
}

// Get returns the cached estimate for k, if present. The result is the
// caller's to mutate: the deep copy happens after the shard unlocks —
// safe because a stored value's backing arrays are only ever replaced
// (Put installs a fresh clone), never mutated in place — so the shard's
// critical section allocates nothing.
func (c *Cache) Get(k Key) (coloring.Estimate, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.m[k]
	if !ok {
		sh.misses++
		sh.mu.Unlock()
		return coloring.Estimate{}, false
	}
	sh.hits++
	sh.demand++
	sh.lru.MoveToFront(el)
	v := el.Value.(*centry).val
	sh.mu.Unlock()
	return clone(v), true
}

// Put stores a copy of v under k, evicting the shard's least-recently-used
// entries if full. Re-putting an existing key refreshes its value and
// recency.
func (c *Cache) Put(k Key, v coloring.Estimate) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[k]; ok {
		// A refresh is demand too: NoCache recomputes re-Put the same
		// keys without a Get, and their shard must not read as idle to
		// the rebalancer while its working set is the hottest one.
		sh.demand++
		el.Value.(*centry).val = clone(v)
		sh.lru.MoveToFront(el)
		return
	}
	sh.demand++
	// The emptiness guard is defense in depth: the rebalancer never
	// allots below 1, but a zero cap here would otherwise spin forever
	// against an empty LRU while holding the shard mutex.
	for sh.lru.Len() >= sh.cap && sh.lru.Len() > 0 {
		sh.evictOldestLocked()
	}
	sh.m[k] = sh.lru.PushFront(&centry{key: k, val: clone(v)})
}

func (sh *cacheShard) evictOldestLocked() {
	oldest := sh.lru.Back()
	if oldest == nil {
		return
	}
	sh.lru.Remove(oldest)
	delete(sh.m, oldest.Value.(*centry).key)
	sh.evictions++
}

// rebalanceLoop periodically re-settles the per-shard capacity allotments.
func (c *Cache) rebalanceLoop() {
	t := time.NewTicker(cacheRebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.rebalance()
		}
	}
}

// rebalance redistributes the global capacity proportional to each
// shard's demand (hits + inserts) since the last pass, with a floor of
// 1/(4·shards) so a cold shard keeps admitting. Two invariants hold at
// all times: the allotments sum to at most the configured capacity (so
// shard-local Put eviction preserves the global bound), and — matching
// the unsharded cache, which only ever evicted when full — no entry is
// evicted while the cache as a whole is under capacity: while there is
// global headroom, a shard whose demand went quiet keeps at least its
// population, funded by reclaiming other shards' unused headroom. Only
// a globally full cache shrinks quiet shards below their population,
// which is what lets a hot shard grow at stale entries' expense
// (approximating global LRU).
func (c *Cache) rebalance() {
	n := len(c.shards)
	demand := make([]uint64, n)
	lens := make([]int, n)
	var totalDemand uint64
	totalLen := 0
	for i, sh := range c.shards {
		sh.mu.Lock()
		demand[i] = sh.demand
		sh.demand = 0
		lens[i] = sh.lru.Len()
		sh.mu.Unlock()
		totalDemand += demand[i]
		totalLen += lens[i]
	}
	floor := c.totalCap / (4 * n)
	if floor < 1 {
		floor = 1
	}
	avail := c.totalCap - n*floor
	if avail < 0 {
		avail = 0
	}
	caps := make([]int, n)
	for i := range caps {
		caps[i] = floor
		if totalDemand > 0 {
			caps[i] += int(float64(avail) * float64(demand[i]) / float64(totalDemand))
		} else {
			caps[i] += avail / n
		}
	}
	if totalLen < c.totalCap {
		// Global headroom: protect populations. Every shard keeps at
		// least max(population, 1) — never 1 entry less, and never a zero
		// cap, which would make the next Put spin forever on an empty
		// LRU. The raise is paid back by shaving shards still above their
		// own minimum, one entry per pass, until the caps sum back to the
		// global capacity.
		excess := -c.totalCap
		for i := range caps {
			if min := max(lens[i], 1); caps[i] < min {
				caps[i] = min
			}
			excess += caps[i]
		}
		for excess > 0 {
			shaved := false
			for i := range caps {
				if excess == 0 {
					break
				}
				if caps[i] > max(lens[i], 1) {
					caps[i]--
					excess--
					shaved = true
				}
			}
			if !shaved {
				break
			}
		}
		// Degenerate near-full case: the 1-entry floors alone exceed the
		// capacity's remainder. Shave above the floor — a few evictions,
		// exactly when the cache is effectively full anyway.
		for excess > 0 {
			shaved := false
			for i := range caps {
				if excess == 0 {
					break
				}
				if caps[i] > 1 {
					caps[i]--
					excess--
					shaved = true
				}
			}
			if !shaved {
				break
			}
		}
	}
	for i, sh := range c.shards {
		sh.mu.Lock()
		sh.cap = caps[i]
		for sh.lru.Len() > sh.cap {
			sh.evictOldestLocked()
		}
		sh.mu.Unlock()
	}
	c.rebalances.Add(1)
}

// Stats returns the cache counters rolled up across shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Capacity:   c.totalCap,
		Shards:     len(c.shards),
		Rebalances: c.rebalances.Load(),
	}
	for _, ss := range c.ShardStats() {
		st.Entries += ss.Entries
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
		st.LockWait.add(ss.LockWait)
	}
	return st
}

// ShardStats returns each shard's slice of the counters, in shard order.
func (c *Cache) ShardStats() []CacheShardStats {
	out := make([]CacheShardStats, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = CacheShardStats{
			Entries:   sh.lru.Len(),
			Capacity:  sh.cap,
			Hits:      sh.hits,
			Misses:    sh.misses,
			Evictions: sh.evictions,
		}
		sh.mu.Unlock()
		out[i].LockWait = sh.mu.wait()
	}
	return out
}
