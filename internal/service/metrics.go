package service

import (
	"strconv"
	"sync"

	"repro/internal/coloring"
	"repro/internal/obs"
)

// Metric family names. The request and trial latency families are the
// contract the load generator and smoke test scrape for; renaming them is
// a wire-format change.
const (
	metricRequestsTotal  = "subgraph_requests_total"
	metricRequestSeconds = "subgraph_request_seconds"
	metricTrialSeconds   = "subgraph_trial_seconds"
	metricPhaseSeconds   = "subgraph_phase_seconds"
	metricQueueWait      = "subgraph_queue_wait_seconds"
	metricSSEFlush       = "subgraph_sse_flush_seconds"
)

// Trace span names recorded by the service layer itself (the solver's
// phase names live in core). queueWait and the cache spans are serial
// sections of a job's timeline; sseFlush is a sink-only observation (the
// stream outlives the job, so it must not count against its wall time).
const (
	spanQueueWait   = "queueWait"
	spanCacheLookup = "cacheLookup"
	spanCacheStore  = "cacheStore"
	spanCacheReplay = "cacheReplay"
)

// metricsRecorder owns the service's obs.Registry and caches the series
// handles the hot paths touch, so recording a request or a solver phase
// is two map lookups under a small mutex at worst and usually none (the
// handle cache hits). Cumulative counters that already live in the
// layers' own stats structs (cache hits, lock waits, engine load…) are
// not double-tracked: bridge copies them into counter series at scrape
// time, so /metrics and /v1/stats can never disagree.
type metricsRecorder struct {
	reg *obs.Registry

	queueWait *obs.Histogram
	sseFlush  *obs.Histogram

	mu       sync.Mutex
	requests map[requestKey]*obs.Counter
	requestH map[string]*obs.Histogram
	trialH   map[string]*obs.Histogram
	phaseH   map[phaseKey]*obs.Histogram
}

type requestKey struct {
	endpoint string
	code     int
}

type phaseKey struct {
	phase   string
	backend string
}

// phaseBuckets resolve single supersteps on small graphs: they start at
// 10µs where the request-level buckets start at 100µs.
func phaseBuckets() []float64 { return obs.ExponentialBuckets(1e-5, 2, 18) }

func newMetricsRecorder() *metricsRecorder {
	reg := obs.NewRegistry()
	m := &metricsRecorder{
		reg: reg,
		queueWait: reg.Histogram(metricQueueWait,
			"Time jobs spent queued before a worker picked their flight up.",
			obs.DefSecondsBuckets(), nil),
		sseFlush: reg.Histogram(metricSSEFlush,
			"Per-event write+flush time of the SSE progress fan-out.",
			phaseBuckets(), nil),
		requests: make(map[requestKey]*obs.Counter),
		requestH: make(map[string]*obs.Histogram),
		trialH:   make(map[string]*obs.Histogram),
		phaseH:   make(map[phaseKey]*obs.Histogram),
	}
	return m
}

// observeRequest records one finished HTTP request.
func (m *metricsRecorder) observeRequest(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	rk := requestKey{endpoint: endpoint, code: code}
	c, ok := m.requests[rk]
	if !ok {
		c = m.reg.Counter(metricRequestsTotal,
			"HTTP requests served, by route pattern and status code.",
			obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)})
		m.requests[rk] = c
	}
	h, ok := m.requestH[endpoint]
	if !ok {
		h = m.reg.Histogram(metricRequestSeconds,
			"HTTP request latency, by route pattern.",
			obs.DefSecondsBuckets(), obs.Labels{"endpoint": endpoint})
		m.requestH[endpoint] = h
	}
	m.mu.Unlock()
	c.Inc()
	h.Observe(seconds)
}

func (m *metricsRecorder) trialHist(backend string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.trialH[backend]
	if !ok {
		h = m.reg.Histogram(metricTrialSeconds,
			"Per-trial solve time (one colorful count), by execution backend.",
			obs.DefSecondsBuckets(), obs.Labels{"backend": backend})
		m.trialH[backend] = h
	}
	return h
}

func (m *metricsRecorder) phaseHist(phase, backend string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	pk := phaseKey{phase: phase, backend: backend}
	h, ok := m.phaseH[pk]
	if !ok {
		h = m.reg.Histogram(metricPhaseSeconds,
			"Per-span solver and service phase time (path/cycle/per-vertex joins, table merges, cache lookup/store), by phase and backend.",
			phaseBuckets(), obs.Labels{"phase": phase, "backend": backend})
		m.phaseH[pk] = h
	}
	return h
}

// traceSink returns the per-flight trace sink: every span and observation
// a job records — from the HTTP layer down to individual solver
// supersteps — lands in the aggregate histograms live, so /metrics
// reflects a long job while it runs, not only after it finishes.
func (m *metricsRecorder) traceSink(backend string) func(name string, seconds float64) {
	return func(name string, seconds float64) {
		switch name {
		case coloring.TrialMeasurement:
			m.trialHist(backend).Observe(seconds)
		case spanQueueWait:
			m.queueWait.Observe(seconds)
		default:
			m.phaseHist(name, backend).Observe(seconds)
		}
	}
}

// LatencySummary is the /v1/stats rendering of one latency histogram:
// count, mean, and interpolated p50/p95/p99 in milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

func summarize(snap obs.HistogramSnapshot) LatencySummary {
	return LatencySummary{
		Count:  snap.Count,
		MeanMs: snap.Mean() * 1e3,
		P50Ms:  snap.Quantile(0.50) * 1e3,
		P95Ms:  snap.Quantile(0.95) * 1e3,
		P99Ms:  snap.Quantile(0.99) * 1e3,
	}
}

// httpSummary snapshots per-endpoint request latency for /v1/stats.
func (m *metricsRecorder) httpSummary() map[string]LatencySummary {
	m.mu.Lock()
	hs := make(map[string]*obs.Histogram, len(m.requestH))
	for ep, h := range m.requestH {
		hs[ep] = h
	}
	m.mu.Unlock()
	out := make(map[string]LatencySummary, len(hs))
	for ep, h := range hs {
		out[ep] = summarize(h.Snapshot())
	}
	return out
}

// trialSummary snapshots per-backend trial latency for /v1/stats.
func (m *metricsRecorder) trialSummary() map[string]LatencySummary {
	m.mu.Lock()
	hs := make(map[string]*obs.Histogram, len(m.trialH))
	for b, h := range m.trialH {
		hs[b] = h
	}
	m.mu.Unlock()
	out := make(map[string]LatencySummary, len(hs))
	for b, h := range hs {
		out[b] = summarize(h.Snapshot())
	}
	return out
}

// bridge copies the cumulative counters of every service layer into
// scrape-time metric series. The layers' own stats structs stay the
// single source of truth; /metrics is a projection of the same snapshot
// /v1/stats serves, taken immediately before rendering.
func (m *metricsRecorder) bridge(st Stats) {
	reg := m.reg
	gauge := func(name, help string, labels obs.Labels, v float64) {
		reg.Gauge(name, help, labels).Set(v)
	}
	counter := func(name, help string, labels obs.Labels, v uint64) {
		reg.Counter(name, help, labels).Set(v)
	}

	gauge("subgraph_uptime_seconds", "Seconds since the service started.", nil, st.UptimeSeconds)
	counter("subgraph_estimates_total", "Estimations actually computed (cache replays excluded).", nil, st.Estimates)
	counter("subgraph_batches_total", "Batch requests served.", nil, st.Batches)
	counter("subgraph_colorings_shared_total", "Batch jobs that reused another job's pre-drawn colorings.", nil, st.ColoringsShared)

	counter("subgraph_precision_requests_total", "Precision-targeted requests resolved.", nil, st.Precision.Requests)
	counter("subgraph_precision_early_stops_total", "Precision requests that stopped below their MaxTrials bound.", nil, st.Precision.EarlyStops)
	counter("subgraph_precision_trials_saved_total", "Trials adaptive stopping skipped versus the worst-case bound.", nil, st.Precision.TrialsSaved)

	counter("subgraph_cache_hits_total", "Result-cache hits.", nil, st.Cache.Hits)
	counter("subgraph_cache_misses_total", "Result-cache misses.", nil, st.Cache.Misses)
	counter("subgraph_cache_extended_total", "Cache entries extended in place with freshly computed trials.", nil, st.Cache.Extended)
	counter("subgraph_cache_evictions_total", "Result-cache evictions.", nil, st.Cache.Evictions)
	gauge("subgraph_cache_entries", "Resident result-cache entries.", nil, float64(st.Cache.Entries))
	gauge("subgraph_cache_trials", "Trials accumulated across resident cache entries.", nil, float64(st.Cache.Trials))

	counter("subgraph_registry_loads_total", "Graph loads into the registry.", nil, st.Registry.Loads)
	counter("subgraph_registry_hits_total", "Registry lookups answered by a resident graph.", nil, st.Registry.Hits)
	counter("subgraph_registry_evictions_total", "Graphs evicted to fit the registry budget.", nil, st.Registry.Evictions)
	gauge("subgraph_registry_graphs", "Graphs currently resident.", nil, float64(st.Registry.Graphs))
	gauge("subgraph_registry_bytes", "Bytes of resident graph memory.", nil, float64(st.Registry.Bytes))

	gauge("subgraph_scheduler_queued", "Jobs waiting in the scheduler queue.", nil, float64(st.Scheduler.Queued))
	gauge("subgraph_scheduler_running", "Jobs currently running on workers.", nil, float64(st.Scheduler.Running))
	counter("subgraph_scheduler_submitted_total", "Jobs submitted to the scheduler.", nil, st.Scheduler.Submitted)
	counter("subgraph_scheduler_completed_total", "Jobs the scheduler ran to completion.", nil, st.Scheduler.Completed)
	counter("subgraph_scheduler_canceled_total", "Jobs dropped before running (context canceled while queued).", nil, st.Scheduler.Canceled)
	counter("subgraph_scheduler_rejected_total", "Submissions rejected by the full queue.", nil, st.Scheduler.Rejected)

	counter("subgraph_jobs_submitted_total", "Jobs registered with the job manager.", nil, st.Jobs.Submitted)
	counter("subgraph_jobs_coalesced_total", "Jobs attached to an identical in-flight computation.", nil, st.Jobs.Coalesced)
	counter("subgraph_jobs_canceled_total", "Jobs canceled by clients.", nil, st.Jobs.Canceled)
	counter("subgraph_jobs_expired_total", "Finished jobs dropped from retention.", nil, st.Jobs.Expired)
	gauge("subgraph_jobs_active", "Jobs currently queued or running.", nil, float64(st.Jobs.Active))
	gauge("subgraph_jobs_retained", "Jobs still addressable by id.", nil, float64(st.Jobs.Retained))

	// Lock-wait rollups, one series per locked layer: the count of
	// acquisitions that blocked (failed the TryLock fast path) and the
	// total time they spent blocked — uncontended acquisitions are free
	// and uncounted. Same numbers as the lockWaits/lockWaitMs fields in
	// /v1/stats, converted to seconds for Prometheus convention.
	lockHelpN := "Mutex acquisitions that blocked (failed the uncontended fast path), by layer."
	lockHelpS := "Cumulative seconds mutex acquisitions spent blocked, by layer."
	lw := func(layer string, w LockWait) {
		counter("subgraph_lock_waits_total", lockHelpN, obs.Labels{"layer": layer}, w.Waits)
		gauge("subgraph_lock_wait_seconds", lockHelpS, obs.Labels{"layer": layer}, w.WaitMS/1e3)
	}
	lw("registry", st.Registry.LockWait)
	lw("cache", st.Cache.LockWait)
	lw("jobs", st.Jobs.LockWait)
	lw("singleflight", st.Jobs.Singleflight.LockWait)

	// Durability layer (absent on in-memory services): append volume,
	// queue lag, replay and compaction counters, file sizes.
	if d := st.Durable; d != nil {
		counter("subgraph_durable_appends_total", "Records durably appended to the trial/job log.", nil, d.Appends)
		gauge("subgraph_durable_lag", "Records accepted by the durable log but not yet written.", nil, float64(d.Lag))
		counter("subgraph_durable_replayed_runs_total", "Trial-cache runs replayed from the log at boot.", nil, d.ReplayedRuns)
		counter("subgraph_durable_replayed_jobs_total", "Terminal jobs replayed from the log at boot.", nil, d.ReplayedJobs)
		counter("subgraph_durable_truncated_bytes_total", "Torn or corrupt log-tail bytes dropped during replay.", nil, uint64(d.TruncatedBytes))
		counter("subgraph_durable_compactions_total", "Snapshot+truncate compactions of the durable log.", nil, d.Compactions)
		counter("subgraph_durable_fsyncs_total", "fsync calls issued by the durable log.", nil, d.Fsyncs)
		counter("subgraph_durable_write_errors_total", "Failed durable-log writes, encodes, or syncs.", nil, d.WriteErrors)
		gauge("subgraph_durable_wal_bytes", "Current size of the durable write-ahead log.", nil, float64(d.WalBytes))
		gauge("subgraph_durable_snapshot_bytes", "Current size of the durable snapshot file.", nil, float64(d.SnapshotBytes))
	}

	// Cluster serving tier (absent in single-replica mode): forwarding
	// volume, degradation fallbacks, handoff traffic, and per-peer
	// health/breaker state.
	if cl := st.Cluster; cl != nil {
		counter("subgraph_cluster_forwards_total", "Requests proxied to their ring-home replica.", nil, cl.Forwards)
		counter("subgraph_cluster_forward_errors_total", "Transport-level forward failures (request then ran locally).", nil, cl.ForwardErrors)
		counter("subgraph_cluster_local_fallbacks_total", "Non-owned requests served locally because their home was unavailable.", nil, cl.LocalFallbacks)
		counter("subgraph_cluster_forwarded_served_total", "Requests served here after another replica forwarded them.", nil, cl.ForwardedServed)
		counter("subgraph_cluster_handoff_exported_total", "Trial runs pushed to their new home during rebalancing.", nil, cl.HandoffExported)
		counter("subgraph_cluster_handoff_imported_total", "Trial runs received from a peer during rebalancing.", nil, cl.HandoffImported)
		gauge("subgraph_cluster_members", "Configured cluster members (self included).", nil, float64(len(cl.Members)))
		handoff := 0.0
		if cl.HandoffActive {
			handoff = 1
		}
		gauge("subgraph_cluster_handoff_active", "Whether a handoff replay is importing runs right now (readyz is 503).", nil, handoff)
		for _, p := range cl.Peers {
			l := obs.Labels{"peer": p.Addr}
			up := 0.0
			if p.Up {
				up = 1
			}
			gauge("subgraph_cluster_peer_up", "Whether the peer's last readiness probe (or forward) succeeded.", l, up)
			open := 0.0
			if p.BreakerOpen {
				open = 1
			}
			gauge("subgraph_cluster_peer_breaker_open", "Whether the peer's circuit breaker is open (forwards fail fast to local execution).", l, open)
			counter("subgraph_cluster_peer_breaker_trips_total", "Times the peer's circuit breaker opened.", l, p.Trips)
			counter("subgraph_cluster_peer_forwards_total", "Requests forwarded to the peer.", l, p.Forwards)
			counter("subgraph_cluster_peer_failures_total", "Transport-level failures forwarding to the peer.", l, p.Failures)
		}
	}

	for name, b := range st.Engine.Backends {
		l := obs.Labels{"backend": name}
		counter("subgraph_engine_runs_total", "Estimations computed, by execution backend.", l, b.Runs)
		counter("subgraph_engine_supersteps_total", "Engine supersteps executed, by execution backend.", l, uint64(b.Supersteps))
		counter("subgraph_engine_load_total", "Projection-function operations executed, by execution backend.", l, uint64(b.TotalLoad))
		counter("subgraph_engine_messages_total", "Simulated messages exchanged, by execution backend.", l, uint64(b.Messages))
		counter("subgraph_engine_steals_total", "Partition tasks stolen, by execution backend.", l, uint64(b.Steals))
	}

	// Distributed-backend worker nodes, one series per node. Transport
	// bytes/frames are from the coordinator's perspective.
	for _, node := range st.Engine.Dist {
		l := obs.Labels{"node": strconv.Itoa(node.Rank)}
		alive := 0.0
		if node.Alive {
			alive = 1
		}
		gauge("subgraph_dist_node_up", "Whether the dist worker node's connection is alive.", l, alive)
		counter("subgraph_dist_node_bytes_sent_total", "Bytes the coordinator sent to the dist worker node.", l, uint64(node.BytesSent))
		counter("subgraph_dist_node_bytes_recv_total", "Bytes the coordinator received from the dist worker node.", l, uint64(node.BytesRecv))
		counter("subgraph_dist_node_frames_sent_total", "Protocol frames sent to the dist worker node.", l, uint64(node.FramesSent))
		counter("subgraph_dist_node_frames_recv_total", "Protocol frames received from the dist worker node.", l, uint64(node.FramesRecv))
		counter("subgraph_dist_node_exchanges_total", "Superstep completions the dist worker node reported.", l, uint64(node.Exchanges))
		counter("subgraph_dist_node_load_total", "Projection operations executed on the dist worker node.", l, uint64(node.Load))
		counter("subgraph_dist_node_jobs_total", "Finished rank reports from the dist worker node.", l, uint64(node.Jobs))
	}
}
