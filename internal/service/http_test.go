package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	subgraph "repro"
)

// newServer starts a fresh service behind httptest with the "enron"
// stand-in registered as "bench", and returns the matching graph built
// directly, for comparisons against the library path.
func newServer(t *testing.T) (*httptest.Server, *subgraph.Graph) {
	t.Helper()
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 4})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	post(t, ts, "/v1/graphs", `{"standin":"enron","scale":512,"seed":1,"name":"bench"}`, http.StatusOK)
	g, ok := subgraph.Standin("enron", 512, 1)
	if !ok {
		t.Fatal("unknown stand-in enron")
	}
	return ts, g
}

func post(t *testing.T, ts *httptest.Server, path, body string, wantStatus int) (raw []byte, header http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d; body: %s", path, resp.StatusCode, wantStatus, raw)
	}
	return raw, resp.Header
}

func get(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newServer(t)
	var body struct {
		Status string `json:"status"`
	}
	get(t, ts, "/healthz", &body)
	if body.Status != "ok" {
		t.Errorf("status = %q, want ok", body.Status)
	}
}

// TestEstimateMatchesLibraryBitForBit is the end-to-end contract: the
// served estimate equals a direct subgraph.Estimate call with the same
// algorithm, trials, and seed, field for field.
func TestEstimateMatchesLibraryBitForBit(t *testing.T) {
	ts, g := newServer(t)
	raw, header := post(t, ts, "/v1/estimate",
		`{"graph":"bench","query":"glet1","trials":4,"seed":9}`, http.StatusOK)
	if got := header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", got)
	}
	var served subgraph.Estimation
	if err := json.Unmarshal(raw, &served); err != nil {
		t.Fatal(err)
	}

	q, err := subgraph.QueryByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 4, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEstimate(served, direct) {
		t.Errorf("served estimate differs from direct call:\nserved: %+v\ndirect: %+v", served, direct)
	}
}

// TestEstimateCacheHit proves the repeat-request path: identical bytes in
// the body, X-Cache flips to HIT, and the cache hit counter increments.
func TestEstimateCacheHit(t *testing.T) {
	ts, _ := newServer(t)
	req := `{"graph":"bench","query":"brain1","trials":3,"seed":2}`

	var before subgraph.ServiceStats
	get(t, ts, "/v1/stats", &before)

	body1, h1 := post(t, ts, "/v1/estimate", req, http.StatusOK)
	body2, h2 := post(t, ts, "/v1/estimate", req, http.StatusOK)
	if h1.Get("X-Cache") != "MISS" || h2.Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache = %q then %q, want MISS then HIT", h1.Get("X-Cache"), h2.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cached response body differs:\n%s\n%s", body1, body2)
	}

	var after subgraph.ServiceStats
	get(t, ts, "/v1/stats", &after)
	if after.Cache.Hits != before.Cache.Hits+1 {
		t.Errorf("cache hits %d → %d, want +1", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Estimates != before.Estimates+1 {
		t.Errorf("computed estimates %d → %d, want +1 (second served from cache)",
			before.Estimates, after.Estimates)
	}
}

// TestBatchFigure8Catalog runs the paper's ten Figure 8 queries as one
// batch and checks each result equals the direct library call with the
// same seed, and that queries with matching node counts shared colorings.
func TestBatchFigure8Catalog(t *testing.T) {
	ts, g := newServer(t)
	queries := subgraph.Queries()

	var items []string
	for _, q := range queries {
		items = append(items, fmt.Sprintf(`{"query":%q}`, q.Name))
	}
	req := fmt.Sprintf(`{"graph":"bench","trials":3,"seed":5,"queries":[%s]}`,
		bytes.NewBufferString(joinComma(items)))
	raw, _ := post(t, ts, "/v1/batch", req, http.StatusOK)

	var resp struct {
		Graph   string `json:"graph"`
		Results []struct {
			Query    string          `json:"query"`
			Cached   bool            `json:"cached"`
			Estimate json.RawMessage `json:"estimate"`
			Error    string          `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(queries))
	}
	for i, q := range queries {
		r := resp.Results[i]
		if r.Error != "" {
			t.Errorf("%s: error: %s", q.Name, r.Error)
			continue
		}
		if r.Query != q.Name {
			t.Errorf("result %d is %q, want %q (order must be preserved)", i, r.Query, q.Name)
			continue
		}
		var served subgraph.Estimation
		if err := json.Unmarshal(r.Estimate, &served); err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		direct, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 3, Seed: 5, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !sameEstimate(served, direct) {
			t.Errorf("%s: batch estimate differs from direct call:\nserved: %+v\ndirect: %+v",
				q.Name, served, direct)
		}
	}

	// Catalog node counts: 5,5 / 6 / 7,7 / 8,8 / 9,9 / 10 — four queries
	// ride on another query's colorings.
	var st subgraph.ServiceStats
	get(t, ts, "/v1/stats", &st)
	if st.ColoringsShared != 4 {
		t.Errorf("coloringsShared = %d, want 4", st.ColoringsShared)
	}
	if st.Batches != 1 {
		t.Errorf("batches = %d, want 1", st.Batches)
	}
}

// TestBatchServesRepeatsFromCache re-runs a batch and expects every item
// cached the second time.
func TestBatchServesRepeatsFromCache(t *testing.T) {
	ts, _ := newServer(t)
	req := `{"graph":"bench","trials":2,"seed":3,"queries":[{"query":"glet2"},{"query":"youtube"}]}`
	post(t, ts, "/v1/batch", req, http.StatusOK)
	raw, _ := post(t, ts, "/v1/batch", req, http.StatusOK)
	var resp struct {
		Results []struct {
			Cached bool `json:"cached"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if !r.Cached {
			t.Errorf("result %d not served from cache on repeat", i)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts, "/v1/estimate", `{"graph":"nope","query":"glet1"}`, http.StatusNotFound)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"nonesuch"}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"glet1","algorithm":"XX"}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate", `{"graph":"bench"}`, http.StatusBadRequest)
	post(t, ts, "/v1/graphs", `{"standin":"enron","scale":512,"seed":1,"name":"bench2","powerlaw":3}`, http.StatusBadRequest)
	// star6 has treewidth 1 and is fine; a clique K4 has treewidth 3 and
	// must be rejected by the solver with a client error.
	post(t, ts, "/v1/estimate",
		`{"graph":"bench","queryEdges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}`, http.StatusBadRequest)
	// Resource-exhaustion guards: an absurd node id must be rejected
	// before the k×k adjacency matrix is allocated, and a huge trial
	// count before trials×n colorings are drawn.
	post(t, ts, "/v1/estimate",
		`{"graph":"bench","queryEdges":[[0,1073741824]]}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate",
		`{"graph":"bench","query":"glet1","trials":2000000000}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate",
		`{"graph":"bench","query":"glet1","ranks":2000000000}`, http.StatusBadRequest)
	// Parametric query names are untrusted too: huge, tiny, and negative
	// sizes must all be request errors, not allocations or panics, and
	// anything above the solver's 16-node cap is rejected up front.
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"star300000"}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"cycle2"}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"cycle-3"}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"path20"}`, http.StatusBadRequest)
	// A per-query graph override inside a batch is a per-item error, not
	// a silent recompute against the batch graph.
	raw, _ := post(t, ts, "/v1/batch",
		`{"graph":"bench","queries":[{"graph":"other","query":"glet1"},{"query":"youtube"}]}`, http.StatusOK)
	var br struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[0].Error == "" || br.Results[1].Error != "" {
		t.Errorf("batch graph-override handling wrong: %+v", br.Results)
	}
}

// TestCustomQueryEdges estimates via an explicit edge list and checks it
// against the equivalent named query.
func TestCustomQueryEdges(t *testing.T) {
	ts, g := newServer(t)
	// cycle4 as explicit edges.
	raw, _ := post(t, ts, "/v1/estimate",
		`{"graph":"bench","queryEdges":[[0,1],[1,2],[2,3],[3,0]],"trials":3,"seed":11}`, http.StatusOK)
	var served subgraph.Estimation
	if err := json.Unmarshal(raw, &served); err != nil {
		t.Fatal(err)
	}
	q, err := subgraph.QueryByName("cycle4")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 3, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if served.Matches != direct.Matches || !reflect.DeepEqual(served.Counts, direct.Counts) {
		t.Errorf("custom edges differ from cycle4:\nserved: %+v\ndirect: %+v", served, direct)
	}
}

// TestCacheHitKeepsRequesterNames sends the same topology under two
// display names; the second is a cache hit but must answer with its own
// query name, not replay the first requester's.
func TestCacheHitKeepsRequesterNames(t *testing.T) {
	ts, _ := newServer(t)
	body1, _ := post(t, ts, "/v1/estimate",
		`{"graph":"bench","queryEdges":[[0,1],[1,2],[2,0]],"queryName":"t1","trials":2,"seed":6}`, http.StatusOK)
	body2, h2 := post(t, ts, "/v1/estimate",
		`{"graph":"bench","queryEdges":[[0,1],[1,2],[2,0]],"queryName":"t2","trials":2,"seed":6}`, http.StatusOK)
	if h2.Get("X-Cache") != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", h2.Get("X-Cache"))
	}
	var e1, e2 subgraph.Estimation
	if err := json.Unmarshal(body1, &e1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &e2); err != nil {
		t.Fatal(err)
	}
	if e1.Query != "t1" || e2.Query != "t2" {
		t.Errorf("query names = %q, %q; want t1, t2", e1.Query, e2.Query)
	}
	if !reflect.DeepEqual(e1.Counts, e2.Counts) || e1.Matches != e2.Matches {
		t.Errorf("cache hit changed the numbers:\n%+v\n%+v", e1, e2)
	}
}

func TestGraphListingAndLookup(t *testing.T) {
	ts, _ := newServer(t)
	var listing struct {
		Graphs []subgraph.GraphInfo `json:"graphs"`
	}
	get(t, ts, "/v1/graphs", &listing)
	if len(listing.Graphs) != 1 || listing.Graphs[0].Name != "bench" {
		t.Fatalf("listing = %+v, want one graph named bench", listing.Graphs)
	}
	var info subgraph.GraphInfo
	get(t, ts, "/v1/graphs/bench", &info)
	if info.ID != listing.Graphs[0].ID || info.Nodes == 0 {
		t.Errorf("lookup by name = %+v", info)
	}
	resp, err := http.Get(ts.URL + "/v1/graphs/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown graph lookup: status %d, want 404", resp.StatusCode)
	}
}

func joinComma(items []string) string {
	out := ""
	for i, s := range items {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// do issues a bodyless request (GET/DELETE) and returns the raw response.
func do(t *testing.T, ts *httptest.Server, method, path string) (status int, raw []byte, header http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// TestJobsHTTPLifecycle walks the async API end to end: submit (202 +
// Location), long-poll to completion, list, fetch the result — whose body
// must be byte-identical to the synchronous /v1/estimate body for the
// same request — and observe that DELETE on a finished job changes
// nothing.
func TestJobsHTTPLifecycle(t *testing.T) {
	ts, _ := newServer(t)
	req := `{"graph":"bench","query":"glet1","trials":4,"seed":9}`

	raw, header := post(t, ts, "/v1/jobs", req, http.StatusAccepted)
	var job subgraph.JobInfo
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State.Terminal() && !job.Cached {
		t.Fatalf("submitted job = %+v", job)
	}
	if loc := header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, job.ID)
	}

	// Long-poll until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", job)
		}
		status, raw, _ := do(t, ts, "GET", "/v1/jobs/"+job.ID+"?wait=1s")
		if status != http.StatusOK {
			t.Fatalf("poll status %d: %s", status, raw)
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
	}
	if job.State != subgraph.JobDone {
		t.Fatalf("job finished %s: %+v", job.State, job)
	}
	if job.Progress.TrialsDone != 4 || job.Progress.TrialsTotal != 4 {
		t.Errorf("progress = %+v, want 4/4", job.Progress)
	}
	if job.FinishedAt == nil || job.ExpiresAt == nil {
		t.Errorf("terminal job missing timestamps: %+v", job)
	}

	// The listing knows the job.
	var listing struct {
		Jobs []subgraph.JobInfo `json:"jobs"`
	}
	get(t, ts, "/v1/jobs", &listing)
	found := false
	for _, j := range listing.Jobs {
		found = found || j.ID == job.ID
	}
	if !found {
		t.Errorf("job %s missing from listing %+v", job.ID, listing.Jobs)
	}

	// Async result == sync body, byte for byte. The sync call replays the
	// job's cached result, which the cache contract guarantees is the
	// original bytes.
	status, asyncBody, h := do(t, ts, "GET", "/v1/jobs/"+job.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, asyncBody)
	}
	if h.Get("X-Cache") != "MISS" {
		t.Errorf("computed job result X-Cache = %q, want MISS", h.Get("X-Cache"))
	}
	syncBody, _ := post(t, ts, "/v1/estimate", req, http.StatusOK)
	if !bytes.Equal(asyncBody, syncBody) {
		t.Errorf("async result body differs from sync body:\nasync: %s\nsync:  %s", asyncBody, syncBody)
	}

	// DELETE on a done job: state unchanged, result still there.
	status, raw, _ = do(t, ts, "DELETE", "/v1/jobs/"+job.ID)
	if status != http.StatusOK {
		t.Fatalf("delete done job status %d: %s", status, raw)
	}
	var after subgraph.JobInfo
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if after.State != subgraph.JobDone {
		t.Errorf("done job became %s after DELETE", after.State)
	}
	if status, _, _ := do(t, ts, "GET", "/v1/jobs/"+job.ID+"/result"); status != http.StatusOK {
		t.Errorf("result gone after no-op DELETE: status %d", status)
	}
}

// TestJobsHTTPErrors covers the jobs API's error statuses: unknown ids →
// 404, unfinished result → 409, canceled job's result → 499 (client
// cancel, distinct from the 503 shed-load path), bad wait → 400.
func TestJobsHTTPErrors(t *testing.T) {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 1})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	post(t, ts, "/v1/graphs", `{"powerlaw":8000,"alpha":1.5,"seed":2,"name":"slowg"}`, http.StatusOK)

	if status, _, _ := do(t, ts, "GET", "/v1/jobs/nope"); status != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", status)
	}
	if status, _, _ := do(t, ts, "GET", "/v1/jobs/nope/result"); status != http.StatusNotFound {
		t.Errorf("unknown result status %d, want 404", status)
	}
	if status, _, _ := do(t, ts, "DELETE", "/v1/jobs/nope"); status != http.StatusNotFound {
		t.Errorf("unknown delete status %d, want 404", status)
	}
	post(t, ts, "/v1/jobs", `{"graph":"nope","query":"glet1"}`, http.StatusNotFound)
	post(t, ts, "/v1/jobs", `{"graph":"slowg","query":"nonesuch"}`, http.StatusBadRequest)

	raw, _ := post(t, ts, "/v1/jobs",
		`{"graph":"slowg","query":"brain3","trials":500,"seed":1}`, http.StatusAccepted)
	var job subgraph.JobInfo
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}

	if status, _, _ := do(t, ts, "GET", "/v1/jobs/"+job.ID+"?wait=banana"); status != http.StatusBadRequest {
		t.Errorf("bad wait status %d, want 400", status)
	}
	// Result of a queued/running job: 409, not a hang.
	if status, _, _ := do(t, ts, "GET", "/v1/jobs/"+job.ID+"/result"); status != http.StatusConflict {
		t.Errorf("unfinished result status %d, want 409", status)
	}

	// Cancel it; its result now reports the client cancel as 499.
	status, raw, _ := do(t, ts, "DELETE", "/v1/jobs/"+job.ID)
	if status != http.StatusOK {
		t.Fatalf("delete status %d: %s", status, raw)
	}
	var canceled subgraph.JobInfo
	if err := json.Unmarshal(raw, &canceled); err != nil {
		t.Fatal(err)
	}
	if canceled.State != subgraph.JobCanceled {
		t.Fatalf("state after DELETE = %s, want canceled", canceled.State)
	}
	// The fetcher completed its own request; the result is gone — 410,
	// not the 499 reserved for the requester's own disconnect.
	if status, _, _ := do(t, ts, "GET", "/v1/jobs/"+job.ID+"/result"); status != http.StatusGone {
		t.Errorf("canceled result status %d, want 410", status)
	}
}
