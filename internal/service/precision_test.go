package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	subgraph "repro"
	"repro/internal/service"
)

// estimateVia runs one request against a fresh service and returns the
// result. Backend "sim" keeps estimates fully deterministic (no Steals
// telemetry), so equivalence tests can use DeepEqual.
func estimateVia(t *testing.T, svc *subgraph.Service, req subgraph.EstimateRequest) subgraph.EstimateResult {
	t.Helper()
	res, err := svc.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newEnronService(t *testing.T, opts subgraph.ServiceOptions) *subgraph.Service {
	t.Helper()
	svc := subgraph.NewService(opts)
	t.Cleanup(svc.Close)
	if _, err := svc.AddGraph(subgraph.GraphSpec{Standin: "enron", Scale: 512, Seed: 1, Name: "bench"}); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestCacheExtensionEquivalence is the trial-granular cache's core
// invariant: a request that extends previously cached trials returns an
// estimate bit-identical to a cold run at the same trial count, and the
// smaller earlier request is replayed as a prefix-slice pure hit.
func TestCacheExtensionEquivalence(t *testing.T) {
	for _, backend := range []string{"sim", "parallel"} {
		t.Run(backend, func(t *testing.T) {
			base := subgraph.EstimateRequest{Graph: "bench", Query: "glet1", Seed: 7, Backend: backend}

			warm := newEnronService(t, subgraph.ServiceOptions{Workers: 2})
			small := base
			small.Trials = 3
			first := estimateVia(t, warm, small)
			if first.Cached {
				t.Fatal("cold 3-trial run reported cached")
			}
			large := base
			large.Trials = 8
			extended := estimateVia(t, warm, large)
			if extended.Cached {
				t.Fatal("extension must compute (5 missing trials), not replay")
			}

			cold := newEnronService(t, subgraph.ServiceOptions{Workers: 2})
			fresh := estimateVia(t, cold, large)
			a, b := extended.Estimate, fresh.Estimate
			a.Stats.Steals, b.Stats.Steals = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("extended estimate differs from cold run:\n%+v\n%+v", a, b)
			}
			if got := warm.Cache().Stats().Extended; got < 1 {
				t.Errorf("cache.extended = %d, want ≥ 1 after the 3→8 extension", got)
			}

			// The original smaller request is now a pure prefix-slice hit,
			// bit-identical to its first run.
			replay := estimateVia(t, warm, small)
			if !replay.Cached {
				t.Error("3-trial request after an 8-trial entry should be a pure hit")
			}
			if !reflect.DeepEqual(replay.Estimate, first.Estimate) {
				t.Errorf("prefix-slice replay differs from original:\n%+v\n%+v",
					replay.Estimate, first.Estimate)
			}
		})
	}
}

// TestPrecisionRequestLifecycle drives a declared-precision request
// through the service: the adaptive stop lands in [minTrials, maxTrials],
// equals a fixed-trial run at the stopping count, is replayed as a pure
// hit on repeat, and a tighter follow-up extends the same trial stream.
func TestPrecisionRequestLifecycle(t *testing.T) {
	svc := newEnronService(t, subgraph.ServiceOptions{Workers: 2})
	loose := subgraph.EstimateRequest{
		Graph: "bench", Query: "glet1", Seed: 7,
		Precision: &subgraph.PrecisionSpec{RelErr: 0.6, Confidence: 0.9, MaxTrials: 64},
	}
	res := estimateVia(t, svc, loose)
	T := res.Estimate.Trials
	if T < 2 || T > 64 {
		t.Fatalf("adaptive run used %d trials, want within [2,64]", T)
	}
	if res.Cached {
		t.Fatal("cold precision run reported cached")
	}

	// Bit-identical to the fixed-trial run at the stopping count (fresh
	// service so nothing is cached).
	fixedSvc := newEnronService(t, subgraph.ServiceOptions{Workers: 2})
	fixed := estimateVia(t, fixedSvc, subgraph.EstimateRequest{Graph: "bench", Query: "glet1", Seed: 7, Trials: T})
	if !reflect.DeepEqual(res.Estimate, fixed.Estimate) {
		t.Fatalf("adaptive estimate differs from fixed Trials:%d run:\n%+v\n%+v",
			T, res.Estimate, fixed.Estimate)
	}

	// Replay: same precision request is a pure hit with the same body.
	again := estimateVia(t, svc, loose)
	if !again.Cached {
		t.Error("repeated precision request should replay from cached trials")
	}
	if !reflect.DeepEqual(again.Estimate, res.Estimate) {
		t.Error("replayed precision estimate differs from original")
	}

	// A tighter target over the same stream reuses the cached trials and
	// extends them; its counts prefix equals the loose run's counts.
	tight := loose
	tight.Precision = &subgraph.PrecisionSpec{RelErr: 0.15, Confidence: 0.9, MaxTrials: 64}
	tres := estimateVia(t, svc, tight)
	if tres.Estimate.Trials < T {
		t.Fatalf("tighter target stopped earlier (%d) than looser (%d)", tres.Estimate.Trials, T)
	}
	if !reflect.DeepEqual(tres.Estimate.Counts[:T], res.Estimate.Counts) {
		t.Errorf("tight run's count prefix differs from the loose run's counts")
	}

	st := svc.Stats()
	if st.Precision.Requests < 2 {
		t.Errorf("precision.requests = %d, want ≥ 2", st.Precision.Requests)
	}
	if st.Precision.TrialsSaved == 0 {
		t.Errorf("precision.trialsSaved = 0, want > 0 (stops were below maxTrials 64)")
	}
	if st.Precision.EarlyStops == 0 {
		t.Errorf("precision.earlyStops = 0, want > 0")
	}
}

// TestPrecisionOverHTTP covers the wire: a precision object alongside
// trials, the job path, progress carrying mean/CV, and validation errors.
func TestPrecisionOverHTTP(t *testing.T) {
	ts, _ := newServer(t)
	body, hdr := post(t, ts, "/v1/estimate",
		`{"graph":"bench","query":"glet1","seed":7,"precision":{"relErr":0.6,"confidence":0.9,"maxTrials":32}}`,
		http.StatusOK)
	var est struct {
		Trials int
		Counts []uint64
	}
	if err := json.Unmarshal(body, &est); err != nil {
		t.Fatal(err)
	}
	if est.Trials < 2 || est.Trials > 32 || len(est.Counts) != est.Trials {
		t.Fatalf("precision estimate trials = %d (counts %d), want in [2,32]", est.Trials, len(est.Counts))
	}
	if hdr.Get("X-Cache") != "MISS" {
		t.Errorf("cold precision request X-Cache = %q, want MISS", hdr.Get("X-Cache"))
	}

	// Same request as an async job: result body byte-identical, job info
	// reports the early stop against the maxTrials bound.
	jobRaw, _ := post(t, ts, "/v1/jobs",
		`{"graph":"bench","query":"glet1","seed":7,"precision":{"relErr":0.6,"confidence":0.9,"maxTrials":32}}`,
		http.StatusAccepted)
	var job subgraph.JobInfo
	if err := json.Unmarshal(jobRaw, &job); err != nil {
		t.Fatal(err)
	}
	var done subgraph.JobInfo
	get(t, ts, "/v1/jobs/"+job.ID+"?wait=10s", &done)
	if done.State != subgraph.JobDone {
		t.Fatalf("job state %s, want done", done.State)
	}
	if done.Progress.TrialsTotal != 32 || done.Progress.TrialsDone != est.Trials {
		t.Errorf("job progress %d/%d, want %d/32", done.Progress.TrialsDone, done.Progress.TrialsTotal, est.Trials)
	}
	if done.Progress.Mean <= 0 {
		t.Errorf("done job progress mean = %v, want > 0", done.Progress.Mean)
	}
	resBody, _ := do2(t, ts, "GET", "/v1/jobs/"+job.ID+"/result")
	if string(resBody) != string(body) {
		t.Errorf("job result body differs from sync body:\n%s\n%s", resBody, body)
	}

	// Validation: bad relErr and bad confidence are 400s.
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"glet1","precision":{"relErr":-1}}`, http.StatusBadRequest)
	post(t, ts, "/v1/estimate", `{"graph":"bench","query":"glet1","precision":{"relErr":0.1,"confidence":2}}`, http.StatusBadRequest)

	// Stats surface the adaptive outcome.
	var st subgraph.ServiceStats
	get(t, ts, "/v1/stats", &st)
	if st.Precision.Requests == 0 {
		t.Error("stats precision.requests = 0 after precision traffic")
	}
}

// do2 is do with a 200 assertion.
func do2(t *testing.T, ts *httptest.Server, method, path string) ([]byte, http.Header) {
	t.Helper()
	status, raw, hdr := do(t, ts, method, path)
	if status != http.StatusOK {
		t.Fatalf("%s %s: status %d; body %s", method, path, status, raw)
	}
	return raw, hdr
}

// TestBatchPrecisionInheritance: a batch-level precision spec applies to
// every query that doesn't override it, and per-item errors stay local.
func TestBatchPrecisionInheritance(t *testing.T) {
	svc := newEnronService(t, subgraph.ServiceOptions{Workers: 4})
	items, err := svc.EstimateBatch(context.Background(), subgraph.BatchRequest{
		Graph:     "bench",
		Seed:      7,
		Precision: &subgraph.PrecisionSpec{RelErr: 0.6, Confidence: 0.9, MaxTrials: 16},
		Queries: []subgraph.EstimateRequest{
			{Query: "glet1"},
			{Query: "path3"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("%s: %v", it.Query, it.Err)
		}
		if it.Result.Estimate.Trials < 2 || it.Result.Estimate.Trials > 16 {
			t.Errorf("%s: trials %d outside [2,16]", it.Query, it.Result.Estimate.Trials)
		}
	}
}

// TestTrialKeySharing: requests differing only in trial count or
// precision target share one trial stream entry; changing seed, backend,
// or ranks does not.
func TestTrialKeySharing(t *testing.T) {
	a := service.Key{Graph: 1, Query: "q", Backend: "sim", Trials: 3, Seed: 7, Ranks: 4}
	b := a
	b.Trials = 64
	b.RelErr = 0.1
	b.Confidence = 0.95
	b.MinTrials = 3
	if a.TrialKey() != b.TrialKey() {
		t.Error("fixed and precision requests over one stream must share a TrialKey")
	}
	c := a
	c.Seed = 8
	if a.TrialKey() == c.TrialKey() {
		t.Error("different seeds must not share a TrialKey")
	}
	d := a
	d.Backend = "parallel"
	if a.TrialKey() == d.TrialKey() {
		t.Error("different backends must not share a TrialKey")
	}
	if a == b {
		t.Error("request keys with different precision targets must differ")
	}
}
