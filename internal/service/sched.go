package service

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Submit when the scheduler's queue is at
// capacity; callers should shed load (HTTP 503).
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: scheduler closed")

// Job is one unit of scheduled work. Wait blocks until the job finished,
// was canceled while queued, or its context fired.
type Job struct {
	ctx     context.Context
	pri     int
	seq     uint64 // FIFO tie-break within a priority level
	fn      func(context.Context) error
	cleanup func() // run exactly once: after fn, or when the job is dropped
	done    chan struct{}
	err     error
}

// Err returns the job's outcome once done is closed.
func (j *Job) Err() error { return j.err }

// Wait blocks until the job completes (returning its error) or the job's
// context fires first (returning the context error; the job itself may
// still be dequeued and discarded later). Completion wins ties: a job
// that finished as its deadline fired reports its real outcome.
func (j *Job) Wait() error {
	select {
	case <-j.done:
		return j.err
	case <-j.ctx.Done():
	}
	select {
	case <-j.done:
		return j.err
	default:
		return j.ctx.Err()
	}
}

// SchedulerStats are the scheduler's observability counters.
type SchedulerStats struct {
	Workers   int    `json:"workers"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
	Rejected  uint64 `json:"rejected"`
}

// Scheduler runs submitted jobs on a bounded pool of worker goroutines,
// highest priority first (FIFO within a priority). Jobs whose context is
// already canceled when a worker picks them up are dropped without
// running.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	maxQ    int
	closed  bool
	seq     uint64
	running int
	wg      sync.WaitGroup

	workers   int
	submitted uint64
	completed uint64
	canceled  uint64
	rejected  uint64
}

// NewScheduler starts a pool of workers goroutines (≤ 0 means 4) with a
// queue bounded at depth pending jobs (≤ 0 means 1024).
func NewScheduler(workers, depth int) *Scheduler {
	if workers <= 0 {
		workers = 4
	}
	if depth <= 0 {
		depth = 1024
	}
	s := &Scheduler{maxQ: depth, workers: workers}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues fn at the given priority (higher runs first) and returns
// the job. fn receives ctx and should honor its cancellation.
func (s *Scheduler) Submit(ctx context.Context, priority int, fn func(context.Context) error) (*Job, error) {
	return s.SubmitJob(ctx, priority, fn, nil)
}

// SubmitJob is Submit with a cleanup hook the scheduler guarantees to run
// exactly once — after fn returns, or when the job is dropped because its
// context was already canceled. Use it to release resources (e.g. a
// registry handle) whose lifetime must cover the job, not the submitter.
func (s *Scheduler) SubmitJob(ctx context.Context, priority int, fn func(context.Context) error, cleanup func()) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.queue.Len() >= s.maxQ {
		s.rejected++
		return nil, ErrQueueFull
	}
	s.seq++
	j := &Job{ctx: ctx, pri: priority, seq: s.seq, fn: fn, cleanup: cleanup, done: make(chan struct{})}
	heap.Push(&s.queue, j)
	s.submitted++
	s.cond.Signal()
	return j, nil
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		if err := j.ctx.Err(); err != nil {
			j.err = err
			s.canceled++
			close(j.done)
			s.mu.Unlock()
			if j.cleanup != nil {
				j.cleanup()
			}
			continue
		}
		s.running++
		s.mu.Unlock()

		j.err = j.fn(j.ctx)
		close(j.done)
		if j.cleanup != nil {
			j.cleanup()
		}

		s.mu.Lock()
		s.running--
		s.completed++
		s.mu.Unlock()
	}
}

// Close drains the queue (already-submitted jobs still run) and stops the
// workers. Submit after Close fails with ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{
		Workers:   s.workers,
		Queued:    s.queue.Len(),
		Running:   s.running,
		Submitted: s.submitted,
		Completed: s.completed,
		Canceled:  s.canceled,
		Rejected:  s.rejected,
	}
}

// jobHeap orders jobs by priority descending, then submission order.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
