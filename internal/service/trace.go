package service

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// TraceSpan is one timed section of a job's timeline, in milliseconds
// relative to the job's submission.
type TraceSpan struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"startMs"`
	DurMs   float64 `json:"durMs"`
}

// TracePhase aggregates every occurrence of one span name.
type TracePhase struct {
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"totalMs"`
}

// TraceInfo is the wire form of GET /v1/jobs/{id}/trace: the phase
// timeline one job recorded on its way through the stack — queue wait,
// cache lookup/store, and one span per solver superstep (path joins,
// cycle joins, table merges, per-vertex joins). Spans on a serial job
// never nest, so the per-phase totals sum to at most WallMs; a job
// running trials in parallel overlaps solver spans across workers, and
// its totals measure aggregate worker time instead. Coalesced jobs share
// their flight's trace; cache-replayed jobs carry a single cacheReplay
// span. The span list is capped (DroppedSpans counts the overflow); the
// phase aggregates stay exact past the cap.
type TraceInfo struct {
	ID           string                `json:"id"`
	State        JobState              `json:"state"`
	WallMs       float64               `json:"wallMs"`
	DroppedSpans int                   `json:"droppedSpans,omitempty"`
	Spans        []TraceSpan           `json:"spans"`
	Phases       map[string]TracePhase `json:"phases"`
}

// JobTrace returns a job's recorded phase timeline. It fails with
// ErrUnknownJob for unknown (or expired) ids. The trace is live: a
// running job's snapshot grows between calls.
func (s *Service) JobTrace(id string) (TraceInfo, error) {
	j, ok := s.jobs.get(id)
	if !ok {
		return TraceInfo{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	info := s.jobs.snapshot(j)
	out := TraceInfo{
		ID:     info.ID,
		State:  info.State,
		Spans:  []TraceSpan{},
		Phases: map[string]TracePhase{},
	}
	if info.FinishedAt != nil {
		out.WallMs = info.ElapsedMS
	} else {
		out.WallMs = ms(time.Since(info.CreatedAt))
	}
	// j.tr is written before the job is published and never reassigned,
	// so reading it outside the manager mutex is safe.
	snap := j.tr.Snapshot()
	out.DroppedSpans = snap.Dropped
	for _, sp := range snap.Spans {
		out.Spans = append(out.Spans, TraceSpan{
			Name:    sp.Name,
			StartMs: ms(sp.Start),
			DurMs:   ms(sp.Dur),
		})
	}
	for name, p := range snap.Phases {
		out.Phases[name] = TracePhase{Count: p.Count, TotalMs: ms(p.Total)}
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Metrics exposes the service's metrics registry, for embedding callers
// that want to register their own families alongside the service's or
// render the exposition themselves.
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }
