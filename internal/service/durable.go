package service

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
)

// DurabilityOptions configure the service's persistence layer: an
// append-only record log (internal/durable) that persists trial-cache
// runs and terminal jobs, replayed on boot before the service accepts
// traffic. With Dir empty — the default — the service is purely
// in-memory, exactly as before.
type DurabilityOptions struct {
	// Dir is the data directory; empty disables persistence.
	Dir string
	// Fsync is the log's sync policy: durable.FsyncAlways,
	// durable.FsyncInterval (default), or durable.FsyncNever.
	Fsync string
	// FsyncEvery is the interval policy's cadence (≤ 0 means 100ms).
	FsyncEvery time.Duration
	// CompactBytes triggers snapshot+truncate once the log exceeds it
	// (≤ 0 means 64 MiB).
	CompactBytes int64
}

// DurableStats is the persistence layer's /v1/stats section.
type DurableStats = durable.Stats

// setupDurable opens the durable log, installs its replayed state (cache
// runs and terminal jobs), and wires the append hooks. Called from Open
// before any request can arrive, so replay never races traffic.
func (s *Service) setupDurable() error {
	d := s.opts.Durability
	if d.Dir == "" {
		return nil
	}
	log, state, err := durable.Open(durable.Options{
		Dir:          d.Dir,
		Fsync:        d.Fsync,
		FsyncEvery:   d.FsyncEvery,
		CompactBytes: d.CompactBytes,
		Snapshot:     s.durableSnapshot,
		Logger:       s.logger,
	})
	if err != nil {
		return err
	}
	for _, r := range state.Runs {
		// Put clones, so the replayed record's slices stay the log's own.
		s.cache.Put(trialKeyOf(r), TrialRun{Counts: r.Counts, Stats: r.Stats})
	}
	now := time.Now()
	restored := 0
	for i := range state.Jobs {
		if s.jobs.restore(&state.Jobs[i], now) {
			restored++
		}
	}
	s.durable = log
	s.jobs.onTerminal = s.persistJob
	s.logger.Info("durable state replayed",
		"dir", d.Dir, "runs", len(state.Runs),
		"jobs", restored, "expiredJobs", len(state.Jobs)-restored,
		"truncatedBytes", state.TruncatedBytes)
	return nil
}

// persistRun appends one trial stream's accumulated state, mirroring the
// cache.Put that just stored it. The slices are the run's own
// (Session.Run returns fresh copies and the cache clones on Put), so the
// log's writer goroutine can encode them without a copy here.
func (s *Service) persistRun(tk TrialKey, run TrialRun) {
	if s.durable == nil {
		return
	}
	s.durable.AppendRun(runRecord(tk, run))
}

// persistJob is the job manager's onTerminal hook, invoked under its
// mutex at every terminal transition. It only builds a record and
// enqueues (the append path never blocks), so the global critical
// section grows by an allocation, not an I/O.
func (s *Service) persistJob(j *job) {
	if s.durable == nil || !persistable(j) {
		return
	}
	s.durable.AppendJob(jobRecord(j))
}

// persistable decides which terminal jobs earn a log record. Two classes
// do not:
//
//   - Jobs settled with ErrClosed are the shutdown sweep, not real
//     outcomes — a restart must not resurrect them as failed.
//   - Jobs answered purely from the result cache (born done, zero fresh
//     trials). Their estimate is reconstructible bit for bit from the
//     runs log, so persisting them would add no information — but it
//     would put a gob encode on the writer goroutine for every cache
//     hit, which at serving throughput (thousands of hits per second)
//     costs real cores. Skipping them is what keeps the durability tax
//     on the hot serving path inside the benchmark's 5% budget; the
//     price is that a pure-hit job's id does not outlive the process,
//     while any job that computed, failed, or was canceled keeps its id
//     across restarts.
func persistable(j *job) bool {
	return !errors.Is(j.err, ErrClosed) && !(j.state == JobDone && j.cached)
}

// durableSnapshot supplies the compaction state: every resident cache
// run plus every retained terminal job. Runs on the log's writer
// goroutine; the exports take the cache shard locks and the jobs mutex
// briefly and hand back live slices, safe because stored runs and
// terminal estimates are replaced, never mutated in place.
func (s *Service) durableSnapshot() ([]durable.RunRecord, []durable.JobRecord) {
	entries := s.cache.Export()
	runs := make([]durable.RunRecord, len(entries))
	for i, e := range entries {
		runs[i] = runRecord(e.Key, e.Run)
	}
	return runs, s.jobs.exportTerminal()
}

// runRecord and trialKeyOf convert between the cache's key/run pair and
// the log's self-contained record, field for field.
func runRecord(tk TrialKey, run TrialRun) durable.RunRecord {
	return durable.RunRecord{
		Graph:     tk.Graph,
		Query:     tk.Query,
		Algorithm: int(tk.Algorithm),
		Backend:   tk.Backend,
		Seed:      tk.Seed,
		Ranks:     tk.Ranks,
		Counts:    run.Counts,
		Stats:     run.Stats,
	}
}

func trialKeyOf(r durable.RunRecord) TrialKey {
	return TrialKey{
		Graph:     r.Graph,
		Query:     r.Query,
		Algorithm: core.Algorithm(r.Algorithm),
		Backend:   r.Backend,
		Seed:      r.Seed,
		Ranks:     r.Ranks,
	}
}

// jobRecord converts a terminal job to its persisted form. The estimate
// is shared, not cloned: a terminal job's estimate is never rewritten
// (outcome clones for callers), so the log's writer can read it safely.
func jobRecord(j *job) durable.JobRecord {
	rec := durable.JobRecord{
		ID:          j.id,
		State:       string(j.state),
		Graph:       j.graphName,
		Query:       j.queryName,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		TrialsTotal: j.trialsTotal,
		TrialsDone:  j.trialsDone,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Expires:     j.expires,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	if j.state == JobDone {
		est := j.est
		rec.Estimate = &est
	}
	return rec
}

// restore registers one replayed terminal job: already done (or failed,
// or canceled), channel closed, addressable by its original id. TTL
// still applies — records past their expiry are dropped, and a replayed
// job expires exactly when the original would have. Returns false for
// expired, malformed, or duplicate records.
func (m *jobManager) restore(rec *durable.JobRecord, now time.Time) bool {
	if !rec.Expires.After(now) {
		return false
	}
	j := &job{
		id:          rec.ID,
		graphName:   rec.Graph,
		queryName:   rec.Query,
		cached:      rec.Cached,
		coalesced:   rec.Coalesced,
		trialsTotal: rec.TrialsTotal,
		trialsDone:  rec.TrialsDone,
		created:     rec.Created,
		started:     rec.Started,
		finished:    rec.Finished,
		expires:     rec.Expires,
		done:        make(chan struct{}),
	}
	switch JobState(rec.State) {
	case JobDone:
		if rec.Estimate == nil {
			return false
		}
		j.state = JobDone
		j.est = *rec.Estimate
	case JobCanceled:
		j.state = JobCanceled
		j.err = context.Canceled
	case JobFailed:
		j.state = JobFailed
		j.err = errors.New(rec.Error)
	default:
		return false
	}
	close(j.done)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byID[j.id]; dup {
		return false
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	m.terminal++
	m.bumpID(j.id)
	return true
}

// bumpID advances the id counter past a replayed job's id, so fresh jobs
// in the restarted process never collide with persisted ones.
func (m *jobManager) bumpID(id string) {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil {
		return
	}
	for {
		cur := m.nextID.Load()
		if cur >= n || m.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// exportTerminal snapshots every retained terminal job for compaction,
// oldest first (the replay keeps first-per-id, so order only matters for
// determinism). Jobs are filtered the same way the append hook filters
// them, so a compacted snapshot never carries records the live log
// would not.
func (m *jobManager) exportTerminal() []durable.JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]durable.JobRecord, 0, m.terminal)
	for _, j := range m.order {
		if !j.state.Terminal() || !persistable(j) {
			continue
		}
		out = append(out, jobRecord(j))
	}
	return out
}
