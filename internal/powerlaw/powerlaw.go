// Package powerlaw measures the path statistics analyzed in the paper's §9:
// Y(q), the number of simple q-node paths whose first node has the highest
// id (the cost driver of the naive/PS procedure, Equation 2), and X(q), the
// number of high-starting paths under the degree order (the cost driver of
// DB, Equation 3). It also checks the λ-balancedness property of degree
// sequences (§10 Claim 10.1). These exact counters let the experiments
// verify Theorem 9.1's predicted polynomial separation on Chung-Lu graphs.
package powerlaw

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// YQ counts simple paths (u1,…,uq) with id(u1) > id(uj) for all j ≥ 2
// (§9 Equation 2). Exact enumeration; cost is proportional to the result.
func YQ(g *graph.Graph, q int, workers int) uint64 {
	return countPaths(g, q, workers, func(start, v uint32) bool { return start > v })
}

// XQ counts simple paths (u1,…,uq) with u1 ≻ uj in the degree-based total
// order (§9 Equation 3) — the high-starting paths of the DB procedure.
func XQ(g *graph.Graph, q int, workers int) uint64 {
	return countPaths(g, q, workers, g.Higher)
}

// countPaths enumerates simple q-node paths whose start dominates every
// later node under the given order, parallelized over start vertices.
func countPaths(g *graph.Graph, q int, workers int, higher func(start, v uint32) bool) uint64 {
	if q < 2 {
		return uint64(g.N())
	}
	if workers < 1 {
		workers = 1
	}
	var total atomic.Uint64
	var next atomic.Int64
	const chunk = 256
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			onPath := make(map[uint32]bool, q)
			var sum uint64
			var dfs func(start, cur uint32, depth int)
			dfs = func(start, cur uint32, depth int) {
				for _, nb := range g.Neighbors(cur) {
					if !higher(start, nb) || onPath[nb] {
						continue
					}
					if depth == q {
						sum++
						continue
					}
					onPath[nb] = true
					dfs(start, nb, depth+1)
					delete(onPath, nb)
				}
			}
			for {
				lo := next.Add(chunk) - chunk
				if lo >= int64(g.N()) {
					break
				}
				hi := lo + chunk
				if hi > int64(g.N()) {
					hi = int64(g.N())
				}
				for v := lo; v < hi; v++ {
					start := uint32(v)
					onPath[start] = true
					dfs(start, start, 2)
					delete(onPath, start)
				}
			}
			total.Add(sum)
		}()
	}
	wg.Wait()
	return total.Load()
}

// Balancedness returns λ(a,b) = Σd^(a+b) / (Σd^a · Σd^b) for the actual
// degree sequence of g. A sequence is λ-balanced when this is small; §10
// shows truncated power laws give λ = O(n^(α/2−1)).
func Balancedness(g *graph.Graph, a, b int) float64 {
	var sa, sb, sab float64
	for v := 0; v < g.N(); v++ {
		d := float64(g.Degree(uint32(v)))
		if d == 0 {
			continue
		}
		sa += math.Pow(d, float64(a))
		sb += math.Pow(d, float64(b))
		sab += math.Pow(d, float64(a+b))
	}
	if sa == 0 || sb == 0 {
		return 0
	}
	return sab / (sa * sb)
}

// TheoryY returns the §9.3/Lemma 9.8 growth exponent of E[Y(q)] on
// truncated power-law Chung-Lu graphs: α − 1 + (2−α)·q/2.
func TheoryY(alpha float64, q int) float64 {
	return alpha - 1 + (2-alpha)*float64(q)/2
}

// TheoryX returns the Lemma 9.8 growth exponent of E[X(q)]:
// 1/2 + (2−α)(q−1)/2 for α < 2 − 1/(q−1), and ≈1 (n·polylog) above.
func TheoryX(alpha float64, q int) float64 {
	if alpha < 2-1/float64(q-1) {
		return 0.5 + (2-alpha)*float64(q-1)/2
	}
	return 1
}

// FitSlope returns the least-squares slope of log(y) against log(x):
// the empirical growth exponent across a size sweep.
func FitSlope(xs []int, ys []uint64) float64 {
	n := 0
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if ys[i] == 0 {
			continue
		}
		lx := math.Log(float64(xs[i]))
		ly := math.Log(float64(ys[i]))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}
