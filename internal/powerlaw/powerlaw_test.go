package powerlaw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Brute-force reference counter for small graphs.
func refCount(g *graph.Graph, q int, higher func(a, b uint32) bool) uint64 {
	var count uint64
	var path []uint32
	var dfs func(start, cur uint32)
	dfs = func(start, cur uint32) {
		if len(path) == q {
			count++
			return
		}
		for _, nb := range g.Neighbors(cur) {
			if !higher(start, nb) {
				continue
			}
			on := false
			for _, p := range path {
				if p == nb {
					on = true
					break
				}
			}
			if on {
				continue
			}
			path = append(path, nb)
			dfs(start, nb)
			path = path[:len(path)-1]
		}
	}
	for v := 0; v < g.N(); v++ {
		path = append(path[:0], uint32(v))
		dfs(uint32(v), uint32(v))
	}
	return count
}

func TestCountersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.ErdosRenyi("er", 60, 200, rng)
	for q := 2; q <= 5; q++ {
		wantY := refCount(g, q, func(a, b uint32) bool { return a > b })
		if got := YQ(g, q, 3); got != wantY {
			t.Errorf("Y(%d) = %d, want %d", q, got, wantY)
		}
		wantX := refCount(g, q, g.Higher)
		if got := XQ(g, q, 3); got != wantX {
			t.Errorf("X(%d) = %d, want %d", q, got, wantX)
		}
	}
}

// Every simple path has exactly one representation with the max-id node
// first... not quite: Y counts paths whose FIRST node is the max, and each
// undirected simple path of q distinct nodes has 2 directed traversals, of
// which the max node leads at most one end. Sanity check on a path graph:
// P3 (a-b-c) has Y(3) counts only from endpoint starts where the start
// dominates: exactly 1 (from the larger endpoint) when ids are 0,1,2
// arranged a-b-c... verify by hand below.
func TestHandExample(t *testing.T) {
	// Path 0-1-2: 3-node paths are (0,1,2) and (2,1,0); only (2,1,0) has
	// the highest id first.
	g := graph.FromEdges("p3", 3, [][2]uint32{{0, 1}, {1, 2}})
	if got := YQ(g, 3, 1); got != 1 {
		t.Fatalf("Y(3) on P3 = %d, want 1", got)
	}
	// Degrees: 1,2,1 → rank order: 0,2,1 (by degree then id). Highest-first
	// paths under ≻: start must dominate; only start=1 dominates both, and
	// (1,0,?) dead-ends... (1,0) has no continuation; (1,2) none. So X(3)=0.
	if got := XQ(g, 3, 1); got != 0 {
		t.Fatalf("X(3) on P3 = %d, want 0", got)
	}
	// Triangle: Y(3): starts at node 2: paths (2,0,1),(2,1,0) → 2.
	tri := graph.FromEdges("c3", 3, [][2]uint32{{0, 1}, {1, 2}, {0, 2}})
	if got := YQ(tri, 3, 1); got != 2 {
		t.Fatalf("Y(3) on C3 = %d, want 2", got)
	}
	if got := XQ(tri, 3, 1); got != 2 {
		t.Fatalf("X(3) on C3 = %d, want 2", got)
	}
}

func TestWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.PowerLawGraph("pl", 2000, 1.5, rng)
	base := XQ(g, 4, 1)
	for _, w := range []int{2, 4, 8} {
		if got := XQ(g, 4, w); got != base {
			t.Fatalf("workers=%d: %d != %d", w, got, base)
		}
	}
}

// Theorem 9.1 in miniature: on power-law Chung-Lu graphs the degree order
// prunes paths — X(q) stays well below Y(q) across tail weights, and by
// Corollary 9.9 the separation grows polynomially with n (exponent
// (α−1)/2 below the regime boundary; for α=1.5, q=4 the Lemma 9.8
// exponents are Y: 1.5, X: 1.25, so Y/X ≈ n^0.25).
func TestXBelowY(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, alpha := range []float64{1.2, 1.5, 1.8} {
		g := gen.PowerLawGraph("pl", 8000, alpha, rng)
		x, y := XQ(g, 3, 2), YQ(g, 3, 2)
		if x == 0 || y == 0 {
			t.Fatalf("alpha %.1f: degenerate counts x=%d y=%d", alpha, x, y)
		}
		if x >= y {
			t.Errorf("alpha %.1f: X=%d not below Y=%d", alpha, x, y)
		}
	}
	ratioAt := func(n int) float64 {
		g := gen.PowerLawGraph("pl", n, 1.5, rng)
		x, y := XQ(g, 4, 2), YQ(g, 4, 2)
		if x == 0 {
			t.Fatalf("n=%d: X(4)=0", n)
		}
		return float64(y) / float64(x)
	}
	small, large := ratioAt(2000), ratioAt(32000)
	// n grows 16×, so the predicted ratio growth is ≈16^0.25 = 2; accept
	// anything comfortably above noise.
	if large < small*1.3 {
		t.Errorf("Y/X separation did not grow with n: %.2f → %.2f", small, large)
	}
}

func TestBalancedness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Power-law graphs are balanced: λ(1,1) = Σd²/(Σd)² should be ≪ 1 and
	// shrink with n (≈ n^(−α/2) for this moment pair; Claim 10.1's uniform
	// bound over all (a,b) is n^(α/2−1)).
	var prev float64 = math.Inf(1)
	for _, n := range []int{2000, 8000, 32000} {
		g := gen.PowerLawGraph("pl", n, 1.5, rng)
		l := Balancedness(g, 1, 1)
		if l <= 0 || l >= 0.2 {
			t.Fatalf("n=%d: λ(1,1) = %f out of range", n, l)
		}
		if l >= prev {
			t.Errorf("λ should shrink with n: n=%d gives %f ≥ %f", n, l, prev)
		}
		prev = l
	}
}

func TestTheoryExponents(t *testing.T) {
	// Lemma 9.8 examples: α=1.5, q=3 → Y exponent 1.25, X exponent 1.0
	// (α ≥ 2−1/(q−1) = 1.5 boundary → n log n regime).
	if got := TheoryY(1.5, 3); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("TheoryY = %f", got)
	}
	if got := TheoryX(1.5, 3); got != 1 {
		t.Errorf("TheoryX = %f, want 1 (n·polylog regime)", got)
	}
	if got := TheoryX(1.2, 3); math.Abs(got-(0.5+0.8)) > 1e-9 {
		t.Errorf("TheoryX(1.2,3) = %f, want 1.3", got)
	}
}

func TestFitSlope(t *testing.T) {
	// y = x² → slope 2 in log-log.
	xs := []int{10, 100, 1000}
	ys := []uint64{100, 10000, 1000000}
	if got := FitSlope(xs, ys); math.Abs(got-2) > 1e-6 {
		t.Fatalf("slope = %f, want 2", got)
	}
	if got := FitSlope([]int{10}, []uint64{100}); got != 0 {
		t.Fatalf("degenerate fit = %f", got)
	}
}
