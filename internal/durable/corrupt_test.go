package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixture records a small WAL (three runs, one job) and returns its raw
// bytes plus the per-record frame boundaries, so corruption tests can cut
// and flip at precise offsets.
func fixture(t testing.TB) ([]byte, []int64) {
	t.Helper()
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	for i, app := range []func(){
		func() { l.AppendRun(testRun(1, 3)) },
		func() { l.AppendRun(testRun(2, 5)) },
		func() { l.AppendJob(testJob("j1")) },
		func() { l.AppendRun(testRun(3, 2)) },
	} {
		app()
		l.Flush()
		if s := l.Stats(); s.WalBytes == 0 {
			t.Fatalf("record %d not written", i)
		}
		bounds = append(bounds, l.Stats().WalBytes)
	}
	l.Close()
	b, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) != bounds[len(bounds)-1] {
		t.Fatalf("wal is %d bytes, stats said %d", len(b), bounds[len(bounds)-1])
	}
	return b, bounds
}

// replayBytes writes raw bytes as a WAL in a fresh dir and opens it.
func replayBytes(t testing.TB, b []byte) (*Log, State) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	l, st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open on corrupt wal errored (must truncate, never fail): %v", err)
	}
	return l, st
}

// wantPrefix maps a frame-boundary index to the records replay must
// recover when everything past that boundary is damaged.
func wantPrefix(n int) ([]RunRecord, []JobRecord) {
	runs := []RunRecord{testRun(1, 3), testRun(2, 5), testRun(3, 2)}
	switch {
	case n <= 0:
		return nil, nil
	case n == 1:
		return runs[:1], nil
	case n == 2:
		return runs[:2], nil
	case n == 3:
		return runs[:2], []JobRecord{testJob("j1")}
	}
	return runs, []JobRecord{testJob("j1")}
}

// TestTruncatedTail cuts the WAL at every frame-straddling position
// around each boundary (plus a byte-by-byte sweep of the first frame) and
// asserts replay recovers exactly the complete-frame prefix, truncates
// the torn tail on disk, and counts the dropped bytes.
func TestTruncatedTail(t *testing.T) {
	b, bounds := fixture(t)
	cuts := []int64{0, 1, 4, 7}
	for _, bd := range bounds {
		cuts = append(cuts, bd-1, bd, bd+3)
	}
	for _, cut := range cuts {
		if cut < 0 || cut > int64(len(b)) {
			continue
		}
		l, st := replayBytes(t, b[:cut])
		frames := 0
		for _, bd := range bounds {
			if bd <= cut {
				frames++
			}
		}
		wr, wj := wantPrefix(frames)
		if !reflect.DeepEqual(st.Runs, wr) || !reflect.DeepEqual(st.Jobs, wj) {
			t.Errorf("cut@%d: replayed %d runs/%d jobs, want %d/%d",
				cut, len(st.Runs), len(st.Jobs), len(wr), len(wj))
		}
		validBytes := int64(0)
		if frames > 0 {
			validBytes = bounds[frames-1]
		}
		if st.TruncatedBytes != cut-validBytes {
			t.Errorf("cut@%d: TruncatedBytes = %d, want %d", cut, st.TruncatedBytes, cut-validBytes)
		}
		if got := l.Stats().WalBytes; got != validBytes {
			t.Errorf("cut@%d: wal not truncated to valid prefix: %d bytes, want %d", cut, got, validBytes)
		}
		l.Close()
	}
}

// TestBitFlippedTail flips one byte inside the final frame at every
// offset: the CRC must reject the frame, replay keeps the prefix, and the
// damaged tail is dropped.
func TestBitFlippedTail(t *testing.T) {
	b, bounds := fixture(t)
	lastStart := bounds[len(bounds)-2]
	for off := lastStart; off < int64(len(b)); off++ {
		mut := append([]byte(nil), b...)
		mut[off] ^= 0x40
		l, st := replayBytes(t, mut)
		wr, wj := wantPrefix(len(bounds) - 1)
		// A flip in the length prefix may also masquerade as a longer
		// frame; either way nothing past the prefix may survive.
		if !reflect.DeepEqual(st.Runs, wr) || !reflect.DeepEqual(st.Jobs, wj) {
			t.Errorf("flip@%d: replay diverged from the undamaged prefix", off)
		}
		if st.TruncatedBytes == 0 {
			t.Errorf("flip@%d: no bytes reported dropped", off)
		}
		l.Close()
	}
}

// TestBitFlippedMiddle damages an interior frame: replay stops at the
// last good record before it — later intact frames are unreachable
// (append-only logs have no resync marker) and must be dropped, not
// misparsed.
func TestBitFlippedMiddle(t *testing.T) {
	b, bounds := fixture(t)
	mut := append([]byte(nil), b...)
	mut[bounds[0]+frameHeader+2] ^= 0x01 // inside frame 2's payload
	l, st := replayBytes(t, mut)
	defer l.Close()
	wr, wj := wantPrefix(1)
	if !reflect.DeepEqual(st.Runs, wr) || !reflect.DeepEqual(st.Jobs, wj) {
		t.Errorf("mid-flip: replayed %d runs/%d jobs, want 1/0", len(st.Runs), len(st.Jobs))
	}
	if st.TruncatedBytes != int64(len(b))-bounds[0] {
		t.Errorf("mid-flip: TruncatedBytes = %d, want %d", st.TruncatedBytes, int64(len(b))-bounds[0])
	}
}

// TestAppendAfterTruncation: after replaying a torn WAL, fresh appends
// extend the valid prefix and the next replay sees old prefix + new
// records — the recovery path is not a dead end.
func TestAppendAfterTruncation(t *testing.T) {
	b, bounds := fixture(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), b[:bounds[1]+5], 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(Options{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l.AppendRun(testRun(9, 4))
	l.Close()
	l2, st := openT(t, dir, Options{})
	defer l2.Close()
	want := []RunRecord{testRun(1, 3), testRun(2, 5), testRun(9, 4)}
	if !reflect.DeepEqual(st.Runs, want) {
		t.Errorf("post-recovery appends lost: %d runs, want 3", len(st.Runs))
	}
	if st.TruncatedBytes != 0 {
		t.Errorf("second replay still sees torn bytes: %d", st.TruncatedBytes)
	}
}

// FuzzWALReplay feeds arbitrary bytes as a WAL: replay must never panic,
// must truncate to a valid prefix, and a second replay of the truncated
// file must be clean and identical.
func FuzzWALReplay(f *testing.F) {
	b, bounds := fixture(f)
	f.Add(b)
	f.Add(b[:bounds[1]+3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Skip()
		}
		l, st, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open errored on arbitrary bytes: %v", err)
		}
		valid := l.Stats().WalBytes
		if valid+st.TruncatedBytes != int64(len(data)) {
			t.Fatalf("valid %d + truncated %d != input %d", valid, st.TruncatedBytes, len(data))
		}
		l.Close()
		l2, st2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("re-Open errored: %v", err)
		}
		if st2.TruncatedBytes != 0 {
			t.Fatalf("truncated file still replays %d torn bytes", st2.TruncatedBytes)
		}
		if !reflect.DeepEqual(st2.Runs, st.Runs) || !reflect.DeepEqual(st2.Jobs, st.Jobs) {
			t.Fatal("second replay diverges from first")
		}
		l2.Close()
	})
}
