// Package durable is the serving tier's persistence layer: an
// append-only, CRC-framed record log that survives process death. It
// persists exactly two record kinds — accumulated trial runs (the
// trial-granular result cache's entries) and terminal jobs — and replays
// them on boot, so a restarted server serves warm-cache hits and keeps
// finished jobs addressable without recomputing anything.
//
// # Design
//
// Appends are asynchronous: callers enqueue records on an unbounded
// in-memory queue and a single writer goroutine encodes, frames, and
// writes them, so the serving hot path never blocks on disk. The queue
// depth is exported as lag. Durability is tunable per fsync policy:
// "always" syncs after every drained batch (group commit), "interval"
// syncs on a timer, "never" leaves it to the OS.
//
// Each record is framed as
//
//	[4-byte BE length][4-byte BE CRC32-C][payload]
//
// where the payload is one kind byte followed by the record's gob
// encoding, the length counts the payload, and the CRC covers the
// payload. Replay consumes the longest valid prefix: a torn, truncated,
// or bit-flipped tail fails its length bound, CRC, or decode and stops
// the replay there — never fatally — and the file is truncated back to
// the valid prefix so future appends extend clean state. The same
// deterministic-trials property that makes the result cache sound makes
// replay idempotent: runs merge longest-wins per trial stream and
// terminal job records are immutable per id, so replaying a record twice
// (snapshot + un-truncated WAL after a mid-compaction crash) changes
// nothing.
//
// # Compaction
//
// When the WAL grows past Options.CompactBytes the writer snapshots the
// live state (pulled from Options.Snapshot, so the log never mirrors the
// cache in memory) into a sibling file — written whole, synced, and
// renamed into place — then truncates the WAL. Replay loads the snapshot
// first, then the WAL on top. A crash at any point leaves either the old
// snapshot + old WAL or the new snapshot + a WAL whose records the
// snapshot already covers; both replay to the same state.
package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
)

// Fsync policies.
const (
	FsyncAlways   = "always"   // sync after every drained batch
	FsyncInterval = "interval" // sync on a timer (Options.FsyncEvery)
	FsyncNever    = "never"    // never sync explicitly; the OS decides
)

// File names inside the data dir.
const (
	walName  = "wal.log"
	snapName = "snapshot.db"
	tmpName  = "snapshot.tmp"
)

// Record kinds (the payload's first byte).
const (
	kindRun byte = 1
	kindJob byte = 2
)

// frameHeader is the per-record framing overhead: length + CRC.
const frameHeader = 8

// maxRecord bounds one record's payload (256 MiB): a corrupt length
// prefix must terminate replay, not drive a huge allocation.
const maxRecord = 1 << 28

// crcTable is CRC32-Castagnoli, the polynomial with hardware support on
// both amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RunRecord persists one trial stream's accumulated state: the stream
// identity (mirroring the service cache's TrialKey field for field) and
// the per-trial counts and engine stats. Trials over one stream are
// deterministic, so a longer record strictly extends a shorter one and
// replay merges records longest-wins.
type RunRecord struct {
	Graph     uint64 // data-graph fingerprint
	Query     string // canonical query signature
	Algorithm int
	Backend   string
	Seed      int64
	Ranks     int
	Counts    []uint64
	Stats     []core.Stats
}

// streamKey identifies a RunRecord's trial stream for the replay merge.
type streamKey struct {
	graph     uint64
	query     string
	algorithm int
	backend   string
	seed      int64
	ranks     int
}

func (r RunRecord) key() streamKey {
	return streamKey{graph: r.Graph, query: r.Query, algorithm: r.Algorithm,
		backend: r.Backend, seed: r.Seed, ranks: r.Ranks}
}

// JobRecord persists one terminal job: everything GET /v1/jobs/{id} and
// /v1/jobs/{id}/result need to answer after a restart. Terminal jobs
// never change, so replay keeps the first record seen per id.
type JobRecord struct {
	ID          string
	State       string // done | failed | canceled
	Graph       string
	Query       string
	Cached      bool
	Coalesced   bool
	TrialsTotal int
	TrialsDone  int
	Error       string
	Created     time.Time
	Started     time.Time
	Finished    time.Time
	Expires     time.Time
	Estimate    *coloring.Estimate // nil unless State is done
}

// Options configures a Log.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// Fsync is the sync policy: FsyncAlways, FsyncInterval (default), or
	// FsyncNever.
	Fsync string
	// FsyncEvery is the interval policy's cadence (≤ 0 means 100ms).
	FsyncEvery time.Duration
	// CompactBytes triggers snapshot+truncate once the WAL exceeds it
	// (≤ 0 means 64 MiB). Compaction also needs Snapshot.
	CompactBytes int64
	// Snapshot supplies the full live state for compaction, so the log
	// does not mirror it in memory. Nil disables compaction.
	Snapshot func() ([]RunRecord, []JobRecord)
	// Logger receives replay and write diagnostics. Nil means
	// slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("durable: Options.Dir is required")
	}
	switch o.Fsync {
	case "":
		o.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return o, fmt.Errorf("durable: bad fsync policy %q (want %s, %s, or %s)",
			o.Fsync, FsyncAlways, FsyncInterval, FsyncNever)
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 64 << 20
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o, nil
}

// State is the replayed boot state: runs merged longest-wins per trial
// stream and terminal jobs deduplicated by id, both in first-appearance
// order (for jobs, that is terminal order — the order they finished in).
type State struct {
	Runs []RunRecord
	Jobs []JobRecord
	// TruncatedBytes counts torn or corrupt bytes dropped from the WAL
	// tail during replay.
	TruncatedBytes int64
}

// Stats are the log's observability counters. Lag is the append queue
// depth: records accepted but not yet durably written.
type Stats struct {
	Appends        uint64 `json:"appends"`
	Lag            int    `json:"lag"`
	ReplayedRuns   uint64 `json:"replayedRuns"`
	ReplayedJobs   uint64 `json:"replayedJobs"`
	TruncatedBytes int64  `json:"truncatedBytes"`
	Compactions    uint64 `json:"compactions"`
	Fsyncs         uint64 `json:"fsyncs"`
	WriteErrors    uint64 `json:"writeErrors"`
	WalBytes       int64  `json:"walBytes"`
	SnapshotBytes  int64  `json:"snapshotBytes"`
}

// queued is one record accepted for writing but not yet encoded.
type queued struct {
	kind byte
	run  RunRecord
	job  JobRecord
}

// Log is the append-only record log. Appends are asynchronous and safe
// for concurrent use; replay happens once, inside Open, before any
// append is accepted.
type Log struct {
	opts   Options
	logger *slog.Logger

	mu     sync.Mutex
	queue  []queued
	closed bool
	wake   chan struct{} // 1-buffered writer doorbell
	done   chan struct{} // writer exited

	f        *os.File // WAL, append-only; owned by the writer goroutine after Open
	walBytes atomic.Int64
	snapshot atomic.Int64 // snapshot file size

	// pendingBatch counts records drained from the queue but not yet
	// written, so Flush and Stats observe the full in-flight set.
	pendingBatch atomic.Int64

	appends      atomic.Uint64
	replayedRuns uint64 // written once in Open, before the writer starts
	replayedJobs uint64
	truncated    int64
	compactions  atomic.Uint64
	fsyncs       atomic.Uint64
	writeErrors  atomic.Uint64
}

// Open replays the data dir's snapshot and WAL, truncates any torn or
// corrupt WAL tail, and returns the log (ready for appends) together
// with the replayed state. The caller installs the state before serving
// traffic; Open itself never fails on corruption — only on real I/O or
// configuration errors.
func Open(opts Options) (*Log, State, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, State{}, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, State{}, fmt.Errorf("durable: data dir: %w", err)
	}
	l := &Log{
		opts:   opts,
		logger: opts.Logger,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}

	st := newReplayState()
	// Snapshot first: it is the compacted base the WAL extends. It was
	// written whole and renamed into place, so corruption means disk
	// trouble — replay the valid prefix and keep going, same as the WAL.
	snapPath := filepath.Join(opts.Dir, snapName)
	if b, err := os.ReadFile(snapPath); err == nil {
		valid := st.replay(b)
		if valid < int64(len(b)) {
			l.truncated += int64(len(b)) - valid
			l.logger.Warn("durable: snapshot tail corrupt; replayed valid prefix",
				"path", snapPath, "validBytes", valid, "dropped", int64(len(b))-valid)
		}
		l.snapshot.Store(int64(len(b)))
	} else if !os.IsNotExist(err) {
		return nil, State{}, fmt.Errorf("durable: snapshot: %w", err)
	}

	walPath := filepath.Join(opts.Dir, walName)
	if b, err := os.ReadFile(walPath); err == nil {
		valid := st.replay(b)
		if valid < int64(len(b)) {
			// Torn tail (crash mid-append) or corruption: drop it so the
			// next append extends clean state instead of garbage.
			l.truncated += int64(len(b)) - valid
			l.logger.Warn("durable: wal tail torn or corrupt; truncating",
				"path", walPath, "validBytes", valid, "dropped", int64(len(b))-valid)
			if err := os.Truncate(walPath, valid); err != nil {
				return nil, State{}, fmt.Errorf("durable: truncating wal tail: %w", err)
			}
		}
		l.walBytes.Store(valid)
	} else if !os.IsNotExist(err) {
		return nil, State{}, fmt.Errorf("durable: wal: %w", err)
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, State{}, fmt.Errorf("durable: opening wal: %w", err)
	}
	l.f = f
	out := st.state()
	out.TruncatedBytes = l.truncated
	l.replayedRuns = uint64(len(out.Runs))
	l.replayedJobs = uint64(len(out.Jobs))
	go l.writer()
	return l, out, nil
}

// AppendRun enqueues one trial run for writing. Non-blocking; a no-op
// after Close.
func (l *Log) AppendRun(r RunRecord) { l.enqueue(queued{kind: kindRun, run: r}) }

// AppendJob enqueues one terminal job for writing. Non-blocking; a no-op
// after Close.
func (l *Log) AppendJob(j JobRecord) { l.enqueue(queued{kind: kindJob, job: j}) }

func (l *Log) enqueue(q queued) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.queue = append(l.queue, q)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Flush blocks until every record accepted before the call is durably
// written (and synced, under the always policy). Tests and shutdown use
// it; the serving path never does.
func (l *Log) Flush() {
	for {
		l.mu.Lock()
		n := len(l.queue)
		closed := l.closed
		l.mu.Unlock()
		if n == 0 || closed {
			// The writer may still be mid-batch; Sync below in Close
			// covers shutdown, and tests tolerate the final poll.
			if l.pendingBatch.Load() == 0 {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// Close flushes the queue, syncs, and closes the WAL. Appends after
// Close are dropped.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.done
	l.f.Close()
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	lag := len(l.queue) + int(l.pendingBatch.Load())
	l.mu.Unlock()
	return Stats{
		Appends:        l.appends.Load(),
		Lag:            lag,
		ReplayedRuns:   l.replayedRuns,
		ReplayedJobs:   l.replayedJobs,
		TruncatedBytes: l.truncated,
		Compactions:    l.compactions.Load(),
		Fsyncs:         l.fsyncs.Load(),
		WriteErrors:    l.writeErrors.Load(),
		WalBytes:       l.walBytes.Load(),
		SnapshotBytes:  l.snapshot.Load(),
	}
}

// writer is the single goroutine that drains the queue to disk. One
// writer means appends never interleave mid-frame and the fsync policy
// degenerates to simple group commit.
func (l *Log) writer() {
	defer close(l.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.opts.Fsync == FsyncInterval {
		tick = time.NewTicker(l.opts.FsyncEvery)
		tickC = tick.C
		defer tick.Stop()
	}
	dirty := false
	for {
		select {
		case <-l.wake:
		case <-tickC:
			if dirty {
				l.sync()
				dirty = false
			}
			continue
		}
		for {
			l.mu.Lock()
			batch := l.queue
			l.queue = nil
			closed := l.closed
			// pendingBatch is set under the same lock that empties the
			// queue: at every instant a record is either queued or counted
			// pending until durably written, so Flush cannot observe a gap.
			if len(batch) > 0 {
				l.pendingBatch.Store(int64(len(batch)))
			}
			l.mu.Unlock()
			if len(batch) > 0 {
				l.writeBatch(batch)
				dirty = true
				if l.opts.Fsync == FsyncAlways {
					l.sync()
					dirty = false
				}
				l.maybeCompact()
				// Lag reaches zero only once the batch is written (and,
				// under the always policy, synced) and any compaction it
				// tripped has finished: smoke tests poll lag==0 before
				// kill -9 to know the goldens are durable, and Flush
				// waits on the same signal.
				l.pendingBatch.Store(0)
				continue // re-check: more may have arrived during the write
			}
			if closed {
				if dirty {
					l.sync()
				}
				return
			}
			break
		}
	}
}

// writeBatch encodes and writes one drained batch as a single Write
// call, so a crash tears at most the batch's final partial frame.
func (l *Log) writeBatch(batch []queued) {
	var buf bytes.Buffer
	for i := range batch {
		if err := appendFrame(&buf, &batch[i]); err != nil {
			// Encoding is infallible for these types in practice; a
			// failure here is a programming error worth surfacing loudly.
			l.writeErrors.Add(1)
			l.logger.Error("durable: encoding record", "err", err)
		}
	}
	if buf.Len() == 0 {
		return
	}
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		l.writeErrors.Add(uint64(len(batch)))
		l.logger.Error("durable: wal write failed; records lost", "err", err, "records", len(batch))
		return
	}
	l.walBytes.Add(int64(buf.Len()))
	l.appends.Add(uint64(len(batch)))
}

func (l *Log) sync() {
	if err := l.f.Sync(); err != nil {
		l.writeErrors.Add(1)
		l.logger.Error("durable: fsync failed", "err", err)
		return
	}
	l.fsyncs.Add(1)
}

// appendFrame appends one framed record to buf.
func appendFrame(buf *bytes.Buffer, q *queued) error {
	var payload bytes.Buffer
	payload.WriteByte(q.kind)
	enc := gob.NewEncoder(&payload)
	var err error
	switch q.kind {
	case kindRun:
		err = enc.Encode(&q.run)
	case kindJob:
		err = enc.Encode(&q.job)
	default:
		err = fmt.Errorf("durable: unknown record kind %d", q.kind)
	}
	if err != nil {
		return err
	}
	if payload.Len() > maxRecord {
		return fmt.Errorf("durable: record exceeds %d bytes", maxRecord)
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	return nil
}

// maybeCompact snapshots and truncates the WAL once it outgrows the
// threshold. Runs on the writer goroutine, between batches, so no frame
// is ever split across the truncation.
func (l *Log) maybeCompact() {
	if l.opts.Snapshot == nil || l.walBytes.Load() < l.opts.CompactBytes {
		return
	}
	if err := l.compact(); err != nil {
		l.writeErrors.Add(1)
		l.logger.Error("durable: compaction failed; wal keeps growing", "err", err)
	}
}

func (l *Log) compact() error {
	runs, jobs := l.opts.Snapshot()
	tmp := filepath.Join(l.opts.Dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for i := range runs {
		if err := appendFrame(&buf, &queued{kind: kindRun, run: runs[i]}); err != nil {
			f.Close()
			return err
		}
	}
	for i := range jobs {
		if err := appendFrame(&buf, &queued{kind: kindJob, job: jobs[i]}); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	// The snapshot must be durably complete before it replaces the old
	// one, and durably *named* before the WAL it subsumes is truncated —
	// a crash between the two replays new snapshot + old WAL, which
	// merges to the same state (replay is idempotent).
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	final := filepath.Join(l.opts.Dir, snapName)
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(l.opts.Dir)
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	l.sync()
	l.walBytes.Store(0)
	l.snapshot.Store(int64(buf.Len()))
	l.compactions.Add(1)
	l.logger.Info("durable: compacted",
		"snapshotBytes", buf.Len(), "runs", len(runs), "jobs", len(jobs))
	return nil
}

// syncDir makes a rename durable on filesystems that require a directory
// sync. Best-effort: some platforms reject fsync on directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort
	d.Close()
}

// replayState accumulates records during Open: runs merged longest-wins
// per stream, jobs deduplicated by id, both in first-appearance order.
type replayState struct {
	runIx  map[streamKey]int
	runs   []RunRecord
	jobIx  map[string]bool
	jobs   []JobRecord
	decBuf bytes.Reader
}

func newReplayState() *replayState {
	return &replayState{runIx: make(map[streamKey]int), jobIx: make(map[string]bool)}
}

// replay consumes frames from b until the first invalid one and applies
// them; it returns the number of valid prefix bytes. Invalid means: a
// length that doesn't fit its bounds or the remaining bytes (torn tail),
// a CRC mismatch (bit rot), a gob decode failure, or an unknown kind
// (version skew) — all of them stop the replay at the last good record.
func (st *replayState) replay(b []byte) int64 {
	var off int64
	for {
		rest := b[off:]
		if len(rest) < frameHeader {
			return off
		}
		n := int(binary.BigEndian.Uint32(rest[0:4]))
		if n < 1 || n > maxRecord || n > len(rest)-frameHeader {
			return off
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(rest[4:8]) {
			return off
		}
		if !st.apply(payload) {
			return off
		}
		off += int64(frameHeader + n)
	}
}

func (st *replayState) apply(payload []byte) bool {
	kind := payload[0]
	st.decBuf.Reset(payload[1:])
	dec := gob.NewDecoder(&st.decBuf)
	switch kind {
	case kindRun:
		var r RunRecord
		if dec.Decode(&r) != nil {
			return false
		}
		k := r.key()
		if i, ok := st.runIx[k]; ok {
			if len(r.Counts) > len(st.runs[i].Counts) {
				st.runs[i] = r
			}
			return true
		}
		st.runIx[k] = len(st.runs)
		st.runs = append(st.runs, r)
	case kindJob:
		var j JobRecord
		if dec.Decode(&j) != nil {
			return false
		}
		if st.jobIx[j.ID] {
			return true // terminal jobs are immutable; first record wins
		}
		st.jobIx[j.ID] = true
		st.jobs = append(st.jobs, j)
	default:
		return false
	}
	return true
}

func (st *replayState) state() State {
	return State{Runs: st.runs, Jobs: st.jobs}
}
