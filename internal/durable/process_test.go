package durable

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// flushedRecords is how many records the crash helper durably flushes
// before signaling readiness; everything after is fair game for the kill.
const flushedRecords = 40

// crashStream builds the helper's i-th record; parent and child both
// derive expectations from it, so survival is checked bit for bit.
func crashStream(i int) RunRecord { return testRun(int64(1000+i), 3) }

// TestCrashHelperProcess is not a test: it is the child half of the
// crash matrix, entered only when the parent re-execs the test binary
// with DURABLE_CRASH_DIR set (the same trick internal/dist uses a built
// binary for). It appends and flushes a known prefix, signals readiness,
// then keeps appending until it is SIGKILLed mid-write.
func TestCrashHelperProcess(t *testing.T) {
	dir := os.Getenv("DURABLE_CRASH_DIR")
	if dir == "" {
		t.Skip("helper mode: run by TestFsyncPolicyCrashMatrix")
	}
	l, _, err := Open(Options{
		Dir:        dir,
		Fsync:      os.Getenv("DURABLE_CRASH_FSYNC"),
		FsyncEvery: 2 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper open:", err)
		os.Exit(3)
	}
	for i := 0; i < flushedRecords; i++ {
		l.AppendRun(crashStream(i))
	}
	l.Flush()
	if err := os.WriteFile(filepath.Join(dir, "ready"), []byte("ok"), 0o644); err != nil {
		os.Exit(3)
	}
	// Append forever, never closing: the parent's kill -9 lands here,
	// likely mid-batch, so the WAL tail is torn at an arbitrary point.
	for i := flushedRecords; ; i++ {
		l.AppendRun(crashStream(i))
		time.Sleep(200 * time.Microsecond)
	}
}

// TestFsyncPolicyCrashMatrix kill -9s a writer process under every fsync
// policy and demands the reopened log replays the flushed prefix
// bit-identically with a cleanly truncated tail. A process kill (unlike
// a machine crash) never loses write()ten page-cache data, so the
// flushed prefix must survive under all three policies; the matrix
// proves recovery is policy-independent and the torn tail never poisons
// replay.
func TestFsyncPolicyCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process spawn in -short mode")
	}
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
			cmd.Env = append(os.Environ(),
				"DURABLE_CRASH_DIR="+dir, "DURABLE_CRASH_FSYNC="+policy)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatalf("starting helper: %v", err)
			}
			t.Cleanup(func() {
				cmd.Process.Kill()
				cmd.Wait()
			})

			ready := filepath.Join(dir, "ready")
			deadline := time.Now().Add(20 * time.Second)
			for {
				if _, err := os.Stat(ready); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("helper never signaled readiness")
				}
				time.Sleep(5 * time.Millisecond)
			}
			// Let it run on so the kill lands mid-traffic, then kill -9.
			time.Sleep(30 * time.Millisecond)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("kill: %v", err)
			}
			cmd.Wait()

			l, st, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after kill -9: %v", err)
			}
			defer l.Close()
			if len(st.Runs) < flushedRecords {
				t.Fatalf("replayed %d runs, want at least the %d flushed before the kill",
					len(st.Runs), flushedRecords)
			}
			for i := 0; i < flushedRecords; i++ {
				if !reflect.DeepEqual(st.Runs[i], crashStream(i)) {
					t.Fatalf("flushed record %d replayed corrupted", i)
				}
			}
			// Records past the flush point may or may not have landed; the
			// ones that did must still be intact — torn means dropped, never
			// mangled.
			for i := flushedRecords; i < len(st.Runs); i++ {
				if !reflect.DeepEqual(st.Runs[i], crashStream(i)) {
					t.Fatalf("post-flush record %d replayed corrupted", i)
				}
			}
			t.Logf("%s: %d runs survived (%d flushed), %d torn bytes truncated",
				policy, len(st.Runs), flushedRecords, st.TruncatedBytes)
		})
	}
}
