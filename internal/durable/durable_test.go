package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
)

// testRun builds a deterministic RunRecord for stream seed with n trials:
// every field populated, so round-trip mismatches can't hide in zeros.
func testRun(seed int64, n int) RunRecord {
	r := RunRecord{
		Graph:     0xdeadbeef ^ uint64(seed),
		Query:     fmt.Sprintf("k5:sig%d", seed),
		Algorithm: 1,
		Backend:   "parallel",
		Seed:      seed,
		Ranks:     4,
	}
	for i := 0; i < n; i++ {
		r.Counts = append(r.Counts, uint64(seed)*1000+uint64(i))
		r.Stats = append(r.Stats, core.Stats{
			Backend: "parallel", Workers: 4, MaxLoad: int64(i + 1),
			AvgLoad: 0.25 * float64(i), TotalLoad: int64(seed) + int64(i),
			Messages: int64(i * 7), Supersteps: int64(i + 2),
			Loads: []int64{int64(i), int64(i) + 1},
		})
	}
	return r
}

func testJob(id string) JobRecord {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return JobRecord{
		ID: id, State: "done", Graph: "enron", Query: "glet1",
		Cached: true, TrialsTotal: 3, TrialsDone: 3,
		Created: now, Started: now.Add(time.Millisecond),
		Finished: now.Add(time.Second), Expires: now.Add(time.Hour),
		Estimate: &coloring.Estimate{Graph: "enron", Query: "glet1",
			Trials: 3, Counts: []uint64{4418, 8064, 1442}, Matches: 120868.05},
	}
}

func openT(t *testing.T, dir string, opts Options) (*Log, State) {
	t.Helper()
	opts.Dir = dir
	l, st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, st
}

// TestRoundTrip is the core contract: everything appended before Close is
// replayed bit-identically on the next Open.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, st := openT(t, dir, Options{Fsync: FsyncAlways})
	if len(st.Runs) != 0 || len(st.Jobs) != 0 {
		t.Fatalf("fresh dir replayed state: %+v", st)
	}
	want := []RunRecord{testRun(1, 3), testRun(2, 5), testRun(3, 1)}
	for _, r := range want {
		l.AppendRun(r)
	}
	wantJobs := []JobRecord{testJob("j1"), testJob("j2")}
	for _, j := range wantJobs {
		l.AppendJob(j)
	}
	l.Close()

	l2, st2 := openT(t, dir, Options{})
	defer l2.Close()
	if !reflect.DeepEqual(st2.Runs, want) {
		t.Errorf("replayed runs diverge:\n got %+v\nwant %+v", st2.Runs, want)
	}
	if !reflect.DeepEqual(st2.Jobs, wantJobs) {
		t.Errorf("replayed jobs diverge:\n got %+v\nwant %+v", st2.Jobs, wantJobs)
	}
	if st2.TruncatedBytes != 0 {
		t.Errorf("clean log replayed with TruncatedBytes = %d", st2.TruncatedBytes)
	}
	if s := l2.Stats(); s.ReplayedRuns != 3 || s.ReplayedJobs != 2 {
		t.Errorf("stats = %+v, want 3 replayed runs / 2 jobs", s)
	}
}

// TestReplayMergesLongestWins: repeated records over one trial stream
// merge to the longest (the cache's extension semantics), and terminal
// job records are first-wins per id.
func TestReplayMergesLongestWins(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	l.AppendRun(testRun(7, 2))
	l.AppendRun(testRun(7, 6)) // extension: same stream, more trials
	l.AppendRun(testRun(7, 4)) // shorter re-append: must not shrink
	first := testJob("j9")
	l.AppendJob(first)
	dup := testJob("j9")
	dup.State = "failed" // corrupt duplicate; replay must keep the first
	l.AppendJob(dup)
	l.Close()

	l2, st := openT(t, dir, Options{})
	defer l2.Close()
	if len(st.Runs) != 1 || !reflect.DeepEqual(st.Runs[0], testRun(7, 6)) {
		t.Errorf("merged runs = %+v, want the 6-trial record alone", st.Runs)
	}
	if len(st.Jobs) != 1 || !reflect.DeepEqual(st.Jobs[0], first) {
		t.Errorf("merged jobs = %+v, want the first j9 record alone", st.Jobs)
	}
}

// TestCompaction: past the size threshold the log snapshots the live
// state and truncates the WAL; a subsequent Open replays snapshot + WAL
// to the same state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	// The "live state" the compactor snapshots: the canonical merge of
	// everything appended, exactly what a real service would export.
	var mu sync.Mutex
	live := map[int64]RunRecord{}
	snapshot := func() ([]RunRecord, []JobRecord) {
		mu.Lock()
		defer mu.Unlock()
		var runs []RunRecord
		for s := int64(0); s < 64; s++ {
			if r, ok := live[s]; ok {
				runs = append(runs, r)
			}
		}
		return runs, []JobRecord{testJob("j1")}
	}
	l, _ := openT(t, dir, Options{CompactBytes: 1, Snapshot: snapshot})
	for s := int64(0); s < 16; s++ {
		r := testRun(s, 3)
		mu.Lock()
		live[s] = r
		mu.Unlock()
		l.AppendRun(r)
	}
	l.Flush()
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot file after compaction: %v", err)
	}
	l.Close()

	l2, got := openT(t, dir, Options{})
	defer l2.Close()
	wantRuns, wantJobs := snapshot()
	if !reflect.DeepEqual(got.Runs, wantRuns) {
		t.Errorf("post-compaction replay runs diverge:\n got %d records\nwant %d", len(got.Runs), len(wantRuns))
	}
	if !reflect.DeepEqual(got.Jobs, wantJobs) {
		t.Errorf("post-compaction replay jobs = %+v, want %+v", got.Jobs, wantJobs)
	}
}

// TestConcurrentAppendDuringCompaction hammers the append path from many
// goroutines while tiny CompactBytes forces compactions to interleave
// with the writes; run under -race this is the data-race gate for the
// queue/writer/compactor interplay. Afterward every stream must replay
// at its longest appended length.
func TestConcurrentAppendDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	const streams, perStream = 8, 20
	var mu sync.Mutex
	live := map[int64]RunRecord{}
	snapshot := func() ([]RunRecord, []JobRecord) {
		mu.Lock()
		defer mu.Unlock()
		var runs []RunRecord
		for s := int64(0); s < streams; s++ {
			if r, ok := live[s]; ok {
				runs = append(runs, r)
			}
		}
		return runs, nil
	}
	l, _ := openT(t, dir, Options{CompactBytes: 1, Fsync: FsyncNever, Snapshot: snapshot})
	var wg sync.WaitGroup
	for s := int64(0); s < streams; s++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			for n := 1; n <= perStream; n++ {
				r := testRun(s, n)
				mu.Lock()
				if len(live[s].Counts) < n {
					live[s] = r
				}
				mu.Unlock()
				l.AppendRun(r)
			}
		}(s)
	}
	wg.Wait()
	l.Close()

	l2, st := openT(t, dir, Options{})
	defer l2.Close()
	if len(st.Runs) != streams {
		t.Fatalf("replayed %d streams, want %d", len(st.Runs), streams)
	}
	for _, r := range st.Runs {
		if len(r.Counts) != perStream {
			t.Errorf("stream seed=%d replayed %d trials, want %d", r.Seed, len(r.Counts), perStream)
		}
		if !reflect.DeepEqual(r, testRun(r.Seed, perStream)) {
			t.Errorf("stream seed=%d replay diverges from appended record", r.Seed)
		}
	}
}

// TestBadPolicyAndMissingDir cover the configuration errors Open does
// surface (as opposed to corruption, which it never fails on).
func TestBadPolicyAndMissingDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Error("Open without Dir succeeded")
	}
	if _, _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("Open with bogus fsync policy succeeded")
	}
}

// TestAppendAfterClose: appends after Close are dropped, not panics.
func TestAppendAfterClose(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	l.Close()
	l.AppendRun(testRun(1, 1)) // must not panic or block
	l.Close()                  // double close must be safe
}
