package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// ReadRuns replays a data directory's snapshot and WAL read-only and
// returns the merged run records (longest-wins per trial stream, job
// records skipped) — the full durable trial state, including streams
// the serving cache has since evicted. It is the handoff exporter's
// source of truth: safe to call on a live directory because the replay
// consumes the longest valid frame prefix, so a concurrent append at
// worst contributes a torn tail that is simply not exported yet. The
// files are never modified.
func ReadRuns(dir string) ([]RunRecord, error) {
	st := newReplayState()
	for _, name := range []string{snapName, walName} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("durable: reading %s: %w", name, err)
		}
		st.replay(b)
	}
	return st.runs, nil
}
