package coloring

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/query"
)

// Precision-targeted estimation: the estimate is an average of i.i.d.
// per-coloring counts, so the number of trials needed for a target
// relative error at a target confidence can be decided while running from
// the observed variance (§3; Malík et al. 2019 stop by sample-variance
// confidence intervals). This file provides the pieces: a deterministic
// coloring Stream (the lazy form of Draw), a Session accumulating one
// trial at a time, the Adaptive stopping rule, and Assemble — the one
// place multi-trial counts become an Estimate, shared by the batch Run
// path and the incremental path so both are bit-identical by construction.

// Defaults of the adaptive stopping rule.
const (
	DefaultConfidence = 0.95
	DefaultMinTrials  = 3
	DefaultMaxTrials  = 1024
)

// TrialMeasurement is the name under which each trial's wall time is
// reported to a ctx-attached obs.Trace. It is an Observe (sink-only
// measurement), not a span: a trial envelops every solver-phase span
// recorded inside it, so adding it to the trace's phase totals would
// double-count against the job's wall time — but the per-backend trial
// latency histograms still want the distribution.
const TrialMeasurement = "trial"

// Precision declares a target accuracy: the estimate's two-sided
// Confidence-level confidence interval (normal approximation over the
// per-trial counts) should have half-width at most RelErr of the mean.
// The zero value (RelErr 0) means "no target": fixed-trial estimation.
type Precision struct {
	// RelErr is the target relative error (0.1 = ±10%); must be > 0 for
	// the target to be enabled.
	RelErr float64
	// Confidence is the two-sided confidence level in (0,1); ≤ 0 means
	// DefaultConfidence.
	Confidence float64
}

// Enabled reports whether a target is declared.
func (p Precision) Enabled() bool { return p.RelErr > 0 }

// z returns the two-sided normal quantile of the confidence level: the
// half-width of the CI is z·s/√T.
func (p Precision) z() float64 {
	c := p.Confidence
	if c <= 0 {
		c = DefaultConfidence
	}
	if c >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(c)
}

// Adaptive bounds an adaptive (precision-targeted) run: the stopping rule
// fires at the first trial count in [MinTrials, MaxTrials] whose observed
// CI meets the Precision target, and at MaxTrials regardless.
type Adaptive struct {
	Precision
	// MinTrials is the earliest trial the rule may fire at (≤ 0 means
	// DefaultMinTrials, clamped to ≥ 2 — below two trials there is no
	// variance estimate).
	MinTrials int
	// MaxTrials caps the run (≤ 0 means DefaultMaxTrials).
	MaxTrials int
}

func (a Adaptive) withDefaults() Adaptive {
	if a.MinTrials <= 0 {
		a.MinTrials = DefaultMinTrials
	}
	if a.MinTrials < 2 {
		a.MinTrials = 2
	}
	if a.MaxTrials <= 0 {
		a.MaxTrials = DefaultMaxTrials
	}
	if a.MinTrials > a.MaxTrials {
		a.MinTrials = a.MaxTrials
	}
	return a
}

// StopAt applies the stopping rule to a prefix of per-trial colorful
// counts: it returns the first trial count t in [MinTrials, min(len,
// MaxTrials)] at which z·s/√t ≤ RelErr·mean (a zero-variance prefix —
// including the all-zero one — always qualifies), or MaxTrials when the
// prefix already spans the cap. It is a pure function of the count
// sequence, which is what makes adaptive runs replayable: walking the
// rule over cached trials stops at exactly the trial the original run
// stopped at.
func (a Adaptive) StopAt(counts []uint64) (int, bool) {
	a = a.withDefaults()
	z := a.z()
	n := len(counts)
	if n > a.MaxTrials {
		n = a.MaxTrials
	}
	var mean, m2 float64 // Welford running mean and sum of squared deviations
	for t := 1; t <= n; t++ {
		x := float64(counts[t-1])
		d := x - mean
		mean += d / float64(t)
		m2 += d * (x - mean)
		if t < a.MinTrials {
			continue
		}
		variance := m2 / float64(t-1)
		if z*math.Sqrt(variance/float64(t)) <= a.RelErr*mean {
			return t, true
		}
	}
	if len(counts) >= a.MaxTrials {
		return a.MaxTrials, true
	}
	return 0, false
}

// RelCI returns the estimate's observed relative confidence-interval
// half-width at the given confidence level (≤ 0 means DefaultConfidence):
// z·s/(√T·mean), the quantity the adaptive stopping rule drives below
// RelErr. A single-trial or zero-mean-with-spread estimate has no finite
// CI and reports +Inf; an exactly-zero estimate (all counts zero) has a
// zero-width interval.
func (e Estimate) RelCI(confidence float64) float64 {
	if e.MeanColorful == 0 {
		if e.Trials > 1 && e.VarColorful == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if e.Trials < 2 {
		return math.Inf(1)
	}
	z := Precision{Confidence: confidence}.z()
	return z * math.Sqrt(e.VarColorful/float64(e.Trials)) / e.MeanColorful
}

// Stream is the lazy form of Draw: a deterministic sequence of colorings
// drawn one at a time. The i-th coloring of a Stream equals
// Draw(n, k, i+1, seed)[i], so batch and incremental runs over the same
// seed see identical trials.
type Stream struct {
	n, k  int
	rng   *rand.Rand
	drawn int
}

// NewStream starts the coloring stream for an n-vertex graph and a k-node
// query at the given seed.
func NewStream(n, k int, seed int64) *Stream {
	return &Stream{n: n, k: k, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the stream's next coloring.
func (s *Stream) Next() []uint8 {
	s.drawn++
	return Random(s.n, s.k, s.rng)
}

// Skip advances the stream past the next trials colorings without
// materializing them (the RNG still advances identically, so the stream
// stays aligned with Draw).
func (s *Stream) Skip(trials int) {
	for i := 0; i < trials; i++ {
		s.drawn++
		for j := 0; j < s.n; j++ {
			s.rng.Intn(s.k)
		}
	}
}

// Drawn reports how many colorings have been drawn or skipped.
func (s *Stream) Drawn() int { return s.drawn }

// Assemble builds the Estimate that a batch run over exactly these
// per-trial counts and engine stats would return: counts are copied,
// stats accumulated in trial order, and the §2 scaling applied. Run,
// Session, and the service's trial-granular cache all go through this one
// function, so a prefix-sliced or cache-extended estimate is bit-identical
// to a cold batch run with the same effective trial count.
func Assemble(graphName string, q *query.Graph, counts []uint64, stats []core.Stats) Estimate {
	est := Estimate{
		Query:  q.Name,
		Graph:  graphName,
		K:      q.K,
		Trials: len(counts),
		Counts: append([]uint64(nil), counts...),
	}
	for _, st := range stats {
		accumulate(&est.Stats, st)
	}
	est.finalize(q)
	return est
}

// AccumulateStats folds a slice of per-trial engine stats into one rollup,
// in trial order — the same fold Assemble applies.
func AccumulateStats(stats []core.Stats) core.Stats {
	var out core.Stats
	for _, st := range stats {
		accumulate(&out, st)
	}
	return out
}

// Session is an incremental estimation handle: it runs one deterministic
// coloring trial at a time from a seeded trial stream and snapshots the
// estimate at any prefix. A Session advanced T times yields an Estimate
// bit-identical to a batch Run with Trials: T and the same seed (both
// draw the same colorings and assemble through Assemble). Sessions are
// not safe for concurrent use; ExtendTo's internal workers are the one
// sanctioned concurrency.
type Session struct {
	g     *graph.Graph
	q     *query.Graph
	copts core.Options
	seed  int64

	predrawn  [][]uint8 // optional caller-supplied colorings for trials 0..len-1
	stream    *Stream   // lazily seeded and skipped to the next trial index
	preloaded int       // trials seeded from a cache rather than computed here

	counts []uint64
	stats  []core.Stats

	mu      sync.Mutex // guards the running tallies and onTrial during parallel chunks
	done    int
	sum     float64
	sumsq   float64
	onTrial func(done int, mean, cv float64)
}

// NewSession prepares an incremental estimation of q in g. Only Seed and
// Core are read from opts (the plan is resolved once up front, exactly as
// Run does); Trials, Parallel, and Progress belong to the batch entry
// points.
func NewSession(g *graph.Graph, q *query.Graph, opts Options) (*Session, error) {
	copts := opts.Core
	if copts.Plan == nil {
		plan, err := core.PickPlan(q)
		if err != nil {
			return nil, err
		}
		copts.Plan = plan
	}
	return &Session{g: g, q: q, copts: copts, seed: opts.Seed}, nil
}

// OnTrial registers a callback fired after every trial that lands (and
// once at Preload) with the session's trial count at that moment and the
// running mean and CV over those trials. During a parallel ExtendTo the
// callback is invoked from worker goroutines under the session's mutex —
// serialized and in done order — so it must be cheap and must not call
// back into the session.
func (s *Session) OnTrial(fn func(done int, mean, cv float64)) { s.onTrial = fn }

// Predraw supplies already-drawn colorings for the session's first trials
// (trial i uses colorings[i]); trials beyond len(colorings) fall back to
// the seeded stream. The colorings must equal what the stream would draw
// — i.e. come from Draw with the session's seed — or determinism is lost;
// this exists so batch callers can share one Draw across sessions.
func (s *Session) Predraw(colorings [][]uint8) { s.predrawn = colorings }

// Preload seeds the session with trials 0..len(counts)-1 computed earlier
// (by another session or run over the same trial stream): the coloring
// stream skips past them and the next trial is len(counts). The slices
// pass into the session's ownership. It is an error to preload a session
// that has already accumulated trials.
func (s *Session) Preload(counts []uint64, stats []core.Stats) error {
	if len(s.counts) > 0 {
		return fmt.Errorf("coloring: Preload on a session with %d trials", len(s.counts))
	}
	if len(counts) != len(stats) {
		return fmt.Errorf("coloring: Preload counts/stats length mismatch: %d vs %d", len(counts), len(stats))
	}
	s.counts = counts
	s.stats = stats
	s.preloaded = len(counts)
	s.resum()
	if s.onTrial != nil && s.done > 0 {
		mean, cv := s.tally()
		s.onTrial(s.done, mean, cv)
	}
	return nil
}

// resum recomputes the running tallies from the count prefix (after
// Preload or a rolled-back chunk).
func (s *Session) resum() {
	s.done = len(s.counts)
	s.sum, s.sumsq = 0, 0
	for _, c := range s.counts {
		f := float64(c)
		s.sum += f
		s.sumsq += f * f
	}
}

// tally returns the running mean and CV of the landed trials. Telemetry
// only: the Estimate's own statistics come from Assemble's two-pass
// computation.
func (s *Session) tally() (mean, cv float64) {
	if s.done == 0 {
		return 0, 0
	}
	n := float64(s.done)
	mean = s.sum / n
	if s.done > 1 && mean > 0 {
		variance := (s.sumsq - n*mean*mean) / (n - 1)
		if variance > 0 {
			cv = math.Sqrt(variance) / mean
		}
	}
	return mean, cv
}

// land records one computed trial's count in the tallies and fires the
// callback. The callback runs under the session mutex — that is what
// makes the "serialized, in done order" contract hold when parallel
// ExtendTo workers land trials concurrently (done=5 must never be
// published after done=6); it is also why OnTrial callbacks must be
// cheap and must not call back into the session.
func (s *Session) land(x uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	f := float64(x)
	s.sum += f
	s.sumsq += f * f
	if s.onTrial != nil {
		mean, cv := s.tally()
		s.onTrial(s.done, mean, cv)
	}
}

// coloringAt returns trial i's coloring. Callers consume indexes
// sequentially; the stream is (re)aligned by skipping when needed, so a
// rolled-back chunk cannot desynchronize it.
func (s *Session) coloringAt(i int) []uint8 {
	if i < len(s.predrawn) {
		return s.predrawn[i]
	}
	if s.stream == nil || s.stream.Drawn() != i {
		s.stream = NewStream(s.g.N(), s.q.K, s.seed)
		s.stream.Skip(i)
	}
	return s.stream.Next()
}

// Trials returns the number of trials accumulated so far (preloaded and
// computed).
func (s *Session) Trials() int { return len(s.counts) }

// Computed returns the number of trials this session computed itself
// (excluding preloaded ones) — the share whose engine work actually ran
// here.
func (s *Session) Computed() int { return len(s.counts) - s.preloaded }

// Counts exposes the accumulated per-trial colorful counts; read-only —
// the stopping rule walks it between trials.
func (s *Session) Counts() []uint64 { return s.counts }

// Run returns copies of the accumulated per-trial counts and stats, for
// storage in a trial-granular cache.
func (s *Session) Run() ([]uint64, []core.Stats) {
	return append([]uint64(nil), s.counts...), append([]core.Stats(nil), s.stats...)
}

// ComputedStats accumulates the engine stats of only the trials this
// session computed itself, so observability layers don't re-count cached
// trials' work.
func (s *Session) ComputedStats() core.Stats {
	return AccumulateStats(s.stats[s.preloaded:])
}

// Next runs one more trial and returns its colorful count.
func (s *Session) Next(ctx context.Context) (uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	i := len(s.counts)
	colors := s.coloringAt(i)
	begin := time.Now()
	cnt, st, err := core.CountColorfulContext(ctx, s.g, s.q, colors, s.copts)
	if err != nil {
		return 0, fmt.Errorf("coloring: trial %d: %w", i, err)
	}
	obs.FromContext(ctx).Observe(TrialMeasurement, time.Since(begin))
	s.counts = append(s.counts, cnt)
	s.stats = append(s.stats, st)
	s.land(cnt)
	return cnt, nil
}

// ExtendTo advances the session to the given trial count, running up to
// parallel trials concurrently (≤ 1 means serial); a session already at
// or past it is a no-op. Results are bit-identical at any parallelism:
// colorings are drawn sequentially up front and counts land at their
// trial index. On error (including cancellation) the whole chunk is
// rolled back and the session stays at its prior trial count.
func (s *Session) ExtendTo(ctx context.Context, trials, parallel int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	start := len(s.counts)
	if trials <= start {
		return nil
	}
	m := trials - start
	colorings := make([][]uint8, m)
	for j := range colorings {
		colorings[j] = s.coloringAt(start + j)
	}
	s.counts = append(s.counts, make([]uint64, m)...)
	s.stats = append(s.stats, make([]core.Stats, m)...)
	if parallel < 1 {
		parallel = 1
	}
	if parallel > m {
		parallel = m
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		next     atomic.Int64
	)
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= m {
					return
				}
				if err := ctx.Err(); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				begin := time.Now()
				cnt, st, err := core.CountColorfulContext(ctx, s.g, s.q, colorings[j], s.copts)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("coloring: trial %d: %w", start+j, err)
					}
					errMu.Unlock()
					return
				}
				obs.FromContext(ctx).Observe(TrialMeasurement, time.Since(begin))
				s.counts[start+j] = cnt
				s.stats[start+j] = st
				s.land(cnt)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		s.counts = s.counts[:start]
		s.stats = s.stats[:start]
		s.resum()
		return firstErr
	}
	return nil
}

// RunUntil advances the session until the adaptive stopping rule fires or
// ad.MaxTrials is reached, and returns the stopping trial count — the
// prefix EstimateAt should snapshot. With parallel > 1 trials run in
// chunks; a chunk that overshoots the stopping trial leaves the extra
// trials in the session (valid cached work) but the returned stop point
// is the rule's, so the estimate matches a serial adaptive run exactly.
// A positive budget bounds the wall-clock time: once exceeded the session
// stops at its current trial count (at least one trial always runs);
// budget stops are a time-based safety valve and are not replayable the
// way rule stops are.
func (s *Session) RunUntil(ctx context.Context, ad Adaptive, parallel int, budget time.Duration) (int, error) {
	ad = ad.withDefaults()
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	for {
		if stop, ok := ad.StopAt(s.counts); ok {
			return stop, nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) && len(s.counts) > 0 {
			return len(s.counts), nil
		}
		chunk := 1
		if parallel > 1 {
			chunk = parallel
		}
		next := len(s.counts) + chunk
		if next > ad.MaxTrials {
			next = ad.MaxTrials
		}
		if err := s.ExtendTo(ctx, next, parallel); err != nil {
			return 0, err
		}
	}
}

// Estimate snapshots the estimate over every accumulated trial.
func (s *Session) Estimate() Estimate { return s.EstimateAt(len(s.counts)) }

// EstimateAt snapshots the estimate over the first t trials — bit-identical
// to a batch Run with Trials: t at the same seed. t is clamped to the
// accumulated trial count.
func (s *Session) EstimateAt(t int) Estimate {
	if t > len(s.counts) {
		t = len(s.counts)
	}
	return Assemble(s.g.Name, s.q, s.counts[:t], s.stats[:t])
}
