package coloring

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/query"
)

// TestStreamMatchesDraw: the lazy stream and the batch Draw are the same
// coloring sequence, and Skip keeps them aligned.
func TestStreamMatchesDraw(t *testing.T) {
	const n, k, trials, seed = 200, 5, 7, 42
	batch := Draw(n, k, trials, seed)
	st := NewStream(n, k, seed)
	for i := 0; i < trials; i++ {
		if got := st.Next(); !reflect.DeepEqual(got, batch[i]) {
			t.Fatalf("stream coloring %d differs from Draw", i)
		}
	}
	skipped := NewStream(n, k, seed)
	skipped.Skip(4)
	if skipped.Drawn() != 4 {
		t.Fatalf("Drawn = %d after Skip(4)", skipped.Drawn())
	}
	if got := skipped.Next(); !reflect.DeepEqual(got, batch[4]) {
		t.Fatal("Skip desynchronized the stream from Draw")
	}
}

// sameEstimate compares estimates modulo Stats.Steals, which is
// scheduling telemetry on the parallel backend (two fresh runs may steal
// differently without the results differing).
func sameEstimate(t *testing.T, label string, a, b Estimate) {
	t.Helper()
	a.Stats.Steals, b.Stats.Steals = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: estimates differ:\n%+v\n%+v", label, a, b)
	}
}

// TestSessionMatchesBatch is the incremental-path determinism invariant:
// a Session advanced T times equals a batch Run with Trials: T
// bit-for-bit, on both backends.
func TestSessionMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.PowerLawGraph("pl", 300, 1.6, rng)
	q := query.MustByName("glet1")
	for _, backend := range []string{"sim", "parallel"} {
		opts := Options{Seed: 11, Core: core.Options{Algorithm: core.DB, Backend: backend, Workers: 3}}
		sess, err := NewSession(g, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for T := 1; T <= 6; T++ {
			if _, err := sess.Next(context.Background()); err != nil {
				t.Fatal(err)
			}
			opts.Trials = T
			batch, err := Run(g, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameEstimate(t, backend, sess.EstimateAt(T), batch)
		}
		if sess.Trials() != 6 {
			t.Fatalf("session holds %d trials, want 6", sess.Trials())
		}
	}
}

// TestSessionPreloadExtends: a session seeded with a cached prefix and
// extended to T equals a cold batch run with Trials: T — the cache
// extension invariant at the coloring layer.
func TestSessionPreloadExtends(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := gen.ErdosRenyi("er", 60, 240, rng)
	q := query.MustByName("wiki")
	opts := Options{Seed: 9, Core: core.Options{Workers: 2}}

	first, err := NewSession(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.ExtendTo(context.Background(), 3, 1); err != nil {
		t.Fatal(err)
	}
	counts, stats := first.Run()

	second, err := NewSession(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Preload(counts, stats); err != nil {
		t.Fatal(err)
	}
	if err := second.ExtendTo(context.Background(), 8, 2); err != nil {
		t.Fatal(err)
	}
	if second.Computed() != 5 {
		t.Errorf("Computed = %d, want 5 (3 preloaded of 8)", second.Computed())
	}
	opts.Trials = 8
	cold, err := Run(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "preload+extend vs cold", second.Estimate(), cold)
}

// TestSessionExtendParallelIdentical: ExtendTo at any parallelism is
// bit-identical to serial.
func TestSessionExtendParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := gen.ErdosRenyi("er", 50, 200, rng)
	q := query.Cycle(5)
	opts := Options{Seed: 5}
	serial, err := NewSession(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.ExtendTo(context.Background(), 9, 1); err != nil {
		t.Fatal(err)
	}
	par, err := NewSession(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.ExtendTo(context.Background(), 9, 4); err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "parallel extend", par.Estimate(), serial.Estimate())
}

// TestAdaptiveStopDeterminism: an adaptive run stops at some T, equals
// the batch run with Trials: T, and a replayed adaptive run stops at the
// same T — the invariant the service's trial-granular cache relies on.
func TestAdaptiveStopDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := gen.PowerLawGraph("pl", 250, 1.5, rng)
	q := query.MustByName("glet2")
	ad := Adaptive{Precision: Precision{RelErr: 0.25, Confidence: 0.9}, MaxTrials: 64}
	opts := Options{Seed: 17, Core: core.Options{Workers: 2}}

	sess, err := NewSession(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := sess.RunUntil(context.Background(), ad, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stop < 2 || stop > 64 {
		t.Fatalf("stop = %d outside [2,64]", stop)
	}
	adaptive := sess.EstimateAt(stop)

	opts.Trials = stop
	batch, err := Run(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimate(t, "adaptive vs batch", adaptive, batch)

	// Replay: the rule over the accumulated counts finds the same stop.
	if again, ok := ad.StopAt(sess.Counts()); !ok || again != stop {
		t.Errorf("replayed stop = %d/%v, want %d", again, ok, stop)
	}

	// A chunked (parallel) adaptive run may overshoot with extra trials
	// but must return the same stop and estimate.
	psess, err := NewSession(g, q, Options{Seed: 17, Core: core.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	pstop, err := psess.RunUntil(context.Background(), ad, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pstop != stop {
		t.Fatalf("parallel adaptive stopped at %d, serial at %d", pstop, stop)
	}
	sameEstimate(t, "parallel adaptive", psess.EstimateAt(pstop), adaptive)
}

// TestStopAtRule covers the stopping rule's edges: too few trials, a
// zero-variance prefix, the all-zero stream, and the MaxTrials backstop.
func TestStopAtRule(t *testing.T) {
	ad := Adaptive{Precision: Precision{RelErr: 0.1}, MinTrials: 3, MaxTrials: 8}
	if _, ok := ad.StopAt([]uint64{5, 5}); ok {
		t.Error("rule fired below MinTrials")
	}
	if stop, ok := ad.StopAt([]uint64{5, 5, 5}); !ok || stop != 3 {
		t.Errorf("zero-variance prefix: stop=%d ok=%v, want 3 true", stop, ok)
	}
	if stop, ok := ad.StopAt([]uint64{0, 0, 0}); !ok || stop != 3 {
		t.Errorf("all-zero prefix: stop=%d ok=%v, want 3 true", stop, ok)
	}
	// Wildly spread counts never meet ±10%, so the cap decides.
	spread := []uint64{1, 1000, 2, 2000, 3, 3000, 4, 4000}
	if stop, ok := ad.StopAt(spread); !ok || stop != 8 {
		t.Errorf("spread prefix: stop=%d ok=%v, want MaxTrials 8", stop, ok)
	}
	if _, ok := ad.StopAt(spread[:5]); ok {
		t.Error("rule fired on a spread prefix below the cap")
	}
	// Tighter confidence needs more trials than looser at equal spread.
	counts := []uint64{100, 110, 90, 105, 95, 102, 98, 101, 99, 100, 103, 97}
	loose := Adaptive{Precision: Precision{RelErr: 0.05, Confidence: 0.8}, MaxTrials: 100}
	tight := Adaptive{Precision: Precision{RelErr: 0.05, Confidence: 0.999}, MaxTrials: 100}
	lStop, lOK := loose.StopAt(counts)
	tStop, tOK := tight.StopAt(counts)
	if lOK && tOK && tStop < lStop {
		t.Errorf("tighter confidence stopped earlier (%d) than looser (%d)", tStop, lStop)
	}
	if lOK && !tOK {
		// fine: tight target unmet within the prefix
		_ = tStop
	}
	if !lOK {
		t.Errorf("loose target unmet on tight counts (stop=%d)", lStop)
	}
}

// TestAssembleMatchesRun: Assemble over a run's own counts and per-trial
// stats reproduces the run's estimate exactly.
func TestAssembleMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := gen.ErdosRenyi("er", 40, 160, rng)
	q := query.MustByName("glet1")
	sess, err := NewSession(g, q, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ExtendTo(context.Background(), 5, 1); err != nil {
		t.Fatal(err)
	}
	counts, stats := sess.Run()
	sameEstimate(t, "assemble", Assemble(g.Name, q, counts, stats), sess.Estimate())
}

// TestRelCI sanity: more trials tighten the interval; degenerate cases
// report what the docs promise.
func TestRelCI(t *testing.T) {
	if ci := (Estimate{Trials: 1, MeanColorful: 5}).RelCI(0.95); !math.IsInf(ci, 1) {
		t.Errorf("single trial RelCI = %v, want +Inf", ci)
	}
	if ci := (Estimate{Trials: 4, MeanColorful: 0, VarColorful: 0}).RelCI(0.95); ci != 0 {
		t.Errorf("exact-zero estimate RelCI = %v, want 0", ci)
	}
	few := Estimate{Trials: 4, MeanColorful: 100, VarColorful: 400}
	many := Estimate{Trials: 64, MeanColorful: 100, VarColorful: 400}
	if few.RelCI(0.95) <= many.RelCI(0.95) {
		t.Errorf("CI did not tighten with trials: %v vs %v", few.RelCI(0.95), many.RelCI(0.95))
	}
}

// TestSessionOnTrial: the callback fires once per landed trial with a
// monotonically complete done count, and reports preloads.
func TestSessionOnTrial(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g := gen.ErdosRenyi("er", 30, 90, rng)
	q := query.Cycle(4)
	sess, err := NewSession(g, q, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var calls, maxDone int
	sess.OnTrial(func(done int, mean, cv float64) {
		calls++
		if done > maxDone {
			maxDone = done
		}
	})
	if err := sess.ExtendTo(context.Background(), 4, 1); err != nil {
		t.Fatal(err)
	}
	if calls != 4 || maxDone != 4 {
		t.Errorf("onTrial calls=%d maxDone=%d, want 4 and 4", calls, maxDone)
	}
}
