// Package coloring implements the outer loop of color coding (§2, §8.6):
// random colorings, the k^k/k! unbiased estimator for match counts, and
// multi-trial statistics (mean, variance, and the paper's coefficient of
// variation).
package coloring

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/query"
)

// Random returns a uniformly random coloring of n vertices with k colors.
func Random(n, k int, rng *rand.Rand) []uint8 {
	colors := make([]uint8, n)
	for i := range colors {
		colors[i] = uint8(rng.Intn(k))
	}
	return colors
}

// ScaleFactor returns k^k/k!, the §2 normalization: the expected colorful
// count times this factor is the true match count.
func ScaleFactor(k int) float64 {
	f := 1.0
	for i := 1; i <= k; i++ {
		f *= float64(k) / float64(i)
	}
	return f
}

// Options configures an estimation run.
type Options struct {
	Core   core.Options
	Trials int   // number of independent colorings; ≤ 0 means 3
	Seed   int64 // RNG seed for the colorings
	// Parallel runs up to this many trials concurrently (each with its own
	// simulated cluster). Colorings are pre-drawn sequentially from Seed,
	// so results are identical to the serial run. ≤ 1 means serial.
	Parallel int
	// Progress, when non-nil, is called after each completed trial with the
	// number of finished trials so far and the total. Calls arrive from
	// trial goroutines (concurrently when Parallel > 1) and must be cheap
	// and non-blocking; done values are unique but not ordered.
	Progress func(done, total int)
}

// Estimate is the result of a multi-trial color-coding estimation.
type Estimate struct {
	Query  string
	Graph  string
	K      int
	Trials int
	Counts []uint64 // colorful count per trial

	MeanColorful float64
	VarColorful  float64 // unbiased sample variance
	// CV is the coefficient of variation of the colorful count: the
	// empirical standard deviation over the mean. The paper's §8.6 text
	// says "ratio of the empirical variance to the mean", but its
	// conclusion ("≈10% accuracy" at CV ≤ 0.1) matches the standard
	// stddev/mean definition, which is also scale-free; we use that.
	CV float64

	// Matches estimates n(G,Q) = ScaleFactor(k) · mean colorful count.
	Matches float64
	// Subgraphs estimates the number of distinct subgraphs isomorphic to
	// the query: Matches / aut(Q).
	Subgraphs float64

	// Stats are the engine counters accumulated across trials. Every
	// result-bearing field of an Estimate is bit-identical across
	// backends, worker counts, and repeated runs; within Stats, Steals is
	// the one exception — it is scheduling telemetry, and two fresh runs
	// on the parallel backend may steal differently.
	Stats core.Stats
}

// Draw pre-draws the trials independent colorings Run would use for an
// n-vertex graph and a k-node query: drawn sequentially from seed, so the
// result depends only on (n, k, trials, seed). Callers running several
// queries with equal k over the same graph and seed can draw once and pass
// the shared slice to RunWith; trials ≤ 0 means 3, matching Run.
func Draw(n, k, trials int, seed int64) [][]uint8 {
	if trials <= 0 {
		trials = 3
	}
	rng := rand.New(rand.NewSource(seed))
	colorings := make([][]uint8, trials)
	for i := range colorings {
		colorings[i] = Random(n, k, rng)
	}
	return colorings
}

// Run estimates the number of matches of q in g by repeated colorful
// counting under independent random colorings.
func Run(g *graph.Graph, q *query.Graph, opts Options) (Estimate, error) {
	return RunContext(context.Background(), g, q, opts)
}

// RunContext is Run bounded by ctx: a canceled or deadline-expired run
// stops mid-trial (the solver polls ctx inside its worker loops) and
// returns ctx's error.
func RunContext(ctx context.Context, g *graph.Graph, q *query.Graph, opts Options) (Estimate, error) {
	return RunWithContext(ctx, g, q, Draw(g.N(), q.K, opts.Trials, opts.Seed), opts)
}

// RunWith is Run with the colorings supplied by the caller, one per trial
// (the trial count is len(colorings)). Colorings are read-only and may be
// shared across concurrent calls. RunWith with Draw-n colorings is
// bit-for-bit identical to Run. A non-zero opts.Trials that disagrees
// with len(colorings) is an error rather than a silent precision change.
func RunWith(g *graph.Graph, q *query.Graph, colorings [][]uint8, opts Options) (Estimate, error) {
	return RunWithContext(context.Background(), g, q, colorings, opts)
}

// RunWithContext is RunWith bounded by ctx (see RunContext).
func RunWithContext(ctx context.Context, g *graph.Graph, q *query.Graph, colorings [][]uint8, opts Options) (Estimate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	trials := len(colorings)
	if trials == 0 {
		return Estimate{}, fmt.Errorf("coloring: no colorings supplied")
	}
	if opts.Trials > 0 && opts.Trials != trials {
		return Estimate{}, fmt.Errorf("coloring: opts.Trials %d disagrees with %d supplied colorings", opts.Trials, trials)
	}
	counts := make([]uint64, trials)
	// Resolve the plan once up front: trials share it, and the calibration
	// behind the default planner should not run concurrently per trial.
	copts := opts.Core
	if copts.Plan == nil {
		plan, err := core.PickPlan(q)
		if err != nil {
			return Estimate{}, err
		}
		copts.Plan = plan
	}
	parallel := opts.Parallel
	if parallel < 1 {
		parallel = 1
	}
	if parallel > trials {
		parallel = trials
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     atomic.Int64
		finished atomic.Int64
	)
	stats := make([]core.Stats, trials)
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				// Between trials a plain poll suffices; mid-trial the solver
				// polls ctx itself via CountColorfulContext.
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				begin := time.Now()
				cnt, st, err := core.CountColorfulContext(ctx, g, q, colorings[i], copts)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("coloring: trial %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				obs.FromContext(ctx).Observe(TrialMeasurement, time.Since(begin))
				counts[i] = cnt
				stats[i] = st
				if opts.Progress != nil {
					opts.Progress(int(finished.Add(1)), trials)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Estimate{}, firstErr
	}
	// Assemble is the single place counts become an Estimate: batch runs,
	// incremental Sessions, and cache-replayed prefixes all produce their
	// results through it, so "bit-identical at equal trial counts" holds by
	// construction rather than by parallel implementations agreeing.
	return Assemble(g.Name, q, counts, stats), nil
}

func accumulate(dst *core.Stats, s core.Stats) {
	dst.Backend = s.Backend
	dst.Workers = s.Workers
	dst.TotalLoad += s.TotalLoad
	dst.MaxLoad += s.MaxLoad
	dst.AvgLoad += s.AvgLoad
	dst.Messages += s.Messages
	dst.Steals += s.Steals
	dst.Supersteps += s.Supersteps
	dst.TableEntries += s.TableEntries
}

func (e *Estimate) finalize(q *query.Graph) {
	var sum float64
	for _, c := range e.Counts {
		sum += float64(c)
	}
	e.MeanColorful = sum / float64(e.Trials)
	if e.Trials > 1 {
		var ss float64
		for _, c := range e.Counts {
			d := float64(c) - e.MeanColorful
			ss += d * d
		}
		e.VarColorful = ss / float64(e.Trials-1)
	}
	if e.MeanColorful > 0 {
		e.CV = math.Sqrt(e.VarColorful) / e.MeanColorful
	}
	e.Matches = ScaleFactor(e.K) * e.MeanColorful
	if aut := q.Automorphisms(); aut > 0 {
		e.Subgraphs = e.Matches / float64(aut)
	}
}

func (e Estimate) String() string {
	return fmt.Sprintf("%s on %s: ≈%.1f matches (≈%.1f subgraphs) from %d trials, CV %.3f",
		e.Query, e.Graph, e.Matches, e.Subgraphs, e.Trials, e.CV)
}
