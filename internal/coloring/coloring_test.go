package coloring

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/query"
)

func TestScaleFactor(t *testing.T) {
	cases := map[int]float64{
		1: 1,
		2: 2,            // 2^2/2!
		3: 27.0 / 6,     // 4.5
		4: 256.0 / 24,   // ≈10.67
		5: 3125.0 / 120, // ≈26.04
	}
	for k, want := range cases {
		if got := ScaleFactor(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("ScaleFactor(%d) = %f, want %f", k, got, want)
		}
	}
}

func TestRandomColoringRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	colors := Random(1000, 5, rng)
	seen := map[uint8]int{}
	for _, c := range colors {
		if c >= 5 {
			t.Fatalf("color %d out of range", c)
		}
		seen[c]++
	}
	if len(seen) != 5 {
		t.Fatalf("only %d distinct colors in 1000 draws", len(seen))
	}
}

// The estimator must converge to the exact match count (unbiasedness, §2).
func TestEstimatorConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.ErdosRenyi("er", 40, 160, rng)
	q := query.Cycle(4)
	want := float64(exact.Matches(g, q))
	est, err := Run(g, q, Options{Trials: 400, Seed: 77, Core: core.Options{Algorithm: core.DB, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Skip("degenerate instance")
	}
	if est.Matches < 0.85*want || est.Matches > 1.15*want {
		t.Fatalf("estimate %.1f, want ≈%.1f", est.Matches, want)
	}
	if est.Trials != 400 || len(est.Counts) != 400 {
		t.Fatalf("trial bookkeeping wrong: %d/%d", est.Trials, len(est.Counts))
	}
	if est.CV < 0 {
		t.Fatalf("negative CV %f", est.CV)
	}
	// Subgraph estimate = matches / aut(C4) = matches / 8.
	if math.Abs(est.Subgraphs-est.Matches/8) > 1e-9 {
		t.Fatalf("Subgraphs %.2f vs Matches/8 %.2f", est.Subgraphs, est.Matches/8)
	}
	if est.Stats.TotalLoad <= 0 {
		t.Fatal("stats not accumulated")
	}
}

// With a single trial the variance is zero; with identical trials the CV is
// zero.
func TestCVDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.ErdosRenyi("er", 30, 60, rng)
	q := query.Cycle(3)
	est, err := Run(g, q, Options{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.VarColorful != 0 || est.CV != 0 {
		t.Fatalf("single trial: var=%f cv=%f", est.VarColorful, est.CV)
	}
}

// Determinism: same seed → same estimate.
func TestSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := gen.ErdosRenyi("er", 35, 120, rng)
	q := query.MustByName("glet2")
	a, err := Run(g, q, Options{Trials: 5, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, q, Options{Trials: 5, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("trial %d differs: %d vs %d", i, a.Counts[i], b.Counts[i])
		}
	}
	if a.Matches != b.Matches {
		t.Fatalf("estimates differ: %f vs %f", a.Matches, b.Matches)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ErdosRenyi("er", 10, 20, rng)
	k4 := query.FromEdges("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if _, err := Run(g, k4, Options{Trials: 2}); err == nil {
		t.Fatal("treewidth-3 query accepted")
	}
}

// Parallel trials must produce bit-identical results to serial runs.
func TestParallelTrialsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := gen.PowerLawGraph("pl", 200, 1.6, rng)
	q := query.MustByName("glet1")
	serial, err := Run(g, q, Options{Trials: 8, Seed: 5, Core: core.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, q, Options{Trials: 8, Seed: 5, Parallel: 4, Core: core.Options{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Counts {
		if serial.Counts[i] != parallel.Counts[i] {
			t.Fatalf("trial %d: serial %d vs parallel %d", i, serial.Counts[i], parallel.Counts[i])
		}
	}
	if serial.Matches != parallel.Matches || serial.CV != parallel.CV {
		t.Fatalf("aggregates differ: %v vs %v", serial, parallel)
	}
	if parallel.Stats.TotalLoad != serial.Stats.TotalLoad {
		t.Fatalf("stats differ: %d vs %d", parallel.Stats.TotalLoad, serial.Stats.TotalLoad)
	}
}

// Parallelism degrees beyond the trial count are clamped, and errors from
// any trial propagate.
func TestParallelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.ErdosRenyi("er", 20, 40, rng)
	if _, err := Run(g, query.Cycle(4), Options{Trials: 2, Parallel: 16, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	k4 := query.FromEdges("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if _, err := Run(g, k4, Options{Trials: 4, Parallel: 2}); err == nil {
		t.Fatal("error not propagated from parallel trial")
	}
}

// TestRunContextMatchesRun: a live context changes nothing — bit-for-bit.
func TestRunContextMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.ErdosRenyi("er", 40, 160, rng)
	q := query.MustByName("glet1")
	opts := Options{Trials: 4, Seed: 9}
	plain, err := Run(g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunContext(context.Background(), g, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Steals is scheduling telemetry: two fresh runs on the parallel
	// backend may steal differently without the results differing.
	plain.Stats.Steals, ctxed.Stats.Steals = 0, 0
	if !reflect.DeepEqual(plain, ctxed) {
		t.Errorf("RunContext differs from Run:\n%+v\n%+v", plain, ctxed)
	}
}

// TestRunContextCancelBetweenTrials: a cancellation during a multi-trial
// run surfaces context.Canceled instead of finishing the remaining
// trials.
func TestRunContextCancelBetweenTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := gen.ErdosRenyi("er", 60, 240, rng)
	q := query.MustByName("brain1")
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := RunContext(ctx, g, q, Options{
		Trials: 64,
		Progress: func(done, total int) {
			// Cancel as soon as the first trial lands; the remaining 63
			// must not run to completion.
			once.Do(cancel)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunProgressReporting: every trial reports exactly once and the
// final done count equals the trial count, serial and parallel.
func TestRunProgressReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.ErdosRenyi("er", 40, 160, rng)
	q := query.MustByName("wiki")
	for _, parallel := range []int{1, 4} {
		var calls atomic.Int64
		var max atomic.Int64
		_, err := Run(g, q, Options{
			Trials:   6,
			Parallel: parallel,
			Progress: func(done, total int) {
				calls.Add(1)
				if total != 6 {
					t.Errorf("parallel=%d: total = %d, want 6", parallel, total)
				}
				for {
					m := max.Load()
					if int64(done) <= m || max.CompareAndSwap(m, int64(done)) {
						break
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 6 || max.Load() != 6 {
			t.Errorf("parallel=%d: %d progress calls, max done %d; want 6 and 6",
				parallel, calls.Load(), max.Load())
		}
	}
}
