package cluster

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// keyCorpus returns n deterministic pseudo-key hashes, standing in for
// TrialKey hashes (any well-mixed 64-bit values).
func keyCorpus(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "10.0.0." + string(rune('1'+i)) + ":8080"
	}
	return out
}

// TestRingDeterministic pins the routing contract the whole cluster
// design rests on: key→home is a pure function of the member set —
// identical across independently built rings (separate replicas),
// rebuilt rings (process restarts), and member-list input orders
// (differently written -peers flags).
func TestRingDeterministic(t *testing.T) {
	ms := members(5)
	a, err := NewRing(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled member order, fresh build: another replica's view.
	shuffled := append([]string(nil), ms...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild of the first: a restart.
	c, err := NewRing(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keyCorpus(10000) {
		ha, hb, hc := a.Owner(k), b.Owner(k), c.Owner(k)
		if ha != hb || ha != hc {
			t.Fatalf("key %x: owners disagree: %q / %q / %q", k, ha, hb, hc)
		}
	}
}

// TestRingOwnerIsMember checks every lookup lands on a configured
// member, including at the ring's wrap point.
func TestRingOwnerIsMember(t *testing.T) {
	ms := members(3)
	r, err := NewRing(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, m := range ms {
		valid[m] = true
	}
	probes := append(keyCorpus(1000), 0, ^uint64(0)) // extremes force the wrap
	for _, k := range probes {
		if !valid[r.Owner(k)] {
			t.Fatalf("key %x: owner %q is not a member", k, r.Owner(k))
		}
	}
}

// TestRingRemapFraction is the consistent-hashing property: removing
// one of N members remaps only that member's keys (~1/N of the corpus),
// and every key whose owner survived keeps its owner exactly.
func TestRingRemapFraction(t *testing.T) {
	const n = 5
	ms := members(n)
	full, err := NewRing(ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := ms[2]
	smaller, err := NewRing(append(append([]string(nil), ms[:2]...), ms[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	corpus := keyCorpus(20000)
	moved := 0
	for _, k := range corpus {
		before, after := full.Owner(k), smaller.Owner(k)
		if before == after {
			continue
		}
		if before != removed {
			t.Fatalf("key %x moved %q → %q though %q was not removed", k, before, after, removed)
		}
		moved++
	}
	frac := float64(moved) / float64(len(corpus))
	// The removed member owned ~1/N of the space; vnode placement noise
	// stays well inside [0.5/N, 2/N] at 128 vnodes over 20k keys.
	if frac < 0.5/n || frac > 2.0/n {
		t.Fatalf("removal remapped %.3f of keys; want ~%.3f (1/N)", frac, 1.0/n)
	}
}

// TestRingBalance sanity-checks the vnode count: no member owns a
// pathological share of a large random corpus.
func TestRingBalance(t *testing.T) {
	const n = 4
	r, err := NewRing(members(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	corpus := keyCorpus(40000)
	for _, k := range corpus {
		counts[r.Owner(k)]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(corpus))
		if frac < 0.5/n || frac > 2.0/n {
			t.Fatalf("member %q owns %.3f of keys; want within [%.3f, %.3f]", m, frac, 0.5/n, 2.0/n)
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("want error for empty membership")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Fatal("want error for empty member address")
	}
}

// TestRingMatchesServiceHash cross-checks that the ring accepts raw
// FNV-1a hashes (what the service layer feeds it) without further
// mixing assumptions: two distinct inputs map somewhere, same input
// maps identically.
func TestRingMatchesServiceHash(t *testing.T) {
	r, err := NewRing(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write([]byte("k5:3:5:9:11:6"))
	k := h.Sum64()
	if r.Owner(k) != r.Owner(k) {
		t.Fatal("same hash, different owners")
	}
}
