// Package cluster is the serving tier's multi-replica layer: a
// deterministic consistent-hash ring assigning every trial stream
// (TrialKey, hashed by the service layer) one home replica, plus the
// per-peer health and circuit-breaker state the forwarding path needs to
// fail fast when a home is down.
//
// The ring is built over the full configured membership and nothing
// else: every replica constructs it from the same member list, so
// key→home agreement needs no coordination protocol. Peer health and
// breaker state never move keys — they only decide whether a non-owner
// forwards to the home or serves the key locally (degraded but
// available). A dead replica therefore costs its own keys one local
// recompute per entry replica, not a ring-wide reshuffle; when it comes
// back, its keys are still its own.
package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual node count. 128 points
// per member keeps the expected ownership imbalance across a handful of
// replicas within a few percent while the ring stays small enough to
// rebuild on every membership change.
const DefaultVirtualNodes = 128

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// one member.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a fixed member list.
// Owner lookup is a binary search over the sorted virtual-node points;
// the ring is rebuilt, never mutated, on membership change — so a Ring
// value can be read without locks.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring over members (deduplicated, order-insensitive)
// with vnodes virtual nodes per member (≤ 0 means DefaultVirtualNodes).
// Two rings over the same member set are identical regardless of input
// order, process, or machine: positions are pure FNV-1a over
// "member#vnode" strings.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	// Sorting the member list first makes the members-index → address
	// mapping itself canonical, so serialized stats and tests see one
	// order no matter how the flag was written.
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		// Colliding points tie-break by member index so the ring is
		// still a pure function of the member set.
		return p.member < q.member
	})
	return r, nil
}

// pointHash positions one virtual node: FNV-1a over "member#vnode".
func pointHash(member string, vnode int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, member) //nolint:errcheck // fnv never fails
	h.Write([]byte{'#'})
	io.WriteString(h, strconv.Itoa(vnode)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// Owner maps a key hash (the service layer's TrialKey FNV-1a hash) to
// its home member: the first virtual node at or clockwise of the hash,
// wrapping at the top of the ring.
func (r *Ring) Owner(keyHash uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= keyHash })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Members returns the ring's member addresses, sorted. The slice is
// shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }
