package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if !b.Allow(now) {
			t.Fatalf("breaker open after %d failures; threshold is 3", i+1)
		}
	}
	b.Failure(now)
	if b.Allow(now) {
		t.Fatal("breaker still closed after threshold failures")
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	now := time.Unix(1000, 0)
	b.Failure(now)
	b.Failure(now)
	if b.Allow(now.Add(30 * time.Second)) {
		t.Fatal("breaker closed inside the cooldown")
	}
	probeTime := now.Add(61 * time.Second)
	if !b.Allow(probeTime) {
		t.Fatal("breaker still open after the cooldown (no half-open probe)")
	}
	// Probe fails: circuit re-opens immediately, no fresh streak needed.
	b.Failure(probeTime)
	if b.Allow(probeTime.Add(time.Second)) {
		t.Fatal("breaker closed right after a failed half-open probe")
	}
	// Next probe succeeds: fully closed again.
	recovered := probeTime.Add(61 * time.Second)
	if !b.Allow(recovered) {
		t.Fatal("no second probe after the cooldown")
	}
	b.Success()
	if !b.Allow(recovered) {
		t.Fatal("breaker open after success")
	}
	b.Failure(recovered)
	if !b.Allow(recovered) {
		t.Fatal("breaker re-opened after a single post-recovery failure")
	}
}

func TestClusterAllowAndReports(t *testing.T) {
	c, err := New(Options{
		Self:          "a:1",
		Members:       []string{"a:1", "b:2", "c:3"},
		FailThreshold: 2,
		Cooldown:      time.Hour,
		HealthEvery:   -1, // no background checker; this test drives state by hand
		Logger:        quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Allow("a:1") {
		t.Fatal("self must never be a forward target")
	}
	if c.Allow("unknown:9") {
		t.Fatal("non-members must never be forward targets")
	}
	if !c.Allow("b:2") {
		t.Fatal("fresh peer not allowed; peers must start optimistic")
	}
	c.ReportFailure("b:2")
	c.ReportFailure("b:2")
	if c.Allow("b:2") {
		t.Fatal("peer allowed with an open breaker")
	}
	if c.Allow("c:3") == false {
		t.Fatal("unrelated peer affected by b's breaker")
	}
	c.ReportSuccess("b:2")
	if !c.Allow("b:2") {
		t.Fatal("peer still rejected after a success closed the breaker")
	}
	st := c.Stats()
	if st.Self != "a:1" || len(st.Members) != 3 || len(st.Peers) != 2 {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	for _, p := range st.Peers {
		if p.Addr == "b:2" {
			if p.Forwards != 1 || p.Failures != 2 || p.Trips != 1 {
				t.Fatalf("b:2 counters wrong: %+v", p)
			}
		}
	}
}

func TestClusterHealthProbes(t *testing.T) {
	var mu sync.Mutex
	down := map[string]bool{"b:2": true}
	c, err := New(Options{
		Self:        "a:1",
		Members:     []string{"a:1", "b:2", "c:3"},
		HealthEvery: -1,
		Probe: func(addr string) error {
			mu.Lock()
			defer mu.Unlock()
			if down[addr] {
				return fmt.Errorf("probe: %s down", addr)
			}
			return nil
		},
		Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CheckOnce()
	if c.Allow("b:2") {
		t.Fatal("unhealthy peer allowed")
	}
	if !c.Allow("c:3") {
		t.Fatal("healthy peer rejected")
	}
	for _, p := range c.Stats().Peers {
		if p.Addr == "b:2" && (p.Up || p.LastError == "") {
			t.Fatalf("b:2 should be down with a lastError: %+v", p)
		}
	}
	mu.Lock()
	down["b:2"] = false
	mu.Unlock()
	c.CheckOnce()
	if !c.Allow("b:2") {
		t.Fatal("recovered peer still rejected")
	}
}

// TestClusterSelfAddedToMembers checks -peers lists that omit the
// replica's own address still yield the full ring.
func TestClusterSelfAddedToMembers(t *testing.T) {
	c, err := New(Options{
		Self:        "a:1",
		Members:     []string{"b:2", "c:3"},
		HealthEvery: -1,
		Logger:      quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := len(c.Members()); got != 3 {
		t.Fatalf("members = %d, want 3 (self auto-added)", got)
	}
	// Ownership must match a replica that was configured with the full
	// explicit list.
	full, err := New(Options{
		Self:        "b:2",
		Members:     []string{"a:1", "b:2", "c:3"},
		HealthEvery: -1,
		Logger:      quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	for _, k := range keyCorpus(2000) {
		if c.Owner(k) != full.Owner(k) {
			t.Fatalf("key %x: owner differs between auto-added and explicit membership", k)
		}
	}
}
