package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Cluster.
type Options struct {
	// Self is this replica's advertised address. Required; added to
	// Members if absent.
	Self string
	// Members is the full static membership (every replica's advertised
	// address, self included). Every replica must be configured with the
	// same set — the ring is a pure function of it.
	Members []string
	// VirtualNodes per member (≤ 0 means DefaultVirtualNodes).
	VirtualNodes int
	// FailThreshold is the consecutive forward failures that open a
	// peer's circuit (≤ 0 means 3).
	FailThreshold int
	// Cooldown is how long an open circuit rejects forwards before one
	// probe request is let through (≤ 0 means 5s).
	Cooldown time.Duration
	// HealthEvery is the background peer health-check cadence; 0 means
	// 2s, < 0 disables the checker (tests drive CheckOnce directly).
	HealthEvery time.Duration
	// HealthTimeout bounds one health probe (≤ 0 means 1s).
	HealthTimeout time.Duration
	// Probe checks one peer's readiness. Nil means GET
	// http://<addr>/readyz expecting 200.
	Probe func(addr string) error
	// Logger receives membership and health transitions. Nil means
	// slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() (Options, error) {
	if o.Self == "" {
		return o, fmt.Errorf("cluster: Options.Self is required")
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.HealthEvery == 0 {
		o.HealthEvery = 2 * time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o, nil
}

// Breaker is a per-peer circuit breaker: FailThreshold consecutive
// failures open it for Cooldown, during which Allow rejects immediately
// (the caller serves the key locally instead of waiting on a dead
// host). After the cooldown one request is let through as the probe;
// its outcome closes or re-opens the circuit. Methods take the clock as
// a parameter so tests need no sleeping.
type Breaker struct {
	mu        sync.Mutex
	failures  int
	openUntil time.Time

	threshold int
	cooldown  time.Duration

	trips atomic.Uint64
}

// NewBreaker returns a closed breaker (threshold ≤ 0 means 3, cooldown
// ≤ 0 means 5s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may go to the peer at time now: true
// while the circuit is closed, false while open, true again once the
// cooldown elapsed (the half-open probe).
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.openUntil)
}

// Success closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// Failure records one failure at time now; reaching the threshold (or
// failing the half-open probe) opens the circuit for the cooldown.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.failures >= b.threshold {
		// A half-open probe failure re-opens immediately: failures is
		// already at or past the threshold from the streak that opened it.
		if now.After(b.openUntil) {
			b.trips.Add(1)
		}
		b.openUntil = now.Add(b.cooldown)
	}
}

// Open reports whether the circuit is open at time now.
func (b *Breaker) Open(now time.Time) bool { return !b.Allow(now) }

// Trips returns how many times the circuit opened.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }

// peer is one remote member's forwarding state.
type peer struct {
	addr    string
	breaker *Breaker
	// up mirrors the last health probe (1 = ready). Peers start up:
	// before the first probe lands, the breaker alone decides — an
	// optimistic start means a briefly-unprobed peer still gets its
	// keys, and a dead one trips the breaker on the first forward.
	up       atomic.Int32
	lastErr  atomic.Pointer[string]
	forwards atomic.Uint64 // requests this replica forwarded to the peer
	failures atomic.Uint64 // transport-level forward failures
}

// PeerStats is one peer's snapshot for /v1/stats.
type PeerStats struct {
	Addr        string `json:"addr"`
	Up          bool   `json:"up"`
	BreakerOpen bool   `json:"breakerOpen"`
	Trips       uint64 `json:"breakerTrips"`
	Forwards    uint64 `json:"forwards"`
	Failures    uint64 `json:"failures"`
	LastError   string `json:"lastError,omitempty"`
}

// Stats is the cluster layer's snapshot for /v1/stats.
type Stats struct {
	Self    string      `json:"self"`
	Members []string    `json:"members"`
	Peers   []PeerStats `json:"peers"`
}

// Cluster is one replica's view of the serving cluster: the shared ring
// plus per-peer health and breaker state. Ownership is static (the
// ring); Allow is the dynamic gate deciding forward vs. local fallback.
type Cluster struct {
	opts  Options
	ring  *Ring
	peers map[string]*peer // keyed by address; self excluded

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New builds a cluster view from the static membership and starts the
// background health checker (unless disabled). Close releases it.
func New(opts Options) (*Cluster, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	members := append([]string(nil), opts.Members...)
	found := false
	for _, m := range members {
		if m == opts.Self {
			found = true
			break
		}
	}
	if !found {
		members = append(members, opts.Self)
	}
	ring, err := NewRing(members, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if opts.Probe == nil {
		opts.Probe = httpProbe(opts.HealthTimeout)
	}
	c := &Cluster{
		opts:  opts,
		ring:  ring,
		peers: make(map[string]*peer),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m == opts.Self {
			continue
		}
		p := &peer{addr: m, breaker: NewBreaker(opts.FailThreshold, opts.Cooldown)}
		p.up.Store(1)
		c.peers[m] = p
	}
	if opts.HealthEvery > 0 && len(c.peers) > 0 {
		go c.healthLoop()
	} else {
		close(c.done)
	}
	return c, nil
}

// httpProbe returns the default readiness probe: GET /readyz with its
// own short-timeout client, so a wedged peer cannot stall the checker.
func httpProbe(timeout time.Duration) func(addr string) error {
	client := &http.Client{Timeout: timeout}
	return func(addr string) error {
		resp, err := client.Get("http://" + addr + "/readyz")
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: %s /readyz returned %d", addr, resp.StatusCode)
		}
		return nil
	}
}

// Close stops the health checker.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.opts.Self }

// Members returns the full sorted membership, self included.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Owner maps a key hash to its home member's address (possibly self).
func (c *Cluster) Owner(keyHash uint64) string { return c.ring.Owner(keyHash) }

// IsSelf reports whether addr is this replica.
func (c *Cluster) IsSelf(addr string) bool { return addr == c.opts.Self }

// Allow reports whether a forward to addr should be attempted now:
// the peer's last health probe passed and its circuit is closed (or
// half-open). Unknown addresses — never in the membership — are never
// forwarded to.
func (c *Cluster) Allow(addr string) bool {
	p, ok := c.peers[addr]
	if !ok {
		return false
	}
	return p.up.Load() == 1 && p.breaker.Allow(time.Now())
}

// ReportSuccess records a successful forward to addr: the breaker
// closes and the peer counts as up (a served request is the strongest
// health signal there is).
func (c *Cluster) ReportSuccess(addr string) {
	p, ok := c.peers[addr]
	if !ok {
		return
	}
	p.forwards.Add(1)
	p.breaker.Success()
	p.up.Store(1)
}

// ReportFailure records a transport-level forward failure to addr.
func (c *Cluster) ReportFailure(addr string) {
	p, ok := c.peers[addr]
	if !ok {
		return
	}
	p.failures.Add(1)
	p.breaker.Failure(time.Now())
}

// CheckOnce probes every peer once and updates its up state. Exposed so
// tests (and the first loop iteration) can force a synchronous pass.
func (c *Cluster) CheckOnce() {
	for _, p := range c.peers {
		err := c.opts.Probe(p.addr)
		was := p.up.Load()
		if err != nil {
			msg := err.Error()
			p.lastErr.Store(&msg)
			p.up.Store(0)
			if was == 1 {
				c.opts.Logger.Warn("cluster: peer unhealthy", "peer", p.addr, "err", err)
			}
			continue
		}
		p.lastErr.Store(nil)
		p.up.Store(1)
		if was == 0 {
			c.opts.Logger.Info("cluster: peer recovered", "peer", p.addr)
		}
	}
}

func (c *Cluster) healthLoop() {
	defer close(c.done)
	t := time.NewTicker(c.opts.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.CheckOnce()
		}
	}
}

// Stats snapshots the cluster view, peers in member order.
func (c *Cluster) Stats() Stats {
	st := Stats{Self: c.opts.Self, Members: c.ring.Members()}
	now := time.Now()
	for _, m := range st.Members {
		p, ok := c.peers[m]
		if !ok {
			continue // self
		}
		ps := PeerStats{
			Addr:        p.addr,
			Up:          p.up.Load() == 1,
			BreakerOpen: p.breaker.Open(now),
			Trips:       p.breaker.Trips(),
			Forwards:    p.forwards.Load(),
			Failures:    p.failures.Load(),
		}
		if msg := p.lastErr.Load(); msg != nil {
			ps.LastError = *msg
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
