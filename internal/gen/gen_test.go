package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi("er", 1000, 5000, rand.New(rand.NewSource(1)))
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	// Collisions are rare at this density; expect nearly 5000 edges.
	if g.M() < 4800 || g.M() > 5000 {
		t.Fatalf("M = %d, want ≈5000", g.M())
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT("rmat", 12, 16, Graph500, rand.New(rand.NewSource(2)))
	if g.N() != 4096 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() < 20000 {
		t.Fatalf("M = %d, too few edges", g.M())
	}
	// R-MAT with A=0.5 concentrates mass on low ids: heavy-tailed degrees.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("expected skew: max %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestPowerLawWeights(t *testing.T) {
	n := 10000
	for _, alpha := range []float64{1.2, 1.5, 1.8} {
		w := PowerLawWeights(n, alpha)
		if len(w) != n {
			t.Fatalf("alpha %.1f: len = %d", alpha, len(w))
		}
		maxW := w[0]
		for i, x := range w {
			if x < 1 {
				t.Fatalf("alpha %.1f: weight < 1 at %d", alpha, i)
			}
			if x > maxW {
				t.Fatalf("weights not non-increasing")
			}
			maxW = x
		}
		if w[0] > math.Sqrt(float64(n))+1e-9 {
			t.Fatalf("alpha %.1f: max weight %f exceeds √n", alpha, w[0])
		}
		// Heavier tails (smaller alpha) must put more total mass up high.
		if alpha == 1.2 && w[0] < math.Sqrt(float64(n))/2 {
			t.Fatalf("expected near-√n top weight, got %f", w[0])
		}
	}
}

func TestScaleWeightsMean(t *testing.T) {
	w := ScaleWeights(PowerLawWeights(5000, 1.5), 8)
	var sum float64
	for _, x := range w {
		sum += x
		if x < 1 {
			t.Fatalf("weight %f below 1", x)
		}
	}
	mean := sum / float64(len(w))
	if mean < 7 || mean > 10 {
		t.Fatalf("mean = %f, want ≈8 (max(·,1) floor may lift it)", mean)
	}
}

func TestAddHubs(t *testing.T) {
	w := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	out := AddHubs(w, 100, 3)
	if out[0] != 100 {
		t.Fatalf("hub0 = %f", out[0])
	}
	if out[1] <= out[2] || out[2] < 10 {
		t.Fatalf("hubs not geometric: %v", out[:4])
	}
	for i := 3; i < len(w); i++ {
		if out[i] != w[i] {
			t.Fatalf("body modified at %d", i)
		}
	}
	// hubMax below the body max is a no-op.
	same := AddHubs(w, 5, 3)
	for i := range w {
		if same[i] != w[i] {
			t.Fatal("AddHubs should be a no-op when hubMax ≤ body max")
		}
	}
}

// Chung-Lu sampling must hit expected degrees on average: vertex degree
// concentrates around its weight.
func TestChungLuDegreesMatchWeights(t *testing.T) {
	n := 4000
	w := PowerLawWeights(n, 1.5)
	// Average over several samples to beat variance on the heavy vertices.
	sumDeg := make([]float64, n)
	const samples = 5
	for s := 0; s < samples; s++ {
		g := ChungLu("cl", w, rand.New(rand.NewSource(int64(s))))
		// ChungLu sorts by weight internally; weights are indexed by vertex id.
		for v := 0; v < n; v++ {
			sumDeg[v] += float64(g.Degree(uint32(v)))
		}
	}
	// Check the global edge count and the top vertex's degree.
	var S, D float64
	for v := 0; v < n; v++ {
		S += w[v]
		D += sumDeg[v] / samples
	}
	if ratio := D / S; ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("total degree %f vs expected %f (ratio %f)", D, S, ratio)
	}
	top := 0
	for v := 1; v < n; v++ {
		if w[v] > w[top] {
			top = v
		}
	}
	got := sumDeg[top] / samples
	if got < 0.6*w[top] || got > 1.4*w[top] {
		t.Fatalf("top vertex degree %f vs weight %f", got, w[top])
	}
}

func TestRoadGridShape(t *testing.T) {
	g := RoadGrid("road", 50, 50, 0.7, 0.65, rand.New(rand.NewSource(3)))
	if g.N() != 2500 {
		t.Fatalf("N = %d", g.N())
	}
	if g.MaxDegree() > 8 {
		t.Fatalf("road max degree %d, want tiny", g.MaxDegree())
	}
	ef := float64(g.M()) / float64(g.N())
	if ef < 0.9 || ef > 1.8 {
		t.Fatalf("edge factor %f, want ≈1.35", ef)
	}
}

func TestStandins(t *testing.T) {
	specs := StandinSpecs()
	if len(specs) != 10 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, s := range specs[:4] { // keep the test fast; full set in benches
		g := s.Build(64, 42)
		ef := float64(g.M()) / float64(g.N())
		if ef < s.EdgeFactor/2.5 || ef > s.EdgeFactor*2.5 {
			t.Errorf("%s: edge factor %.2f, want ≈%.2f", s.Name, ef, s.EdgeFactor)
		}
		if g.N() < 64 {
			t.Errorf("%s: too few nodes", s.Name)
		}
	}
	// Skew ordering: epinions-like must be more skewed than condMat-like
	// at the same scale, mirroring Table 1.
	ep, _ := StandinByName("epinions", 16, 7)
	cm, _ := StandinByName("condMat", 16, 7)
	skew := func(g interface {
		MaxDegree() int
		AvgDegree() float64
	}) float64 {
		return float64(g.MaxDegree()) / g.AvgDegree()
	}
	if skew(ep) <= skew(cm) {
		t.Errorf("skew ordering violated: epinions %.1f vs condMat %.1f", skew(ep), skew(cm))
	}
	if _, ok := StandinByName("nope", 1, 1); ok {
		t.Error("unknown stand-in accepted")
	}
}

// Property: generators never produce self-loops or duplicate edges and are
// deterministic for a fixed seed.
func TestQuickGeneratorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RMAT("r", 8, 4, Graph500, rng)
		for v := 0; v < g.N(); v++ {
			prev := int64(-1)
			for _, w := range g.Neighbors(uint32(v)) {
				if int64(w) == int64(v) || int64(w) <= prev {
					return false
				}
				prev = int64(w)
			}
		}
		h1 := RMAT("r", 8, 4, Graph500, rand.New(rand.NewSource(seed)))
		return h1.M() == RMAT("r", 8, 4, Graph500, rand.New(rand.NewSource(seed))).M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
