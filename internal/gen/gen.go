// Package gen generates the synthetic data graphs used throughout the
// evaluation: Erdős–Rényi and R-MAT graphs (the paper's weak-scaling study,
// §8.4), Chung-Lu random graphs with truncated power-law expected degrees
// (the §9 theory model), road-like grids, and calibrated stand-ins for the
// paper's Table 1 SNAP/Open-Connectome graphs (see DESIGN.md for the
// substitution argument).
package gen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ErdosRenyi returns a graph on n vertices built from m uniformly random
// edge attempts (self-loops and duplicates are dropped, so the final edge
// count can be slightly below m).
func ErdosRenyi(name string, n int, m int64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(name, n)
	for i := int64(0); i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return b.Build()
}

// RMATParams are the quadrant probabilities of the recursive matrix model.
type RMATParams struct{ A, B, C, D float64 }

// Graph500 are the parameters the paper uses for weak scaling (§8.4):
// A=0.5, B=0.1, C=0.1, D=0.3, edge factor 16.
var Graph500 = RMATParams{A: 0.5, B: 0.1, C: 0.1, D: 0.3}

// RMAT generates an R-MAT graph with 2^scale vertices and edgeFactor·2^scale
// edge attempts.
func RMAT(name string, scale int, edgeFactor int, p RMATParams, rng *rand.Rand) *graph.Graph {
	n := 1 << uint(scale)
	b := graph.NewBuilder(name, n)
	m := int64(edgeFactor) * int64(n)
	ab := p.A + p.B
	abc := p.A + p.B + p.C
	for i := int64(0); i < m; i++ {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < p.A:
				// upper-left: no bits set
			case r < ab:
				v |= 1 << uint(bit)
			case r < abc:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	return b.Build()
}

// PowerLawWeights returns an expected-degree sequence satisfying the
// paper's truncated power law (§9.2): for each 0 ≤ j ≤ ½·log2 n, Θ(n/2^αj)
// entries of weight 2^j, with the maximum weight capped at √n. The sequence
// is normalized so the bucket counts sum to exactly n, and returned in
// non-increasing order.
func PowerLawWeights(n int, alpha float64) []float64 {
	jmax := int(math.Log2(math.Sqrt(float64(n))))
	raw := make([]float64, jmax+1)
	var total float64
	for j := 0; j <= jmax; j++ {
		raw[j] = float64(n) / math.Pow(2, alpha*float64(j))
		total += raw[j]
	}
	counts := make([]int, jmax+1)
	assigned := 0
	for j := jmax; j >= 1; j-- {
		c := int(math.Round(raw[j] * float64(n) / total))
		if c < 1 {
			c = 1 // keep the tail populated as the law requires
		}
		counts[j] = c
		assigned += c
	}
	counts[0] = n - assigned
	if counts[0] < 0 {
		counts[0] = 0
	}
	w := make([]float64, 0, n)
	for j := jmax; j >= 0; j-- {
		dw := math.Pow(2, float64(j))
		for i := 0; i < counts[j] && len(w) < n; i++ {
			w = append(w, dw)
		}
	}
	for len(w) < n {
		w = append(w, 1)
	}
	return w
}

// ScaleWeights rescales a weight sequence so its mean is targetMean.
// Weights stay ≥ 1 as the §9 model assumes. Entries may exceed √S; the
// Chung-Lu sampler clamps per-pair probabilities at 1 in that regime.
func ScaleWeights(w []float64, targetMean float64) []float64 {
	var sum float64
	for _, x := range w {
		sum += x
	}
	mean := sum / float64(len(w))
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = math.Max(1, x*targetMean/mean)
	}
	return out
}

// AddHubs raises the top of a non-increasing weight sequence so the maximum
// expected degree is hubMax, interpolating geometrically from hubMax down to
// the existing body maximum over nHubs entries. Real graphs in the paper's
// Table 1 have maximum degrees far above the √n cap of the §9 theoretical
// model; this reintroduces that skew for the stand-ins.
func AddHubs(w []float64, hubMax float64, nHubs int) []float64 {
	if nHubs < 1 {
		nHubs = 1
	}
	if nHubs > len(w) {
		nHubs = len(w)
	}
	out := make([]float64, len(w))
	copy(out, w)
	body := w[0]
	if hubMax <= body {
		return out
	}
	// Geometric interpolation: hub i gets hubMax·r^i with r chosen so the
	// last hub lands at the body maximum.
	r := 1.0
	if nHubs > 1 {
		r = math.Pow(body/hubMax, 1/float64(nHubs-1))
	}
	h := hubMax
	for i := 0; i < nHubs; i++ {
		if h > out[i] {
			out[i] = h
		}
		h *= r
	}
	return out
}

// ChungLu samples a graph from the Chung-Lu distribution: edge (u,v)
// present independently with probability w_u·w_v/S, S = Σw (§9.2). The
// sampler uses the Miller–Hagberg geometric-skipping technique on the
// weight-sorted vertex order, running in O(n + m) expected time instead of
// O(n²). Weights must be positive; entries with w_u·w_v > S are treated as
// probability 1.
func ChungLu(name string, weights []float64, rng *rand.Rand) *graph.Graph {
	n := len(weights)
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	// Sort vertex ids by non-increasing weight (ties by id for determinism).
	sort.Slice(order, func(i, j int) bool {
		wi, wj := weights[order[i]], weights[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	var S float64
	for _, w := range weights {
		S += w
	}
	b := graph.NewBuilder(name, n)
	for i := 0; i < n-1; i++ {
		wi := weights[order[i]]
		j := i + 1
		p := math.Min(1, wi*weights[order[j]]/S)
		for j < n && p > 0 {
			if p < 1 {
				// Geometric skip: number of consecutive misses at rate p.
				r := rng.Float64()
				skip := int(math.Log(r) / math.Log(1-p))
				j += skip
			}
			if j >= n {
				break
			}
			q := math.Min(1, wi*weights[order[j]]/S)
			if rng.Float64() < q/p {
				b.AddEdge(order[i], order[j])
			}
			p = q
			j++
		}
	}
	return b.Build()
}

// PowerLawGraph samples a Chung-Lu graph whose expected degrees follow the
// truncated power law with exponent alpha — the §9 random-graph model.
func PowerLawGraph(name string, n int, alpha float64, rng *rand.Rand) *graph.Graph {
	return ChungLu(name, PowerLawWeights(n, alpha), rng)
}

// RoadGrid builds a road-network-like graph: a W×H lattice where each
// horizontal link exists with probability ph and each vertical link with
// probability pv, a sparse sprinkle of cell diagonals (so short odd cycles
// exist, as in real road networks), plus a few long-range shortcuts.
// Degrees are nearly uniform and tiny — the opposite extreme from the
// power-law graphs, like the paper's roadNetCA.
func RoadGrid(name string, w, h int, ph, pv float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(name, w*h)
	id := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && rng.Float64() < ph {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h && rng.Float64() < pv {
				b.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < w && y+1 < h && rng.Float64() < 0.04 {
				b.AddEdge(id(x, y), id(x+1, y+1))
			}
		}
	}
	// A sprinkle of shortcuts (ramps/bridges), ~0.5% of nodes.
	for i := 0; i < w*h/200; i++ {
		b.AddEdge(uint32(rng.Intn(w*h)), uint32(rng.Intn(w*h)))
	}
	return b.Build()
}
