package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// StandinSpec calibrates a synthetic stand-in for one of the paper's
// Table 1 real-world graphs. SNAP/Open-Connectome downloads are not
// available offline, so each stand-in is a Chung-Lu power-law graph (or a
// grid for the road network) matched to the original's node count, edge
// factor (m/n, the paper's "Avg Deg" column) and degree-skew class; the
// paper's comparative results are driven by exactly these properties
// (§8.2). Alpha is the truncated power-law exponent: smaller = heavier
// tail = more skew.
type StandinSpec struct {
	Name       string
	Domain     string
	Nodes      int     // original node count; divided by the scale factor
	EdgeFactor float64 // original m/n (the paper's "Avg Deg" column)
	MaxDeg     int     // original maximum degree (Table 1)
	Alpha      float64 // power-law body exponent (ignored for grids)
	Grid       bool    // road network: near-uniform tiny degrees
}

// StandinSpecs mirrors the paper's Table 1 rows.
func StandinSpecs() []StandinSpec {
	return []StandinSpec{
		{Name: "brightkite", Domain: "Geo loc.", Nodes: 58000, EdgeFactor: 3.7, MaxDeg: 1135, Alpha: 1.60},
		{Name: "condMat", Domain: "Collab.", Nodes: 23000, EdgeFactor: 4.0, MaxDeg: 281, Alpha: 1.90},
		{Name: "astroph", Domain: "Collab.", Nodes: 18000, EdgeFactor: 11.0, MaxDeg: 504, Alpha: 1.85},
		{Name: "enron", Domain: "Commn.", Nodes: 36000, EdgeFactor: 5.0, MaxDeg: 1385, Alpha: 1.45},
		{Name: "hepph", Domain: "Citation", Nodes: 34000, EdgeFactor: 12.4, MaxDeg: 848, Alpha: 1.75},
		{Name: "slashdot", Domain: "Soc. net.", Nodes: 82000, EdgeFactor: 11.0, MaxDeg: 2554, Alpha: 1.50},
		{Name: "epinions", Domain: "Soc. net.", Nodes: 131000, EdgeFactor: 6.4, MaxDeg: 3558, Alpha: 1.35},
		{Name: "orkut", Domain: "Soc. net.", Nodes: 524000, EdgeFactor: 2.5, MaxDeg: 1634, Alpha: 1.65},
		{Name: "roadNetCA", Domain: "Road net.", Nodes: 2000000, EdgeFactor: 1.35, MaxDeg: 14, Grid: true},
		{Name: "brain", Domain: "Biology", Nodes: 400000, EdgeFactor: 2.75, MaxDeg: 286, Alpha: 1.80},
	}
}

// Build generates the stand-in at 1/scale of the original's node count
// (scale ≥ 1). The edge factor and skew class are preserved.
func (s StandinSpec) Build(scale int, seed int64) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	n := s.Nodes / scale
	if n < 64 {
		n = 64
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(s.Name))<<32 ^ int64(n)))
	if s.Grid {
		// Square-ish lattice; link probabilities tuned so m/n ≈ EdgeFactor.
		side := intSqrt(n)
		p := s.EdgeFactor / 2 // two candidate links per node in a lattice
		return RoadGrid(s.Name, side, side, p, p, rng)
	}
	w := ScaleWeights(PowerLawWeights(n, s.Alpha), 2*s.EdgeFactor)
	// Preserve the original's degree skew: the hub expected degree keeps the
	// original max-degree-to-node-count ratio.
	hubMax := float64(s.MaxDeg) / float64(s.Nodes) * float64(n)
	w = AddHubs(w, hubMax, 1+n/2000)
	return ChungLu(s.Name, w, rng)
}

// Standins builds all ten Table 1 stand-ins at the given scale divisor.
func Standins(scale int, seed int64) []*graph.Graph {
	specs := StandinSpecs()
	gs := make([]*graph.Graph, len(specs))
	for i, s := range specs {
		gs[i] = s.Build(scale, seed)
	}
	return gs
}

// StandinByName builds a single named stand-in.
func StandinByName(name string, scale int, seed int64) (*graph.Graph, bool) {
	for _, s := range StandinSpecs() {
		if s.Name == name {
			return s.Build(scale, seed), true
		}
	}
	return nil, false
}

func intSqrt(n int) int {
	x := 1
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
