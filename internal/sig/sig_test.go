package sig

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	var s Sig
	if s.Size() != 0 {
		t.Fatalf("empty size = %d", s.Size())
	}
	s = s.Add(3).Add(7).Add(3)
	if s.Size() != 2 {
		t.Fatalf("size = %d, want 2", s.Size())
	}
	if !s.Has(3) || !s.Has(7) || s.Has(0) {
		t.Fatalf("membership wrong: %b", s)
	}
	if got := s.Colors(nil); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Colors = %v", got)
	}
}

func TestFull(t *testing.T) {
	for k := 0; k <= MaxColors; k++ {
		f := Full(k)
		if f.Size() != k {
			t.Fatalf("Full(%d).Size = %d", k, f.Size())
		}
		for c := 0; c < k; c++ {
			if !f.Has(uint8(c)) {
				t.Fatalf("Full(%d) missing %d", k, c)
			}
		}
	}
}

func TestOf(t *testing.T) {
	for c := uint8(0); c < MaxColors; c++ {
		s := Of(c)
		if s.Size() != 1 || !s.Has(c) {
			t.Fatalf("Of(%d) = %b", c, s)
		}
	}
}

// Property: set algebra identities hold for arbitrary signatures.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(a, b uint32) bool {
		s, u := Sig(a), Sig(b)
		if s.Union(u) != u.Union(s) || s.Inter(u) != u.Inter(s) {
			return false
		}
		// |s ∪ u| = |s| + |u| - |s ∩ u|
		if s.Union(u).Size() != s.Size()+u.Size()-s.Inter(u).Size() {
			return false
		}
		if s.Disjoint(u) != (s.Inter(u) == 0) {
			return false
		}
		if !s.Contains(s.Inter(u)) || !s.Union(u).Contains(s) {
			return false
		}
		return s.Without(u).Inter(u) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Colors round-trips through Add.
func TestQuickColorsRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		s := Sig(a)
		var back Sig
		for _, c := range s.Colors(nil) {
			back = back.Add(c)
		}
		return back == s && s.Size() == bits.OnesCount32(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
