// Package sig implements color signatures: sets of colors represented as
// bitmaps, as used by the projection tables of the color-coding solver
// (paper §7: "Signatures are maintained as bitmaps").
//
// Colors are small integers in [0, MaxColors). A signature is the set of
// colors used by a (partial) colorful match.
package sig

import "math/bits"

// MaxColors is the largest number of colors supported. Queries larger than
// this are rejected up front; the paper's queries have at most 11 nodes.
const MaxColors = 31

// Sig is a set of colors encoded as a bitmap: bit c is set iff color c is
// in the set. The zero value is the empty set.
type Sig uint32

// Of returns the singleton signature {c}.
func Of(c uint8) Sig { return 1 << c }

// Full returns the signature containing all colors 0..k-1.
func Full(k int) Sig { return Sig(1)<<uint(k) - 1 }

// Has reports whether color c is in s.
func (s Sig) Has(c uint8) bool { return s&(1<<c) != 0 }

// Add returns s ∪ {c}.
func (s Sig) Add(c uint8) Sig { return s | 1<<c }

// Union returns s ∪ t.
func (s Sig) Union(t Sig) Sig { return s | t }

// Inter returns s ∩ t.
func (s Sig) Inter(t Sig) Sig { return s & t }

// Without returns s \ t.
func (s Sig) Without(t Sig) Sig { return s &^ t }

// Disjoint reports whether s ∩ t = ∅.
func (s Sig) Disjoint(t Sig) bool { return s&t == 0 }

// Contains reports whether t ⊆ s.
func (s Sig) Contains(t Sig) bool { return s&t == t }

// Size returns |s|.
func (s Sig) Size() int { return bits.OnesCount32(uint32(s)) }

// Rank returns s's position along the signature axis of the flat table
// layout (package table): the dense rank of s among all 2^k signatures
// over k colors, which for a bitmap encoding is the bitmap value itself.
// Flat tables order entries that share a vertex by ascending Rank, so
// consecutive signatures sit adjacent in memory and the join loops scan
// them as one contiguous run.
func (s Sig) Rank() uint32 { return uint32(s) }

// Colors returns the colors in s in increasing order, appended to dst.
func (s Sig) Colors(dst []uint8) []uint8 {
	for s != 0 {
		c := uint8(bits.TrailingZeros32(uint32(s)))
		dst = append(dst, c)
		s &= s - 1
	}
	return dst
}
