package query

import "fmt"

// This file defines the benchmark query catalog. The paper's Figure 8 shows
// ten real-world treewidth-2 queries (dros, ecoli1, ecoli2, brain1, brain2,
// brain3, glet1, glet2, wiki, youtube) as drawings; the exact topologies are
// not machine-readable, so the catalog encodes treewidth-2 queries that
// honour every structural fact stated in the text (see DESIGN.md). The
// "satellite" query reproduces the paper's Figure 2 worked example
// edge-for-edge from the §4.1 narrative.

// Catalog returns the ten Figure 8 benchmark queries in the paper's order.
func Catalog() []*Graph {
	names := []string{
		"dros", "ecoli1", "ecoli2", "brain1", "brain2",
		"brain3", "glet1", "glet2", "wiki", "youtube",
	}
	qs := make([]*Graph, len(names))
	for i, n := range names {
		qs[i] = MustByName(n)
	}
	return qs
}

// ByName returns a named query: one of the Figure 8 catalog names,
// "satellite", or a parametric family "cycle<L>", "path<L>", "star<L>",
// "bintree<L>" (L = number of nodes).
func ByName(name string) (*Graph, error) {
	switch name {
	case "dros":
		// Drosophila PPI motif: a 5-cycle with a two-edge tail (7 nodes).
		return FromEdges(name, 7, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 5}, {5, 6},
		}), nil
	case "ecoli1":
		// E. coli motif: 4-cycle and triangle sharing node 0, two leaves (8 nodes).
		return FromEdges(name, 8, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0},
			{0, 4}, {4, 5}, {5, 0},
			{2, 6}, {4, 7},
		}), nil
	case "ecoli2":
		// E. coli motif: two 4-cycles sharing node 0, two leaves (9 nodes).
		return FromEdges(name, 9, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0},
			{0, 4}, {4, 5}, {5, 6}, {6, 0},
			{2, 7}, {5, 8},
		}), nil
	case "brain1":
		// Brain-network motif: a 6-cycle and a 4-cycle sharing edge (0,1)
		// (8 nodes). Admits exactly two decomposition trees — contract the
		// 4-cycle first or the 6-cycle first — as stated in §6.
		return FromEdges(name, 8, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},
			{0, 6}, {6, 7}, {7, 1},
		}), nil
	case "brain2":
		// Brain-network motif: a 7-cycle and a 4-cycle sharing edge (0,1) (9 nodes).
		return FromEdges(name, 9, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0},
			{0, 7}, {7, 8}, {8, 1},
		}), nil
	case "brain3":
		// Brain-network motif: an 8-cycle and a 4-cycle sharing edge (0,1)
		// (10 nodes) — the hardest catalog query (§8.2: longest cycles
		// dominate runtime).
		return FromEdges(name, 10, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
			{0, 8}, {8, 9}, {9, 1},
		}), nil
	case "glet1":
		// 5-node "house" graphlet: 4-cycle plus a roof triangle.
		return FromEdges(name, 5, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4},
		}), nil
	case "glet2":
		// 5-node cycle graphlet (pentagon).
		return FromEdges(name, 5, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
		}), nil
	case "wiki":
		// Wikipedia collaboration motif: triangle core with pendant
		// structure (7 nodes).
		return FromEdges(name, 7, [][2]int{
			{0, 1}, {1, 2}, {2, 0},
			{0, 3}, {1, 4}, {2, 5}, {5, 6},
		}), nil
	case "youtube":
		// YouTube spam-campaign motif: 4-cycle with two leaves (6 nodes);
		// sub-second in the paper's Figure 9 — the easiest catalog query.
		return FromEdges(name, 6, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {2, 5},
		}), nil
	case "satellite":
		// The paper's Figure 2 example, nodes a..k → 0..10:
		// 5-cycle (a,b,c,d,e); triangle (i,f,g); leaf (f,h);
		// triangle (i,j,k); links a-f and c-g.
		return FromEdges(name, 11, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // a-b-c-d-e-a
			{0, 5}, {2, 6}, // a-f, c-g
			{5, 6},         // f-g
			{5, 8}, {6, 8}, // f-i, g-i
			{5, 7},                   // f-h
			{8, 9}, {9, 10}, {8, 10}, // i-j-k triangle
		}), nil
	}
	var l int
	if _, err := fmt.Sscanf(name, "cycle%d", &l); err == nil {
		if err := checkParametricL(name, l, 3); err != nil {
			return nil, err
		}
		return Cycle(l), nil
	}
	if _, err := fmt.Sscanf(name, "path%d", &l); err == nil {
		if err := checkParametricL(name, l, 1); err != nil {
			return nil, err
		}
		return PathGraph(l), nil
	}
	if _, err := fmt.Sscanf(name, "star%d", &l); err == nil {
		if err := checkParametricL(name, l, 2); err != nil {
			return nil, err
		}
		return Star(l), nil
	}
	if _, err := fmt.Sscanf(name, "bintree%d", &l); err == nil {
		if err := checkParametricL(name, l, 1); err != nil {
			return nil, err
		}
		return BinaryTree(l), nil
	}
	return nil, fmt.Errorf("query: unknown query %q", name)
}

// MaxParametricL bounds the parametric families reachable by name: names
// come from untrusted input (CLIs, the HTTP service), and the constructors
// allocate an l×l adjacency matrix before any downstream size check runs.
// The solver caps queries at 16 nodes anyway; 64 leaves headroom for
// plotting/diagnostic uses without letting "star300000" allocate gigabytes.
const MaxParametricL = 64

// checkParametricL turns the constructors' panics on out-of-range l into
// errors for name-based (untrusted) lookups.
func checkParametricL(name string, l, min int) error {
	if l < min {
		return fmt.Errorf("query: %s needs ≥ %d nodes", name, min)
	}
	if l > MaxParametricL {
		return fmt.Errorf("query: %s has %d nodes; max %d", name, l, MaxParametricL)
	}
	return nil
}

// MustByName is ByName but panics on error; for program-defined constants.
func MustByName(name string) *Graph {
	q, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return q
}

// Cycle returns the cycle query C_l (l ≥ 3).
func Cycle(l int) *Graph {
	if l < 3 {
		panic("query: cycle needs ≥ 3 nodes")
	}
	g := New(fmt.Sprintf("cycle%d", l), l)
	for i := 0; i < l; i++ {
		g.AddEdge(i, (i+1)%l)
	}
	return g
}

// PathGraph returns the path query on l nodes (l ≥ 1).
func PathGraph(l int) *Graph {
	if l < 1 {
		panic("query: path needs ≥ 1 node")
	}
	g := New(fmt.Sprintf("path%d", l), l)
	for i := 0; i+1 < l; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Star returns the star query on l nodes: node 0 adjacent to all others.
func Star(l int) *Graph {
	if l < 2 {
		panic("query: star needs ≥ 2 nodes")
	}
	g := New(fmt.Sprintf("star%d", l), l)
	for i := 1; i < l; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// BinaryTree returns the complete binary tree on l nodes (levels filled left
// to right; node i has children 2i+1 and 2i+2). The paper's §8.2 uses the
// 12-vertex complete binary tree as an easy (treewidth-1) reference query.
func BinaryTree(l int) *Graph {
	if l < 1 {
		panic("query: bintree needs ≥ 1 node")
	}
	g := New(fmt.Sprintf("bintree%d", l), l)
	for i := 1; i < l; i++ {
		g.AddEdge((i-1)/2, i)
	}
	return g
}
