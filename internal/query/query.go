// Package query represents the small query (template) graphs whose
// occurrences are counted in a large data graph, together with the
// benchmark catalog used throughout the paper's evaluation (Figure 8),
// automorphism counting (§2) and treewidth-≤2 recognition.
package query

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Graph is a small simple undirected query graph. Nodes are 0..K-1.
// Queries are tiny (the paper's largest has 11 nodes), so adjacency is a
// dense matrix plus an edge list; all operations favour clarity.
type Graph struct {
	Name string
	K    int      // number of nodes
	adj  [][]bool // K×K adjacency matrix
	nbr  [][]int  // sorted neighbor lists
	edge [][2]int // edge list, each with a < b
}

// New returns an empty query graph on k nodes.
func New(name string, k int) *Graph {
	g := &Graph{Name: name, K: k}
	g.adj = make([][]bool, k)
	for i := range g.adj {
		g.adj[i] = make([]bool, k)
	}
	g.nbr = make([][]int, k)
	return g
}

// FromEdges builds a query graph on k nodes from an edge list.
// It panics on self-loops or out-of-range endpoints (queries are
// program-defined constants; a malformed one is a programming error).
func FromEdges(name string, k int, edges [][2]int) *Graph {
	g := New(name, k)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// FromEdgesChecked is FromEdges for untrusted input: it validates instead
// of panicking, derives k as the largest node id plus one, and rejects
// node ids above maxID *before* the k×k adjacency matrix is allocated (so
// a hostile edge list cannot force a huge allocation). maxID ≤ 0 means
// unbounded.
func FromEdgesChecked(name string, edges [][2]int, maxID int) (*Graph, error) {
	k := 0
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("query %s: negative node id in (%d,%d)", name, a, b)
		}
		if a == b {
			return nil, fmt.Errorf("query %s: self-loop at %d", name, a)
		}
		if maxID > 0 && (a > maxID || b > maxID) {
			big := a
			if b > big {
				big = b
			}
			return nil, fmt.Errorf("query %s: node id %d too large (max %d)", name, big, maxID)
		}
		if a >= k {
			k = a + 1
		}
		if b >= k {
			k = b + 1
		}
	}
	if k == 0 {
		return nil, fmt.Errorf("query %s: no edges", name)
	}
	return FromEdges(name, k, edges), nil
}

// AddEdge inserts the undirected edge (a,b). Duplicate insertions are
// idempotent.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic(fmt.Sprintf("query %s: self-loop at %d", g.Name, a))
	}
	if a < 0 || b < 0 || a >= g.K || b >= g.K {
		panic(fmt.Sprintf("query %s: edge (%d,%d) out of range", g.Name, a, b))
	}
	if g.adj[a][b] {
		return
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
	g.nbr[a] = insertSorted(g.nbr[a], b)
	g.nbr[b] = insertSorted(g.nbr[b], a)
	if a > b {
		a, b = b, a
	}
	g.edge = append(g.edge, [2]int{a, b})
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether (a,b) is an edge.
func (g *Graph) HasEdge(a, b int) bool { return g.adj[a][b] }

// Neighbors returns the sorted neighbor list of a. Callers must not modify it.
func (g *Graph) Neighbors(a int) []int { return g.nbr[a] }

// Degree returns the degree of node a.
func (g *Graph) Degree(a int) int { return len(g.nbr[a]) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edge) }

// Edges returns the edge list (each edge once, with a < b).
// Callers must not modify it.
func (g *Graph) Edges() [][2]int { return g.edge }

// Connected reports whether the query graph is connected (true for K ≤ 1).
func (g *Graph) Connected() bool {
	if g.K <= 1 {
		return true
	}
	seen := make([]bool, g.K)
	stack := []int{0}
	seen[0] = true
	n := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.nbr[v] {
			if !seen[w] {
				seen[w] = true
				n++
				stack = append(stack, w)
			}
		}
	}
	return n == g.K
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.Name, g.K)
	for _, e := range g.edge {
		h.AddEdge(e[0], e[1])
	}
	return h
}

// String renders the query as "name(k): a-b a-c ...".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(k=%d):", g.Name, g.K)
	for _, e := range g.edge {
		fmt.Fprintf(&b, " %d-%d", e[0], e[1])
	}
	return b.String()
}

// TreewidthAtMost2 reports whether the query has treewidth ≤ 2.
// A connected graph has treewidth ≤ 2 iff it can be reduced to a single
// vertex by repeatedly deleting vertices of degree ≤ 1 and contracting
// degree-2 vertices (adding the shortcut edge between their neighbors) —
// the classic series-parallel reduction.
func (g *Graph) TreewidthAtMost2() bool {
	// Work on a mutable adjacency-set copy.
	adj := make([]map[int]bool, g.K)
	alive := make([]bool, g.K)
	for v := 0; v < g.K; v++ {
		adj[v] = make(map[int]bool, len(g.nbr[v]))
		for _, w := range g.nbr[v] {
			adj[v][w] = true
		}
		alive[v] = true
	}
	remaining := g.K
	for {
		reduced := false
		for v := 0; v < g.K && remaining > 1; v++ {
			if !alive[v] {
				continue
			}
			switch len(adj[v]) {
			case 0, 1:
				for w := range adj[v] {
					delete(adj[w], v)
				}
				adj[v] = nil
				alive[v] = false
				remaining--
				reduced = true
			case 2:
				var ns []int
				for w := range adj[v] {
					ns = append(ns, w)
				}
				a, b := ns[0], ns[1]
				delete(adj[a], v)
				delete(adj[b], v)
				adj[a][b] = true
				adj[b][a] = true
				adj[v] = nil
				alive[v] = false
				remaining--
				reduced = true
			}
		}
		if remaining <= 1 {
			return true
		}
		if !reduced {
			return false
		}
	}
}

// IsTree reports whether the query is a connected acyclic graph
// (treewidth 1), the class handled by prior work (FASCIA).
func (g *Graph) IsTree() bool {
	return g.Connected() && g.M() == g.K-1
}

// Automorphisms returns aut(Q), the number of automorphisms of the query.
// Matches divided by aut(Q) gives the number of distinct subgraphs (§2).
// Uses backtracking with degree pruning; queries are tiny.
func (g *Graph) Automorphisms() uint64 {
	perm := make([]int, g.K)
	used := make([]bool, g.K)
	var count uint64
	var rec func(i int)
	rec = func(i int) {
		if i == g.K {
			count++
			return
		}
		for v := 0; v < g.K; v++ {
			if used[v] || g.Degree(v) != g.Degree(i) {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if g.adj[i][j] != g.adj[v][perm[j]] {
					ok = false
					break
				}
			}
			if ok {
				perm[i] = v
				used[v] = true
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return count
}

// ReadEdgeList parses a query graph from a whitespace edge list ("a b" per
// line, '#' comments allowed, nodes are 0-based integers). The node count
// is one more than the largest id seen. Useful for counting user-supplied
// motifs via the CLI. Construction and semantic validation are
// FromEdgesChecked's; the per-line checks here exist only to attach line
// numbers, which matter when debugging a large motif file.
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var edges [][2]int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(text, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("query: %s:%d: want \"a b\", got %q", name, line, text)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("query: %s:%d: negative node id", name, line)
		}
		if a == b {
			return nil, fmt.Errorf("query: %s:%d: self-loop at %d", name, line, a)
		}
		edges = append(edges, [2]int{a, b})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("query: reading %s: %v", name, err)
	}
	return FromEdgesChecked(name, edges, 0)
}
