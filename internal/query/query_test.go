package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogWellFormed(t *testing.T) {
	qs := Catalog()
	if len(qs) != 10 {
		t.Fatalf("catalog size = %d, want 10", len(qs))
	}
	sizes := map[string]int{
		"dros": 7, "ecoli1": 8, "ecoli2": 9, "brain1": 8, "brain2": 9,
		"brain3": 10, "glet1": 5, "glet2": 5, "wiki": 7, "youtube": 6,
	}
	for _, q := range qs {
		if q.K != sizes[q.Name] {
			t.Errorf("%s: K = %d, want %d", q.Name, q.K, sizes[q.Name])
		}
		if !q.Connected() {
			t.Errorf("%s: not connected", q.Name)
		}
		if !q.TreewidthAtMost2() {
			t.Errorf("%s: treewidth > 2", q.Name)
		}
		if q.IsTree() {
			t.Errorf("%s: is a tree; catalog queries must contain cycles", q.Name)
		}
	}
}

func TestSatellite(t *testing.T) {
	q := MustByName("satellite")
	if q.K != 11 || q.M() != 14 {
		t.Fatalf("satellite: K=%d M=%d, want 11/14", q.K, q.M())
	}
	if !q.TreewidthAtMost2() || !q.Connected() {
		t.Fatal("satellite must be connected treewidth-2")
	}
	// Spot-check the Figure 2 structure: f (node 5) has degree 4 (a,g,i,h).
	if q.Degree(5) != 4 {
		t.Fatalf("satellite: deg(f) = %d, want 4", q.Degree(5))
	}
}

func TestTreewidthRecognition(t *testing.T) {
	cases := []struct {
		q    *Graph
		want bool
	}{
		{Cycle(3), true},
		{Cycle(8), true},
		{PathGraph(6), true},
		{Star(7), true},
		{BinaryTree(12), true},
		{k4(), false},
		{FromEdges("k4minus", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}), true},
	}
	for _, c := range cases {
		if got := c.q.TreewidthAtMost2(); got != c.want {
			t.Errorf("%s: TreewidthAtMost2 = %v, want %v", c.q.Name, got, c.want)
		}
	}
}

func k4() *Graph {
	return FromEdges("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
}

func TestAutomorphisms(t *testing.T) {
	cases := []struct {
		q    *Graph
		want uint64
	}{
		{Cycle(3), 6},  // dihedral group of the triangle
		{Cycle(5), 10}, // dihedral group D5
		{Cycle(8), 16}, // D8
		{PathGraph(4), 2},
		{Star(5), 24}, // 4! leaf permutations
		{k4(), 24},
		{PathGraph(1), 1},
	}
	for _, c := range cases {
		if got := c.q.Automorphisms(); got != c.want {
			t.Errorf("%s: aut = %d, want %d", c.q.Name, got, c.want)
		}
	}
}

func TestIsTree(t *testing.T) {
	if !PathGraph(5).IsTree() || !Star(6).IsTree() || !BinaryTree(12).IsTree() {
		t.Fatal("trees not recognized")
	}
	if Cycle(4).IsTree() {
		t.Fatal("cycle misclassified as tree")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New("t", 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := MustByName("glet1")
	h := g.Clone()
	h.AddEdge(2, 4)
	if g.HasEdge(2, 4) {
		t.Fatal("Clone shares state with original")
	}
	if g.M()+1 != h.M() {
		t.Fatalf("M mismatch: %d vs %d", g.M(), h.M())
	}
}

// Property: cycles of length l have l edges, are treewidth-2 (not trees),
// and have 2l automorphisms.
func TestQuickCycles(t *testing.T) {
	f := func(raw uint8) bool {
		l := 3 + int(raw%10)
		c := Cycle(l)
		return c.M() == l && c.TreewidthAtMost2() && !c.IsTree() &&
			c.Automorphisms() == uint64(2*l) && c.Connected()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every node's neighbor list is sorted and consistent with HasEdge.
func TestQuickNeighborConsistency(t *testing.T) {
	for _, q := range append(Catalog(), MustByName("satellite")) {
		for v := 0; v < q.K; v++ {
			ns := q.Neighbors(v)
			for i, w := range ns {
				if i > 0 && ns[i-1] >= w {
					t.Fatalf("%s: neighbors of %d not strictly sorted: %v", q.Name, v, ns)
				}
				if !q.HasEdge(v, w) {
					t.Fatalf("%s: neighbor %d-%d not an edge", q.Name, v, w)
				}
			}
			if q.Degree(v) != len(ns) {
				t.Fatalf("%s: degree mismatch at %d", q.Name, v)
			}
		}
	}
}

func TestReadEdgeList(t *testing.T) {
	q, err := ReadEdgeList("tri", strings.NewReader("# triangle\n0 1\n1 2\n2 0\n"))
	if err != nil || q.K != 3 || q.M() != 3 {
		t.Fatalf("triangle: %v %v", q, err)
	}
	if !q.TreewidthAtMost2() {
		t.Fatal("triangle misclassified")
	}
	for _, bad := range []string{"", "0 0\n", "x y\n", "-1 2\n", "1\n"} {
		if _, err := ReadEdgeList("bad", strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}
