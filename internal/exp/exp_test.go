package exp

import (
	"io"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests: three graphs spanning
// the skew spectrum, three queries spanning the size spectrum.
func tiny() Config {
	return Config{
		Scale:      2048,
		Workers:    4,
		WorkersLow: 2,
		Seed:       3,
		Trials:     4,
		Graphs:     []string{"enron", "epinions", "roadNetCA"},
		Queries:    []string{"glet1", "glet2", "youtube"},
	}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	rows := Table1(&sb, tiny())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Edges == 0 {
			t.Fatalf("empty stand-in %q", r.Name)
		}
	}
	if !strings.Contains(sb.String(), "enron") {
		t.Fatal("output missing graph name")
	}
}

func TestFigure9(t *testing.T) {
	res, err := Figure9(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 9 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if len(res.PerGraph) != 3 || len(res.PerQuery) != 3 {
		t.Fatalf("averages missing: %v %v", res.PerGraph, res.PerQuery)
	}
	for g, l := range res.LoadGraph {
		if l <= 0 {
			t.Fatalf("graph %s has zero load", g)
		}
	}
}

func TestFigure10ShapesHold(t *testing.T) {
	res, err := Figure10(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if len(r.Cells) != 9 {
			t.Fatalf("matrix %d has %d cells", i, len(r.Cells))
		}
		if r.MaxIF <= 0 || r.AvgIF <= 0 {
			t.Fatalf("degenerate summary: %+v", r)
		}
	}
	// The headline claim: DB wins on a majority of skewed combos; across
	// this mixed set it must win at least somewhere, with IF > 1.2.
	if res[1].MaxIF < 1.2 {
		t.Errorf("expected some improvement from DB, max IF = %.2f", res[1].MaxIF)
	}
}

func TestFigure11(t *testing.T) {
	rows, err := Figure11(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxLoadPS <= 0 || r.MaxLoadDB <= 0 {
			t.Fatalf("zero loads: %+v", r)
		}
		if r.AvgLoadPS > float64(r.MaxLoadPS) || r.AvgLoadDB > float64(r.MaxLoadDB) {
			t.Fatalf("avg load exceeds max load: %+v", r)
		}
	}
}

func TestFigure12(t *testing.T) {
	res, err := Figure12(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	for q, sp := range res.PerQuery {
		if sp <= 0 {
			t.Fatalf("query %s: speedup %f", q, sp)
		}
		// Modeled speedup can't exceed the rank ratio by more than rounding.
		if sp > 2.5 {
			t.Fatalf("query %s: speedup %f exceeds ideal 2x", q, sp)
		}
	}
}

func TestFigure13(t *testing.T) {
	cfg := tiny()
	cfg.Queries = []string{"glet1"}
	pts, err := Figure13Strong(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 { // ranks 2, 4
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %f", pts[0].Speedup)
	}
	if pts[1].Speedup < 1 {
		t.Fatalf("scaling went backwards: %+v", pts[1])
	}
	weak, err := Figure13Weak(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(weak) != 2 {
		t.Fatalf("weak points = %d", len(weak))
	}
	for _, p := range weak {
		if p.MaxLoad <= 0 {
			t.Fatalf("weak point without load: %+v", p)
		}
	}
}

func TestFigure14HeuristicNearOptimal(t *testing.T) {
	cfg := tiny()
	cfg.Graphs = []string{"enron"}
	cfg.Queries = []string{"brain1", "ecoli1"}
	res, err := Figure14(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Plans < 2 {
			t.Fatalf("%s: expected multiple plans, got %d", c.Query, c.Plans)
		}
		if c.OptLoad <= 0 || c.HeurLoad < c.OptLoad {
			t.Fatalf("load bookkeeping wrong: %+v", c)
		}
	}
}

func TestFigure15(t *testing.T) {
	res, err := Figure15(io.Discard, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if res.FracGoodFull < 0 || res.FracGoodFull > 1 || res.FracGood3 < 0 || res.FracGood3 > 1 {
		t.Fatalf("fractions out of range: %+v", res)
	}
	for _, c := range res.Cells {
		if c.CVFull < 0 || c.CV3 < 0 {
			t.Fatalf("negative CV: %+v", c)
		}
	}
}

func TestCVOfPrefix(t *testing.T) {
	counts := []uint64{10, 10, 10, 50}
	if got := cvOfPrefix(counts, 3); got != 0 {
		t.Fatalf("constant prefix CV = %f", got)
	}
	if got := cvOfPrefix(counts, 4); got <= 0 {
		t.Fatalf("varying CV = %f", got)
	}
	if got := cvOfPrefix(counts[:1], 3); got != 0 {
		t.Fatalf("single-sample CV = %f", got)
	}
}

func TestComboSeedStable(t *testing.T) {
	cfg := tiny()
	if cfg.comboSeed("a", "b") != cfg.comboSeed("a", "b") {
		t.Fatal("seed not deterministic")
	}
	if cfg.comboSeed("a", "b") == cfg.comboSeed("b", "a") {
		t.Fatal("seed collision across combos")
	}
}

func TestAblation(t *testing.T) {
	cfg := tiny()
	rows, err := Ablation(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LoadPS <= 0 || r.LoadPSEven <= 0 || r.LoadDB <= 0 {
			t.Fatalf("zero loads: %+v", r)
		}
		if r.MaxPS < r.LoadPS/int64(cfg.Workers) {
			t.Fatalf("max below average: %+v", r)
		}
	}
}

// The theory sweep is the slowest experiment; exercise a short variant.
func TestTheoryShortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("theory sweep")
	}
	cfg := tiny()
	res, err := Theory(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slopes) != 6 { // 3 alphas × 2 qs
		t.Fatalf("slopes = %d", len(res.Slopes))
	}
	for _, s := range res.Slopes {
		if s.RatioAtLargestN <= 1 {
			t.Errorf("alpha %.1f q %d: Y/X ratio %.2f not > 1", s.Alpha, s.Q, s.RatioAtLargestN)
		}
		if s.SlopeY < 0.5 || s.SlopeY > 2.5 {
			t.Errorf("alpha %.1f q %d: slopeY %.2f implausible", s.Alpha, s.Q, s.SlopeY)
		}
	}
	for _, n := range []int{4000, 32000} {
		if res.Lambda[n] <= 0 {
			t.Errorf("lambda(%d) missing", n)
		}
	}
	if res.Lambda[32000] >= res.Lambda[4000] {
		t.Errorf("balancedness not improving with n: %v", res.Lambda)
	}
}

func TestTreeVsCycle(t *testing.T) {
	cfg := tiny()
	rows, err := TreeVsCycle(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	loads := map[string]int64{}
	for _, r := range rows {
		if r.AvgLoad <= 0 {
			t.Fatalf("zero load: %+v", r)
		}
		loads[r.Query] = r.AvgLoad
	}
	// The §8.2 shape: the 12-node tree is far cheaper than the 10-node
	// brain3 despite being larger.
	if loads["bintree12"]*2 > loads["brain3"] {
		t.Errorf("tree query not clearly cheaper: tree %d vs brain3 %d",
			loads["bintree12"], loads["brain3"])
	}
}
