package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// This file regenerates Table 1 and Figures 9–13: graph characteristics,
// average DB runtimes, the PS-vs-DB improvement factor, load balance, and
// strong/weak scaling. Wall times are reported alongside the deterministic
// load model (per-worker projection operations): on a small host the load
// model is the scale-free signal, as the figures' captions note.

// Table1 prints the stand-in graph characteristics in the paper's Table 1
// shape ("Avg Deg" is m/n as in the paper) and returns the rows.
func Table1(w io.Writer, cfg Config) []graph.Stats {
	cfg = cfg.withDefaults()
	header(w, fmt.Sprintf("Table 1: data graphs (stand-ins at 1/%d scale)", cfg.Scale))
	fmt.Fprintf(w, "%-12s %-10s %9s %10s %8s %8s\n", "Graph", "Domain", "Nodes", "Edges", "AvgDeg", "MaxDeg")
	var rows []graph.Stats
	specs := gen.StandinSpecs()
	for i, g := range cfg.graphs() {
		st := g.Stats()
		domain := ""
		for _, s := range specs {
			if s.Name == st.Name {
				domain = s.Domain
			}
		}
		fmt.Fprintf(w, "%-12s %-10s %9d %10d %8.1f %8d\n",
			st.Name, domain, st.Nodes, st.Edges, float64(st.Edges)/float64(st.Nodes), st.MaxDeg)
		rows = append(rows, st)
		_ = i
	}
	return rows
}

// Figure9Result holds the per-graph and per-query average DB runtimes.
type Figure9Result struct {
	Runs      []Run
	PerGraph  map[string]time.Duration
	PerQuery  map[string]time.Duration
	LoadGraph map[string]int64 // average total load per graph
	LoadQuery map[string]int64
}

// Figure9 runs DB (heuristic plan) on every graph-query combination and
// prints average execution time per graph (across queries) and per query
// (across graphs), the paper's Figure 9.
func Figure9(w io.Writer, cfg Config) (Figure9Result, error) {
	cfg = cfg.withDefaults()
	res := Figure9Result{
		PerGraph:  map[string]time.Duration{},
		PerQuery:  map[string]time.Duration{},
		LoadGraph: map[string]int64{},
		LoadQuery: map[string]int64{},
	}
	gs, qs := cfg.graphs(), cfg.queries()
	for _, g := range gs {
		for _, q := range qs {
			r, err := cfg.runOnce(g, q, core.DB, cfg.Workers, nil)
			if err != nil {
				return res, err
			}
			res.Runs = append(res.Runs, r)
			res.PerGraph[g.Name] += r.Time
			res.PerQuery[q.Name] += r.Time
			res.LoadGraph[g.Name] += r.Stats.TotalLoad
			res.LoadQuery[q.Name] += r.Stats.TotalLoad
		}
	}
	for k := range res.PerGraph {
		res.PerGraph[k] /= time.Duration(len(qs))
		res.LoadGraph[k] /= int64(len(qs))
	}
	for k := range res.PerQuery {
		res.PerQuery[k] /= time.Duration(len(gs))
		res.LoadQuery[k] /= int64(len(gs))
	}
	header(w, fmt.Sprintf("Figure 9: average DB execution time (%d ranks)", cfg.Workers))
	fmt.Fprintf(w, "%-12s %12s %14s\n", "Graph", "avg time", "avg load")
	for _, g := range gs {
		fmt.Fprintf(w, "%-12s %12v %14d\n", g.Name, res.PerGraph[g.Name].Round(time.Millisecond), res.LoadGraph[g.Name])
	}
	fmt.Fprintf(w, "%-12s %12s %14s\n", "Query", "avg time", "avg load")
	for _, q := range qs {
		fmt.Fprintf(w, "%-12s %12v %14d\n", q.Name, res.PerQuery[q.Name].Round(time.Millisecond), res.LoadQuery[q.Name])
	}
	return res, nil
}

// IFCell is one Figure 10 matrix cell: the improvement factor of DB over
// PS on a graph-query combination.
type IFCell struct {
	Graph, Query   string
	IFTime, IFLoad float64 // time(PS)/time(DB), maxload(PS)/maxload(DB)
}

// Figure10Result summarizes the improvement-factor matrix at one rank count.
type Figure10Result struct {
	Workers  int
	Cells    []IFCell
	WinsFrac float64 // fraction of combos with IFLoad > 1
	AvgIF    float64 // average IFLoad
	MaxIF    float64
}

// Figure10 compares PS and DB on every combination at the low and high
// rank counts, printing the improvement-factor matrices (Figure 10a/b).
// Both algorithms run the same per-combo coloring; the load-based IF is
// deterministic and is used for the summary statistics.
func Figure10(w io.Writer, cfg Config) ([2]Figure10Result, error) {
	cfg = cfg.withDefaults()
	var out [2]Figure10Result
	for i, workers := range []int{cfg.WorkersLow, cfg.Workers} {
		res := Figure10Result{Workers: workers}
		header(w, fmt.Sprintf("Figure 10%c: improvement factor of DB over PS (%d ranks)", 'a'+i, workers))
		fmt.Fprintf(w, "%-12s %-10s %10s %10s\n", "Graph", "Query", "IF(time)", "IF(load)")
		for _, g := range cfg.graphs() {
			for _, q := range cfg.queries() {
				ps, err := cfg.runOnce(g, q, core.PS, workers, nil)
				if err != nil {
					return out, err
				}
				db, err := cfg.runOnce(g, q, core.DB, workers, nil)
				if err != nil {
					return out, err
				}
				if ps.Count != db.Count {
					return out, fmt.Errorf("exp: PS/DB disagree on %s/%s: %d vs %d", g.Name, q.Name, ps.Count, db.Count)
				}
				cell := IFCell{
					Graph:  g.Name,
					Query:  q.Name,
					IFTime: ratio(float64(ps.Time), float64(db.Time)),
					IFLoad: ratio(float64(ps.Stats.MaxLoad), float64(db.Stats.MaxLoad)),
				}
				res.Cells = append(res.Cells, cell)
				fmt.Fprintf(w, "%-12s %-10s %10.2f %10.2f\n", g.Name, q.Name, cell.IFTime, cell.IFLoad)
			}
		}
		wins := 0
		var sum float64
		for _, c := range res.Cells {
			if c.IFLoad > 1 {
				wins++
			}
			sum += c.IFLoad
			if c.IFLoad > res.MaxIF {
				res.MaxIF = c.IFLoad
			}
		}
		res.WinsFrac = float64(wins) / float64(len(res.Cells))
		res.AvgIF = sum / float64(len(res.Cells))
		fmt.Fprintf(w, "summary: DB wins %.0f%% of combos; avg IF %.2f; max IF %.2f\n",
			100*res.WinsFrac, res.AvgIF, res.MaxIF)
		out[i] = res
	}
	return out, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Figure11Row compares PS and DB load balance for one query on the enron
// stand-in (normalized as in the paper's Figure 11).
type Figure11Row struct {
	Query                 string
	TimePS, TimeDB        time.Duration
	MaxLoadPS, MaxLoadDB  int64
	AvgLoadPS, AvgLoadDB  float64
	NormTimeDB, NormMaxDB float64 // DB value / PS value (PS normalized to 1)
	NormAvgDB             float64
}

// Figure11 reproduces the load-balance study: normalized execution time,
// maximum load and average load of DB vs PS on the enron stand-in
// (the paper uses the nine queries of its Figure 11).
func Figure11(w io.Writer, cfg Config) ([]Figure11Row, error) {
	cfg = cfg.withDefaults()
	g, ok := gen.StandinByName("enron", cfg.Scale, cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("exp: enron stand-in missing")
	}
	header(w, fmt.Sprintf("Figure 11: normalized time / max load / avg load on %s (%d ranks), PS=1.0", g.Name, cfg.Workers))
	fmt.Fprintf(w, "%-10s %10s %10s %10s\n", "Query", "time(DB)", "max(DB)", "avg(DB)")
	var rows []Figure11Row
	for _, q := range cfg.queries() {
		if q.Name == "brain3" {
			continue // the paper's Figure 11 plots nine queries, without brain3
		}
		ps, err := cfg.runOnce(g, q, core.PS, cfg.Workers, nil)
		if err != nil {
			return rows, err
		}
		db, err := cfg.runOnce(g, q, core.DB, cfg.Workers, nil)
		if err != nil {
			return rows, err
		}
		row := Figure11Row{
			Query:  q.Name,
			TimePS: ps.Time, TimeDB: db.Time,
			MaxLoadPS: ps.Stats.MaxLoad, MaxLoadDB: db.Stats.MaxLoad,
			AvgLoadPS: ps.Stats.AvgLoad, AvgLoadDB: db.Stats.AvgLoad,
			NormTimeDB: ratio(float64(db.Time), float64(ps.Time)),
			NormMaxDB:  ratio(float64(db.Stats.MaxLoad), float64(ps.Stats.MaxLoad)),
			NormAvgDB:  ratio(db.Stats.AvgLoad, ps.Stats.AvgLoad),
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %10.3f %10.3f %10.3f\n", q.Name, row.NormTimeDB, row.NormMaxDB, row.NormAvgDB)
	}
	return rows, nil
}

// Figure12Result holds the DB scaling ratios between the low and high rank
// counts, averaged per query and per graph (the paper's Figure 12).
type Figure12Result struct {
	PerQuery map[string]float64 // modeled speedup: maxload(low)/maxload(high)
	PerGraph map[string]float64
}

// Figure12 measures DB's speedup from the low to the high rank count on
// every combination, using the load model (max per-worker load bounds the
// BSP step time). Ideal speedup is Workers/WorkersLow.
func Figure12(w io.Writer, cfg Config) (Figure12Result, error) {
	cfg = cfg.withDefaults()
	res := Figure12Result{PerQuery: map[string]float64{}, PerGraph: map[string]float64{}}
	gs, qs := cfg.graphs(), cfg.queries()
	for _, g := range gs {
		for _, q := range qs {
			lo, err := cfg.runOnce(g, q, core.DB, cfg.WorkersLow, nil)
			if err != nil {
				return res, err
			}
			hi, err := cfg.runOnce(g, q, core.DB, cfg.Workers, nil)
			if err != nil {
				return res, err
			}
			sp := ratio(float64(lo.Stats.MaxLoad), float64(hi.Stats.MaxLoad))
			res.PerQuery[q.Name] += sp
			res.PerGraph[g.Name] += sp
		}
	}
	for k := range res.PerQuery {
		res.PerQuery[k] /= float64(len(gs))
	}
	for k := range res.PerGraph {
		res.PerGraph[k] /= float64(len(qs))
	}
	header(w, fmt.Sprintf("Figure 12: avg modeled DB speedup, %d → %d ranks (ideal %.1fx)",
		cfg.WorkersLow, cfg.Workers, float64(cfg.Workers)/float64(cfg.WorkersLow)))
	for _, q := range qs {
		fmt.Fprintf(w, "query %-10s %6.2fx\n", q.Name, res.PerQuery[q.Name])
	}
	for _, g := range gs {
		fmt.Fprintf(w, "graph %-10s %6.2fx\n", g.Name, res.PerGraph[g.Name])
	}
	return res, nil
}

// ScalingPoint is one (ranks, query) measurement in Figure 13.
type ScalingPoint struct {
	Workers int
	Query   string
	Time    time.Duration
	MaxLoad int64
	Speedup float64 // modeled, relative to the smallest rank count
}

// Figure13Strong reproduces the strong-scaling study on the enron stand-in:
// rank counts double from WorkersLow up to Workers, speedup measured by the
// load model against the smallest count.
func Figure13Strong(w io.Writer, cfg Config) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	g, _ := gen.StandinByName("enron", cfg.Scale, cfg.Seed)
	var ranks []int
	for r := cfg.WorkersLow; r <= cfg.Workers; r *= 2 {
		ranks = append(ranks, r)
	}
	header(w, fmt.Sprintf("Figure 13 (strong): DB on %s, ranks %v", g.Name, ranks))
	fmt.Fprintf(w, "%-10s", "Query")
	for _, r := range ranks {
		fmt.Fprintf(w, " %8dr", r)
	}
	fmt.Fprintln(w)
	var pts []ScalingPoint
	for _, q := range cfg.queries() {
		base := int64(0)
		fmt.Fprintf(w, "%-10s", q.Name)
		for _, r := range ranks {
			run, err := cfg.runOnce(g, q, core.DB, r, nil)
			if err != nil {
				return pts, err
			}
			if base == 0 {
				base = run.Stats.MaxLoad
			}
			sp := ratio(float64(base), float64(run.Stats.MaxLoad))
			pts = append(pts, ScalingPoint{Workers: r, Query: q.Name, Time: run.Time, MaxLoad: run.Stats.MaxLoad, Speedup: sp})
			fmt.Fprintf(w, " %8.2fx", sp)
		}
		fmt.Fprintln(w)
	}
	return pts, nil
}

// Figure13Weak reproduces the weak-scaling study: R-MAT graphs with ~1K
// vertices per rank (Graph500 parameters, edge factor 16), rank count
// doubling; the per-rank load should stay roughly flat.
func Figure13Weak(w io.Writer, cfg Config) ([]ScalingPoint, error) {
	cfg = cfg.withDefaults()
	var ranks []int
	for r := cfg.WorkersLow; r <= cfg.Workers; r *= 2 {
		ranks = append(ranks, r)
	}
	header(w, fmt.Sprintf("Figure 13 (weak): DB on R-MAT, %d vertices/rank, edge factor %d, ranks %v",
		cfg.WeakPerRank, cfg.WeakEdgeFactor, ranks))
	fmt.Fprintf(w, "%-10s", "Query")
	for _, r := range ranks {
		fmt.Fprintf(w, " %10dr", r)
	}
	fmt.Fprintln(w)
	var pts []ScalingPoint
	for _, q := range cfg.queries() {
		fmt.Fprintf(w, "%-10s", q.Name)
		for i, r := range ranks {
			scale := 1
			for 1<<scale < cfg.WeakPerRank*r {
				scale++
			}
			g := gen.RMAT(fmt.Sprintf("rmat%d", r), scale, cfg.WeakEdgeFactor, gen.Graph500, rand.New(rand.NewSource(cfg.Seed+int64(i))))
			run, err := cfg.runOnce(g, q, core.DB, r, nil)
			if err != nil {
				return pts, err
			}
			pts = append(pts, ScalingPoint{Workers: r, Query: q.Name, Time: run.Time, MaxLoad: run.Stats.MaxLoad})
			fmt.Fprintf(w, " %10d", run.Stats.MaxLoad)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(cells are max per-rank load; flat rows = ideal weak scaling)")
	return pts, nil
}
