package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/coloring"
	"repro/internal/core"
)

// This file regenerates Figure 15: the precision of color coding. For each
// graph-query combination we run independent colorings and compute the
// coefficient of variation of the colorful counts (stddev/mean — the §8.6
// "CV ≤ 0.1 means ≈10% accuracy" reading); the summary reports the
// fraction of combinations with CV ≤ 0.1 after 3 trials and after the full
// trial budget.

// Figure15Cell is one combination's precision measurement.
type Figure15Cell struct {
	Graph, Query string
	Trials       int
	CV3          float64 // CV after the first 3 trials
	CVFull       float64 // CV after all trials
	Estimate     float64 // scaled match-count estimate
	// TrialsToTarget is the trial count at which the adaptive
	// (Config.RelErr, Config.Confidence) stopping rule fires, walked over
	// the same counts; 0 when no target is configured. Capped at Trials —
	// a cell reporting the cap may simply not have met the target.
	TrialsToTarget int
}

// Figure15Result summarizes the precision study.
type Figure15Result struct {
	Cells        []Figure15Cell
	FracGood3    float64 // CV ≤ 0.1 with 3 trials
	FracGoodFull float64 // CV ≤ 0.1 with all trials
}

// Figure15 measures the coefficient of variation of the colorful count
// across cfg.Trials random colorings for every combination.
func Figure15(w io.Writer, cfg Config) (Figure15Result, error) {
	cfg = cfg.withDefaults()
	var res Figure15Result
	header(w, fmt.Sprintf("Figure 15: color-coding precision, %d trials per combo", cfg.Trials))
	adaptive := cfg.RelErr > 0
	if adaptive {
		fmt.Fprintf(w, "%-12s %-10s %10s %10s %14s %10s\n", "Graph", "Query", "CV@3", "CV@full", "estimate",
			fmt.Sprintf("T@±%.0f%%", 100*cfg.RelErr))
	} else {
		fmt.Fprintf(w, "%-12s %-10s %10s %10s %14s\n", "Graph", "Query", "CV@3", "CV@full", "estimate")
	}
	for _, g := range cfg.graphs() {
		for _, q := range cfg.queries() {
			est, err := coloring.Run(g, q, coloring.Options{
				Trials: cfg.Trials,
				Seed:   cfg.comboSeed(g.Name, q.Name),
				Core:   core.Options{Algorithm: core.DB, Backend: cfg.Backend, Workers: cfg.Workers},
			})
			if err != nil {
				return res, err
			}
			cell := Figure15Cell{
				Graph: g.Name, Query: q.Name, Trials: cfg.Trials,
				CV3:      cvOfPrefix(est.Counts, 3),
				CVFull:   est.CV,
				Estimate: est.Matches,
			}
			if adaptive {
				rule := coloring.Adaptive{
					Precision: coloring.Precision{RelErr: cfg.RelErr, Confidence: cfg.Confidence},
					MaxTrials: cfg.Trials,
				}
				cell.TrialsToTarget, _ = rule.StopAt(est.Counts)
			}
			res.Cells = append(res.Cells, cell)
			if adaptive {
				fmt.Fprintf(w, "%-12s %-10s %10.3f %10.3f %14.1f %10d\n",
					cell.Graph, cell.Query, cell.CV3, cell.CVFull, cell.Estimate, cell.TrialsToTarget)
				continue
			}
			fmt.Fprintf(w, "%-12s %-10s %10.3f %10.3f %14.1f\n",
				cell.Graph, cell.Query, cell.CV3, cell.CVFull, cell.Estimate)
		}
	}
	var good3, goodFull int
	for _, c := range res.Cells {
		if c.CV3 <= 0.1 {
			good3++
		}
		if c.CVFull <= 0.1 {
			goodFull++
		}
	}
	if n := len(res.Cells); n > 0 {
		res.FracGood3 = float64(good3) / float64(n)
		res.FracGoodFull = float64(goodFull) / float64(n)
	}
	fmt.Fprintf(w, "summary: CV ≤ 0.1 on %.0f%% of combos at 3 trials, %.0f%% at %d trials\n",
		100*res.FracGood3, 100*res.FracGoodFull, cfg.Trials)
	return res, nil
}

// cvOfPrefix computes stddev/mean over the first n counts.
func cvOfPrefix(counts []uint64, n int) float64 {
	if n > len(counts) {
		n = len(counts)
	}
	if n < 2 {
		return 0
	}
	var sum float64
	for _, c := range counts[:n] {
		sum += float64(c)
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, c := range counts[:n] {
		d := float64(c) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(n-1)) / mean
}
