// Package exp regenerates every table and figure of the paper's evaluation
// (§8) plus the §9 theory study, at a configurable scale. It is shared by
// the sgbench CLI and the repository's benchmarks. Each experiment prints a
// table shaped like the paper's and returns structured results so tests can
// assert the qualitative claims (who wins, by roughly what factor, where
// the crossovers fall).
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

// Config scales the experiments. The zero value is usable: defaults target
// a small host (the paper used up to 512 Blue Gene/Q ranks; we default to
// graphs at 1/256 of the originals and 8 simulated ranks).
type Config struct {
	Scale      int      // stand-in size divisor; default 512
	Backend    string   // execution backend; default "sim" (metrics-faithful for the figures)
	Workers    int      // "high" simulated rank count; default 8
	WorkersLow int      // "low" simulated rank count; default 2
	Seed       int64    // base RNG seed
	Trials     int      // Figure 15 colorings per combo; default 10
	Graphs     []string // stand-in filter; nil = all ten
	Queries    []string // query filter; nil = the Figure 8 catalog

	// Precision target for the Figure 15 study: when RelErr > 0 the
	// precision table adds a trials-to-target column — the trial count at
	// which the adaptive (RelErr, Confidence) stopping rule would have
	// fired, bounded by Trials. Confidence ≤ 0 means 0.95.
	RelErr     float64
	Confidence float64

	// Weak-scaling workload (Figure 13). The paper uses 1024 vertices per
	// rank with R-MAT edge factor 16 on Blue Gene/Q; the laptop-scale
	// defaults are 256 and 8.
	WeakPerRank    int
	WeakEdgeFactor int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 512
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.WorkersLow <= 0 {
		c.WorkersLow = 2
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if c.WeakPerRank <= 0 {
		c.WeakPerRank = 256
	}
	if c.WeakEdgeFactor <= 0 {
		c.WeakEdgeFactor = 8
	}
	return c
}

// graphs builds the selected Table 1 stand-ins.
func (c Config) graphs() []*graph.Graph {
	specs := gen.StandinSpecs()
	want := map[string]bool{}
	for _, n := range c.Graphs {
		want[n] = true
	}
	var out []*graph.Graph
	for _, s := range specs {
		if len(want) == 0 || want[s.Name] {
			out = append(out, s.Build(c.Scale, c.Seed))
		}
	}
	return out
}

// queries returns the selected catalog queries.
func (c Config) queries() []*query.Graph {
	if len(c.Queries) == 0 {
		return query.Catalog()
	}
	var out []*query.Graph
	for _, n := range c.Queries {
		out = append(out, query.MustByName(n))
	}
	return out
}

// comboSeed derives a per-(graph,query) seed so PS and DB always count
// under the identical coloring.
func (c Config) comboSeed(g, q string) int64 {
	h := c.Seed
	for _, r := range g + "/" + q {
		h = h*1099511628211 + int64(r)
	}
	return h
}

// Run is one measured solver execution.
type Run struct {
	Graph, Query string
	Alg          core.Algorithm
	Workers      int
	Count        uint64
	Time         time.Duration
	Stats        core.Stats
}

// runOnce counts q in g under the combo's coloring with the given solver
// configuration (plan nil = §6 heuristic).
func (c Config) runOnce(g *graph.Graph, q *query.Graph, alg core.Algorithm, workers int, plan *decomp.Tree) (Run, error) {
	rng := rand.New(rand.NewSource(c.comboSeed(g.Name, q.Name)))
	colors := coloring.Random(g.N(), q.K, rng)
	start := time.Now()
	count, stats, err := core.CountColorful(g, q, colors, core.Options{
		Algorithm: alg,
		Backend:   c.Backend,
		Workers:   workers,
		Plan:      plan,
	})
	if err != nil {
		return Run{}, fmt.Errorf("exp: %s/%s %v: %w", g.Name, q.Name, alg, err)
	}
	return Run{
		Graph: g.Name, Query: q.Name, Alg: alg, Workers: workers,
		Count: count, Time: time.Since(start), Stats: stats,
	}, nil
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
