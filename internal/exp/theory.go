package exp

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/powerlaw"
)

// This file regenerates the §9 theory study: on Chung-Lu graphs with
// truncated power-law expected degrees, the number of high-starting paths
// X(q) (the DB cost driver) must be polynomially smaller than the
// highest-id paths Y(q) (the PS cost driver), with growth exponents
// matching Lemma 9.8. It also verifies the §10 balancedness claim.

// TheoryPoint is one (alpha, q, n) measurement.
type TheoryPoint struct {
	Alpha float64
	Q     int
	N     int
	X, Y  uint64
}

// TheoryResult is the full sweep plus fitted growth exponents.
type TheoryResult struct {
	Points []TheoryPoint
	// Slopes maps (alpha, q) to the fitted log-log slope of X and Y and
	// the Lemma 9.8 predictions.
	Slopes []TheorySlope
	// Lambda maps n to λ(1,1) of the sampled degree sequence (§10).
	Lambda map[int]float64
}

// TheorySlope compares measured growth exponents to Lemma 9.8.
type TheorySlope struct {
	Alpha            float64
	Q                int
	SlopeX, SlopeY   float64
	TheoryX, TheoryY float64
	RatioAtLargestN  float64
}

// Theory sweeps graph sizes for each power-law exponent, counts X(q) and
// Y(q) exactly, fits growth exponents, and checks balancedness.
func Theory(w io.Writer, cfg Config) (TheoryResult, error) {
	cfg = cfg.withDefaults()
	alphas := []float64{1.2, 1.5, 1.8}
	qs := []int{3, 4}
	ns := []int{4000, 8000, 16000, 32000}
	res := TheoryResult{Lambda: map[int]float64{}}
	header(w, "§9 theory: X(q) vs Y(q) on truncated power-law Chung-Lu graphs")
	fmt.Fprintf(w, "%5s %2s %7s %14s %14s %8s\n", "alpha", "q", "n", "Y(q)", "X(q)", "Y/X")
	for _, alpha := range alphas {
		for _, q := range qs {
			xs := make([]uint64, len(ns))
			ys := make([]uint64, len(ns))
			for i, n := range ns {
				g := gen.PowerLawGraph("pl", n, alpha, rand.New(rand.NewSource(cfg.Seed+int64(i))))
				xs[i] = powerlaw.XQ(g, q, cfg.Workers)
				ys[i] = powerlaw.YQ(g, q, cfg.Workers)
				fmt.Fprintf(w, "%5.1f %2d %7d %14d %14d %8.2f\n",
					alpha, q, n, ys[i], xs[i], ratio(float64(ys[i]), float64(xs[i])))
				res.Points = append(res.Points, TheoryPoint{Alpha: alpha, Q: q, N: n, X: xs[i], Y: ys[i]})
				if q == qs[0] {
					res.Lambda[n] = powerlaw.Balancedness(g, 1, 1)
				}
			}
			sl := TheorySlope{
				Alpha:           alpha,
				Q:               q,
				SlopeX:          powerlaw.FitSlope(ns, xs),
				SlopeY:          powerlaw.FitSlope(ns, ys),
				TheoryX:         powerlaw.TheoryX(alpha, q),
				TheoryY:         powerlaw.TheoryY(alpha, q),
				RatioAtLargestN: ratio(float64(ys[len(ns)-1]), float64(xs[len(ns)-1])),
			}
			res.Slopes = append(res.Slopes, sl)
		}
	}
	fmt.Fprintf(w, "\n%5s %2s %9s %9s %9s %9s\n", "alpha", "q", "slopeY", "thY", "slopeX", "thX")
	for _, s := range res.Slopes {
		fmt.Fprintf(w, "%5.1f %2d %9.2f %9.2f %9.2f %9.2f\n",
			s.Alpha, s.Q, s.SlopeY, s.TheoryY, s.SlopeX, s.TheoryX)
	}
	fmt.Fprintf(w, "\n§10 balancedness λ(1,1) by n for α=1.2..1.8 samples\n")
	fmt.Fprintf(w, "(λ(1,1) = Σd²/(Σd)² shrinks ≈ n^(−α/2); Claim 10.1's uniform bound is n^(α/2−1)):\n")
	for _, n := range ns {
		fmt.Fprintf(w, "  n=%-7d λ=%.5f\n", n, res.Lambda[n])
	}
	return res, nil
}
