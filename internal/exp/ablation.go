package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
)

// Ablation separates the two ideas inside the DB algorithm, reproducing
// the §5.1 discussion: PS (uneven splits, no ordering), PSEven (balanced
// splits, no ordering — the "modified implementation" the paper tried and
// found insufficient), and DB (balanced splits + degree ordering). The
// paper's observation to reproduce: PSEven does not differ significantly
// from PS, so the degree ordering — not the split balance — is what fixes
// wasteful computation and load imbalance.

// AblationRow holds one query's load profile under the three solvers.
type AblationRow struct {
	Query                      string
	LoadPS, LoadPSEven, LoadDB int64 // total projection operations
	MaxPS, MaxPSEven, MaxDB    int64 // max per-rank load
}

// Ablation runs the three solvers on a skewed stand-in (the first entry of
// cfg.Graphs, default epinions — degree ordering only matters when hubs
// exist) for every query.
func Ablation(w io.Writer, cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	name := "epinions"
	if len(cfg.Graphs) > 0 {
		name = cfg.Graphs[0]
	}
	g, ok := gen.StandinByName(name, cfg.Scale, cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("exp: stand-in %q missing", name)
	}
	header(w, fmt.Sprintf("Ablation (§5.1): PS vs even-split PS vs DB on %s (%d ranks)", g.Name, cfg.Workers))
	fmt.Fprintf(w, "%-10s %12s %12s %12s %10s %10s\n",
		"Query", "load(PS)", "load(PSE)", "load(DB)", "PSE/PS", "DB/PS")
	var rows []AblationRow
	for _, q := range cfg.queries() {
		var runs [3]Run
		for i, alg := range []core.Algorithm{core.PS, core.PSEven, core.DB} {
			r, err := cfg.runOnce(g, q, alg, cfg.Workers, nil)
			if err != nil {
				return rows, err
			}
			runs[i] = r
		}
		if runs[0].Count != runs[1].Count || runs[0].Count != runs[2].Count {
			return rows, fmt.Errorf("exp: ablation counts disagree on %s", q.Name)
		}
		row := AblationRow{
			Query:      q.Name,
			LoadPS:     runs[0].Stats.TotalLoad,
			LoadPSEven: runs[1].Stats.TotalLoad,
			LoadDB:     runs[2].Stats.TotalLoad,
			MaxPS:      runs[0].Stats.MaxLoad,
			MaxPSEven:  runs[1].Stats.MaxLoad,
			MaxDB:      runs[2].Stats.MaxLoad,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %12d %12d %12d %10.2f %10.2f\n",
			q.Name, row.LoadPS, row.LoadPSEven, row.LoadDB,
			ratio(float64(row.LoadPSEven), float64(row.LoadPS)),
			ratio(float64(row.LoadDB), float64(row.LoadPS)))
	}
	fmt.Fprintln(w, "(paper §5.1: even splitting alone \"does not differ significantly\" from PS;")
	fmt.Fprintln(w, " the degree ordering provides the pruning)")
	return rows, nil
}
