package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

// TreeVsCycle reproduces the §8.2 observation that query substructure, not
// size, drives cost: "a 12-vertex complete binary tree query requires 2
// seconds on average, in contrast to the 10-vertex brain3 query which
// requires nearly 2 minutes". Tree queries decompose into leaf-edge blocks
// only (linear-time, the FASCIA case); brain3 contains an 8-cycle.

// TreeVsCycleRow is one query's average cost across the selected graphs.
type TreeVsCycleRow struct {
	Query   string
	K       int
	Cycles  bool
	AvgTime time.Duration
	AvgLoad int64
}

// TreeVsCycle compares the 12-node complete binary tree against the
// catalog's hardest cyclic queries on every selected graph.
func TreeVsCycle(w io.Writer, cfg Config) ([]TreeVsCycleRow, error) {
	cfg = cfg.withDefaults()
	gs := cfg.graphs()
	queries := []*query.Graph{
		query.BinaryTree(12),
		query.PathGraph(10),
		query.MustByName("brain3"),
		query.MustByName("brain2"),
	}
	header(w, fmt.Sprintf("§8.2: tree queries vs cyclic queries (%d ranks, avg over %d graphs)", cfg.Workers, len(gs)))
	fmt.Fprintf(w, "%-10s %3s %7s %12s %14s\n", "Query", "k", "cyclic", "avg time", "avg load")
	var rows []TreeVsCycleRow
	for _, q := range queries {
		row := TreeVsCycleRow{Query: q.Name, K: q.K, Cycles: !q.IsTree()}
		for _, g := range gs {
			r, err := cfg.runOnce(g, q, core.DB, cfg.Workers, nil)
			if err != nil {
				return rows, err
			}
			row.AvgTime += r.Time
			row.AvgLoad += r.Stats.TotalLoad
		}
		row.AvgTime /= time.Duration(len(gs))
		row.AvgLoad /= int64(len(gs))
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10s %3d %7v %12v %14d\n",
			row.Query, row.K, row.Cycles, row.AvgTime.Round(time.Millisecond), row.AvgLoad)
	}
	fmt.Fprintln(w, "(the paper: the 12-node tree is ~60x cheaper than the 10-node brain3)")
	return rows, nil
}
