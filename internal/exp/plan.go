package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/decomp"
)

// This file regenerates Figure 14: the quality of the §6 plan-selection
// heuristic against the optimal decomposition tree found by exhaustive
// enumeration. Cost is measured with the deterministic load model (total
// projection operations), so "optimal" is exact rather than noise-bound.

// Figure14Cell is one graph-query combination's heuristic-vs-optimal gap.
type Figure14Cell struct {
	Graph, Query string
	Plans        int
	HeurLoad     int64
	OptLoad      int64
	ErrorPct     float64
}

// Figure14Result summarizes the plan-quality study.
type Figure14Result struct {
	Cells       []Figure14Cell
	OptimalFrac float64 // fraction of combos where the heuristic was optimal
	MaxErrorPct float64
}

// Figure14 runs DB with every decomposition tree of every query on every
// graph, compares the heuristic plan's cost to the best plan's, and prints
// the per-combo error percentages.
func Figure14(w io.Writer, cfg Config) (Figure14Result, error) {
	cfg = cfg.withDefaults()
	var res Figure14Result
	header(w, fmt.Sprintf("Figure 14: plan heuristic error vs optimal plan (%d ranks)", cfg.Workers))
	fmt.Fprintf(w, "%-12s %-10s %6s %12s %12s %8s\n", "Graph", "Query", "plans", "heur load", "opt load", "err%")
	for _, q := range cfg.queries() {
		trees, err := decomp.Enumerate(q)
		if err != nil {
			return res, err
		}
		heur, err := core.PickPlan(q)
		if err != nil {
			return res, err
		}
		for _, g := range cfg.graphs() {
			var heurLoad, optLoad int64 = -1, -1
			for _, tr := range trees {
				run, err := cfg.runOnce(g, q, core.DB, cfg.Workers, tr)
				if err != nil {
					return res, err
				}
				if optLoad < 0 || run.Stats.TotalLoad < optLoad {
					optLoad = run.Stats.TotalLoad
				}
				if tr.Encode() == heur.Encode() {
					heurLoad = run.Stats.TotalLoad
				}
			}
			if heurLoad < 0 {
				return res, fmt.Errorf("exp: heuristic plan not among enumerated trees for %s", q.Name)
			}
			cell := Figure14Cell{
				Graph: g.Name, Query: q.Name, Plans: len(trees),
				HeurLoad: heurLoad, OptLoad: optLoad,
				ErrorPct: 100 * ratio(float64(heurLoad-optLoad), float64(optLoad)),
			}
			res.Cells = append(res.Cells, cell)
			fmt.Fprintf(w, "%-12s %-10s %6d %12d %12d %8.1f\n",
				cell.Graph, cell.Query, cell.Plans, cell.HeurLoad, cell.OptLoad, cell.ErrorPct)
		}
	}
	optimal := 0
	for _, c := range res.Cells {
		if c.ErrorPct <= 1e-9 {
			optimal++
		}
		if c.ErrorPct > res.MaxErrorPct {
			res.MaxErrorPct = c.ErrorPct
		}
	}
	if len(res.Cells) > 0 {
		res.OptimalFrac = float64(optimal) / float64(len(res.Cells))
	}
	fmt.Fprintf(w, "summary: heuristic optimal on %.0f%% of combos; max error %.1f%%\n",
		100*res.OptimalFrac, res.MaxErrorPct)
	return res, nil
}
