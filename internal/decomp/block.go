// Package decomp builds decomposition trees for treewidth-2 queries
// (paper §4.1): the query is reduced by repeatedly contracting blocks —
// leaf edges and contractible cycles — each contraction adding a tree node
// whose children are the blocks previously recorded as annotations on the
// contracted nodes/edges. The package enumerates all decomposition trees of
// a query and implements the plan-selection heuristic of §6.
package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
)

// BlockKind distinguishes the three node types of a decomposition tree.
type BlockKind int

const (
	// LeafEdge is an edge (a,b) whose endpoint b had degree 1 at
	// contraction time; a is its boundary node.
	LeafEdge BlockKind = iota
	// CycleBlock is a contractible cycle: induced, with ≤ 2 boundary nodes.
	CycleBlock
	// SingletonRoot is the residual single node left when contraction
	// terminates; its annotation (if any) is its only child.
	SingletonRoot
)

func (k BlockKind) String() string {
	switch k {
	case LeafEdge:
		return "leaf"
	case CycleBlock:
		return "cycle"
	case SingletonRoot:
		return "singleton"
	}
	return "?"
}

// Block is one node of a decomposition tree. It records the query nodes of
// the block, the boundary nodes (shared with the rest of the query), and
// which child block annotates each node and edge.
//
// For CycleBlock, Nodes lists the cycle in cyclic order and EdgeAnn[i]
// annotates the edge (Nodes[i], Nodes[(i+1) mod L]); nil means the edge is
// an original query edge (the paper's implicit "graph edge" block B_G).
// For LeafEdge, Nodes is [a, b] with a the boundary node and EdgeAnn[0]
// the annotation of edge (a,b). For SingletonRoot, Nodes is [a].
type Block struct {
	ID       int
	Kind     BlockKind
	Nodes    []int
	Boundary []int // 0, 1 or 2 query nodes, ascending
	NodeAnn  []*Block
	EdgeAnn  []*Block
	Children []*Block
}

// Len returns the number of nodes in the block itself (cycle length, 2 for
// a leaf edge, 1 for a singleton).
func (b *Block) Len() int { return len(b.Nodes) }

// SubqueryNodes returns the node set of the subquery SQ(B) represented by
// the block: the block's own nodes plus all descendants' (§4.2).
func (b *Block) SubqueryNodes() []int {
	set := map[int]bool{}
	var walk func(x *Block)
	walk = func(x *Block) {
		for _, n := range x.Nodes {
			set[n] = true
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(b)
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// encode returns a canonical recursive string encoding of the block, used
// for deduplicating decomposition trees.
func (b *Block) encode() string {
	var sb strings.Builder
	b.encodeTo(&sb)
	return sb.String()
}

func (b *Block) encodeTo(sb *strings.Builder) {
	switch b.Kind {
	case LeafEdge:
		sb.WriteString("L[")
	case CycleBlock:
		sb.WriteString("C[")
	case SingletonRoot:
		sb.WriteString("S[")
	}
	for i, n := range b.Nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "%d", n)
		if b.NodeAnn[i] != nil {
			sb.WriteByte('@')
			b.NodeAnn[i].encodeTo(sb)
		}
	}
	sb.WriteByte(';')
	for i, e := range b.EdgeAnn {
		if e != nil {
			fmt.Fprintf(sb, "%d", i)
			sb.WriteByte('@')
			e.encodeTo(sb)
		}
	}
	sb.WriteString(";b")
	for _, n := range b.Boundary {
		fmt.Fprintf(sb, ",%d", n)
	}
	sb.WriteByte(']')
}

// String renders the block for diagnostics: kind, nodes, boundary.
func (b *Block) String() string {
	return fmt.Sprintf("%s%v bnd%v", b.Kind, b.Nodes, b.Boundary)
}

// Tree is a complete decomposition tree for a query.
type Tree struct {
	Query  *query.Graph
	Root   *Block
	Blocks []*Block // postorder: children precede parents; Root last
}

// Score is the plan-quality vector, compared lexicographically (smaller is
// better). The paper's §6 factors are, in decreasing importance, (i) the
// longest cycle block, (ii) total boundary nodes, (iii) total annotations.
// We lead with a quantitative refinement that the paper's own cost model
// implies: the DB solver performs one split per cycle position, and each
// split walks the cycle joining its annotated children — and a child's
// table mass grows with the size of the subquery it represents. A cycle
// block therefore costs ≈ L·(L + Σ (child subquery size − 1) + boundary
// nodes). The worst
// block dominates (its tables are the largest), then the total, then the
// paper's original tie-breakers.
type Score struct {
	MaxCycleWork   int // max over cycle blocks of Len·(Len + weighted anns)
	TotalCycleWork int // Σ over cycle blocks of the same
	MaxBlockAnns   int // max annotations on any single block (join fan-in)
	LongestCycle   int // paper factor (i)
	BoundarySum    int // paper factor (ii)
	Annotations    int // paper factor (iii)
}

// Less orders scores lexicographically.
func (s Score) Less(t Score) bool {
	if s.MaxCycleWork != t.MaxCycleWork {
		return s.MaxCycleWork < t.MaxCycleWork
	}
	if s.TotalCycleWork != t.TotalCycleWork {
		return s.TotalCycleWork < t.TotalCycleWork
	}
	if s.MaxBlockAnns != t.MaxBlockAnns {
		return s.MaxBlockAnns < t.MaxBlockAnns
	}
	if s.LongestCycle != t.LongestCycle {
		return s.LongestCycle < t.LongestCycle
	}
	if s.BoundarySum != t.BoundarySum {
		return s.BoundarySum < t.BoundarySum
	}
	return s.Annotations < t.Annotations
}

// Score computes the plan-quality vector of the tree.
func (t *Tree) Score() Score {
	var s Score
	for _, b := range t.Blocks {
		anns, weighted := 0, 0
		for _, a := range b.NodeAnn {
			if a != nil {
				anns++
				weighted += len(a.SubqueryNodes()) - 1
			}
		}
		for _, a := range b.EdgeAnn {
			if a != nil {
				anns++
				weighted += len(a.SubqueryNodes()) - 1
			}
		}
		if b.Kind == CycleBlock {
			// Two-boundary cycles materialize pair-keyed tables; a root
			// cycle only sums. Charge each boundary node as two extra
			// join position.
			work := b.Len() * (b.Len() + weighted + len(b.Boundary))
			s.TotalCycleWork += work
			if work > s.MaxCycleWork {
				s.MaxCycleWork = work
			}
			if b.Len() > s.LongestCycle {
				s.LongestCycle = b.Len()
			}
		}
		if anns > s.MaxBlockAnns {
			s.MaxBlockAnns = anns
		}
		s.BoundarySum += len(b.Boundary)
		s.Annotations += anns
	}
	return s
}

// Encode returns the canonical encoding of the whole tree.
func (t *Tree) Encode() string { return t.Root.encode() }

// String renders the tree with one block per line, children indented.
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(b *Block, depth int)
	walk = func(b *Block, depth int) {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("  ", depth), b)
		for _, c := range b.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

// deepClone copies the block tree, preserving the aliasing between
// Children and the non-nil NodeAnn/EdgeAnn entries.
func (b *Block) deepClone() *Block {
	seen := map[*Block]*Block{}
	var cp func(x *Block) *Block
	cp = func(x *Block) *Block {
		if x == nil {
			return nil
		}
		if d, ok := seen[x]; ok {
			return d
		}
		d := &Block{
			Kind:     x.Kind,
			Nodes:    append([]int(nil), x.Nodes...),
			Boundary: append([]int(nil), x.Boundary...),
			NodeAnn:  make([]*Block, len(x.NodeAnn)),
			EdgeAnn:  make([]*Block, len(x.EdgeAnn)),
		}
		seen[x] = d
		for i, a := range x.NodeAnn {
			d.NodeAnn[i] = cp(a)
		}
		for i, a := range x.EdgeAnn {
			d.EdgeAnn[i] = cp(a)
		}
		for _, c := range x.Children {
			d.Children = append(d.Children, cp(c))
		}
		return d
	}
	return cp(b)
}

// assignIDs numbers blocks in postorder and fills t.Blocks.
func (t *Tree) assignIDs() {
	t.Blocks = t.Blocks[:0]
	var walk func(b *Block)
	walk = func(b *Block) {
		for _, c := range b.Children {
			walk(c)
		}
		b.ID = len(t.Blocks)
		t.Blocks = append(t.Blocks, b)
	}
	walk(t.Root)
}
