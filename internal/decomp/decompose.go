package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
)

// Decompose returns the decomposition tree chosen by the §6 heuristic:
// enumerate every tree, score each by (longest cycle block, boundary nodes,
// annotations), and pick the lexicographic minimum (ties broken by
// canonical encoding for determinism). Errors if the query is not a
// connected treewidth-≤2 graph.
func Decompose(q *query.Graph) (*Tree, error) {
	trees, err := Enumerate(q)
	if err != nil {
		return nil, err
	}
	best := trees[0]
	bestScore := best.Score()
	for _, t := range trees[1:] {
		s := t.Score()
		if s.Less(bestScore) || (!bestScore.Less(s) && t.Encode() < best.Encode()) {
			best, bestScore = t, s
		}
	}
	return best, nil
}

// Enumerate returns every distinct decomposition tree of the query, sorted
// by canonical encoding. Distinct contraction orders that produce the same
// tree are deduplicated, and intermediate states are memoized (contraction
// of independent blocks commutes, so the state space is small even though
// the order space is factorial).
func Enumerate(q *query.Graph) ([]*Tree, error) {
	if q.K == 0 {
		return nil, fmt.Errorf("decomp: empty query")
	}
	if q.K > 16 {
		return nil, fmt.Errorf("decomp: query %s has %d nodes; max 16", q.Name, q.K)
	}
	if !q.Connected() {
		return nil, fmt.Errorf("decomp: query %s is not connected", q.Name)
	}
	if !q.TreewidthAtMost2() {
		return nil, fmt.Errorf("decomp: query %s has treewidth > 2", q.Name)
	}
	w := newWork(q)
	memo := map[string]map[string]*Block{}
	roots := enumerate(w, memo)
	trees := make([]*Tree, 0, len(roots))
	for _, root := range roots {
		// Enumeration memoizes and shares subtree blocks across trees;
		// deep-copy so each tree owns its blocks (IDs are per-tree).
		t := &Tree{Query: q, Root: root.deepClone()}
		t.assignIDs()
		trees = append(trees, t)
	}
	sort.Slice(trees, func(i, j int) bool { return trees[i].Encode() < trees[j].Encode() })
	if len(trees) == 0 {
		// Unreachable for connected treewidth-2 queries (Lemma 4.1).
		return nil, fmt.Errorf("decomp: no decomposition found for %s", q.Name)
	}
	return trees, nil
}

// work is the mutable query being contracted: alive nodes, edges with
// optional block annotations, and node annotations.
type work struct {
	alive   map[int]bool
	adj     map[int]map[int]*Block // adj[a][b] = edge annotation (nil = original edge)
	nodeAnn map[int]*Block
}

func newWork(q *query.Graph) *work {
	w := &work{
		alive:   make(map[int]bool, q.K),
		adj:     make(map[int]map[int]*Block, q.K),
		nodeAnn: make(map[int]*Block),
	}
	for v := 0; v < q.K; v++ {
		w.alive[v] = true
		w.adj[v] = make(map[int]*Block)
	}
	for _, e := range q.Edges() {
		w.adj[e[0]][e[1]] = nil
		w.adj[e[1]][e[0]] = nil
	}
	return w
}

func (w *work) clone() *work {
	c := &work{
		alive:   make(map[int]bool, len(w.alive)),
		adj:     make(map[int]map[int]*Block, len(w.adj)),
		nodeAnn: make(map[int]*Block, len(w.nodeAnn)),
	}
	for v := range w.alive {
		c.alive[v] = true
	}
	for v, m := range w.adj {
		cm := make(map[int]*Block, len(m))
		for u, ann := range m {
			cm[u] = ann
		}
		c.adj[v] = cm
	}
	for v, a := range w.nodeAnn {
		c.nodeAnn[v] = a
	}
	return c
}

// key serializes the state canonically; blocks are serialized recursively,
// so the key fully determines all future contraction outcomes.
func (w *work) key() string {
	var sb strings.Builder
	nodes := w.sortedAlive()
	for _, v := range nodes {
		fmt.Fprintf(&sb, "n%d", v)
		if a := w.nodeAnn[v]; a != nil {
			sb.WriteByte('@')
			a.encodeTo(&sb)
		}
		sb.WriteByte('|')
	}
	for _, v := range nodes {
		us := make([]int, 0, len(w.adj[v]))
		for u := range w.adj[v] {
			if u > v {
				us = append(us, u)
			}
		}
		sort.Ints(us)
		for _, u := range us {
			fmt.Fprintf(&sb, "e%d-%d", v, u)
			if a := w.adj[v][u]; a != nil {
				sb.WriteByte('@')
				a.encodeTo(&sb)
			}
			sb.WriteByte('|')
		}
	}
	return sb.String()
}

func (w *work) sortedAlive() []int {
	nodes := make([]int, 0, len(w.alive))
	for v := range w.alive {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	return nodes
}

func (w *work) degree(v int) int { return len(w.adj[v]) }

// candidate is a contractible structure found in the working query.
type candidate struct {
	cycle []int  // canonical cyclic order, or nil
	leaf  [2]int // [boundary a, leaf b] when cycle == nil
}

// candidates lists every block currently available for contraction.
func (w *work) candidates() []candidate {
	var out []candidate
	for _, b := range w.sortedAlive() {
		if w.degree(b) == 1 {
			var a int
			for u := range w.adj[b] {
				a = u
			}
			out = append(out, candidate{leaf: [2]int{a, b}})
		}
	}
	for _, cyc := range w.contractibleCycles() {
		out = append(out, candidate{cycle: cyc})
	}
	return out
}

// contractibleCycles enumerates simple cycles that are induced and have at
// most two boundary nodes, in canonical order (smallest node first,
// direction with the smaller second node).
func (w *work) contractibleCycles() [][]int {
	var out [][]int
	var path []int
	onPath := map[int]bool{}
	var dfs func(s, cur int)
	dfs = func(s, cur int) {
		for nb := range w.adj[cur] {
			if nb == s && len(path) >= 3 && path[1] < path[len(path)-1] {
				if w.contractibleCycle(path) {
					out = append(out, append([]int(nil), path...))
				}
				continue
			}
			if nb <= s || onPath[nb] || len(path) >= len(w.alive) {
				continue
			}
			path = append(path, nb)
			onPath[nb] = true
			dfs(s, nb)
			onPath[nb] = false
			path = path[:len(path)-1]
		}
	}
	for _, s := range w.sortedAlive() {
		path = append(path[:0], s)
		onPath = map[int]bool{s: true}
		dfs(s, s)
	}
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// contractibleCycle checks the §4.1 conditions on a candidate simple cycle:
// induced (no chords) and at most two boundary nodes.
func (w *work) contractibleCycle(cyc []int) bool {
	in := map[int]bool{}
	for _, v := range cyc {
		in[v] = true
	}
	l := len(cyc)
	boundary := 0
	for i, v := range cyc {
		prev, next := cyc[(i+l-1)%l], cyc[(i+1)%l]
		outside := false
		for u := range w.adj[v] {
			if !in[u] {
				outside = true
			} else if u != prev && u != next {
				return false // chord: not induced
			}
		}
		if outside {
			boundary++
			if boundary > 2 {
				return false
			}
		}
	}
	return true
}

// boundaryOf returns the cycle's boundary nodes in ascending order.
func (w *work) boundaryOf(cyc []int) []int {
	in := map[int]bool{}
	for _, v := range cyc {
		in[v] = true
	}
	var bnd []int
	for _, v := range cyc {
		for u := range w.adj[v] {
			if !in[u] {
				bnd = append(bnd, v)
				break
			}
		}
	}
	sort.Ints(bnd)
	return bnd
}

// contract applies one §4.1 contraction to a fresh copy of w and returns
// the copy plus the created block. The block inherits all annotations found
// on its nodes and edges (they become its children).
func (w *work) contract(c candidate) (*work, *Block) {
	nw := w.clone()
	var b *Block
	if c.cycle != nil {
		cyc := canonicalCycle(c.cycle)
		l := len(cyc)
		b = &Block{Kind: CycleBlock, Nodes: cyc, Boundary: w.boundaryOf(cyc)}
		b.NodeAnn = make([]*Block, l)
		b.EdgeAnn = make([]*Block, l)
		for i, v := range cyc {
			b.NodeAnn[i] = w.nodeAnn[v]
			b.EdgeAnn[i] = w.adj[v][cyc[(i+1)%l]]
		}
		// Remove cycle edges, then non-boundary nodes.
		for i, v := range cyc {
			u := cyc[(i+1)%l]
			delete(nw.adj[v], u)
			delete(nw.adj[u], v)
		}
		keep := map[int]bool{}
		for _, x := range b.Boundary {
			keep[x] = true
		}
		for _, v := range cyc {
			if keep[v] {
				delete(nw.nodeAnn, v) // erased; captured in NodeAnn above
				continue
			}
			for u := range nw.adj[v] {
				delete(nw.adj[u], v)
			}
			delete(nw.adj, v)
			delete(nw.alive, v)
			delete(nw.nodeAnn, v)
		}
		switch len(b.Boundary) {
		case 1:
			nw.nodeAnn[b.Boundary[0]] = b
		case 2:
			x, y := b.Boundary[0], b.Boundary[1]
			nw.adj[x][y] = b
			nw.adj[y][x] = b
		}
	} else {
		a, leaf := c.leaf[0], c.leaf[1]
		b = &Block{
			Kind:     LeafEdge,
			Nodes:    []int{a, leaf},
			Boundary: []int{a},
			NodeAnn:  []*Block{w.nodeAnn[a], w.nodeAnn[leaf]},
			EdgeAnn:  []*Block{w.adj[a][leaf]},
		}
		delete(nw.adj[a], leaf)
		delete(nw.adj, leaf)
		delete(nw.alive, leaf)
		delete(nw.nodeAnn, leaf)
		delete(nw.nodeAnn, a)
		nw.nodeAnn[a] = b
	}
	for _, ann := range b.NodeAnn {
		if ann != nil {
			b.Children = append(b.Children, ann)
		}
	}
	for _, ann := range b.EdgeAnn {
		if ann != nil {
			b.Children = append(b.Children, ann)
		}
	}
	return nw, b
}

// canonicalCycle rotates/reflects the cycle so the minimum node comes
// first and its smaller neighbor second.
func canonicalCycle(cyc []int) []int {
	l := len(cyc)
	mi := 0
	for i, v := range cyc {
		if v < cyc[mi] {
			mi = i
		}
	}
	out := make([]int, l)
	if cyc[(mi+1)%l] < cyc[(mi+l-1)%l] {
		for i := 0; i < l; i++ {
			out[i] = cyc[(mi+i)%l]
		}
	} else {
		for i := 0; i < l; i++ {
			out[i] = cyc[(mi+l-i)%l]
		}
	}
	return out
}

// enumerate explores all contraction choices from state w, returning all
// distinct final root blocks keyed by canonical encoding. memo caches
// results by state key.
func enumerate(w *work, memo map[string]map[string]*Block) map[string]*Block {
	// Terminal: a single node remains — singleton root.
	if len(w.alive) == 1 {
		v := w.sortedAlive()[0]
		b := &Block{Kind: SingletonRoot, Nodes: []int{v}, NodeAnn: []*Block{w.nodeAnn[v]}}
		if w.nodeAnn[v] != nil {
			b.Children = []*Block{w.nodeAnn[v]}
		}
		return map[string]*Block{b.encode(): b}
	}
	k := w.key()
	if got, ok := memo[k]; ok {
		return got
	}
	out := map[string]*Block{}
	for _, c := range w.candidates() {
		if c.cycle != nil && len(w.boundaryOf(c.cycle)) == 0 {
			// The cycle covers the whole remaining query: it is a root.
			_, b := w.contract(c)
			out[b.encode()] = b
			continue
		}
		nw, _ := w.contract(c)
		for enc, root := range enumerate(nw, memo) {
			out[enc] = root
		}
	}
	memo[k] = out
	return out
}
