package decomp

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func mustEnumerate(t *testing.T, q *query.Graph) []*Tree {
	t.Helper()
	trees, err := Enumerate(q)
	if err != nil {
		t.Fatalf("Enumerate(%s): %v", q.Name, err)
	}
	return trees
}

// checkTree validates the structural invariants every decomposition tree
// must satisfy (§4.1–4.2).
func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	q := tr.Query
	// Every original query edge is consumed by exactly one block position
	// whose EdgeAnn is nil.
	consumed := map[[2]int]int{}
	for _, b := range tr.Blocks {
		switch b.Kind {
		case CycleBlock:
			l := b.Len()
			if l < 3 {
				t.Fatalf("%s: cycle of length %d", q.Name, l)
			}
			for i := 0; i < l; i++ {
				if b.EdgeAnn[i] == nil {
					consumed[normEdge(b.Nodes[i], b.Nodes[(i+1)%l])]++
				}
			}
		case LeafEdge:
			if b.Len() != 2 {
				t.Fatalf("%s: leaf block with %d nodes", q.Name, b.Len())
			}
			if b.EdgeAnn[0] == nil {
				consumed[normEdge(b.Nodes[0], b.Nodes[1])]++
			}
		case SingletonRoot:
			if b != tr.Root {
				t.Fatalf("%s: singleton below root", q.Name)
			}
		}
		if len(b.Boundary) > 2 {
			t.Fatalf("%s: block %v has %d boundary nodes", q.Name, b, len(b.Boundary))
		}
		if b != tr.Root && b.Kind != LeafEdge && len(b.Boundary) == 0 {
			t.Fatalf("%s: non-root cycle %v without boundary", q.Name, b)
		}
	}
	for _, e := range q.Edges() {
		if consumed[normEdge(e[0], e[1])] != 1 {
			t.Fatalf("%s: edge %v consumed %d times\n%s", q.Name, e, consumed[normEdge(e[0], e[1])], tr)
		}
	}
	for key, c := range consumed {
		if !q.HasEdge(key[0], key[1]) || c != 1 {
			t.Fatalf("%s: phantom edge %v", q.Name, key)
		}
	}
	// Root subquery covers all query nodes.
	if got := tr.Root.SubqueryNodes(); len(got) != q.K {
		t.Fatalf("%s: root subquery has %d nodes, want %d\n%s", q.Name, len(got), q.K, tr)
	}
	// Postorder: children before parents.
	pos := map[*Block]int{}
	for i, b := range tr.Blocks {
		pos[b] = i
	}
	for _, b := range tr.Blocks {
		for _, c := range b.Children {
			if pos[c] >= pos[b] {
				t.Fatalf("%s: child after parent in postorder", q.Name)
			}
		}
	}
	if tr.Blocks[len(tr.Blocks)-1] != tr.Root {
		t.Fatalf("%s: root not last in postorder", q.Name)
	}
}

func normEdge(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func TestCatalogDecompositions(t *testing.T) {
	for _, q := range append(query.Catalog(), query.MustByName("satellite")) {
		trees := mustEnumerate(t, q)
		if len(trees) == 0 {
			t.Fatalf("%s: no trees", q.Name)
		}
		for _, tr := range trees {
			checkTree(t, tr)
		}
		best, err := Decompose(q)
		if err != nil {
			t.Fatalf("Decompose(%s): %v", q.Name, err)
		}
		checkTree(t, best)
		bs := best.Score()
		for _, tr := range trees {
			if tr.Score().Less(bs) {
				t.Fatalf("%s: heuristic did not pick the minimum score", q.Name)
			}
		}
	}
}

// brain1 is a 6-cycle and a 4-cycle sharing an edge; per §6 it admits
// exactly two decomposition trees.
func TestBrain1HasTwoTrees(t *testing.T) {
	trees := mustEnumerate(t, query.MustByName("brain1"))
	if len(trees) != 2 {
		for _, tr := range trees {
			t.Log(tr)
		}
		t.Fatalf("brain1: %d trees, want 2", len(trees))
	}
	// Both trees contain the same 6-cycle and 4-cycle; the structural score
	// ranks them by which cycle keeps the annotated child. Either ranking is
	// defensible (the measured optimum is graph-dependent, §6); require a
	// deterministic pick.
	a, err := Decompose(query.MustByName("brain1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(query.MustByName("brain1"))
	if err != nil || a.Encode() != b.Encode() {
		t.Fatalf("pick not deterministic: %v", err)
	}
}

// Trees (treewidth 1) decompose purely into leaf-edge blocks.
func TestTreeQueriesOnlyLeafBlocks(t *testing.T) {
	for _, q := range []*query.Graph{query.PathGraph(5), query.Star(6), query.BinaryTree(12)} {
		tr, err := Decompose(q)
		if err != nil {
			t.Fatal(err)
		}
		checkTree(t, tr)
		leaves := 0
		for _, b := range tr.Blocks {
			switch b.Kind {
			case CycleBlock:
				t.Fatalf("%s: cycle block in a tree query", q.Name)
			case LeafEdge:
				leaves++
			}
		}
		if leaves != q.K-1 {
			t.Fatalf("%s: %d leaf blocks, want %d", q.Name, leaves, q.K-1)
		}
	}
}

// Pure cycles decompose into a single root cycle block with no boundary.
func TestPureCycle(t *testing.T) {
	for _, l := range []int{3, 4, 5, 8} {
		trees := mustEnumerate(t, query.Cycle(l))
		if len(trees) != 1 {
			t.Fatalf("cycle%d: %d trees, want 1", l, len(trees))
		}
		root := trees[0].Root
		if root.Kind != CycleBlock || root.Len() != l || len(root.Boundary) != 0 {
			t.Fatalf("cycle%d: bad root %v", l, root)
		}
	}
}

// The satellite query must admit the exact tree narrated in §4.1 Figure 2:
// B1 = 5-cycle(a..e) bnd {a,c}; B2 = leaf (f,h); B3 = 4-cycle(a,f,g,c)
// parent of B1, B2; B4 = triangle(i,j,k) bnd {i}; root = triangle(i,f,g)
// parent of B3, B4.
func TestSatelliteDecomposition(t *testing.T) {
	q := query.MustByName("satellite")
	trees := mustEnumerate(t, q)
	found := false
	for _, tr := range trees {
		root := tr.Root
		if root.Kind != CycleBlock || root.Len() != 3 {
			continue
		}
		if !sameNodes(root.Nodes, []int{5, 6, 8}) { // f, g, i
			continue
		}
		// Root children: the 4-cycle {a,f,g,c} and the triangle {i,j,k}.
		var has4cycle, hasIJK bool
		for _, c := range root.Children {
			if c.Kind == CycleBlock && sameNodes(c.Nodes, []int{0, 5, 6, 2}) {
				// Its children must be the 5-cycle and the leaf (f,h).
				var has5, hasLeaf bool
				for _, cc := range c.Children {
					if cc.Kind == CycleBlock && cc.Len() == 5 {
						has5 = true
					}
					if cc.Kind == LeafEdge && sameNodes(cc.Nodes, []int{5, 7}) {
						hasLeaf = true
					}
				}
				has4cycle = has5 && hasLeaf
			}
			if c.Kind == CycleBlock && sameNodes(c.Nodes, []int{8, 9, 10}) {
				hasIJK = true
			}
		}
		if has4cycle && hasIJK {
			found = true
			break
		}
	}
	if !found {
		var encs []string
		for _, tr := range trees {
			encs = append(encs, tr.Encode())
		}
		t.Fatalf("satellite: Figure 2 tree not among %d trees:\n%s",
			len(trees), strings.Join(encs, "\n"))
	}
}

func sameNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestRejectsBadQueries(t *testing.T) {
	k4 := query.FromEdges("k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if _, err := Enumerate(k4); err == nil {
		t.Fatal("K4 (treewidth 3) accepted")
	}
	disc := query.New("disc", 3)
	disc.AddEdge(0, 1)
	if _, err := Enumerate(disc); err == nil {
		t.Fatal("disconnected query accepted")
	}
}

func TestSingleNodeAndEdge(t *testing.T) {
	one, err := Decompose(query.PathGraph(1))
	if err != nil || one.Root.Kind != SingletonRoot || len(one.Root.Children) != 0 {
		t.Fatalf("single node: %v %v", one, err)
	}
	edge, err := Decompose(query.PathGraph(2))
	if err != nil || edge.Root.Kind != SingletonRoot || len(edge.Root.Children) != 1 {
		t.Fatalf("single edge: %v %v", edge, err)
	}
	if edge.Root.Children[0].Kind != LeafEdge {
		t.Fatal("single edge: child is not a leaf block")
	}
}

// Enumeration must be deterministic and deduplicate by encoding.
func TestEnumerateDeterministic(t *testing.T) {
	q := query.MustByName("ecoli2")
	a := mustEnumerate(t, q)
	b := mustEnumerate(t, q)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		ea, eb := a[i].Encode(), b[i].Encode()
		if ea != eb {
			t.Fatalf("order differs at %d", i)
		}
		if seen[ea] {
			t.Fatalf("duplicate tree %s", ea)
		}
		seen[ea] = true
	}
}

// Property: random treewidth-2 queries (cycles glued at vertices/edges with
// pendant paths) always decompose, and every enumerated tree satisfies the
// structural invariants.
func TestQuickRandomQueries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomTW2(rng)
		trees, err := Enumerate(q)
		if err != nil || len(trees) == 0 {
			return false
		}
		// Reuse the full checker on the first few trees.
		for _, tr := range trees[:min(3, len(trees))] {
			if !structurallySound(tr) {
				return false
			}
		}
		best, err := Decompose(q)
		return err == nil && structurallySound(best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// structurallySound is the assertion core of checkTree as a predicate.
func structurallySound(tr *Tree) bool {
	q := tr.Query
	consumed := map[[2]int]int{}
	for _, b := range tr.Blocks {
		if len(b.Boundary) > 2 {
			return false
		}
		switch b.Kind {
		case CycleBlock:
			l := b.Len()
			if l < 3 {
				return false
			}
			for i := 0; i < l; i++ {
				if b.EdgeAnn[i] == nil {
					consumed[normEdge(b.Nodes[i], b.Nodes[(i+1)%l])]++
				}
			}
		case LeafEdge:
			if b.EdgeAnn[0] == nil {
				consumed[normEdge(b.Nodes[0], b.Nodes[1])]++
			}
		}
	}
	for _, e := range q.Edges() {
		if consumed[normEdge(e[0], e[1])] != 1 {
			return false
		}
	}
	return len(tr.Root.SubqueryNodes()) == q.K
}

// randomTW2 builds a random connected treewidth-2 query from glued cycles
// and pendant paths (mirrors the generator used in the solver tests).
func randomTW2(rng *rand.Rand) *query.Graph {
	next := 0
	var edges [][2]int
	newCycle := func(attach int) int {
		l := 3 + rng.Intn(4)
		first := attach
		if first < 0 {
			first = next
			next++
		}
		prev := first
		for i := 1; i < l; i++ {
			edges = append(edges, [2]int{prev, next})
			prev = next
			next++
		}
		edges = append(edges, [2]int{prev, first})
		return first
	}
	base := newCycle(-1)
	for rng.Intn(2) == 0 && next < 8 {
		if rng.Intn(2) == 0 {
			newCycle(base)
		} else {
			prev := base
			for i := 0; i < 1+rng.Intn(2); i++ {
				edges = append(edges, [2]int{prev, next})
				prev = next
				next++
			}
		}
	}
	q := query.New("rand", next)
	for _, e := range edges {
		q.AddEdge(e[0], e[1])
	}
	if !q.TreewidthAtMost2() || !q.Connected() {
		return query.Cycle(5)
	}
	return q
}

// Theta and diamond shapes exercise cycles sharing two vertices.
func TestThetaAndDiamond(t *testing.T) {
	theta := query.FromEdges("theta", 5, [][2]int{
		{0, 2}, {2, 1}, {0, 3}, {3, 1}, {0, 4}, {4, 1},
	})
	diamond := query.FromEdges("diamond", 4, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
	})
	for _, q := range []*query.Graph{theta, diamond} {
		trees := mustEnumerate(t, q)
		for _, tr := range trees {
			checkTree(t, tr)
		}
	}
}
