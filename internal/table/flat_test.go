package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sig"
)

func randKey(rng *rand.Rand, space int) Key {
	k := Binary(uint32(rng.Intn(space)), uint32(rng.Intn(space)), sig.Sig(rng.Intn(64)))
	if rng.Intn(4) == 0 {
		k = Unary(uint32(rng.Intn(space)), k.S)
	}
	if rng.Intn(3) == 0 {
		k.X = uint32(rng.Intn(space))
	}
	if rng.Intn(5) == 0 {
		k.Y = uint32(rng.Intn(space))
	}
	return k
}

// Flat must agree with the hash table T on every operation, for arbitrary
// accumulation sequences (including heavy duplication, which exercises
// both the pending-region fold and the merge with the sorted prefix).
func TestFlatMatchesHashTable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		h := New(8)
		var f Flat // zero value must be ready
		n := rng.Intn(3 * pendingMin)
		space := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			k := randKey(rng, space)
			c := uint64(1 + rng.Intn(9))
			h.Add(k, c)
			f.Add(k, c)
			if rng.Intn(64) == 0 {
				// Interleave reads so compaction happens mid-build too.
				if got, want := f.Get(k), h.Get(k); got != want {
					t.Fatalf("trial %d: mid-build Get(%+v) = %d, want %d", trial, k, got, want)
				}
			}
		}
		if f.Len() != h.Len() || f.Total() != h.Total() {
			t.Fatalf("trial %d: flat Len=%d Total=%d, hash Len=%d Total=%d",
				trial, f.Len(), f.Total(), h.Len(), h.Total())
		}
		h.Iter(func(k Key, c uint64) bool {
			if got := f.Get(k); got != c {
				t.Fatalf("trial %d: Get(%+v) = %d, want %d", trial, k, got, c)
			}
			return true
		})
	}
}

// Iter and Ents must present entries in ascending (VU, XY, signature-rank)
// order with no duplicate keys.
func TestFlatIterSortedAndDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var f Flat
	for i := 0; i < 2000; i++ {
		f.Add(randKey(rng, 25), 1)
	}
	ents := f.Ents()
	if len(ents) != f.Len() {
		t.Fatalf("Ents len %d != Len %d", len(ents), f.Len())
	}
	for i := 1; i < len(ents); i++ {
		if cmpEnt(ents[i-1], ents[i]) >= 0 {
			t.Fatalf("entries %d and %d out of order: %+v, %+v", i-1, i, ents[i-1], ents[i])
		}
	}
	var prev *Ent
	f.Iter(func(k Key, c uint64) bool {
		e := entOf(k, c)
		if prev != nil && cmpEnt(*prev, e) >= 0 {
			t.Fatalf("Iter out of order at %+v", k)
		}
		prev = &e
		return true
	})
	stopped := 0
	f.Iter(func(Key, uint64) bool { stopped++; return stopped < 5 })
	if stopped != 5 {
		t.Fatalf("early stop visited %d entries", stopped)
	}
}

func TestFlatEntAccessors(t *testing.T) {
	k := Key{U: 3, V: 9, X: 17, Y: 140, S: sig.Of(4)}
	e := entOf(k, 7)
	if e.U() != 3 || e.V() != 9 || e.X() != 17 || e.Y() != 140 || e.S != k.S || e.C != 7 {
		t.Fatalf("accessors disagree: %+v from %+v", e, k)
	}
	if e.Key() != k {
		t.Fatalf("Key round-trip: %+v != %+v", e.Key(), k)
	}
	u := Unary(5, sig.Of(1))
	if ue := entOf(u, 1); ue.V() != None || ue.X() != None || ue.Y() != None {
		t.Fatalf("unary slots not None: %+v", ue)
	}
}

func TestFlatReset(t *testing.T) {
	f := NewFlat(10)
	f.Add(Unary(1, 1), 2)
	f.Add(Unary(2, 1), 3)
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Reset()
	if f.Len() != 0 || f.Total() != 0 || f.Get(Unary(1, 1)) != 0 {
		t.Fatal("Reset left entries behind")
	}
	f.Add(Unary(1, 1), 5)
	if f.Get(Unary(1, 1)) != 5 || f.Len() != 1 {
		t.Fatal("table unusable after Reset")
	}
}

// Property: Total never needs a compaction — duplicates in the pending
// region sum identically.
func TestQuickFlatTotal(t *testing.T) {
	f := func(counts []uint8) bool {
		var fl Flat
		var want uint64
		for i, c := range counts {
			fl.Add(Unary(uint32(i%7), sig.Sig(i%4)), uint64(c))
			want += uint64(c)
		}
		return fl.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The hot path must not allocate per entry: appends into pre-grown
// capacity, compaction reusing the scratch buffer, reads over the dense
// slice. This pins the flat layout's core promise; a regression here
// means the solver's inner loops started paying the allocator again.
func TestFlatZeroAllocsPerEntry(t *testing.T) {
	const n = 10000
	keys := make([]Key, n)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = randKey(rng, 50)
	}
	f := NewFlat(n + 1)
	// Warm the entry and scratch buffers to steady-state capacity, so the
	// measured runs exercise appends, compactions, and reads without a
	// single buffer growth — exactly the solver's per-superstep shape.
	f.Add(keys[0], 1)
	f.compact()
	for _, k := range keys {
		f.Add(k, 1)
	}
	f.compact()
	f.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		f.Add(keys[0], 1)
		f.compact()
		for _, k := range keys {
			f.Add(k, 1)
		}
		ents := f.Ents() // forces the final compaction
		var sum uint64
		for i := range ents {
			sum += ents[i].C
		}
		if sum == 0 || f.Get(keys[n/2]) == 0 {
			t.Fatal("missing entries")
		}
		f.Reset()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocated %.0f times for %d entries; want 0", allocs, n)
	}
}

// benchKeys builds a deterministic workload: nKeys distinct keys cycled
// nOps times, giving every layout the same mix of inserts and duplicate
// accumulations.
func benchKeys(nKeys int) []Key {
	rng := rand.New(rand.NewSource(77))
	keys := make([]Key, nKeys)
	for i := range keys {
		keys[i] = randKey(rng, nKeys)
	}
	return keys
}

func BenchmarkTableAdd(b *testing.B) {
	keys := benchKeys(1 << 14)
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := New(len(keys))
			for _, k := range keys {
				t.Add(k, 1)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := NewFlat(len(keys))
			for _, k := range keys {
				t.Add(k, 1)
			}
			t.compact()
		}
	})
}

func BenchmarkTableGet(b *testing.B) {
	keys := benchKeys(1 << 14)
	h := New(len(keys))
	f := NewFlat(len(keys))
	for _, k := range keys {
		h.Add(k, 1)
		f.Add(k, 1)
	}
	f.compact()
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		var sum uint64
		for i := 0; i < b.N; i++ {
			sum += h.Get(keys[i%len(keys)])
		}
		_ = sum
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		var sum uint64
		for i := 0; i < b.N; i++ {
			sum += f.Get(keys[i%len(keys)])
		}
		_ = sum
	})
}

func BenchmarkTableIter(b *testing.B) {
	keys := benchKeys(1 << 14)
	h := New(len(keys))
	f := NewFlat(len(keys))
	for _, k := range keys {
		h.Add(k, 1)
		f.Add(k, 1)
	}
	f.compact()
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum uint64
			h.Iter(func(_ Key, c uint64) bool { sum += c; return true })
			_ = sum
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum uint64
			ents := f.Ents()
			for j := range ents {
				sum += ents[j].C
			}
			_ = sum
		}
	})
}
