package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sig"
)

func TestAddGet(t *testing.T) {
	tab := New(4)
	k1 := Binary(1, 2, sig.Full(3))
	k2 := Binary(2, 1, sig.Full(3))
	tab.Add(k1, 5)
	tab.Add(k1, 7)
	tab.Add(k2, 1)
	if got := tab.Get(k1); got != 12 {
		t.Fatalf("Get(k1) = %d, want 12", got)
	}
	if got := tab.Get(k2); got != 1 {
		t.Fatalf("Get(k2) = %d, want 1", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Total() != 13 {
		t.Fatalf("Total = %d", tab.Total())
	}
	if got := tab.Get(Unary(1, sig.Full(3))); got != 0 {
		t.Fatalf("missing key = %d", got)
	}
}

func TestGrowth(t *testing.T) {
	tab := New(1)
	const n = 10000
	for i := 0; i < n; i++ {
		tab.Add(Binary(uint32(i), uint32(i*7), sig.Sig(i%64)), uint64(i))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := tab.Get(Binary(uint32(i), uint32(i*7), sig.Sig(i%64))); got != uint64(i) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
}

func TestIterAndReset(t *testing.T) {
	tab := New(8)
	want := map[Key]uint64{}
	for i := 0; i < 100; i++ {
		k := Unary(uint32(i), sig.Sig(i))
		tab.Add(k, uint64(i+1))
		want[k] = uint64(i + 1)
	}
	got := map[Key]uint64{}
	tab.Iter(func(k Key, c uint64) bool {
		got[k] = c
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("entry %v = %d, want %d", k, got[k], c)
		}
	}
	// Early stop.
	n := 0
	tab.Iter(func(Key, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	tab.Reset()
	if tab.Len() != 0 || tab.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
	tab.Add(Unary(1, 1), 2)
	if tab.Len() != 1 || tab.Get(Unary(1, 1)) != 2 {
		t.Fatal("table unusable after Reset")
	}
}

// Property: the table behaves exactly like a Go map under random
// accumulate workloads (including colliding keys).
func TestQuickMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New(2)
		ref := map[Key]uint64{}
		for op := 0; op < 2000; op++ {
			k := Key{
				U: uint32(rng.Intn(50)),
				V: uint32(rng.Intn(50)),
				X: None,
				Y: None,
				S: sig.Sig(rng.Intn(256)),
			}
			if rng.Intn(4) == 0 {
				k.X = uint32(rng.Intn(10))
			}
			c := uint64(rng.Intn(100))
			tab.Add(k, c)
			ref[k] += c
		}
		if tab.Len() != len(ref) {
			return false
		}
		for k, c := range ref {
			if tab.Get(k) != c {
				return false
			}
		}
		var total uint64
		for _, c := range ref {
			total += c
		}
		return tab.Total() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyConstructors(t *testing.T) {
	u := Unary(3, 9)
	if u.U != 3 || u.V != None || u.X != None || u.Y != None || u.S != 9 {
		t.Fatalf("Unary = %+v", u)
	}
	b := Binary(3, 4, 9)
	if b.U != 3 || b.V != 4 || b.X != None || b.S != 9 {
		t.Fatalf("Binary = %+v", b)
	}
}
