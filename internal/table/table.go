// Package table implements the projection tables of the paper's engine
// layer (§7): hash tables with open addressing mapping keys
// (vertex, vertex, [recorded vertices,] signature) → colorful-match count.
// Unary tables (single-boundary blocks) use keys with only U set; binary
// tables use U and V; DB path tables may additionally record one or two
// boundary-node mappings in X and Y (the §5.1 configurations).
package table

import "repro/internal/sig"

// None marks an unused vertex slot in a key.
const None = ^uint32(0)

// Key identifies one projection-table entry. Sig is the signature (set of
// colors used by the counted matches).
type Key struct {
	U, V, X, Y uint32
	S          sig.Sig
}

// Unary returns a key for a single-boundary entry (u, sig).
func Unary(u uint32, s sig.Sig) Key { return Key{U: u, V: None, X: None, Y: None, S: s} }

// Binary returns a key for a two-boundary entry (u, v, sig).
func Binary(u, v uint32, s sig.Sig) Key { return Key{U: u, V: v, X: None, Y: None, S: s} }

// hash mixes the key with a splitmix64-style finalizer. Open addressing
// needs strong diffusion: vertex ids and signatures are highly regular.
func (k Key) hash() uint64 {
	h := uint64(k.U)<<32 | uint64(k.V)
	h ^= (uint64(k.X)<<32 | uint64(k.Y)) * 0x9e3779b97f4a7c15
	h ^= uint64(k.S) << 17
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// T is an open-addressing hash table from Key to uint64 count with linear
// probing. The zero value is NOT ready; use New. Deletion is not supported
// (the solvers only accumulate and iterate). Not safe for concurrent
// mutation; the engine gives each worker its own shard.
type T struct {
	keys   []Key
	counts []uint64
	used   []bool
	n      int
}

// New returns a table pre-sized for at least capacity entries.
func New(capacity int) *T {
	size := 16
	for size < capacity*2 {
		size *= 2
	}
	return &T{
		keys:   make([]Key, size),
		counts: make([]uint64, size),
		used:   make([]bool, size),
	}
}

// Len returns the number of distinct keys stored.
func (t *T) Len() int { return t.n }

// Add accumulates c into the entry for k (inserting it if absent).
func (t *T) Add(k Key, c uint64) {
	if t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := k.hash() & mask
	for t.used[i] {
		if t.keys[i] == k {
			t.counts[i] += c
			return
		}
		i = (i + 1) & mask
	}
	t.used[i] = true
	t.keys[i] = k
	t.counts[i] = c
	t.n++
}

// Get returns the count stored for k (0 if absent).
func (t *T) Get(k Key) uint64 {
	mask := uint64(len(t.keys) - 1)
	i := k.hash() & mask
	for t.used[i] {
		if t.keys[i] == k {
			return t.counts[i]
		}
		i = (i + 1) & mask
	}
	return 0
}

func (t *T) grow() {
	old := *t
	t.keys = make([]Key, len(old.keys)*2)
	t.counts = make([]uint64, len(old.counts)*2)
	t.used = make([]bool, len(old.used)*2)
	t.n = 0
	for i, u := range old.used {
		if u {
			t.Add(old.keys[i], old.counts[i])
		}
	}
}

// Iter calls f for every entry; iteration stops if f returns false.
// The iteration order is unspecified. The table must not be mutated
// during iteration.
func (t *T) Iter(f func(Key, uint64) bool) {
	for i, u := range t.used {
		if u && !f(t.keys[i], t.counts[i]) {
			return
		}
	}
}

// Total returns the sum of all counts.
func (t *T) Total() uint64 {
	var total uint64
	for i, u := range t.used {
		if u {
			total += t.counts[i]
		}
	}
	return total
}

// Reset empties the table, keeping its capacity.
func (t *T) Reset() {
	clear(t.used)
	t.n = 0
}
