// Flat is the signature-major projection table used on the solver's hot
// path. Where T hashes each key independently (so entries for one vertex
// scatter across the backing array), Flat keeps entries in one dense slice
// sorted by (home vertex, other boundary, recorded vertices, signature
// rank): all entries sharing a vertex sit contiguously, and within a
// vertex group consecutive signature ranks (sig.Rank) are adjacent. Join
// loops then run as linear scans and merge-joins over plain slices —
// no hashing, no per-entry map or closure overhead, and inner accumulate
// loops the compiler can keep in registers.
//
// Writes are buffered appends: Add places entries in an unsorted pending
// region and the table re-establishes the sorted layout lazily (sort the
// pending region, fold duplicates, then a single two-way merge with the
// sorted prefix). The solver's tables are built by a burst of Adds during
// one superstep and then scanned read-only by the next join, so in the
// typical lifecycle each table is compacted exactly once.
package table

import (
	"slices"

	"repro/internal/sig"
)

// Ent is one flat-table entry: a Key packed into two uint64 comparison
// words plus the signature and count. VU holds V in the high half and U in
// the low half, so ordering by VU groups entries by their home vertex V
// (binary entries are homed at V's owner; unary entries carry V = None and
// therefore sort into a single group ordered by U). XY packs the recorded
// vertices X and Y the same way.
type Ent struct {
	VU uint64 // uint64(V)<<32 | uint64(U)
	XY uint64 // uint64(X)<<32 | uint64(Y)
	S  sig.Sig
	C  uint64
}

// entOf packs k and c into an Ent.
func entOf(k Key, c uint64) Ent {
	return Ent{
		VU: uint64(k.V)<<32 | uint64(k.U),
		XY: uint64(k.X)<<32 | uint64(k.Y),
		S:  k.S,
		C:  c,
	}
}

// U returns the key's U vertex.
func (e Ent) U() uint32 { return uint32(e.VU) }

// V returns the key's V vertex (None for unary entries).
func (e Ent) V() uint32 { return uint32(e.VU >> 32) }

// X returns the key's first recorded vertex (None if unused).
func (e Ent) X() uint32 { return uint32(e.XY >> 32) }

// Y returns the key's second recorded vertex (None if unused).
func (e Ent) Y() uint32 { return uint32(e.XY) }

// Key reconstructs the entry's Key.
func (e Ent) Key() Key {
	return Key{U: e.U(), V: e.V(), X: e.X(), Y: e.Y(), S: e.S}
}

// cmpEnt orders entries by (VU, XY, signature rank). Entries comparing
// equal have identical keys.
func cmpEnt(a, b Ent) int {
	switch {
	case a.VU < b.VU:
		return -1
	case a.VU > b.VU:
		return 1
	case a.XY < b.XY:
		return -1
	case a.XY > b.XY:
		return 1
	case a.S.Rank() < b.S.Rank():
		return -1
	case a.S.Rank() > b.S.Rank():
		return 1
	}
	return 0
}

// pendingMin is the smallest pending region worth compacting eagerly.
// Below it, appends stay cheap and compaction waits for a reader. Above
// it, compaction triggers once the pending region would outgrow the
// sorted prefix, which keeps total compaction work O(n log n) while
// bounding buffered memory to roughly the table size.
const pendingMin = 4096

// Flat is a projection table stored as a sorted dense slice of Ent (see
// the package comment on flat.go). The zero value is an empty table ready
// for use. Not safe for concurrent mutation; the engine gives each
// partition its own shard.
type Flat struct {
	ents    []Ent // ents[:nSorted] sorted & deduped; ents[nSorted:] pending
	nSorted int
	scratch []Ent // reusable merge buffer
}

// NewFlat returns a table pre-sized for at least capacity entries.
func NewFlat(capacity int) *Flat {
	return &Flat{ents: make([]Ent, 0, capacity)}
}

// Grow ensures capacity for n additional entries without reallocating.
func (t *Flat) Grow(n int) {
	t.ents = slices.Grow(t.ents, n)
}

// Add accumulates c into the entry for k (inserting it if absent). The
// entry lands in the pending region; duplicate keys are folded together
// at the next compaction.
func (t *Flat) Add(k Key, c uint64) {
	t.ents = append(t.ents, entOf(k, c))
	if p := len(t.ents) - t.nSorted; p >= pendingMin && p >= t.nSorted {
		t.compact()
	}
}

// keyByte extracts byte `level` of an entry's composite sort key, numbered
// from the least-significant end: levels 0–3 are the signature rank,
// 4–11 the packed XY word, 12–19 the packed VU word. Sorting stably by
// ascending level (LSD radix) therefore realizes exactly cmpEnt's
// (VU, XY, rank) order.
func keyByte(e *Ent, level uint) uint8 {
	switch {
	case level < 4:
		return uint8(e.S.Rank() >> (8 * level))
	case level < 12:
		return uint8(e.XY >> (8 * (level - 4)))
	default:
		return uint8(e.VU >> (8 * (level - 12)))
	}
}

// radixSort sorts ents by (VU, XY, signature rank) with an LSD byte radix,
// using buf (same length) as the ping-pong buffer, and returns the sorted
// slice (either ents or buf — whichever holds the final pass). Byte levels
// that are constant across the slice — most of them, in practice: vertex
// ids span the graph size, X/Y are usually None, signatures fit the color
// count — are skipped entirely, so a typical table sorts in 4–6 counting
// passes of pure sequential access, with no comparator calls.
func radixSort(ents, buf []Ent) []Ent {
	if len(ents) < 48 {
		// Too small for counting passes to pay off.
		slices.SortFunc(ents, cmpEnt)
		return ents
	}
	// One cheap scan finds which key bytes vary at all: XOR against the
	// first entry, OR the differences together. A constant byte needs no
	// radix pass.
	e0 := &ents[0]
	var dVU, dXY uint64
	var dS uint32
	for i := 1; i < len(ents); i++ {
		e := &ents[i]
		dVU |= e.VU ^ e0.VU
		dXY |= e.XY ^ e0.XY
		dS |= e.S.Rank() ^ e0.S.Rank()
	}
	src, dst := ents, buf
	var count [256]int32
	for level := uint(0); level < 20; level++ {
		var varies bool
		switch {
		case level < 4:
			varies = uint8(dS>>(8*level)) != 0
		case level < 12:
			varies = uint8(dXY>>(8*(level-4))) != 0
		default:
			varies = uint8(dVU>>(8*(level-12))) != 0
		}
		if !varies {
			continue
		}
		clear(count[:])
		for i := range src {
			count[keyByte(&src[i], level)]++
		}
		var pos int32
		for b := range count {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for i := range src {
			b := keyByte(&src[i], level)
			dst[count[b]] = src[i]
			count[b]++
		}
		src, dst = dst, src
	}
	return src
}

// compact restores the invariant ents == sorted(dedup(ents)): sort the
// pending region, fold its duplicates in place, then merge it with the
// sorted prefix (accumulating counts of equal keys) into scratch and swap.
func (t *Flat) compact() {
	if t.nSorted == len(t.ents) {
		return
	}
	if cap(t.scratch) < cap(t.ents) {
		t.scratch = make([]Ent, 0, cap(t.ents))
	}
	// The radix ping-pong buffer shares scratch's tail so that the merge
	// below can build its output in scratch's head: the merge write cursor
	// (≤ i+j) never catches up to pending entry j at offset nSorted+j.
	full := t.scratch[:cap(t.scratch)]
	pend := radixSort(t.ents[t.nSorted:], full[t.nSorted:len(t.ents)])
	// Fold runs of equal keys in the pending region.
	w := 0
	for r := 1; r < len(pend); r++ {
		if pend[r].VU == pend[w].VU && pend[r].XY == pend[w].XY && pend[r].S == pend[w].S {
			pend[w].C += pend[r].C
		} else {
			w++
			pend[w] = pend[r]
		}
	}
	if len(pend) > 0 {
		pend = pend[:w+1]
	}
	if t.nSorted == 0 {
		// pend may live in either buffer after the radix ping-pong; copy is
		// a no-op when it already sits at the head of ents.
		t.ents = append(t.ents[:0], pend...)
		t.nSorted = len(pend)
		return
	}
	// Two-way merge of the sorted prefix with the deduped pending run.
	a, b := t.ents[:t.nSorted], pend
	if cap(t.scratch) < len(a)+len(b) {
		t.scratch = make([]Ent, 0, len(a)+len(b))
	}
	out := t.scratch[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := cmpEnt(a[i], b[j]); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			e := a[i]
			e.C += b[j].C
			out = append(out, e)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	t.scratch = t.ents[:0]
	t.ents = out
	t.nSorted = len(out)
}

// Len returns the number of distinct keys stored.
func (t *Flat) Len() int {
	t.compact()
	return len(t.ents)
}

// Get returns the count stored for k (0 if absent).
func (t *Flat) Get(k Key) uint64 {
	t.compact()
	if i, ok := slices.BinarySearchFunc(t.ents, entOf(k, 0), cmpEnt); ok {
		return t.ents[i].C
	}
	return 0
}

// Ents returns the table's entries sorted by (VU, XY, signature rank),
// deduped. The slice aliases the table's storage: callers must treat it
// as read-only and must not Add to the table while holding it.
func (t *Flat) Ents() []Ent {
	t.compact()
	return t.ents
}

// Iter calls f for every entry in sorted (VU, XY, signature-rank) order;
// iteration stops if f returns false. The table must not be mutated
// during iteration.
func (t *Flat) Iter(f func(Key, uint64) bool) {
	t.compact()
	for _, e := range t.ents {
		if !f(e.Key(), e.C) {
			return
		}
	}
}

// Total returns the sum of all counts. Pending duplicates sum the same as
// folded ones, so no compaction is needed.
func (t *Flat) Total() uint64 {
	var total uint64
	for i := range t.ents {
		total += t.ents[i].C
	}
	return total
}

// Reset empties the table, keeping its capacity.
func (t *Flat) Reset() {
	t.ents = t.ents[:0]
	t.nSorted = 0
}
