// Package exact counts query occurrences by explicit backtracking search.
// It is the ground-truth oracle for testing the color-coding solvers: it
// counts matches (injective edge-preserving mappings, §2) and colorful
// matches under a fixed coloring. Exponential in query size; use only on
// small inputs.
package exact

import (
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/sig"
)

// Matches returns n(G,Q): the number of injective mappings π from the query
// nodes to data vertices such that every query edge maps to a data edge.
func Matches(g *graph.Graph, q *query.Graph) uint64 {
	return run(g, q, nil)
}

// ColorfulMatches returns the number of matches whose mapped vertices all
// have distinct colors under the given coloring (one color per data vertex).
func ColorfulMatches(g *graph.Graph, q *query.Graph, colors []uint8) uint64 {
	return run(g, q, colors)
}

// ColorfulMatchesPerVertex returns, for every data vertex v, the number of
// colorful matches that map query node anchor to v. Summing over v gives
// ColorfulMatches.
func ColorfulMatchesPerVertex(g *graph.Graph, q *query.Graph, colors []uint8, anchor int) []uint64 {
	per := make([]uint64, g.N())
	// Reuse the anchored counter: for each vertex, count matches with the
	// anchor pinned. Queries and oracle graphs are small, so the simple
	// "restrict the first placement" approach is fine: we reorder the
	// search so the anchor is placed first.
	if q.K == 0 {
		return per
	}
	order, anchorIdx := anchoredOrder(q, anchor)
	for v := 0; v < g.N(); v++ {
		e := &enumerator{
			g:      g,
			q:      q,
			colors: colors,
			order:  order,
			anchor: anchorIdx,
			pos:    make([]uint32, q.K),
			used:   make(map[uint32]bool, q.K),
		}
		e.place(0, uint32(v))
		per[v] = e.count
	}
	return per
}

// anchoredOrder is searchOrder but guaranteed to start at the given query
// node.
func anchoredOrder(q *query.Graph, anchor int) (order []int, anchorIdx []int) {
	placed := make([]bool, q.K)
	idx := make([]int, q.K)
	place := func(n, from int) {
		placed[n] = true
		idx[n] = len(order)
		order = append(order, n)
		if from < 0 {
			anchorIdx = append(anchorIdx, -1)
		} else {
			anchorIdx = append(anchorIdx, idx[from])
		}
	}
	place(anchor, -1)
	frontier := []int{anchor}
	for len(frontier) > 0 {
		a := frontier[0]
		frontier = frontier[1:]
		for _, b := range q.Neighbors(a) {
			if !placed[b] {
				place(b, a)
				frontier = append(frontier, b)
			}
		}
	}
	for n := 0; n < q.K; n++ { // disconnected queries: remaining roots
		if !placed[n] {
			place(n, -1)
			frontier = append(frontier, n)
			for len(frontier) > 0 {
				a := frontier[0]
				frontier = frontier[1:]
				for _, b := range q.Neighbors(a) {
					if !placed[b] {
						place(b, a)
						frontier = append(frontier, b)
					}
				}
			}
		}
	}
	return order, anchorIdx
}

// run performs the backtracking count. Query nodes are processed in a
// connectivity-first order so each placement after the first is constrained
// to the neighborhood of an already-placed node.
func run(g *graph.Graph, q *query.Graph, colors []uint8) uint64 {
	if q.K == 0 {
		return 1
	}
	order, anchor := searchOrder(q)
	e := &enumerator{
		g:      g,
		q:      q,
		colors: colors,
		order:  order,
		anchor: anchor,
		pos:    make([]uint32, q.K),
		used:   make(map[uint32]bool, q.K),
	}
	for v := 0; v < g.N(); v++ {
		e.place(0, uint32(v))
	}
	return e.count
}

type enumerator struct {
	g      *graph.Graph
	q      *query.Graph
	colors []uint8
	order  []int // query nodes in placement order
	anchor []int // anchor[i] = index j < i with order[j] adjacent to order[i]; -1 for roots
	pos    []uint32
	used   map[uint32]bool
	usedC  sig.Sig
	count  uint64
}

// place tries to map query node order[i] to data vertex v and recurses.
func (e *enumerator) place(i int, v uint32) {
	if e.used[v] {
		return
	}
	var c uint8
	if e.colors != nil {
		c = e.colors[v]
		if e.usedC.Has(c) {
			return
		}
	}
	a := e.order[i]
	// All already-placed neighbors of a must be adjacent to v.
	for _, b := range e.q.Neighbors(a) {
		if j := e.placedIndex(b, i); j >= 0 && !e.g.HasEdge(v, e.pos[j]) {
			return
		}
	}
	if i == e.q.K-1 {
		e.count++
		return
	}
	e.pos[i] = v
	e.used[v] = true
	if e.colors != nil {
		e.usedC = e.usedC.Add(c)
	}
	next := i + 1
	if e.anchor[next] >= 0 {
		// Extend from the anchor's mapped vertex: only its neighbors qualify.
		for _, w := range e.g.Neighbors(e.pos[e.anchor[next]]) {
			e.place(next, w)
		}
	} else {
		for w := 0; w < e.g.N(); w++ {
			e.place(next, uint32(w))
		}
	}
	e.used[v] = false
	if e.colors != nil {
		e.usedC = e.usedC.Without(sig.Of(c))
	}
}

// placedIndex returns the placement index of query node b if it was placed
// before step i, else -1.
func (e *enumerator) placedIndex(b, i int) int {
	for j := 0; j < i; j++ {
		if e.order[j] == b {
			return j
		}
	}
	return -1
}

// searchOrder returns a query-node order where each node after a component
// root has at least one earlier neighbor, plus the index of that neighbor.
func searchOrder(q *query.Graph) (order []int, anchor []int) {
	placed := make([]bool, q.K)
	idx := make([]int, q.K)
	for start := 0; start < q.K; start++ {
		if placed[start] {
			continue
		}
		placed[start] = true
		idx[start] = len(order)
		order = append(order, start)
		anchor = append(anchor, -1)
		frontier := []int{start}
		for len(frontier) > 0 {
			a := frontier[0]
			frontier = frontier[1:]
			for _, b := range q.Neighbors(a) {
				if !placed[b] {
					placed[b] = true
					idx[b] = len(order)
					order = append(order, b)
					anchor = append(anchor, idx[a])
					frontier = append(frontier, b)
				}
			}
		}
	}
	return order, anchor
}
