package exact

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

// K4 has 4·3·2 = 24 triangle matches (ordered), and C4 contains 8 path-3
// matches, etc. — verify against hand counts.
func TestHandCounts(t *testing.T) {
	k4 := graph.FromEdges("k4", 4, [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	c4 := graph.FromEdges("c4", 4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	cases := []struct {
		g    *graph.Graph
		q    *query.Graph
		want uint64
	}{
		{k4, query.Cycle(3), 24},     // 4 triangles × 6 automorphisms
		{k4, query.PathGraph(2), 12}, // 6 edges × 2 directions
		{k4, query.Cycle(4), 24},     // 3 four-cycles × 8 automorphisms
		{c4, query.Cycle(3), 0},
		{c4, query.Cycle(4), 8},     // 1 four-cycle × 8
		{c4, query.PathGraph(3), 8}, // 4 center choices × 2 orientations... = 8
		{c4, query.Star(3), 8},      // star3 = path3
		{k4, query.PathGraph(1), 4},
		{k4, query.Star(4), 24}, // claw in K4: 4 centers × 3! leaf orders
	}
	for _, c := range cases {
		if got := Matches(c.g, c.q); got != c.want {
			t.Errorf("%s in %s: got %d, want %d", c.q.Name, c.g.Name, got, c.want)
		}
	}
}

func TestColorfulSubsetOfMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyi("er", 30, 90, rng)
	for _, q := range []*query.Graph{query.Cycle(4), query.MustByName("glet1")} {
		all := Matches(g, q)
		colors := make([]uint8, g.N())
		for i := range colors {
			colors[i] = uint8(rng.Intn(q.K))
		}
		colorful := ColorfulMatches(g, q, colors)
		if colorful > all {
			t.Errorf("%s: colorful %d > all %d", q.Name, colorful, all)
		}
		// With a rainbow coloring where every vertex has a unique-enough
		// color spread this is hard to assert exactly; instead check the
		// degenerate monochrome coloring yields zero for k ≥ 2.
		mono := make([]uint8, g.N())
		if got := ColorfulMatches(g, q, mono); got != 0 {
			t.Errorf("%s: monochrome coloring gave %d colorful matches", q.Name, got)
		}
	}
}

// The expectation identity (§2): E over uniform colorings of the colorful
// count equals n(G,Q)·k!/k^k. Verify on a small graph by averaging.
func TestUnbiasedEstimatorIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.ErdosRenyi("er", 16, 40, rng)
	q := query.Cycle(4)
	k := q.K
	exactCount := Matches(g, q)
	if exactCount == 0 {
		t.Skip("degenerate sample")
	}
	var sum float64
	const trials = 3000
	colors := make([]uint8, g.N())
	for trial := 0; trial < trials; trial++ {
		for i := range colors {
			colors[i] = uint8(rng.Intn(k))
		}
		sum += float64(ColorfulMatches(g, q, colors))
	}
	mean := sum / trials
	// k!/k^k for k=4 is 24/256.
	want := float64(exactCount) * 24.0 / 256.0
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("estimator mean %.2f, want ≈%.2f", mean, want)
	}
}

// Matches must be invariant under query node relabeling (counting ordered
// matches of isomorphic queries).
func TestRelabelInvariance(t *testing.T) {
	g := gen.ErdosRenyi("er", 25, 80, rand.New(rand.NewSource(3)))
	q1 := query.FromEdges("p4a", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	q2 := query.FromEdges("p4b", 4, [][2]int{{2, 0}, {0, 3}, {3, 1}})
	if a, b := Matches(g, q1), Matches(g, q2); a != b {
		t.Fatalf("relabel changed count: %d vs %d", a, b)
	}
}

func TestDisconnectedQuery(t *testing.T) {
	// Two isolated query nodes in a graph with n vertices: n·(n-1) matches.
	g := gen.ErdosRenyi("er", 10, 15, rand.New(rand.NewSource(9)))
	q := query.New("two", 2)
	if got := Matches(g, q); got != 90 {
		t.Fatalf("got %d, want 90", got)
	}
}

// Per-vertex counts must sum to the total and match a hand-checkable case.
func TestColorfulMatchesPerVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.ErdosRenyi("er", 24, 70, rng)
	q := query.Cycle(4)
	colors := make([]uint8, g.N())
	for i := range colors {
		colors[i] = uint8(rng.Intn(q.K))
	}
	total := ColorfulMatches(g, q, colors)
	for anchor := 0; anchor < q.K; anchor++ {
		per := ColorfulMatchesPerVertex(g, q, colors, anchor)
		var sum uint64
		for _, c := range per {
			sum += c
		}
		if sum != total {
			t.Fatalf("anchor %d: sum %d != total %d", anchor, sum, total)
		}
	}
	// Hand case: rainbow triangle. Each vertex hosts the anchor in exactly
	// 2 of the 6 matches.
	tri := graph.FromEdges("c3", 3, [][2]uint32{{0, 1}, {1, 2}, {0, 2}})
	per := ColorfulMatchesPerVertex(tri, query.Cycle(3), []uint8{0, 1, 2}, 1)
	for v, c := range per {
		if c != 2 {
			t.Fatalf("vertex %d: %d, want 2", v, c)
		}
	}
}

// Anchored ordering must also handle disconnected queries: anchor first,
// remaining components enumerated afterwards.
func TestPerVertexDisconnectedQuery(t *testing.T) {
	g := gen.ErdosRenyi("er", 8, 14, rand.New(rand.NewSource(5)))
	q := query.New("pair", 3)
	q.AddEdge(0, 1) // node 2 isolated
	colors := []uint8{0, 1, 2, 0, 1, 2, 0, 1}
	total := ColorfulMatches(g, q, colors)
	per := ColorfulMatchesPerVertex(g, q, colors, 2)
	var sum uint64
	for _, c := range per {
		sum += c
	}
	if sum != total {
		t.Fatalf("sum %d != total %d", sum, total)
	}
}
