package obs

import (
	"context"
	"sync"
	"time"
)

// maxSpans caps the per-trace span timeline. A 500-trial job on a deep
// decomposition would otherwise record tens of thousands of spans; past
// the cap the timeline stops growing but the per-phase aggregates (count
// and total duration) stay exact, so the trace endpoint's phase summary
// is always trustworthy even when the span list is truncated.
const maxSpans = 512

// A Trace is the span timeline of one request or job. It is attached to
// a context with WithTrace and recovered anywhere below with FromContext;
// every method is safe on a nil receiver, so code paths without a trace
// pay one nil check and nothing else. All methods are concurrency-safe —
// parallel trial workers record into the same trace.
type Trace struct {
	id    string
	start time.Time
	sink  func(name string, seconds float64)

	mu      sync.Mutex
	spans   []Span
	dropped int
	phases  map[string]PhaseStats
}

// A Span is one timed phase occurrence, with Start relative to the
// trace's creation so a timeline renders without absolute clocks.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"-"`
	Dur   time.Duration `json:"-"`
}

// PhaseStats aggregates every occurrence of one phase name.
type PhaseStats struct {
	Count uint64        `json:"count"`
	Total time.Duration `json:"-"`
}

// NewTrace starts an empty trace identified by id (the request or job ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now(), phases: make(map[string]PhaseStats)}
}

// ID returns the trace's identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetSink installs a callback invoked (outside the trace lock) for every
// recorded span and observation, with the phase name and duration in
// seconds. The service uses it to feed per-phase and per-trial latency
// histograms live, so /metrics reflects a job before it finishes. Must be
// set before the trace is shared across goroutines.
func (t *Trace) SetSink(fn func(name string, seconds float64)) {
	if t != nil {
		t.sink = fn
	}
}

// Start opens a span and returns the closure that ends it:
//
//	defer tr.Start("pathJoin")()
//
// On a nil trace the returned closure is a no-op.
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Add(name, begin, time.Now()) }
}

// Add records one completed span with explicit endpoints.
func (t *Trace) Add(name string, begin, end time.Time) {
	if t == nil {
		return
	}
	d := end.Sub(begin)
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{Name: name, Start: begin.Sub(t.start), Dur: d})
	} else {
		t.dropped++
	}
	p := t.phases[name]
	p.Count++
	p.Total += d
	t.phases[name] = p
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(name, d.Seconds())
	}
}

// Observe reports a duration to the sink only — no span, no phase entry.
// Used for measurements that envelop other spans (a whole trial wraps
// every solver phase inside it): recording them as phases would make the
// per-phase totals double-count against the job's wall time, but the
// latency histograms still want them.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink(name, d.Seconds())
}

// TraceSnapshot is a point-in-time copy of a trace.
type TraceSnapshot struct {
	ID      string
	Start   time.Time
	Spans   []Span
	Dropped int
	Phases  map[string]PhaseStats
}

// Snapshot copies the timeline and aggregates. Safe while recording
// continues.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:      t.id,
		Start:   t.start,
		Spans:   append([]Span(nil), t.spans...),
		Dropped: t.dropped,
		Phases:  make(map[string]PhaseStats, len(t.phases)),
	}
	for k, v := range t.phases {
		snap.Phases[k] = v
	}
	return snap
}

type traceKey struct{}

// WithTrace attaches t to the context. Attaching nil returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext recovers the trace, or nil when none is attached (every
// Trace method tolerates nil, so callers never need to branch).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
