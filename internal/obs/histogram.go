package obs

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Histograms stripe observations across this many shards. Observing
// goroutines pick a shard via a pooled per-P hint and fall over to the
// next shard on TryLock failure, so the hot path — a trial recording its
// phase timings while dozens of siblings do the same — never blocks on a
// shared mutex. Snapshot merges the shards; that is the only full sweep.
var histogramShards = max(4, runtime.GOMAXPROCS(0))

// shardHint is a goroutine's sticky starting shard. sync.Pool keeps
// per-P free lists, so under steady load each P keeps getting its own
// hint back and lands on its own shard — striping without runtime tricks.
type shardHint struct{ n uint32 }

var (
	hintSeq  atomic.Uint32
	hintPool = sync.Pool{New: func() any {
		return &shardHint{n: hintSeq.Add(1)}
	}}
)

// A Histogram counts observations into fixed buckets. Buckets are
// cumulative only at exposition time; internally each shard holds plain
// per-bucket counts plus a running sum and count so p-quantiles and means
// can be estimated from a snapshot.
type Histogram struct {
	labels string
	bounds []float64 // strictly increasing upper bounds (le, inclusive)
	shards []histogramShard
}

// histogramShard is padded so adjacent shards' mutexes do not share a
// cache line; the counts slices are separate heap allocations already.
type histogramShard struct {
	mu    sync.Mutex
	count uint64
	sum   float64
	cnts  []uint64 // len(bounds)+1; last is the +Inf overflow bucket
	_     [64]byte
}

func newHistogram(labelKey string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at index %d", i))
		}
	}
	h := &Histogram{
		labels: labelKey,
		bounds: append([]float64(nil), bounds...),
		shards: make([]histogramShard, histogramShards),
	}
	for i := range h.shards {
		h.shards[i].cnts = make([]uint64, len(bounds)+1)
	}
	return h
}

// bucketIndex returns the first bucket whose upper bound is ≥ v
// (Prometheus `le` semantics are inclusive), or the +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	// Linear scan beats binary search for the short bucket lists used
	// here (≤ ~20), and most latency observations land in the low buckets.
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one value. Concurrency-safe and designed to be cheap:
// one pooled hint fetch, one TryLock (with a single fallover probe), and
// a bucket increment.
func (h *Histogram) Observe(v float64) {
	idx := h.bucketIndex(v)
	hint := hintPool.Get().(*shardHint)
	s := &h.shards[int(hint.n)%len(h.shards)]
	if !s.mu.TryLock() {
		// Contended: migrate this hint to the next shard permanently, so
		// colliding goroutines spread out instead of re-colliding.
		hint.n++
		s = &h.shards[int(hint.n)%len(h.shards)]
		s.mu.Lock()
	}
	s.cnts[idx]++
	s.count++
	s.sum += v
	s.mu.Unlock()
	hintPool.Put(hint)
}

// Snapshot locks each shard in turn and merges them into one consistent
// view. (Consistent per shard; a scrape racing an observation may or may
// not include it, which is the usual Prometheus contract.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for j, c := range s.cnts {
			snap.Counts[j] += c
		}
		snap.Count += s.count
		snap.Sum += s.sum
		s.mu.Unlock()
	}
	return snap
}

// HistogramSnapshot is a merged, point-in-time view of a histogram.
// Counts are per-bucket (not cumulative) and one longer than Bounds: the
// final entry is the +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. The first
// bucket interpolates from zero (observations here are non-negative
// durations); ranks landing in the +Inf bucket clamp to the largest
// finite bound, which understates the tail but never fabricates beyond
// what the layout can resolve. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		return lower + (s.Bounds[i]-lower)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// ExponentialBuckets builds n upper bounds starting at start and growing
// by factor, e.g. ExponentialBuckets(0.0001, 2, 17) spans 100µs…6.6s.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefSecondsBuckets is the default latency layout: 100µs to ~6.6s in
// doubling steps, which brackets everything from a cache hit on the
// serving path to a 500-trial solver job on the bench graphs.
func DefSecondsBuckets() []float64 { return ExponentialBuckets(0.0001, 2, 17) }
