// Package obs is the repo's dependency-free observability kit: a metrics
// registry (atomic counters, gauges, and lock-striped histograms) with
// Prometheus text-format exposition, plus a per-request Trace that records
// span timings as a job descends from the HTTP handler through the job
// manager and coloring session into the solver's supersteps.
//
// The package deliberately has no third-party dependencies and no
// knowledge of the service layer: the service registers the metric
// families it cares about and bridges its cumulative counters at scrape
// time, and the solver records spans through a Trace it finds on the
// request context. Everything here is safe for concurrent use.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels name one metric within a family, e.g. {"endpoint": "/v1/estimate"}.
// Label order does not matter; exposition renders them sorted by name so
// the same set always produces the same series key.
type Labels map[string]string

// render produces the canonical `{k="v",...}` suffix ("" for no labels).
// The result doubles as the dedup key inside a family.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes: backslash,
// double quote, and newline are the only characters that need it.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// A family is one exposition block: a name, help text, a type, and every
// labeled series registered under it. Series are kept in first-creation
// order so repeated scrapes emit stable output.
type family struct {
	name string
	help string
	kind metricKind

	mu      sync.Mutex
	order   []string
	metrics map[string]any // label key → *Counter | *Gauge | *Histogram
}

// Registry owns an ordered set of metric families. The zero value is not
// usable; call NewRegistry. Family and series registration is idempotent:
// asking for an existing (name, labels) pair returns the same handle, so
// hot paths may re-resolve series without double registration — though
// they should cache the handle and skip the map lookups entirely.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, metrics: make(map[string]any)}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// series resolves (or creates) the labeled series inside f, using mk to
// build a fresh metric on first sight.
func (f *family) series(labels Labels, mk func(labelKey string) any) any {
	key := labels.render()
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[key]; ok {
		return m
	}
	m := mk(key)
	f.metrics[key] = m
	f.order = append(f.order, key)
	return m
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, counterKind)
	return f.series(labels, func(k string) any { return &Counter{labels: k} }).(*Counter)
}

// Gauge registers (or fetches) a settable float gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, gaugeKind)
	return f.series(labels, func(k string) any { return &Gauge{labels: k} }).(*Gauge)
}

// Histogram registers (or fetches) a fixed-bucket histogram with the
// given upper bounds (strictly increasing; a +Inf bucket is implicit).
// Bounds are fixed at first registration: later calls with different
// bounds for the same family panic, since mixing bucket layouts inside
// one family would make the exposition unmergeable.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	f := r.family(name, help, histogramKind)
	h := f.series(labels, func(k string) any { return newHistogram(k, bounds) }).(*Histogram)
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// A Counter is a monotonically increasing uint64. Set exists only for
// bridged counters — series whose authoritative cumulative value lives
// elsewhere (the service's stats snapshot) and is copied in at scrape
// time; hot-path code should use Inc/Add.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value with an externally tracked cumulative total.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a settable float64 (stored as atomic bits).
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
