package obs

import (
	"io"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for WritePrometheus output.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE header per
// family, one sample line per series, and the _bucket/_sum/_count
// expansion for histograms. Families appear in registration order and
// series in first-creation order, so consecutive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.order...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')

		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		metrics := make([]any, len(keys))
		for i, k := range keys {
			metrics[i] = f.metrics[k]
		}
		f.mu.Unlock()

		for i, m := range metrics {
			switch v := m.(type) {
			case *Counter:
				writeSample(&b, f.name, "", keys[i], formatUint(v.Value()))
			case *Gauge:
				writeSample(&b, f.name, "", keys[i], formatFloat(v.Value()))
			case *Histogram:
				writeHistogram(&b, f.name, keys[i], v.Snapshot())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram expands one series into cumulative le-buckets plus the
// _sum and _count samples.
func writeHistogram(b *strings.Builder, name, labelKey string, s HistogramSnapshot) {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		writeSample(b, name, "_bucket", withLabel(labelKey, "le", le), formatUint(cum))
	}
	writeSample(b, name, "_sum", labelKey, formatFloat(s.Sum))
	writeSample(b, name, "_count", labelKey, formatUint(s.Count))
}

func writeSample(b *strings.Builder, name, suffix, labelKey, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	b.WriteString(labelKey)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// withLabel splices one extra label into an already-rendered label key.
func withLabel(labelKey, name, value string) string {
	extra := name + `="` + escapeLabelValue(value) + `"`
	if labelKey == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labelKey, "}") + "," + extra + "}"
}

// escapeHelp applies the help-text escapes (backslash and newline; quotes
// are legal in help strings).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
