package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	h := newHistogram("", []float64{0.001, 0.01, 0.1})
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0}, // le is inclusive: v == bound lands in that bucket
		{0.0011, 1},
		{0.01, 1},
		{0.05, 2},
		{0.1, 2},
		{0.11, 3}, // +Inf overflow
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramShardMerge(t *testing.T) {
	h := newHistogram("", []float64{1, 2, 4})
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 5)) // 0,1→b0  2→b1  3,4→b2
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("merged count = %d, want %d", snap.Count, goroutines*perG)
	}
	wantSum := float64(goroutines) * perG / 5 * (0 + 1 + 2 + 3 + 4)
	if snap.Sum != wantSum {
		t.Fatalf("merged sum = %v, want %v", snap.Sum, wantSum)
	}
	wantCounts := []uint64{2 * goroutines * perG / 5, goroutines * perG / 5, 2 * goroutines * perG / 5, 0}
	for i, c := range snap.Counts {
		if c != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	// Striping must actually have been exercised: the shards exist and
	// their private counts sum to the merged view (implicitly checked
	// above), and a second snapshot is identical — merging is pure.
	again := h.Snapshot()
	if again.Count != snap.Count || again.Sum != snap.Sum {
		t.Fatalf("second snapshot diverged: %+v vs %+v", again, snap)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := newHistogram("", []float64{10, 20, 40})
	// 100 observations uniformly in (0,10]: the q-quantile interpolates
	// linearly inside the first bucket from lower bound 0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	snap := h.Snapshot()
	if got := snap.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5 (linear within [0,10])", got)
	}
	if got := snap.Quantile(1); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}

	// Split across buckets: 50 in bucket (0,10], 50 in (10,20].
	h2 := newHistogram("", []float64{10, 20, 40})
	for i := 0; i < 50; i++ {
		h2.Observe(5)
		h2.Observe(15)
	}
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.25); got != 5 {
		t.Errorf("p25 = %v, want 5", got)
	}
	if got := s2.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %v, want 15 (interpolated in second bucket)", got)
	}

	// Overflow clamps to the largest finite bound.
	h3 := newHistogram("", []float64{1, 2})
	h3.Observe(100)
	if got := h3.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}

	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(0.0001, 2, 4)
	want := []float64{0.0001, 0.0002, 0.0004, 0.0008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	defBuckets := DefSecondsBuckets()
	for i := 1; i < len(defBuckets); i++ {
		if defBuckets[i] <= defBuckets[i-1] {
			t.Fatalf("DefSecondsBuckets not increasing at %d", i)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "h", Labels{"a": "1"})
	c2 := r.Counter("x_total", "h", Labels{"a": "1"})
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("x_total", "h", Labels{"a": "2"})
	if c1 == c3 {
		t.Fatal("different labels returned the same counter")
	}
	h1 := r.Histogram("y_seconds", "h", []float64{1, 2}, nil)
	h2 := r.Histogram("y_seconds", "h", []float64{1, 2}, nil)
	if h1 != h2 {
		t.Fatal("histogram registration not idempotent")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests served", Labels{"endpoint": "/v1/estimate", "code": "200"})
	c.Add(7)
	g := r.Gauge("up_seconds", "uptime", nil)
	g.Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, Labels{"endpoint": "/v1/estimate"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP req_total requests served\n",
		"# TYPE req_total counter\n",
		`req_total{code="200",endpoint="/v1/estimate"} 7` + "\n",
		"# TYPE up_seconds gauge\n",
		"up_seconds 1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{endpoint="/v1/estimate",le="0.1"} 1` + "\n",
		`lat_seconds_bucket{endpoint="/v1/estimate",le="1"} 2` + "\n",
		`lat_seconds_bucket{endpoint="/v1/estimate",le="+Inf"} 3` + "\n",
		`lat_seconds_sum{endpoint="/v1/estimate"} 5.55` + "\n",
		`lat_seconds_count{endpoint="/v1/estimate"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}
	// Every non-comment line must be `name{labels} value` or `name value`.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Labels{"q": `a"b\c` + "\n"}.render()
	want := `{q="a\"b\\c\n"}`
	if got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
}

func TestTraceSpansAndPhases(t *testing.T) {
	tr := NewTrace("j1")
	end := tr.Start("pathJoin")
	time.Sleep(time.Millisecond)
	end()
	t0 := time.Now()
	tr.Add("cycleJoin", t0, t0.Add(3*time.Millisecond))
	tr.Add("cycleJoin", t0, t0.Add(2*time.Millisecond))

	snap := tr.Snapshot()
	if snap.ID != "j1" {
		t.Fatalf("id = %q", snap.ID)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(snap.Spans))
	}
	if p := snap.Phases["cycleJoin"]; p.Count != 2 || p.Total != 5*time.Millisecond {
		t.Fatalf("cycleJoin agg = %+v", p)
	}
	if p := snap.Phases["pathJoin"]; p.Count != 1 || p.Total <= 0 {
		t.Fatalf("pathJoin agg = %+v", p)
	}
}

func TestTraceSpanCapKeepsAggregates(t *testing.T) {
	tr := NewTrace("big")
	t0 := time.Now()
	for i := 0; i < maxSpans+100; i++ {
		tr.Add("merge", t0, t0.Add(time.Microsecond))
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(snap.Spans), maxSpans)
	}
	if snap.Dropped != 100 {
		t.Fatalf("dropped = %d, want 100", snap.Dropped)
	}
	if p := snap.Phases["merge"]; p.Count != maxSpans+100 {
		t.Fatalf("aggregate count = %d, want %d (exact despite drops)", p.Count, maxSpans+100)
	}
}

func TestTraceSinkAndObserve(t *testing.T) {
	tr := NewTrace("s")
	var mu sync.Mutex
	got := map[string]int{}
	tr.SetSink(func(name string, seconds float64) {
		mu.Lock()
		got[name]++
		mu.Unlock()
	})
	tr.Start("a")()
	tr.Observe("trial", 5*time.Millisecond)
	if got["a"] != 1 || got["trial"] != 1 {
		t.Fatalf("sink calls = %v", got)
	}
	if _, ok := tr.Snapshot().Phases["trial"]; ok {
		t.Fatal("Observe must not create a phase entry")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Start("x")()                      // must not panic
	tr.Add("y", time.Now(), time.Now())  // must not panic
	tr.Observe("z", time.Second)         // must not panic
	tr.SetSink(func(string, float64) {}) // must not panic
	if tr.ID() != "" || len(tr.Snapshot().Spans) != 0 {
		t.Fatal("nil trace must be empty")
	}
}

func TestTraceContextRoundtrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil trace")
	}
	tr := NewTrace("ctx")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if got := WithTrace(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("attaching nil must be a no-op")
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("race")
	tr.SetSink(func(string, float64) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Start("p")()
				tr.Observe("trial", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p := tr.Snapshot().Phases["p"]; p.Count != 8*200 {
		t.Fatalf("phase count = %d, want %d", p.Count, 8*200)
	}
}
