package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func triangleWithTail() *Graph {
	return FromEdges("tri", 5, [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}})
}

func TestBasic(t *testing.T) {
	g := triangleWithTail()
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("N=%d M=%d, want 5/5", g.N(), g.M())
	}
	if g.Degree(2) != 3 || g.Degree(4) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(2), g.Degree(4))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 2.0 {
		t.Fatalf("AvgDegree = %f", g.AvgDegree())
	}
}

func TestDuplicatesAndSelfLoops(t *testing.T) {
	b := NewBuilder("d", 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after dedupe", g.M())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop not dropped: deg(2)=%d", g.Degree(2))
	}
}

func TestRankOrder(t *testing.T) {
	g := triangleWithTail()
	// Degrees: 0:2 1:2 2:3 3:2 4:1 → order by (deg,id): 4,0,1,3,2.
	want := []uint32{4, 0, 1, 3, 2}
	for pos, v := range want {
		if g.Rank(v) != int32(pos) {
			t.Errorf("Rank(%d) = %d, want %d", v, g.Rank(v), pos)
		}
	}
	if !g.Higher(2, 4) || g.Higher(4, 2) || g.Higher(0, 0) {
		t.Fatal("Higher comparisons wrong")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangleWithTail()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d", h.N(), h.M())
	}
	for v := 0; v < g.N(); v++ {
		a, b := g.Neighbors(uint32(v)), h.Neighbors(uint32(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: neighbor counts differ", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: neighbors differ", v)
			}
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList("bad", strings.NewReader("1 x\n")); err == nil {
		t.Fatal("expected parse error for non-numeric id")
	}
	if _, err := ReadEdgeList("bad", strings.NewReader("7\n")); err == nil {
		t.Fatal("expected parse error for missing endpoint")
	}
	g, err := ReadEdgeList("ok", strings.NewReader("# comment\n% also\n\n0 1\n"))
	if err != nil || g.M() != 1 {
		t.Fatalf("comments/blank lines mishandled: %v %v", g, err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := triangleWithTail()
	h := g.DegreeHistogram()
	// degrees 2,2,3,2,1 → bucket0 (deg<2): 1 vertex; bucket1 (2..3): 4.
	if len(h) != 2 || h[0] != 1 || h[1] != 4 {
		t.Fatalf("histogram = %v", h)
	}
}

// Property: CSR construction matches a naive adjacency-set construction on
// random multigraph input with self-loops and duplicates.
func TestQuickBuildMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder("q", n)
		naive := make([]map[uint32]bool, n)
		for i := range naive {
			naive[i] = map[uint32]bool{}
		}
		for e := 0; e < 80; e++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			b.AddEdge(u, v)
			if u != v {
				naive[u][v] = true
				naive[v][u] = true
			}
		}
		g := b.Build()
		for v := 0; v < n; v++ {
			ns := g.Neighbors(uint32(v))
			if len(ns) != len(naive[v]) {
				return false
			}
			if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
				return false
			}
			for _, w := range ns {
				if !naive[v][w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the rank array is a permutation consistent with the (degree,id)
// total order.
func TestQuickRankIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder("q", n)
		for e := 0; e < 3*n; e++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		seen := make([]bool, n)
		for v := 0; v < n; v++ {
			r := g.Rank(uint32(v))
			if r < 0 || int(r) >= n || seen[r] {
				return false
			}
			seen[r] = true
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				du, dv := g.Degree(uint32(u)), g.Degree(uint32(v))
				wantHigher := du > dv || (du == dv && u > v)
				if g.Higher(uint32(u), uint32(v)) != wantHigher {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
