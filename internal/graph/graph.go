// Package graph implements the large data graph substrate: a compact
// CSR (compressed sparse row) adjacency structure, the degree-based total
// order used by the DB algorithm (§5.1), summary statistics (Table 1), and
// edge-list I/O.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NoVertex is the sentinel for "no vertex" in table keys and APIs.
const NoVertex = ^uint32(0)

// Graph is an undirected simple data graph over vertices 0..N-1 stored in
// CSR form. Neighbor lists are sorted. The structure is immutable after
// construction and safe for concurrent readers.
type Graph struct {
	Name string
	n    int
	off  []int64  // len n+1; neighbor range of v is nbr[off[v]:off[v+1]]
	nbr  []uint32 // concatenated sorted neighbor lists

	// rank[v] is v's position in the degree-based total order of §5.1:
	// vertices sorted by (degree, id) increasing. rank[u] > rank[v] means
	// "u ≻ v" — u is higher than v.
	rank []int32

	// fp memoizes the structural Fingerprint (wire.go).
	fpOnce sync.Once
	fp     uint64
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return int64(len(g.nbr)) / 2 }

// Neighbors returns the sorted neighbor list of v. Callers must not modify it.
func (g *Graph) Neighbors(v uint32) []uint32 { return g.nbr[g.off[v]:g.off[v+1]] }

// Degree returns the degree of v.
func (g *Graph) Degree(v uint32) int { return int(g.off[v+1] - g.off[v]) }

// HasEdge reports whether (u,v) is an edge, by binary search.
func (g *Graph) HasEdge(u, v uint32) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Rank returns v's position in the degree-based total order (§5.1):
// vertices are sorted by increasing degree, ties broken by placing the
// smaller id first. Higher rank = "higher" vertex.
func (g *Graph) Rank(v uint32) int32 { return g.rank[v] }

// Higher reports u ≻ v in the degree-based total order.
func (g *Graph) Higher(u, v uint32) bool { return g.rank[u] > g.rank[v] }

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(uint32(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.nbr)) / float64(g.n)
}

// DegreeHistogram returns counts[j] = number of vertices whose degree d
// satisfies 2^j ≤ d < 2^(j+1), with counts[0] also including degree 0..1.
// Used by the power-law experiments (§9–§10).
func (g *Graph) DegreeHistogram() []int64 {
	var counts []int64
	for v := 0; v < g.n; v++ {
		d := g.Degree(uint32(v))
		j := 0
		for 1<<(j+1) <= d {
			j++
		}
		for len(counts) <= j {
			counts = append(counts, 0)
		}
		counts[j]++
	}
	return counts
}

// Stats summarizes a graph in the shape of the paper's Table 1.
type Stats struct {
	Name   string
	Nodes  int
	Edges  int64
	AvgDeg float64
	MaxDeg int
}

// Stats returns the Table 1 summary row for g.
func (g *Graph) Stats() Stats {
	return Stats{Name: g.Name, Nodes: g.n, Edges: g.M(), AvgDeg: g.AvgDegree(), MaxDeg: g.MaxDegree()}
}

func (s Stats) String() string {
	return fmt.Sprintf("%-14s %9d nodes %10d edges  avg %5.1f  max %6d",
		s.Name, s.Nodes, s.Edges, s.AvgDeg, s.MaxDeg)
}

// Builder accumulates edges and produces an immutable Graph. Self-loops are
// dropped and duplicate edges are merged; edges may be added in any order.
type Builder struct {
	Name string
	n    int
	src  []uint32
	dst  []uint32
}

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(name string, n int) *Builder { return &Builder{Name: name, n: n} }

// AddEdge records the undirected edge (u,v). Self-loops are ignored.
// The vertex count grows to cover u and v if needed.
func (b *Builder) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.src = append(b.src, u, v)
	b.dst = append(b.dst, v, u)
}

// Build finalizes the graph: counting-sorts the directed edge copies into
// CSR, sorts neighbor lists, removes duplicates, and precomputes the
// degree-based order.
func (b *Builder) Build() *Graph {
	g := &Graph{Name: b.Name, n: b.n}
	// Counting sort by source.
	deg := make([]int64, b.n+1)
	for _, u := range b.src {
		deg[u+1]++
	}
	off := make([]int64, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v+1]
	}
	nbr := make([]uint32, len(b.src))
	cursor := make([]int64, b.n)
	copy(cursor, off[:b.n])
	for i, u := range b.src {
		nbr[cursor[u]] = b.dst[i]
		cursor[u]++
	}
	// Sort each list and dedupe in place.
	out := nbr[:0]
	newOff := make([]int64, b.n+1)
	for v := 0; v < b.n; v++ {
		lo, hi := off[v], off[v+1]
		ns := nbr[lo:hi]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		start := int64(len(out))
		for i, w := range ns {
			if i > 0 && ns[i-1] == w {
				continue
			}
			out = append(out, w)
		}
		newOff[v] = start
	}
	newOff[b.n] = int64(len(out))
	g.off = newOff
	g.nbr = out
	g.computeRank()
	return g
}

func (g *Graph) computeRank() {
	order := make([]uint32, g.n)
	for v := range order {
		order[v] = uint32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	g.rank = make([]int32, g.n)
	for pos, v := range order {
		g.rank[v] = int32(pos)
	}
}

// FromEdges builds a graph on n vertices from an explicit edge list;
// convenient in tests and examples.
func FromEdges(name string, n int, edges [][2]uint32) *Graph {
	b := NewBuilder(name, n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
