package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line,
// '#' or '%' comment lines ignored) in the format used by the SNAP
// collection, and builds a graph. Vertex ids must be non-negative integers;
// they are used directly (the graph covers 0..max id).
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	b := NewBuilder(name, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: %s:%d: need two vertex ids, got %q", name, line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: bad vertex id %q: %v", name, line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: bad vertex id %q: %v", name, line, fields[1], err)
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading %s: %v", name, err)
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(path, f)
}

// WriteEdgeList writes the graph as "u v" lines, each undirected edge once
// (u < v), preceded by a comment header.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d nodes %d edges\n", g.Name, g.n, g.M())
	for v := 0; v < g.n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}
