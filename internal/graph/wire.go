package graph

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
)

// Wire support for the dist backend: a Graph ships to worker processes
// once per fingerprint and is cached there, so supersteps exchange only
// keyed counts. Only the CSR structure travels; the degree-based rank
// order is recomputed on arrival (it is a pure function of the structure,
// so every process derives the identical order).

// wireGraph is the gob shape of a Graph. The rank order is derived, not
// shipped.
type wireGraph struct {
	Name string
	N    int
	Off  []int64
	Nbr  []uint32
}

// GobEncode implements gob.GobEncoder.
func (g *Graph) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wireGraph{Name: g.Name, N: g.n, Off: g.off, Nbr: g.nbr})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder, rebuilding the derived rank order.
func (g *Graph) GobDecode(b []byte) error {
	var w wireGraph
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	if len(w.Off) != w.N+1 {
		return fmt.Errorf("graph: wire CSR has %d offsets for %d vertices", len(w.Off), w.N)
	}
	for v := 0; v < w.N; v++ {
		if w.Off[v] > w.Off[v+1] || w.Off[v+1] > int64(len(w.Nbr)) {
			return fmt.Errorf("graph: wire CSR offsets out of order at vertex %d", v)
		}
	}
	g.Name = w.Name
	g.n = w.N
	g.off = w.Off
	g.nbr = w.Nbr
	g.computeRank()
	return nil
}

// Fingerprint returns a structural FNV-1a hash of the graph (vertex count
// and CSR arrays; the name does not participate). Graphs are immutable
// after construction, so the hash is memoized per instance — the dist
// coordinator calls this once per trial.
func (g *Graph) Fingerprint() uint64 {
	g.fpOnce.Do(func() {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(g.n))
		h.Write(b[:])
		for _, o := range g.off {
			binary.LittleEndian.PutUint64(b[:], uint64(o))
			h.Write(b[:])
		}
		for _, v := range g.nbr {
			binary.LittleEndian.PutUint32(b[:4], v)
			h.Write(b[:4])
		}
		g.fp = h.Sum64()
	})
	return g.fp
}
