package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/sig"
	"repro/internal/table"
)

func TestParallelRunVisitsEveryPartitionOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewParallel(workers, 1000)
		visits := make([]atomic.Int32, p.P())
		p.Run(func(w int) { visits[w].Add(1) })
		for w := range visits {
			if got := visits[w].Load(); got != 1 {
				t.Fatalf("workers=%d: partition %d run %d times", workers, w, got)
			}
		}
	}
}

func TestParallelOwnerRangeConsistency(t *testing.T) {
	f := func(wRaw, nRaw uint16) bool {
		workers := 1 + int(wRaw%16)
		n := int(nRaw % 2000)
		p := NewParallel(workers, n)
		covered := 0
		for w := 0; w < p.P(); w++ {
			lo, hi := p.Range(w)
			if hi < lo {
				return false
			}
			covered += int(hi - lo)
			for v := lo; v < hi; v++ {
				if p.Owner(v) != w {
					return false
				}
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Step on the parallel backend produces exactly the table the
// sim backend's message exchange produces, for random emission patterns,
// worker counts, and partition layouts — merge order cannot matter.
func TestParallelStepMatchesSimExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 50 + rng.Intn(200)
		simWorkers := 1 + rng.Intn(6)
		parWorkers := 1 + rng.Intn(6)
		emissions := make([][]Msg, 0, 64)
		for i := 0; i < 40+rng.Intn(60); i++ {
			var batch []Msg
			for j := 0; j < rng.Intn(8); j++ {
				k := table.Binary(uint32(rng.Intn(n)), uint32(rng.Intn(n)), sig.Of(uint8(rng.Intn(5))))
				batch = append(batch, Msg{K: k, C: uint64(1 + rng.Intn(9))})
			}
			emissions = append(emissions, batch)
		}
		// Every backend emits the same multiset: each partition w emits the
		// batches whose index ≡ w mod P, addressed to the key's V owner.
		produce := func(be Backend) func(w int, emit Emit) {
			return func(w int, emit Emit) {
				for i := w; i < len(emissions); i += be.P() {
					for _, m := range emissions[i] {
						emit(be.Owner(m.K.V), []Msg{m})
					}
				}
			}
		}
		sim := NewCluster(simWorkers, n)
		simOut := NewSharded(sim)
		sim.Step(simOut, produce(sim))

		par := NewParallel(parWorkers, n)
		parOut := NewSharded(par)
		par.Step(parOut, produce(par))

		if simOut.Total() != parOut.Total() || simOut.Len() != parOut.Len() {
			t.Fatalf("trial %d: sim (%d entries, total %d) != parallel (%d entries, total %d)",
				trial, simOut.Len(), simOut.Total(), parOut.Len(), parOut.Total())
		}
		// Entry-for-entry: every sim entry appears in the parallel table
		// with the same count, in the shard owning its V.
		simOut.Iter(func(k table.Key, c uint64) bool {
			if got := parOut.Shard(par.Owner(k.V)).Get(k); got != c {
				t.Fatalf("trial %d: key %+v: sim %d, parallel %d", trial, k, c, got)
			}
			return true
		})
		if par.Messages() != 0 {
			t.Fatalf("parallel backend counted %d messages", par.Messages())
		}
	}
}

func TestParallelLoadsFoldToWorkers(t *testing.T) {
	p := NewParallel(4, 400)
	p.Run(func(w int) { p.AddLoad(w, int64(w+1)) })
	loads := p.Loads()
	if len(loads) != 4 {
		t.Fatalf("len(Loads) = %d, want workers=4", len(loads))
	}
	var want, got int64
	for w := 0; w < p.P(); w++ {
		want += int64(w + 1)
	}
	for _, l := range loads {
		got += l
	}
	if got != want {
		t.Fatalf("folded loads total %d, want %d", got, want)
	}
	max, avg, total := p.LoadStats()
	if total != want || max <= 0 || avg <= 0 {
		t.Fatalf("LoadStats = (%d, %f, %d)", max, avg, total)
	}
	p.ResetCounters()
	if _, _, total := p.LoadStats(); total != 0 || p.Steals() != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

// A worker stuck on a long task must not strand the rest of the run: the
// other worker steals across bands. Partition 0's task blocks until every
// other partition has completed — possible only because whichever worker
// is not stuck keeps claiming tasks from both bands.
func TestParallelStealsImbalancedBands(t *testing.T) {
	p := NewParallel(2, 2000)
	others := int32(p.P() - 1)
	var done atomic.Int32
	release := make(chan struct{})
	p.Run(func(w int) {
		if w == 0 {
			<-release
			return
		}
		if done.Add(1) == others {
			close(release)
		}
	})
	if p.Steals() == 0 {
		t.Error("no steals recorded despite a blocked worker")
	}
}

func TestCanonicalAndNew(t *testing.T) {
	if name, err := Canonical("sim"); err != nil || name != SimName {
		t.Fatalf("Canonical(sim) = %q, %v", name, err)
	}
	if name, err := Canonical("parallel"); err != nil || name != ParallelName {
		t.Fatalf("Canonical(parallel) = %q, %v", name, err)
	}
	if _, err := Canonical("mpi"); err == nil {
		t.Fatal("Canonical accepted an unknown backend")
	}
	be, err := New("parallel", 0, Job{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != ParallelName || be.Workers() < 1 {
		t.Fatalf("New(parallel): name %q workers %d", be.Name(), be.Workers())
	}
	sim, err := New("sim", 0, Job{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Name() != SimName || sim.Workers() != 4 {
		t.Fatalf("New(sim): name %q workers %d, want sim/4", sim.Name(), sim.Workers())
	}
	if _, err := New("mpi", 2, Job{N: 100}); err == nil {
		t.Fatal("New accepted an unknown backend")
	}
}

// Deliver must hand every emission to its destination partition exactly
// once, with per-destination mutual exclusion (the consumer state below
// is unsynchronized on purpose), on both backends.
func TestDeliverRoutesEveryEmission(t *testing.T) {
	for _, be := range []Backend{NewCluster(4, 400), NewParallel(3, 400)} {
		sums := make([]uint64, be.P())
		perDst := make([]map[uint32]int, be.P())
		for i := range perDst {
			perDst[i] = make(map[uint32]int)
		}
		be.Deliver(func(w int, emit Emit) {
			lo, hi := be.Range(w)
			for v := lo; v < hi; v++ {
				dst := be.Owner(uint32(int(v+7) % be.N()))
				emit(dst, []Msg{{K: table.Unary(v, sig.Of(0)), C: uint64(v) + 1}})
			}
		}, func(dst int, run []Msg) {
			for _, m := range run {
				sums[dst] += m.C
				perDst[dst][m.K.U]++
			}
		})
		var total uint64
		seen := 0
		for dst := range sums {
			total += sums[dst]
			for v, n := range perDst[dst] {
				if n != 1 {
					t.Fatalf("%s: vertex %d delivered %d times to partition %d", be.Name(), v, n, dst)
				}
				if be.Owner(uint32(int(v+7)%be.N())) != dst {
					t.Fatalf("%s: vertex %d delivered to wrong partition %d", be.Name(), v, dst)
				}
				seen++
			}
		}
		want := uint64(be.N()) * uint64(be.N()+1) / 2
		if total != want || seen != be.N() {
			t.Fatalf("%s: delivered %d entries summing %d, want %d summing %d", be.Name(), seen, total, be.N(), want)
		}
	}
}
