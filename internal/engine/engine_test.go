package engine

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/sig"
	"repro/internal/table"
)

func TestOwnerPartition(t *testing.T) {
	for _, tc := range []struct{ p, n int }{{1, 10}, {4, 10}, {3, 100}, {16, 5}, {7, 7}} {
		c := NewCluster(tc.p, tc.n)
		prev := 0
		for v := 0; v < tc.n; v++ {
			w := c.Owner(uint32(v))
			if w < 0 || w >= c.P() {
				t.Fatalf("p=%d n=%d: owner(%d) = %d out of range", tc.p, tc.n, v, w)
			}
			if w < prev {
				t.Fatalf("ownership not monotone at %d", v)
			}
			prev = w
		}
	}
}

func TestRunVisitsAllWorkers(t *testing.T) {
	c := NewCluster(8, 100)
	var visited [8]atomic.Bool
	c.Run(func(w int) { visited[w].Store(true) })
	for w := range visited {
		if !visited[w].Load() {
			t.Fatalf("worker %d not run", w)
		}
	}
}

func TestExchangeRoutesAndCounts(t *testing.T) {
	c := NewCluster(4, 40)
	got := make([][]Msg, 4)
	c.Exchange(
		func(w int, emit Emit) {
			// Every worker sends its id+1 as a count to every worker.
			for dst := 0; dst < 4; dst++ {
				emit(dst, []Msg{{K: table.Unary(uint32(w), sig.Of(0)), C: uint64(w + 1)}})
			}
		},
		func(w int, msgs []Msg) { got[w] = append(got[w], msgs...) },
	)
	for w := 0; w < 4; w++ {
		if len(got[w]) != 4 {
			t.Fatalf("worker %d received %d msgs", w, len(got[w]))
		}
		// Deterministic source order.
		for src := 0; src < 4; src++ {
			if got[w][src].K.U != uint32(src) || got[w][src].C != uint64(src+1) {
				t.Fatalf("worker %d msg %d = %+v", w, src, got[w][src])
			}
		}
	}
	if c.Messages() != 16 {
		t.Fatalf("Messages = %d, want 16", c.Messages())
	}
}

func TestLoadAccounting(t *testing.T) {
	c := NewCluster(3, 30)
	c.Run(func(w int) { c.AddLoad(w, int64(w)*10) })
	max, avg, total := c.LoadStats()
	if max != 20 || total != 30 || avg != 10 {
		t.Fatalf("stats = %d %f %d", max, avg, total)
	}
	c.ResetCounters()
	max, _, total = c.LoadStats()
	if max != 0 || total != 0 || c.Messages() != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

func TestShardedAccumulate(t *testing.T) {
	c := NewCluster(4, 40)
	s := NewSharded(c)
	// Route (v, v) unary entries to their owner via an exchange.
	c.Exchange(
		func(w int, emit Emit) {
			if w != 0 {
				return
			}
			for v := 0; v < 40; v++ {
				emit(c.Owner(uint32(v)), []Msg{{K: table.Unary(uint32(v), sig.Of(0)), C: 2}})
			}
		},
		s.Accumulate,
	)
	if s.Len() != 40 || s.Total() != 80 {
		t.Fatalf("Len=%d Total=%d", s.Len(), s.Total())
	}
	// Every entry must live in its owner's shard.
	for w := 0; w < 4; w++ {
		s.Shard(w).Iter(func(k table.Key, _ uint64) bool {
			if c.Owner(k.U) != w {
				t.Errorf("entry %d in shard %d, owner %d", k.U, w, c.Owner(k.U))
			}
			return true
		})
	}
	n := 0
	s.Iter(func(table.Key, uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property: exchanges conserve messages — total emitted equals total
// consumed, for arbitrary worker counts and fan-outs.
func TestQuickExchangeConservation(t *testing.T) {
	f := func(pRaw, fanRaw uint8) bool {
		p := 1 + int(pRaw%8)
		fan := int(fanRaw % 32)
		c := NewCluster(p, 100)
		var consumed atomic.Int64
		c.Exchange(
			func(w int, emit Emit) {
				for i := 0; i < fan; i++ {
					emit((w+i)%p, []Msg{{K: table.Unary(uint32(i), 0), C: 1}})
				}
			},
			func(_ int, msgs []Msg) { consumed.Add(int64(len(msgs))) },
		)
		return consumed.Load() == int64(p*fan) && c.Messages() == int64(p*fan)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Range partitions the vertex space exactly, consistently with
// Owner.
func TestQuickRangeOwnerConsistency(t *testing.T) {
	f := func(pRaw, nRaw uint16) bool {
		p := 1 + int(pRaw%32)
		n := int(nRaw % 2000)
		c := NewCluster(p, n)
		covered := 0
		for w := 0; w < p; w++ {
			lo, hi := c.Range(w)
			if hi < lo {
				return false
			}
			covered += int(hi - lo)
			for v := lo; v < hi; v++ {
				if c.Owner(v) != w {
					return false
				}
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
