// Package engine provides the pluggable execution runtimes behind the
// solver (the Backend interface). The sim backend (Cluster) simulates the
// paper's distributed runtime (§7) in shared memory: P workers
// (goroutines) stand in for MPI ranks, vertices are block-distributed
// (1D decomposition), projection tables are sharded by vertex owner, and
// every solver phase is a superstep — workers scan their shards, emit
// keyed messages to destination owners, barrier, and owners merge.
// Per-worker load counters reproduce the paper's "projection function
// operations" metric (Figure 11), and message counters expose
// communication volume. The parallel backend (Parallel) executes the same
// supersteps as real shared-memory table merges with no message
// simulation; both produce bit-identical counts.
package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/table"
)

// Cluster is the sim backend: a fixed set of P simulated ranks (one
// goroutine each) owning an n-vertex space in contiguous blocks, with
// per-superstep message accounting faithful to the paper's metrics.
type Cluster struct {
	p     int
	n     int
	chunk int
	loads []atomic.Int64
	msgs  atomic.Int64
	steps atomic.Int64
}

// NewCluster returns a cluster of p workers over n vertices. p is clamped
// to at least 1.
func NewCluster(p, n int) *Cluster {
	if p < 1 {
		p = 1
	}
	chunk := (n + p - 1) / p
	if chunk < 1 {
		chunk = 1
	}
	return &Cluster{p: p, n: n, chunk: chunk, loads: make([]atomic.Int64, p)}
}

// Name returns "sim".
func (c *Cluster) Name() string { return SimName }

// P returns the worker count.
func (c *Cluster) P() int { return c.p }

// Workers returns the worker count (every simulated rank is a real
// goroutine, so concurrency equals P).
func (c *Cluster) Workers() int { return c.p }

// N returns the vertex-space size.
func (c *Cluster) N() int { return c.n }

// Owner returns the worker owning vertex v (1D block distribution).
func (c *Cluster) Owner(v uint32) int {
	w := int(v) / c.chunk
	if w >= c.p {
		w = c.p - 1
	}
	return w
}

// Range returns the half-open vertex interval [lo, hi) owned by worker w.
func (c *Cluster) Range(w int) (lo, hi uint32) {
	l := w * c.chunk
	h := l + c.chunk
	if w == c.p-1 || h > c.n {
		h = c.n
	}
	if l > c.n {
		l = c.n
	}
	return uint32(l), uint32(h)
}

// Owned returns the whole vertex space: a single-process backend executes
// every partition itself.
func (c *Cluster) Owned() (lo, hi uint32) { return 0, uint32(c.n) }

// Reduce returns local unchanged: one process holds every partial total.
func (c *Cluster) Reduce(local uint64) (uint64, error) { return local, nil }

// ReduceVec returns local unchanged.
func (c *Cluster) ReduceVec(local []uint64) ([]uint64, error) { return local, nil }

// Run executes f(w) for every worker w on its own goroutine and waits.
func (c *Cluster) Run(f func(w int)) {
	var wg sync.WaitGroup
	wg.Add(c.p)
	for w := 0; w < c.p; w++ {
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

// AddLoad charges d projection-function operations to worker w.
func (c *Cluster) AddLoad(w int, d int64) { c.loads[w].Add(d) }

// Loads returns a snapshot of the per-worker load counters.
func (c *Cluster) Loads() []int64 {
	out := make([]int64, c.p)
	for i := range out {
		out[i] = c.loads[i].Load()
	}
	return out
}

// LoadStats returns (max, avg, total) over the per-worker loads.
func (c *Cluster) LoadStats() (max int64, avg float64, total int64) {
	for i := 0; i < c.p; i++ {
		l := c.loads[i].Load()
		total += l
		if l > max {
			max = l
		}
	}
	return max, float64(total) / float64(c.p), total
}

// Messages returns the number of messages exchanged so far.
func (c *Cluster) Messages() int64 { return c.msgs.Load() }

// Steals returns 0: the sim backend's ranks never steal work (static 1D
// block distribution, as on the paper's cluster).
func (c *Cluster) Steals() int64 { return 0 }

// Steps returns the number of supersteps (Exchanges) run so far.
func (c *Cluster) Steps() int64 { return c.steps.Load() }

// ResetCounters clears load, message, and superstep counters.
func (c *Cluster) ResetCounters() {
	for i := range c.loads {
		c.loads[i].Store(0)
	}
	c.msgs.Store(0)
	c.steps.Store(0)
}

// Msg is one keyed count in flight between workers.
type Msg struct {
	K table.Key
	C uint64
}

// Emit delivers a run of messages, all addressed to partition dst, from a
// superstep's produce phase. The run slice is only valid during the call
// — backends copy or merge its contents before returning — and must not
// be retained. Batching is the point: a backend pays its per-delivery
// overhead (a buffer append, a stripe lock, a wire frame) once per run
// instead of once per message.
type Emit = func(dst int, run []Msg)

// Exchange runs one superstep: produce runs on every worker and emits
// runs of messages addressed to destination workers; after a barrier,
// consume runs on every worker with the concatenation of messages
// addressed to it (in source-worker order, so the step is deterministic).
// produce's emit closure is only valid during the call and only from that
// worker's goroutine.
func (c *Cluster) Exchange(
	produce func(w int, emit Emit),
	consume func(w int, msgs []Msg),
) {
	c.steps.Add(1)
	out := make([][][]Msg, c.p)
	c.Run(func(w int) {
		bufs := make([][]Msg, c.p)
		produce(w, func(dst int, run []Msg) {
			bufs[dst] = append(bufs[dst], run...)
		})
		out[w] = bufs
	})
	var sent int64
	for _, bufs := range out {
		for _, b := range bufs {
			sent += int64(len(b))
		}
	}
	c.msgs.Add(sent)
	c.Run(func(w int) {
		for src := 0; src < c.p; src++ {
			if msgs := out[src][w]; len(msgs) > 0 {
				consume(w, msgs)
			}
		}
	})
}

// Step runs one superstep on the sim backend: an Exchange whose consume
// phase accumulates every delivered message into out. This is the
// message-faithful realization of the Backend contract.
func (c *Cluster) Step(out *Sharded, produce func(w int, emit Emit)) {
	c.Exchange(produce, out.Accumulate)
}

// Deliver runs one superstep delivering the messages addressed to each
// rank to consume as a single run (message-counted, like every sim
// superstep).
func (c *Cluster) Deliver(produce func(w int, emit Emit), consume func(dst int, run []Msg)) {
	c.Exchange(produce, func(w int, msgs []Msg) {
		consume(w, msgs)
	})
}

// batchRun is the Batcher's flush threshold. Large enough to amortize the
// per-run delivery cost (a stripe lock, a buffer append), small enough to
// stay resident in L1 while a run is being built (256 × 32 B = 8 KiB).
const batchRun = 256

// Batcher accumulates per-message emissions into destination runs for a
// backend's batched Emit. Producers that naturally generate messages one
// at a time wrap emit in a Batcher; messages to the same destination
// coalesce into one run, and a destination switch or a full buffer
// flushes. A Batcher is single-task state: use it only inside the
// produce(w, …) call that Bound it, and Flush before returning. The
// solver keeps one per partition and rebinds it each superstep, so the
// steady state allocates nothing.
type Batcher struct {
	emit Emit
	dst  int
	buf  []Msg
}

// Bind points the batcher at a superstep's emit and returns it. Any
// buffered messages from a previous binding must already be flushed.
func (b *Batcher) Bind(emit Emit) *Batcher {
	b.emit = emit
	b.dst = -1
	if b.buf == nil {
		b.buf = make([]Msg, 0, batchRun)
	}
	return b
}

// Emit appends m to the current run, flushing first if m's destination
// differs or the run is full.
func (b *Batcher) Emit(dst int, m Msg) {
	if dst != b.dst || len(b.buf) == cap(b.buf) {
		b.Flush()
		b.dst = dst
	}
	b.buf = append(b.buf, m)
}

// Flush hands the buffered run to the bound emit and empties the buffer.
// Must be called before the enclosing produce task returns.
func (b *Batcher) Flush() {
	if len(b.buf) > 0 {
		b.emit(b.dst, b.buf)
		b.buf = b.buf[:0]
	}
}

// Sharded is a projection table distributed over a backend: one flat
// signature-major shard (table.Flat) per partition. The solver routes
// each entry to the shard of the owner of its home vertex (the paper
// stores (u,v,α) at the owner of v).
type Sharded struct {
	be     Backend
	shards []*table.Flat
}

// NewSharded returns an empty sharded table on be.
func NewSharded(be Backend) *Sharded {
	s := &Sharded{be: be, shards: make([]*table.Flat, be.P())}
	for i := range s.shards {
		s.shards[i] = &table.Flat{}
	}
	return s
}

// Backend returns the owning backend.
func (s *Sharded) Backend() Backend { return s.be }

// Shard returns worker w's shard.
func (s *Sharded) Shard(w int) *table.Flat { return s.shards[w] }

// Add accumulates directly into worker w's shard (only from w's goroutine,
// or sequentially).
func (s *Sharded) Add(w int, k table.Key, cnt uint64) { s.shards[w].Add(k, cnt) }

// Len returns the total number of distinct entries.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Total returns the sum of all counts across shards.
func (s *Sharded) Total() uint64 {
	var t uint64
	for _, sh := range s.shards {
		t += sh.Total()
	}
	return t
}

// Iter visits every entry across shards (sequentially; unspecified order).
func (s *Sharded) Iter(f func(table.Key, uint64) bool) {
	for _, sh := range s.shards {
		stop := false
		sh.Iter(func(k table.Key, c uint64) bool {
			if !f(k, c) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Accumulate is a ready-made consume phase that merges messages into the
// destination shard.
func (s *Sharded) Accumulate(w int, msgs []Msg) {
	sh := s.shards[w]
	for _, m := range msgs {
		sh.Add(m.K, m.C)
	}
}
