package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// oversubscription is how many ownership partitions a parallel backend
// creates per worker. Finer partitions serve two purposes: band stealing
// has spare tasks to rebalance when the vertex blocks carry skewed work,
// and the per-partition merge locks stripe more finely than the worker
// count, so concurrent emits rarely collide on one shard.
const oversubscription = 4

// paddedMutex keeps each partition lock on its own cache line: the locks
// sit in one array and are hammered from every worker, so false sharing
// between neighboring partitions would serialize unrelated merges.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// Parallel is the real shared-memory backend: P = workers ×
// oversubscription vertex partitions executed by a pool of `workers`
// goroutines with band stealing, and superstep deliveries merged directly
// into the destination table shard under a per-partition lock — no
// message buffers, no simulated ranks. Counts are bit-identical to the
// sim backend because every delivery is a commutative accumulation.
type Parallel struct {
	workers int
	parts   int
	n       int
	chunk   int
	loads   []atomic.Int64 // per partition
	steals  atomic.Int64
	steps   atomic.Int64
	locks   []paddedMutex // per partition, guards Step merges
}

// NewParallel returns a parallel backend of the given worker count over n
// vertices; workers ≤ 0 means runtime.GOMAXPROCS(0).
func NewParallel(workers, n int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parts := workers
	if workers > 1 {
		parts = workers * oversubscription
	}
	chunk := (n + parts - 1) / parts
	if chunk < 1 {
		chunk = 1
	}
	return &Parallel{
		workers: workers,
		parts:   parts,
		n:       n,
		chunk:   chunk,
		loads:   make([]atomic.Int64, parts),
		locks:   make([]paddedMutex, parts),
	}
}

// Name returns "parallel".
func (p *Parallel) Name() string { return ParallelName }

// P returns the partition count (workers × oversubscription).
func (p *Parallel) P() int { return p.parts }

// Workers returns the real worker-goroutine count.
func (p *Parallel) Workers() int { return p.workers }

// N returns the vertex-space size.
func (p *Parallel) N() int { return p.n }

// Owner returns the partition owning vertex v (1D block distribution).
func (p *Parallel) Owner(v uint32) int {
	w := int(v) / p.chunk
	if w >= p.parts {
		w = p.parts - 1
	}
	return w
}

// Range returns the half-open vertex interval [lo, hi) owned by
// partition w.
func (p *Parallel) Range(w int) (lo, hi uint32) {
	l := w * p.chunk
	h := l + p.chunk
	if w == p.parts-1 || h > p.n {
		h = p.n
	}
	if l > p.n {
		l = p.n
	}
	return uint32(l), uint32(h)
}

// Owned returns the whole vertex space: a single-process backend executes
// every partition itself.
func (p *Parallel) Owned() (lo, hi uint32) { return 0, uint32(p.n) }

// Reduce returns local unchanged: one process holds every partial total.
func (p *Parallel) Reduce(local uint64) (uint64, error) { return local, nil }

// ReduceVec returns local unchanged.
func (p *Parallel) ReduceVec(local []uint64) ([]uint64, error) { return local, nil }

// band returns the half-open partition interval a worker drains first.
func (p *Parallel) band(g int) (lo, hi int) {
	return g * p.parts / p.workers, (g + 1) * p.parts / p.workers
}

// homeWorker returns the worker whose band contains partition w.
func (p *Parallel) homeWorker(w int) int { return w * p.workers / p.parts }

// Run executes f(w) exactly once for every partition w: each worker
// drains its own band through an atomic cursor, then steals from the
// other bands in rotation until every partition has run. Which worker ran
// a partition never affects results — partition state stays exclusive to
// the single f(w) call — so stealing trades determinism of schedule, not
// of outcome, for balance.
func (p *Parallel) Run(f func(w int)) {
	if p.workers == 1 {
		for w := 0; w < p.parts; w++ {
			f(w)
		}
		return
	}
	cursors := make([]atomic.Int64, p.workers)
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for g := 0; g < p.workers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < p.workers; i++ {
				b := (g + i) % p.workers
				lo, hi := p.band(b)
				for {
					w := lo + int(cursors[b].Add(1)) - 1
					if w >= hi {
						break
					}
					if b != g {
						p.steals.Add(1)
					}
					f(w)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Step runs one superstep with direct shared-table merging: every emitted
// run locks the destination partition's stripe once and accumulates its
// messages straight into out's shard. Nothing is buffered, counted, or
// re-delivered — this is the backend the sim's message machinery exists
// to simulate — and batching means the stripe lock is paid per run, not
// per message.
func (p *Parallel) Step(out *Sharded, produce func(w int, emit Emit)) {
	p.steps.Add(1)
	if p.workers == 1 {
		for w := 0; w < p.parts; w++ {
			produce(w, func(dst int, run []Msg) {
				sh := out.shards[dst]
				for i := range run {
					sh.Add(run[i].K, run[i].C)
				}
			})
		}
		return
	}
	p.Run(func(w int) {
		produce(w, func(dst int, run []Msg) {
			sh := out.shards[dst]
			mu := &p.locks[dst]
			mu.Lock()
			for i := range run {
				sh.Add(run[i].K, run[i].C)
			}
			mu.Unlock()
		})
	})
}

// Deliver runs one superstep handing each emitted run to consume under
// the destination partition's lock — the same direct, bufferless delivery
// as Step, with user code instead of a table merge at the receiving end.
func (p *Parallel) Deliver(produce func(w int, emit Emit), consume func(dst int, run []Msg)) {
	p.steps.Add(1)
	if p.workers == 1 {
		for w := 0; w < p.parts; w++ {
			produce(w, func(dst int, run []Msg) { consume(dst, run) })
		}
		return
	}
	p.Run(func(w int) {
		produce(w, func(dst int, run []Msg) {
			mu := &p.locks[dst]
			mu.Lock()
			consume(dst, run)
			mu.Unlock()
		})
	})
}

// AddLoad charges d projection-function operations to partition w.
func (p *Parallel) AddLoad(w int, d int64) { p.loads[w].Add(d) }

// Loads returns per-worker load counters: each partition's load is folded
// onto its home worker's entry, so the slice length matches Workers and
// is comparable with the sim backend's per-rank loads.
func (p *Parallel) Loads() []int64 {
	out := make([]int64, p.workers)
	for w := 0; w < p.parts; w++ {
		out[p.homeWorker(w)] += p.loads[w].Load()
	}
	return out
}

// LoadStats returns (max, avg, total) over the per-worker loads.
func (p *Parallel) LoadStats() (max int64, avg float64, total int64) {
	for _, l := range p.Loads() {
		total += l
		if l > max {
			max = l
		}
	}
	return max, float64(total) / float64(p.workers), total
}

// Messages returns 0: the parallel backend exchanges no messages.
func (p *Parallel) Messages() int64 { return 0 }

// Steals returns how many partition tasks ran on a worker other than
// their home worker.
func (p *Parallel) Steals() int64 { return p.steals.Load() }

// Steps returns the number of supersteps (Step and Deliver calls) run so
// far. It matches the sim backend's count for the same plan: both
// backends count one step per superstep call site, so the metric compares
// runtimes without exposing their internals.
func (p *Parallel) Steps() int64 { return p.steps.Load() }

// ResetCounters clears load, steal, and superstep counters.
func (p *Parallel) ResetCounters() {
	for i := range p.loads {
		p.loads[i].Store(0)
	}
	p.steals.Store(0)
	p.steps.Store(0)
}
