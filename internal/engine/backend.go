package engine

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/query"
)

// Backend is the pluggable execution runtime behind the solver phases.
// The algorithm layer (internal/core) is written entirely against this
// interface: a backend owns the vertex space in P contiguous partitions,
// runs partition tasks, and delivers keyed counts emitted during a
// superstep to the partition that owns them. Three implementations exist:
//
//   - "sim" (Cluster): the paper's §7 distributed runtime simulated in
//     shared memory — P goroutine "ranks", per-superstep message buffers,
//     a barrier, and owner-side merges. Message and load counters are
//     faithful to the paper's metrics (Figure 11).
//   - "parallel" (Parallel): a real shared-memory runtime — partitions
//     are oversubscribed over GOMAXPROCS-scaled workers with band
//     stealing, and emitted counts are merged straight into the
//     destination table shard under a per-partition lock, skipping
//     message materialization entirely.
//   - "dist" (internal/dist): real multi-process supersteps — partitions
//     are block-assigned to worker processes reached over a
//     length-prefixed wire protocol, every process runs the same solver
//     over its owned block (SPMD), and per-superstep emissions to remote
//     partitions are batched per destination and exchanged at the
//     superstep barrier. Registered only when a worker topology is
//     configured (dist.Enable).
//
// Counts are bit-identical across backends, partition counts, and worker
// counts: every table operation is a commutative uint64 accumulation, so
// delivery order and partition boundaries cannot change a result.
type Backend interface {
	// Name is the backend's canonical name ("sim", "parallel", "dist").
	Name() string
	// P is the number of vertex-ownership partitions (= table shards).
	// Run and Step index tasks and shards by partition.
	P() int
	// Workers is the real execution concurrency. For sim it equals P
	// (one goroutine per simulated rank); for parallel it is the worker
	// pool size, with P partitions multiplexed onto it; for dist it is
	// the worker-process count.
	Workers() int
	// N is the vertex-space size.
	N() int
	// Owner returns the partition owning vertex v (1D block distribution).
	Owner(v uint32) int
	// Range returns the half-open vertex interval [lo, hi) owned by
	// partition w.
	Range(w int) (lo, hi uint32)
	// Owned returns the half-open vertex interval whose partitions this
	// process executes. Single-process backends own the whole space
	// [0, N); a dist worker rank owns its contiguous block; the dist
	// coordinator owns nothing ([0, 0)). The solver uses it for the
	// degenerate phases that enumerate vertices directly instead of
	// scanning owned table shards.
	Owned() (lo, hi uint32)
	// Run executes f(w) exactly once for every locally owned partition w,
	// concurrently. f has exclusive use of partition w's state (table
	// shards, partial slots indexed by w) for the duration of its call.
	Run(f func(w int))
	// Step runs one superstep: produce runs for every owned partition and
	// emits runs of keyed counts addressed to destination partitions (see
	// Emit); when Step returns, every count emitted by this process has
	// been accumulated into out's destination shard (locally owned
	// destinations) or handed to the owning process (remote destinations),
	// and every count addressed to a locally owned partition — by any
	// process — has been merged. The emit closure and the run slices
	// passed to it are only valid during the call and only from the task
	// that received it; producers that generate messages one at a time
	// should coalesce them through a Batcher.
	Step(out *Sharded, produce func(w int, emit Emit))
	// Deliver is Step with a custom delivery: each emitted run is handed
	// to consume at its destination partition instead of being merged into
	// a table. The run slice is only valid during the consume call.
	// consume(dst, run) calls for one dst never run concurrently with
	// each other, so per-partition consumer state needs no locking; calls
	// for different dsts may run concurrently.
	Deliver(produce func(w int, emit Emit), consume func(dst int, run []Msg))
	// Reduce combines per-process partial totals into the global total:
	// single-process backends return local unchanged; the dist
	// coordinator gathers every rank's contribution and sums. It is
	// called once, after the last superstep, and is the point where a
	// distributed run's failures (lost worker, canceled job) surface.
	Reduce(local uint64) (uint64, error)
	// ReduceVec is Reduce for per-vertex counts: entries are summed
	// elementwise across processes (each vertex is owned by exactly one
	// partition, so exactly one process contributes to each slot).
	ReduceVec(local []uint64) ([]uint64, error)
	// AddLoad charges d projection-function operations to partition w
	// (the paper's Figure 11 load metric).
	AddLoad(w int, d int64)
	// Loads returns a per-worker snapshot of the load counters (partition
	// loads folded onto the worker whose band owns them; per worker node
	// for dist).
	Loads() []int64
	// LoadStats returns (max, avg, total) over the per-worker loads.
	LoadStats() (max int64, avg float64, total int64)
	// Messages is the number of messages exchanged: simulated messages
	// for sim, real cross-process messages for dist; a backend that
	// merges tables directly (parallel) reports 0.
	Messages() int64
	// Steals is the number of partition tasks executed by a worker other
	// than the partition's home worker; always 0 for sim and dist.
	Steals() int64
	// Steps is the number of supersteps executed so far (Step and Deliver
	// calls). The count is deterministic for a given plan — it depends only
	// on the solver's phase structure, not on scheduling — and identical
	// across backends, which makes it the natural x-axis for per-superstep
	// telemetry (the paper's Figures 11–15) and a unit of work for the
	// ROADMAP's cost model.
	Steps() int64
}

// Canonical backend names.
const (
	SimName      = "sim"
	ParallelName = "parallel"
	DistName     = "dist"
)

// JobMode selects what a distributed job computes.
type JobMode int32

const (
	// ModeCount computes the scalar colorful-match count.
	ModeCount JobMode = iota
	// ModePerVertex computes per-vertex counts grouped by the anchor.
	ModePerVertex
)

// Job is the full context of one counting run, handed to the backend
// factory. Single-process backends only need N; the dist backend ships
// the rest to its worker processes so every rank can run the same solver
// (SPMD) over its owned partitions.
type Job struct {
	// N is the vertex-space size. Required; equals Graph.N() when Graph
	// is set.
	N int
	// Graph, Colors, Query, and Plan describe the run. Plan is the
	// concrete decomposition tree the local solver will traverse — the
	// dist backend serializes it structurally so remote ranks enumerate
	// the same splits.
	Graph  *graph.Graph
	Colors []uint8
	Query  *query.Graph
	Plan   *decomp.Tree
	// Algorithm is the cycle-solver choice (core.Algorithm's integer
	// value; engine cannot import core).
	Algorithm int
	// Mode and Anchor select scalar vs per-vertex counting.
	Mode   JobMode
	Anchor int
	// Ctx bounds the run. The dist coordinator watches it so a canceled
	// run tears its remote job down even if the local solver returns
	// without reaching Reduce.
	Ctx context.Context
}

// Factory builds a backend for one run. workers ≤ 0 means the backend's
// own default topology (4 simulated ranks for sim, GOMAXPROCS workers for
// parallel, 4 partitions per node for dist).
type Factory func(workers int, job Job) (Backend, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register installs (or replaces) the factory for a backend name. The
// built-in single-process backends register themselves at init; the dist
// backend registers when a worker topology is configured (dist.Enable),
// so "dist" is only a valid request on processes wired to a cluster.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func lookup(name string) (Factory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

func init() {
	Register(SimName, func(workers int, job Job) (Backend, error) {
		if workers <= 0 {
			workers = 4 // the historical core default rank count
		}
		return NewCluster(workers, job.N), nil
	})
	Register(ParallelName, func(workers int, job Job) (Backend, error) {
		return NewParallel(workers, job.N), nil
	})
}

// BackendEnv names the environment variable consulted when a backend name
// is left empty: it lets the whole test suite (and any embedding binary
// that doesn't thread the knob) run under a non-default backend, which is
// how CI exercises tier-1 tests under every runtime.
const BackendEnv = "SUBGRAPH_BACKEND"

// Canonical resolves a backend name to its canonical form: an empty name
// falls back to $SUBGRAPH_BACKEND and then to "sim"; names without a
// registered factory are errors (so "dist" is rejected on processes with
// no worker topology configured). The env var is read per call — it
// resolves once per solver construction, not on a hot path, and caching
// it would make t.Setenv in tests silently ineffective.
func Canonical(name string) (string, error) {
	if name == "" {
		name = os.Getenv(BackendEnv)
	}
	if name == "" {
		return SimName, nil
	}
	if _, ok := lookup(name); !ok {
		return "", fmt.Errorf("engine: unknown backend %q (registered: %v)", name, Names())
	}
	return name, nil
}

// New builds the named backend for one run. workers ≤ 0 picks the
// backend's default concurrency, decided by the backend's own factory.
func New(name string, workers int, job Job) (Backend, error) {
	canonical, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	f, ok := lookup(canonical)
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (registered: %v)", canonical, Names())
	}
	return f(workers, job)
}
