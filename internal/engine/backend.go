package engine

import (
	"fmt"
	"os"
)

// Backend is the pluggable execution runtime behind the solver phases.
// The algorithm layer (internal/core) is written entirely against this
// interface: a backend owns the vertex space in P contiguous partitions,
// runs partition tasks, and delivers keyed counts emitted during a
// superstep to the partition that owns them. Two implementations exist:
//
//   - "sim" (Cluster): the paper's §7 distributed runtime simulated in
//     shared memory — P goroutine "ranks", per-superstep message buffers,
//     a barrier, and owner-side merges. Message and load counters are
//     faithful to the paper's metrics (Figure 11).
//   - "parallel" (Parallel): a real shared-memory runtime — partitions
//     are oversubscribed over GOMAXPROCS-scaled workers with band
//     stealing, and emitted counts are merged straight into the
//     destination table shard under a per-partition lock, skipping
//     message materialization entirely.
//
// Counts are bit-identical across backends, partition counts, and worker
// counts: every table operation is a commutative uint64 accumulation, so
// delivery order and partition boundaries cannot change a result.
type Backend interface {
	// Name is the backend's canonical name ("sim" or "parallel").
	Name() string
	// P is the number of vertex-ownership partitions (= table shards).
	// Run and Step index tasks and shards by partition.
	P() int
	// Workers is the real execution concurrency. For sim it equals P
	// (one goroutine per simulated rank); for parallel it is the worker
	// pool size, with P partitions multiplexed onto it.
	Workers() int
	// N is the vertex-space size.
	N() int
	// Owner returns the partition owning vertex v (1D block distribution).
	Owner(v uint32) int
	// Range returns the half-open vertex interval [lo, hi) owned by
	// partition w.
	Range(w int) (lo, hi uint32)
	// Run executes f(w) exactly once for every partition w, concurrently.
	// f has exclusive use of partition w's state (table shards, partial
	// slots indexed by w) for the duration of its call.
	Run(f func(w int))
	// Step runs one superstep: produce runs for every partition and emits
	// keyed counts addressed to destination partitions; when Step returns,
	// every emitted count has been accumulated into out's destination
	// shard. The emit closure is only valid during the call and only from
	// the task that received it.
	Step(out *Sharded, produce func(w int, emit func(dst int, m Msg)))
	// Deliver is Step with a custom delivery: each emitted count is handed
	// to consume at its destination partition instead of being merged into
	// a table. consume(dst, m) calls for one dst never run concurrently
	// with each other, so per-partition consumer state needs no locking;
	// calls for different dsts may run concurrently.
	Deliver(produce func(w int, emit func(dst int, m Msg)), consume func(dst int, m Msg))
	// AddLoad charges d projection-function operations to partition w
	// (the paper's Figure 11 load metric).
	AddLoad(w int, d int64)
	// Loads returns a per-worker snapshot of the load counters (partition
	// loads folded onto the worker whose band owns them).
	Loads() []int64
	// LoadStats returns (max, avg, total) over the per-worker loads.
	LoadStats() (max int64, avg float64, total int64)
	// Messages is the number of simulated messages exchanged; a backend
	// that merges tables directly (parallel) reports 0.
	Messages() int64
	// Steals is the number of partition tasks executed by a worker other
	// than the partition's home worker; always 0 for sim.
	Steals() int64
	// Steps is the number of supersteps executed so far (Step and Deliver
	// calls). The count is deterministic for a given plan — it depends only
	// on the solver's phase structure, not on scheduling — and identical
	// across backends, which makes it the natural x-axis for per-superstep
	// telemetry (the paper's Figures 11–15) and a unit of work for the
	// ROADMAP's cost model.
	Steps() int64
}

// Canonical backend names.
const (
	SimName      = "sim"
	ParallelName = "parallel"
)

// BackendEnv names the environment variable consulted when a backend name
// is left empty: it lets the whole test suite (and any embedding binary
// that doesn't thread the knob) run under a non-default backend, which is
// how CI exercises tier-1 tests under both runtimes.
const BackendEnv = "SUBGRAPH_BACKEND"

// Canonical resolves a backend name to its canonical form: an empty name
// falls back to $SUBGRAPH_BACKEND and then to "sim"; unknown names are
// errors. The env var is read per call — it resolves once per solver
// construction, not on a hot path, and caching it would make t.Setenv in
// tests silently ineffective.
func Canonical(name string) (string, error) {
	if name == "" {
		name = os.Getenv(BackendEnv)
	}
	switch name {
	case "", SimName:
		return SimName, nil
	case ParallelName:
		return ParallelName, nil
	}
	return "", fmt.Errorf("engine: unknown backend %q (want %q or %q)", name, SimName, ParallelName)
}

// New builds the named backend over an n-vertex space. workers ≤ 0 picks
// the backend's default concurrency: 4 simulated ranks for sim (the
// historical core default), GOMAXPROCS real workers for parallel.
func New(name string, workers, n int) (Backend, error) {
	canonical, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	switch canonical {
	case ParallelName:
		return NewParallel(workers, n), nil
	default:
		if workers <= 0 {
			workers = 4
		}
		return NewCluster(workers, n), nil
	}
}
