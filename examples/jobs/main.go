// Jobs: drive the async estimation lifecycle end to end — submit jobs,
// watch per-trial progress, coalesce identical concurrent requests onto
// one computation, cancel a running job mid-trial, and fetch a finished
// job's result, which is bit-identical to the synchronous path.
//
// This is the serving-layer counterpart of examples/serve for long
// estimates: instead of holding a connection (or a goroutine) open for
// the whole run, clients submit, poll, and come back for the result.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	subgraph "repro"
)

func main() {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 2})
	defer svc.Close()

	info, err := svc.AddGraph(subgraph.GraphSpec{Standin: "epinions", Scale: 256, Seed: 1, Name: "epinions"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s (%s): %d nodes, %d edges\n\n", info.Name, info.ID, info.Nodes, info.Edges)

	// Submit a long estimate as an async job and watch its progress: the
	// coloring loop reports each finished trial.
	req := subgraph.EstimateRequest{Graph: "epinions", Query: "brain1", Trials: 12, Seed: 7}
	job, err := svc.SubmitEstimateJob(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%s on %s), state %s\n", job.ID, job.Query, job.Graph, job.State)
	for !job.State.Terminal() {
		job, _ = svc.WaitJob(context.Background(), job.ID, 250*time.Millisecond)
		fmt.Printf("  %s: %s, %d/%d trials\n", job.ID, job.State, job.Progress.TrialsDone, job.Progress.TrialsTotal)
	}
	res, err := svc.JobResult(job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: ≈%.1f matches (CV %.3f) in %v\n\n", res.Estimate.Matches, res.Estimate.CV, res.Elapsed.Round(time.Millisecond))

	// The async result is bit-identical to the synchronous path: the sync
	// entry point is a submit-and-wait wrapper over the same job machinery
	// (here it replays from the result cache).
	sync, err := svc.Estimate(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync same request: cached=%v, matches equal: %v\n\n", sync.Cached, sync.Estimate.Matches == res.Estimate.Matches)

	// Identical concurrent submissions coalesce onto one computation
	// (singleflight): one flight runs, both jobs get the result.
	fresh := subgraph.EstimateRequest{Graph: "epinions", Query: "glet1", Trials: 8, Seed: 11}
	a, err := svc.SubmitEstimateJob(fresh)
	if err != nil {
		log.Fatal(err)
	}
	b, err := svc.SubmitEstimateJob(fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s and %s for the same request: coalesced=%v\n", a.ID, b.ID, b.Coalesced)
	b, _ = svc.WaitJob(context.Background(), b.ID, 30*time.Second)
	fmt.Printf("  %s finished %s; stats report %d coalesced job(s)\n\n", b.ID, b.State, svc.Stats().Jobs.Coalesced)

	// Cancel a running job: the context threads all the way into the
	// solver's vertex loops, so the worker frees up within one check
	// interval instead of finishing the remaining trials.
	big, err := svc.SubmitEstimateJob(subgraph.EstimateRequest{Graph: "epinions", Query: "brain3", Trials: 200, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for {
		j, _ := svc.Job(big.ID)
		if j.State == subgraph.JobRunning || j.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	canceled, _ := svc.CancelJob(big.ID)
	fmt.Printf("canceled %s while %s\n", canceled.ID, subgraph.JobRunning)
	for svc.Stats().Scheduler.Running > 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.JobResult(big.ID); errors.Is(err, context.Canceled) {
		fmt.Printf("  result unavailable (%v), worker freed in %v\n", err, time.Since(start).Round(time.Millisecond))
	}
}
