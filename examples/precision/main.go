// Precision: the declarative estimation API end to end — ask for the
// answer quality you need instead of guessing a trial count, refine an
// estimate incrementally with a Session, and watch the service reuse and
// extend cached trials across precision tiers.
//
// Three layers of the same idea:
//
//  1. subgraph.Estimate with a Spec: "reach ±20% at 95% confidence" —
//     the estimator decides the trial count from the observed variance.
//  2. subgraph.Session: one trial at a time, snapshot whenever you like;
//     T calls to Next equal a batch run with Trials: T, bit for bit.
//  3. The service: a loose request, then a tighter one over the same
//     seed — the second run extends the first's cached trials instead of
//     recomputing them, and the stats show the saved compute.
package main

import (
	"context"
	"fmt"
	"log"

	subgraph "repro"
)

func main() {
	g := subgraph.GeneratePowerLaw("demo", 2000, 1.5, 1)
	q, err := subgraph.QueryByName("glet1")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Declare the precision; the estimator spends what it costs.
	target := subgraph.Precision{RelErr: 0.2, Confidence: 0.95}
	est, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{
		Seed: 7,
		Spec: subgraph.Spec{Precision: target, MaxTrials: 256},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive: ≈%.1f matches after %d trials (CV %.3f, observed CI ±%.1f%%)\n",
		est.Matches, est.Trials, est.CV, 100*est.RelCI(0.95))

	// 2. The same thing by hand: an incremental session. Each Next runs
	// one more deterministic coloring; the snapshots narrow as it goes.
	sess, err := subgraph.NewSession(g, q, subgraph.EstimateOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// The floor of 3 trials mirrors the adaptive rule's MinTrials, so this
	// hand-rolled loop stops at the same trial the Spec run did.
	for sess.Trials() < 256 && (sess.Trials() < 3 || !sess.Met(target)) {
		if _, err := sess.Next(context.Background()); err != nil {
			log.Fatal(err)
		}
		if t := sess.Trials(); t&(t-1) == 0 { // print at powers of two
			snap := sess.Estimate()
			fmt.Printf("  session @%3d trials: ≈%.1f matches, CI ±%.1f%%\n",
				t, snap.Matches, 100*snap.RelCI(0.95))
		}
	}
	fmt.Printf("session met ±20%% at %d trials — identical to the adaptive run: %v\n\n",
		sess.Trials(), sess.Estimate().Matches == est.Matches)

	// 3. Through the service: precision tiers share one trial cache.
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 2})
	defer svc.Close()
	if _, err := svc.AddGraph(subgraph.GraphSpec{PowerLawN: 2000, Alpha: 1.5, Seed: 1, Name: "demo"}); err != nil {
		log.Fatal(err)
	}
	loose := subgraph.EstimateRequest{Graph: "demo", Query: "glet1", Seed: 7,
		Precision: &subgraph.PrecisionSpec{RelErr: 0.5, MaxTrials: 256}}
	lres, err := svc.Estimate(context.Background(), loose)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service, loose tier (±50%%): %d trials\n", lres.Estimate.Trials)

	tight := loose
	tight.Precision = &subgraph.PrecisionSpec{RelErr: 0.2, MaxTrials: 256}
	tres, err := svc.Estimate(context.Background(), tight)
	if err != nil {
		log.Fatal(err)
	}
	st := svc.Stats()
	fmt.Printf("service, tight tier (±20%%): %d trials — first %d reused from the loose run\n",
		tres.Estimate.Trials, lres.Estimate.Trials)
	fmt.Printf("stats: cache.extended=%d, precision.earlyStops=%d, precision.trialsSaved=%d\n",
		st.Cache.Extended, st.Precision.EarlyStops, st.Precision.TrialsSaved)
}
