// Serve: run the estimation service in-process and drive it over HTTP the
// way a remote client would — register a graph once, fan the paper's ten
// Figure 8 queries out as one batch, then repeat the batch to show the
// result cache turning recomputation into microsecond replays.
//
// This is the serving-layer counterpart of examples/quickstart: the same
// Estimate kernel, but amortized across requests by the graph registry,
// result cache, and scheduled worker pool.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	subgraph "repro"
)

func main() {
	svc := subgraph.NewService(subgraph.ServiceOptions{Workers: 8})
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("sgserve listening on %s\n\n", base)

	// Register the epinions stand-in once; every request after this reuses
	// the loaded graph through the registry.
	info := postJSON[subgraph.GraphInfo](base+"/v1/graphs",
		`{"standin":"epinions","scale":512,"seed":1,"name":"epinions"}`)
	fmt.Printf("registered %s (%s): %d nodes, %d edges, fingerprint %s\n\n",
		info.Name, info.ID, info.Nodes, info.Edges, info.Fingerprint)

	// One batch: the ten Figure 8 catalog queries, scheduled concurrently
	// across the worker pool. Queries with equal node counts share the
	// pre-drawn colorings, since the seeds align.
	var queries bytes.Buffer
	for i, q := range subgraph.Queries() {
		if i > 0 {
			queries.WriteString(",")
		}
		fmt.Fprintf(&queries, `{"query":%q}`, q.Name)
	}
	batch := fmt.Sprintf(`{"graph":"epinions","trials":3,"seed":7,"queries":[%s]}`, queries.String())

	type batchResp struct {
		Results []struct {
			Query     string  `json:"query"`
			Cached    bool    `json:"cached"`
			ElapsedMS float64 `json:"elapsedMs"`
			Estimate  struct {
				Matches   float64 `json:"Matches"`
				Subgraphs float64 `json:"Subgraphs"`
				CV        float64 `json:"CV"`
			} `json:"estimate"`
			Error string `json:"error"`
		} `json:"results"`
	}

	for round := 1; round <= 2; round++ {
		start := time.Now()
		resp := postJSON[batchResp](base+"/v1/batch", batch)
		wall := time.Since(start)
		fmt.Printf("batch round %d (%d queries in %v):\n", round, len(resp.Results), wall.Round(time.Millisecond))
		var served float64
		for _, r := range resp.Results {
			if r.Error != "" {
				fmt.Printf("  %-8s error: %s\n", r.Query, r.Error)
				continue
			}
			src := "computed"
			if r.Cached {
				src = "cache"
			}
			served += r.ElapsedMS
			fmt.Printf("  %-8s ≈%12.0f matches  (CV %.3f, %8.3f ms, %s)\n",
				r.Query, r.Estimate.Matches, r.Estimate.CV, r.ElapsedMS, src)
		}
		fmt.Printf("  throughput: %.1f estimates/s (sum of per-query latency %.1f ms)\n\n",
			float64(len(resp.Results))/wall.Seconds(), served)
	}

	var stats subgraph.ServiceStats
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("service stats: %d estimates computed, cache %d/%d hit/miss, %d colorings shared, %d workers\n",
		stats.Estimates, stats.Cache.Hits, stats.Cache.Misses, stats.ColoringsShared, stats.Scheduler.Workers)
}

func postJSON[T any](url, body string) T {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	return v
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
