// Motif counting in a protein-interaction-style network — the application
// that motivated color coding in computational biology (Alon et al., and
// the paper's dros/ecoli/brain queries). We build a PPI-like power-law
// graph and estimate the abundance of each biological motif from the
// Figure 8 catalog, reporting the per-motif estimate and its precision.
package main

import (
	"fmt"
	"log"
	"time"

	subgraph "repro"
)

func main() {
	// PPI networks are small (thousands of proteins) with heavy-tailed
	// degree distributions; α≈1.7 mimics the dros/ecoli interactomes.
	g := subgraph.GeneratePowerLaw("ppi", 4000, 1.7, 11)
	st := g.Stats()
	fmt.Printf("interactome: %d proteins, %d interactions, hub degree %d\n\n",
		st.Nodes, st.Edges, st.MaxDeg)

	motifs := []string{"dros", "ecoli1", "ecoli2", "brain1", "brain2", "brain3"}
	fmt.Printf("%-8s %3s %12s %14s %10s %10s\n", "motif", "k", "matches", "subgraphs", "CV", "time")
	for _, name := range motifs {
		q, err := subgraph.QueryByName(name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		est, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{
			Algorithm: subgraph.DB,
			Workers:   4,
			Trials:    5,
			Seed:      23,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d %12.0f %14.0f %10.3f %10v\n",
			name, q.K, est.Matches, est.Subgraphs, est.CV, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\n(matches are ordered embeddings; subgraphs divide out the motif's automorphisms)")
}
