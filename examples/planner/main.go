// Decomposition planning: a treewidth-2 query usually admits several
// decomposition trees, and the paper observed up to 13× runtime spread
// between them (§6). This example enumerates every plan for a query,
// runs the DB solver with each, and shows the cost spread together with
// the plan the §6 heuristic picks.
package main

import (
	"fmt"
	"log"

	subgraph "repro"
)

func main() {
	g, ok := subgraph.Standin("hepph", 512, 9)
	if !ok {
		log.Fatal("hepph stand-in missing")
	}
	q, err := subgraph.QueryByName("satellite") // the paper's Figure 2 query
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("graph: %s (%d nodes, %d edges)\nquery: %s\n\n", st.Name, st.Nodes, st.Edges, q)

	plans, err := subgraph.EnumeratePlans(q)
	if err != nil {
		log.Fatal(err)
	}
	heuristic, err := subgraph.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	colors := subgraph.RandomColoring(g, q, 4)

	fmt.Printf("%d plans; per-plan DB cost under one fixed coloring:\n", len(plans))
	fmt.Printf("%5s %8s %14s %12s\n", "plan", "cycle", "total load", "")
	var best, worst int64
	for i, plan := range plans {
		_, stats, err := subgraph.CountColorful(g, q, colors, subgraph.CountOptions{
			Algorithm: subgraph.DB,
			Workers:   4,
			Plan:      plan,
		})
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if plan.Encode() == heuristic.Encode() {
			mark = "← §6 heuristic's pick"
		}
		score := plan.Score()
		fmt.Printf("%5d %8d %14d %12s\n", i+1, score.LongestCycle, stats.TotalLoad, mark)
		if best == 0 || stats.TotalLoad < best {
			best = stats.TotalLoad
		}
		if stats.TotalLoad > worst {
			worst = stats.TotalLoad
		}
	}
	fmt.Printf("\nplan spread: worst/best = %.1fx ('cycle' is the longest cycle block, the\n", float64(worst)/float64(best))
	fmt.Println("dominant §6 cost factor — shorter is cheaper)")
}
