// Per-vertex motif participation: which vertices sit inside the most motif
// occurrences? This is the per-vertex count FASCIA popularized for
// characterizing biological networks (graphlet-degree-style signatures).
// We count, for every vertex of a skewed social-network stand-in, the
// colorful 4-cycle matches anchored at it, and compare hubs against
// ordinary vertices.
package main

import (
	"fmt"
	"log"
	"sort"

	subgraph "repro"
)

func main() {
	g, ok := subgraph.Standin("epinions", 256, 13)
	if !ok {
		log.Fatal("epinions stand-in missing")
	}
	st := g.Stats()
	fmt.Printf("graph: %s (%d nodes, %d edges, max degree %d)\n",
		st.Name, st.Nodes, st.Edges, st.MaxDeg)

	q, err := subgraph.QueryByName("cycle4")
	if err != nil {
		log.Fatal(err)
	}
	colors := subgraph.RandomColoring(g, q, 99)
	per, anchor, stats, err := subgraph.CountColorfulPerVertex(g, q, colors, -1,
		subgraph.CountOptions{Algorithm: subgraph.DB, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s, anchored at query node %d\n\n", q.Name, anchor)

	type entry struct {
		v   uint32
		cnt uint64
	}
	var top []entry
	var total uint64
	for v, c := range per {
		total += c
		top = append(top, entry{uint32(v), c})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].cnt > top[j].cnt })

	fmt.Println("top motif participants (colorful 4-cycle matches through the vertex):")
	fmt.Printf("%8s %8s %12s %9s\n", "vertex", "degree", "matches", "share")
	for _, e := range top[:10] {
		fmt.Printf("%8d %8d %12d %8.1f%%\n",
			e.v, g.Degree(e.v), e.cnt, 100*float64(e.cnt)/float64(total))
	}
	// Concentration: how much of all motif mass sits on the top 1% of
	// vertices? On heavy-tailed graphs this is the load-imbalance story of
	// the paper in application form.
	onePct := len(top) / 100
	if onePct < 1 {
		onePct = 1
	}
	var topMass uint64
	for _, e := range top[:onePct] {
		topMass += e.cnt
	}
	fmt.Printf("\ntop 1%% of vertices (%d) carry %.1f%% of all matches (total %d)\n",
		onePct, 100*float64(topMass)/float64(total), total)
	fmt.Printf("engine: max/avg rank load = %.2f\n", float64(stats.MaxLoad)/stats.AvgLoad)
}
