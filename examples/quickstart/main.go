// Quickstart: estimate how many 5-cycles a random power-law graph
// contains, and check the estimate against brute force. This is the
// smallest end-to-end use of the library: generate (or load) a data graph,
// pick a query, call Estimate.
package main

import (
	"fmt"
	"log"

	subgraph "repro"
)

func main() {
	// A small Chung-Lu power-law graph (the paper's §9 random-graph model).
	g := subgraph.GeneratePowerLaw("demo", 2000, 1.6, 42)
	st := g.Stats()
	fmt.Printf("data graph: %d nodes, %d edges, max degree %d\n", st.Nodes, st.Edges, st.MaxDeg)

	// The pentagon C5 — the paper's introduction motivates exactly this
	// query: even 5-cycles on a million-edge graph have billions of matches.
	q, err := subgraph.QueryByName("cycle5")
	if err != nil {
		log.Fatal(err)
	}

	// Color coding: 8 independent colorings, each counted exactly by the
	// degree-based (DB) solver on 4 simulated ranks, then scaled by k^k/k!.
	est, err := subgraph.Estimate(g, q, subgraph.EstimateOptions{
		Algorithm: subgraph.DB,
		Workers:   4,
		Trials:    8,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colorful counts per coloring: %v\n", est.Counts)
	fmt.Printf("estimated matches:   %.0f (coefficient of variation %.3f)\n", est.Matches, est.CV)
	fmt.Printf("estimated 5-cycles:  %.0f (matches / aut(C5)=10)\n", est.Subgraphs)

	// On a graph this small we can verify by brute force.
	exact := subgraph.ExactCount(g, q)
	fmt.Printf("exact matches:       %d (estimate off by %+.1f%%)\n",
		exact, 100*(est.Matches-float64(exact))/float64(exact))
}
