// Load balance and scaling: the paper's core systems claim is that the
// degree-based (DB) solver removes the load imbalance that the baseline
// (PS) suffers on skewed graphs. This example reproduces that in
// miniature: one skewed communication graph, one cyclic query, both
// solvers across rank counts, with the per-rank load statistics the paper
// plots in Figure 11.
package main

import (
	"fmt"
	"log"
	"time"

	subgraph "repro"
)

func main() {
	g, ok := subgraph.Standin("enron", 256, 3) // skewed email graph stand-in
	if !ok {
		log.Fatal("enron stand-in missing")
	}
	st := g.Stats()
	fmt.Printf("graph: %s (%d nodes, %d edges, max degree %d)\n",
		st.Name, st.Nodes, st.Edges, st.MaxDeg)

	q, err := subgraph.QueryByName("brain1")
	if err != nil {
		log.Fatal(err)
	}
	colors := subgraph.RandomColoring(g, q, 5)
	fmt.Printf("query: %s\n\n", q.Name)
	fmt.Printf("%5s %4s %12s %14s %14s %12s %10s\n",
		"ranks", "alg", "time", "total load", "max load", "imbalance", "count")

	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, alg := range []subgraph.Algorithm{subgraph.PS, subgraph.DB} {
			start := time.Now()
			count, stats, err := subgraph.CountColorful(g, q, colors, subgraph.CountOptions{
				Algorithm: alg,
				Workers:   workers,
			})
			if err != nil {
				log.Fatal(err)
			}
			imbalance := float64(stats.MaxLoad) / stats.AvgLoad
			fmt.Printf("%5d %4v %12v %14d %14d %11.2fx %10d\n",
				workers, alg, time.Since(start).Round(time.Millisecond),
				stats.TotalLoad, stats.MaxLoad, imbalance, count)
		}
	}
	fmt.Println("\nimbalance = max/avg per-rank load; 1.0 is perfect balance.")
	fmt.Println("DB should show lower total load and better balance at high rank counts.")
}
