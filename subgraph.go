// Package subgraph is the public API of this reproduction of
// "Subgraph Counting: Color Coding Beyond Trees" (Chakaravarthy et al.,
// IPDPS 2016): approximate subgraph counting for treewidth-2 query graphs
// via color coding, with the paper's degree-based (DB) cycle solver and the
// path-splitting (PS) baseline, over pluggable execution backends — the
// paper's simulated distributed engine ("sim", metrics-faithful) or a real
// shared-memory parallel runtime ("parallel"); counts are bit-identical
// across backends.
//
// Typical use:
//
//	g, _ := subgraph.LoadGraph("data.edges")       // or a generator
//	q, _ := subgraph.QueryByName("brain1")          // Figure 8 catalog
//	est, _ := subgraph.Estimate(g, q, subgraph.EstimateOptions{Trials: 5})
//	fmt.Println(est.Matches, est.Subgraphs)
//
// Exact colorful counting under one fixed coloring — the inner kernel — is
// exposed as CountColorful; decomposition plans (§4.1, §6) as Plan /
// EnumeratePlans.
package subgraph

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/query"
)

// Re-exported core types. Graph is the data graph (CSR, immutable), Query
// the small template graph, PlanTree a decomposition tree.
type (
	Graph      = graph.Graph
	GraphStats = graph.Stats
	Query      = query.Graph
	PlanTree   = decomp.Tree
	Algorithm  = core.Algorithm
	CountStats = core.Stats
	Estimation = coloring.Estimate
)

// Algorithms: DB is the paper's degree-based solver, PS the baseline, and
// PSEven the §5.1 even-split baseline variant (an ablation isolating DB's
// balanced splits from its degree-ordering constraint).
const (
	DB     = core.DB
	PS     = core.PS
	PSEven = core.PSEven
)

// LoadGraph reads a SNAP-style whitespace edge list from disk.
func LoadGraph(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// ReadGraph reads a SNAP-style whitespace edge list from r.
func ReadGraph(name string, r io.Reader) (*Graph, error) { return graph.ReadEdgeList(name, r) }

// NewGraph builds a data graph from an explicit undirected edge list
// (self-loops dropped, duplicates merged).
func NewGraph(name string, n int, edges [][2]uint32) *Graph {
	return graph.FromEdges(name, n, edges)
}

// GeneratePowerLaw samples a Chung-Lu graph with truncated power-law
// expected degrees (§9.2 model); alpha ∈ (1,2), heavier tail for smaller
// alpha.
func GeneratePowerLaw(name string, n int, alpha float64, seed int64) *Graph {
	return gen.PowerLawGraph(name, n, alpha, rand.New(rand.NewSource(seed)))
}

// GenerateRMAT samples an R-MAT graph with Graph500 parameters and
// 2^scale vertices (the paper's weak-scaling workload, §8.4).
func GenerateRMAT(name string, scale, edgeFactor int, seed int64) *Graph {
	return gen.RMAT(name, scale, edgeFactor, gen.Graph500, rand.New(rand.NewSource(seed)))
}

// Standin builds the named Table 1 stand-in graph at 1/scale of the
// original size; see DESIGN.md for the calibration. Known names:
// brightkite, condMat, astroph, enron, hepph, slashdot, epinions, orkut,
// roadNetCA, brain.
func Standin(name string, scale int, seed int64) (*Graph, bool) {
	return gen.StandinByName(name, scale, seed)
}

// QueryByName returns a named query: the Figure 8 catalog (dros, ecoli1,
// ecoli2, brain1, brain2, brain3, glet1, glet2, wiki, youtube), the
// Figure 2 "satellite" example, or parametric "cycle<L>", "path<L>",
// "star<L>", "bintree<L>".
func QueryByName(name string) (*Query, error) { return query.ByName(name) }

// Queries returns the ten Figure 8 benchmark queries.
func Queries() []*Query { return query.Catalog() }

// NewQuery builds a query graph from an edge list; it must be connected
// with treewidth ≤ 2 to be countable.
func NewQuery(name string, k int, edges [][2]int) *Query {
	return query.FromEdges(name, k, edges)
}

// ReadQuery parses a query graph from a whitespace edge list ("a b" per
// line, 0-based node ids, '#' comments).
func ReadQuery(name string, r io.Reader) (*Query, error) {
	return query.ReadEdgeList(name, r)
}

// Plan computes the decomposition tree the solver will use: all trees are
// enumerated (§4.1) and ranked by measured cost on a tiny fixed calibration
// graph — the §6 enumerate-and-rank design, independent of the data graph.
func Plan(q *Query) (*PlanTree, error) { return core.PickPlan(q) }

// EnumeratePlans returns every distinct decomposition tree of q (used by
// the Figure 14 heuristic-vs-optimal study).
func EnumeratePlans(q *Query) ([]*PlanTree, error) { return decomp.Enumerate(q) }

// CanonicalBackend resolves an execution backend name to its canonical
// form ("sim" or "parallel"): an empty name falls back to
// $SUBGRAPH_BACKEND, then "sim"; unknown names are errors. Servers should
// validate their configured default with it at startup, so a typo fails
// fast instead of turning every request into a 400.
func CanonicalBackend(name string) (string, error) { return engine.Canonical(name) }

// CountOptions configures one colorful-counting run.
type CountOptions = core.Options

// CountColorful counts the colorful matches of q in g under a fixed
// coloring (one color in [0,q.K) per vertex) — the inner kernel of the
// estimator.
func CountColorful(g *Graph, q *Query, colors []uint8, opts CountOptions) (uint64, CountStats, error) {
	return core.CountColorful(g, q, colors, opts)
}

// CountColorfulContext is CountColorful bounded by ctx: the solver polls
// ctx inside its worker loops, so a canceled or deadline-expired count
// stops mid-run (returning ctx's error) instead of finishing.
func CountColorfulContext(ctx context.Context, g *Graph, q *Query, colors []uint8, opts CountOptions) (uint64, CountStats, error) {
	return core.CountColorfulContext(ctx, g, q, colors, opts)
}

// RandomColoring draws a uniform coloring for use with CountColorful.
func RandomColoring(g *Graph, q *Query, seed int64) []uint8 {
	return coloring.Random(g.N(), q.K, rand.New(rand.NewSource(seed)))
}

// Precision declares a target accuracy for an estimate: stop adding
// trials once the two-sided Confidence-level confidence interval of the
// mean colorful count has half-width at most RelErr of the mean. The
// zero value means "no target".
type Precision = coloring.Precision

// Spec declares the answer quality an estimation should reach, instead of
// an imperative trial count: the estimator keeps running independent
// colorings until the observed variance says the Precision target is met
// (the per-coloring counts are i.i.d., so the needed trial count can be
// decided while running), bounded by MinTrials/MaxTrials and optionally
// by a wall-clock Budget.
type Spec struct {
	// Precision is the declared target; a zero RelErr disables the
	// adaptive path and EstimateOptions.Trials applies as before.
	Precision Precision
	// MinTrials is the earliest trial the stopping rule may fire at
	// (≤ 0 means 3; clamped to ≥ 2).
	MinTrials int
	// MaxTrials caps the adaptive run (≤ 0 means 1024).
	MaxTrials int
	// Budget, when positive, bounds the adaptive run's wall-clock time:
	// once exceeded the estimate is snapshotted at the trials done so far
	// (at least one). Budget stops are a time-based safety valve — unlike
	// rule stops they are not reproducible across machines.
	Budget time.Duration
}

// adaptive converts the spec to the coloring layer's stopping-rule bounds.
func (sp Spec) adaptive() coloring.Adaptive {
	return coloring.Adaptive{Precision: sp.Precision, MinTrials: sp.MinTrials, MaxTrials: sp.MaxTrials}
}

// EstimateOptions configures the multi-trial estimator.
type EstimateOptions struct {
	Algorithm Algorithm
	// Backend selects the execution runtime for the inner solver: "sim"
	// (default; the paper's simulated distributed engine) or "parallel"
	// (real shared-memory workers merging projection tables directly).
	// Estimates are bit-identical across backends and worker counts; only
	// the engine stats differ.
	Backend string
	// Workers is the execution width: simulated ranks under "sim" (≤ 0
	// means 4), real worker goroutines under "parallel" (≤ 0 means
	// GOMAXPROCS).
	Workers int
	// Trials is the fixed number of independent colorings (≤ 0 means 3).
	// It is the compatibility alias for a fixed-trial Spec: when
	// Spec.Precision declares a target, Trials is ignored and the run is
	// adaptive; otherwise results are bit-identical to the pre-Spec API.
	Trials int
	Seed   int64
	Plan   *PlanTree
	// Parallel runs up to this many trials concurrently; results are
	// bit-identical to the serial run. ≤ 1 means serial.
	Parallel int
	// Spec, when its Precision is enabled, switches the run from "run
	// Trials colorings" to "reach this precision": trials are added until
	// the observed confidence interval meets the target (or Spec's
	// bounds fire). An adaptive run that stops at T trials returns an
	// estimate bit-identical to a fixed run with Trials: T at the same
	// seed.
	Spec Spec
}

// Estimate approximates the number of matches (and distinct subgraphs) of
// q in g by color coding: Trials independent colorings, each counted
// exactly and scaled by k^k/k! (§2).
func Estimate(g *Graph, q *Query, opts EstimateOptions) (Estimation, error) {
	return EstimateContext(context.Background(), g, q, opts)
}

// EstimateContext is Estimate bounded by ctx. Cancellation reaches the
// inner counting loops: a canceled or deadline-expired estimation stops
// mid-trial within milliseconds and returns ctx's error, instead of
// running every remaining trial to completion. Results of uncanceled runs
// are bit-identical to Estimate.
func EstimateContext(ctx context.Context, g *Graph, q *Query, opts EstimateOptions) (Estimation, error) {
	copts := coloring.Options{
		Trials:   opts.Trials,
		Seed:     opts.Seed,
		Parallel: opts.Parallel,
		Core: core.Options{
			Algorithm: opts.Algorithm,
			Backend:   opts.Backend,
			Workers:   opts.Workers,
			Plan:      opts.Plan,
		},
	}
	if !opts.Spec.Precision.Enabled() {
		return coloring.RunContext(ctx, g, q, copts)
	}
	sess, err := coloring.NewSession(g, q, copts)
	if err != nil {
		return Estimation{}, err
	}
	stop, err := sess.RunUntil(ctx, opts.Spec.adaptive(), opts.Parallel, opts.Spec.Budget)
	if err != nil {
		return Estimation{}, err
	}
	return sess.EstimateAt(stop), nil
}

// Session is an incremental estimation handle: Next runs one more
// deterministic coloring trial from the seeded trial stream, Estimate
// snapshots the running result (mean, CV, confidence interval via
// Estimation.RelCI) at any point. A Session advanced T times yields an
// Estimation bit-identical to Estimate with Trials: T and the same seed,
// on either backend — incremental refinement never changes the answer a
// batch run would give. Sessions are not safe for concurrent use.
type Session struct {
	inner *coloring.Session
	spec  Spec
	par   int
}

// NewSession starts an incremental estimation of q in g. Trials is
// ignored (the caller decides when to stop — or RunToSpec applies
// opts.Spec); all other options mean what they mean for Estimate.
func NewSession(g *Graph, q *Query, opts EstimateOptions) (*Session, error) {
	inner, err := coloring.NewSession(g, q, coloring.Options{
		Seed: opts.Seed,
		Core: core.Options{
			Algorithm: opts.Algorithm,
			Backend:   opts.Backend,
			Workers:   opts.Workers,
			Plan:      opts.Plan,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner, spec: opts.Spec, par: opts.Parallel}, nil
}

// Next runs one more coloring trial and returns its colorful count.
func (s *Session) Next(ctx context.Context) (uint64, error) { return s.inner.Next(ctx) }

// Trials reports how many trials the session has accumulated.
func (s *Session) Trials() int { return s.inner.Trials() }

// Estimate snapshots the estimate over every trial run so far.
func (s *Session) Estimate() Estimation { return s.inner.Estimate() }

// Met reports whether the accumulated trials genuinely satisfy the given
// precision target: the observed confidence interval at p.Confidence has
// half-width at most p.RelErr of the mean. Unlike the adaptive stopping
// rule — which also fires at a MaxTrials cap so a bounded run always
// resolves — Met never reports an unmet target as met.
func (s *Session) Met(p Precision) bool {
	est := s.inner.Estimate()
	return est.Trials >= 2 && est.RelCI(p.Confidence) <= p.RelErr
}

// RunToSpec advances the session until the options' Spec is met (or its
// bounds fire) and returns the estimate at the stopping trial. Trials
// already accumulated count toward the target, so interleaving Next and
// RunToSpec refines rather than restarts. A session whose Spec declares
// no precision target errors out rather than silently running to the
// default trial cap.
func (s *Session) RunToSpec(ctx context.Context) (Estimation, error) {
	if !s.spec.Precision.Enabled() {
		return Estimation{}, fmt.Errorf("subgraph: RunToSpec on a session with no precision target (Spec.Precision.RelErr is 0)")
	}
	stop, err := s.inner.RunUntil(ctx, s.spec.adaptive(), s.par, s.spec.Budget)
	if err != nil {
		return Estimation{}, err
	}
	return s.inner.EstimateAt(stop), nil
}

// CountColorfulPerVertex counts colorful matches grouped by the data
// vertex that the anchor query node maps to (per-vertex motif counts, as
// in FASCIA). anchor must belong to the plan's root block; pass -1 to let
// the solver choose. Returns the counts, the anchor used, and engine stats.
func CountColorfulPerVertex(g *Graph, q *Query, colors []uint8, anchor int, opts CountOptions) ([]uint64, int, CountStats, error) {
	return core.CountColorfulPerVertex(g, q, colors, anchor, opts)
}

// ExactCount counts matches by brute force — exponential in q; only for
// validation on small graphs.
func ExactCount(g *Graph, q *Query) uint64 { return exact.Matches(g, q) }

// ScaleFactor returns k^k/k!, the color-coding normalization constant.
func ScaleFactor(k int) float64 { return coloring.ScaleFactor(k) }
