#!/usr/bin/env bash
# Benchmark the sgserve stack end to end with cmd/sgload, and gate CI on
# throughput regressions.
#
#   scripts/bench.sh           run, write BENCH_pr10.json, fail if the
#                              serving-path (parallel backend) throughput
#                              drops more than 25% below
#                              scripts/bench_baseline.json, if the
#                              solver-bound parallel run fails to clear
#                              1.15x the PR8 kernel baseline (the flat
#                              signature-major layout's win), or if the
#                              3-replica cluster fails its scaling floor
#   scripts/bench.sh -update   run and overwrite the baseline instead
#
# Nine runs with identical seeded workloads, merged into one BENCH_pr10.json
# at the repo root:
#
#   serving.{parallel,sim}  hit-ratio 0.98 — the cache/registry/jobs hot
#                           path, where the sharded structures and the
#                           split singleflight index earn their keep. The
#                           parallel-backend run is the regression gate.
#   serving.durable         the same parallel-backend serving mix with a
#                           -data-dir and -fsync interval: every cache
#                           store also lands in the append-only trial
#                           log. The async appender must keep durability
#                           off the hot path — this run is gated at ≥95%
#                           of the in-memory serving.parallel throughput
#                           measured in the same invocation.
#   solver.{parallel,sim,dist}  hit-ratio 0 — every request runs the
#                           solver, so this trio compares the execution
#                           backends themselves: the parallel backend
#                           merges projection tables directly and must
#                           come out ≥ the sim backend, which pays the
#                           simulated message exchange on every
#                           superstep; the dist run pays real gob
#                           framing to two sgworker processes over
#                           loopback TCP, so its gap over sim prices the
#                           wire. A correctness gate pins a dist
#                           estimate to the sim estimate bit for bit
#                           before any dist throughput is recorded.
#   precision               mixed precision tiers (fixed-trial, ±10%, ±2%)
#                           over shared hot seeds — the declarative API's
#                           economy: adaptive early stops (trialsSaved)
#                           and trial-granular cache extensions
#                           (cache.extended) must both be nonzero.
#   serving.{cluster1,cluster3}  the serving mix against the cluster tier:
#                           one single-member "cluster" (routing active,
#                           every key home) versus three replicas with
#                           sgload round-robining across all entry
#                           points. The 3-replica aggregate must clear
#                           BENCH_CLUSTER_GAIN x the single-replica rate
#                           — 2.0 on multicore boxes where each replica
#                           gets its own cores; on starved runners (< 6
#                           cores) the default drops to an anti-collapse
#                           floor of 0.35x, because three processes
#                           time-slicing one core cannot scale (and most
#                           requests pay a second hop) — the gate's job
#                           there is only to prove forwarding does not
#                           destroy throughput.
#
# The server runs under a pinned GOMAXPROCS so runs are comparable across
# machines with different core counts; override via BENCH_* env vars. On
# single-core builders the backend gap is the message-machinery overhead
# only — the parallel backend's multicore scaling needs real cores to show.
# jq is required for the merge and the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-}"
DUR="${BENCH_DURATION:-5s}"
WARMUP="${BENCH_WARMUP:-2s}"
CONC="${BENCH_CONCURRENCY:-32}"
SOLVER_CONC="${BENCH_SOLVER_CONCURRENCY:-8}"
SRV_GOMAXPROCS="${BENCH_SERVER_GOMAXPROCS:-4}"
SRV_WORKERS="${BENCH_SERVER_WORKERS:-4}"
OUT="BENCH_pr10.json"
# Profiles and other non-JSON outputs land here, never at the repo root
# (the directory is gitignored; CI uploads it as an artifact).
ART_DIR="${BENCH_ARTIFACT_DIR:-bench_artifacts}"
# Floor for the durable serving run, as a fraction of the same-run
# in-memory serving.parallel throughput. The ISSUE bar is a ≤5% cost for
# fsync-interval durability; override for noisier machines.
DURABLE_FLOOR="${BENCH_DURABLE_FLOOR:-0.95}"
BASELINE="scripts/bench_baseline.json"
# The solver-bound parallel run doubles as the profiling window: its CPU
# profile lands here (CI uploads it as an artifact). Empty disables.
PPROF_OUT="${BENCH_PPROF_OUT:-$ART_DIR/bench_cpu.pprof}"
# Floor for the solver-bound parallel run: the flat signature-major table
# layout (PR 9) must hold its ≥15% throughput win over the PR8 hash-table
# kernel, measured on the same box class that recorded the baseline.
# Override BENCH_KERNEL_BASELINE when the runner class changes.
KERNEL_BASELINE_RPS="${BENCH_KERNEL_BASELINE:-600.6}"
KERNEL_GAIN="${BENCH_KERNEL_GAIN:-1.15}"
# Cluster scaling floor: 3-replica aggregate vs single-replica, same mix.
# Core-aware default — the 2x bar needs real cores for three server
# processes; a starved runner only has to prove forwarding isn't ruinous.
CORES=$(nproc 2>/dev/null || echo 1)
if [ -n "${BENCH_CLUSTER_GAIN:-}" ]; then
  CLUSTER_GAIN="$BENCH_CLUSTER_GAIN"
elif [ "$CORES" -ge 6 ]; then
  CLUSTER_GAIN=2.0
else
  CLUSTER_GAIN=0.35
  echo "bench: NOTE: only $CORES core(s) — cluster gate relaxed to ${CLUSTER_GAIN}x (anti-collapse floor, not a scaling proof; override BENCH_CLUSTER_GAIN)"
fi
# Threshold: fail when serving throughput < 75% of baseline. Generous on
# purpose — shared runners are noisy; this catches structural regressions
# (an accidental global lock, an O(n) scan on the hot path), not jitter.
DROP_FRACTION=0.75

mkdir -p "$ART_DIR"

go build -o /tmp/sgserve ./cmd/sgserve
go build -o /tmp/sgload ./cmd/sgload
go build -o /tmp/sgworker ./cmd/sgworker

SERVER_PID=""
WORKER_PIDS=()
CLUSTER_PIDS=()
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  for p in "${WORKER_PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
  for p in "${CLUSTER_PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT

# Two real worker processes back the dist runs; rank order = address order.
DIST_WORKERS=""
start_workers() {
  local i addrfile addrs=()
  for i in 1 2; do
    addrfile=$(mktemp -u)
    /tmp/sgworker -addr 127.0.0.1:0 -addr-file "$addrfile" -log-level warn &
    WORKER_PIDS+=($!)
    for _ in $(seq 1 100); do [ -s "$addrfile" ] && break; sleep 0.1; done
    if [ ! -s "$addrfile" ]; then
      echo "bench: sgworker $i never wrote its address" >&2
      exit 1
    fi
    addrs+=("$(cat "$addrfile")")
    rm -f "$addrfile"
  done
  DIST_WORKERS="${addrs[0]},${addrs[1]}"
}

PROFILE=""
SERVER_EXTRA=() # extra sgserve flags for the next run_one (e.g. -data-dir)
run_one() { # backend label outfile conc hitratio [extra sgload flags...]
  local backend="$1" label="$2" outfile="$3" conc="$4" hitratio="$5"
  shift 5
  local addrfile pprof_addrfile="" curl_pid=""
  addrfile=$(mktemp -u)
  local server_args=(-addr 127.0.0.1:0 -addr-file "$addrfile" -workers "$SRV_WORKERS" -backend "$backend")
  if [ "$backend" = dist ]; then
    server_args+=(-dist-workers "$DIST_WORKERS")
  fi
  if [ ${#SERVER_EXTRA[@]} -gt 0 ]; then
    server_args+=("${SERVER_EXTRA[@]}")
  fi
  if [ -n "$PROFILE" ] && [ -n "$PPROF_OUT" ]; then
    pprof_addrfile=$(mktemp -u)
    server_args+=(-pprof-addr 127.0.0.1:0 -pprof-addr-file "$pprof_addrfile")
  fi
  GOMAXPROCS="$SRV_GOMAXPROCS" /tmp/sgserve "${server_args[@]}" >/dev/null 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do [ -s "$addrfile" ] && break; sleep 0.1; done
  if [ ! -s "$addrfile" ]; then
    echo "bench: sgserve never wrote its address" >&2
    exit 1
  fi
  if [ -n "$pprof_addrfile" ]; then
    # Profile the whole warmup+measured window; integer-second durations
    # only (the defaults are). The fetch runs alongside the load and is
    # collected before the server goes down.
    local psecs=$(( ${WARMUP%s} + ${DUR%s} ))
    curl -fsS -o "$PPROF_OUT" \
      "http://$(cat "$pprof_addrfile")/debug/pprof/profile?seconds=$psecs" &
    curl_pid=$!
  fi
  /tmp/sgload -addr "$(cat "$addrfile")" -c "$conc" -duration "$DUR" -warmup "$WARMUP" \
    -graphs 4 -graph-n 1000 -queries path3,cycle4 -hot 8 -hit-ratio "$hitratio" -seed 1 \
    -backend "$backend" -label "$label" -out "$outfile" "$@"
  if [ -n "$curl_pid" ]; then
    if wait "$curl_pid"; then
      echo "bench: wrote CPU profile to $PPROF_OUT"
    else
      echo "bench: WARNING: pprof capture failed" >&2
    fi
  fi
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  rm -f "$addrfile" ${pprof_addrfile:+"$pprof_addrfile"}
}

# Cluster replicas must know the full membership before binding (the
# ring is a pure function of it), so they get fixed random ports with a
# retry on collision instead of -addr :0.
CLUSTER_MEMBERS=""
start_cluster_replicas() { # n
  local n="$1" ports=() port i ok
  CLUSTER_PIDS=()
  for i in $(seq 1 "$n"); do
    port=$((20000 + RANDOM % 20000))
    case " ${ports[*]-} " in *" $port "*) return 1 ;; esac
    ports+=("$port")
  done
  CLUSTER_MEMBERS=$(printf "127.0.0.1:%s," "${ports[@]}")
  CLUSTER_MEMBERS="${CLUSTER_MEMBERS%,}"
  for port in "${ports[@]}"; do
    GOMAXPROCS="$SRV_GOMAXPROCS" /tmp/sgserve -addr "127.0.0.1:$port" \
      -self "127.0.0.1:$port" -peers "$CLUSTER_MEMBERS" \
      -workers "$SRV_WORKERS" -backend parallel -log-level warn >/dev/null 2>&1 &
    CLUSTER_PIDS+=($!)
  done
  for port in "${ports[@]}"; do
    ok=""
    for _ in $(seq 1 100); do
      curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1 && { ok=1; break; }
      sleep 0.1
    done
    if [ -z "$ok" ]; then
      stop_cluster_replicas
      return 1
    fi
  done
}

stop_cluster_replicas() {
  for p in "${CLUSTER_PIDS[@]}"; do
    kill "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
  done
  CLUSTER_PIDS=()
}

run_cluster() { # n label outfile
  local n="$1" label="$2" outfile="$3" formed=""
  for _ in 1 2 3 4 5; do
    start_cluster_replicas "$n" && { formed=1; break; }
    echo "bench: cluster formation failed (port collision?), retrying" >&2
  done
  if [ -z "$formed" ]; then
    echo "bench: $n-replica cluster never formed after 5 attempts" >&2
    exit 1
  fi
  /tmp/sgload -endpoints "$CLUSTER_MEMBERS" -c "$CONC" -duration "$DUR" -warmup "$WARMUP" \
    -graphs 4 -graph-n 1000 -queries path3,cycle4 -hot 8 -hit-ratio 0.98 -seed 1 \
    -backend parallel -label "$label" -out "$outfile"
  stop_cluster_replicas
}

run_one parallel serving-parallel /tmp/bench_serving_parallel.json "$CONC" 0.98
run_one sim      serving-sim      /tmp/bench_serving_sim.json      "$CONC" 0.98
# Durable serving: identical mix, but every miss also appends to the WAL.
DURABLE_DIR=$(mktemp -d)
SERVER_EXTRA=(-data-dir "$DURABLE_DIR" -fsync interval)
run_one parallel serving-durable /tmp/bench_serving_durable.json "$CONC" 0.98
SERVER_EXTRA=()
rm -rf "$DURABLE_DIR"
PROFILE=1
run_one parallel solver-parallel /tmp/bench_solver_parallel.json "$SOLVER_CONC" 0
PROFILE=""
run_one sim      solver-sim       /tmp/bench_solver_sim.json       "$SOLVER_CONC" 0

# Dist correctness gate, then the dist throughput run. The gate serves the
# same estimate request through a sim server and a dist server (two real
# sgworker processes) and requires bit-identical matches and per-trial
# counts — a dist backend that is fast but drifts is a failure, not a
# data point.
start_workers
gate_req='{"graph":"enron","query":"cycle5","trials":3,"seed":11}'
gate_one() { # backend [extra sgserve flags...]
  local backend="$1"
  shift
  local addrfile pid base
  addrfile=$(mktemp -u)
  /tmp/sgserve -addr 127.0.0.1:0 -addr-file "$addrfile" -preload enron -scale 512 -seed 1 \
    -backend "$backend" "$@" >/dev/null 2>&1 &
  pid=$!
  for _ in $(seq 1 100); do [ -s "$addrfile" ] && break; sleep 0.1; done
  base="http://$(cat "$addrfile")"
  for _ in $(seq 1 100); do curl -fsS "$base/healthz" >/dev/null 2>&1 && break; sleep 0.1; done
  curl -fsS "$base/v1/estimate" -d "$gate_req"
  kill "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  rm -f "$addrfile"
}
sim_est=$(gate_one sim | jq -c '{matches: .Matches, counts: .Counts}')
dist_est=$(gate_one dist -dist-workers "$DIST_WORKERS" | jq -c '{matches: .Matches, counts: .Counts}')
if [ -z "$sim_est" ] || [ "$sim_est" != "$dist_est" ]; then
  echo "FAIL: dist estimate diverged from sim:" >&2
  echo "  sim:  $sim_est" >&2
  echo "  dist: $dist_est" >&2
  exit 1
fi
echo "bench: dist-vs-sim gate OK ($sim_est)"
run_one dist solver-dist /tmp/bench_solver_dist.json "$SOLVER_CONC" 0
# Precision mix: 40% fixed-trial, 30% loose (±10%), 30% tight (±2%)
# requests over shared hot seeds, so tiers extend each other's cached
# trials instead of recomputing them.
run_one parallel precision-mix /tmp/bench_precision.json "$SOLVER_CONC" 0.9 \
  -trials 3 -precision-mix "0:0.4,0.1:0.3,0.02:0.3" -max-trials 64
# Cluster serving tier: single-member control, then three replicas with
# round-robined entry.
run_cluster 1 serving-cluster1 /tmp/bench_cluster1.json
run_cluster 3 serving-cluster3 /tmp/bench_cluster3.json

jq -n --argjson conc "$CONC" --argjson sconc "$SOLVER_CONC" \
  --slurpfile sp /tmp/bench_serving_parallel.json --slurpfile ss /tmp/bench_serving_sim.json \
  --slurpfile sd /tmp/bench_serving_durable.json \
  --slurpfile vp /tmp/bench_solver_parallel.json --slurpfile vs /tmp/bench_solver_sim.json \
  --slurpfile vd /tmp/bench_solver_dist.json \
  --slurpfile pm /tmp/bench_precision.json \
  --slurpfile c1 /tmp/bench_cluster1.json --slurpfile c3 /tmp/bench_cluster3.json '{
    bench: "sgserve serving (in-memory + durable WAL + consistent-hash cluster) + solver paths per execution backend (incl. dist over two worker processes), plus precision-mix traffic (closed-loop sgload)",
    concurrency: $conc,
    solverConcurrency: $sconc,
    serving: { parallel: $sp[0], sim: $ss[0], durable: $sd[0], cluster1: $c1[0], cluster3: $c3[0] },
    solver:  { parallel: $vp[0], sim: $vs[0], dist: $vd[0] },
    precision: $pm[0]
  }' >"$OUT"

summary() {
  jq -r '
    def row: "\(.label): \(.throughputRps|floor) req/s  p50 \(.latencyMs.p50Ms)ms  p99 \(.latencyMs.p99Ms)ms  jobs lockWait \(.server.jobs.lockWaitMs|floor)ms  sf lockWait \(.server.jobs.singleflight.lockWaitMs|floor)ms";
    (.serving.parallel | row), (.serving.sim | row), (.serving.durable | row), (.serving.cluster1 | row), (.serving.cluster3 | row), (.solver.parallel | row), (.solver.sim | row), (.solver.dist | row), (.precision | row),
    "precision-mix: \(.precision.server.precision.requests) targeted requests, \(.precision.server.precision.earlyStops) early stops, \(.precision.trialsSaved) trials saved, \(.precision.server.cache.extended) cache extensions (rate \(.precision.extendedRate))",
    "cluster3: forward rate \(.serving.cluster3.cluster.forwardRate), server hit rate \(.serving.cluster3.cluster.cacheHitRate), \(.serving.cluster3.cluster.forwards) forwards, \(.serving.cluster3.cluster.forwardErrors) forward errors, \(.serving.cluster3.cluster.localFallbacks) local fallbacks"
  ' "$OUT"
}
echo "bench: wrote $OUT"
summary

saved=$(jq -r '.precision.trialsSaved // 0' "$OUT")
extended=$(jq -r '.precision.server.cache.extended // 0' "$OUT")
if [ "$saved" -lt 1 ] || [ "$extended" -lt 1 ]; then
  echo "FAIL: precision-mix run saved no compute (trialsSaved=$saved, cache.extended=$extended)" >&2
  echo "      the adaptive stopping / trial-granular cache path is not engaging" >&2
  exit 1
fi
echo "bench: precision mix saved $saved trials, $extended cache extensions"

par=$(jq -r '.solver.parallel.throughputRps' "$OUT")
sim=$(jq -r '.solver.sim.throughputRps' "$OUT")
dst=$(jq -r '.solver.dist.throughputRps' "$OUT")
echo "bench: solver-bound backends: parallel $par req/s vs sim $sim req/s vs dist $dst req/s"
if [ "$(jq -n --argjson p "$par" --argjson s "$sim" '$p >= $s')" != "true" ]; then
  # Warn rather than fail: on loaded single-core runners the gap is small
  # enough for scheduling noise to flip individual runs.
  echo "bench: WARNING: parallel backend below sim on this run" >&2
fi

# Kernel gate: the flat-layout solver must beat the PR8 hash-table kernel
# by KERNEL_GAIN on the solver-bound parallel mix. An absolute floor (not
# a same-run ratio) because the thing being priced — per-entry hashing vs
# dense scans — does not cancel out within one run.
kernel_floor=$(jq -n --argjson b "$KERNEL_BASELINE_RPS" --argjson g "$KERNEL_GAIN" '$b * $g')
echo "bench: solver-bound parallel $par req/s vs kernel floor $kernel_floor req/s (${KERNEL_GAIN}x of PR8 baseline $KERNEL_BASELINE_RPS)"
if [ "$(jq -n --argjson p "$par" --argjson f "$kernel_floor" '$p >= $f')" != "true" ]; then
  echo "FAIL: solver-bound parallel throughput $par req/s is below ${KERNEL_GAIN}x the PR8 kernel baseline ($KERNEL_BASELINE_RPS req/s)" >&2
  echo "      the flat signature-major layout lost its win (or the runner class changed — override BENCH_KERNEL_BASELINE)" >&2
  exit 1
fi

# Durability tax gate: the WAL appender runs off the hot path, so the
# durable serving run must stay within (1 - DURABLE_FLOOR) of the
# in-memory run measured moments earlier on the same machine. Same-run
# comparison (not the saved baseline) so machine class cancels out.
mem=$(jq -r '.serving.parallel.throughputRps' "$OUT")
dur=$(jq -r '.serving.durable.throughputRps' "$OUT")
appends=$(jq -r '.serving.durable.server.durable.appends // 0' "$OUT")
echo "bench: serving durable $dur req/s vs in-memory $mem req/s ($appends WAL appends; floor ${DURABLE_FLOOR}x)"
if [ "$appends" -lt 1 ]; then
  echo "FAIL: durable serving run appended nothing — the WAL was not engaged" >&2
  exit 1
fi
if [ "$(jq -n --argjson d "$dur" --argjson m "$mem" --argjson f "$DURABLE_FLOOR" '$d >= $f * $m')" != "true" ]; then
  echo "FAIL: durability costs more than $(jq -n --argjson f "$DURABLE_FLOOR" '100*(1-$f)')% of serving throughput" >&2
  echo "      the appender is on the hot path somewhere (fsync or encode under a service lock?)" >&2
  exit 1
fi

# Cluster gate: the 3-replica run must actually route (forwards > 0,
# no transport failures on an all-healthy loopback cluster) and its
# aggregate throughput must clear the core-aware scaling floor over the
# single-member control measured moments earlier.
c1=$(jq -r '.serving.cluster1.throughputRps' "$OUT")
c3=$(jq -r '.serving.cluster3.throughputRps' "$OUT")
cfwd=$(jq -r '.serving.cluster3.cluster.forwards // 0' "$OUT")
cfwderr=$(jq -r '.serving.cluster3.cluster.forwardErrors // 0' "$OUT")
cfallback=$(jq -r '.serving.cluster3.cluster.localFallbacks // 0' "$OUT")
echo "bench: cluster serving: 3 replicas $c3 req/s vs 1 replica $c1 req/s (floor ${CLUSTER_GAIN}x on $CORES cores; $cfwd forwards, $cfwderr errors, $cfallback fallbacks)"
if [ "$cfwd" -lt 1 ]; then
  echo "FAIL: 3-replica run never forwarded — the ring routed nothing" >&2
  exit 1
fi
if [ "$cfwderr" -gt 0 ] || [ "$cfallback" -gt 0 ]; then
  echo "FAIL: healthy loopback cluster saw $cfwderr forward errors, $cfallback local fallbacks" >&2
  exit 1
fi
if [ "$(jq -n --argjson a "$c3" --argjson b "$c1" --argjson g "$CLUSTER_GAIN" '$a >= $g * $b')" != "true" ]; then
  echo "FAIL: 3-replica throughput $c3 req/s is below ${CLUSTER_GAIN}x the single-replica rate ($c1 req/s)" >&2
  echo "      (on multicore runners this means the cluster tier is not adding capacity;" >&2
  echo "       on starved runners override BENCH_CLUSTER_GAIN)" >&2
  exit 1
fi

if [ "$MODE" = "-update" ]; then
  cp "$OUT" "$BASELINE"
  echo "bench: baseline updated at $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench: no baseline at $BASELINE (run scripts/bench.sh -update to create one)" >&2
  exit 1
fi
cur=$(jq -r '.serving.parallel.throughputRps' "$OUT")
base=$(jq -r '.serving.parallel.throughputRps' "$BASELINE")
ok=$(jq -n --argjson cur "$cur" --argjson base "$base" --argjson f "$DROP_FRACTION" '$cur >= $f * $base')
echo "bench: serving throughput $cur req/s vs baseline $base req/s (floor: ${DROP_FRACTION}x)"
if [ "$ok" != "true" ]; then
  echo "FAIL: throughput dropped more than $(jq -n --argjson f "$DROP_FRACTION" '100*(1-$f)')% below the baseline" >&2
  echo "      (if the baseline machine class changed, regenerate with scripts/bench.sh -update)" >&2
  exit 1
fi
echo "bench OK"
