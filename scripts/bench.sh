#!/usr/bin/env bash
# Benchmark the sgserve serving path end to end with cmd/sgload, and gate
# CI on throughput regressions.
#
#   scripts/bench.sh           run, write BENCH_pr3.json, fail if the
#                              sharded run's throughput drops more than
#                              25% below scripts/bench_baseline.json
#   scripts/bench.sh -update   run and overwrite the baseline instead
#
# Two runs with the identical seeded workload: the server's default shard
# count ("sharded") and -shards 1 ("unsharded"), merged into one
# BENCH_pr3.json at the repo root. The interesting numbers are
# throughputRps / latencyMs per run and the server.*.lockWaitMs counters:
# lock wait is where a too-coarse lock shows up first — on single-core
# builders the two runs' throughput converges (a blocked goroutine costs
# nothing when only one can run), while the lock-wait gap stays visible.
#
# The server runs under a pinned GOMAXPROCS so runs are comparable across
# machines with different core counts; override via BENCH_* env vars.
# Requires curl-less operation: sgload does its own health polling. jq is
# required for the merge and the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-}"
DUR="${BENCH_DURATION:-5s}"
WARMUP="${BENCH_WARMUP:-2s}"
CONC="${BENCH_CONCURRENCY:-32}"
SRV_GOMAXPROCS="${BENCH_SERVER_GOMAXPROCS:-4}"
SRV_WORKERS="${BENCH_SERVER_WORKERS:-4}"
OUT="BENCH_pr3.json"
BASELINE="scripts/bench_baseline.json"
# Threshold: fail when sharded throughput < 75% of baseline. Generous on
# purpose — shared runners are noisy; this catches structural regressions
# (an accidental global lock, an O(n) scan on the hot path), not jitter.
DROP_FRACTION=0.75

go build -o /tmp/sgserve ./cmd/sgserve
go build -o /tmp/sgload ./cmd/sgload

SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

run_one() { # shards label outfile
  local shards="$1" label="$2" outfile="$3"
  local addrfile
  addrfile=$(mktemp -u)
  GOMAXPROCS="$SRV_GOMAXPROCS" /tmp/sgserve -addr 127.0.0.1:0 -addr-file "$addrfile" \
    -workers "$SRV_WORKERS" -shards "$shards" >/dev/null 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do [ -s "$addrfile" ] && break; sleep 0.1; done
  if [ ! -s "$addrfile" ]; then
    echo "bench: sgserve never wrote its address" >&2
    exit 1
  fi
  /tmp/sgload -addr "$(cat "$addrfile")" -c "$CONC" -duration "$DUR" -warmup "$WARMUP" \
    -graphs 4 -graph-n 1000 -queries path3,cycle4 -hot 8 -hit-ratio 0.98 -seed 1 \
    -label "$label" -out "$outfile"
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  rm -f "$addrfile"
}

run_one 0 sharded /tmp/bench_sharded.json
run_one 1 unsharded /tmp/bench_unsharded.json

jq -n --argjson conc "$CONC" \
  --slurpfile s /tmp/bench_sharded.json --slurpfile u /tmp/bench_unsharded.json '{
    bench: "sgserve serving path (closed-loop sgload)",
    concurrency: $conc,
    sharded: $s[0],
    unsharded: $u[0]
  }' >"$OUT"

summary() {
  jq -r '"\(.sharded.label):   \(.sharded.throughputRps|floor) req/s  p50 \(.sharded.latencyMs.p50Ms)ms  p99 \(.sharded.latencyMs.p99Ms)ms  lockWait reg \(.sharded.server.registry.lockWaitMs|floor)ms cache \(.sharded.server.cache.lockWaitMs|floor)ms jobs \(.sharded.server.jobs.lockWaitMs|floor)ms\n\(.unsharded.label): \(.unsharded.throughputRps|floor) req/s  p50 \(.unsharded.latencyMs.p50Ms)ms  p99 \(.unsharded.latencyMs.p99Ms)ms  lockWait reg \(.unsharded.server.registry.lockWaitMs|floor)ms cache \(.unsharded.server.cache.lockWaitMs|floor)ms jobs \(.unsharded.server.jobs.lockWaitMs|floor)ms"' "$OUT"
}
echo "bench: wrote $OUT"
summary

if [ "$MODE" = "-update" ]; then
  cp "$OUT" "$BASELINE"
  echo "bench: baseline updated at $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench: no baseline at $BASELINE (run scripts/bench.sh -update to create one)" >&2
  exit 1
fi
cur=$(jq -r '.sharded.throughputRps' "$OUT")
base=$(jq -r '.sharded.throughputRps' "$BASELINE")
ok=$(jq -n --argjson cur "$cur" --argjson base "$base" --argjson f "$DROP_FRACTION" '$cur >= $f * $base')
echo "bench: sharded throughput $cur req/s vs baseline $base req/s (floor: ${DROP_FRACTION}x)"
if [ "$ok" != "true" ]; then
  echo "FAIL: throughput dropped more than $(jq -n --argjson f "$DROP_FRACTION" '100*(1-$f)')% below the baseline" >&2
  echo "      (if the baseline machine class changed, regenerate with scripts/bench.sh -update)" >&2
  exit 1
fi
echo "bench OK"
