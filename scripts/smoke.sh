#!/usr/bin/env bash
# Smoke-test the sgserve HTTP API end to end: start a server, submit an
# async job, poll it to completion, and assert the estimate matches the
# golden value (enron stand-in at scale 512 seed 1, glet1, 3 trials,
# seed 7 — deterministic by construction). Also asserts the async result
# body is byte-identical to the synchronous /v1/estimate body, that a
# precision-targeted job stops at its golden trial count while reusing the
# 3-trial job's cached trials (the counts prefix must replay bit-identical),
# and that DELETE cancels a long-running job. A durability pass
# kill -9s a -data-dir server mid-traffic and requires the restarted
# process to serve the same golden bytes purely from WAL replay — zero
# fresh solver runs. A final cluster pass starts three replicas with
# consistent-hash routing, asserts the goldens are bit-identical through
# every entry replica (with real forwarding happening), then kill -9s one
# replica and requires the survivors to keep answering the goldens
# without hanging. Requires curl and jq.
set -euo pipefail

GOLDEN_MATCHES="120868.05555555558"
GOLDEN_COUNTS="[4418,8064,1442]"
# Adaptive golden: same graph/query/seed with a ±50% @ 90% target stops at
# 4 trials; its first 3 counts are exactly the fixed-trial goldens above.
GOLDEN_PREC_TRIALS="4"
GOLDEN_PREC_MATCHES="136992.18750000003"

cd "$(dirname "$0")/.."
go build -o /tmp/sgserve ./cmd/sgserve
# Bind port 0 and read the actual address back: a hardcoded port collides
# with concurrent jobs on shared CI runners.
ADDR_FILE=$(mktemp -u)
DIST_ADDR_FILE=$(mktemp -u)
W1_ADDR_FILE=$(mktemp -u)
W2_ADDR_FILE=$(mktemp -u)
DUR_ADDR_FILE=$(mktemp -u)
DATA_DIR=$(mktemp -d)
SERVER_PID="" DIST_PID="" W1_PID="" W2_PID="" DUR_PID=""
C1_PID="" C2_PID="" C3_PID=""
cleanup() {
  for p in "$SERVER_PID" "$DIST_PID" "$W1_PID" "$W2_PID" "$DUR_PID" \
           "$C1_PID" "$C2_PID" "$C3_PID"; do
    [ -n "$p" ] && kill "$p" 2>/dev/null || true
  done
  rm -f "$ADDR_FILE" "$DIST_ADDR_FILE" "$W1_ADDR_FILE" "$W2_ADDR_FILE" "$DUR_ADDR_FILE"
  rm -rf "$DATA_DIR"
}
trap cleanup EXIT

/tmp/sgserve -addr 127.0.0.1:0 -addr-file "$ADDR_FILE" -preload enron -scale 512 -seed 1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$ADDR_FILE" ] && break
  sleep 0.1
done
BASE="http://$(cat "$ADDR_FILE")"

for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

req='{"graph":"enron","query":"glet1","trials":3,"seed":7}'

# Submit → poll (long-poll) → fetch result.
job=$(curl -fsS "$BASE/v1/jobs" -d "$req")
id=$(jq -r .id <<<"$job")
echo "submitted job $id: $(jq -r .state <<<"$job")"

state=""
for _ in $(seq 1 60); do
  state=$(curl -fsS "$BASE/v1/jobs/$id?wait=2s" | jq -r .state)
  [ "$state" = queued ] || [ "$state" = running ] || break
done
if [ "$state" != done ]; then
  echo "FAIL: job $id ended in state $state" >&2
  exit 1
fi

async_body=$(curl -fsS "$BASE/v1/jobs/$id/result")
matches=$(jq -r .Matches <<<"$async_body")
counts=$(jq -c .Counts <<<"$async_body")
if [ "$matches" != "$GOLDEN_MATCHES" ] || [ "$counts" != "$GOLDEN_COUNTS" ]; then
  echo "FAIL: estimate drifted from golden:" >&2
  echo "  matches $matches (want $GOLDEN_MATCHES)" >&2
  echo "  counts  $counts (want $GOLDEN_COUNTS)" >&2
  exit 1
fi
echo "job $id done: matches=$matches (golden)"

# Sync path must serve the same bytes for the same request.
sync_body=$(curl -fsS "$BASE/v1/estimate" -d "$req")
if [ "$async_body" != "$sync_body" ]; then
  echo "FAIL: async and sync bodies differ:" >&2
  echo "  async: $async_body" >&2
  echo "  sync:  $sync_body" >&2
  exit 1
fi
echo "sync /v1/estimate body identical to async result"

# Precision-targeted job: declares ±50% at 90% confidence instead of a
# trial count. Deterministic stop at the golden trial count, and the first
# three trials must be the cached ones from the fixed-trial job above
# (trial-granular cache extension, not a recompute).
preq='{"graph":"enron","query":"glet1","seed":7,"precision":{"relErr":0.5,"confidence":0.9,"maxTrials":64}}'
pbody=$(curl -fsS "$BASE/v1/estimate" -d "$preq")
ptrials=$(jq -r .Trials <<<"$pbody")
pmatches=$(jq -r .Matches <<<"$pbody")
pprefix=$(jq -c '.Counts[0:3]' <<<"$pbody")
if [ "$ptrials" != "$GOLDEN_PREC_TRIALS" ] || [ "$pmatches" != "$GOLDEN_PREC_MATCHES" ]; then
  echo "FAIL: precision estimate drifted from golden:" >&2
  echo "  trials  $ptrials (want $GOLDEN_PREC_TRIALS)" >&2
  echo "  matches $pmatches (want $GOLDEN_PREC_MATCHES)" >&2
  exit 1
fi
if [ "$pprefix" != "$GOLDEN_COUNTS" ]; then
  echo "FAIL: precision run's count prefix $pprefix != cached trials $GOLDEN_COUNTS" >&2
  exit 1
fi
echo "precision job stopped at $ptrials trials (golden), reusing the cached prefix"

stats=$(curl -fsS "$BASE/v1/stats")
extended=$(jq .cache.extended <<<"$stats")
saved=$(jq .precision.trialsSaved <<<"$stats")
if [ "$extended" -lt 1 ] || [ "$saved" -lt 1 ]; then
  echo "FAIL: precision stats not recorded: cache.extended=$extended precision.trialsSaved=$saved" >&2
  exit 1
fi
echo "stats: cache.extended=$extended, precision.trialsSaved=$saved"

# Cancel a long job mid-run: DELETE must leave it canceled, not done.
long=$(curl -fsS "$BASE/v1/jobs" -d '{"graph":"enron","query":"brain3","trials":500,"seed":1}' | jq -r .id)
sleep 0.3
canceled=$(curl -fsS -X DELETE "$BASE/v1/jobs/$long" | jq -r .state)
if [ "$canceled" != canceled ]; then
  echo "FAIL: DELETE left job $long in state $canceled" >&2
  exit 1
fi
echo "job $long canceled mid-run"

submitted=$(curl -fsS "$BASE/v1/stats" | jq .jobs.submitted)
echo "stats: $submitted jobs submitted"

# The trace endpoint replays the first job's phase timeline: the solver
# must have recorded supersteps, and on a serial job the per-phase totals
# are disjoint slices of the wall clock, so they sum to within it.
trace=$(curl -fsS "$BASE/v1/jobs/$id/trace")
trace_id=$(jq -r .id <<<"$trace")
span_count=$(jq '.spans | length' <<<"$trace")
path_spans=$(jq '.phases.pathJoin.count // 0' <<<"$trace")
within_wall=$(jq '(([.phases[].totalMs] | add) <= .wallMs + 1)' <<<"$trace")
if [ "$trace_id" != "$id" ] || [ "$span_count" -lt 1 ] || [ "$path_spans" -lt 1 ] || [ "$within_wall" != true ]; then
  echo "FAIL: job trace malformed: id=$trace_id spans=$span_count pathJoin=$path_spans withinWall=$within_wall" >&2
  echo "$trace" >&2
  exit 1
fi
echo "trace: $span_count spans, $path_spans pathJoin supersteps, phases within wall time"

# /metrics must be parseable Prometheus text carrying the request and
# request-latency families. The awk lint rejects any non-comment line
# that is not `name{labels} value` with a numeric value.
metrics=$(curl -fsS "$BASE/metrics")
if ! grep -q '^subgraph_requests_total{' <<<"$metrics"; then
  echo "FAIL: /metrics missing subgraph_requests_total" >&2
  exit 1
fi
if ! grep -q '^subgraph_request_seconds_bucket{' <<<"$metrics"; then
  echo "FAIL: /metrics missing subgraph_request_seconds histogram" >&2
  exit 1
fi
bad=$(awk '!/^#/ && !/^$/ && $NF !~ /^-?[0-9.eE+Inf-]+$/ { print; exit }' <<<"$metrics")
if [ -n "$bad" ]; then
  echo "FAIL: unparseable /metrics line: $bad" >&2
  exit 1
fi
families=$(grep -c '^# TYPE ' <<<"$metrics")
echo "metrics: $families families, exposition parseable"

# ---- dist backend pass: the same goldens through two real worker ----
# ---- processes over TCP.                                         ----
# The estimate must be byte-for-byte the numbers the sim backend served
# above: the dist backend changes where supersteps execute, never what
# they compute.
go build -o /tmp/sgworker ./cmd/sgworker
/tmp/sgworker -addr 127.0.0.1:0 -addr-file "$W1_ADDR_FILE" -log-level warn &
W1_PID=$!
/tmp/sgworker -addr 127.0.0.1:0 -addr-file "$W2_ADDR_FILE" -log-level warn &
W2_PID=$!
for f in "$W1_ADDR_FILE" "$W2_ADDR_FILE"; do
  for _ in $(seq 1 100); do [ -s "$f" ] && break; sleep 0.1; done
  [ -s "$f" ] || { echo "FAIL: sgworker never wrote $f" >&2; exit 1; }
done
WORKERS="$(cat "$W1_ADDR_FILE"),$(cat "$W2_ADDR_FILE")"
/tmp/sgserve -addr 127.0.0.1:0 -addr-file "$DIST_ADDR_FILE" -backend dist \
  -dist-workers "$WORKERS" -preload enron -scale 512 -seed 1 &
DIST_PID=$!
for _ in $(seq 1 100); do [ -s "$DIST_ADDR_FILE" ] && break; sleep 0.1; done
DBASE="http://$(cat "$DIST_ADDR_FILE")"
for _ in $(seq 1 100); do
  curl -fsS "$DBASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
echo "dist: sgserve up against workers $WORKERS"

dist_body=$(curl -fsS "$DBASE/v1/estimate" -d "$req")
dist_matches=$(jq -r .Matches <<<"$dist_body")
dist_counts=$(jq -c .Counts <<<"$dist_body")
if [ "$dist_matches" != "$GOLDEN_MATCHES" ] || [ "$dist_counts" != "$GOLDEN_COUNTS" ]; then
  echo "FAIL: dist estimate drifted from golden:" >&2
  echo "  matches $dist_matches (want $GOLDEN_MATCHES)" >&2
  echo "  counts  $dist_counts (want $GOLDEN_COUNTS)" >&2
  exit 1
fi
echo "dist: matches=$dist_matches (golden, bit-identical to sim)"

# Per-node transport counters must show both workers alive and actually
# exchanging supersteps — not one node doing all the work.
dist_stats=$(curl -fsS "$DBASE/v1/stats")
node_count=$(jq '.engine.dist | length' <<<"$dist_stats")
all_alive=$(jq '[.engine.dist[].alive] | all' <<<"$dist_stats")
min_exchanges=$(jq '[.engine.dist[].exchanges] | min' <<<"$dist_stats")
if [ "$node_count" != 2 ] || [ "$all_alive" != true ] || [ "$min_exchanges" -lt 1 ]; then
  echo "FAIL: dist node stats wrong: nodes=$node_count alive=$all_alive minExchanges=$min_exchanges" >&2
  jq .engine.dist <<<"$dist_stats" >&2
  exit 1
fi
echo "dist: $node_count nodes alive, every node completed >= $min_exchanges exchanges"

dist_metrics=$(curl -fsS "$DBASE/metrics")
if ! grep -q '^subgraph_dist_node_up{node="1"} 1$' <<<"$dist_metrics"; then
  echo "FAIL: /metrics missing subgraph_dist_node_up for node 1" >&2
  exit 1
fi
echo "dist: per-node /metrics families present"

# ---- durability pass: kill -9 mid-traffic, restart over the same ----
# ---- data dir, serve the goldens from pure WAL replay.           ----
start_durable() {
  rm -f "$DUR_ADDR_FILE"
  /tmp/sgserve -addr 127.0.0.1:0 -addr-file "$DUR_ADDR_FILE" \
    -preload enron -scale 512 -seed 1 \
    -data-dir "$DATA_DIR" -fsync always &
  DUR_PID=$!
  for _ in $(seq 1 100); do [ -s "$DUR_ADDR_FILE" ] && break; sleep 0.1; done
  [ -s "$DUR_ADDR_FILE" ] || { echo "FAIL: durable sgserve never wrote its address" >&2; exit 1; }
  DURBASE="http://$(cat "$DUR_ADDR_FILE")"
  for _ in $(seq 1 100); do
    curl -fsS "$DURBASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
  done
}

start_durable
echo "durable: sgserve up over $DATA_DIR (fsync=always)"

# Populate the log through the async job path (so a terminal job record
# lands too) plus the precision request that extends the cached trials.
djob=$(curl -fsS "$DURBASE/v1/jobs" -d "$req" | jq -r .id)
dstate=""
for _ in $(seq 1 60); do
  dstate=$(curl -fsS "$DURBASE/v1/jobs/$djob?wait=2s" | jq -r .state)
  [ "$dstate" = queued ] || [ "$dstate" = running ] || break
done
[ "$dstate" = done ] || { echo "FAIL: durable job $djob ended $dstate" >&2; exit 1; }
dur_job_body=$(curl -fsS "$DURBASE/v1/jobs/$djob/result")
dur_prec_body=$(curl -fsS "$DURBASE/v1/estimate" -d "$preq")

# Mid-traffic casualty: a long job still running when the kill lands. It
# never reaches a terminal state, so it must NOT be resurrected later.
dlong=$(curl -fsS "$DURBASE/v1/jobs" -d '{"graph":"enron","query":"brain3","trials":500,"seed":1}' | jq -r .id)

# Wait until the durable log has drained (lag 0 under fsync=always means
# every append above is on disk), then kill -9 — no graceful shutdown.
for _ in $(seq 1 100); do
  lag=$(curl -fsS "$DURBASE/v1/stats" | jq .durable.lag)
  [ "$lag" = 0 ] && break
  sleep 0.1
done
[ "$lag" = 0 ] || { echo "FAIL: durable lag never drained (lag=$lag)" >&2; exit 1; }
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true
DUR_PID=""
echo "durable: killed -9 mid-traffic (long job $dlong still running)"

start_durable
replayed=$(curl -fsS "$DURBASE/v1/stats" | jq .durable.replayedRuns)
if [ "$replayed" -lt 1 ]; then
  echo "FAIL: restarted server replayed no runs (replayedRuns=$replayed)" >&2
  exit 1
fi
echo "durable: restarted, replayed $replayed runs"

# The mid-flight long job never reached a terminal state, so it must be
# gone. Checked before any new traffic: fresh submissions (every
# /v1/estimate runs through the job path) may legitimately reuse ids
# that were live-but-unfinished at the kill.
if curl -fsS "$DURBASE/v1/jobs/$dlong" >/dev/null 2>&1; then
  echo "FAIL: mid-flight job $dlong resurrected after kill -9" >&2
  exit 1
fi

# The same requests must come back bit-identical to the pre-kill bodies —
# and therefore to the goldens asserted earlier.
dur_sync2=$(curl -fsS "$DURBASE/v1/estimate" -d "$req")
dur_prec2=$(curl -fsS "$DURBASE/v1/estimate" -d "$preq")
if [ "$(jq -r .Matches <<<"$dur_sync2")" != "$GOLDEN_MATCHES" ] ||
   [ "$(jq -c .Counts <<<"$dur_sync2")" != "$GOLDEN_COUNTS" ]; then
  echo "FAIL: replayed estimate drifted from golden: $dur_sync2" >&2
  exit 1
fi
if [ "$(jq -r .Trials <<<"$dur_prec2")" != "$GOLDEN_PREC_TRIALS" ] ||
   [ "$(jq -r .Matches <<<"$dur_prec2")" != "$GOLDEN_PREC_MATCHES" ]; then
  echo "FAIL: replayed precision estimate drifted from golden: $dur_prec2" >&2
  exit 1
fi
if [ "$(jq -c 'del(.Stats)' <<<"$dur_prec2")" != "$(jq -c 'del(.Stats)' <<<"$dur_prec_body")" ]; then
  echo "FAIL: replayed precision body differs from pre-kill body" >&2
  exit 1
fi

# Terminal job survives by id with the same result bytes; the mid-flight
# long job died with the process and must be gone.
djob2=$(curl -fsS "$DURBASE/v1/jobs/$djob")
if [ "$(jq -r .state <<<"$djob2")" != done ]; then
  echo "FAIL: done job $djob lost across restart: $djob2" >&2
  exit 1
fi
dur_job_body2=$(curl -fsS "$DURBASE/v1/jobs/$djob/result")
if [ "$dur_job_body2" != "$dur_job_body" ]; then
  echo "FAIL: replayed job result differs from pre-kill bytes" >&2
  echo "  before: $dur_job_body" >&2
  echo "  after:  $dur_job_body2" >&2
  exit 1
fi
# The clincher: everything above was served without one fresh solver run.
dur_stats=$(curl -fsS "$DURBASE/v1/stats")
estimates=$(jq .estimates <<<"$dur_stats")
if [ "$estimates" != 0 ]; then
  echo "FAIL: restarted server recomputed $estimates estimates; replay must compute none" >&2
  exit 1
fi
echo "durable: goldens + job result bit-identical after kill -9, engine ran 0 fresh estimates"

# ---- cluster pass: three replicas, consistent-hash routing, one ----
# ---- killed mid-traffic.                                        ----
# Cluster membership must be known before any replica binds (the ring is
# a pure function of the member list), so -addr :0 is out: pick random
# high ports and retry the whole formation if one collides.
start_cluster() {
  C1_PORT=$((20000 + RANDOM % 20000))
  C2_PORT=$((20000 + RANDOM % 20000))
  C3_PORT=$((20000 + RANDOM % 20000))
  if [ "$C1_PORT" = "$C2_PORT" ] || [ "$C1_PORT" = "$C3_PORT" ] || [ "$C2_PORT" = "$C3_PORT" ]; then
    return 1
  fi
  MEMBERS="127.0.0.1:$C1_PORT,127.0.0.1:$C2_PORT,127.0.0.1:$C3_PORT"
  local i=1
  for port in "$C1_PORT" "$C2_PORT" "$C3_PORT"; do
    /tmp/sgserve -addr "127.0.0.1:$port" -self "127.0.0.1:$port" -peers "$MEMBERS" \
      -preload enron -scale 512 -seed 1 -log-level warn &
    eval "C${i}_PID=$!"
    i=$((i + 1))
  done
  for port in "$C1_PORT" "$C2_PORT" "$C3_PORT"; do
    local ok=""
    for _ in $(seq 1 100); do
      curl -fsS "http://127.0.0.1:$port/readyz" >/dev/null 2>&1 && { ok=1; break; }
      sleep 0.1
    done
    if [ -z "$ok" ]; then
      for p in "$C1_PID" "$C2_PID" "$C3_PID"; do kill "$p" 2>/dev/null || true; done
      C1_PID="" C2_PID="" C3_PID=""
      return 1
    fi
  done
}

formed=""
for _ in 1 2 3 4 5; do
  start_cluster && { formed=1; break; }
  echo "cluster: formation failed (port collision?), retrying"
done
[ -n "$formed" ] || { echo "FAIL: cluster never formed after 5 attempts" >&2; exit 1; }
echo "cluster: 3 replicas ready on $MEMBERS"

# The golden request through every entry replica: identical bytes
# regardless of which replica the client happens to talk to.
cluster_first=""
for port in "$C1_PORT" "$C2_PORT" "$C3_PORT"; do
  body=$(curl -fsS --max-time 60 "http://127.0.0.1:$port/v1/estimate" -d "$req")
  if [ "$(jq -r .Matches <<<"$body")" != "$GOLDEN_MATCHES" ] ||
     [ "$(jq -c .Counts <<<"$body")" != "$GOLDEN_COUNTS" ]; then
    echo "FAIL: cluster estimate via :$port drifted from golden: $body" >&2
    exit 1
  fi
  if [ -z "$cluster_first" ]; then
    cluster_first="$body"
  elif [ "$body" != "$cluster_first" ]; then
    echo "FAIL: cluster estimate via :$port differs from first entry's bytes" >&2
    exit 1
  fi
done
echo "cluster: goldens bit-identical through all 3 entry replicas"

# The routing must be real: the replicas' own counters show forwarded
# requests, and the key was computed exactly once cluster-wide.
total_forwards=0
total_misses=0
for port in "$C1_PORT" "$C2_PORT" "$C3_PORT"; do
  cstats=$(curl -fsS "http://127.0.0.1:$port/v1/stats")
  fwd=$(jq .cluster.forwards <<<"$cstats")
  miss=$(jq .cache.misses <<<"$cstats")
  total_forwards=$((total_forwards + fwd))
  total_misses=$((total_misses + miss))
done
if [ "$total_forwards" -lt 1 ] || [ "$total_misses" != 1 ]; then
  echo "FAIL: cluster routing not exercised: forwards=$total_forwards misses=$total_misses (want >=1 and exactly 1)" >&2
  exit 1
fi
echo "cluster: $total_forwards forwards, 1 cluster-wide computation"

# Kill one replica mid-traffic: the survivors must keep answering the
# golden bytes — degraded to local computation when the dead replica
# owned the key, but never a hang or an error.
kill -9 "$C2_PID"
wait "$C2_PID" 2>/dev/null || true
C2_PID=""
echo "cluster: killed -9 replica :$C2_PORT"

fresh='{"graph":"enron","query":"glet1","trials":3,"seed":8}'
survivor_first=""
for port in "$C1_PORT" "$C3_PORT"; do
  body=$(curl -fsS --max-time 60 "http://127.0.0.1:$port/v1/estimate" -d "$req")
  if [ "$(jq -r .Matches <<<"$body")" != "$GOLDEN_MATCHES" ] ||
     [ "$(jq -c .Counts <<<"$body")" != "$GOLDEN_COUNTS" ]; then
    echo "FAIL: post-kill estimate via :$port drifted from golden: $body" >&2
    exit 1
  fi
  # A never-seen key too: routing of fresh traffic must also survive the
  # dead member, and both survivors must agree byte for byte.
  fbody=$(curl -fsS --max-time 60 "http://127.0.0.1:$port/v1/estimate" -d "$fresh")
  if [ -z "$survivor_first" ]; then
    survivor_first="$fbody"
  elif [ "$fbody" != "$survivor_first" ]; then
    echo "FAIL: survivors disagree on fresh key after kill" >&2
    exit 1
  fi
done
echo "cluster: survivors keep serving goldens (and agree on fresh keys) after kill -9"
echo "smoke OK"
