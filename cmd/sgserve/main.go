// Command sgserve runs the subgraph-counting estimation service over
// HTTP: a graph registry (load once, query many), an LRU result cache,
// and a priority-scheduled worker pool on top of the color-coding
// estimator.
//
// Start a server and preload two stand-in graphs:
//
//	sgserve -addr :8080 -preload enron,epinions -scale 512
//
// then register graphs and estimate:
//
//	curl -s localhost:8080/v1/graphs -d '{"powerlaw":5000,"alpha":1.6,"seed":7,"name":"demo"}'
//	curl -s localhost:8080/v1/estimate -d '{"graph":"demo","query":"cycle5","trials":5,"seed":1}'
//	curl -s localhost:8080/v1/batch -d '{"graph":"demo","seed":1,"queries":[{"query":"glet1"},{"query":"brain1"}]}'
//	curl -s localhost:8080/v1/stats
//
// Long estimates run as async jobs instead of holding the connection
// open — submit, poll (or long-poll), fetch the result, cancel:
//
//	curl -s localhost:8080/v1/jobs -d '{"graph":"demo","query":"brain1","trials":50,"seed":1}'
//	curl -s localhost:8080/v1/jobs/j1?wait=2s
//	curl -s localhost:8080/v1/jobs/j1/result
//	curl -s -X DELETE localhost:8080/v1/jobs/j1
//
// Observability: GET /metrics serves Prometheus text-format exposition
// (request/trial/phase latency histograms plus every /v1/stats counter),
// GET /v1/jobs/{id}/trace returns one job's phase timeline, -log-level
// debug enables per-request access logs, and -pprof-addr serves
// net/http/pprof on a separate listener (kept off the API port so
// profiling endpoints are never exposed to API clients by accident):
//
//	sgserve -addr :8080 -pprof-addr 127.0.0.1:6060 -log-level debug
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// Cluster mode runs N sgserve replicas behind consistent-hash routing
// on trial streams: every replica accepts every request and proxies the
// ones another replica owns, so the trial cache and singleflight
// coalescing become cluster-wide. Start each replica with the same
// member list:
//
//	sgserve -addr :8081 -self 127.0.0.1:8081 -peers 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	sgserve -addr :8082 -self 127.0.0.1:8082 -peers 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	sgserve -addr :8083 -self 127.0.0.1:8083 -peers 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//
// GET /readyz distinguishes readiness from /healthz liveness, and POST
// /v1/cluster/rebalance ships each key's durable trial runs to its ring
// home after a membership change.
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the
// worker pool drains, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	subgraph "repro"
	"repro/internal/cluster"
	"repro/internal/dist"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile  = flag.String("addr-file", "", "write the actually bound address to this file once listening (for scripts using -addr :0)")
		workers   = flag.Int("workers", 0, "estimation worker goroutines (0 = NumCPU)")
		queue     = flag.Int("queue", 1024, "max queued jobs before shedding load")
		cacheCap  = flag.Int("cache", 4096, "result cache capacity (entries)")
		shards    = flag.Int("shards", 0, "registry/cache shard count (0 = 2×NumCPU clamped to [8,32]; 1 = unsharded)")
		budgetMB  = flag.Int64("graph-budget-mb", 1024, "graph registry memory budget (MiB)")
		trials    = flag.Int("trials", 3, "default trials per estimate")
		maxTr     = flag.Int("max-trials", 1024, "reject requests asking for more trials than this")
		maxRk     = flag.Int("max-ranks", 256, "reject requests asking for more engine ranks/workers than this")
		ranks     = flag.Int("ranks", 4, "default engine ranks (sim) or workers (parallel) per estimate")
		backend   = flag.String("backend", "", "default execution backend: sim (paper's simulated engine), parallel (shared-memory), or dist (requires -dist-workers); empty = $SUBGRAPH_BACKEND or sim")
		distAddrs = flag.String("dist-workers", "", "comma-separated sgworker addresses; connecting enables the dist backend (rank order = address order)")
		selfAddr  = flag.String("self", "", "this replica's advertised address for cluster mode (host:port reachable by peers); requires -peers")
		peerAddrs = flag.String("peers", "", "comma-separated advertised addresses of every cluster replica (self included or not); enables consistent-hash routing of trial streams across replicas")
		timeout   = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		jobTTL    = flag.Duration("job-ttl", 10*time.Minute, "how long finished jobs stay fetchable via /v1/jobs")
		maxJobs   = flag.Int("max-jobs", 4096, "max finished jobs retained before the oldest are dropped")
		grace     = flag.Duration("grace", 10*time.Second, "graceful shutdown grace period")
		graphDir  = flag.String("graph-dir", "", "allow loading edge-list graphs from this directory (empty = path loading disabled)")
		preload   = flag.String("preload", "", "comma-separated stand-in graphs to register at startup")
		scale     = flag.Int("scale", 512, "stand-in size divisor for -preload")
		seed      = flag.Int64("seed", 1, "generator seed for -preload")
		dataDir   = flag.String("data-dir", "", "persist trial runs and finished jobs to this directory, replayed on boot (empty = in-memory only)")
		fsyncPol  = flag.String("fsync", "interval", "durable log sync policy with -data-dir: always (group commit per batch), interval (see -fsync-every), or never")
		fsyncGap  = flag.Duration("fsync-every", 100*time.Millisecond, "sync cadence for -fsync interval")
		compactMB = flag.Int64("compact-mb", 64, "snapshot and truncate the durable log once it exceeds this size (MiB)")
		logLevel  = flag.String("log-level", "info", "log level: debug (includes per-request access logs), info, warn, or error")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		pprofFile = flag.String("pprof-addr-file", "", "write the actually bound pprof address to this file (for scripts using -pprof-addr 127.0.0.1:0)")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgserve:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Connecting the worker cluster registers "dist" as a backend, so it
	// must precede backend-name validation.
	var distStats func() []subgraph.DistNodeStats
	if *distAddrs != "" {
		addrs := splitAddrs(*distAddrs)
		cluster, err := dist.Connect(addrs, dist.Options{Logger: logger})
		if err != nil {
			fatal("dist workers unreachable", "err", err)
		}
		defer cluster.Close()
		dist.Enable(cluster)
		distStats = func() []subgraph.DistNodeStats {
			nodes := cluster.NodeStats()
			out := make([]subgraph.DistNodeStats, len(nodes))
			for i, n := range nodes {
				out[i] = subgraph.DistNodeStats{
					Rank: n.Rank, Addr: n.Addr, Alive: n.Alive,
					BytesSent: n.BytesSent, BytesRecv: n.BytesRecv,
					FramesSent: n.FramesSent, FramesRecv: n.FramesRecv,
					Exchanges: n.Exchanges, Load: n.Load, Jobs: n.Jobs,
				}
			}
			return out
		}
		logger.Info("dist cluster connected", "workers", len(addrs))
	} else if *backend == "dist" {
		fatal("backend dist needs -dist-workers")
	}

	// A bad -backend (or $SUBGRAPH_BACKEND) must kill the server here, not
	// surface as a 400 on every request once traffic arrives.
	if _, err := subgraph.CanonicalBackend(*backend); err != nil {
		fatal("bad -backend", "err", err)
	}

	// Cluster mode: build this replica's ring view from the static
	// membership. Every replica must be started with the same member set
	// (ownership is a pure function of it); health checks and circuit
	// breakers only gate forwarding, never ownership.
	var clusterView *cluster.Cluster
	if *peerAddrs != "" || *selfAddr != "" {
		if *selfAddr == "" || *peerAddrs == "" {
			fatal("cluster mode needs both -self and -peers")
		}
		cl, err := cluster.New(cluster.Options{
			Self:    *selfAddr,
			Members: splitAddrs(*peerAddrs),
			Logger:  logger,
		})
		if err != nil {
			fatal("cluster setup failed", "err", err)
		}
		defer cl.Close()
		clusterView = cl
		logger.Info("cluster membership configured", "self", cl.Self(), "members", cl.Members())
	}

	// Replay happens inside OpenService, before the listener below binds:
	// the first request a restarted server accepts already sees the warm
	// cache and the previous process's finished jobs.
	svc, err := subgraph.OpenService(subgraph.ServiceOptions{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheCapacity:    *cacheCap,
		Shards:           *shards,
		GraphBudgetBytes: *budgetMB << 20,
		DefaultTrials:    *trials,
		Backend:          *backend,
		DefaultRanks:     *ranks,
		MaxTrials:        *maxTr,
		MaxRanks:         *maxRk,
		DefaultTimeout:   *timeout,
		GraphDir:         *graphDir,
		JobTTL:           *jobTTL,
		MaxJobs:          *maxJobs,
		Logger:           logger,
		DistStats:        distStats,
		Cluster:          clusterView,
		Durability: subgraph.DurabilityOptions{
			Dir:          *dataDir,
			Fsync:        *fsyncPol,
			FsyncEvery:   *fsyncGap,
			CompactBytes: *compactMB << 20,
		},
	})
	if err != nil {
		fatal("service start failed", "err", err)
	}

	for _, name := range strings.Split(*preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		info, err := svc.AddGraph(subgraph.GraphSpec{Standin: name, Scale: *scale, Seed: *seed})
		if err != nil {
			fatal("preload failed", "graph", name, "err", err)
		}
		logger.Info("preloaded graph", "name", name, "id", info.ID, "nodes", info.Nodes, "edges", info.Edges)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		if *pprofFile != "" {
			if err := os.WriteFile(*pprofFile, []byte(pln.Addr().String()+"\n"), 0o644); err != nil {
				fatal("pprof-addr-file write failed", "path", *pprofFile, "err", err)
			}
		}
		go servePprof(pln, logger)
		logger.Info("pprof listening", "addr", pln.Addr().String())
	}

	// Bind before serving so ":0" resolves to a concrete port that can be
	// logged and handed to scripts — shared CI runners cannot hardcode one.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal("addr-file write failed", "path", *addrFile, "err", err)
		}
	}
	logger.Info("listening", "addr", bound, "workers", describe(*workers))
	if err := svc.Serve(ctx, ln, *grace); err != nil {
		fatal("serve failed", "err", err)
	}
	logger.Info("shut down cleanly")
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
}

// servePprof runs the net/http/pprof handlers on their own mux and
// listener. Registering explicitly (rather than importing for the
// DefaultServeMux side effect) keeps the profiling surface off the API
// handler entirely.
func servePprof(ln net.Listener, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.Serve(ln); err != nil {
		logger.Warn("pprof server stopped", "err", err)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func describe(workers int) string {
	if workers <= 0 {
		return "workers=NumCPU"
	}
	return fmt.Sprintf("workers=%d", workers)
}
