// Command sgserve runs the subgraph-counting estimation service over
// HTTP: a graph registry (load once, query many), an LRU result cache,
// and a priority-scheduled worker pool on top of the color-coding
// estimator.
//
// Start a server and preload two stand-in graphs:
//
//	sgserve -addr :8080 -preload enron,epinions -scale 512
//
// then register graphs and estimate:
//
//	curl -s localhost:8080/v1/graphs -d '{"powerlaw":5000,"alpha":1.6,"seed":7,"name":"demo"}'
//	curl -s localhost:8080/v1/estimate -d '{"graph":"demo","query":"cycle5","trials":5,"seed":1}'
//	curl -s localhost:8080/v1/batch -d '{"graph":"demo","seed":1,"queries":[{"query":"glet1"},{"query":"brain1"}]}'
//	curl -s localhost:8080/v1/stats
//
// Long estimates run as async jobs instead of holding the connection
// open — submit, poll (or long-poll), fetch the result, cancel:
//
//	curl -s localhost:8080/v1/jobs -d '{"graph":"demo","query":"brain1","trials":50,"seed":1}'
//	curl -s localhost:8080/v1/jobs/j1?wait=2s
//	curl -s localhost:8080/v1/jobs/j1/result
//	curl -s -X DELETE localhost:8080/v1/jobs/j1
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the
// worker pool drains, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	subgraph "repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile = flag.String("addr-file", "", "write the actually bound address to this file once listening (for scripts using -addr :0)")
		workers  = flag.Int("workers", 0, "estimation worker goroutines (0 = NumCPU)")
		queue    = flag.Int("queue", 1024, "max queued jobs before shedding load")
		cacheCap = flag.Int("cache", 4096, "result cache capacity (entries)")
		shards   = flag.Int("shards", 0, "registry/cache shard count (0 = 2×NumCPU clamped to [8,32]; 1 = unsharded)")
		budgetMB = flag.Int64("graph-budget-mb", 1024, "graph registry memory budget (MiB)")
		trials   = flag.Int("trials", 3, "default trials per estimate")
		maxTr    = flag.Int("max-trials", 1024, "reject requests asking for more trials than this")
		maxRk    = flag.Int("max-ranks", 256, "reject requests asking for more engine ranks/workers than this")
		ranks    = flag.Int("ranks", 4, "default engine ranks (sim) or workers (parallel) per estimate")
		backend  = flag.String("backend", "", "default execution backend: sim (paper's simulated engine) or parallel (shared-memory); empty = $SUBGRAPH_BACKEND or sim")
		timeout  = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		jobTTL   = flag.Duration("job-ttl", 10*time.Minute, "how long finished jobs stay fetchable via /v1/jobs")
		maxJobs  = flag.Int("max-jobs", 4096, "max finished jobs retained before the oldest are dropped")
		grace    = flag.Duration("grace", 10*time.Second, "graceful shutdown grace period")
		graphDir = flag.String("graph-dir", "", "allow loading edge-list graphs from this directory (empty = path loading disabled)")
		preload  = flag.String("preload", "", "comma-separated stand-in graphs to register at startup")
		scale    = flag.Int("scale", 512, "stand-in size divisor for -preload")
		seed     = flag.Int64("seed", 1, "generator seed for -preload")
	)
	flag.Parse()

	// A bad -backend (or $SUBGRAPH_BACKEND) must kill the server here, not
	// surface as a 400 on every request once traffic arrives.
	if _, err := subgraph.CanonicalBackend(*backend); err != nil {
		log.Fatalf("sgserve: -backend: %v", err)
	}

	svc := subgraph.NewService(subgraph.ServiceOptions{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheCapacity:    *cacheCap,
		Shards:           *shards,
		GraphBudgetBytes: *budgetMB << 20,
		DefaultTrials:    *trials,
		Backend:          *backend,
		DefaultRanks:     *ranks,
		MaxTrials:        *maxTr,
		MaxRanks:         *maxRk,
		DefaultTimeout:   *timeout,
		GraphDir:         *graphDir,
		JobTTL:           *jobTTL,
		MaxJobs:          *maxJobs,
	})

	for _, name := range strings.Split(*preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		info, err := svc.AddGraph(subgraph.GraphSpec{Standin: name, Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("sgserve: preload %s: %v", name, err)
		}
		log.Printf("sgserve: preloaded %s as %s: %d nodes, %d edges", name, info.ID, info.Nodes, info.Edges)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Bind before serving so ":0" resolves to a concrete port that can be
	// logged and handed to scripts — shared CI runners cannot hardcode one.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgserve:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sgserve: addr-file:", err)
			os.Exit(1)
		}
	}
	log.Printf("sgserve: listening on %s (%s)", bound, describe(*workers))
	if err := svc.Serve(ctx, ln, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "sgserve:", err)
		os.Exit(1)
	}
	log.Printf("sgserve: shut down cleanly")
}

func describe(workers int) string {
	if workers <= 0 {
		return "workers=NumCPU"
	}
	return fmt.Sprintf("workers=%d", workers)
}
