// Command sgplan inspects query decomposition trees (paper §4.1, §6): it
// prints every decomposition tree of a query with its heuristic score, and
// marks the plan the §6 heuristic selects.
//
// Examples:
//
//	sgplan satellite
//	sgplan -all
//	sgplan brain1 ecoli2 cycle7
package main

import (
	"flag"
	"fmt"
	"os"

	subgraph "repro"
)

func main() {
	all := flag.Bool("all", false, "show the whole Figure 8 catalog")
	flag.Parse()

	names := flag.Args()
	if *all {
		for _, q := range subgraph.Queries() {
			names = append(names, q.Name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sgplan [-all] <query name>...")
		os.Exit(2)
	}
	for _, name := range names {
		q, err := subgraph.QueryByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgplan:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", q)
		trees, err := subgraph.EnumeratePlans(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgplan:", err)
			os.Exit(1)
		}
		best, err := subgraph.Plan(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgplan:", err)
			os.Exit(1)
		}
		fmt.Printf("%d decomposition tree(s):\n", len(trees))
		for i, tr := range trees {
			score := tr.Score()
			mark := " "
			if tr.Encode() == best.Encode() {
				mark = "*" // heuristic's pick
			}
			fmt.Printf("%s plan %d  score(work max %d total %d, longest cycle %d, boundary %d, annotations %d)\n",
				mark, i+1, score.MaxCycleWork, score.TotalCycleWork, score.LongestCycle, score.BoundarySum, score.Annotations)
			fmt.Print(tr)
		}
		fmt.Println()
	}
}
