// Command sgload is a closed-loop load generator for sgserve: a fixed
// number of workers each issue one /v1/estimate request at a time against
// a seeded mix of graphs, queries, and coloring seeds, and the run ends in
// a machine-readable JSON report (throughput, latency percentiles, cache
// hit and coalesce rates, and the server's own shard/lock-wait counters).
// The workload is deterministic given its flags: scripts/bench.sh replays
// the same mix on every CI run, so reports are comparable across commits
// and BENCH_*.json becomes a benchmark trajectory.
//
// The cache-hit ratio is a first-class knob because it decides what is
// being measured: at -hit-ratio 1 every request after warmup is pure
// serving-layer work (registry acquire, cache lookup, job bookkeeping) —
// the hot path the sharded registry/cache exist for — while at 0 every
// request runs the solver and the report measures estimation throughput.
//
//	sgload -addr 127.0.0.1:8080 -c 32 -duration 10s -hit-ratio 0.9 -out BENCH_pr3.json
//
// A target hit ratio h is achieved by drawing, with probability h, a
// coloring seed from a small hot set (cached after first touch) and
// otherwise a fresh never-seen seed (a guaranteed miss).
//
// Against a cluster (sgserve -peers), -endpoints round-robins every
// request across the replicas and the report grows a cluster section:
// per-endpoint throughput plus the cluster-wide forward and cache-hit
// rates, which is how bench.sh measures serving-tier scaling.
//
//	sgload -endpoints 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083 -c 32 -duration 10s
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type config struct {
	Addr string `json:"addr"`
	// Endpoints is the cluster mode: a comma-separated replica list the
	// workers round-robin over per request, so the load (and the hot key
	// set) spreads across every entry point the way a real client-side
	// balancer would spread it. Empty means single-server mode on Addr.
	Endpoints string  `json:"endpoints,omitempty"`
	Workers   int     `json:"workers"`
	Duration  string  `json:"duration"`
	Warmup    string  `json:"warmup"`
	Graphs    int     `json:"graphs"`
	GraphN    int     `json:"graphN"`
	Alpha     float64 `json:"alpha"`
	Queries   string  `json:"queries"`
	Trials    int     `json:"trials"`
	Ranks     int     `json:"ranks"`
	Backend   string  `json:"backend,omitempty"`
	HitRatio  float64 `json:"hitRatio"`
	HotSeeds  int     `json:"hotSeeds"`
	Seed      int64   `json:"seed"`
	Label     string  `json:"label,omitempty"`

	// Precision-targeted traffic. RelErr > 0 sends every request with a
	// precision object instead of a fixed trial count; PrecisionMix mixes
	// tiers ("relErr:weight,..." — a 0 relErr tier sends fixed-trial
	// requests), modeling clients with different accuracy needs sharing
	// one trial cache.
	RelErr       float64 `json:"relErr,omitempty"`
	Confidence   float64 `json:"confidence,omitempty"`
	PrecisionMix string  `json:"precisionMix,omitempty"`
	MaxTrials    int     `json:"maxTrials,omitempty"`
}

// tier is one precision class of the workload mix; cum is the cumulative
// probability used when drawing.
type tier struct {
	relErr float64
	cum    float64
}

// name labels the tier in the per-tier latency breakdown.
func (t tier) name() string {
	if t.relErr <= 0 {
		return "fixed"
	}
	return fmt.Sprintf("relErr=%g", t.relErr)
}

// parseMix turns "0:0.4,0.1:0.3,0.02:0.3" into cumulative tiers. Weights
// are normalized; a single -relerr run is the one-tier special case.
func parseMix(cfg *config) ([]tier, error) {
	raw := cfg.PrecisionMix
	if raw == "" {
		if cfg.RelErr > 0 {
			return []tier{{relErr: cfg.RelErr, cum: 1}}, nil
		}
		return nil, nil
	}
	var tiers []tier
	var total float64
	for _, part := range strings.Split(raw, ",") {
		re, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad -precision-mix entry %q (want relErr:weight)", part)
		}
		var t tier
		if _, err := fmt.Sscanf(re, "%g", &t.relErr); err != nil {
			return nil, fmt.Errorf("bad relErr in -precision-mix entry %q: %v", part, err)
		}
		var w float64
		if _, err := fmt.Sscanf(weight, "%g", &w); err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in -precision-mix entry %q", part)
		}
		total += w
		t.cum = total
		tiers = append(tiers, t)
	}
	for i := range tiers {
		tiers[i].cum /= total
	}
	return tiers, nil
}

// latencySummary is the percentile rollup of observed request latencies.
type latencySummary struct {
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P95MS  float64 `json:"p95Ms"`
	P99MS  float64 `json:"p99Ms"`
	MaxMS  float64 `json:"maxMs"`
}

// clusterClientStats is the report's cluster-mode section (-endpoints):
// per-endpoint client throughput plus the cluster-wide forward and
// cache-hit rates aggregated from every replica's /v1/stats. It is what
// bench.sh reads to prove (or refute) serving-tier scaling.
type clusterClientStats struct {
	Endpoints []endpointReport `json:"endpoints"`
	// ForwardRate is forwards / client requests across the cluster: the
	// fraction of requests that cost an extra proxy hop. With E replicas
	// and uniform entry choice it converges to (E-1)/E.
	ForwardRate float64 `json:"forwardRate"`
	// CacheHitRate aggregates the replicas' own cache counters; in a
	// healthy cluster it matches the client-observed rate because every
	// key has exactly one home doing its caching.
	CacheHitRate    float64 `json:"cacheHitRate"`
	Forwards        uint64  `json:"forwards"`
	ForwardErrors   uint64  `json:"forwardErrors"`
	LocalFallbacks  uint64  `json:"localFallbacks"`
	ForwardedServed uint64  `json:"forwardedServed"`
}

// endpointReport is one replica's share of a cluster-mode run.
type endpointReport struct {
	Addr          string  `json:"addr"`
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughputRps"`
	// ServerEstimates is the replica's own /v1/estimate count over its
	// lifetime (entry + forwarded-in requests), from its /v1/stats.
	ServerEstimates uint64 `json:"serverEstimates"`
	Forwards        uint64 `json:"forwards"`
	ForwardedServed uint64 `json:"forwardedServed"`
	LocalFallbacks  uint64 `json:"localFallbacks"`
}

// serverSide is the slice of /v1/stats the report embeds, so a BENCH file
// is self-describing about what the server did during the run.
type serverSide struct {
	Shards struct {
		Count int `json:"count"`
	} `json:"shards"`
	Registry struct {
		Hits       uint64  `json:"hits"`
		Loads      uint64  `json:"loads"`
		LockWaits  uint64  `json:"lockWaits"`
		LockWaitMS float64 `json:"lockWaitMs"`
	} `json:"registry"`
	Cache struct {
		Hits       uint64  `json:"hits"`
		Misses     uint64  `json:"misses"`
		Extended   uint64  `json:"extended"`
		Evictions  uint64  `json:"evictions"`
		LockWaits  uint64  `json:"lockWaits"`
		LockWaitMS float64 `json:"lockWaitMs"`
	} `json:"cache"`
	Precision struct {
		Requests    uint64 `json:"requests"`
		EarlyStops  uint64 `json:"earlyStops"`
		TrialsSaved uint64 `json:"trialsSaved"`
	} `json:"precision"`
	Jobs struct {
		Submitted    uint64  `json:"submitted"`
		Coalesced    uint64  `json:"coalesced"`
		LockWaits    uint64  `json:"lockWaits"`
		LockWaitMS   float64 `json:"lockWaitMs"`
		Singleflight struct {
			Keys       int     `json:"keys"`
			Shards     int     `json:"shards"`
			LockWaits  uint64  `json:"lockWaits"`
			LockWaitMS float64 `json:"lockWaitMs"`
		} `json:"singleflight"`
	} `json:"jobs"`
	Engine struct {
		Backend  string `json:"backend"`
		Workers  int    `json:"workers"`
		Backends map[string]struct {
			Runs       uint64 `json:"runs"`
			Workers    int    `json:"workers"`
			TotalLoad  int64  `json:"totalLoad"`
			MaxLoad    int64  `json:"maxLoad"`
			Messages   int64  `json:"messages"`
			Steals     int64  `json:"steals"`
			Supersteps int64  `json:"supersteps"`
		} `json:"backends"`
		// Dist lists the distributed backend's worker nodes when the
		// server runs one (sgserve -dist-workers): per-node transport
		// volume and executed load, so a BENCH file records how evenly a
		// dist run spread its work.
		Dist []struct {
			Rank      int    `json:"rank"`
			Addr      string `json:"addr"`
			Alive     bool   `json:"alive"`
			BytesSent int64  `json:"bytesSent"`
			BytesRecv int64  `json:"bytesRecv"`
			Exchanges int64  `json:"exchanges"`
			Load      int64  `json:"load"`
			Jobs      int64  `json:"jobs"`
		} `json:"dist,omitempty"`
	} `json:"engine"`
	// Durable mirrors the append-only trial/job log's counters when the
	// server runs with -data-dir; absent on in-memory servers. A serving
	// benchmark against a durable server is only meaningful if Appends
	// moved — bench.sh gates on it.
	Durable *struct {
		Appends       uint64 `json:"appends"`
		Lag           int64  `json:"lag"`
		ReplayedRuns  uint64 `json:"replayedRuns"`
		ReplayedJobs  uint64 `json:"replayedJobs"`
		Compactions   uint64 `json:"compactions"`
		Fsyncs        uint64 `json:"fsyncs"`
		WriteErrors   uint64 `json:"writeErrors"`
		WalBytes      int64  `json:"walBytes"`
		SnapshotBytes int64  `json:"snapshotBytes"`
	} `json:"durable,omitempty"`
	// Cluster mirrors the replica's forwarding counters when the server
	// runs in cluster mode (sgserve -peers); absent on single nodes.
	Cluster *struct {
		Self            string `json:"self"`
		Forwards        uint64 `json:"forwards"`
		ForwardErrors   uint64 `json:"forwardErrors"`
		LocalFallbacks  uint64 `json:"localFallbacks"`
		ForwardedServed uint64 `json:"forwardedServed"`
	} `json:"cluster,omitempty"`
	Estimates uint64 `json:"estimates"`
}

// metricsCheck cross-checks the server's own request accounting against
// the client's: the delta of subgraph_requests_total{endpoint="/v1/estimate"}
// across the measured window (scraped from /metrics before and after)
// must equal the requests this process actually issued. A mismatch means
// either the exposition or the load loop is miscounting — both are bugs
// worth failing a benchmark read over. In cluster mode the scrape sums
// every endpoint and subtracts the forwarded-request delta: a proxied
// estimate is counted by both its entry replica and its home, but the
// client issued it once.
type metricsCheck struct {
	ServerRequests uint64 `json:"serverRequests"`
	ClientRequests uint64 `json:"clientRequests"`
	Match          bool   `json:"match"`
}

// report is the machine-readable output: everything scripts/bench.sh and
// the CI regression gate need, in one flat document.
type report struct {
	Label         string         `json:"label,omitempty"`
	Config        config         `json:"config"`
	Requests      uint64         `json:"requests"`
	Errors        uint64         `json:"errors"`
	DurationSec   float64        `json:"durationSec"`
	ThroughputRPS float64        `json:"throughputRps"`
	Latency       latencySummary `json:"latencyMs"`
	CacheHits     uint64         `json:"cacheHits"`
	CacheMisses   uint64         `json:"cacheMisses"`
	CacheHitRate  float64        `json:"cacheHitRate"`
	CoalesceRate  float64        `json:"coalesceRate"`
	// TrialsSaved and ExtendedRate summarize the precision economy of the
	// run: trials the server's adaptive stops skipped versus the requests'
	// worst-case bounds, and the share of cache lookups that found a
	// reusable-but-short entry and extended it instead of recomputing.
	TrialsSaved  uint64     `json:"trialsSaved,omitempty"`
	ExtendedRate float64    `json:"extendedRate,omitempty"`
	Server       serverSide `json:"server"`
	// LatencyByTier breaks the client-observed latency out per precision
	// tier of the mix ("fixed" for fixed-trial requests): the tiers share
	// one trial cache, so their relative percentiles show what a tight
	// accuracy target costs over a loose one.
	LatencyByTier map[string]latencySummary `json:"latencyByTierMs,omitempty"`
	// Metrics is the server-vs-client request-count cross-check scraped
	// from /metrics (nil when the scrape failed).
	Metrics *metricsCheck `json:"metricsCheck,omitempty"`
	// Cluster is the multi-endpoint rollup (nil outside -endpoints runs):
	// per-replica throughput and cluster-wide forward/cache-hit rates.
	Cluster *clusterClientStats `json:"cluster,omitempty"`
}

// worker is one closed-loop client: it owns a private RNG (derived from
// the global seed and its index, so runs are reproducible at any
// concurrency) and issues requests back to back until the deadline.
type worker struct {
	rng    *rand.Rand
	client *http.Client
	// bases is the endpoint set; single-server runs have one entry.
	// Cluster runs pick one per request off the shared round-robin
	// counter, so every replica sees an equal slice of the identical mix.
	bases     []string
	rr        *atomic.Uint64
	cfg       *config
	graphs    []string
	queries   []string
	hot       []int64
	tiers     []tier // precision mix; empty = fixed-trial requests only
	durations []time.Duration
	tierDur   map[string][]time.Duration // per-tier latency (mix runs only)

	requests uint64
	errors   uint64
	hits     uint64
	misses   uint64
	// perEndpoint counts measured requests by bases index.
	perEndpoint []uint64
}

// coldSeed hands out never-repeating coloring seeds far above the hot
// range, so a "miss" request can never collide with a hot key or another
// cold one.
var coldSeed atomic.Int64

func (w *worker) run(deadline time.Time, record bool) {
	for time.Now().Before(deadline) {
		seed := w.hot[w.rng.Intn(len(w.hot))]
		if w.rng.Float64() >= w.cfg.HitRatio {
			seed = 1_000_000 + coldSeed.Add(1)
		}
		req := map[string]any{
			"graph":  w.graphs[w.rng.Intn(len(w.graphs))],
			"query":  w.queries[w.rng.Intn(len(w.queries))],
			"trials": w.cfg.Trials,
			"ranks":  w.cfg.Ranks,
			"seed":   seed,
		}
		if w.cfg.Backend != "" {
			req["backend"] = w.cfg.Backend
		}
		tierName := ""
		if len(w.tiers) > 0 {
			// Draw this request's precision tier. Tiers share graph, query,
			// and seed streams, so a tight tier extends the trials a loose
			// tier (or the fixed-trial tier) already cached.
			draw := w.rng.Float64()
			picked := w.tiers[len(w.tiers)-1]
			for _, t := range w.tiers {
				if draw < t.cum {
					picked = t
					break
				}
			}
			tierName = picked.name()
			if picked.relErr > 0 {
				prec := map[string]any{"relErr": picked.relErr}
				if w.cfg.Confidence > 0 {
					prec["confidence"] = w.cfg.Confidence
				}
				if w.cfg.MaxTrials > 0 {
					prec["maxTrials"] = w.cfg.MaxTrials
				}
				req["precision"] = prec
			}
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatalf("sgload: marshal: %v", err)
		}
		idx := 0
		if len(w.bases) > 1 {
			idx = int(w.rr.Add(1) % uint64(len(w.bases)))
		}
		start := time.Now()
		resp, err := w.client.Post(w.bases[idx]+"/v1/estimate", "application/json", bytes.NewReader(body))
		elapsed := time.Since(start)
		if !record {
			if err == nil {
				drain(resp)
			}
			continue
		}
		w.requests++
		w.perEndpoint[idx]++
		if err != nil {
			w.errors++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			w.errors++
		} else {
			w.durations = append(w.durations, elapsed)
			if tierName != "" {
				if w.tierDur == nil {
					w.tierDur = make(map[string][]time.Duration)
				}
				w.tierDur[tierName] = append(w.tierDur[tierName], elapsed)
			}
			if resp.Header.Get("X-Cache") == "HIT" {
				w.hits++
			} else {
				w.misses++
			}
		}
		drain(resp)
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // connection reuse is best effort
	resp.Body.Close()
}

func main() {
	var cfg config
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:8080", "sgserve address (host:port)")
	flag.StringVar(&cfg.Endpoints, "endpoints", "", "comma-separated cluster replica addresses, round-robined per request (overrides -addr)")
	flag.IntVar(&cfg.Workers, "c", 32, "concurrent closed-loop workers")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	warmup := flag.Duration("warmup", time.Second, "unmeasured warmup before the run")
	flag.IntVar(&cfg.Graphs, "graphs", 4, "power-law graphs to register and spread load across")
	flag.IntVar(&cfg.GraphN, "graph-n", 1000, "vertices per generated graph")
	flag.Float64Var(&cfg.Alpha, "alpha", 1.6, "power-law exponent of the generated graphs")
	flag.StringVar(&cfg.Queries, "queries", "path3,cycle4,star4,glet1", "comma-separated query mix")
	flag.IntVar(&cfg.Trials, "trials", 1, "trials per estimate")
	flag.IntVar(&cfg.Ranks, "ranks", 1, "engine ranks (sim) or workers (parallel) per estimate")
	flag.StringVar(&cfg.Backend, "backend", "", "execution backend sent with every request: sim, parallel, or dist (empty = server default)")
	flag.Float64Var(&cfg.HitRatio, "hit-ratio", 0.9, "target cache-hit ratio in [0,1]")
	flag.IntVar(&cfg.HotSeeds, "hot", 64, "size of the hot key set backing the hit ratio")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload RNG seed (equal seeds replay the same mix)")
	flag.StringVar(&cfg.Label, "label", "", "label recorded in the report (e.g. sharded/unsharded)")
	flag.Float64Var(&cfg.RelErr, "relerr", 0, "send every request with this precision target instead of fixed trials")
	flag.Float64Var(&cfg.Confidence, "confidence", 0, "confidence level sent with precision requests (0 = server default 0.95)")
	flag.StringVar(&cfg.PrecisionMix, "precision-mix", "", "mixed precision tiers, e.g. '0:0.4,0.1:0.3,0.02:0.3' (relErr:weight; relErr 0 = fixed-trial tier)")
	flag.IntVar(&cfg.MaxTrials, "max-trials", 0, "maxTrials sent with precision requests (0 = server default)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()
	cfg.Duration = duration.String()
	cfg.Warmup = warmup.String()
	if cfg.HitRatio < 0 || cfg.HitRatio > 1 {
		log.Fatalf("sgload: -hit-ratio %g outside [0,1]", cfg.HitRatio)
	}
	if cfg.Workers <= 0 || cfg.Graphs <= 0 || cfg.HotSeeds <= 0 {
		log.Fatal("sgload: -c, -graphs, and -hot must be positive")
	}
	tiers, err := parseMix(&cfg)
	if err != nil {
		log.Fatalf("sgload: %v", err)
	}

	bases := []string{"http://" + cfg.Addr}
	if cfg.Endpoints != "" {
		bases = bases[:0]
		for _, a := range strings.Split(cfg.Endpoints, ",") {
			if a = strings.TrimSpace(a); a != "" {
				bases = append(bases, "http://"+a)
			}
		}
		if len(bases) == 0 {
			log.Fatal("sgload: -endpoints has no addresses")
		}
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        (cfg.Workers + 4) * len(bases),
			MaxIdleConnsPerHost: cfg.Workers + 4,
		},
	}

	for _, base := range bases {
		waitHealthy(client, base)
	}

	// Register the graph mix on every endpoint: cluster replicas route by
	// trial key but load graphs locally, so each needs the specs.
	// Re-registering is free, so a shared server (or a retry) is harmless.
	graphs := make([]string, cfg.Graphs)
	for i := range graphs {
		graphs[i] = fmt.Sprintf("load%d", i)
		spec := map[string]any{"powerlaw": cfg.GraphN, "alpha": cfg.Alpha, "seed": 100 + i, "name": graphs[i]}
		body, err := json.Marshal(spec)
		if err != nil {
			log.Fatalf("sgload: marshal: %v", err)
		}
		for _, base := range bases {
			resp, err := client.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatalf("sgload: register %s at %s: %v", graphs[i], base, err)
			}
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				log.Fatalf("sgload: register %s at %s: %d: %s", graphs[i], base, resp.StatusCode, b)
			}
			drain(resp)
		}
	}

	queries := strings.Split(cfg.Queries, ",")
	for i := range queries {
		queries[i] = strings.TrimSpace(queries[i])
	}
	hot := make([]int64, cfg.HotSeeds)
	for i := range hot {
		hot[i] = int64(i + 1)
	}

	var rr atomic.Uint64
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = &worker{
			rng:         rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			client:      client,
			bases:       bases,
			rr:          &rr,
			cfg:         &cfg,
			graphs:      graphs,
			queries:     queries,
			hot:         hot,
			tiers:       tiers,
			durations:   make([]time.Duration, 0, 1<<16),
			perEndpoint: make([]uint64, len(bases)),
		}
	}

	runPhase := func(d time.Duration, record bool) time.Duration {
		start := time.Now()
		deadline := start.Add(d)
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.run(deadline, record)
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}
	if *warmup > 0 {
		log.Printf("sgload: warming up for %s", warmup)
		runPhase(*warmup, false)
	}
	// Scrape /metrics at the two quiet points bracketing the measured
	// window (workers quiesced, nothing in flight), so the server-side
	// request-count delta is attributable to exactly the measured phase.
	before, fwdBefore, beforeErr := scrapeEstimateRequests(client, bases)
	log.Printf("sgload: measuring %d workers for %s against %d endpoint(s)", cfg.Workers, duration, len(bases))
	measured := runPhase(*duration, true)
	after, fwdAfter, afterErr := scrapeEstimateRequests(client, bases)

	rep := summarize(&cfg, workers, measured)
	rep.Server = fetchServerStats(client, bases[0])
	if len(bases) > 1 {
		rep.Cluster = clusterRollup(client, bases, workers, rep.DurationSec)
	}
	if beforeErr != nil || afterErr != nil {
		log.Printf("sgload: metrics scrape failed (before: %v, after: %v) — skipping cross-check", beforeErr, afterErr)
	} else {
		// Forwarded estimates are counted by entry and home both; the
		// forwarded-served delta removes the double count.
		serverReqs := (after - before) - (fwdAfter - fwdBefore)
		rep.Metrics = &metricsCheck{
			ServerRequests: serverReqs,
			ClientRequests: rep.Requests,
			Match:          serverReqs == rep.Requests,
		}
		if !rep.Metrics.Match {
			log.Printf("sgload: WARNING: server counted %d /v1/estimate requests in the measured window, client issued %d",
				rep.Metrics.ServerRequests, rep.Metrics.ClientRequests)
		}
	}
	if rep.Server.Jobs.Submitted > 0 {
		rep.CoalesceRate = float64(rep.Server.Jobs.Coalesced) / float64(rep.Server.Jobs.Submitted)
	}
	rep.TrialsSaved = rep.Server.Precision.TrialsSaved
	if n := rep.Server.Cache.Hits + rep.Server.Cache.Misses; n > 0 {
		rep.ExtendedRate = float64(rep.Server.Cache.Extended) / float64(n)
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("sgload: %v", err)
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("sgload: write report: %v", err)
	}
	log.Printf("sgload: %d requests in %.2fs = %.1f req/s (p50 %.2fms, p99 %.2fms, hit rate %.3f, errors %d)",
		rep.Requests, rep.DurationSec, rep.ThroughputRPS,
		rep.Latency.P50MS, rep.Latency.P99MS, rep.CacheHitRate, rep.Errors)
	if rep.Cluster != nil {
		for _, ep := range rep.Cluster.Endpoints {
			log.Printf("sgload:   endpoint %s: %d requests = %.1f req/s (forwards %d, forwarded-in %d, fallbacks %d)",
				ep.Addr, ep.Requests, ep.ThroughputRPS, ep.Forwards, ep.ForwardedServed, ep.LocalFallbacks)
		}
		log.Printf("sgload: cluster: forward rate %.3f, server-side hit rate %.3f",
			rep.Cluster.ForwardRate, rep.Cluster.CacheHitRate)
	}
	if p := rep.Server.Precision; p.Requests > 0 {
		log.Printf("sgload: precision: %d targeted requests, %d early stops, %d trials saved, cache extended %d (rate %.3f)",
			p.Requests, p.EarlyStops, p.TrialsSaved, rep.Server.Cache.Extended, rep.ExtendedRate)
	}
	if rep.Errors > rep.Requests/10 {
		log.Fatalf("sgload: error rate %.1f%% exceeds 10%% — not a valid benchmark run",
			100*float64(rep.Errors)/float64(rep.Requests))
	}
}

// waitHealthy polls /healthz so sgload can be started alongside sgserve.
func waitHealthy(client *http.Client, base string) {
	for i := 0; i < 100; i++ {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			drain(resp)
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatalf("sgload: server at %s never became healthy", base)
}

// summarizeDurations sorts (in place) and rolls one latency population up
// into mean/p50/p95/p99/max milliseconds.
func summarizeDurations(all []time.Duration) latencySummary {
	if len(all) == 0 {
		return latencySummary{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	quantile := func(q float64) time.Duration {
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	return latencySummary{
		MeanMS: ms(sum / time.Duration(len(all))),
		P50MS:  ms(quantile(0.50)),
		P95MS:  ms(quantile(0.95)),
		P99MS:  ms(quantile(0.99)),
		MaxMS:  ms(all[len(all)-1]),
	}
}

func summarize(cfg *config, workers []*worker, measured time.Duration) report {
	rep := report{Label: cfg.Label, Config: *cfg, DurationSec: measured.Seconds()}
	var all []time.Duration
	byTier := make(map[string][]time.Duration)
	for _, w := range workers {
		rep.Requests += w.requests
		rep.Errors += w.errors
		rep.CacheHits += w.hits
		rep.CacheMisses += w.misses
		all = append(all, w.durations...)
		for name, ds := range w.tierDur {
			byTier[name] = append(byTier[name], ds...)
		}
	}
	if rep.DurationSec > 0 {
		rep.ThroughputRPS = float64(rep.Requests-rep.Errors) / rep.DurationSec
	}
	if n := rep.CacheHits + rep.CacheMisses; n > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(n)
	}
	rep.Latency = summarizeDurations(all)
	if len(byTier) > 0 {
		rep.LatencyByTier = make(map[string]latencySummary, len(byTier))
		for name, ds := range byTier {
			rep.LatencyByTier[name] = summarizeDurations(ds)
		}
	}
	return rep
}

// scrapeEstimateRequests fetches every endpoint's /metrics and sums two
// families: the subgraph_requests_total series whose endpoint label is
// /v1/estimate (across all status codes), and the label-less
// subgraph_cluster_forwarded_served_total counter (0 outside cluster
// mode) the caller needs to un-double-count proxied requests. Counter
// values are non-negative integers rendered as floats, so ParseFloat +
// uint64 truncation is exact. A missing series reads as 0 — legitimate
// before the first estimate request (families are created lazily); a
// series missing after the run shows up as a Match failure instead.
func scrapeEstimateRequests(client *http.Client, bases []string) (estimates, forwardedServed uint64, err error) {
	for _, base := range bases {
		e, f, err := scrapeOneEndpoint(client, base)
		if err != nil {
			return 0, 0, err
		}
		estimates += e
		forwardedServed += f
	}
	return estimates, forwardedServed, nil
}

func scrapeOneEndpoint(client *http.Client, base string) (estimates, forwardedServed uint64, err error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var total, forwarded float64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "subgraph_cluster_forwarded_served_total "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, 0, fmt.Errorf("bad sample value in %q: %v", line, err)
			}
			forwarded += v
			continue
		}
		rest, ok := strings.CutPrefix(line, "subgraph_requests_total{")
		if !ok {
			continue
		}
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return 0, 0, fmt.Errorf("unterminated label block in %q", line)
		}
		if !strings.Contains(rest[:end], `endpoint="/v1/estimate"`) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest[end+1:]), 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad sample value in %q: %v", line, err)
		}
		total += v
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return uint64(total), uint64(forwarded), nil
}

// clusterRollup assembles the report's cluster section: each replica's
// share of the measured requests (the shared round-robin makes these
// near-equal by construction — the interesting number is the rate, which
// shows whether added replicas added capacity) plus the cluster-wide
// forward and cache-hit rates from the replicas' own counters.
func clusterRollup(client *http.Client, bases []string, workers []*worker, durationSec float64) *clusterClientStats {
	cl := &clusterClientStats{}
	var reqTotal, hits, misses uint64
	for i, base := range bases {
		var reqs uint64
		for _, w := range workers {
			reqs += w.perEndpoint[i]
		}
		reqTotal += reqs
		st := fetchServerStats(client, base)
		ep := endpointReport{
			Addr:            strings.TrimPrefix(base, "http://"),
			Requests:        reqs,
			ServerEstimates: st.Estimates,
		}
		if durationSec > 0 {
			ep.ThroughputRPS = float64(reqs) / durationSec
		}
		if c := st.Cluster; c != nil {
			ep.Forwards = c.Forwards
			ep.ForwardedServed = c.ForwardedServed
			ep.LocalFallbacks = c.LocalFallbacks
			cl.Forwards += c.Forwards
			cl.ForwardErrors += c.ForwardErrors
			cl.LocalFallbacks += c.LocalFallbacks
			cl.ForwardedServed += c.ForwardedServed
		}
		hits += st.Cache.Hits
		misses += st.Cache.Misses
		cl.Endpoints = append(cl.Endpoints, ep)
	}
	if reqTotal > 0 {
		cl.ForwardRate = float64(cl.Forwards) / float64(reqTotal)
	}
	if n := hits + misses; n > 0 {
		cl.CacheHitRate = float64(hits) / float64(n)
	}
	return cl
}

// fetchServerStats embeds the server's own view of the run; the coalesce
// rate is derived from it (coalescing happens server-side, invisibly to
// one client).
func fetchServerStats(client *http.Client, base string) serverSide {
	var st serverSide
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		log.Printf("sgload: stats fetch failed: %v", err)
		return st
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Printf("sgload: stats decode failed: %v", err)
	}
	return st
}
