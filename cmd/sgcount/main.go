// Command sgcount estimates the number of occurrences of a treewidth-2
// query graph in a data graph by color coding (Chakaravarthy et al.,
// IPDPS 2016). The data graph comes from an edge-list file or a built-in
// generator; the query from the paper's Figure 8 catalog or a parametric
// family.
//
// Examples:
//
//	sgcount -graph data.edges -query brain1 -trials 5
//	sgcount -standin enron -scale 512 -query glet2 -alg PS -workers 8
//	sgcount -powerlaw 10000 -alpha 1.5 -query cycle5 -exact
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	subgraph "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file for the data graph")
		standin   = flag.String("standin", "", "Table 1 stand-in graph name (e.g. enron, epinions)")
		scale     = flag.Int("scale", 512, "stand-in size divisor")
		powerlaw  = flag.Int("powerlaw", 0, "generate a power-law graph with this many vertices")
		alpha     = flag.Float64("alpha", 1.5, "power-law exponent (1,2)")
		rmat      = flag.Int("rmat", 0, "generate an R-MAT graph with 2^scale vertices")
		queryName = flag.String("query", "glet1", "query name (Figure 8 catalog, satellite, cycle<L>, path<L>, star<L>, bintree<L>)")
		queryFile = flag.String("queryfile", "", "read the query graph from an edge-list file instead")
		algName   = flag.String("alg", "DB", "cycle solver: DB (degree-based) or PS (path-splitting baseline)")
		backend   = flag.String("backend", "", "execution backend: sim (default) or parallel (shared-memory)")
		workers   = flag.Int("workers", 8, "simulated ranks (sim) or worker goroutines (parallel)")
		trials    = flag.Int("trials", 3, "independent colorings (ignored when -relerr is set)")
		relerr    = flag.Float64("relerr", 0, "target relative error (e.g. 0.1 = ±10%); > 0 runs trials adaptively until the target confidence interval is met")
		conf      = flag.Float64("confidence", 0.95, "confidence level of the -relerr target, in (0,1)")
		maxTrials = flag.Int("max-trials", 0, "adaptive trial cap for -relerr (0 = 1024)")
		seed      = flag.Int64("seed", 1, "random seed")
		exact     = flag.Bool("exact", false, "also brute-force the exact count (small graphs only)")
		stats     = flag.Bool("stats", false, "print engine load/communication statistics")
		pervertex = flag.Int("pervertex", 0, "print the top-N vertices by per-vertex colorful matches (one coloring)")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *standin, *scale, *powerlaw, *alpha, *rmat, *seed)
	if err != nil {
		fatal(err)
	}
	q, err := loadQuery(*queryName, *queryFile)
	if err != nil {
		fatal(err)
	}
	var alg subgraph.Algorithm
	switch *algName {
	case "DB", "db":
		alg = subgraph.DB
	case "PS", "ps":
		alg = subgraph.PS
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want DB or PS)", *algName))
	}

	st := g.Stats()
	fmt.Printf("graph  %s: %d nodes, %d edges, max degree %d\n", st.Name, st.Nodes, st.Edges, st.MaxDeg)
	fmt.Printf("query  %s\n", q)
	plan, err := subgraph.Plan(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan   (%s, §6 heuristic):\n%s", alg, plan)

	opts := subgraph.EstimateOptions{
		Algorithm: alg,
		Backend:   *backend,
		Workers:   *workers,
		Trials:    *trials,
		Seed:      *seed,
	}
	if *relerr > 0 {
		opts.Spec = subgraph.Spec{
			Precision: subgraph.Precision{RelErr: *relerr, Confidence: *conf},
			MaxTrials: *maxTrials,
		}
	}
	est, err := subgraph.Estimate(g, q, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ncolorful counts per trial: %v\n", est.Counts)
	fmt.Printf("estimated matches:    %.1f  (scale factor k^k/k! = %.2f)\n", est.Matches, subgraph.ScaleFactor(q.K))
	fmt.Printf("estimated subgraphs:  %.1f  (aut(Q) = %d)\n", est.Subgraphs, q.Automorphisms())
	fmt.Printf("coefficient of variation: %.4f\n", est.CV)
	if *relerr > 0 {
		fmt.Printf("precision: stopped after %d trials (target ±%.0f%% at %.0f%% confidence; observed CI half-width %.1f%% of the mean)\n",
			est.Trials, 100**relerr, 100**conf, 100*est.RelCI(*conf))
	}
	if *stats {
		s := est.Stats
		fmt.Printf("engine: %s backend, %d workers, total load %d, max load %d, messages %d, steals %d, table entries %d\n",
			s.Backend, s.Workers, s.TotalLoad, s.MaxLoad, s.Messages, s.Steals, s.TableEntries)
	}
	if *exact {
		want := subgraph.ExactCount(g, q)
		fmt.Printf("exact matches (brute force): %d\n", want)
	}
	if *pervertex > 0 {
		colors := subgraph.RandomColoring(g, q, *seed)
		per, anchor, _, err := subgraph.CountColorfulPerVertex(g, q, colors, -1,
			subgraph.CountOptions{Algorithm: alg, Backend: *backend, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		type vc struct {
			v uint32
			c uint64
		}
		tops := make([]vc, 0, len(per))
		for v, c := range per {
			if c > 0 {
				tops = append(tops, vc{uint32(v), c})
			}
		}
		sort.Slice(tops, func(i, j int) bool { return tops[i].c > tops[j].c })
		if len(tops) > *pervertex {
			tops = tops[:*pervertex]
		}
		fmt.Printf("\ntop vertices by colorful matches (query node %d anchored, one coloring):\n", anchor)
		for _, e := range tops {
			fmt.Printf("  v%-8d deg %-6d %12d\n", e.v, g.Degree(e.v), e.c)
		}
	}
}

func loadQuery(name, file string) (*subgraph.Query, error) {
	if file == "" {
		return subgraph.QueryByName(name)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return subgraph.ReadQuery(file, f)
}

func loadGraph(path, standin string, scale, pl int, alpha float64, rmat int, seed int64) (*subgraph.Graph, error) {
	switch {
	case path != "":
		return subgraph.LoadGraph(path)
	case standin != "":
		g, ok := subgraph.Standin(standin, scale, seed)
		if !ok {
			return nil, fmt.Errorf("unknown stand-in %q", standin)
		}
		return g, nil
	case pl > 0:
		return subgraph.GeneratePowerLaw("powerlaw", pl, alpha, seed), nil
	case rmat > 0:
		return subgraph.GenerateRMAT("rmat", rmat, 16, seed), nil
	default:
		return nil, fmt.Errorf("need one of -graph, -standin, -powerlaw, -rmat")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgcount:", err)
	os.Exit(1)
}
